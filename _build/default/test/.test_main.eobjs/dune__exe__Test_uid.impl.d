test/test_uid.ml: Alcotest List Pag_core Uid
