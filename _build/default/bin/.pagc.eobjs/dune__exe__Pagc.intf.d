bin/pagc.mli:
