(* Edit sessions: the distributed wave must preserve the incremental
   invariant (resident values = from-scratch values) while its census and
   latency stay sane — references never beat full shipping on size, the
   wave touches every boundary, and a no-op edit moves nothing. *)

open Pag_eval
open Pag_grammars
open Pag_parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expr_of seed =
  Expr_ag.random_program (Random.State.make [| seed |]) ~depth:8

(* Small granularity so the expression tree actually decomposes. *)
let sp machines = Session.spec ~granularity:0.05 ~librarian:false machines

let session_agrees_with_scratch g es fresh =
  let scratch, _ = Dynamic.eval g fresh in
  Test_incr.values_agree g (Session.store es) (Session.tree es) scratch fresh

let test_edit_wave () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 4) g (expr_of 3) in
  let r = Session.edit es (expr_of 4) in
  check_bool "values = scratch" true (session_agrees_with_scratch g es (expr_of 4));
  check_bool "latency advanced" true (r.Session.er_latency > 0.0);
  check_bool "wave carried messages" true (r.Session.er_messages > 0);
  check_bool "boundary census covers the wave" true
    (r.Session.er_boundary_changed <= r.Session.er_boundary_total);
  check_bool "incremental wave smaller than full recompile" true
    (r.Session.er_bytes_incr < r.Session.er_bytes_full)

let test_identity_edit_moves_nothing () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 4) g (expr_of 3) in
  let r = Session.edit es (expr_of 3) in
  check_int "no messages" 0 r.Session.er_messages;
  check_int "no bytes" 0 r.Session.er_bytes_incr;
  check_bool "no latency" true (r.Session.er_latency = 0.0)

let test_edit_sequence () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 3) g (expr_of 10) in
  List.iter
    (fun seed ->
      ignore (Session.edit es (expr_of seed));
      check_bool
        (Printf.sprintf "values = scratch after seed %d" seed)
        true
        (session_agrees_with_scratch g es (expr_of seed)))
    [ 11; 12; 11; 13; 10 ];
  let t = Session.totals es in
  check_int "five edits recorded" 5 t.Incr.tot_edits

let test_single_machine () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 1) g (expr_of 3) in
  let r = Session.edit es (expr_of 4) in
  check_int "owner is the only fragment" 0 r.Session.er_owner;
  check_bool "values = scratch" true
    (session_agrees_with_scratch g es (expr_of 4));
  check_bool "root attrs still reported" true (r.Session.er_messages > 0)

(* A root-production change falls back, re-decomposes, and later subtree
   edits keep working against the fresh plan. *)
let test_root_change_then_edit () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 3) g (Test_incr.expr_a ()) in
  let r1 = Session.edit es (Test_incr.expr_c ()) in
  check_bool "root change fell back" true r1.Session.er_fallback;
  check_bool "values = scratch" true
    (session_agrees_with_scratch g es (Test_incr.expr_c ()));
  let r2 = Session.edit es (expr_of 4) in
  ignore r2;
  check_bool "values = scratch after re-plan" true
    (session_agrees_with_scratch g es (expr_of 4))

(* Successive small edits leave the resident tree carrying appended
   (non-preorder) node ids; re-decomposing between edits must not renumber
   them out from under the store. Pascal single-statement edits force
   Subtree deltas (an Expr random edit usually differs at the root and
   takes the fallback rebuild, which hides id drift). *)
let test_pascal_edit_sequence () =
  let g = Pascal.Pascal_ag.grammar in
  let src k =
    Printf.sprintf
      "program p;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
      \  repeat\n    i := i * %d;\n    s := s + i\n  until i > 100;\n\
      \  write(s)\nend.\n"
      k
  in
  let tree k =
    Pascal.Pascal_ag.tree_of_program g (Pascal.Parser.parse_program (src k))
  in
  let es =
    Session.open_session
      (Session.spec ~granularity:0.1 ~librarian:false 3)
      g (tree 2)
  in
  List.iter
    (fun k ->
      let r = Session.edit es (tree k) in
      check_bool
        (Printf.sprintf "subtree delta for * %d" k)
        false r.Session.er_fallback;
      let scratch, _ = Dynamic.eval g (tree k) in
      let masked st =
        Pascal.Driver.mask_labels
          (Pascal.Pascal_ag.code_of_attrs (Store.root_attrs st))
      in
      check_bool
        (Printf.sprintf "code = scratch after * %d" k)
        true
        (String.equal (masked (Session.store es)) (masked scratch)))
    [ 3; 5; 2; 7 ]

(* Resident-store leak regression: every Subtree edit appends the
   replacement's slots to the flat store and detaches the old ones; before
   dead-weight compaction the store grew without bound while the session
   sat resident. A long alternating edit stream must keep the live
   footprint flat and the backing store within the compaction bound
   (slot_count <= 2x live at the trigger, +1 subtree in flight => 3x). *)
let test_resident_store_stays_bounded () =
  let g = Pascal.Pascal_ag.grammar in
  (* the two bodies differ structurally, so each edit takes the
     append-a-replacement path (a token-level change like [* 2] vs [* 3]
     redefines slots in place and never grows the store) *)
  let src rhs =
    Printf.sprintf
      "program p;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
      \  repeat\n    i := i * 2;\n    s := %s\n  until i > 100;\n\
      \  write(s)\nend.\n"
      rhs
  in
  let tree rhs =
    Pascal.Pascal_ag.tree_of_program g (Pascal.Parser.parse_program (src rhs))
  in
  let es =
    Session.open_session
      (Session.spec ~granularity:0.1 ~librarian:false 2)
      g (tree "s + i")
  in
  let live0 = Session.live_slots es in
  ignore (Session.edit es (tree "s + i * 2"));
  let live1 = Session.live_slots es in
  let cap = 3 * max live0 live1 in
  for i = 2 to 100 do
    ignore (Session.edit es (tree (if i mod 2 = 0 then "s + i" else "s + i * 2")));
    check_int "live slots stable"
      (if i mod 2 = 0 then live0 else live1)
      (Session.live_slots es);
    check_bool
      (Printf.sprintf "store bounded after edit %d" i)
      true
      (Store.slot_count (Session.store es) <= cap)
  done;
  check_bool "compaction actually triggered" true
    ((Session.totals es).Incr.tot_fallbacks >= 1)

(* Batched waves: same finals as serial edits, one priced wave per merged
   cone (fewer messages than per-edit waves), sane census — across all
   three instance schedules. Crafted edits (fresh trees per use — grafting
   renumbers replacement nodes) with a generous frontier so tiny trees
   don't take the rebuild fallback. *)
let test_batched_wave () =
  let g = Expr_ag.grammar in
  (* edit 1 and 2 touch disjoint num leaves and merge into one wave;
     edit 3 replaces the whole left mul, whose old subtree carries edit 1's
     grafted num — structural interference, so it serializes. *)
  let steps =
    [
      (fun () -> Test_incr.indep_base 9 2 3 4);
      (fun () -> Test_incr.indep_base 9 2 7 4);
      (fun () ->
        Expr_ag.(main (add (mul (num 5) (num 6)) (mul (num 7) (num 4)))));
    ]
  in
  let tree step = step () in
  List.iter
    (fun schedule ->
      let spec = Session.spec ~granularity:0.05 ~librarian:false ~schedule 3 in
      let eb =
        Session.open_session ~frontier:1.1 spec g (Test_incr.indep_base 1 2 3 4)
      in
      let es =
        Session.open_session ~frontier:1.1 spec g (Test_incr.indep_base 1 2 3 4)
      in
      let serial_msgs =
        List.fold_left
          (fun acc step ->
            acc + (Session.edit es (tree step)).Session.er_messages)
          0 steps
      in
      let r = Session.edit_batch eb (List.map tree steps) in
      check_int "three edits in the batch" 3 r.Session.br_edits;
      check_bool "batch ran waves" true (r.Session.br_waves >= 1);
      check_bool "conflict serialized into a follow-up wave" true
        (r.Session.br_conflicts >= 1);
      check_bool "latency advanced" true (r.Session.br_latency > 0.0);
      check_bool "boundary census sane" true
        (r.Session.br_boundary_changed <= r.Session.br_boundary_total);
      check_bool "merged waves ship fewer messages than serial edits" true
        (r.Session.br_messages < serial_msgs);
      check_bool "batched finals = serial finals" true
        (Test_incr.values_agree g (Session.store eb) (Session.tree eb)
           (Session.store es) (Session.tree es));
      check_bool "values = scratch" true
        (session_agrees_with_scratch g eb (tree (List.nth steps 2))))
    [ `Static; `Dynamic; `Steal ]

let test_batched_identity () =
  let g = Expr_ag.grammar in
  let es = Session.open_session (sp 4) g (expr_of 3) in
  let r = Session.edit_batch es [ expr_of 3; expr_of 3 ] in
  check_int "no messages" 0 r.Session.br_messages;
  check_int "no bytes" 0 r.Session.br_bytes;
  check_bool "no latency" true (r.Session.br_latency = 0.0)

let suite =
  [
    ( "session",
      [
        Alcotest.test_case "edit wave" `Quick test_edit_wave;
        Alcotest.test_case "identity edit" `Quick
          test_identity_edit_moves_nothing;
        Alcotest.test_case "edit sequence" `Quick test_edit_sequence;
        Alcotest.test_case "single machine" `Quick test_single_machine;
        Alcotest.test_case "root change then edit" `Quick
          test_root_change_then_edit;
        Alcotest.test_case "pascal edit sequence" `Quick
          test_pascal_edit_sequence;
        Alcotest.test_case "resident store stays bounded" `Quick
          test_resident_store_stays_bounded;
        Alcotest.test_case "batched wave" `Quick test_batched_wave;
        Alcotest.test_case "batched identity" `Quick test_batched_identity;
      ] );
  ]
