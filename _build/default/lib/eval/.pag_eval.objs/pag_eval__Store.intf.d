lib/eval/store.mli: Grammar Pag_core Tree Value
