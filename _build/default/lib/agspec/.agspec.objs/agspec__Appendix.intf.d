lib/agspec/appendix.mli: Compile Lazy Spec_ast
