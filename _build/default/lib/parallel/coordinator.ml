open Pag_core

let run (env : Transport.env) g ~tree ~plan ~librarian =
  let frags = Split.fragments plan in
  (* Hand out subtrees; evaluator for fragment i is machine i+1. *)
  Array.iter
    (fun (f : Split.fragment) ->
      env.Transport.e_send ~dst:(f.Split.fr_id + 1)
        (Message.Subtree
           {
             frag = f.Split.fr_id;
             bytes = f.Split.fr_bytes;
             uid_base = (f.Split.fr_id + 1) * Uid.stride;
           }))
    frags;
  env.Transport.e_mark "evaluation started";
  (* Collect the root's synthesized attributes from the root evaluator. *)
  let expected =
    Array.to_list (Grammar.symbol g tree.Tree.sym).Grammar.s_attrs
    |> List.filter_map (fun (a : Grammar.attr_decl) ->
           if a.Grammar.a_kind = Grammar.Syn then Some a.Grammar.a_name else None)
  in
  let received = Hashtbl.create 8 in
  let rec collect () =
    if Hashtbl.length received < List.length expected then begin
      (match env.Transport.e_recv () with
      | Message.Attr { node; attr; value } when node = tree.Tree.id ->
          Hashtbl.replace received attr value
      | other ->
          failwith
            (Format.asprintf "coordinator: unexpected message %a" Message.pp
               other));
      collect ()
    end
  in
  collect ();
  env.Transport.e_mark "root attributes received";
  (* Resolve any code descriptors through the librarian. *)
  let resolve attr value =
    match (librarian, value) with
    | Some lib, Value.Ext (Codestr.V c) when Codestr.frag_count c > 0 ->
        env.Transport.e_send ~dst:lib (Message.Resolve { value });
        let wait () =
          match env.Transport.e_recv () with
          | Message.Final { text } -> Codestr.value (Codestr.of_rope text)
          | other ->
              failwith
                (Format.asprintf "coordinator: expected Final for %s, got %a"
                   attr Message.pp other)
        in
        wait ()
    | _ -> value
  in
  let attrs =
    List.map (fun a -> (a, resolve a (Hashtbl.find received a))) expected
  in
  (match librarian with
  | Some lib -> env.Transport.e_send ~dst:lib Message.Stop
  | None -> ());
  env.Transport.e_mark "result assembled";
  attrs
