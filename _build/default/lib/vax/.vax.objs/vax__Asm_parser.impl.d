lib/vax/asm_parser.ml: Isa List Printf String
