(* Code-generation helpers shared by the semantic rules of the Pascal
   attribute grammar. All code values are Codestr (rope-backed assembly
   text), so concatenation in semantic rules is O(1) and the string
   librarian can take code attributes apart at fragment boundaries. *)

open Pag_core
open Pag_util

let asm instrs = Codestr.of_rope (Rope.of_string (Vax.Isa.to_string instrs))

let cstr s = Codestr.of_string s

let ( ^^ ) = Codestr.concat

let cconcat = Codestr.concat_list

let empty = Codestr.empty

let value c = Codestr.value c

let of_value = Codestr.of_value

(* Scope construction: resolve raw declarations into symbol-table entries
   with frame addresses.

   Frame layout (offsets from fp, one 4-byte longword per slot):
     -4              static link (copied from 4(ap) in the prologue)
     -8, -12, ...    parameters, in declaration order (by-ref: the address)
     next slot       function result, when [fname] is a function
     then            locals; composites occupy [ty_words] consecutive words,
                     the recorded offset being the lowest address. *)

type scope = {
  sc_env : Value.t Symtab.t;
  sc_frame_bytes : int;
  sc_param_copies : (int * int) list; (* ap offset -> fp offset *)
  sc_result_offset : int option;
  sc_errs : string list;
}

let build_scope ~env ~level ~params ~fname ~retty ~rawdecls =
  let errs = ref [] in
  let used = ref 1 (* static link *) in
  let tab = ref env in
  let declared = Hashtbl.create 16 in
  let declare name v =
    if Hashtbl.mem declared name then
      errs := Printf.sprintf "duplicate declaration of %s" name :: !errs
    else Hashtbl.replace declared name ();
    tab := Symtab.add !tab name v
  in
  let copies = ref [] in
  let nparams = List.length params in
  List.iteri
    (fun i (name, (t : Ast.ty), by_ref) ->
      if (not by_ref) && not (Ast.is_scalar t) then
        errs :=
          Printf.sprintf "parameter %s: composite types must be passed by var"
            name
          :: !errs;
      incr used;
      let offset = -4 * !used in
      (* arguments are pushed left to right, the static link last, so the
         i-th parameter (0-based) sits at 4*(nparams - i + 1)(ap) *)
      copies := (4 * (nparams - i + 1), offset) :: !copies;
      declare name (Pvalue.info (Pvalue.IVar { ty = t; level; offset; by_ref })))
    params;
  let result_offset =
    match retty with
    | None -> None
    | Some t ->
        incr used;
        let offset = -4 * !used in
        (* The result slot lives under a mangled key so the routine entry
           stays visible for recursive calls; lv_id resolves assignments to
           the function name through it. *)
        declare (fname ^ "$result")
          (Pvalue.info (Pvalue.IVar { ty = t; level; offset; by_ref = false }));
        Some offset
  in
  List.iter
    (fun r ->
      match r with
      | Pvalue.RConst (name, v) -> declare name (Pvalue.info (Pvalue.IConst v))
      | Pvalue.RVar (name, t) ->
          let words = Ast.ty_words t in
          let offset = -4 * (!used + words) in
          used := !used + words;
          declare name
            (Pvalue.info (Pvalue.IVar { ty = t; level; offset; by_ref = false }))
      | Pvalue.RRoutine (name, label, psig, ret) ->
          declare name
            (Pvalue.info (Pvalue.IRoutine { label; params = psig; ret; level })))
    rawdecls;
  {
    sc_env = !tab;
    sc_frame_bytes = 4 * !used;
    sc_param_copies = List.rev !copies;
    sc_result_offset = result_offset;
    sc_errs = List.rev !errs;
  }

(* Chase the static chain from the current frame (level [cur]) to the frame
   at [target] level, leaving that frame pointer in r0. Assumes cur > target
   or emits nothing when equal (caller then uses fp directly). *)
let chase_chain ~cur ~target =
  let open Vax.Isa in
  if cur = target then []
  else
    Movl (Disp (-4, fp), Reg r0)
    :: List.concat
         (List.init (cur - target - 1) (fun _ ->
              [ Movl (Disp (-4, r0), Reg r0) ]))

(* Push the address of a variable. *)
let push_var_addr ~cur ~(v : Pvalue.info) =
  let open Vax.Isa in
  match v with
  | Pvalue.IVar { level; offset; by_ref; _ } ->
      if level = cur then
        if by_ref then [ Pushl (Disp (offset, fp)) ]
        else [ Moval (Disp (offset, fp), Reg r0); Pushl (Reg r0) ]
      else
        chase_chain ~cur ~target:level
        @
        if by_ref then [ Pushl (Disp (offset, r0)) ]
        else [ Moval (Disp (offset, r0), Reg r0); Pushl (Reg r0) ]
  | Pvalue.IConst _ | Pvalue.IRoutine _ -> [ Pushl (Imm 0) ]

(* Push the static link for a call to a routine declared at [target]. *)
let push_static_link ~cur ~target =
  let open Vax.Isa in
  if cur = target then [ Pushl (Reg fp) ]
  else chase_chain ~cur ~target @ [ Pushl (Reg r0) ]

(* Dereference the address on top of the stack into its value. *)
let deref_top =
  let open Vax.Isa in
  [ Movl (PostInc sp, Reg r0); Pushl (Deref r0) ]

(* Pop two operands (b on top, a below), leave result pushed. *)
let binop ops =
  let open Vax.Isa in
  [ Movl (PostInc sp, Reg r1); Movl (PostInc sp, Reg r0) ]
  @ ops
  @ [ Pushl (Reg r0) ]

let lab n = Printf.sprintf "L%d" n

let plab n = Printf.sprintf "P%d" n

(* Branchy comparison: pop b, a; push 1 if [a op b] else 0. Two labels. *)
let compare_code branch l_true l_end =
  let open Vax.Isa in
  [
    Movl (PostInc sp, Reg r1);
    Movl (PostInc sp, Reg r0);
    Cmpl (Reg r0, Reg r1);
    branch l_true;
    Pushl (Imm 0);
    Brb l_end;
    Label l_true;
    Pushl (Imm 1);
    Label l_end;
  ]

(* Routine section: entry label, prologue, body, epilogue. *)
let routine_section ~entry ~frame_bytes ~param_copies ~result_offset ~body =
  let open Vax.Isa in
  (* Zero the frame: Pascal leaves locals uninitialized, but the reference
     semantics (and the interpreter) give fresh variables the value 0, and
     stack memory is reused between calls. *)
  let zeroing =
    List.init (frame_bytes / 4) (fun i ->
        Movl (Imm 0, Disp (-4 * (i + 1), fp)))
  in
  let prologue =
    [ Label entry; Subl2 (Imm frame_bytes, Reg sp) ]
    @ zeroing
    @ [ Movl (Disp (4, ap), Disp (-4, fp)) ]
    @ List.map (fun (src, dst) -> Movl (Disp (src, ap), Disp (dst, fp))) param_copies
  in
  let epilogue =
    match result_offset with
    | Some off -> [ Movl (Disp (off, fp), Reg r0); Ret ]
    | None -> [ Ret ]
  in
  asm prologue ^^ body ^^ asm epilogue

let print_call (t : Ast.ty) =
  let open Vax.Isa in
  let routine =
    match t with
    | Ast.TChar -> "_print_char"
    | Ast.TBool -> "_print_bool"
    | Ast.TInt | Ast.TArray _ | Ast.TRecord _ -> "_print_int"
  in
  [ Calls (1, routine) ]
