open Pag_core
open Pag_grammars

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_build_example () =
  let t = Expr_ag.example in
  Tree.check Expr_ag.grammar t;
  check_bool "root symbol" true (t.Tree.sym = "main_expr")

let test_number_preorder () =
  let t = Expr_ag.main (Expr_ag.add (Expr_ag.num 1) (Expr_ag.num 2)) in
  let n = Tree.number t in
  check_int "count" (Tree.size t) n;
  check_int "root id" 0 t.Tree.id;
  (* Preorder: ids increase parent-before-child, left-before-right. *)
  let ok = ref true in
  Tree.iter
    (fun node ->
      Array.iter
        (fun c -> if c.Tree.id <= node.Tree.id then ok := false)
        node.Tree.children)
    t;
  check_bool "parent before child" true !ok

let test_wrong_arity () =
  match Tree.node Expr_ag.grammar "add" [ Expr_ag.num 1 ] with
  | exception Tree.Error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_wrong_child_symbol () =
  match
    Tree.node Expr_ag.grammar "main"
      [ Tree.leaf Expr_ag.grammar "NUMBER" [ ("value", Value.Int 1) ] ]
  with
  | exception Tree.Error _ -> ()
  | _ -> Alcotest.fail "expected symbol mismatch"

let test_leaf_missing_attr () =
  match Tree.leaf Expr_ag.grammar "NUMBER" [] with
  | exception Tree.Error _ -> ()
  | _ -> Alcotest.fail "expected missing intrinsic attribute"

let test_leaf_unknown_attr () =
  match Tree.leaf Expr_ag.grammar "LET" [ ("junk", Value.Unit) ] with
  | exception Tree.Error _ -> ()
  | _ -> Alcotest.fail "expected unknown attribute"

let test_term_attr () =
  let leaf = Tree.leaf Expr_ag.grammar "NUMBER" [ ("value", Value.Int 9) ] in
  check_bool "value" true (Value.equal (Tree.term_attr leaf "value") (Value.Int 9));
  match Tree.term_attr (Expr_ag.num 1) "value" with
  | exception Tree.Error _ -> ()
  | _ -> Alcotest.fail "term_attr on interior node must fail"

let test_size_byte_size () =
  let t = Expr_ag.example in
  check_int "example node count" 20 (Tree.size t);
  check_bool "byte size grows with tree" true
    (Tree.byte_size t > Tree.byte_size (Expr_ag.num 1))

let test_fold_iter_agree () =
  let t = Expr_ag.example in
  let count = Tree.fold (fun n _ -> n + 1) 0 t in
  check_int "fold count = size" (Tree.size t) count

let test_deep_tree_stack_safe () =
  (* 50_000-deep right-leaning additions: iter/number must not overflow. *)
  let t = ref (Expr_ag.num 0) in
  for i = 1 to 50_000 do
    t := Expr_ag.add (Expr_ag.num i) !t
  done;
  let t = Expr_ag.main !t in
  let n = Tree.number t in
  check_bool "big" true (n > 100_000)

let suite =
  [
    ( "tree",
      [
        Alcotest.test_case "build example" `Quick test_build_example;
        Alcotest.test_case "preorder numbering" `Quick test_number_preorder;
        Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
        Alcotest.test_case "wrong child symbol" `Quick test_wrong_child_symbol;
        Alcotest.test_case "leaf missing attr" `Quick test_leaf_missing_attr;
        Alcotest.test_case "leaf unknown attr" `Quick test_leaf_unknown_attr;
        Alcotest.test_case "term_attr" `Quick test_term_attr;
        Alcotest.test_case "sizes" `Quick test_size_byte_size;
        Alcotest.test_case "fold/iter agree" `Quick test_fold_iter_agree;
        Alcotest.test_case "deep tree" `Quick test_deep_tree_stack_safe;
      ] );
  ]
