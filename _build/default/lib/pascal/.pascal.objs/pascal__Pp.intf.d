lib/pascal/pp.mli: Ast
