exception
  Syntax_error of {
    position : int;
    token : string;
    expected : string list;
  }

let expected_in tables state =
  List.filter
    (fun t -> Lalr.action tables state t <> Lalr.Error)
    (Cfg.eof :: Cfg.terminals (Lalr.grammar tables))

let parse tables ~shift ~reduce tokens =
  let g = Lalr.grammar tables in
  (* stack of (state, value); the bottom has no value *)
  let rec loop stack input pos =
    let state = match stack with (s, _) :: _ -> s | [] -> assert false in
    let tok_name, tok_value =
      match input with (n, v) :: _ -> (n, Some v) | [] -> (Cfg.eof, None)
    in
    match Lalr.action tables state tok_name with
    | Lalr.Shift next ->
        let v =
          match tok_value with
          | Some v -> shift tok_name v
          | None -> assert false (* eof is never shifted *)
        in
        loop ((next, Some v) :: stack) (List.tl input) (pos + 1)
    | Lalr.Reduce p ->
        let prod = (Cfg.productions g).(p) in
        let n = List.length prod.Cfg.cp_rhs in
        let rec pop k acc stack =
          if k = 0 then (acc, stack)
          else
            match stack with
            | (_, Some v) :: rest -> pop (k - 1) (v :: acc) rest
            | _ -> assert false
        in
        let children, stack = pop n [] stack in
        let v = reduce prod children in
        let state' = match stack with (s, _) :: _ -> s | [] -> assert false in
        let next =
          match Lalr.goto tables state' prod.Cfg.cp_lhs with
          | Some s -> s
          | None -> assert false
        in
        loop ((next, Some v) :: stack) input pos
    | Lalr.Accept -> (
        match stack with
        | (_, Some v) :: _ -> v
        | _ -> assert false)
    | Lalr.Error ->
        raise
          (Syntax_error
             {
               position = pos;
               token = tok_name;
               expected = expected_in tables state;
             })
  in
  loop [ (0, None) ] tokens 0
