open Pag_core
open Pag_analysis
open Pag_obs

type stats = { visits : int; evals : int }

(* The static evaluator is the engine's plan-driven schedule: the visit
   sequences fix the firing order at generation time, so each [Eval r]
   step is a direct (node, rule-index) firing against the shared engine —
   no dependency analysis, no readiness tracking. *)

let visit ?memo plan eng node v =
  let store = Engine.store eng in
  let visits = ref 0 and evals = ref 0 in
  let rec go node v =
    match node.Tree.prod with
    | None -> ()
    | Some p -> (
        incr visits;
        match Memo.subtree memo plan store node v with
        | Memo.Replayed -> Engine.note_replayed eng node
        | Memo.Evaluate record ->
            List.iter
              (function
                | Kastens.Eval r ->
                    Engine.fire_at eng node r;
                    incr evals
                | Kastens.Visit { child; visit } ->
                    go node.Tree.children.(child) visit)
              (Kastens.visit_seq plan ~prod:p.Grammar.p_id ~visit:v);
            (match record with Some f -> f () | None -> ()))
  in
  go node v;
  (!visits, !evals)

let eval ?(obs = Obs.null_ctx) ?root_inh ?hashcons ?(prov = Prov.disabled)
    ?prov_clock ?(engine_out = fun _ -> ()) plan t =
  let r, _ =
    Uid.with_base 0 (fun () ->
        let g = Kastens.grammar plan in
        let store, eng =
          Obs.with_span obs "store-build" (fun () ->
              let store = Store.create ?root_inh g t in
              (store, Engine.create g store))
        in
        (if Prov.enabled prov then
           let clock =
             match prov_clock with
             | Some c -> c
             | None -> if Obs.ctx_enabled obs then obs.Obs.x_clock else Sys.time
           in
           Engine.set_prov ~pid:obs.Obs.x_pid ~clock eng prov);
        engine_out eng;
        let memo =
          match hashcons with
          | Some true ->
              Some
                (Obs.with_span obs "sharing-pass" (fun () ->
                     Memo.create (Tree.sharing t)))
          | Some false | None -> None
        in
        let m = Kastens.visit_count plan t.Tree.sym in
        let visits = ref 0 and evals = ref 0 in
        Obs.with_span obs "static-visits" (fun () ->
            for v = 1 to m do
              let nv, ne =
                Obs.with_span obs "visit" (fun () -> visit ?memo plan eng t v)
              in
              visits := !visits + nv;
              evals := !evals + ne
            done);
        if Obs.ctx_enabled obs then begin
          let reg = obs.Obs.x_metrics in
          Obs.Metrics.add (Obs.Metrics.counter reg "eval.visits") !visits;
          Obs.Metrics.add (Obs.Metrics.counter reg "eval.static_rules") !evals;
          (match memo with
          | Some mm ->
              let st = Memo.stats mm in
              Obs.Metrics.add
                (Obs.Metrics.counter reg "eval.memo_hits")
                st.Memo.st_hits;
              Obs.Metrics.add
                (Obs.Metrics.counter reg "eval.memo_misses")
                st.Memo.st_misses;
              Obs.Metrics.add
                (Obs.Metrics.counter reg "eval.memo_replayed_slots")
                st.Memo.st_replayed_slots
          | None -> ());
          Obs.Metrics.add_gauge reg "store.reads" (float_of_int (Store.reads store));
          Obs.Metrics.add_gauge reg "store.writes" (float_of_int (Store.sets store));
          Obs.Metrics.add_gauge reg "store.slots"
            (float_of_int (Store.slot_count store))
        end;
        (store, { visits = !visits; evals = !evals }))
  in
  r
