(** Run setup and edit sessions — the one place that turns a description of
    a parallel evaluation into a {!Runner} invocation.

    [pagc], [agrun] and the benchmark harness all build their runs through
    {!spec}/{!options}/{!run} instead of each assembling
    {!Runner.options} by hand.

    {2 Edit sessions}

    An {!edit_session} keeps a program resident: the tree stays evaluated
    (via {!Pag_eval.Incr}) and decomposed ({!Split}) between edits, the way
    the paper's compiler would sit inside an editor loop. Each {!edit}
    diffs the re-parsed tree against the resident one, re-evaluates only
    the dirty cone, and then plays one message wave over the network
    simulator to price the distributed update:

    - the coordinator ships the replacement subtree to the machine owning
      the edit site ({!Message.Edit});
    - that owner pays the rebuild (bytes x rebuild cost) and the whole
      propagation (all re-fired rules, priced at dynamic-rule cost);
    - boundary attributes then flow through the fragment tree (inherited
      down, synthesized up, root attributes to the coordinator). An
      attribute the equality cutoff proved unchanged crosses as a
      fixed-size {!Message.Attr_ref} instead of its full value.

    With a fault plan in the spec, the wave runs behind the
    reliable-delivery layer ({!Reliable}) and the report counts its
    retransmissions. The model deliberately stops short of a resident
    distributed worker loop: values come from the session's own
    incremental evaluation, the simulation prices traffic and latency
    (DESIGN.md section 10 discusses the simplification). *)

open Pag_core
open Pag_eval
open Netsim

type spec = {
  sp_machines : int;
  sp_mode : Worker.mode;
  sp_schedule : [ `Static | `Dynamic | `Steal ];
  sp_transport : [ `Sim | `Domains ];
  sp_granularity : float;
  sp_librarian : bool;
  sp_priority : bool;
  sp_hashcons : bool;
  sp_dag : bool;
      (** first-class DAG evaluation: {!Runner.options.use_dag} on
          from-scratch runs; edit sessions evaluate through
          {!Pag_eval.Incr} with [~dag:true] (classes split on divergence
          only, so resident sessions keep the sharing across edits) *)
  sp_telemetry : bool;
  sp_faults : Faults.spec option;
  sp_fault_rto : float option;
  sp_fault_watchdog : float option;
  sp_phase_label : int -> string option;
  sp_provenance : bool;
      (** record per-firing provenance for {!Pag_eval.Causal} analysis
          (see {!Runner.options}); edit sessions attach one ring that
          survives engine rebuilds *)
}

(** [spec machines] with every knob defaulted as in
    {!Runner.default_options}. [~schedule:`Dynamic] forces [mode] to
    [`Dynamic] (they describe the same all-dynamic run of the classic
    protocol); [~schedule:`Steal] selects the work-stealing instance
    scheduler (see {!Runner.options}). *)
val spec :
  ?mode:Worker.mode ->
  ?schedule:[ `Static | `Dynamic | `Steal ] ->
  ?transport:[ `Sim | `Domains ] ->
  ?granularity:float ->
  ?librarian:bool ->
  ?priority:bool ->
  ?hashcons:bool ->
  ?dag:bool ->
  ?telemetry:bool ->
  ?faults:Faults.spec ->
  ?fault_rto:float ->
  ?fault_watchdog:float ->
  ?phase_label:(int -> string option) ->
  ?provenance:bool ->
  int ->
  spec

val options : spec -> Runner.options

(** Run one full (from-scratch) parallel evaluation on the spec's
    transport. *)
val run :
  spec ->
  Grammar.t ->
  Pag_analysis.Kastens.plan option ->
  Tree.t ->
  Runner.result

type edit_session

(** Outcome of one {!edit}: the {!Pag_eval.Incr.edit_stats} counters plus
    the distributed wave's census. *)
type edit_report = {
  er_dirty : int;  (** rule instances in the dirty cone *)
  er_refired : int;  (** rules actually re-fired *)
  er_cutoff : int;  (** dirty rules skipped by the equality cutoff *)
  er_fallback : bool;  (** handled by a from-scratch rebuild *)
  er_prop_ms : float;  (** local propagation time, milliseconds *)
  er_owner : int;  (** fragment owning the edit site *)
  er_boundary_changed : int;  (** boundary attributes that changed *)
  er_boundary_total : int;  (** boundary attributes shipped (incl. refs) *)
  er_bytes_incr : int;  (** wire bytes of the incremental wave *)
  er_bytes_full : int;
      (** wire bytes a from-scratch distributed recompile would ship:
          every fragment subtree plus every boundary attribute in full *)
  er_messages : int;  (** messages in the wave, acks included *)
  er_retransmits : int;  (** reliable-layer retransmissions (faults only) *)
  er_latency : float;  (** simulated seconds, edit sent -> roots refreshed *)
}

(** Evaluate [tree] from scratch, decompose it, and keep both resident.
    [frontier] and [memo] as in {!Pag_eval.Incr.start} — a service
    multiplexing many sessions passes one shared [memo] so tenants share
    an intern arena when the spec enables hash-consing. *)
val open_session :
  ?obs:Pag_obs.Obs.ctx ->
  ?memo:Memo.rules ->
  ?prov:Pag_obs.Prov.t ->
  ?frontier:float ->
  spec ->
  Grammar.t ->
  Tree.t ->
  edit_session

(** The resident (always fully evaluated) tree. *)
val tree : edit_session -> Tree.t

(** The resident store; every attribute of {!tree} is set. *)
val store : edit_session -> Store.t

(** The session's memory footprint, as {!Pag_eval.Incr.live_slots}. *)
val live_slots : edit_session -> int

val totals : edit_session -> Incr.totals

(** The session's current engine (swapped by fallback rebuilds — re-fetch
    after every edit) for {!Pag_eval.Causal.build}. *)
val engine : edit_session -> Engine.t

(** The session's provenance ring: attached when the spec enabled
    [provenance] or a ring was passed to {!open_session},
    {!Pag_obs.Prov.disabled} otherwise. Records the initial evaluation and
    every refire, so [--explain]/[--profile] work mid-session. *)
val prov : edit_session -> Pag_obs.Prov.t

(** [edit session next] makes the resident tree structurally equal to
    [next] (same root symbol required), re-evaluating incrementally and
    pricing the distributed update. Structurally equal trees are a no-op
    with an all-zero report; a root-level change falls back to a
    from-scratch rebuild and a fresh decomposition. *)
val edit : edit_session -> Tree.t -> edit_report

(** Outcome of one {!edit_batch}: the {!Pag_eval.Incr.wave_stats} counters
    plus the batched wave's census. *)
type batch_report = {
  br_edits : int;
  br_waves : int;  (** merged refire waves *)
  br_conflicts : int;  (** edits serialized into a follow-up wave *)
  br_dirty : int;
  br_refired : int;
  br_cutoff : int;
  br_fallbacks : int;
  br_rounds : int;  (** level-synchronous refire rounds across waves *)
  br_boundary_changed : int;
  br_boundary_total : int;
  br_bytes : int;  (** wire bytes of the whole batched wave *)
  br_messages : int;
  br_retransmits : int;
  br_latency : float;  (** simulated seconds, dispatch -> roots refreshed *)
}

(** [edit_batch session nexts] applies the whole edit set through
    {!Pag_eval.Incr.edit_batch} — independent dirty cones merged per wave,
    conflicting edits serialized into follow-up waves — and prices ONE
    distributed wave for the batch: a single dispatch carrying every
    replacement plus 16 bytes of cone-merge metadata per edit, the merged
    refire co-scheduled across all fragment machines (each level-
    synchronous round costs its ceiling share of steal-priced rules, and
    shipped cone chunks/results are charged as messages), and a single
    boundary flow. Serial {!edit} application pays the owner-sequential
    propagation and a full boundary wave per edit; this is where batched
    throughput beats the one-edit-at-a-time ceiling. *)
val edit_batch : edit_session -> Tree.t list -> batch_report
