lib/netsim/sim.mli: Ethernet Trace
