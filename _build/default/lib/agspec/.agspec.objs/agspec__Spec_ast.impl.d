lib/agspec/spec_ast.ml:
