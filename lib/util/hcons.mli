(** Weak-bucket interning arenas (hash-consing).

    An arena maps every value to a canonical representative: [intern a v]
    returns the first value equal to [v] that was ever interned, so
    structural equality on interned values collapses to physical equality
    ([==]) and a previously computed hash can be reused instead of
    re-traversing the value.

    Buckets hold their members weakly: a canonical representative that the
    program no longer references elsewhere is reclaimed by the GC and its
    slot is reused, so an arena never pins garbage — the property that lets
    hash-consing stay on for arbitrarily long compiler sessions.

    Clients supply [hash] and [equal] at creation time; for recursive types
    the idiom is bottom-up interning, where children are canonicalized
    first so that [equal] may compare them with [==] (constant time per
    node). *)

type 'a t

type stats = {
  st_hits : int;  (** interns that found an existing representative *)
  st_misses : int;  (** interns that installed a new representative *)
  st_live : int;  (** representatives currently alive (weakly counted) *)
  st_buckets : int;  (** current bucket-table width *)
}

(** [create ~hash ~equal name] — an empty arena. [hash] must be compatible
    with [equal] ([equal a b] implies [hash a = hash b]); [name] labels the
    arena in {!all_stats}. *)
val create :
  ?initial_buckets:int ->
  hash:('a -> int) ->
  equal:('a -> 'a -> bool) ->
  string ->
  'a t

(** Canonical representative of [v], installing [v] itself if none exists. *)
val intern : 'a t -> 'a -> 'a

(** Look up without installing. *)
val find_opt : 'a t -> 'a -> 'a option

val name : _ t -> string

val stats : _ t -> stats

(** Stats of every arena created so far (in creation order) — the
    [hcons.*] telemetry source. *)
val all_stats : unit -> (string * stats) list

(** Drop all representatives of every arena (test isolation). *)
val clear_all : unit -> unit
