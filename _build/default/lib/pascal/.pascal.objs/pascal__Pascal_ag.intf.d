lib/pascal/pascal_ag.mli: Ast Grammar Pag_core Tree Value
