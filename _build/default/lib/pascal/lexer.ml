exception Lex_error of int * string

let error line fmt = Printf.ksprintf (fun s -> raise (Lex_error (line, s))) fmt

let keywords =
  [
    ("program", Token.PROGRAM);
    ("const", Token.CONST);
    ("var", Token.VAR);
    ("procedure", Token.PROCEDURE);
    ("function", Token.FUNCTION);
    ("begin", Token.BEGIN);
    ("end", Token.END);
    ("if", Token.IF);
    ("then", Token.THEN);
    ("else", Token.ELSE);
    ("while", Token.WHILE);
    ("do", Token.DO);
    ("repeat", Token.REPEAT);
    ("until", Token.UNTIL);
    ("for", Token.FOR);
    ("to", Token.TO);
    ("downto", Token.DOWNTO);
    ("case", Token.CASE);
    ("of", Token.OF);
    ("array", Token.ARRAY);
    ("record", Token.RECORD);
    ("integer", Token.INTEGER);
    ("boolean", Token.BOOLEAN);
    ("char", Token.CHAR);
    ("true", Token.TRUE);
    ("false", Token.FALSE);
    ("div", Token.DIV);
    ("mod", Token.MOD);
    ("and", Token.AND);
    ("or", Token.OR);
    ("not", Token.NOT);
    ("write", Token.WRITE);
    ("writeln", Token.WRITELN);
    ("read", Token.READ);
  ]

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '{' then begin
      (* { ... } comment *)
      incr pos;
      while !pos < n && src.[!pos] <> '}' do
        if src.[!pos] = '\n' then incr line;
        incr pos
      done;
      if !pos >= n then error !line "unterminated { comment"
      else incr pos
    end
    else if c = '(' && peek 1 = Some '*' then begin
      (* (* ... *) comment *)
      pos := !pos + 2;
      let fin = ref false in
      while not !fin do
        if !pos + 1 >= n then error !line "unterminated (* comment"
        else if src.[!pos] = '*' && src.[!pos + 1] = ')' then begin
          pos := !pos + 2;
          fin := true
        end
        else begin
          if src.[!pos] = '\n' then incr line;
          incr pos
        end
      done
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (Token.NUM (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && (is_alpha src.[!pos] || is_digit src.[!pos]) do
        incr pos
      done;
      let word = String.lowercase_ascii (String.sub src start (!pos - start)) in
      match List.assoc_opt word keywords with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word)
    end
    else if c = '\'' then begin
      (* character literal; '' inside quotes denotes the quote itself *)
      if !pos + 2 < n && src.[!pos + 1] = '\'' && src.[!pos + 2] = '\'' && peek 3 = Some '\''
      then begin
        emit (Token.CHARLIT '\'');
        pos := !pos + 4
      end
      else if !pos + 2 < n && src.[!pos + 2] = '\'' then begin
        emit (Token.CHARLIT src.[!pos + 1]);
        pos := !pos + 3
      end
      else error !line "bad character literal"
    end
    else begin
      let two t =
        emit t;
        pos := !pos + 2
      in
      let one t =
        emit t;
        incr pos
      in
      match (c, peek 1) with
      | ':', Some '=' -> two Token.ASSIGN
      | '<', Some '=' -> two Token.LE
      | '<', Some '>' -> two Token.NE
      | '>', Some '=' -> two Token.GE
      | '.', Some '.' -> two Token.DOTDOT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '=', _ -> one Token.EQ
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | ';', _ -> one Token.SEMI
      | ':', _ -> one Token.COLON
      | ',', _ -> one Token.COMMA
      | '.', _ -> one Token.DOT
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | _ -> error !line "unexpected character %C" c
    end
  done;
  emit Token.EOF;
  List.rev !toks
