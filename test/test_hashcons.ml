(* Hash-consed evaluation: rope balance under heavy appends, value
   interning and DAG sizes, the intern-librarian wire protocol, and
   end-to-end agreement of memoized runs with the reference interpreter. *)

open Pag_util
open Pag_core
open Pag_parallel

let qc ?count name gen prop = Qc_seed.qc ?count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --------------- rope balance --------------- *)

(* Repeated one-sided concatenation is the worst case for rope depth: a
   naive implementation degenerates into a 100k-deep list. The
   depth-triggered rebalance must keep the tree logarithmic. *)

let test_rope_append_depth () =
  let r = ref Rope.empty in
  for i = 1 to 100_000 do
    r := Rope.concat !r (Rope.of_string (if i mod 2 = 0 then "ab" else "xyz"))
  done;
  check_int "length" 250_000 (Rope.length !r);
  let d = Rope.depth !r in
  check_bool (Printf.sprintf "append depth %d stays logarithmic" d) true (d <= 64)

let test_rope_prepend_depth () =
  let r = ref Rope.empty in
  for _ = 1 to 100_000 do
    r := Rope.concat (Rope.of_string "ab") !r
  done;
  check_int "length" 200_000 (Rope.length !r);
  let d = Rope.depth !r in
  check_bool (Printf.sprintf "prepend depth %d stays logarithmic" d) true (d <= 64);
  let s = Rope.to_string !r in
  check_bool "content intact" true
    (String.length s = 200_000 && String.for_all (fun c -> c = 'a' || c = 'b') s)

(* --------------- value interning and sizes --------------- *)

let gen_value : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Value.Unit;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) small_signed_int;
              map
                (fun s -> Value.str s)
                (string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'd' ]) (int_bound 12));
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (2, leaf);
              (2, map (fun l -> Value.List l) (list_size (int_bound 4) (self (n / 2))));
              (2, map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2)));
              ( 1,
                map
                  (fun bs ->
                    (* normalized: rebuilt from the canonical binding list,
                       so a structural copy rebuilt from [to_list] inserts
                       in the same order and gets the same tree shape (the
                       arena's symtab equality is shape-preserving) *)
                    Value.Tab (Symtab.of_list (Symtab.to_list (Symtab.of_list bs))))
                  (list_size (int_bound 3)
                     (pair
                        (string_size ~gen:(oneofl [ 'x'; 'y'; 'z' ]) (int_range 1 4))
                        (self (n / 3)))) );
            ]))

let arb_value = QCheck.make ~print:Value.to_string gen_value

(* Structural deep copy sharing nothing with the original, built the same
   way (single-leaf ropes, of_list symtabs) so the arena's shape-aware
   equality must identify the two. *)
let rec copy v =
  match v with
  | Value.Unit | Value.Bool _ | Value.Int _ -> v
  | Value.Str r -> Value.str (Rope.to_string r)
  | Value.List l -> Value.List (List.map copy l)
  | Value.Pair (a, b) -> Value.Pair (copy a, copy b)
  | Value.Tab t ->
      Value.Tab
        (Symtab.of_list (List.map (fun (k, x) -> (k, copy x)) (Symtab.to_list t)))
  | Value.Ext _ -> v

let prop_intern_observational =
  qc ~count:200 "intern preserves equality and flat size" arb_value (fun v ->
      let c = Value.intern v in
      Value.equal c v && Value.byte_size c = Value.byte_size v)

let prop_intern_canonical =
  qc ~count:200 "structural copies intern to one representative" arb_value
    (fun v -> Value.intern v == Value.intern (copy v))

let prop_dag_size_bounded =
  qc ~count:200 "dag_byte_size <= byte_size" arb_value (fun v ->
      Value.dag_byte_size v <= Value.byte_size v)

let arb_chunks =
  QCheck.make
    ~print:(String.concat "|")
    QCheck.Gen.(
      list_size (int_bound 8)
        (string_size ~gen:(oneofl [ 'p'; 'q'; 'r' ]) (int_bound 10)))

let prop_byte_size_is_flattened_length =
  qc ~count:200 "byte_size of a rope value = flattened byte count" arb_chunks
    (fun chunks ->
      let r = Rope.concat_list (List.map Rope.of_string chunks) in
      let flat = String.length (String.concat "" chunks) in
      Value.byte_size (Value.of_rope r) = flat
      && Value.byte_size (Value.intern (Value.of_rope r)) = flat)

let test_dag_size_exploits_sharing () =
  (* ten copies of one 64-byte string: flat pays for all ten, the DAG
     encoding pays once plus nine backreferences *)
  let v =
    Value.List (List.init 10 (fun _ -> Value.str (String.make 64 'x')))
  in
  check_int "flat" (4 + (10 * 64)) (Value.byte_size v);
  check_int "dag" (4 + 64 + (9 * 8)) (Value.dag_byte_size v);
  (* a sharing-free value costs exactly its flat size *)
  let w = Value.List (List.init 5 (fun i -> Value.str (String.make 40 (Char.chr (97 + i))))) in
  check_int "no sharing: dag = flat" (Value.byte_size w) (Value.dag_byte_size w)

(* --------------- intern librarian wire protocol --------------- *)

module S = Netsim.Sim.Make (struct
  type msg = Message.t
end)

let env_of id =
  {
    Transport.e_id = id;
    e_delay = S.delay;
    e_send = (fun ~dst m -> S.send ~dst ~size:(Message.size m) m);
    e_recv = S.recv;
    e_recv_timeout = S.recv_timeout;
    e_time = S.time;
    e_mark = (fun _ -> ());
    e_flush = (fun () -> ());
  }

(* Ship [payloads] as Attr messages through an Intern-wrapped pair of
   peers; return the received (node, value) list plus the sender stats. *)
let ship payloads =
  let sim = S.create () in
  let got = ref [] in
  let stats = ref None in
  let n = List.length payloads in
  let _rx =
    S.spawn sim ~name:"rx" (fun () ->
        let env = Intern.env (Intern.wrap (env_of 0)) in
        for _ = 1 to n do
          match env.Transport.e_recv () with
          | Message.Attr { node; value; _ } -> got := (node, value) :: !got
          | m -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Message.pp m)
        done)
  in
  let _tx =
    S.spawn sim ~name:"tx" (fun () ->
        let t = Intern.wrap (env_of 1) in
        let env = Intern.env t in
        List.iteri
          (fun i v ->
            env.Transport.e_send ~dst:0
              (Message.Attr { node = i; attr = "v"; value = v }))
          payloads;
        stats := Some (Intern.stats t))
  in
  S.run sim;
  (List.rev !got, Option.get !stats)

let byte_identical v v' =
  Value.equal v v'
  && Value.byte_size v = Value.byte_size v'
  && String.equal (Value.to_string v) (Value.to_string v')

let test_intern_dedup_roundtrip () =
  let big i = Value.List (List.init 6 (fun j -> Value.str (String.make 8 (Char.chr (97 + ((i + j) mod 26)))))) in
  let payloads = List.init 9 (fun i -> big (i mod 3)) in
  let got, st = ship payloads in
  check_int "all delivered" 9 (List.length got);
  List.iteri
    (fun i v ->
      let node, v' = List.nth got i in
      check_int "order preserved" i node;
      check_bool "byte-identical payload" true (byte_identical v v'))
    payloads;
  check_int "three bindings" 3 st.Intern.is_binds;
  check_int "six references" 6 st.Intern.is_refs;
  check_bool "references saved bytes" true (st.Intern.is_saved_bytes > 0)

let prop_intern_roundtrip =
  (* any payload mix, each value repeated 1-3 times: everything arrives,
     in order, byte-identical — whether it travelled plain (below the
     threshold), as a binding, or as a reference *)
  let arb =
    QCheck.make
      ~print:(fun l -> Printf.sprintf "%d payloads" (List.length l))
      QCheck.Gen.(list_size (int_range 1 8) (pair gen_value (int_bound 2)))
  in
  qc ~count:25 "intern wrapper round-trips payloads byte-identically" arb
    (fun pairs ->
      let payloads =
        List.concat_map (fun (v, dups) -> List.init (dups + 1) (fun _ -> v)) pairs
      in
      let got, _ = ship payloads in
      List.length got = List.length payloads
      && List.for_all2
           (fun v (_, v') -> byte_identical v v')
           payloads got)

let test_intern_ref_before_bind () =
  (* a reference the receiver has never seen must trigger a Need_intern /
     Backfill round-trip and still deliver the plain message *)
  let v = Value.intern (Value.str (String.make 48 'k')) in
  let sim = S.create () in
  let delivered = ref None in
  let needs = ref 0 in
  let _rx =
    S.spawn sim ~name:"rx" (fun () ->
        let t = Intern.wrap (env_of 0) in
        let env = Intern.env t in
        (match env.Transport.e_recv () with
        | Message.Attr { node; attr; value } -> delivered := Some (node, attr, value)
        | _ -> ());
        needs := (Intern.stats t).Intern.is_needs)
  in
  let _tx =
    S.spawn sim ~name:"tx" (fun () ->
        let env = env_of 1 in
        env.Transport.e_send ~dst:0
          (Message.Attr_ref { src = 1; node = 9; attr = "code"; iid = 42; hash = Value.hash v });
        match env.Transport.e_recv () with
        | Message.Need_intern { src = 0; iid = 42 } ->
            env.Transport.e_send ~dst:0
              (Message.Backfill { src = 1; iid = 42; value = v })
        | m -> Alcotest.failf "expected Need_intern, got %s" (Format.asprintf "%a" Message.pp m))
  in
  S.run sim;
  (match !delivered with
  | Some (9, "code", v') -> check_bool "payload intact" true (byte_identical v v')
  | Some _ -> Alcotest.fail "wrong message decoded"
  | None -> Alcotest.fail "reference was never resolved");
  check_int "exactly one backfill round-trip" 1 !needs

let test_intern_code_frag_roundtrip () =
  let text = Rope.of_string (String.make 80 'c') in
  let sim = S.create () in
  let got = ref [] in
  let refs = ref 0 in
  let _rx =
    S.spawn sim ~name:"rx" (fun () ->
        let env = Intern.env (Intern.wrap (env_of 0)) in
        for _ = 1 to 2 do
          match env.Transport.e_recv () with
          | Message.Code_frag { id; text } -> got := (id, text) :: !got
          | _ -> ()
        done)
  in
  let _tx =
    S.spawn sim ~name:"tx" (fun () ->
        let t = Intern.wrap (env_of 1) in
        let env = Intern.env t in
        env.Transport.e_send ~dst:0 (Message.Code_frag { id = 1; text });
        env.Transport.e_send ~dst:0 (Message.Code_frag { id = 2; text });
        refs := (Intern.stats t).Intern.is_refs)
  in
  S.run sim;
  check_int "both fragments" 2 (List.length !got);
  List.iter
    (fun (_, t) ->
      check_bool "text intact" true (String.equal (Rope.to_string t) (Rope.to_string text)))
    !got;
  check_int "second transmission was a reference" 1 !refs

(* --------------- end-to-end: memoized runs = interpreter --------------- *)

(* Locate examples/primes.pas from wherever the runner was started: the
   dune deps copy it next to the test under sandboxing, and walking up
   from _build/default/test reaches the source tree otherwise. *)
let primes =
  lazy
    (let rec find dir =
       let p = Filename.concat (Filename.concat dir "examples") "primes.pas" in
       if Sys.file_exists p then p
       else
         let parent = Filename.dirname dir in
         if String.equal parent dir then
           Alcotest.fail "examples/primes.pas not found"
         else find parent
     in
     In_channel.with_open_text (find (Sys.getcwd ())) In_channel.input_all)

let interp_out prog =
  match Pascal.Interp.run prog with
  | Ok s -> s
  | Error _ -> Alcotest.fail "interpreter failed"

let vax_out c =
  match Pascal.Driver.run_compiled ~input:[] c with
  | Ok s -> s
  | Error e -> Alcotest.failf "compiled program failed: %s" e

let test_primes_memoized_agrees () =
  let prog = Pascal.Parser.parse_program (Lazy.force primes) in
  let reference = interp_out prog in
  let plain = Pascal.Driver.compile ~evaluator:`Static prog in
  let st = Pascal.Driver.compile ~hashcons:true ~evaluator:`Static prog in
  let dy = Pascal.Driver.compile ~hashcons:true ~evaluator:`Dynamic prog in
  Alcotest.(check string) "memoized asm = plain asm" plain.Pascal.Driver.c_asm st.Pascal.Driver.c_asm;
  Alcotest.(check string) "static memoized = interpreter" reference (vax_out st);
  Alcotest.(check string) "dynamic memoized = interpreter" reference (vax_out dy)

let test_primes_parallel_hashcons () =
  let prog = Pascal.Parser.parse_program (Lazy.force primes) in
  let o =
    {
      Runner.default_options with
      Runner.machines = 3;
      use_librarian = true;
      phase_label = Pascal.Driver.phase_label;
    }
  in
  let r_plain, plain = Pascal.Driver.compile_parallel_sim o prog in
  let r_memo, memo =
    Pascal.Driver.compile_parallel_sim { o with Runner.use_hashcons = true } prog
  in
  Alcotest.(check string)
    "parallel memoized asm = parallel plain asm"
    plain.Pascal.Driver.c_asm memo.Pascal.Driver.c_asm;
  Alcotest.(check string)
    "parallel memoized output = interpreter" (interp_out prog) (vax_out memo);
  check_bool "interning does not inflate wire bytes" true
    (r_memo.Runner.r_bytes <= r_plain.Runner.r_bytes)

(* --------------- faults + hashcons combined --------------- *)

let test_faults_with_hashcons () =
  (* drop / duplicate / reorder with the intern librarian active: the
     reliable layer plus Need/Backfill must hide every fault, and the
     compiled code must match a clean memoized run bit for bit *)
  let prog = Pascal.Progen.repetitive ~routines:3 ~reps:30 () in
  let o =
    {
      Runner.default_options with
      Runner.machines = 3;
      use_librarian = true;
      use_hashcons = true;
      phase_label = Pascal.Driver.phase_label;
    }
  in
  let spec =
    {
      Netsim.Faults.none with
      Netsim.Faults.fs_drop = 0.08;
      fs_dup = 0.05;
      fs_reorder = 0.08;
      fs_seed = 11;
    }
  in
  let _, clean = Pascal.Driver.compile_parallel_sim o prog in
  let r, faulty =
    Pascal.Driver.compile_parallel_sim { o with Runner.faults = Some spec } prog
  in
  check_bool "no local recovery" true (not r.Runner.r_recovered);
  Alcotest.(check string)
    "faulty memoized code = clean memoized code"
    clean.Pascal.Driver.c_asm faulty.Pascal.Driver.c_asm;
  Alcotest.(check string)
    "faulty memoized output = interpreter" (interp_out prog) (vax_out faulty)

let prop_hashcons_chaos =
  let arb =
    QCheck.make
      ~print:(fun (d, s) -> Printf.sprintf "drop=%.2f seed=%d" d s)
      QCheck.Gen.(
        float_bound_inclusive 0.10 >>= fun d ->
        int_bound 10_000 >>= fun s -> return (d, s))
  in
  qc ~count:6 "memoized chaos run = clean memoized run" arb (fun (drop, seed) ->
      let prog = Pascal.Progen.repetitive ~routines:2 ~reps:20 () in
      let o =
        {
          Runner.default_options with
          Runner.machines = 3;
          use_librarian = true;
          use_hashcons = true;
          phase_label = Pascal.Driver.phase_label;
        }
      in
      let spec =
        {
          Netsim.Faults.none with
          Netsim.Faults.fs_drop = drop;
          fs_dup = drop /. 2.0;
          fs_reorder = drop;
          fs_seed = seed;
        }
      in
      let _, clean = Pascal.Driver.compile_parallel_sim o prog in
      let r, faulty =
        Pascal.Driver.compile_parallel_sim { o with Runner.faults = Some spec } prog
      in
      (not r.Runner.r_recovered)
      && String.equal clean.Pascal.Driver.c_asm faulty.Pascal.Driver.c_asm)

(* --------------- fragment wire format --------------- *)

(* The priced representation IS the shipped representation: dag_bytes must
   be the length of the encoding, the shared encoding must never exceed
   the plain one, decode must rebuild the fragment's shape (cut children
   as stubs), and Message.size must charge exactly header + those bytes. *)

let decoded_matches plan (orig : Tree.t) (dec : Tree.t) =
  let pv v = Format.asprintf "%a" Value.pp v in
  let rec go ~root (a : Tree.t) (b : Tree.t) =
    String.equal a.Tree.sym b.Tree.sym
    &&
    if (not root) && Split.fragment_of_cut_node plan a.Tree.id <> None then
      (* cut child: ships as a childless stub of the cut symbol *)
      Array.length b.Tree.children = 0
    else
      (match (a.Tree.prod, b.Tree.prod) with
      | Some pa, Some pb -> String.equal pa.Grammar.p_name pb.Grammar.p_name
      | None, None ->
          List.length a.Tree.term_attrs = List.length b.Tree.term_attrs
          && List.for_all
               (fun (n, v) ->
                 match List.assoc_opt n b.Tree.term_attrs with
                 | Some w -> String.equal (pv v) (pv w)
                 | None -> false)
               a.Tree.term_attrs
      | _ -> false)
      && Array.length a.Tree.children = Array.length b.Tree.children
      && Array.for_all2 (go ~root:false) a.Tree.children b.Tree.children
  in
  go ~root:true orig dec

let test_fragment_wire_roundtrip () =
  let g = Pascal.Pascal_ag.grammar in
  let prog = Pascal.Parser.parse_program (Lazy.force primes) in
  let tree = Pascal.Pascal_ag.tree_of_program g prog in
  ignore (Tree.number tree);
  let plan = Split.decompose g tree ~machines:4 ~granularity:1.0 in
  let sh = Tree.sharing tree in
  Array.iter
    (fun (f : Split.fragment) ->
      let plain = Split.encode plan f in
      let shared = Split.encode ~sharing:sh plan f in
      check_int
        (Printf.sprintf "fragment %d: priced = shipped" f.Split.fr_id)
        (String.length shared)
        (Split.dag_bytes plan sh f);
      check_bool
        (Printf.sprintf "fragment %d: sharing never inflates" f.Split.fr_id)
        true
        (String.length shared <= String.length plain);
      check_bool
        (Printf.sprintf "fragment %d: plain decode matches" f.Split.fr_id)
        true
        (decoded_matches plan f.Split.fr_root (Split.decode g plain));
      check_bool
        (Printf.sprintf "fragment %d: shared decode matches" f.Split.fr_id)
        true
        (decoded_matches plan f.Split.fr_root (Split.decode g shared));
      let bytes = String.length shared in
      let msg = Message.Subtree { frag = f.Split.fr_id; bytes; uid_base = 0 } in
      check_int
        (Printf.sprintf "fragment %d: Message.size = header + wire"
           f.Split.fr_id)
        (Message.header_bytes + bytes) (Message.size msg))
    (Split.fragments plan)

let suite =
  [
    ( "hashcons",
      [
        Alcotest.test_case "rope append depth" `Quick test_rope_append_depth;
        Alcotest.test_case "rope prepend depth" `Quick test_rope_prepend_depth;
        prop_intern_observational;
        prop_intern_canonical;
        prop_dag_size_bounded;
        prop_byte_size_is_flattened_length;
        Alcotest.test_case "dag size exploits sharing" `Quick
          test_dag_size_exploits_sharing;
        Alcotest.test_case "intern dedup round-trip" `Quick
          test_intern_dedup_roundtrip;
        prop_intern_roundtrip;
        Alcotest.test_case "ref before bind" `Quick test_intern_ref_before_bind;
        Alcotest.test_case "code fragment round-trip" `Quick
          test_intern_code_frag_roundtrip;
        Alcotest.test_case "primes.pas memoized = interpreter" `Quick
          test_primes_memoized_agrees;
        Alcotest.test_case "primes.pas parallel memoized" `Quick
          test_primes_parallel_hashcons;
        Alcotest.test_case "faults + hashcons" `Quick test_faults_with_hashcons;
        Alcotest.test_case "fragment wire: priced = shipped, decode agrees"
          `Quick test_fragment_wire_roundtrip;
        prop_hashcons_chaos;
      ] );
  ]
