(** Attribute-instance store for one (sub)tree.

    Creating a store numbers the tree (preorder) and allocates one dense slot
    per (nonterminal node, attribute) pair: all instances live in one flat
    value array indexed by [base(node) + attribute index], with a bitset
    tracking which slots have been set. Terminal attributes read through to
    the leaf's intrinsic values. Every evaluator in this library fills the
    same store type, which is what makes them directly comparable in tests.

    Slot ids ({!slot_of}, {!slot_count}) are exposed so graph-based
    evaluators can key their dependency structures on the same dense
    instance numbering instead of rebuilding their own. *)

open Pag_core

type t

exception Error of string

(** [create g root] numbers [root] and allocates slots. Optional [root_inh]
    presets inherited attributes of the root (they have no defining rule in
    the subtree). *)
val create : ?root_inh:(string * Value.t) list -> Grammar.t -> Tree.t -> t

(** Like {!create} but keeps the tree's existing (global) node ids — several
    stores over fragments of one shared tree can then coexist, including
    across domains. [stop] marks remote stubs: traversal allocates the stub's
    own slots (its boundary attributes live here too) but does not descend
    into its children. *)
val create_shared :
  ?root_inh:(string * Value.t) list ->
  ?stop:(Tree.t -> bool) ->
  Grammar.t ->
  Tree.t ->
  t

(** Node with the given id, when covered by this store. *)
val find_node : t -> int -> Tree.t option

val grammar : t -> Grammar.t

val root : t -> Tree.t

val node_count : t -> int

(** [set store node attr v]. Semantic rules are pure and every instance has
    exactly one defining rule, so re-setting an instance to an equal value
    (a replayed network message, say) is an idempotent no-op that does not
    count in {!sets}; re-setting it to a {e different} value raises
    [Error]. *)
val set : t -> Tree.t -> string -> Value.t -> unit

val get : t -> Tree.t -> string -> Value.t

val get_opt : t -> Tree.t -> string -> Value.t option

val is_set : t -> Tree.t -> string -> bool

(** Number of [set] calls so far. *)
val sets : t -> int

(** Number of attribute reads so far (rule-argument fetches, slot reads,
    [get]/[get_opt] lookups) — the "attribute store reads" telemetry
    counter. *)
val reads : t -> int

(** Attributes of the root, in declaration order, with their values;
    unevaluated ones are omitted. *)
val root_attrs : t -> (string * Value.t) list

(** Count of instances that are still unevaluated (terminal intrinsics do
    not count; preset root attributes do not count as missing). *)
val missing : t -> int

(** [apply_rule store node rule] evaluates one semantic rule of [node]'s
    production: reads the dependency values, applies the function, stores the
    target. Returns the computed value. *)
val apply_rule : t -> Tree.t -> Grammar.rule -> Value.t

(** [apply_rule_with store node rule ~fn] is {!apply_rule} with [fn]
    substituted for the rule's own function — the hook a memoizing caller
    uses to wrap the semantic function while keeping the store's
    read/apply/write protocol. [fn] must be extensionally equal to
    [rule.r_fn]. *)
val apply_rule_with :
  t -> Tree.t -> Grammar.rule -> fn:(Value.t array -> Value.t) -> Value.t

(** Dependency / target instances of a rule at a node, as (node, attr)
    pairs. Terminal-attribute dependencies are excluded (always available). *)
val rule_deps : t -> Tree.t -> Grammar.rule -> (Tree.t * string) list

val rule_target : Tree.t -> Grammar.rule -> Tree.t * string

(** Iterate over every (node, attr_decl) instance of nonterminal nodes. *)
val iter_instances : t -> (Tree.t -> Grammar.attr_decl -> unit) -> unit

(** {1 Dense instance ids}

    Every (nonterminal node, attribute) instance has a slot id in
    [0 .. slot_count - 1]. Terminal leaves have no slots. *)

val slot_count : t -> int

(** [slot_of store node ~attr_idx] — the slot id of [node]'s attribute with
    index [attr_idx] in its symbol's declaration array. Raises [Error] when
    [node] is not covered. *)
val slot_of : t -> Tree.t -> attr_idx:int -> int

(** [slot_owner store slot] — the (node, attribute index) instance a slot
    id belongs to. O(log nodes); post-run analyses ({!Pag_eval.Causal})
    use it to translate recorded slot ids into global (node id, attribute)
    keys. *)
val slot_owner : t -> int -> Tree.t * int

(** Dense (preorder) index of a covered node: slots of the node are
    [base(dense_index) ..]; {!Pag_eval.Engine} keys its per-node rule
    ranges on the same index. Raises [Error] when [node] is not covered. *)
val dense_index : t -> Tree.t -> int

(** Iterate covered nodes in dense (preorder) order. *)
val iter_nodes : t -> (Tree.t -> unit) -> unit

val slot_is_set : t -> int -> bool

(** Value stored in a slot. Meaningful only when {!slot_is_set}; reading an
    unset slot returns the initialisation value without error. *)
val slot_value : t -> int -> Value.t

(** Set a slot by id. Equal re-sets are idempotent no-ops; a conflicting
    re-set raises [Error] naming the owning node and attribute. *)
val define_slot : t -> int -> Value.t -> unit

(** {2 Parallel-phase primitives}

    The work-stealing evaluator ({!Pag_eval.Engine.run_steal}) writes
    slots from several domains at once. The set-bitset is byte-granular —
    marking bits concurrently would be a read-modify-write race — so the
    parallel phase uses these unchecked primitives and tracks readiness
    with its own atomic dependency counters, then restores the store's
    invariants sequentially after the join. *)

(** Write a slot value without marking it set and without counting the
    write. The slot reads as unset until {!commit_slot}. *)
val poke : t -> int -> Value.t -> unit

(** Read a slot the caller has proven ready, without counting the read. *)
val peek : t -> int -> Value.t

(** Mark a poked slot as set (idempotent; counts in {!sets} once). Must be
    called sequentially, after the parallel phase has joined. *)
val commit_slot : t -> int -> unit

(** Overwrite a slot unconditionally — the change-propagation primitive of
    incremental re-evaluation. Returns [true] when the stored value
    actually changed (undecidable equality counts as changed); that answer
    is the equality cutoff that stops propagation early. *)
val redefine_slot : t -> int -> Value.t -> bool

(** [append_subtree store sub] extends the store with slots for the nodes
    of a replacement subtree whose preorder ids start exactly where the
    store's covered id range ends ({!Pag_core.Tree.number_from}). Existing
    slot ids, values and bits are preserved; the detached subtree's slots
    become dead weight until the next full rebuild. *)
val append_subtree : t -> Tree.t -> unit

(** Slot id of the instance a rule defines at [node]. *)
val rule_target_slot : t -> Tree.t -> Grammar.rule -> int

(** {1 Slot ranges}

    Preorder node ids make a subtree a contiguous id range, and a store
    covering that whole range maps it to a contiguous slot range — which
    lets subtree memoization snapshot one occurrence's attributes and
    replay them at another occurrence of the same shape by pure offset
    arithmetic. *)

(** [slot_range store ~id_lo ~id_count] — [Some (lo, hi)] (slots
    [lo .. hi-1]) when all node ids [id_lo .. id_lo + id_count - 1] are
    covered contiguously; [None] otherwise (e.g. a fragment store whose
    stub interrupts the range). O(1). *)
val slot_range : t -> id_lo:int -> id_count:int -> (int * int) option

(** All set slots in [lo .. hi-1] as (offset from [lo], value) pairs. *)
val snapshot_range : t -> lo:int -> hi:int -> (int * Value.t) array

(** Define each snapshot entry at [lo] + offset. Entries equal to already
    set slots are idempotent no-ops, like any re-{!set}. *)
val replay_range : t -> lo:int -> (int * Value.t) array -> unit

(** {1 Occurrence projection (DAG evaluation support)}

    [project_range s ~src_lo ~dst_lo ~len f] copies every slot value set in
    [src_lo .. src_lo+len) onto the corresponding offset of
    [dst_lo .. dst_lo+len), skipping destination slots that are already set
    (the destination occurrence's inherited context — the caller guarantees
    it is fingerprint-equal to the source's). Calls [f dst_slot] once per
    newly defined slot, in ascending order, so the scheduler can release
    consumers. This is how the DAG engine fans one class evaluation out to
    its other occurrences without firing their rules. *)
val project_range :
  t -> src_lo:int -> dst_lo:int -> len:int -> (int -> unit) -> unit
