(** The classic "repmin" attribute grammar: replace every leaf of a binary
    tree by the global minimum of all leaves.

    This grammar is deliberately not one-visit: the root production feeds the
    synthesized [min] back down as the inherited [gmin], so the result
    attribute [res] of any subtree depends on information from the entire
    tree. Kastens' analysis must assign two visits to [tree] — it is the
    canonical test that ordered evaluation, visit sequences, and the combined
    evaluator handle multi-visit grammars. *)

open Pag_core

val grammar : Grammar.t

(** {1 Tree builders} *)

val leaf : int -> Tree.t

val fork : Tree.t -> Tree.t -> Tree.t

val root : Tree.t -> Tree.t

(** [random_tree st ~depth] builds a random shape with random leaf values. *)
val random_tree : Random.State.t -> depth:int -> Tree.t

(** Ground-truth result: the mirror-shape tree as a [Value.t] ([Int] leaves,
    [Pair] forks) with all leaves replaced by the minimum. *)
val reference_result : Tree.t -> Value.t
