(** ASCII rendering of a simulation trace, in the style of the paper's
    figure 6: one row per process, thick marks for active periods, thin dots
    for idle periods, '|' for phase marks, plus a message summary. *)

val render :
  ?width:int -> ?max_arrows:int -> names:(int -> string) -> Trace.t -> string
