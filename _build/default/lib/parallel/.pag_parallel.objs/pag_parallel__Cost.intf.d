lib/parallel/cost.mli:
