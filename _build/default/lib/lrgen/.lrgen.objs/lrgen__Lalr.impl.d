lib/lrgen/lalr.ml: Array Cfg Format Hashtbl List Option Printf Queue Set String
