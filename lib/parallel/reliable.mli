(** Reliable, idempotent message delivery over a lossy transport.

    The paper's protocol assumes the network never loses, duplicates or
    reorders a message. When fault injection ({!Netsim.Faults}) drops that
    assumption, this layer restores it end-to-end: every application message
    is wrapped in a {!Message.Data} envelope carrying the sender id and a
    sequence number, the receiver acknowledges each envelope with
    {!Message.Ack}, unacknowledged envelopes are retransmitted with
    exponential backoff, and the receiver suppresses duplicates by
    [(src, seq)] — so a worker never sees a replayed [Attr] twice and the
    librarian never splices a retransmitted [Code_frag] into the code twice.

    Retransmission timers are lazy: they are checked whenever the process
    waits in a receive, and {!drain} (exposed as [e_flush] on the wrapped
    environment) runs them to completion before a process exits. A peer that
    fails to acknowledge after [max_tries] retransmissions is presumed dead;
    traffic to it is abandoned (and recorded), which keeps every process
    terminating even when a machine has crashed. *)

type stats = {
  mutable rs_sent : int;  (** application messages sent (excl. acks) *)
  mutable rs_retransmits : int;
  mutable rs_acks : int;  (** acknowledgements emitted *)
  mutable rs_dup_dropped : int;  (** duplicate envelopes suppressed *)
  mutable rs_gave_up : int;  (** messages abandoned to presumed-dead peers *)
}

type t

(** [wrap env] layers reliable delivery over a raw transport environment.
    [rto] is the initial retransmission timeout in transport seconds
    (doubled on every retry); after [max_tries] unacknowledged
    retransmissions the destination is presumed dead. With a live [obs]
    context, retransmissions / duplicate drops / give-ups are recorded as
    instant events and the [reliable.*] counters mirror {!stats}. *)
val wrap :
  ?obs:Pag_obs.Obs.ctx -> ?rto:float -> ?max_tries:int -> Transport.env -> t

(** The reliable environment: same machine id, sends wrapped in [Data]
    envelopes, receives unwrapped, deduplicated payloads; [e_flush] drains.
    Acks and [Ping]s are handled internally and never surface. *)
val env : t -> Transport.env

(** Block until every outstanding message is acknowledged or its
    destination is presumed dead. *)
val drain : t -> unit

(** Send a liveness probe. The peer's reliable layer acknowledges it
    without delivering anything to the application; combine with {!drain}
    and {!dead_peers} to detect crashed machines. *)
val ping : t -> dst:int -> unit

(** Machines that exhausted their retransmissions, in increasing id order. *)
val dead_peers : t -> int list

val stats : t -> stats
