lib/pascal/ast.ml: List Printf String
