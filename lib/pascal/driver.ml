open Pag_analysis
open Pag_eval
open Pag_parallel

type compiled = { c_asm : string; c_errors : string list }

exception Compile_error of string

let analyze g =
  match Kastens.analyze g with
  | Ok p -> p
  | Error f ->
      raise
        (Compile_error (Format.asprintf "grammar analysis failed: %a" Kastens.pp_failure f))

let plan = lazy (analyze Pascal_ag.grammar)

let plan_threaded = lazy (analyze Pascal_ag.grammar_threaded)

let phase_label = function
  | 1 -> Some "symbol table"
  | 2 -> Some "code generation"
  | _ -> None

let compiled_of_attrs attrs =
  {
    c_asm = Pascal_ag.code_of_attrs attrs;
    c_errors = Pascal_ag.errors_of_attrs attrs;
  }

let compile ?obs ?hashcons ?dag ?dag_out ?prov ?engine_out ?tree_out
    ?(evaluator = `Static) prog =
  let tree =
    match obs with
    | Some x when Pag_obs.Obs.ctx_enabled x ->
        Pag_obs.Obs.with_span x "parse+build" (fun () ->
            Pascal_ag.tree_of_program Pascal_ag.grammar prog)
    | _ -> Pascal_ag.tree_of_program Pascal_ag.grammar prog
  in
  Option.iter (fun f -> f tree) tree_out;
  let store =
    match evaluator with
    | `Static ->
        (* the static schedule's collapse unit is the whole subtree visit:
           [--dag] maps to the subtree memo, which is keyed on the same
           shape-class table the DAG runtime projects over *)
        let hashcons =
          match dag with Some true -> Some true | _ -> hashcons
        in
        let store, _ =
          Static_eval.eval ?obs ?hashcons ?prov ?engine_out (Lazy.force plan)
            tree
        in
        store
    | `Dynamic ->
        let store, _ =
          Dynamic.eval ?obs ?hashcons ?dag ?dag_out ?prov ?engine_out
            Pascal_ag.grammar tree
        in
        store
    | `Oracle -> Oracle.eval Pascal_ag.grammar tree
  in
  compiled_of_attrs (Store.root_attrs store)

let compile_source src = compile (Parser.parse_program src)

let grammar_of = function
  | `Base -> (Pascal_ag.grammar, Lazy.force plan)
  | `Threaded -> (Pascal_ag.grammar_threaded, Lazy.force plan_threaded)

let compile_parallel_sim ?(variant = `Base) opts prog =
  let g, pl = grammar_of variant in
  let tree = Pascal_ag.tree_of_program g prog in
  let opts = { opts with Runner.phase_label } in
  let result = Runner.run_sim opts g (Some pl) tree in
  (result, compiled_of_attrs result.Runner.r_attrs)

let compile_parallel_domains ?(variant = `Base) opts prog =
  let g, pl = grammar_of variant in
  let tree = Pascal_ag.tree_of_program g prog in
  let opts = { opts with Runner.phase_label } in
  let result = Runner.run_domains opts g (Some pl) tree in
  (result, compiled_of_attrs result.Runner.r_attrs)

let optimize c = { c with c_asm = Peephole.optimize_text c.c_asm }

(* Label numbers (L<n>, P<n>) depend on rule firing order, which differs
   between evaluators; the instruction sequence is determined by the tree
   alone.  Masking every label token (definitions and references alike)
   yields text that is comparable across evaluators and edit sessions. *)
let mask_labels s =
  let n = String.length s in
  let buf = Buffer.create n in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || is_digit c || c = '_'
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if
      (c = 'L' || c = 'P')
      && !i + 1 < n
      && is_digit s.[!i + 1]
      && (!i = 0 || not (is_word s.[!i - 1]))
    then begin
      Buffer.add_char buf c;
      Buffer.add_char buf '_';
      incr i;
      while !i < n && is_digit s.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let run_compiled ?fuel ?input c =
  if c.c_errors <> [] then
    raise
      (Compile_error
         ("program has semantic errors: " ^ String.concat "; " c.c_errors));
  match Vax.Machine.run_text ?fuel ?input c.c_asm with
  | Ok o -> Ok o.Vax.Machine.output
  | Error e -> Error (Vax.Machine.error_to_string e)
