(* Shared production-spec DSL and Value shorthands for the Pascal attribute
   grammar, used by Pascal_ag, Stmt_rules and Expr_rules.

   A production spec is mode-independent: rules that consume unique labels
   are written with [rl] and receive the label numbers however the selected
   variant provides them (per-evaluator Uid bases, or a counter attribute
   threaded through the tree). *)

open Pag_core
open Pag_util

(* ---------------- value shorthands ---------------- *)

let id args = args.(0)

let v_int n = Value.Int n

let v_str s = Value.str s

let v_list l = Value.List l

let as_int = Value.as_int

let as_bool = Value.as_bool

let as_list = Value.as_list

let as_str ~ctx v = Rope.to_string (Value.as_str ~ctx v)

let as_code = Cg.of_value

let code v = Cg.value v

let errs_v l = v_list (List.map (fun s -> Value.str s) l)

let as_errs ~ctx v = List.map (fun s -> as_str ~ctx s) (as_list ~ctx v)

let cat_errs vs = v_list (List.concat_map (fun v -> as_list ~ctx:"errs" v) vs)

let lookup_env ~ctx envv name =
  let tab = Value.as_tab ~ctx envv in
  Symtab.lookup tab name

(* ---------------- production specs ---------------- *)

type rule_spec =
  | R of Grammar.attr_ref * Grammar.attr_ref list * (Value.t array -> Value.t)
  | RL of
      Grammar.attr_ref
      * Grammar.attr_ref list
      * (labels:int array -> Value.t array -> Value.t)

type prod_spec = {
  sp_name : string;
  sp_lhs : string;
  sp_rhs : string list;
  sp_labels : int;
  sp_rules : rule_spec list;
}

let prod ?(labels = 0) name lhs rhs rules =
  { sp_name = name; sp_lhs = lhs; sp_rhs = rhs; sp_labels = labels; sp_rules = rules }

let r target deps fn = R (target, deps, fn)

let rl target deps fn = RL (target, deps, fn)

(* copy env+level down to the given child positions *)
let down positions =
  let open Grammar in
  List.concat_map
    (fun p ->
      [ r (rhs p "env") [ lhs "env" ] id; r (rhs p "level") [ lhs "level" ] id ])
    positions

(* aggregate errs from children at the given positions *)
let errs_up ?(extra = []) ?(extra_fn = fun _ -> []) positions =
  let open Grammar in
  let deps = List.map (fun p -> rhs p "errs") positions @ extra in
  r (lhs "errs") deps (fun args ->
      let child_errs =
        Array.to_list (Array.sub args 0 (List.length positions))
      in
      cat_errs (child_errs @ [ errs_v (extra_fn args) ]))

(* ---------------- type-checking helpers ---------------- *)

let want_ty what expected actual =
  if Ast.ty_equal expected actual then []
  else
    [
      Printf.sprintf "%s: expected %s, got %s" what (Ast.ty_to_string expected)
        (Ast.ty_to_string actual);
    ]

let comparable a b =
  Ast.ty_equal a b
  ||
  match (a, b) with
  | Ast.TInt, Ast.TChar | Ast.TChar, Ast.TInt -> true
  | _ -> false

(* ---------------- list payload conversions ---------------- *)

let plist_of_value ~ctx v =
  List.map
    (fun p ->
      let name, rest = Value.as_pair ~ctx p in
      let tyv, refv = Value.as_pair ~ctx rest in
      (as_str ~ctx name, Pvalue.as_ty ~ctx tyv, as_bool ~ctx refv))
    (as_list ~ctx v)

let psig_of_plist plist = List.map (fun (_, t, b) -> (t, b)) plist

let rawdecls_of_value ~ctx v =
  List.map (fun d -> Pvalue.as_raw ~ctx d) (as_list ~ctx v)

let psig_of_value ~ctx v =
  List.map
    (fun p ->
      let tyv, refv = Value.as_pair ~ctx p in
      (Pvalue.as_ty ~ctx tyv, as_bool ~ctx refv))
    (as_list ~ctx v)

let psig_value psig =
  v_list
    (List.map (fun (t, b) -> Value.Pair (Pvalue.ty t, Value.Bool b)) psig)

let tys_of_value ~ctx v = List.map (fun t -> Pvalue.as_ty ~ctx t) (as_list ~ctx v)
