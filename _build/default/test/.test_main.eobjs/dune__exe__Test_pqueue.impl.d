test/test_pqueue.ml: Alcotest List Pag_util Pqueue QCheck QCheck_alcotest
