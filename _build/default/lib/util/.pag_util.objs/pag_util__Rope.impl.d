lib/util/rope.ml: Buffer Char Format List String
