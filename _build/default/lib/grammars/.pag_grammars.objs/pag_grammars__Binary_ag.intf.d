lib/grammars/binary_ag.mli: Grammar Pag_core Random Tree
