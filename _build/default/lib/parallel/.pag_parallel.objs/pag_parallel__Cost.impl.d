lib/parallel/cost.ml:
