lib/parallel/transport.ml: Message
