(* The string-librarian optimization (paper, section 4.3): result
   propagation with and without the librarian process.

   Without it, each evaluator ships its ever-growing code attribute to its
   ancestor: the code crosses the network as many times as the process tree
   is deep, strictly sequentially. With it, each evaluator sends its text to
   the librarian exactly once and passes only a small descriptor upward.

   Run with: dune exec examples/librarian_demo.exe *)

open Pascal
open Pag_parallel

let () =
  let program = Progen.paper_program () in
  let opts librarian =
    {
      Runner.default_options with
      Runner.machines = 5;
      mode = `Combined;
      use_librarian = librarian;
      phase_label = Driver.phase_label;
    }
  in
  let with_lib, c = Driver.compile_parallel_sim (opts true) program in
  let without, _ = Driver.compile_parallel_sim (opts false) program in
  Printf.printf "generated code: %d bytes of assembly\n\n"
    (String.length c.Driver.c_asm);
  let show name (r : Runner.result) =
    Printf.printf "%-24s %8.3fs simulated   %4d messages   %8d KB on the wire\n"
      name r.Runner.r_time r.Runner.r_messages (r.Runner.r_bytes / 1024)
  in
  show "with string librarian:" with_lib;
  show "naive propagation:" without;
  Printf.printf "\nimprovement: %.2fs (%.1f%%)\n"
    (without.Runner.r_time -. with_lib.Runner.r_time)
    (100.0
    *. (without.Runner.r_time -. with_lib.Runner.r_time)
    /. without.Runner.r_time);
  (* where the bytes go: the final code messages *)
  (match with_lib.Runner.r_trace with
  | Some tr ->
      let code_msgs =
        List.filter
          (fun a ->
            a.Netsim.Trace.ar_label = "code fragment"
            || a.Netsim.Trace.ar_label = "final code")
          (Netsim.Trace.arrows tr)
      in
      Printf.printf
        "\nwith the librarian, each evaluator's code text crossed the network \
         once\n(%d code transmissions), descriptors travelled up the tree instead.\n"
        (List.length code_msgs)
  | None -> ())
