(** Execution traces of a simulation run: per-process activity segments,
    message arrows, and labelled phase marks — the raw material of the
    paper's figure 6 (behaviour of the combined evaluator).

    Segments, arrows and marks live in growable array buffers appended in
    O(1); the iteration accessors walk the buffers in recording order
    without allocating, so repeated consumers ({!Gantt.render}, the
    telemetry exporters) pay no per-call cost. The horizon is maintained
    incrementally. *)

type kind = Active | Idle

type segment = { sg_pid : int; sg_t0 : float; sg_t1 : float; sg_kind : kind }

type arrow = {
  ar_src : int;
  ar_dst : int;
  ar_send : float;
  ar_recv : float;
  ar_label : string;
}

type mark = { mk_pid : int; mk_time : float; mk_label : string }

type t

val create : unit -> t

val add_segment : t -> pid:int -> t0:float -> t1:float -> kind -> unit

val add_arrow :
  t -> src:int -> dst:int -> send:float -> recv:float -> label:string -> unit

val add_mark : t -> pid:int -> time:float -> label:string -> unit

val num_segments : t -> int

val num_arrows : t -> int

val num_marks : t -> int

(** Iterate in recording order. *)
val iter_segments : t -> (segment -> unit) -> unit

val iter_arrows : t -> (arrow -> unit) -> unit

val iter_marks : t -> (mark -> unit) -> unit

(** Fresh lists in recording order (convenience for tests and small
    consumers; hot paths should use the iterators). *)
val segments : t -> segment list

val arrows : t -> arrow list

val marks : t -> mark list

(** Latest segment/arrow end time. O(1): maintained on append. *)
val horizon : t -> float

(** Total active time of one process. *)
val active_time : t -> pid:int -> float

(** Fraction of [0, horizon] the process was active. *)
val utilization : t -> pid:int -> float
