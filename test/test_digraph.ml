open Pag_util

let qc ?(count = 150) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty_graph () =
  let g = Digraph.make 0 [] in
  check_int "nodes" 0 (Digraph.node_count g);
  Alcotest.(check (option (list int))) "topo" (Some []) (Digraph.topo_sort g)

let test_basic_edges () =
  let g = Digraph.make 3 [ (0, 1); (1, 2); (0, 1) ] in
  check_int "duplicate edges coalesced" 2 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succs 0" [ 1 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds 2" [ 1 ] (Digraph.preds g 2);
  check_bool "mem_edge" true (Digraph.mem_edge g 0 1);
  check_bool "no reverse edge" false (Digraph.mem_edge g 1 0)

let test_out_of_range () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Digraph.make: endpoint out of range") (fun () ->
      ignore (Digraph.make 2 [ (0, 2) ]))

let test_topo_chain () =
  let g = Digraph.make 4 [ (3, 2); (2, 1); (1, 0) ] in
  Alcotest.(check (option (list int)))
    "reverse chain" (Some [ 3; 2; 1; 0 ]) (Digraph.topo_sort g)

let test_topo_deterministic () =
  (* Among simultaneously-ready nodes, smaller index first. *)
  let g = Digraph.make 4 [ (1, 3); (0, 3); (2, 3) ] in
  Alcotest.(check (option (list int)))
    "stable order" (Some [ 0; 1; 2; 3 ]) (Digraph.topo_sort g)

let test_cycle_detected () =
  let g = Digraph.make 3 [ (0, 1); (1, 2); (2, 0) ] in
  check_bool "has cycle" true (Digraph.has_cycle g);
  Alcotest.(check (option (list int))) "no topo" None (Digraph.topo_sort g)

let test_self_loop () =
  let g = Digraph.make 2 [ (1, 1) ] in
  check_bool "self loop is a cycle" true (Digraph.has_cycle g);
  match Digraph.find_cycle g with
  | Some [ 1 ] -> ()
  | other ->
      Alcotest.failf "expected [1], got %s"
        (match other with
        | None -> "None"
        | Some l -> String.concat "," (List.map string_of_int l))

let test_find_cycle_valid () =
  let g = Digraph.make 5 [ (0, 1); (1, 2); (2, 3); (3, 1); (3, 4) ] in
  match Digraph.find_cycle g with
  | None -> Alcotest.fail "cycle expected"
  | Some cyc ->
      check_bool "nonempty" true (cyc <> []);
      (* Every consecutive pair (and the wrap-around pair) must be an edge. *)
      let arr = Array.of_list cyc in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        check_bool "edge in cycle" true
          (Digraph.mem_edge g arr.(i) arr.((i + 1) mod n))
      done

let test_transitive_closure () =
  let g = Digraph.make 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Digraph.transitive_closure g in
  check_bool "0 reaches 3" true (Digraph.mem_edge c 0 3);
  check_bool "1 reaches 3" true (Digraph.mem_edge c 1 3);
  check_bool "3 reaches nothing" true (Digraph.succs c 3 = []);
  check_int "closure of a 3-chain" 6 (Digraph.edge_count c)

let test_closure_with_cycle () =
  let g = Digraph.make 3 [ (0, 1); (1, 0); (1, 2) ] in
  let c = Digraph.transitive_closure g in
  check_bool "0 reaches itself through the cycle" true (Digraph.mem_edge c 0 0);
  check_bool "0 reaches 2" true (Digraph.mem_edge c 0 2)

let test_sccs () =
  let g = Digraph.make 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3); (2, 3) ] in
  let comps =
    Digraph.sccs g |> List.map (List.sort compare) |> List.sort compare
  in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] comps

let test_add_edges () =
  let g = Digraph.make 3 [ (0, 1) ] in
  let g' = Digraph.add_edges g [ (1, 2) ] in
  check_bool "old edge kept" true (Digraph.mem_edge g' 0 1);
  check_bool "new edge added" true (Digraph.mem_edge g' 1 2);
  check_bool "original unchanged" false (Digraph.mem_edge g 1 2)

(* Random DAG generator: edges only from lower to higher indices. *)
let dag_arb =
  let gen =
    let open QCheck.Gen in
    int_range 1 25 >>= fun n ->
    let all_pairs = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        all_pairs := (i, j) :: !all_pairs
      done
    done;
    let pairs = !all_pairs in
    list_size (int_bound (List.length pairs)) (oneofl ((0, 1) :: pairs))
    >>= fun chosen ->
    let chosen = List.filter (fun (i, j) -> i < j && j < n) chosen in
    return (n, chosen)
  in
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen

let prop_dag_topo_respects_edges =
  qc "topo order respects every edge" dag_arb (fun (n, es) ->
      let g = Digraph.make n es in
      match Digraph.topo_sort g with
      | None -> false
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.for_all (fun (u, v) -> pos.(u) < pos.(v)) es
          && List.length order = n)

let prop_dag_no_cycle =
  qc "index-increasing graphs are acyclic" dag_arb (fun (n, es) ->
      not (Digraph.has_cycle (Digraph.make n es)))

let prop_closure_transitive =
  qc "closure is transitively closed" dag_arb (fun (n, es) ->
      let c = Digraph.transitive_closure (Digraph.make n es) in
      List.for_all
        (fun (u, v) ->
          List.for_all (fun w -> Digraph.mem_edge c u w) (Digraph.succs c v))
        (Digraph.edges c))

let prop_cycle_iff_no_topo =
  qc "has_cycle iff topo_sort fails"
    QCheck.(
      pair (int_range 1 15)
        (list_of_size Gen.(int_bound 30) (pair (int_bound 14) (int_bound 14))))
    (fun (n, es) ->
      let es = List.filter (fun (a, b) -> a < n && b < n) es in
      let g = Digraph.make n es in
      Digraph.has_cycle g = (Digraph.topo_sort g = None)
      && Digraph.has_cycle g = (Digraph.find_cycle g <> None))

let suite =
  [
    ( "digraph",
      [
        Alcotest.test_case "empty" `Quick test_empty_graph;
        Alcotest.test_case "edges" `Quick test_basic_edges;
        Alcotest.test_case "range check" `Quick test_out_of_range;
        Alcotest.test_case "topo chain" `Quick test_topo_chain;
        Alcotest.test_case "topo deterministic" `Quick test_topo_deterministic;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detected;
        Alcotest.test_case "self loop" `Quick test_self_loop;
        Alcotest.test_case "find_cycle valid" `Quick test_find_cycle_valid;
        Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
        Alcotest.test_case "closure with cycle" `Quick test_closure_with_cycle;
        Alcotest.test_case "sccs" `Quick test_sccs;
        Alcotest.test_case "add_edges" `Quick test_add_edges;
        prop_dag_topo_respects_edges;
        prop_dag_no_cycle;
        prop_closure_transitive;
        prop_cycle_iff_no_topo;
      ] );
  ]
