type params = {
  latency : float;
  bandwidth : float;
  send_overhead : float;
  send_per_byte : float;
  contention : bool;
}

let default_params =
  {
    latency = 0.001;
    bandwidth = 1_250_000.0 (* 10 Mbit/s *);
    send_overhead = 0.0005;
    send_per_byte = 2e-7;
    contention = true;
  }

type t = {
  p : params;
  mutable free_at : float;
  mutable bytes : int;
  mutable messages : int;
  mutable queue_time : float;
}

let create p = { p; free_at = 0.0; bytes = 0; messages = 0; queue_time = 0.0 }

let params t = t.p

let transmit ?(jitter = 0.0) t ~now ~size =
  let tx = float_of_int size /. t.p.bandwidth in
  let start = if t.p.contention then max now t.free_at else now in
  if t.p.contention then begin
    t.queue_time <- t.queue_time +. (start -. now);
    t.free_at <- start +. tx
  end;
  t.bytes <- t.bytes + size;
  t.messages <- t.messages + 1;
  start +. tx +. t.p.latency +. jitter

let sender_cost t ~size =
  t.p.send_overhead +. (float_of_int size *. t.p.send_per_byte)

let bytes_sent t = t.bytes

let messages_sent t = t.messages

let contention_time t = t.queue_time
