(** Parser-side protocol: assign fragments to evaluators, collect the root
    attributes, and resolve code descriptors through the librarian.

    This is the paper's measurement boundary — "running time is measured
    from the time the parser initiates evaluation until it receives back the
    root attributes" — so the runners time exactly this function. *)

open Pag_core

(** [run env g ~tree ~plan ~librarian] returns the root's synthesized
    attributes with any librarian descriptors replaced by the assembled
    text. *)
val run :
  Transport.env ->
  Grammar.t ->
  tree:Tree.t ->
  plan:Split.plan ->
  librarian:int option ->
  (string * Value.t) list
