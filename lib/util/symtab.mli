(** Applicative symbol tables.

    Implements the paper's symbol-table representation (section 4.3): a
    persistent binary search tree keyed by the hash index of the identifier,
    so that keys are essentially uniformly distributed and the tree stays
    balanced without any rebalancing machinery. Updates are applicative
    ([add] returns a new table sharing structure with the old one), which is
    what makes symbol tables safe to propagate between evaluators running in
    parallel.

    Identifiers whose hash indices collide are kept in a per-node bucket, so
    lookups are always exact. Adding a binding for an existing identifier
    shadows it in the new table only. *)

type 'a t

val empty : 'a t

(** [add tab name v] is the paper's [st_add]: a table identical to [tab]
    except that [name] is bound to [v]. *)
val add : 'a t -> string -> 'a -> 'a t

(** [lookup tab name] is the paper's [st_lookup]. *)
val lookup : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** Number of bindings (shadowed bindings count once). *)
val cardinal : 'a t -> int

(** Height of the BST; the empty table has height 0. *)
val height : 'a t -> int

val of_list : (string * 'a) list -> 'a t

(** All bindings in unspecified order. *)
val to_list : 'a t -> (string * 'a) list

val fold : (string -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** [equal veq a b] holds when both tables bind the same set of identifiers
    to values equal under [veq]. *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** The hash index used as BST key; exposed for tests and benchmarks. *)
val hash_of_name : string -> int

(** {1 Hash-consing}

    An {!interner} canonicalizes tables bottom-up, one BST node at a time,
    in a dedicated {!Hcons} arena. Bucket values are canonicalized through
    the [intern_value] callback before their node is interned, so node
    equality compares values by the [value_identical] predicate (usually
    [==]). Interning preserves the BST shape: tables built by the same
    sequence of [add]s share one representation; shape-distinct but
    binding-equal tables merely remain {!equal}. *)

type 'a interner

(** [interner ~value_hash ~value_identical name] — a fresh arena named
    [name] in {!Hcons.all_stats}. [value_hash] must hash canonical values
    (as produced by the [intern_value] passed to {!intern}) consistently
    with [value_identical]. *)
val interner :
  value_hash:('a -> int) ->
  value_identical:('a -> 'a -> bool) ->
  string ->
  'a interner

(** Canonical representative of [tab]; [intern_value] canonicalizes each
    bound value first. O(1) per previously seen node. *)
val intern : 'a interner -> intern_value:('a -> 'a) -> 'a t -> 'a t

(** Structural hash consistent with {!intern} (physically equal canonical
    tables hash equally). Interns first. *)
val hash : 'a interner -> intern_value:('a -> 'a) -> 'a t -> int
