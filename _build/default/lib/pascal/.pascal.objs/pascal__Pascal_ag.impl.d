lib/pascal/pascal_ag.ml: Ag_dsl Array Ast Cg Char Codestr Expr_rules Grammar List Pag_core Pag_util Printf Pvalue Rope Stmt_rules Symtab Tree Uid Value Vax
