(** Binary encoding of the VAX subset.

    The paper argues for integrating assembly into the parallel compiler
    because "machine language is much more compact than assembly language,
    resulting in smaller attributes being transmitted over the network".
    This module quantifies that: {!encoded_size} is the size of the object
    form whose ratio to the assembly text the benchmark's E9 section
    reports.

    Labels occupy no code bytes; branch and address operands refer to a
    symbol table carried alongside, so {!encode}/{!decode} round-trip
    exactly (comments excepted). *)

type obj = { o_code : bytes; o_symbols : string array }

val encode : Isa.instr list -> obj

(** Raises [Invalid_argument] on a corrupt object. *)
val decode : obj -> Isa.instr list

(** Code bytes + symbol-table bytes. *)
val encoded_size : Isa.instr list -> int
