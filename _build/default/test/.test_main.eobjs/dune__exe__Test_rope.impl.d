test/test_rope.ml: Alcotest Buffer Filename List Pag_util QCheck QCheck_alcotest Rope Stdlib String Sys
