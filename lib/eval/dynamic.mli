(** Dynamic attribute evaluator (paper, section 2.3 and figure 1).

    Given a tree, builds the dependency graph between all attribute
    instances, then evaluates rules in topological order as they become
    ready. Handles any noncircular tree (a strictly larger class than
    ordered grammars) at the price of computing and storing per-tree
    dependency information — the overhead the combined evaluator avoids.

    The returned statistics expose that price: [instances] and [edges]
    measure the graph that had to be built, [evals] the rules fired. *)

open Pag_core

type stats = {
  instances : int;  (** attribute instances in the dependency graph *)
  edges : int;  (** dependency edges built *)
  evals : int;  (** semantic rules fired *)
}

exception Cycle of string

(** [eval ?obs g t]. With a live [obs] context, records spans for the two
    phases the paper charges the dynamic evaluator for (dependency-graph
    construction, topological evaluation) plus the [eval.dynamic_rules],
    [graph.nodes], [graph.edges] and store counters.

    [~hashcons:true] memoizes rule applications on (rule, canonical
    arguments) through a {!Memo.rules} cache — the dynamic evaluator fires
    rules in data-driven order, so unlike the static evaluator it reuses
    shared work per rule application rather than per subtree.
    Label-consuming rules are detected and never memoized; semantics are
    unchanged.

    [~dag:true] makes the shared DAG the evaluation substrate: the
    instance table is built with one rule-instance set per unique subtree
    ({!Dag}) — non-leader occurrences of shared classes are parked and
    resolved at runtime by projecting their class evaluation's slot range
    (same inherited fingerprint) or materializing their own instances
    (divergent fingerprint, or uid-consuming class). Results are identical
    to [~dag:false] up to label numbering. [dag_out] hands out the DAG
    runtime for post-run statistics.

    [prov]/[prov_clock]/[engine_out] mirror {!Static_eval.eval}: attach a
    provenance ring to the run's engine and hand the engine out for
    post-run analysis ({!Causal}). *)
val eval :
  ?obs:Pag_obs.Obs.ctx ->
  ?root_inh:(string * Value.t) list ->
  ?hashcons:bool ->
  ?dag:bool ->
  ?dag_out:(Dag.t -> unit) ->
  ?prov:Pag_obs.Prov.t ->
  ?prov_clock:(unit -> float) ->
  ?engine_out:(Engine.t -> unit) ->
  Grammar.t ->
  Tree.t ->
  Store.t * stats
