test/test_lrgen.ml: Alcotest Cfg Char Engine Fun Lalr Lazy List Lrgen Printf QCheck QCheck_alcotest String
