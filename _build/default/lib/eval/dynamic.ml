open Pag_core

type stats = { instances : int; edges : int; evals : int }

exception Cycle of string

type rule_node = { rn_node : Tree.t; rn_rule : Grammar.rule; mutable waiting : int }

let eval_inner ?root_inh g t =
  let store = Store.create ?root_inh g t in
  let n = Store.node_count store in
  (* Dense instance ids: base.(node id) + attribute index. *)
  let base = Array.make (n + 1) 0 in
  let nodes = Array.make n t in
  Tree.iter (fun node -> nodes.(node.Tree.id) <- node) t;
  for i = 0 to n - 1 do
    base.(i + 1) <- base.(i) + Grammar.attr_count g nodes.(i).Tree.sym
  done;
  let total = base.(n) in
  let inst node attr =
    base.(node.Tree.id) + Grammar.attr_pos g ~sym:node.Tree.sym ~attr
  in
  (* Wire rules to the instances they wait for. *)
  let dependents : rule_node list array = Array.make total [] in
  let rules = ref [] in
  let edge_count = ref 0 in
  Tree.iter
    (fun node ->
      match node.Tree.prod with
      | None -> ()
      | Some p ->
          Array.iter
            (fun (r : Grammar.rule) ->
              let rn = { rn_node = node; rn_rule = r; waiting = 0 } in
              rules := rn :: !rules;
              List.iter
                (fun (dn, dattr) ->
                  incr edge_count;
                  if not (Store.is_set store dn dattr) then begin
                    rn.waiting <- rn.waiting + 1;
                    let i = inst dn dattr in
                    dependents.(i) <- rn :: dependents.(i)
                  end)
                (Store.rule_deps store node r))
            p.Grammar.p_rules)
    t;
  let ready = Queue.create () in
  List.iter (fun rn -> if rn.waiting = 0 then Queue.add rn ready) !rules;
  let evals = ref 0 in
  while not (Queue.is_empty ready) do
    let rn = Queue.take ready in
    ignore (Store.apply_rule store rn.rn_node rn.rn_rule);
    incr evals;
    let tnode, tattr = Store.rule_target rn.rn_node rn.rn_rule in
    List.iter
      (fun dep ->
        dep.waiting <- dep.waiting - 1;
        if dep.waiting = 0 then Queue.add dep ready)
      dependents.(inst tnode tattr)
  done;
  let left = Store.missing store in
  if left > 0 then
    raise
      (Cycle
         (Printf.sprintf
            "dynamic evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            left));
  (store, { instances = total; edges = !edge_count; evals = !evals })

let eval ?root_inh g t =
  let r, _ = Pag_core.Uid.with_base 0 (fun () -> eval_inner ?root_inh g t) in
  r
