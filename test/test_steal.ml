(* Work-stealing scheduler: the Chase-Lev deque against a list model, a
   two-domain owner-vs-thief race, engine-level equivalence of [run_steal]
   with [run_topo], and the simulated transport under a fault plan. *)

open Pag_core
open Pag_eval

let qc ?(count = 200) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- deque vs list model ---------------- *)

let test_empty () =
  let d = Steal.create () in
  check_bool "pop of empty" true (Steal.pop d = None);
  check_bool "steal of empty" true (Steal.steal d = None);
  check_int "size of empty" 0 (Steal.size d)

let test_single_element_steal () =
  (* The empty-vs-one boundary is where the owner/thief CAS race lives;
     sequentially both sides must see exactly the one element. *)
  let d = Steal.create () in
  Steal.push d 42;
  check_bool "steal gets it" true (Steal.steal d = Some 42);
  check_bool "then pop empty" true (Steal.pop d = None);
  Steal.push d 7;
  check_bool "pop gets it" true (Steal.pop d = Some 7);
  check_bool "then steal empty" true (Steal.steal d = None)

let test_steal_half () =
  let v = Steal.create () and mine = Steal.create () in
  for i = 0 to 9 do
    Steal.push v i
  done;
  let k = Steal.steal_half v ~into:mine in
  check_int "half of ten" 5 k;
  check_int "victim keeps the rest" 5 (Steal.size v);
  (* the oldest (FIFO) half moves *)
  let got = List.init k (fun _ -> Option.get (Steal.steal mine)) in
  Alcotest.(check (list int)) "oldest half in order" [ 0; 1; 2; 3; 4 ] got

(* The deque as a sequence, top first: push appends at the bottom, pop
   removes the bottom (LIFO), steal removes the top (FIFO). Ops are drawn
   as ints: 0-5 push (weighted so deques actually grow), 6 pop, 7 steal. *)
let prop_deque_model =
  qc "push/pop/steal match the list model"
    QCheck.(list (int_bound 7))
    (fun ops ->
      let d = Steal.create () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op <= 5 then begin
            Steal.push d !next;
            model := !model @ [ !next ];
            incr next
          end
          else if op = 6 then begin
            let expect =
              match List.rev !model with
              | [] -> None
              | x :: rest ->
                  model := List.rev rest;
                  Some x
            in
            ok := !ok && Steal.pop d = expect
          end
          else begin
            let expect =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            ok := !ok && Steal.steal d = expect
          end)
        ops;
      !ok && Steal.size d = List.length !model)

(* Past the minimum capacity the circular array grows mid-stream; contents
   must survive the copy. *)
let test_grow () =
  let d = Steal.create () in
  for i = 0 to 99 do
    Steal.push d i
  done;
  let stolen = List.init 50 (fun _ -> Option.get (Steal.steal d)) in
  Alcotest.(check (list int)) "fifo across grow" (List.init 50 Fun.id) stolen;
  let popped = List.init 50 (fun _ -> Option.get (Steal.pop d)) in
  Alcotest.(check (list int))
    "lifo across grow"
    (List.rev (List.init 50 (fun i -> 50 + i)))
    popped

(* ---------------- two domains: no loss, no duplication ---------------- *)

let test_owner_vs_thief () =
  let d = Steal.create () in
  let n = 20_000 in
  let stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        let acc = ref [] in
        let note v = acc := v :: !acc in
        while not (Atomic.get stop) do
          match Steal.steal d with
          | Some v -> note v
          | None -> Domain.cpu_relax ()
        done;
        (* drain whatever the owner left behind *)
        let rec drain () =
          match Steal.steal d with
          | Some v ->
              note v;
              drain ()
          | None -> ()
        in
        drain ();
        !acc)
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Steal.push d i;
    (* interleave owner pops so the last-element race is exercised *)
    if i land 3 = 0 then
      match Steal.pop d with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain () =
    match Steal.pop d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = Domain.join thief in
  let all = List.sort compare (!popped @ stolen) in
  check_bool "every pushed id claimed exactly once" true
    (all = List.init n Fun.id)

(* ---------------- engine: run_steal = run_topo ---------------- *)

let stores_bit_identical a b =
  let ok = ref true in
  Store.iter_instances a (fun node attr ->
      match
        ( Store.get_opt a node attr.Grammar.a_name,
          Store.get_opt b node attr.Grammar.a_name )
      with
      | Some x, Some y -> if not (Value.equal x y) then ok := false
      | None, None -> ()
      | _ -> ok := false);
  !ok

let prop_run_steal_matches_topo =
  qc ~count:25 "run_steal = run_topo on random expr trees"
    QCheck.(pair (int_bound 1000) (int_range 2 3))
    (fun (seed, domains) ->
      let g = Pag_grammars.Expr_ag.grammar in
      let tree () =
        Pag_grammars.Expr_ag.random_program (Random.State.make [| seed |]) ~depth:6
      in
      let store1 = Store.create g (tree ()) in
      let e1 = Engine.create g store1 in
      let fired1 = Engine.run_topo e1 (Engine.graph e1) in
      let store2 = Store.create g (tree ()) in
      let e2 = Engine.create g store2 in
      let fired2, stats = Engine.run_steal ~domains e2 (Engine.graph e2) in
      let per_domain = Array.fold_left (fun a s -> a + s.Steal.st_fired) 0 stats in
      fired1 = fired2 && per_domain = fired2
      && Store.missing store2 = 0
      && stores_bit_identical store1 store2)

let test_run_steal_memo () =
  (* rule memoization on the topo side must not perturb equivalence (the
     steal schedule bypasses the memo — values are equal either way) *)
  let g = Pag_grammars.Expr_ag.grammar in
  let tree d s =
    Pag_grammars.Expr_ag.random_program (Random.State.make [| s |]) ~depth:d
  in
  List.iter
    (fun seed ->
      let t1 = tree 7 seed and t2 = tree 7 seed in
      let s1 = Store.create g t1 in
      let e1 = Engine.create ~memo:(Memo.create_rules ()) g s1 in
      ignore (Engine.run_topo e1 (Engine.graph e1));
      let s2 = Store.create g t2 in
      let e2 = Engine.create g s2 in
      ignore (Engine.run_steal ~domains:3 e2 (Engine.graph e2));
      check_bool
        (Printf.sprintf "memo topo = steal (seed %d)" seed)
        true
        (stores_bit_identical s1 s2))
    [ 1; 2; 3 ]

let test_run_steal_cycle () =
  (* a cyclic instance graph must raise, not deadlock *)
  let open Grammar in
  let g =
    make ~name:"circ" ~start:"r"
      [
        terminal "T" [];
        nonterminal "r" [ syn "out" ];
        nonterminal "x" [ syn "s"; inh "i" ];
      ]
      [
        production ~name:"root" ~lhs:"r" ~rhs:[ "x" ]
          [
            rule (lhs "out") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
            rule (rhs 1 "i") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
          ];
        production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
          [ rule (lhs "s") ~deps:[ lhs "i" ] (fun a -> a.(0)) ];
      ]
  in
  let t = Tree.node g "root" [ Tree.node g "leaf" [ Tree.leaf g "T" [] ] ] in
  let store = Store.create g t in
  let e = Engine.create g store in
  check_bool "cycle detected" true
    (try
       ignore (Engine.run_steal ~domains:2 e (Engine.graph e));
       false
     with Engine.Cycle _ -> true)

(* ---------------- simulated transport under faults ---------------- *)

let test_sim_steal_under_faults () =
  let prog = fst (Pascal.Progen.gen (Random.State.make [| 7 |]) Pascal.Progen.small) in
  let seq = Pascal.Driver.compile ~evaluator:`Static prog in
  let spec =
    {
      Netsim.Faults.none with
      Netsim.Faults.fs_drop = 0.05;
      fs_dup = 0.02;
      fs_delay = 0.01;
    }
  in
  let opts =
    {
      (Pag_parallel.Session.options
         (Pag_parallel.Session.spec ~schedule:`Steal
            ~phase_label:Pascal.Driver.phase_label 3))
      with
      Pag_parallel.Runner.faults = Some spec;
    }
  in
  let _, c = Pascal.Driver.compile_parallel_sim opts prog in
  check_bool "masked code equal under faults" true
    (String.equal
       (Pascal.Driver.mask_labels c.Pascal.Driver.c_asm)
       (Pascal.Driver.mask_labels seq.Pascal.Driver.c_asm))

let suite =
  [
    ( "steal",
      [
        Alcotest.test_case "deque empty" `Quick test_empty;
        Alcotest.test_case "single-element steal" `Quick test_single_element_steal;
        Alcotest.test_case "steal_half" `Quick test_steal_half;
        Alcotest.test_case "grow" `Quick test_grow;
        prop_deque_model;
        Alcotest.test_case "owner vs thief (2 domains)" `Quick test_owner_vs_thief;
        prop_run_steal_matches_topo;
        Alcotest.test_case "run_steal with memoized topo" `Quick test_run_steal_memo;
        Alcotest.test_case "run_steal detects cycles" `Quick test_run_steal_cycle;
        Alcotest.test_case "sim steal under faults" `Quick test_sim_steal_under_faults;
      ] );
  ]
