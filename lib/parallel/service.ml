open Pag_core
open Pag_eval
open Netsim
open Pag_obs

(* Multi-tenant compile service: a resident pool of incremental sessions
   multiplexed over a bounded set of workers, one scheduling round at a
   time. See service.mli for the model; the short version:

   - admission: per-tenant FIFO queues, bounded (backpressure rejects);
   - scheduling: each round drains the non-empty queues into per-tenant
     batches and deals the batches to workers (round-robin or
     shortest-queue);
   - application: every edit goes through the tenant's own {!Incr}
     session in submission order — the scheduling layer prices and
     orders, it never changes what a tenant computes, so multiplexed
     finals are bit-identical to isolated single-session runs;
   - pricing ([`Sim]): dispatch message + owner rebuild/propagation delay
     + result message, all workers sharing one Ethernet, with optional
     fault injection (dropped dispatches retransmit after an RTO, a
     crashed worker's remaining batches re-dispatch to survivors);
   - lifecycle: memory-capped LRU eviction and idle timeout; an evicted
     tenant keeps its tree and revives on the next touch. *)

type policy = Round_robin | Shortest_queue

type config = {
  c_workers : int;
  c_policy : policy;
  c_transport : [ `Sim | `Domains ];
  c_queue_cap : int;
  c_mem_cap : int;
  c_idle_rounds : int;
  c_hashcons : bool;
  c_dag : bool;
  c_frontier : float option;
  c_faults : Faults.spec option;
  c_fault_rto : float;
  c_net : Ethernet.params;
  c_obs : Obs.ctx;
  c_provenance : bool;
  c_batch : int;  (* edits per merged wave; <= 1 applies one at a time *)
}

(* Per-tenant rings stay modest: a resident session records refires, not
   whole-program histories, and the ring caps the tail anyway. *)
let prov_cap = 1 lsl 16

let config ?(policy = Round_robin) ?(transport = `Sim) ?(queue_cap = 0)
    ?(mem_cap = 0) ?(idle_rounds = 0) ?(hashcons = false) ?(dag = false)
    ?frontier ?faults
    ?(fault_rto = 0.05) ?(net = Ethernet.default_params) ?(obs = Obs.null_ctx)
    ?(provenance = false) ?(batch = 1) workers =
  if workers < 1 then invalid_arg "Service.config: workers < 1";
  {
    c_workers = workers;
    c_policy = policy;
    c_transport = transport;
    c_queue_cap = queue_cap;
    c_mem_cap = mem_cap;
    c_idle_rounds = idle_rounds;
    c_hashcons = hashcons;
    c_dag = dag;
    c_frontier = frontier;
    c_faults = faults;
    c_fault_rto = fault_rto;
    c_net = net;
    c_obs = obs;
    c_provenance = provenance;
    c_batch = max 1 batch;
  }

(* Bounded latency reservoir: exact count/sum (so the mean is exact) plus
   a uniform sample of at most [lat_cap] observations for percentiles —
   per-tenant resident memory stays bounded however long the service
   runs. The RNG is seeded from the tenant name, keeping runs
   deterministic. *)
let lat_cap = 2048

type reservoir = {
  r_buf : float array;  (* lat_cap slots *)
  mutable r_n : int;  (* samples observed over the lifetime *)
  mutable r_sum : float;
  r_rng : Random.State.t;
}

let reservoir name =
  {
    r_buf = Array.make lat_cap 0.0;
    r_n = 0;
    r_sum = 0.0;
    r_rng = Random.State.make [| Hashtbl.hash name; 0x5eed |];
  }

let res_add r x =
  (if r.r_n < lat_cap then r.r_buf.(r.r_n) <- x
   else
     let j = Random.State.int r.r_rng (r.r_n + 1) in
     if j < lat_cap then r.r_buf.(j) <- x);
  r.r_n <- r.r_n + 1;
  r.r_sum <- r.r_sum +. x

let res_samples r = Array.to_list (Array.sub r.r_buf 0 (min r.r_n lat_cap))
let res_mean r = if r.r_n = 0 then 0.0 else r.r_sum /. float_of_int r.r_n

type tenant = {
  t_name : string;
  t_queue : (Tree.t * float) Queue.t;  (* (edit, submit time) *)
  mutable t_session : Incr.session option;  (* None = evicted *)
  mutable t_tree : Tree.t;  (* resident tree, kept across eviction *)
  mutable t_last_active : int;  (* round of last applied edit *)
  mutable t_in_round : bool;  (* scheduled this round: exempt from eviction *)
  mutable t_edits : int;
  mutable t_rejected : int;
  mutable t_evictions : int;
  mutable t_retransmits : int;
  mutable t_queue_hwm : int;
  t_lat : reservoir;  (* latency samples, seconds *)
  t_prov : Prov.t;  (* firing provenance of the resident session *)
}

type t = {
  sv_cfg : config;
  sv_g : Grammar.t;
  sv_memo : Memo.rules option;  (* shared across tenants: hashcons + `Sim *)
  sv_tenants : (string, tenant) Hashtbl.t;
  mutable sv_order_rev : tenant list;  (* admission order, newest first *)
  sv_net : Ethernet.t;
  sv_faults : Faults.t option;
  sv_crash_at : float array;  (* per worker; infinity = never *)
  sv_dead : bool array;
  mutable sv_now : float;  (* virtual clock (`Sim) / busy seconds (`Domains) *)
  mutable sv_round : int;
  mutable sv_rr : int;
  mutable sv_edits : int;
  mutable sv_rejected : int;
  mutable sv_evictions : int;
  mutable sv_retransmits : int;
  mutable sv_gave_up : int;  (* retransmit cap hit; delivered anyway *)
  mutable sv_redispatches : int;
  sv_t0 : float;  (* wall clock at creation (`Domains submit stamps) *)
}

let create cfg g =
  let memo =
    if cfg.c_hashcons && cfg.c_transport = `Sim then Some (Memo.create_rules ())
    else None
  in
  let crash_at = Array.make cfg.c_workers infinity in
  (match cfg.c_faults with
  | None -> ()
  | Some f ->
      List.iter
        (fun (m, at) ->
          (* fault-plan machine ids are 1-based worker pids (0 is the
             coordinator, as in the runner) *)
          let w = m - 1 in
          if w >= 0 && w < cfg.c_workers then
            crash_at.(w) <- Float.min crash_at.(w) at)
        f.Faults.fs_crashes);
  {
    sv_cfg = cfg;
    sv_g = g;
    sv_memo = memo;
    sv_tenants = Hashtbl.create 64;
    sv_order_rev = [];
    sv_net = Ethernet.create cfg.c_net;
    sv_faults =
      (match cfg.c_faults with
      | Some f when cfg.c_transport = `Sim -> Some (Faults.make f)
      | _ -> None);
    sv_crash_at = crash_at;
    sv_dead = Array.make cfg.c_workers false;
    sv_now = 0.0;
    sv_round = 0;
    sv_rr = 0;
    sv_edits = 0;
    sv_rejected = 0;
    sv_evictions = 0;
    sv_retransmits = 0;
    sv_gave_up = 0;
    sv_redispatches = 0;
    sv_t0 = Unix.gettimeofday ();
  }

let metrics sv = sv.sv_cfg.c_obs.Obs.x_metrics

let bump sv name labels n =
  let reg = metrics sv in
  if Obs.Metrics.live reg then
    Obs.Metrics.add (Obs.Metrics.counter reg (Obs.Metrics.labeled name labels)) n

let tenant_label tn = [ ("tenant", tn.t_name) ]

let now_of sv =
  match sv.sv_cfg.c_transport with
  | `Sim -> sv.sv_now
  | `Domains -> Unix.gettimeofday () -. sv.sv_t0

let find sv name =
  match Hashtbl.find_opt sv.sv_tenants name with
  | Some tn -> tn
  | None -> invalid_arg ("Service: unknown tenant " ^ name)

let resident_slots sv =
  Hashtbl.fold
    (fun _ tn acc ->
      match tn.t_session with
      | Some s -> acc + Incr.live_slots s
      | None -> acc)
    sv.sv_tenants 0

let evict sv tn =
  match tn.t_session with
  | None -> ()
  | Some s ->
      tn.t_tree <- Incr.tree s;
      tn.t_session <- None;
      tn.t_evictions <- tn.t_evictions + 1;
      sv.sv_evictions <- sv.sv_evictions + 1;
      bump sv "service.evictions" (tenant_label tn) 1

(* Evict least-recently-active resident tenants (quiet ones first) until
   the pool fits the cap. [keep] is never evicted, nor is any tenant
   scheduled in the current round — their sessions may be mid-edit on a
   worker domain, and evicting/reviving a tenant that still has batched
   edits this round would only thrash. The pool may therefore overshoot
   the cap transiently within a round; {!run_round} re-enforces it once
   the round's flags clear. Coordinator-only. *)
let enforce_cap ?keep sv =
  let cap = sv.sv_cfg.c_mem_cap in
  if cap > 0 then begin
    let continue_ = ref true in
    while resident_slots sv > cap && !continue_ do
      let victim =
        Hashtbl.fold
          (fun _ tn best ->
            if
              (match keep with Some k -> tn == k | None -> false)
              || tn.t_session = None || tn.t_in_round
            then best
            else
              let key = (not (Queue.is_empty tn.t_queue), tn.t_last_active) in
              match best with
              | Some (bkey, _) when bkey <= key -> best
              | _ -> Some (key, tn))
          sv.sv_tenants None
      in
      match victim with
      | Some (_, tn) -> evict sv tn
      | None -> continue_ := false
    done
  end

(* (Re-)open a tenant's session: evaluate the resident tree from scratch.
   Sessions share the service-wide rule memo when hash-consing on the
   simulated transport; on domains each tenant gets its own memo (the
   process-wide intern arena is not domain-safe). Obs likewise flows into
   sessions only on the simulated (single-domain) transport.
   Coordinator-only: it touches the obs registry and may evict — worker
   domains never call it (round_domains pre-revives the round's tenants,
   who stay resident because enforce_cap exempts in-round tenants). *)
let revive sv tn =
  match tn.t_session with
  | Some s -> s
  | None ->
      let cfg = sv.sv_cfg in
      let obs = if cfg.c_transport = `Sim then cfg.c_obs else Obs.null_ctx in
      (* A revive builds a fresh engine/store: clear the ring so stale
         records cannot resolve against the new slot numbering. *)
      Prov.clear tn.t_prov;
      let s =
        Incr.start ~obs ?memo:sv.sv_memo ~hashcons:cfg.c_hashcons
          ~dag:cfg.c_dag ~prov:tn.t_prov ?frontier:cfg.c_frontier sv.sv_g
          tn.t_tree
      in
      tn.t_session <- Some s;
      enforce_cap sv ~keep:tn;
      s

let open_tenant sv name tree =
  if Hashtbl.mem sv.sv_tenants name then
    invalid_arg ("Service.open_tenant: duplicate tenant " ^ name);
  let tn =
    {
      t_name = name;
      t_queue = Queue.create ();
      t_session = None;
      t_tree = tree;
      t_last_active = sv.sv_round;
      t_in_round = false;
      t_edits = 0;
      t_rejected = 0;
      t_evictions = 0;
      t_retransmits = 0;
      t_queue_hwm = 0;
      t_lat = reservoir name;
      t_prov =
        (if sv.sv_cfg.c_provenance then
           Prov.create ~cap:prov_cap ~arity:(Causal.arity_for sv.sv_g) ()
         else Prov.disabled);
    }
  in
  Hashtbl.add sv.sv_tenants name tn;
  sv.sv_order_rev <- tn :: sv.sv_order_rev;
  ignore (revive sv tn)

type admission = Admitted | Rejected_queue_full

let submit sv name next =
  let tn = find sv name in
  let cap = sv.sv_cfg.c_queue_cap in
  if cap > 0 && Queue.length tn.t_queue >= cap then begin
    tn.t_rejected <- tn.t_rejected + 1;
    sv.sv_rejected <- sv.sv_rejected + 1;
    bump sv "service.rejected" (tenant_label tn) 1;
    Rejected_queue_full
  end
  else begin
    Queue.add (next, now_of sv) tn.t_queue;
    let d = Queue.length tn.t_queue in
    if d > tn.t_queue_hwm then tn.t_queue_hwm <- d;
    let reg = metrics sv in
    if Obs.Metrics.live reg then
      Obs.Metrics.set_gauge reg
        (Obs.Metrics.labeled "service.queue_depth" (tenant_label tn))
        (float_of_int d);
    Admitted
  end

(* ------------------------------------------------------------------ *)
(* Edit application (both transports)                                  *)
(* ------------------------------------------------------------------ *)

(* Apply one edit through the tenant's session, exactly as an isolated
   {!Session.edit} would (diff, then replace/fallback). Returns the
   incremental stats and the bytes the replacement ships on the wire. *)
let apply_edit s next =
  match Tree.diff (Incr.tree s) next with
  | Tree.Equal -> (Incr.edit s next, 0)
  | Tree.Root -> (Incr.edit s next, Tree.byte_size next)
  | Tree.Subtree { parent; pos; repl } ->
      let bytes = Tree.byte_size repl in
      (Incr.replace s ~parent ~pos repl, bytes)

(* Coordinator-only: the counters, reservoir and metrics registry are all
   unsynchronized plain state. The domains transport applies edits on
   worker domains but folds their latencies through here after joining. *)
let record_edit sv tn lat =
  tn.t_edits <- tn.t_edits + 1;
  sv.sv_edits <- sv.sv_edits + 1;
  res_add tn.t_lat lat;
  tn.t_last_active <- sv.sv_round;
  let reg = metrics sv in
  if Obs.Metrics.live reg then begin
    bump sv "service.edits" (tenant_label tn) 1;
    Obs.Metrics.observe
      (Obs.Metrics.histogram reg
         (Obs.Metrics.labeled "service.latency_ms" (tenant_label tn)))
      (lat *. 1e3)
  end

(* The owner's service time for one edit: rebuild of the shipped subtree
   plus the whole propagation, priced like the session wave model. *)
let owner_delay (st : Incr.edit_stats) ~bytes =
  let cost = Cost.default in
  (float_of_int bytes *. cost.Cost.rebuild_per_byte)
  +. (float_of_int st.Incr.ed_dirty *. cost.Cost.build_node)
  +. (float_of_int st.Incr.ed_refired *. Cost.rule_cost cost ~dynamic:true)

(* Result message: the refreshed root synthesized attributes — changed
   ones in full, unchanged ones as fixed-size intern references. *)
let result_size sv s =
  let root = Incr.tree s in
  let st = Incr.store s in
  let sym = Grammar.symbol sv.sv_g root.Tree.sym in
  let total = ref Message.header_bytes in
  Array.iteri
    (fun i (a : Grammar.attr_decl) ->
      if a.Grammar.a_kind = Grammar.Syn then
        let m =
          if Incr.changed s root a.Grammar.a_name then
            Message.Attr
              {
                node = root.Tree.id;
                attr = a.Grammar.a_name;
                value = Store.get st root a.Grammar.a_name;
              }
          else
            Message.Attr_ref
              {
                src = 0;
                node = root.Tree.id;
                attr = a.Grammar.a_name;
                iid = Store.slot_of st root ~attr_idx:i;
                hash = 0;
              }
        in
        total := !total + Message.size m)
    sym.Grammar.s_attrs;
  !total

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

(* Deal the round's per-tenant batches onto live workers. Returns per-
   worker queues of (tenant, edits). *)
let assign sv batches =
  let w = sv.sv_cfg.c_workers in
  let queues = Array.init w (fun _ -> Queue.create ()) in
  let pending = Array.make w 0 in
  let live = Array.init w (fun i -> not sv.sv_dead.(i)) in
  let any_live = Array.exists (fun x -> x) live in
  if not any_live then failwith "Service: all workers crashed";
  let pick_rr () =
    let rec go tries =
      if tries > w then failwith "Service: all workers crashed"
      else
        let k = sv.sv_rr mod w in
        sv.sv_rr <- sv.sv_rr + 1;
        if live.(k) then k else go (tries + 1)
    in
    go 0
  in
  let pick_sq () =
    let best = ref (-1) in
    for k = w - 1 downto 0 do
      if live.(k) && (!best < 0 || pending.(k) <= pending.(!best)) then
        best := k
    done;
    !best
  in
  List.iter
    (fun (tn, edits) ->
      let k =
        match sv.sv_cfg.c_policy with
        | Round_robin -> pick_rr ()
        | Shortest_queue -> pick_sq ()
      in
      Queue.add (tn, Queue.of_seq (List.to_seq edits)) queues.(k);
      pending.(k) <- pending.(k) + List.length edits)
    batches;
  queues

(* ------------------------------------------------------------------ *)
(* Simulated transport: virtual time on the shared Ethernet            *)
(* ------------------------------------------------------------------ *)

(* One message on the shared medium, through the fault plan: drops burn
   the bytes and retransmit after the RTO (charged to [tn]), duplicates
   burn extra bytes, reorder/delay verdicts add delivery jitter. Returns
   the delivery time. A pathological plan that drops 64 retransmits in a
   row stops retrying and force-delivers — counted in [sv_gave_up] so the
   absorption is visible in stats rather than silent. *)
let transmit_reliable sv tn ~src ~dst ~now ~size =
  (* On a switched fabric each message occupies the worker-side edge link
     of its hop (the coordinator side is the switch backplane), so
     distinct workers' traffic never queues behind each other. *)
  let port = if src = 0 then dst else src in
  match sv.sv_faults with
  | None -> Ethernet.transmit sv.sv_net ~port ~now ~size
  | Some f ->
      let rec go now tries =
        let v = Faults.judge f ~src ~dst in
        if v.Faults.v_dup then
          ignore (Ethernet.transmit sv.sv_net ~port ~now ~size);
        if v.Faults.v_drop && tries < 64 then begin
          ignore (Ethernet.transmit sv.sv_net ~port ~now ~size);
          tn.t_retransmits <- tn.t_retransmits + 1;
          sv.sv_retransmits <- sv.sv_retransmits + 1;
          bump sv "service.retransmits" (tenant_label tn) 1;
          go (now +. sv.sv_cfg.c_fault_rto) (tries + 1)
        end
        else begin
          if v.Faults.v_drop then begin
            sv.sv_gave_up <- sv.sv_gave_up + 1;
            bump sv "service.gave_up" (tenant_label tn) 1
          end;
          Ethernet.transmit ~jitter:v.Faults.v_delay sv.sv_net ~port ~now ~size
        end
      in
      go now 0

(* An evicted tenant's revive re-evaluates its resident tree from scratch:
   charge the worker the shipped-tree rebuild plus a full dynamic
   evaluation (one graph node + rule firing per live instance), so
   evict/revive thrash shows up in the virtual makespan instead of being
   free. *)
let revive_cost s =
  let cost = Cost.default in
  (float_of_int (Tree.byte_size (Incr.tree s)) *. cost.Cost.rebuild_per_byte)
  +. (float_of_int (Incr.live_slots s)
     *. (cost.Cost.build_node +. Cost.rule_cost cost ~dynamic:true))

(* Price and apply one edit on worker [k] whose clock shows [now].
   Returns the worker's clock after the edit. *)
let sim_edit sv k now tn (next, t_submit) =
  let was_evicted = tn.t_session = None in
  let s = revive sv tn in
  let now = if was_evicted then now +. revive_cost s else now in
  let edit_msg bytes = Message.size (Message.Edit { node = 0; bytes }) in
  let st, bytes = apply_edit s next in
  if st.Incr.ed_fallback then bump sv "service.fallbacks" (tenant_label tn) 1;
  let delivered =
    transmit_reliable sv tn ~src:0 ~dst:(k + 1) ~now ~size:(edit_msg bytes)
  in
  let done_ = delivered +. owner_delay st ~bytes in
  let rsize = result_size sv s in
  let back =
    transmit_reliable sv tn ~src:(k + 1) ~dst:0 ~now:done_ ~size:rsize
  in
  record_edit sv tn (Float.max 0.0 (back -. t_submit));
  done_ +. Ethernet.sender_cost sv.sv_net ~size:rsize

(* Price and apply one batched chunk on worker [k]: one dispatch carrying
   every replacement plus per-edit cone-merge metadata, the merged refire
   co-scheduled across [assist] machines (each level-synchronous round
   costs its ceiling share of steal-priced rules; cone chunks and partial
   results cross the wire once per helper), and one result message for
   the whole chunk. Fallback-rebuild refires (waves with no rounds)
   collapse to the owner's sequential dynamic-rule price. *)
let sim_batch sv k now tn items ~assist =
  let cost = Cost.default in
  let was_evicted = tn.t_session = None in
  let s = revive sv tn in
  let now = if was_evicted then now +. revive_cost s else now in
  let wv = Incr.edit_batch s (List.map fst items) in
  bump sv "service.waves" (tenant_label tn) wv.Incr.wv_waves;
  bump sv "service.conflicts" (tenant_label tn) wv.Incr.wv_conflicts;
  bump sv "service.fallbacks" (tenant_label tn) wv.Incr.wv_fallbacks;
  let meta = Message.header_bytes * wv.Incr.wv_edits in
  let dispatch =
    Message.size (Message.Edit { node = 0; bytes = wv.Incr.wv_bytes + meta })
  in
  let delivered =
    transmit_reliable sv tn ~src:0 ~dst:(k + 1) ~now ~size:dispatch
  in
  let owner_seq =
    (float_of_int wv.Incr.wv_bytes *. cost.Cost.rebuild_per_byte)
    +. (float_of_int wv.Incr.wv_dirty *. cost.Cost.build_node)
  in
  let round_total = Array.fold_left ( + ) 0 wv.Incr.wv_round_refired in
  let residue = max 0 (wv.Incr.wv_refired - round_total) in
  let share_work =
    Array.fold_left
      (fun acc r ->
        acc
        +. (float_of_int ((r + assist - 1) / assist) *. cost.Cost.steal_rule))
      0.0 wv.Incr.wv_round_refired
  in
  let t =
    delivered +. owner_seq
    +. (float_of_int residue *. Cost.rule_cost cost ~dynamic:true)
  in
  let t =
    if assist > 1 && round_total > 0 then begin
      (* ship cone chunks to the helpers, refire in parallel, collect *)
      let chunk = Message.header_bytes + (round_total / assist * 16) in
      let out = ref t in
      for j = 1 to assist - 1 do
        let dst = ((k + j) mod sv.sv_cfg.c_workers) + 1 in
        out :=
          Float.max !out
            (transmit_reliable sv tn ~src:(k + 1) ~dst ~now:t ~size:chunk)
      done;
      let t = !out +. share_work in
      let back = ref t in
      for j = 1 to assist - 1 do
        let src = ((k + j) mod sv.sv_cfg.c_workers) + 1 in
        back :=
          Float.max !back
            (transmit_reliable sv tn ~src ~dst:(k + 1) ~now:t ~size:chunk)
      done;
      !back
    end
    else t +. share_work
  in
  let rsize = result_size sv s in
  let back = transmit_reliable sv tn ~src:(k + 1) ~dst:0 ~now:t ~size:rsize in
  List.iter
    (fun (_, t_submit) ->
      record_edit sv tn (Float.max 0.0 (back -. t_submit)))
    items;
  t +. Ethernet.sender_cost sv.sv_net ~size:rsize

(* Virtual-time event loop over the per-worker batch queues: always step
   the laggiest busy worker one edit, so the workers advance concurrently
   and contend for the medium in time order. With [c_batch > 1] a step
   pops up to a chunk of the tenant's edits and prices one merged wave,
   assisted by the round's spare capacity (live workers per busy worker).
   A worker whose clock crosses its crash point dies mid-wave; its
   remaining batches re-dispatch to the least-loaded survivor after one
   RTO (the coordinator's detection). *)
let round_sim sv queues =
  let w = Array.length queues in
  let clock = Array.make w sv.sv_now in
  let busy k = not (Queue.is_empty queues.(k)) in
  let queue_edits q =
    Queue.fold (fun acc (_, es) -> acc + Queue.length es) 0 q
  in
  let redispatch k =
    sv.sv_dead.(k) <- true;
    let detect = sv.sv_crash_at.(k) +. sv.sv_cfg.c_fault_rto in
    let target = ref (-1) in
    for j = w - 1 downto 0 do
      if (not sv.sv_dead.(j))
         && (!target < 0
            || queue_edits queues.(j) <= queue_edits queues.(!target))
      then target := j
    done;
    if !target < 0 then failwith "Service: all workers crashed";
    let moved = ref 0 in
    Queue.iter (fun _ -> incr moved) queues.(k);
    Queue.transfer queues.(k) queues.(!target);
    sv.sv_redispatches <- sv.sv_redispatches + !moved;
    clock.(!target) <- Float.max clock.(!target) detect
  in
  let exception Done in
  (try
     while true do
       (* the busy worker furthest behind in virtual time steps next *)
       let k = ref (-1) in
       for j = w - 1 downto 0 do
         if busy j && (!k < 0 || clock.(j) <= clock.(!k)) then k := j
       done;
       if !k < 0 then raise Done;
       let k = !k in
       if clock.(k) >= sv.sv_crash_at.(k) then redispatch k
       else begin
         let tn, edits = Queue.peek queues.(k) in
         let batch = sv.sv_cfg.c_batch in
         let t =
           if batch <= 1 then sim_edit sv k clock.(k) tn (Queue.pop edits)
           else begin
             let live = ref 0 and nbusy = ref 0 in
             for j = 0 to w - 1 do
               if not sv.sv_dead.(j) then incr live;
               if busy j then incr nbusy
             done;
             let assist = max 1 (!live / max 1 !nbusy) in
             let items = ref [] and n = ref 0 in
             while !n < batch && not (Queue.is_empty edits) do
               items := Queue.pop edits :: !items;
               incr n
             done;
             sim_batch sv k clock.(k) tn (List.rev !items) ~assist
           end
         in
         if Queue.is_empty edits then ignore (Queue.pop queues.(k));
         if t >= sv.sv_crash_at.(k) then
           (* mid-wave crash: this edit landed, the rest of the worker's
              round moves to the survivors *)
           redispatch k
         else clock.(k) <- t
       end
     done
   with Done -> ());
  Array.iter (fun t -> if t > sv.sv_now then sv.sv_now <- t) clock

(* ------------------------------------------------------------------ *)
(* Domains transport: real parallel application                        *)
(* ------------------------------------------------------------------ *)

(* Apply one worker's batches off-coordinator. Only the sessions of this
   worker's own tenants are touched (a tenant's whole batch lands on one
   worker), plus the immutable [sv_t0] stamp — no shared counters, no obs
   registry, no eviction. With [c_batch > 1] each tenant's edits go
   through {!Incr.edit_batch} in chunks — merged cones, one wave per
   independent set — so the round's tenants refire their merged waves
   concurrently across the worker domains. Latencies and wave counters
   are measured here (at application time) and returned for the
   coordinator to record after the join: one
   [(tenant, latencies, fallbacks, waves, conflicts)] tuple per chunk. *)
let domains_apply sv batches =
  let batch = sv.sv_cfg.c_batch in
  List.concat_map
    (fun (tn, edits) ->
      let s =
        match tn.t_session with
        | Some s -> s
        | None -> assert false  (* pre-revived; in-round = eviction-exempt *)
      in
      if batch <= 1 then
        Queue.fold
          (fun acc (next, t_submit) ->
            let st, _ = apply_edit s next in
            let lat = Unix.gettimeofday () -. sv.sv_t0 -. t_submit in
            ( tn,
              [ Float.max 0.0 lat ],
              (if st.Incr.ed_fallback then 1 else 0),
              0,
              0 )
            :: acc)
          [] edits
        |> List.rev
      else begin
        let out = ref [] in
        while not (Queue.is_empty edits) do
          let items = ref [] and n = ref 0 in
          while !n < batch && not (Queue.is_empty edits) do
            items := Queue.pop edits :: !items;
            incr n
          done;
          let items = List.rev !items in
          let wv = Incr.edit_batch s (List.map fst items) in
          let t = Unix.gettimeofday () -. sv.sv_t0 in
          let lats =
            List.map (fun (_, t_submit) -> Float.max 0.0 (t -. t_submit)) items
          in
          out :=
            ( tn,
              lats,
              wv.Incr.wv_fallbacks,
              wv.Incr.wv_waves,
              wv.Incr.wv_conflicts )
            :: !out
        done;
        List.rev !out
      end)
    batches

(* Coordinator-side fold of a worker's application results: latencies into
   the reservoirs, wave counters into the labeled metrics. *)
let record_applied sv outs =
  List.iter
    (fun (tn, lats, fallbacks, waves, conflicts) ->
      List.iter (fun lat -> record_edit sv tn lat) lats;
      if fallbacks > 0 then
        bump sv "service.fallbacks" (tenant_label tn) fallbacks;
      if waves > 0 then bump sv "service.waves" (tenant_label tn) waves;
      if conflicts > 0 then
        bump sv "service.conflicts" (tenant_label tn) conflicts)
    outs

let round_domains sv queues =
  let t0 = Unix.gettimeofday () in
  (* revive on the coordinator: session open touches the obs registry and
     (with hashcons) the shared intern arena. The round's tenants are
     exempt from eviction, so a later pre-revive's cap enforcement cannot
     evict an earlier one — every session below is resident and stays so
     for the whole round. *)
  Array.iter
    (fun q -> Queue.iter (fun (tn, _) -> ignore (revive sv tn)) q)
    queues;
  let work =
    Array.to_list queues
    |> List.filter_map (fun q ->
           if Queue.is_empty q then None else Some (List.of_seq (Queue.to_seq q)))
  in
  if sv.sv_cfg.c_hashcons then
    (* the process-wide intern arena is not domain-safe: apply the round
       sequentially (still wall-clocked) *)
    List.iter (fun batches -> record_applied sv (domains_apply sv batches)) work
  else begin
    let doms =
      List.map
        (fun batches -> Domain.spawn (fun () -> domains_apply sv batches))
        work
    in
    (* fold each worker's results into the counters and the metrics
       registry back on the coordinator — both are unsynchronized *)
    List.iter (fun d -> record_applied sv (Domain.join d)) doms
  end;
  sv.sv_now <- sv.sv_now +. (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Rounds                                                              *)
(* ------------------------------------------------------------------ *)

let order sv = List.rev sv.sv_order_rev

let run_round sv =
  let batches =
    List.filter_map
      (fun tn ->
        if Queue.is_empty tn.t_queue then None
        else begin
          let edits = List.of_seq (Queue.to_seq tn.t_queue) in
          Queue.clear tn.t_queue;
          Some (tn, edits)
        end)
      (order sv)
  in
  if batches <> [] then begin
    sv.sv_round <- sv.sv_round + 1;
    bump sv "service.rounds" [] 1;
    List.iter (fun (tn, _) -> tn.t_in_round <- true) batches;
    (* workers past their crash point are gone before scheduling *)
    if sv.sv_cfg.c_transport = `Sim then
      Array.iteri
        (fun k at -> if sv.sv_now >= at then sv.sv_dead.(k) <- true)
        sv.sv_crash_at;
    let queues = assign sv batches in
    (match sv.sv_cfg.c_transport with
    | `Sim -> round_sim sv queues
    | `Domains -> round_domains sv queues);
    List.iter (fun (tn, _) -> tn.t_in_round <- false) batches;
    (* the round's tenants were eviction-exempt while their sessions were
       live on workers; restore the cap invariant now *)
    enforce_cap sv;
    let reg = metrics sv in
    if Obs.Metrics.live reg then begin
      List.iter
        (fun (tn, _) ->
          Obs.Metrics.set_gauge reg
            (Obs.Metrics.labeled "service.queue_depth" (tenant_label tn))
            0.0)
        batches;
      Obs.Metrics.set_gauge reg "service.live_slots"
        (float_of_int (resident_slots sv))
    end;
    (* idle timeout: resident tenants that sat out the last
       [c_idle_rounds] rounds give their memory back *)
    let idle = sv.sv_cfg.c_idle_rounds in
    if idle > 0 then
      List.iter
        (fun tn ->
          if
            tn.t_session <> None
            && Queue.is_empty tn.t_queue
            && sv.sv_round - tn.t_last_active >= idle
          then evict sv tn)
        (order sv)
  end

let rec drain sv =
  if List.exists (fun tn -> not (Queue.is_empty tn.t_queue)) (order sv) then begin
    run_round sv;
    drain sv
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let tenant_tree sv name =
  let tn = find sv name in
  match tn.t_session with Some s -> Incr.tree s | None -> tn.t_tree

let tenant_store sv name = Incr.store (revive sv (find sv name))

let tenant_resident sv name = (find sv name).t_session <> None

type tenant_stats = {
  ts_name : string;
  ts_resident : bool;
  ts_edits : int;
  ts_rejected : int;
  ts_evictions : int;
  ts_retransmits : int;
  ts_queue_depth : int;
  ts_queue_hwm : int;
  ts_live_slots : int;
  ts_p50 : float;
  ts_p99 : float;
  ts_mean : float;
  ts_prov_firings : int;
  ts_critical : float;
}

type stats = {
  st_rounds : int;
  st_tenants : int;
  st_edits : int;
  st_rejected : int;
  st_evictions : int;
  st_retransmits : int;
  st_gave_up : int;
  st_redispatches : int;
  st_workers_lost : int;
  st_live_slots : int;
  st_makespan : float;
  st_edits_per_sec : float;
  st_p50 : float;
  st_p99 : float;
  st_per_tenant : tenant_stats list;
}

let percentile xs q =
  match xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let k = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) k))

(* Provenance summary of the resident session: recorded firings and the
   weighted critical path of what the ring currently holds (the initial
   evaluation plus refires since the last rebuild). *)
let tenant_prov tn =
  match tn.t_session with
  | Some s when Prov.enabled tn.t_prov && Prov.total tn.t_prov > 0 ->
      let d = Causal.build [ (tn.t_prov, Incr.engine s) ] in
      let p = Causal.profile d in
      (p.Causal.pr_firings, p.Causal.pr_critical)
  | _ -> (0, 0.0)

let tenant_stats tn =
  let prov_firings, critical = tenant_prov tn in
  {
    ts_name = tn.t_name;
    ts_resident = tn.t_session <> None;
    ts_edits = tn.t_edits;
    ts_rejected = tn.t_rejected;
    ts_evictions = tn.t_evictions;
    ts_retransmits = tn.t_retransmits;
    ts_queue_depth = Queue.length tn.t_queue;
    ts_queue_hwm = tn.t_queue_hwm;
    ts_live_slots =
      (match tn.t_session with Some s -> Incr.live_slots s | None -> 0);
    ts_p50 = percentile (res_samples tn.t_lat) 0.5;
    ts_p99 = percentile (res_samples tn.t_lat) 0.99;
    ts_mean = res_mean tn.t_lat;
    ts_prov_firings = prov_firings;
    ts_critical = critical;
  }

let stats sv =
  let all_lat =
    Hashtbl.fold
      (fun _ tn acc -> List.rev_append (res_samples tn.t_lat) acc)
      sv.sv_tenants []
  in
  let lost = Array.fold_left (fun n d -> if d then n + 1 else n) 0 sv.sv_dead in
  let per_tenant = List.map tenant_stats (order sv) in
  (* Surface the per-tenant provenance summaries as labeled series, next
     to the PR-7 service.* metrics. *)
  let reg = metrics sv in
  if Obs.Metrics.live reg && sv.sv_cfg.c_provenance then
    List.iter
      (fun ts ->
        let labels = [ ("tenant", ts.ts_name) ] in
        Obs.Metrics.set_gauge reg
          (Obs.Metrics.labeled "service.prov_firings" labels)
          (float_of_int ts.ts_prov_firings);
        Obs.Metrics.set_gauge reg
          (Obs.Metrics.labeled "service.critical_path_ms" labels)
          (ts.ts_critical *. 1e3))
      per_tenant;
  {
    st_rounds = sv.sv_round;
    st_tenants = Hashtbl.length sv.sv_tenants;
    st_edits = sv.sv_edits;
    st_rejected = sv.sv_rejected;
    st_evictions = sv.sv_evictions;
    st_retransmits = sv.sv_retransmits;
    st_gave_up = sv.sv_gave_up;
    st_redispatches = sv.sv_redispatches;
    st_workers_lost = lost;
    st_live_slots = resident_slots sv;
    st_makespan = sv.sv_now;
    st_edits_per_sec =
      (if sv.sv_now > 0.0 then float_of_int sv.sv_edits /. sv.sv_now else 0.0);
    st_p50 = percentile all_lat 0.5;
    st_p99 = percentile all_lat 0.99;
    st_per_tenant = per_tenant;
  }

let render st =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "service: %d tenants, %d rounds, %d edits (%d rejected, %d evictions)\n"
    st.st_tenants st.st_rounds st.st_edits st.st_rejected st.st_evictions;
  Printf.bprintf b
    "  sustained %.1f edits/s over %.4fs; latency p50 %.6fs p99 %.6fs\n"
    st.st_edits_per_sec st.st_makespan st.st_p50 st.st_p99;
  if st.st_retransmits > 0 || st.st_workers_lost > 0 then
    Printf.bprintf b "  faults: %d retransmits, %d workers lost, %d re-dispatches\n"
      st.st_retransmits st.st_workers_lost st.st_redispatches;
  if st.st_gave_up > 0 then
    Printf.bprintf b
      "  WARNING: %d messages exhausted the retransmit cap and were force-delivered\n"
      st.st_gave_up;
  Printf.bprintf b "  resident: %d live slots\n" st.st_live_slots;
  List.iter
    (fun ts ->
      Printf.bprintf b
        "  %-12s %5d edits %4d rej %2d evict %4d rtx  p50 %.6fs p99 %.6fs%s\n"
        ts.ts_name ts.ts_edits ts.ts_rejected ts.ts_evictions ts.ts_retransmits
        ts.ts_p50 ts.ts_p99
        ((if ts.ts_prov_firings > 0 then
            Printf.sprintf "  cp %.6fs/%d firings" ts.ts_critical
              ts.ts_prov_firings
          else "")
        ^ (if ts.ts_resident then "" else "  (evicted)")))
    st.st_per_tenant;
  Buffer.contents b
