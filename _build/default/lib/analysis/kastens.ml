open Pag_util
open Pag_core

type instr = Eval of int | Visit of { child : int; visit : int }

type sym_plan = {
  sp_visits : (string list * string list) array;
  sp_visit_of : (string, int) Hashtbl.t;
}

type plan = {
  pl_grammar : Grammar.t;
  pl_syms : sym_plan array; (* indexed by symbol id *)
  pl_seqs : instr list array array; (* prod id -> visit number-1 -> seq *)
}

type failure = Circular of string | Not_ordered of string

let pp_failure fmt = function
  | Circular msg -> Format.fprintf fmt "grammar is circular: %s" msg
  | Not_ordered msg -> Format.fprintf fmt "grammar is not ordered: %s" msg

exception Failed of failure

(* ------------------------------------------------------------------ *)
(* Step 1: induced dependencies (IDS fixpoint over closed IDP graphs). *)
(* ------------------------------------------------------------------ *)

(* ids.(sym_id) is an edge set over that symbol's attribute indices. *)
let induced_symbol_graphs g occs =
  let nsyms = Array.length (Grammar.symbols g) in
  let ids = Array.make nsyms [] in
  let mem_edge sym_id e = List.mem e ids.(sym_id) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun ot ->
        let p = Localdep.production ot in
        let arity = Array.length p.Grammar.p_rhs in
        (* IDP(p) = DP(p) + lifted IDS edges at every position. *)
        let lifted = ref [] in
        for pos = 0 to arity do
          let sname = (Localdep.sym_at ot pos).Grammar.s_name in
          let sid = Grammar.sym_id g sname in
          List.iter
            (fun (a, b) ->
              lifted :=
                (Localdep.occ ot ~pos ~idx:a, Localdep.occ ot ~pos ~idx:b)
                :: !lifted)
            ids.(sid)
        done;
        let idp = Digraph.add_edges (Localdep.dp_graph ot) !lifted in
        let closed = Digraph.transitive_closure idp in
        (* A reflexive edge in the closure is a genuine dependency cycle. *)
        for o = 0 to Localdep.count ot - 1 do
          if Digraph.mem_edge closed o o then
            raise
              (Failed
                 (Circular
                    (Printf.sprintf "production %S: %s depends on itself"
                       p.Grammar.p_name (Localdep.occ_name ot o))))
        done;
        (* Project the closure back onto every position's symbol. *)
        for pos = 0 to arity do
          let sym = Localdep.sym_at ot pos in
          let sid = Grammar.sym_id g sym.Grammar.s_name in
          let n = Array.length sym.Grammar.s_attrs in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              if
                a <> b
                && Digraph.mem_edge closed
                     (Localdep.occ ot ~pos ~idx:a)
                     (Localdep.occ ot ~pos ~idx:b)
                && not (mem_edge sid (a, b))
              then begin
                ids.(sid) <- (a, b) :: ids.(sid);
                changed := true
              end
            done
          done
        done)
      occs
  done;
  ids

(* ------------------------------------------------------------------ *)
(* Step 2: ordered partitions per symbol, peeled from the back.        *)
(* ------------------------------------------------------------------ *)

let partition_symbol g sym edges =
  let n = Array.length sym.Grammar.s_attrs in
  let kind i = sym.Grammar.s_attrs.(i).Grammar.a_kind in
  let name i = sym.Grammar.s_attrs.(i).Grammar.a_name in
  let ds = Digraph.transitive_closure (Digraph.make n edges) in
  let remaining = Array.make n true in
  let left = ref n in
  (* [peelable k] = attributes of kind [k] that nothing remaining depends
     on (no successor among remaining attributes). *)
  let peelable k =
    let out = ref [] in
    for a = n - 1 downto 0 do
      if remaining.(a) && kind a = k then
        let has_succ =
          List.exists (fun b -> remaining.(b) && b <> a) (Digraph.succs ds a)
        in
        if not has_succ then out := a :: !out
    done;
    !out
  in
  let rev_visits = ref [] in
  while !left > 0 do
    let syn_set = peelable Grammar.Syn in
    List.iter
      (fun a ->
        remaining.(a) <- false;
        decr left)
      syn_set;
    let inh_set = peelable Grammar.Inh in
    List.iter
      (fun a ->
        remaining.(a) <- false;
        decr left)
      inh_set;
    if syn_set = [] && inh_set = [] then
      raise
        (Failed
           (Not_ordered
              (Printf.sprintf "cannot partition attributes of %S"
                 sym.Grammar.s_name)));
    rev_visits := (List.map name inh_set, List.map name syn_set) :: !rev_visits
  done;
  let visits = Array.of_list !rev_visits in
  (* Every nonterminal gets at least one visit so that attribute instances in
     attribute-less subtrees still get evaluated. *)
  let visits = if Array.length visits = 0 then [| ([], []) |] else visits in
  let visit_of = Hashtbl.create 8 in
  Array.iteri
    (fun i (inh_attrs, syn_attrs) ->
      List.iter (fun a -> Hashtbl.replace visit_of a (i + 1)) inh_attrs;
      List.iter (fun a -> Hashtbl.replace visit_of a (i + 1)) syn_attrs)
    visits;
  ignore g;
  { sp_visits = visits; sp_visit_of = visit_of }

(* ------------------------------------------------------------------ *)
(* Step 3: visit sequences by topologically sorting an action graph.   *)
(* ------------------------------------------------------------------ *)

(* Action node numbering for a production with [m] LHS visits, [nr] rules
   and child visit counts [mchild]:
     0 .. m-1            Begin v (v = index+1)
     m .. 2m-1           End v
     2m .. 2m+nr-1       Eval r
     2m+nr ..            Visit (child, w), densely packed per child.   *)

let visit_sequences g plan_of_sym ot =
  let p = Localdep.production ot in
  let arity = Array.length p.Grammar.p_rhs in
  let nr = Array.length p.Grammar.p_rules in
  let lhs_sym = (Localdep.sym_at ot 0).Grammar.s_name in
  let m = Array.length (plan_of_sym lhs_sym).sp_visits in
  let child_m =
    Array.init arity (fun i ->
        let s = Localdep.sym_at ot (i + 1) in
        if s.Grammar.s_term then 0
        else Array.length (plan_of_sym s.Grammar.s_name).sp_visits)
  in
  let visit_base = Array.make arity 0 in
  let total = ref (2 * m) in
  let eval_base = !total in
  total := !total + nr;
  Array.iteri
    (fun i mc ->
      visit_base.(i) <- !total;
      total := !total + mc)
    child_m;
  let n_begin v = v - 1 in
  let n_end v = m + v - 1 in
  let n_eval r = eval_base + r in
  let n_visit i w = visit_base.(i) + w - 1 in
  let edges = ref [] in
  let edge a b = edges := (a, b) :: !edges in
  for v = 1 to m do
    edge (n_begin v) (n_end v);
    if v < m then edge (n_end v) (n_begin (v + 1))
  done;
  for i = 0 to arity - 1 do
    for w = 1 to child_m.(i) do
      if w > 1 then edge (n_visit i (w - 1)) (n_visit i w);
      (* Nothing happens before the first visit of the LHS begins. *)
      edge (n_begin 1) (n_visit i w)
    done;
    (* Every child must be fully visited before the final return. *)
    if child_m.(i) > 0 then edge (n_visit i child_m.(i)) (n_end m)
  done;
  for r = 0 to nr - 1 do
    edge (n_begin 1) (n_eval r)
  done;
  let visit_of_attr sym attr =
    match Hashtbl.find_opt (plan_of_sym sym).sp_visit_of attr with
    | Some v -> v
    | None -> 1
  in
  Array.iteri
    (fun r (ru : Grammar.rule) ->
      let tgt = ru.Grammar.r_target in
      (if tgt.Grammar.pos = 0 then
         edge (n_eval r) (n_end (visit_of_attr lhs_sym tgt.Grammar.attr))
       else
         let child = tgt.Grammar.pos - 1 in
         let csym = (Localdep.sym_at ot tgt.Grammar.pos).Grammar.s_name in
         edge (n_eval r) (n_visit child (visit_of_attr csym tgt.Grammar.attr)));
      List.iter
        (fun (d : Grammar.attr_ref) ->
          if d.Grammar.pos = 0 then
            edge (n_begin (visit_of_attr lhs_sym d.Grammar.attr)) (n_eval r)
          else
            let child = d.Grammar.pos - 1 in
            let csym = Localdep.sym_at ot d.Grammar.pos in
            if not csym.Grammar.s_term then
              edge
                (n_visit child (visit_of_attr csym.Grammar.s_name d.Grammar.attr))
                (n_eval r))
        ru.Grammar.r_deps)
    p.Grammar.p_rules;
  let graph = Digraph.make !total !edges in
  (* Kahn's algorithm with a preference for non-End actions, so work is
     scheduled in the earliest visit whose inputs are available. *)
  let indeg = Array.make !total 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) (Digraph.edges graph);
  let is_end a = a >= m && a < 2 * m in
  let ready = ref [] in
  for a = !total - 1 downto 0 do
    if indeg.(a) = 0 then ready := a :: !ready
  done;
  let segments = Array.make (max m 1) [] in
  let current = ref 0 in
  let emitted = ref 0 in
  let classify a =
    if a < m then `Begin (a + 1)
    else if a < 2 * m then `End (a - m + 1)
    else if a < 2 * m + nr then `Eval (a - eval_base)
    else
      let rec find i =
        if
          child_m.(i) > 0
          && a >= visit_base.(i)
          && a < visit_base.(i) + child_m.(i)
        then i
        else find (i + 1)
      in
      let i = find 0 in
      `Visit (i, a - visit_base.(i) + 1)
  in
  let take a =
    ready := List.filter (fun x -> x <> a) !ready;
    incr emitted;
    (match classify a with
    | `Begin v -> current := v
    | `End _ -> ()
    | `Eval r ->
        segments.(!current - 1) <- Eval r :: segments.(!current - 1)
    | `Visit (i, w) ->
        segments.(!current - 1) <-
          Visit { child = i; visit = w } :: segments.(!current - 1));
    List.iter
      (fun b ->
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then ready := !ready @ [ b ])
      (Digraph.succs graph a)
  in
  let rec loop () =
    match !ready with
    | [] -> ()
    | l -> (
        let non_end = List.filter (fun a -> not (is_end a)) l in
        match non_end with
        | a :: _ ->
            take a;
            loop ()
        | [] ->
            take (List.hd l);
            loop ())
  in
  loop ();
  if !emitted <> !total then
    raise
      (Failed
         (Not_ordered
            (Printf.sprintf
               "production %S: no consistent visit sequence (action graph is \
                cyclic)"
               p.Grammar.p_name)));
  ignore g;
  Array.map List.rev segments

(* ------------------------------------------------------------------ *)

let analyze g =
  try
    let occs = Array.map (Localdep.of_production g) (Grammar.productions g) in
    let ids = induced_symbol_graphs g occs in
    let syms = Grammar.symbols g in
    let pl_syms =
      Array.mapi
        (fun i s ->
          if s.Grammar.s_term then
            { sp_visits = [||]; sp_visit_of = Hashtbl.create 1 }
          else partition_symbol g s ids.(i))
        syms
    in
    let plan_of_sym name = pl_syms.(Grammar.sym_id g name) in
    let pl_seqs = Array.map (visit_sequences g plan_of_sym) occs in
    Ok { pl_grammar = g; pl_syms; pl_seqs }
  with Failed f -> Error f

let grammar p = p.pl_grammar

let visit_count p sym =
  Array.length p.pl_syms.(Grammar.sym_id p.pl_grammar sym).sp_visits

let visit_attrs p ~sym ~visit =
  let sp = p.pl_syms.(Grammar.sym_id p.pl_grammar sym) in
  if visit < 1 || visit > Array.length sp.sp_visits then
    invalid_arg "Kastens.visit_attrs: visit out of range";
  sp.sp_visits.(visit - 1)

let visit_of_attr p ~sym ~attr =
  let sp = p.pl_syms.(Grammar.sym_id p.pl_grammar sym) in
  match Hashtbl.find_opt sp.sp_visit_of attr with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Kastens.visit_of_attr: %s.%s" sym attr)

let visit_seq p ~prod ~visit = p.pl_seqs.(prod).(visit - 1)

let pp_plan fmt p =
  let g = p.pl_grammar in
  Format.fprintf fmt "@[<v>ordered evaluation plan for grammar %S"
    (Grammar.name g);
  Array.iteri
    (fun i s ->
      if not s.Grammar.s_term then begin
        Format.fprintf fmt "@,symbol %s:" s.Grammar.s_name;
        Array.iteri
          (fun v (inh_attrs, syn_attrs) ->
            Format.fprintf fmt "@,  visit %d: inh {%s} -> syn {%s}" (v + 1)
              (String.concat "," inh_attrs)
              (String.concat "," syn_attrs))
          p.pl_syms.(i).sp_visits
      end)
    (Grammar.symbols g);
  Array.iter
    (fun (pr : Grammar.production) ->
      Format.fprintf fmt "@,production %s:" pr.Grammar.p_name;
      Array.iteri
        (fun v seq ->
          Format.fprintf fmt "@,  visit %d:" (v + 1);
          List.iter
            (function
              | Eval r ->
                  Format.fprintf fmt " eval(%s)"
                    pr.Grammar.p_rules.(r).Grammar.r_name
              | Visit { child; visit } ->
                  Format.fprintf fmt " visit(%d,%d)" (child + 1) visit)
            seq)
        p.pl_seqs.(pr.Grammar.p_id))
    (Grammar.productions g);
  Format.fprintf fmt "@]"
