open Ast

exception Parse_error of int * string

type state = { mutable toks : (Token.t * int) list }

let error st fmt =
  let line = match st.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Token.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st t =
  if peek st = t then advance st
  else
    error st "expected %s, found %s" (Token.to_string t)
      (Token.to_string (peek st))

let ident st =
  match peek st with
  | Token.IDENT s ->
      advance st;
      s
  | other -> error st "expected an identifier, found %s" (Token.to_string other)

let number st =
  match peek st with
  | Token.NUM n ->
      advance st;
      n
  | Token.MINUS -> (
      advance st;
      match peek st with
      | Token.NUM n ->
          advance st;
          -n
      | other -> error st "expected a number, found %s" (Token.to_string other))
  | other -> error st "expected a number, found %s" (Token.to_string other)

(* ---------------- types ---------------- *)

let rec parse_ty st =
  match peek st with
  | Token.INTEGER ->
      advance st;
      TInt
  | Token.BOOLEAN ->
      advance st;
      TBool
  | Token.CHAR ->
      advance st;
      TChar
  | Token.ARRAY ->
      advance st;
      eat st Token.LBRACKET;
      let lo = number st in
      eat st Token.DOTDOT;
      let hi = number st in
      eat st Token.RBRACKET;
      eat st Token.OF;
      let elem = parse_ty st in
      if hi < lo then error st "array upper bound below lower bound";
      TArray (lo, hi, elem)
  | Token.RECORD ->
      advance st;
      let fields = ref [] in
      let rec fields_loop () =
        if peek st = Token.END then ()
        else begin
          let names = ref [ ident st ] in
          while peek st = Token.COMMA do
            advance st;
            names := ident st :: !names
          done;
          eat st Token.COLON;
          let ty = parse_ty st in
          List.iter (fun n -> fields := (n, ty) :: !fields) (List.rev !names);
          if peek st = Token.SEMI then begin
            advance st;
            fields_loop ()
          end
        end
      in
      fields_loop ();
      eat st Token.END;
      TRecord (List.rev !fields)
  | other -> error st "expected a type, found %s" (Token.to_string other)

(* ---------------- expressions ----------------

   Standard Pascal precedence: relational < additive/or < multiplicative/and
   < unary not/-. *)

let rec parse_expr_prec st =
  let lhs = parse_simple st in
  match peek st with
  | Token.EQ | Token.NE | Token.LT | Token.LE | Token.GT | Token.GE ->
      let op =
        match peek st with
        | Token.EQ -> Eq
        | Token.NE -> Ne
        | Token.LT -> Lt
        | Token.LE -> Le
        | Token.GT -> Gt
        | Token.GE -> Ge
        | _ -> assert false
      in
      advance st;
      let rhs = parse_simple st in
      EBin (op, lhs, rhs)
  | _ -> lhs

and parse_simple st =
  (* leading sign *)
  let first =
    match peek st with
    | Token.MINUS ->
        advance st;
        EUn (Neg, parse_term st)
    | Token.PLUS ->
        advance st;
        parse_term st
    | _ -> parse_term st
  in
  let rec loop acc =
    match peek st with
    | Token.PLUS ->
        advance st;
        loop (EBin (Add, acc, parse_term st))
    | Token.MINUS ->
        advance st;
        loop (EBin (Sub, acc, parse_term st))
    | Token.OR ->
        advance st;
        loop (EBin (Or, acc, parse_term st))
    | _ -> acc
  in
  loop first

and parse_term st =
  let rec loop acc =
    match peek st with
    | Token.STAR ->
        advance st;
        loop (EBin (Mul, acc, parse_factor st))
    | Token.DIV ->
        advance st;
        loop (EBin (Div, acc, parse_factor st))
    | Token.MOD ->
        advance st;
        loop (EBin (Mod, acc, parse_factor st))
    | Token.AND ->
        advance st;
        loop (EBin (And, acc, parse_factor st))
    | _ -> acc
  in
  loop (parse_factor st)

and parse_factor st =
  match peek st with
  | Token.NUM n ->
      advance st;
      EInt n
  | Token.TRUE ->
      advance st;
      EBool true
  | Token.FALSE ->
      advance st;
      EBool false
  | Token.CHARLIT c ->
      advance st;
      EChar c
  | Token.NOT ->
      advance st;
      EUn (Not, parse_factor st)
  | Token.MINUS ->
      advance st;
      EUn (Neg, parse_factor st)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      eat st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match peek st with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          eat st Token.RPAREN;
          ECall (name, args)
      | _ -> ELval (parse_lvalue_rest st (LId name)))
  | other -> error st "expected an expression, found %s" (Token.to_string other)

and parse_args st =
  if peek st = Token.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expr_prec st in
      if peek st = Token.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

and parse_lvalue_rest st lv =
  match peek st with
  | Token.LBRACKET ->
      advance st;
      let idx = parse_expr_prec st in
      eat st Token.RBRACKET;
      parse_lvalue_rest st (LIndex (lv, idx))
  | Token.DOT ->
      advance st;
      let f = ident st in
      parse_lvalue_rest st (LField (lv, f))
  | _ -> lv

(* ---------------- statements ---------------- *)

let rec parse_stmt st =
  match peek st with
  | Token.IF ->
      advance st;
      let cond = parse_expr_prec st in
      eat st Token.THEN;
      let then_ = parse_body st in
      let else_ =
        if peek st = Token.ELSE then begin
          advance st;
          parse_body st
        end
        else []
      in
      SIf (cond, then_, else_)
  | Token.WHILE ->
      advance st;
      let cond = parse_expr_prec st in
      eat st Token.DO;
      SWhile (cond, parse_body st)
  | Token.REPEAT ->
      advance st;
      let body = parse_stmts st in
      eat st Token.UNTIL;
      SRepeat (body, parse_expr_prec st)
  | Token.FOR ->
      advance st;
      let v = ident st in
      eat st Token.ASSIGN;
      let e1 = parse_expr_prec st in
      let up =
        match peek st with
        | Token.TO ->
            advance st;
            true
        | Token.DOWNTO ->
            advance st;
            false
        | other -> error st "expected to/downto, found %s" (Token.to_string other)
      in
      let e2 = parse_expr_prec st in
      eat st Token.DO;
      SFor (v, e1, up, e2, parse_body st)
  | Token.CASE ->
      advance st;
      let scrutinee = parse_expr_prec st in
      eat st Token.OF;
      let arms = ref [] in
      let default = ref None in
      let rec arms_loop () =
        match peek st with
        | Token.END -> ()
        | Token.ELSE ->
            advance st;
            default := Some (parse_body st)
        | _ ->
            let consts = ref [ number st ] in
            while peek st = Token.COMMA do
              advance st;
              consts := number st :: !consts
            done;
            eat st Token.COLON;
            let body = parse_body st in
            arms := (List.rev !consts, body) :: !arms;
            if peek st = Token.SEMI then begin
              advance st;
              arms_loop ()
            end
            else if peek st = Token.ELSE then arms_loop ()
      in
      arms_loop ();
      eat st Token.END;
      SCase (scrutinee, List.rev !arms, !default)
  | Token.WRITE ->
      advance st;
      eat st Token.LPAREN;
      let args = parse_args st in
      eat st Token.RPAREN;
      SWrite (args, false)
  | Token.WRITELN ->
      advance st;
      let args =
        if peek st = Token.LPAREN then begin
          advance st;
          let a = parse_args st in
          eat st Token.RPAREN;
          a
        end
        else []
      in
      SWrite (args, true)
  | Token.READ ->
      advance st;
      eat st Token.LPAREN;
      let name = ident st in
      let lv = parse_lvalue_rest st (LId name) in
      eat st Token.RPAREN;
      SRead lv
  | Token.IDENT name -> (
      advance st;
      match peek st with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          eat st Token.RPAREN;
          SCall (name, args)
      | Token.ASSIGN | Token.LBRACKET | Token.DOT ->
          let lv = parse_lvalue_rest st (LId name) in
          eat st Token.ASSIGN;
          SAssign (lv, parse_expr_prec st)
      | _ -> SCall (name, []))
  | other -> error st "expected a statement, found %s" (Token.to_string other)

(* A statement body: either one statement or a begin..end compound. *)
and parse_body st =
  if peek st = Token.BEGIN then begin
    advance st;
    let stmts = parse_stmts st in
    eat st Token.END;
    stmts
  end
  else [ parse_stmt st ]

(* Semicolon-separated statements; empty statements are tolerated and a
   compound statement in a sequence splices its contents. *)
and parse_stmts st =
  let stmts = ref [] in
  let rec loop () =
    (match peek st with
    | Token.END | Token.UNTIL | Token.ELSE | Token.EOF -> ()
    | Token.SEMI -> ()
    | Token.BEGIN ->
        advance st;
        let inner = parse_stmts st in
        eat st Token.END;
        stmts := List.rev_append inner !stmts
    | _ -> stmts := parse_stmt st :: !stmts);
    if peek st = Token.SEMI then begin
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !stmts

(* ---------------- declarations ---------------- *)

let rec parse_block st =
  let decls = ref [] in
  let rec decls_loop () =
    match peek st with
    | Token.CONST ->
        advance st;
        let rec consts () =
          let name = ident st in
          eat st Token.EQ;
          let v = number st in
          eat st Token.SEMI;
          decls := DConst (name, v) :: !decls;
          match peek st with Token.IDENT _ -> consts () | _ -> ()
        in
        consts ();
        decls_loop ()
    | Token.VAR ->
        advance st;
        let rec vars () =
          let names = ref [ ident st ] in
          while peek st = Token.COMMA do
            advance st;
            names := ident st :: !names
          done;
          eat st Token.COLON;
          let ty = parse_ty st in
          eat st Token.SEMI;
          List.iter (fun n -> decls := DVar (n, ty) :: !decls) (List.rev !names);
          match peek st with Token.IDENT _ -> vars () | _ -> ()
        in
        vars ();
        decls_loop ()
    | Token.PROCEDURE | Token.FUNCTION ->
        let is_func = peek st = Token.FUNCTION in
        advance st;
        let name = ident st in
        let params =
          if peek st = Token.LPAREN then begin
            advance st;
            let ps = ref [] in
            let rec params_loop () =
              let by_ref =
                if peek st = Token.VAR then begin
                  advance st;
                  true
                end
                else false
              in
              let names = ref [ ident st ] in
              while peek st = Token.COMMA do
                advance st;
                names := ident st :: !names
              done;
              eat st Token.COLON;
              let ty = parse_ty st in
              List.iter
                (fun n -> ps := { p_name = n; p_ty = ty; p_ref = by_ref } :: !ps)
                (List.rev !names);
              if peek st = Token.SEMI then begin
                advance st;
                params_loop ()
              end
            in
            params_loop ();
            eat st Token.RPAREN;
            List.rev !ps
          end
          else []
        in
        let ret =
          if is_func then begin
            eat st Token.COLON;
            Some (parse_ty st)
          end
          else None
        in
        eat st Token.SEMI;
        let block = parse_block st in
        eat st Token.SEMI;
        decls :=
          DRoutine { r_name = name; r_params = params; r_ret = ret; r_block = block }
          :: !decls;
        decls_loop ()
    | _ -> ()
  in
  decls_loop ();
  eat st Token.BEGIN;
  let body = parse_stmts st in
  eat st Token.END;
  { b_decls = List.rev !decls; b_body = body }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  eat st Token.PROGRAM;
  let name = ident st in
  eat st Token.SEMI;
  let block = parse_block st in
  eat st Token.DOT;
  eat st Token.EOF;
  { prog_name = name; prog_block = block }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_prec st in
  eat st Token.EOF;
  e
