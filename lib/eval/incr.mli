(** Incremental re-evaluation: edit-driven recompilation.

    A session holds a fully evaluated tree together with its {!Store},
    {!Engine} and slot-level dependency graph. An {!edit} replaces one
    subtree ({!Pag_core.Tree.diff} finds the site): the replacement is
    appended to the store and engine, the detached instances go dead, and
    change propagates through consumer edges self-adjusting-computation
    style — only rules in the dirty cone re-fire, and an equality cutoff
    ({!Store.redefine_slot}) stops propagation wherever a recomputed value
    came out unchanged. When the dirty cone exceeds [frontier] of all live
    rules (default 0.6), the session falls back to a compacting
    from-scratch rebuild instead.

    Unique labels are drawn from the session's own cursor, so incremental
    results equal from-scratch results up to label renaming — and exactly,
    when no rule in the dirty cone allocates labels. *)

open Pag_core

type session

(** Per-edit outcome. *)
type edit_stats = {
  ed_dirty : int;  (** rule instances in the dirty cone *)
  ed_refired : int;  (** rules actually re-fired *)
  ed_cutoff : int;  (** dirty rules skipped by the equality cutoff *)
  ed_fallback : bool;  (** the edit was handled by a from-scratch rebuild *)
  ed_prop_ms : float;  (** propagation (or rebuild) time, milliseconds *)
}

(** Cumulative session counters. *)
type totals = {
  tot_edits : int;
  tot_dirty : int;
  tot_refired : int;
  tot_cutoff : int;
  tot_fallbacks : int;
}

(** Outcome of one batched application ({!edit_batch}). *)
type wave_stats = {
  wv_edits : int;  (** edits submitted (including structural no-ops) *)
  wv_waves : int;  (** merged refire waves run *)
  wv_conflicts : int;  (** edits that interfered and forced a wave flush *)
  wv_dirty : int;  (** merged dirty-cone members, all waves *)
  wv_refired : int;
  wv_cutoff : int;
  wv_fallbacks : int;  (** from-scratch rebuilds (each subsumes its wave) *)
  wv_rounds : int;  (** level-synchronous refire rounds, all waves *)
  wv_round_refired : int array;  (** refires per round, in wave order *)
  wv_bytes : int;  (** replacement-subtree bytes grafted *)
  wv_prop_ms : float;
}

(** [start g tree] evaluates [tree] from scratch and opens the session.
    [~hashcons:true] routes (re-)firings through a rule memo; [memo]
    supplies that memo explicitly instead, letting several sessions share
    one intern arena (a multi-tenant service passes the same [Memo.rules]
    to every tenant — safe because uid-consuming rules are tainted and
    never memoized, so sharing cannot leak labels across sessions).
    [frontier] is the dirty-cone fraction beyond which edits rebuild from
    scratch. With a live [obs] context each edit records the [incr.*]
    counters and the [incr.prop_ms] histogram.

    [~dag:true] makes the shared DAG the evaluation substrate ({!Dag}):
    the initial evaluation parks repeated-subtree occurrences and projects
    their synthesized attributes from one evaluation per (class ×
    inherited fingerprint). Edits then split classes on divergence only:
    a graft inside a projected occurrence, or a dirty cone reaching the
    inherited gate of one, materializes that occurrence (sticky) while the
    other occurrences keep their values untouched. Fallback rebuilds
    re-plan the DAG on the compacted tree, restoring full sharing.

    [prov] attaches a provenance ring that survives the session's engine
    rebuilds: the initial evaluation and every refire append records, and
    a fallback rebuild clears the ring before re-recording its
    from-scratch evaluation (the compaction renumbers slots, so stale
    records would misresolve). [--explain]/[--profile] thus work against
    the live session at any point ({!engine} exposes the current engine
    for {!Causal}). *)
val start :
  ?obs:Pag_obs.Obs.ctx ->
  ?memo:Memo.rules ->
  ?hashcons:bool ->
  ?dag:bool ->
  ?prov:Pag_obs.Prov.t ->
  ?frontier:float ->
  Grammar.t ->
  Tree.t ->
  session

(** The session's current (evaluated) tree. *)
val tree : session -> Tree.t

(** The session's current store — all attribute values of {!tree} are set.
    Instances of subtrees detached by earlier edits linger as dead slots
    until the next compacting rebuild; query through live nodes only. *)
val store : session -> Store.t

(** Attribute instances owned by live nodes of {!tree} — the session's
    memory footprint (RSS proxy). [Store.slot_count (store s)] additionally
    counts dead slots left by detached subtrees; the session compacts
    (rebuilds from scratch) whenever the dead weight would exceed the live
    weight, so the total stays within 2x [live_slots] plus one edit's
    appended subtree. A multi-tenant pool evicts against this number. *)
val live_slots : session -> int

(** The session's current engine (replaced wholesale by a fallback
    rebuild — re-fetch after every edit before analyzing provenance). *)
val engine : session -> Engine.t

(** The ring passed to {!start} ({!Pag_obs.Prov.disabled} when none). *)
val prov : session -> Pag_obs.Prov.t

(** [edit session next] updates the session so its tree is (structurally)
    [next] and every attribute reflects it. [next] must have the same root
    symbol. Structurally equal trees are a no-op; a root-level change or an
    oversized dirty cone falls back to from-scratch. After a [Subtree]
    delta the session keeps its current tree object with the replacement
    grafted in — nodes of [next] outside the replacement are not used. *)
val edit : session -> Tree.t -> edit_stats

(** [replace session ~parent ~pos repl] is the primitive edit: graft
    [repl] (an unnumbered tree) as child [pos] of [parent] (a node of the
    session's tree) and re-evaluate incrementally. *)
val replace : session -> parent:Tree.t -> pos:int -> Tree.t -> edit_stats

(** [edit_batch session nexts] applies a set of edits in waves: each
    edit's dirty cone is computed by the usual value-blind closure, and
    structurally independent cones MERGE into one dirty set that re-fires
    once per wave ({!Engine.refire_set}) — rule purity makes propagation
    confluent, so the merged wave reaches exactly the store serial
    application would. Cone {e overlap} is not interference (every cone
    reaches the root's synthesized attributes); an edit conflicts, and
    flushes the pending wave into a fresh one, only when it structurally
    interferes with an accepted edit: it grafts into a replaced region,
    detaches pending cone members, or shares the graft parent (whose
    re-resolved frontier slots both would seed). Conflicting batches thus
    degrade to serial waves with the same final store, in submission
    order. Compaction and frontier overflow fall back to a from-scratch
    rebuild exactly as {!edit} does; a rebuild subsumes the pending wave.

    With [domains > 1] each wave re-fires on the work-stealing scheduler,
    deques seeded by cone ownership; label-drawing rules then allocate
    from per-domain stripes (compare label-masked output, as with
    {!Engine.run_steal}). The default re-fires rounds sequentially and
    preserves provenance recording, so [--profile] blames across waves.
    After the call {!changed} answers for the whole batch. *)
val edit_batch : ?domains:int -> session -> Tree.t list -> wave_stats

(** [changed session node attr] — did the last {!edit} change this
    instance's value? Conservatively [true] for everything after a
    fallback rebuild. The distributed runner uses this to ship only
    changed boundary attributes (unchanged ones travel as references). *)
val changed : session -> Tree.t -> string -> bool

val totals : session -> totals

(** DAG-sharing statistics of the session's current evaluation ([None]
    unless the session was started with [~dag:true]). [dg_materialized]
    grows as edits split projected occurrences off their classes; a
    fallback rebuild resets the counts for the re-planned DAG. *)
val dag_stats : session -> Dag.stats option
