(** The environment a compiler process (worker, librarian, coordinator) runs
    against — the seam between the simulated network multiprocessor and the
    real multicore runtime.

    On the {!Sim_runner} transport, [delay] advances virtual time and
    [send]/[recv] go through the Ethernet model; on the {!Domain_runner}
    transport, [delay] is a no-op (the CPU does the actual work) and messages
    travel over blocking in-memory queues. The process code is identical. *)

type env = {
  e_id : int;  (** this machine's id: 0 parser, 1..k evaluators, k+1 librarian *)
  e_delay : float -> unit;
  e_send : dst:int -> Message.t -> unit;
  e_recv : unit -> Message.t;
  e_mark : string -> unit;  (** phase mark in the trace (no-op if untraced) *)
}
