test/test_netsim.ml: Alcotest Array Ethernet Gantt List Netsim Printf Sim String Trace
