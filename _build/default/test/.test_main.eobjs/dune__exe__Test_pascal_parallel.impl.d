test/test_pascal_parallel.ml: Alcotest Driver Lazy List Netsim Pag_parallel Pascal Printf Progen Random Runner String
