lib/core/codestr.ml: Format List Pag_util Printf Rope Value
