test/test_symtab.ml: Alcotest List Map Pag_util Printf QCheck QCheck_alcotest String Symtab
