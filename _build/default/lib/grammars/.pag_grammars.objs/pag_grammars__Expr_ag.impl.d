lib/grammars/expr_ag.ml: Array Grammar List Pag_core Pag_util Printf Random Rope Symtab Tree Value
