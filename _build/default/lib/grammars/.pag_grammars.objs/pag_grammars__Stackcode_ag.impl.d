lib/grammars/stackcode_ag.ml: Array Buffer Codestr Grammar Hashtbl List Pag_core Pag_util Printf Random Rope String Symtab Tree Uid Value
