lib/analysis/kastens.mli: Format Grammar Pag_core
