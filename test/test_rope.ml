open Pag_util

let qc ?(count = 200) name gen prop = Qc_seed.qc ~count name gen prop

(* Generator for ropes with known flattened content. *)
let rope_gen =
  let open QCheck.Gen in
  let leaf = map Rope.of_string (string_size ~gen:printable (int_bound 12)) in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (3, map2 Rope.concat (tree (depth - 1)) (tree (depth - 1)));
        ]
  in
  tree 6

let arb_rope = QCheck.make ~print:Rope.to_string rope_gen

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  check_str "empty flattens to \"\"" "" (Rope.to_string Rope.empty);
  check_int "empty length" 0 (Rope.length Rope.empty);
  check_bool "is_empty" true (Rope.is_empty Rope.empty)

let test_of_string () =
  check_str "round trip" "hello" (Rope.to_string (Rope.of_string "hello"));
  check_int "length" 5 (Rope.length (Rope.of_string "hello"))

let test_concat_basic () =
  let r = Rope.concat (Rope.of_string "foo") (Rope.of_string "bar") in
  check_str "foo ^ bar" "foobar" (Rope.to_string r);
  check_int "length" 6 (Rope.length r)

let test_concat_empty_identity () =
  let r = Rope.of_string "x" in
  check_bool "left identity" true (Rope.equal r (Rope.concat Rope.empty r));
  check_bool "right identity" true (Rope.equal r (Rope.concat r Rope.empty));
  (* identity concat must not grow the tree *)
  check_int "no extra depth" (Rope.depth r)
    (Rope.depth (Rope.concat Rope.empty r))

let test_concat_list () =
  let parts = [ "a"; "bb"; "ccc"; "dddd"; "e" ] in
  let r = Rope.concat_list (List.map Rope.of_string parts) in
  check_str "concat_list" (String.concat "" parts) (Rope.to_string r)

let test_concat_list_balanced () =
  let n = 1024 in
  let parts = List.init n (fun _ -> Rope.of_string "x") in
  let r = Rope.concat_list parts in
  check_int "length" n (Rope.length r);
  check_bool "depth is logarithmic" true (Rope.depth r <= 12)

let test_deep_left_lean () =
  (* A pathological left-leaning rope must not blow the stack. *)
  let n = 200_000 in
  let r = ref Rope.empty in
  for _ = 1 to n do
    r := Rope.concat !r (Rope.of_string "a")
  done;
  check_int "length" n (Rope.length !r);
  check_int "flattened length" n (String.length (Rope.to_string !r))

let test_deep_right_lean () =
  let n = 200_000 in
  let r = ref Rope.empty in
  for _ = 1 to n do
    r := Rope.concat (Rope.of_string "b") !r
  done;
  check_int "length" n (Rope.length !r);
  check_bool "equal to itself" true (Rope.equal !r !r)

let test_iter_chunks_order () =
  let r =
    Rope.concat
      (Rope.concat (Rope.of_string "ab") (Rope.of_string "cd"))
      (Rope.of_string "ef")
  in
  let buf = Buffer.create 8 in
  Rope.iter_chunks (Buffer.add_string buf) r;
  check_str "left-to-right" "abcdef" (Buffer.contents buf)

let test_leaf_count () =
  let r = Rope.concat (Rope.of_string "a") (Rope.of_string "") in
  (* empty operand is dropped by concat *)
  check_int "leaf count skips empties" 1 (Rope.leaf_count r)

let test_compare_prefix () =
  let a = Rope.of_string "abc" and b = Rope.of_string "abcd" in
  check_bool "prefix is smaller" true (Rope.compare a b < 0);
  check_bool "reverse" true (Rope.compare b a > 0)

let test_compare_chunk_boundaries () =
  (* Same content, different tree shape: compare must be 0. *)
  let a = Rope.concat (Rope.of_string "ab") (Rope.of_string "cde")
  and b = Rope.concat (Rope.of_string "abcd") (Rope.of_string "e") in
  check_int "equal content across shapes" 0 (Rope.compare a b);
  check_bool "equal" true (Rope.equal a b)

let test_output () =
  let file = Filename.temp_file "rope" ".txt" in
  let oc = open_out file in
  Rope.output oc (Rope.concat (Rope.of_string "he") (Rope.of_string "llo"));
  close_out oc;
  let ic = open_in file in
  let line = input_line ic in
  close_in ic;
  Sys.remove file;
  check_str "output" "hello" line

let prop_flatten_concat =
  qc "to_string distributes over concat"
    QCheck.(pair arb_rope arb_rope)
    (fun (a, b) ->
      Rope.to_string (Rope.concat a b) = Rope.to_string a ^ Rope.to_string b)

let prop_length =
  qc "length = flattened length" arb_rope (fun r ->
      Rope.length r = String.length (Rope.to_string r))

let prop_equal_content =
  qc "equal iff same content"
    QCheck.(pair arb_rope arb_rope)
    (fun (a, b) -> Rope.equal a b = (Rope.to_string a = Rope.to_string b))

let prop_compare_content =
  qc "compare agrees with string compare"
    QCheck.(pair arb_rope arb_rope)
    (fun (a, b) ->
      Stdlib.compare
        (Rope.compare a b > 0, Rope.compare a b < 0)
        ( String.compare (Rope.to_string a) (Rope.to_string b) > 0,
          String.compare (Rope.to_string a) (Rope.to_string b) < 0 )
      = 0)

let prop_assoc =
  qc "concat is associative on content"
    QCheck.(triple arb_rope arb_rope arb_rope)
    (fun (a, b, c) ->
      Rope.equal
        (Rope.concat (Rope.concat a b) c)
        (Rope.concat a (Rope.concat b c)))

let suite =
  [
    ( "rope",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "of_string" `Quick test_of_string;
        Alcotest.test_case "concat basic" `Quick test_concat_basic;
        Alcotest.test_case "concat identity" `Quick test_concat_empty_identity;
        Alcotest.test_case "concat_list" `Quick test_concat_list;
        Alcotest.test_case "concat_list balanced" `Quick
          test_concat_list_balanced;
        Alcotest.test_case "deep left lean" `Quick test_deep_left_lean;
        Alcotest.test_case "deep right lean" `Quick test_deep_right_lean;
        Alcotest.test_case "iter order" `Quick test_iter_chunks_order;
        Alcotest.test_case "leaf count" `Quick test_leaf_count;
        Alcotest.test_case "compare prefix" `Quick test_compare_prefix;
        Alcotest.test_case "compare shapes" `Quick
          test_compare_chunk_boundaries;
        Alcotest.test_case "output" `Quick test_output;
        prop_flatten_concat;
        prop_length;
        prop_equal_content;
        prop_compare_content;
        prop_assoc;
      ] );
  ]
