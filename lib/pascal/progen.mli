(** Random well-typed Pascal-subset program generator.

    Two uses: differential testing (generated programs are run through both
    the compiler + VAX simulator and the reference interpreter; outputs must
    match) and workload synthesis — {!paper_program} produces a program of
    the shape the paper measures (about 5000 source lines, about 50
    procedures, a number of them nested more than one level deep).

    Generated programs always terminate: loops are bounded by construction
    and calls never recurse. [gen] also returns how many integers the
    program reads from input. *)

type cfg = {
  g_routines : int;  (** top-level routines *)
  g_nested : int;  (** nested routines per routine *)
  g_max_level : int;  (** deepest nesting level of routines *)
  g_stmts : int;  (** statements per body *)
  g_expr_depth : int;
  g_reads : int;  (** max read statements *)
}

val small : cfg

val medium : cfg

val paper : cfg

(** [skew > 0] additionally appends one pathologically fat routine whose
    statements each assign a deep left-leaning label-free arithmetic chain
    of [skew] steps — an unsplittable expression spine (the grammar splits
    at declarations and statements only) that strands a static fragment
    assignment on one machine. *)
val gen :
  ?module_seeds:bool -> ?skew:int -> Random.State.t -> cfg -> Ast.program * int

(** The paper's measurement workload (deterministic for a given seed). *)
val paper_program : ?seed:int -> unit -> Ast.program

(** Pathologically unbalanced workload for the work-stealing benchmark: a
    dozen tiny routines plus one fat routine of four [chain]-step
    left-leaning expression spines (default 400). Deterministic for a given
    (seed, chain). *)
val skewed_program : ?seed:int -> ?chain:int -> unit -> Ast.program

(** Deterministic workload with tunable subtree repetition for the
    hash-consing benchmark: [routines] procedures, each of whose bodies is
    [reps] copies of one structurally identical, label-free deep arithmetic
    assignment ([unit_depth] levels, default 5). *)
val repetitive : ?unit_depth:int -> routines:int -> reps:int -> unit -> Ast.program
