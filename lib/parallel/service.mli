(** Multi-tenant compile service: a long-running server holding a pool of
    resident edit sessions keyed by tenant id.

    The paper frames the evaluator as a compiler resident inside an editor
    loop; this module is that loop at service scale. Each tenant owns an
    incremental session ({!Pag_eval.Incr}) kept evaluated between edits.
    Clients {!submit} replacement trees into bounded per-tenant queues
    (admission control: a full queue rejects, surfacing backpressure), and
    {!run_round} drains every non-empty queue as one batched wave,
    multiplexing the tenant batches over a bounded set of workers under a
    {!policy}.

    {2 Transports}

    - [`Sim] prices the service on the netsim machine model with virtual
      time: each worker is a machine on the shared Ethernet, every edit
      costs a dispatch message (the replacement subtree), the owner's
      rebuild-plus-propagation delay (the {!Session} wave pricing), and a
      result message back; the medium saturates under load, which is what
      the latency percentiles measure. With a fault plan, dropped
      dispatches retransmit after an RTO (accounted to the owning tenant)
      and a machine crash mid-wave re-dispatches its remaining batches to
      the surviving workers.
    - [`Domains] applies each round's batches on real OCaml domains (one
      per worker) and measures wall-clock latency. The process-wide value
      intern arena is not domain-safe, so with [hashcons] the batches of a
      round are applied sequentially instead (still measured in wall
      time); intern-arena sharing across tenants is a [`Sim] feature.

    In both transports the edits themselves are applied through the
    tenant's own {!Pag_eval.Incr} session in submission order, so a
    tenant's final attributes are bit-identical to an isolated
    single-session run of the same edits — multiplexing is isolation
    (test_service.ml holds the service to that oracle).

    {2 Lifecycle}

    Sessions are resident but not immortal: a memory cap (total
    {!Pag_eval.Incr.live_slots} across tenants) evicts the
    least-recently-active sessions, and an idle timeout (in rounds) evicts
    sessions whose tenants went quiet. Eviction frees the store, engine
    and dependency graph but keeps the tenant's current tree; the next
    edit (or {!tenant_store} query) revives the session by re-evaluating
    that tree, so an evicted tenant only pays a rebuild, never loses
    state; on [`Sim] that rebuild is priced into the virtual makespan, so
    evict/revive thrash is visible in the latency figures. Tenants
    scheduled in the current round are exempt from eviction while their
    sessions are live on workers (the pool may overshoot the cap
    transiently); {!run_round} re-enforces the cap when the round ends.
    With [hashcons], every tenant session shares one rule memo — the
    cross-tenant intern arena.

    Per-tenant telemetry flows into the [obs] metrics registry under
    {!Pag_obs.Obs.Metrics.labeled} names ([service.edits{tenant=...}],
    queue-depth gauges, latency histograms); p50/p99 in {!stats} come from
    a bounded per-tenant reservoir (a deterministic uniform sample of at
    most 2048 latencies — exact until a tenant's 2049th edit), so resident
    memory stays bounded over the service's lifetime. All counters,
    reservoirs and registry writes happen on the coordinator: the
    [`Domains] transport's workers apply edits and return their measured
    latencies, which the coordinator records after joining them. *)

open Pag_core
open Pag_eval
open Netsim

(** How a round's tenant batches map onto workers. [Round_robin] deals
    batches out cyclically in admission order; [Shortest_queue] gives each
    batch to the worker with the fewest edits assigned so far this round
    (tie: lowest id), which beats round-robin on skewed tenant mixes. *)
type policy = Round_robin | Shortest_queue

type config = {
  c_workers : int;  (** worker machines (netsim) or domains *)
  c_policy : policy;
  c_transport : [ `Sim | `Domains ];
  c_queue_cap : int;  (** per-tenant queue bound; 0 = unbounded *)
  c_mem_cap : int;  (** total live slots across tenants; 0 = uncapped *)
  c_idle_rounds : int;  (** evict after this many idle rounds; 0 = never *)
  c_hashcons : bool;  (** shared rule memo / intern arena across tenants *)
  c_dag : bool;
      (** every tenant session evaluates on the shared DAG
          ({!Pag_eval.Incr.start}'s [dag]): one rule-instance set per
          repeated-subtree class, classes split on divergence only, so
          resident sessions keep the sharing win across the edit stream *)
  c_frontier : float option;  (** {!Pag_eval.Incr.start}'s [frontier] *)
  c_faults : Faults.spec option;  (** [`Sim] only *)
  c_fault_rto : float;  (** retransmission timeout, simulated seconds *)
  c_net : Ethernet.params;
  c_obs : Pag_obs.Obs.ctx;
  c_provenance : bool;
      (** attach a bounded provenance ring ({!Pag_obs.Prov}) to every
          tenant's resident session; {!tenant_stats} then carries firing
          counts and the weighted critical path, and {!stats} publishes
          them as labeled [service.*] gauges *)
  c_batch : int;
      (** edits applied per merged wave ({!Pag_eval.Incr.edit_batch}):
          each scheduling step takes up to this many of a tenant's queued
          edits, merges their independent dirty cones, and refires them as
          one co-scheduled wave — on [`Sim] priced as a single dispatch
          (replacements plus 16 bytes of cone-merge metadata per edit),
          steal-shared refire rounds across the round's spare workers, and
          one result message; on [`Domains] the chunked waves run
          concurrently across the worker domains. [<= 1] applies edits one
          at a time (the PR-7 behavior). Wave/conflict/fallback counts
          surface as labeled [service.waves]/[service.conflicts]/
          [service.fallbacks] counters *)
}

(** [config workers] with every knob defaulted: round-robin, [`Sim]
    transport, unbounded queues, no memory cap, no idle eviction, no
    hash-consing, no faults, default Ethernet. *)
val config :
  ?policy:policy ->
  ?transport:[ `Sim | `Domains ] ->
  ?queue_cap:int ->
  ?mem_cap:int ->
  ?idle_rounds:int ->
  ?hashcons:bool ->
  ?dag:bool ->
  ?frontier:float ->
  ?faults:Faults.spec ->
  ?fault_rto:float ->
  ?net:Ethernet.params ->
  ?obs:Pag_obs.Obs.ctx ->
  ?provenance:bool ->
  ?batch:int ->
  int ->
  config

type t

(** All tenants compile the same grammar (per-service); the service is
    grammar-generic, [pagc --serve] instantiates it for Pascal. *)
val create : config -> Grammar.t -> t

(** [open_tenant t name tree] admits a tenant with resident program
    [tree], evaluating it from scratch (and evicting idle tenants if the
    memory cap demands). Raises [Invalid_argument] on duplicate names. *)
val open_tenant : t -> string -> Tree.t -> unit

(** Admission verdict for one edit. *)
type admission = Admitted | Rejected_queue_full

(** [submit t name next] enqueues an edit: the tenant's program is to
    become (structurally) [next]. The tree is consumed by the service (its
    nodes are renumbered on application) — submit a fresh parse, never a
    shared tree. Unknown tenants raise [Invalid_argument]. *)
val submit : t -> string -> Tree.t -> admission

(** Run one scheduling round: drain every non-empty tenant queue, batch
    per tenant, schedule the batches over the workers under the policy,
    apply every edit, then re-enforce the memory cap and evict idle
    sessions. No-op when all queues are empty. Raises [Failure] if every
    worker has crashed. *)
val run_round : t -> unit

(** Rounds until every queue is empty. *)
val drain : t -> unit

(** The tenant's current resident tree (kept across eviction). *)
val tenant_tree : t -> string -> Tree.t

(** The tenant's evaluated store, reviving the session if it was evicted.
    A revived session re-evaluates from scratch, so label-bearing
    attributes are equal only up to label renaming — compare masked. *)
val tenant_store : t -> string -> Store.t

val tenant_resident : t -> string -> bool

type tenant_stats = {
  ts_name : string;
  ts_resident : bool;
  ts_edits : int;  (** edits applied *)
  ts_rejected : int;  (** submissions refused by the full queue *)
  ts_evictions : int;
  ts_retransmits : int;  (** dispatch retransmissions charged here *)
  ts_queue_depth : int;  (** current *)
  ts_queue_hwm : int;  (** high-water mark *)
  ts_live_slots : int;  (** 0 when evicted *)
  ts_p50 : float;  (** median edit latency, seconds (virtual on [`Sim]) *)
  ts_p99 : float;
  ts_mean : float;
  ts_prov_firings : int;
      (** firings currently in the resident session's provenance ring
          (0 when provenance is off or the tenant is evicted) *)
  ts_critical : float;
      (** weighted critical path, seconds, of those firings *)
}

type stats = {
  st_rounds : int;
  st_tenants : int;
  st_edits : int;
  st_rejected : int;
  st_evictions : int;
  st_retransmits : int;
  st_gave_up : int;
      (** messages that exhausted the retransmit cap (64 tries) and were
          force-delivered; non-zero means the fault plan is pathological
          and latency/retransmit figures under-report it *)
  st_redispatches : int;  (** batches moved off a crashed worker *)
  st_workers_lost : int;
  st_live_slots : int;  (** resident footprint right now *)
  st_makespan : float;
      (** busy span, seconds — virtual on [`Sim], wall on [`Domains] *)
  st_edits_per_sec : float;  (** sustained: edits / makespan *)
  st_p50 : float;  (** across all tenants' edit latencies *)
  st_p99 : float;
  st_per_tenant : tenant_stats list;  (** admission order *)
}

val stats : t -> stats

(** Human-readable report (the [pagc --serve] summary). *)
val render : stats -> string

(** Nearest-rank percentile of a sample list, [q] in [0,1]; 0 on []. *)
val percentile : float list -> float -> float
