type kind = Active | Idle

type segment = { sg_pid : int; sg_t0 : float; sg_t1 : float; sg_kind : kind }

type arrow = {
  ar_src : int;
  ar_dst : int;
  ar_send : float;
  ar_recv : float;
  ar_label : string;
}

type mark = { mk_pid : int; mk_time : float; mk_label : string }

(* Append-only growable buffer. The previous representation accumulated
   reversed lists and paid an O(n) [List.rev] (and n cons cells) on every
   accessor call — and the accessors are called repeatedly per render. *)
type 'a buf = { mutable data : 'a array; mutable len : int }

let buf_make () = { data = [||]; len = 0 }

let buf_push b dummy v =
  (if b.len >= Array.length b.data then
     let cap = max 64 (2 * Array.length b.data) in
     let d = Array.make cap dummy in
     Array.blit b.data 0 d 0 b.len;
     b.data <- d);
  b.data.(b.len) <- v;
  b.len <- b.len + 1

let buf_iter b f =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

let buf_list b = List.init b.len (fun i -> b.data.(i))

type t = {
  segs : segment buf;
  arrs : arrow buf;
  mks : mark buf;
  mutable hor : float;
}

let dummy_segment = { sg_pid = 0; sg_t0 = 0.0; sg_t1 = 0.0; sg_kind = Idle }

let dummy_arrow =
  { ar_src = 0; ar_dst = 0; ar_send = 0.0; ar_recv = 0.0; ar_label = "" }

let dummy_mark = { mk_pid = 0; mk_time = 0.0; mk_label = "" }

let create () =
  { segs = buf_make (); arrs = buf_make (); mks = buf_make (); hor = 0.0 }

let add_segment t ~pid ~t0 ~t1 kind =
  if t1 > t0 then begin
    buf_push t.segs dummy_segment
      { sg_pid = pid; sg_t0 = t0; sg_t1 = t1; sg_kind = kind };
    if t1 > t.hor then t.hor <- t1
  end

let add_arrow t ~src ~dst ~send ~recv ~label =
  buf_push t.arrs dummy_arrow
    { ar_src = src; ar_dst = dst; ar_send = send; ar_recv = recv; ar_label = label };
  if recv > t.hor then t.hor <- recv

let add_mark t ~pid ~time ~label =
  buf_push t.mks dummy_mark { mk_pid = pid; mk_time = time; mk_label = label }

let num_segments t = t.segs.len

let num_arrows t = t.arrs.len

let num_marks t = t.mks.len

let iter_segments t f = buf_iter t.segs f

let iter_arrows t f = buf_iter t.arrs f

let iter_marks t f = buf_iter t.mks f

let segments t = buf_list t.segs

let arrows t = buf_list t.arrs

let marks t = buf_list t.mks

let horizon t = t.hor

let active_time t ~pid =
  let acc = ref 0.0 in
  iter_segments t (fun s ->
      if s.sg_pid = pid && s.sg_kind = Active then
        acc := !acc +. (s.sg_t1 -. s.sg_t0));
  !acc

let utilization t ~pid =
  let h = horizon t in
  if h <= 0.0 then 0.0 else active_time t ~pid /. h
