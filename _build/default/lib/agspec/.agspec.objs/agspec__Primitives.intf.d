lib/agspec/primitives.mli: Pag_core
