lib/agspec/compile.mli: Grammar Lrgen Pag_analysis Pag_core Pag_parallel Spec_ast Tree Value
