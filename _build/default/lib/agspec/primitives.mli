(** Standard library of semantic functions for specifications — the paper's
    "standard library of symbol table routines" ([st_create], [st_add],
    [st_lookup]) plus arithmetic, list, pair and code-string helpers. All
    are pure ("trusted not to produce any visible side effects").

    Available functions: [st_create/0], [st_add/3], [st_lookup/2], [add/2],
    [sub/2], [mul/2], [neg/1], [concat/2], [int_to_string/1], [code/1],
    [code_concat/2], [nil/0], [cons/2], [append/2], [pair/2],
    [fresh_label/0] (draws from the evaluator's {!Pag_core.Uid} base). *)

exception Unknown_function of string

exception Runtime_error of string

(** Resolve a function by name; the returned function checks its arity. *)
val lookup : string -> Pag_core.Value.t list -> Pag_core.Value.t

(** [register name arity fn] adds a custom primitive (e.g. for a client
    grammar's own attribute payloads). *)
val register : string -> int -> (Pag_core.Value.t array -> Pag_core.Value.t) -> unit

val names : unit -> string list
