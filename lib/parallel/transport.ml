type env = {
  e_id : int;
  e_delay : float -> unit;
  e_send : dst:int -> Message.t -> unit;
  e_recv : unit -> Message.t;
  e_recv_timeout : float -> Message.t option;
  e_time : unit -> float;
  e_mark : string -> unit;
  e_flush : unit -> unit;
}
