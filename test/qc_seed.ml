(* Shared QCheck harness with an explicit, reproducible seed.

   QCheck seeds its PRNG from the clock unless a generator state is passed
   in, so a failing property run could not be replayed. Every property
   suite routes through [qc], which (1) fixes the seed — overridable with
   the QCHECK_SEED environment variable, matching QCheck's own runner —
   and (2) embeds it in the test name, so any failure report names the
   seed that reproduces it. *)

let default_seed = 271828

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
                | Some n -> n
                | None -> default_seed)
  | None -> default_seed

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test

let qc ?count name gen prop =
  let name = Printf.sprintf "%s (seed %d)" name seed in
  to_alcotest (QCheck.Test.make ?count ~name gen prop)
