lib/pascal/pp.ml: Ast Buffer List Printf String
