(** LALR(1) table construction.

    LR(0) automaton, LALR lookaheads by spontaneous generation and
    propagation (the standard efficient construction), and action/goto
    tables with YACC-style conflict resolution: shift/reduce conflicts are
    decided by precedence and associativity when declared (higher precedence
    wins; equal precedence resolves left → reduce, right → shift, nonassoc
    → error) and default to shift otherwise; reduce/reduce conflicts keep
    the earlier production. Unresolved conflicts are reported in
    {!conflicts}. *)

type action =
  | Shift of int
  | Reduce of int  (** production index *)
  | Accept
  | Error

type tables

val build : Cfg.t -> tables

val state_count : tables -> int

(** [action t state terminal]; [Cfg.eof] is a valid terminal here. *)
val action : tables -> int -> string -> action

val goto : tables -> int -> string -> int option

(** Human-readable descriptions of conflicts that were resolved by default
    rules rather than by declared precedence. Empty for clean grammars. *)
val conflicts : tables -> string list

val grammar : tables -> Cfg.t

(** Items of a state, rendered for diagnostics. *)
val pp_state : tables -> Format.formatter -> int -> unit
