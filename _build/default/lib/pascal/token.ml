(* Tokens of the Pascal subset (paper, section 3: all control constructs
   except with/goto; value and reference parameters; no floats, sets,
   enumerations or file I/O; write/writeln treated as keywords). *)

type t =
  | IDENT of string
  | NUM of int
  | CHARLIT of char
  (* keywords *)
  | PROGRAM
  | CONST
  | VAR
  | PROCEDURE
  | FUNCTION
  | BEGIN
  | END
  | IF
  | THEN
  | ELSE
  | WHILE
  | DO
  | REPEAT
  | UNTIL
  | FOR
  | TO
  | DOWNTO
  | CASE
  | OF
  | ARRAY
  | RECORD
  | INTEGER
  | BOOLEAN
  | CHAR
  | TRUE
  | FALSE
  | DIV
  | MOD
  | AND
  | OR
  | NOT
  | WRITE
  | WRITELN
  | READ
  (* punctuation *)
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ASSIGN (* := *)
  | SEMI
  | COLON
  | COMMA
  | DOT
  | DOTDOT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM n -> Printf.sprintf "number %d" n
  | CHARLIT c -> Printf.sprintf "char %C" c
  | PROGRAM -> "program"
  | CONST -> "const"
  | VAR -> "var"
  | PROCEDURE -> "procedure"
  | FUNCTION -> "function"
  | BEGIN -> "begin"
  | END -> "end"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | WHILE -> "while"
  | DO -> "do"
  | REPEAT -> "repeat"
  | UNTIL -> "until"
  | FOR -> "for"
  | TO -> "to"
  | DOWNTO -> "downto"
  | CASE -> "case"
  | OF -> "of"
  | ARRAY -> "array"
  | RECORD -> "record"
  | INTEGER -> "integer"
  | BOOLEAN -> "boolean"
  | CHAR -> "char"
  | TRUE -> "true"
  | FALSE -> "false"
  | DIV -> "div"
  | MOD -> "mod"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | WRITE -> "write"
  | WRITELN -> "writeln"
  | READ -> "read"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ASSIGN -> ":="
  | SEMI -> ";"
  | COLON -> ":"
  | COMMA -> ","
  | DOT -> "."
  | DOTDOT -> ".."
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | EOF -> "end of file"
