(** Top-level drivers for parallel evaluation.

    {!run_sim} executes the full protocol — parser/coordinator, evaluators,
    optional string librarian — on the deterministic network-multiprocessor
    simulator and reports virtual running time, per-worker statistics and the
    activity trace (the data behind the paper's figures 5 and 6).

    {!run_domains} executes the same protocol on OCaml 5 domains with
    in-memory message queues and reports wall-clock time: the modern
    multicore counterpart of the paper's workstation network.

    With [machines = 1] the combined evaluator degenerates to the sequential
    static evaluator and the dynamic evaluator to the sequential dynamic
    evaluator, which is exactly how the paper's sequential baselines are
    defined. *)

open Pag_core
open Pag_analysis
open Netsim

type options = {
  machines : int;
  mode : Worker.mode;
  schedule : [ `Static | `Dynamic | `Steal ];
      (** [`Static] (default) and [`Dynamic] run the paper's protocol —
          fragment shipping plus per-fragment workers, with [mode]
          selecting combined static/dynamic or all-dynamic evaluation.
          [`Steal] runs the work-stealing instance scheduler instead:
          per-machine Chase-Lev deques over the unified engine's flat
          rule-instance table, seeded by Split owner affinity, with
          steal-half victim selection and exponential backoff. In steal
          mode [machines] counts evaluator machines directly (fragment [i]
          seeds machine [i mod machines]; extra machines start empty and
          steal), the librarian/priority options are ignored, and fault
          plans are priced against steal probes only. *)
  granularity : float;
  use_priority : bool;
  use_librarian : bool;
  use_hashcons : bool;
      (** hash-consed evaluation: subtree/rule memoization in the workers
          (driven by a {!Pag_core.Tree.sharing} pass over the whole tree),
          DAG-compressed [Subtree] shipping, and the cross-machine intern
          librarian ({!Intern}) deduplicating boundary payloads on the wire.
          Off by default; semantics are unchanged either way. *)
  use_dag : bool;
      (** first-class DAG evaluation ({!Pag_eval.Dag}): the tree's shared
          DAG becomes the evaluation substrate. On the [`Steal] simulator
          schedule the engine builds one rule-instance set per (subtree
          class × inherited fingerprint) — parked occurrences own no
          instances and receive their synthesized attributes by slot-range
          projection when the class leader's region completes — and
          [Subtree] assignments are priced as their real shared wire
          encoding ({!Split.dag_bytes}: each class body crosses once per
          machine). On the [`Static]/[`Dynamic] schedules the collapse
          unit is the same class table routed through the worker subtree
          memo (as [use_hashcons], minus wire interning). On the domains
          [`Steal] transport every region is materialized up front — the
          projection bookkeeping is single-threaded — so the run checks
          result parity, not a sharing win. Uid-consuming rules taint
          their classes and fall back to per-occurrence evaluation, so
          output is unchanged up to label renaming (exactly equal after
          masking, property-tested). Off by default. *)
  cost : Cost.t;
  net_params : Ethernet.params;
  phase_label : int -> string option;
      (** trace label for static visit numbers, e.g. 1 -> "symbol table" *)
  faults : Faults.spec option;
      (** [Some spec] injects the described faults and runs every machine
          behind the reliable-delivery layer ({!Reliable}) with coordinator
          crash recovery; [None] (default) runs the bare protocol exactly as
          before. An all-zero spec measures the reliable layer's overhead.
          On the domains transport, crash entries take effect from the start
          (the machine never runs) and delay/reorder jitter is approximated
          by send-order perturbation. *)
  fault_rto : float option;
      (** base retransmission timeout for the reliable layer. A machine
          acks nothing while it computes, so the give-up horizon
          rto * (2 + 4 + ... + 2^max_tries) must exceed the longest compute
          phase or live peers are presumed dead. [None] (recommended)
          auto-scales to the workload on the simulator — a machine's share
          of the tree's rules priced by the cost model, floored at the
          fixture-sized default — and picks the fixed real-time default on
          domains. *)
  fault_watchdog : float option;
      (** coordinator liveness-probe interval; [None] scales with the
          (possibly auto-scaled) [fault_rto]. *)
  telemetry : bool;
      (** record spans, events and metrics on every machine (see
          {!Pag_obs.Obs}); off by default — the instrumentation then costs
          one branch per site and allocates nothing. *)
  provenance : bool;
      (** record per-firing provenance (one {!Pag_obs.Prov} ring per
          machine/domain) for post-run {!Pag_eval.Causal} analysis —
          [--explain] slices and the [--profile] critical path. Simulated
          transports price firing durations from the cost model; domains
          read wall time. Off by default (firing paths keep their single
          disabled-ring branch). *)
}

val default_options : options

type result = {
  r_attrs : (string * Value.t) list;  (** root synthesized attributes *)
  r_time : float;  (** seconds: virtual (sim) or wall-clock (domains) *)
  r_worker_stats : Worker.stats array;
  r_trace : Trace.t option;  (** simulation only *)
  r_messages : int;
  r_bytes : int;
  r_fragments : int;
  r_split : Split.plan;
  r_dynamic_fraction : float;
      (** dynamically evaluated rules / all rules — the paper's "< 5%" *)
  r_retransmits : int;  (** reliable-layer retransmissions, all machines *)
  r_recovered : bool;
      (** the coordinator fell back to local sequential evaluation *)
  r_fault_stats : Faults.stats option;  (** injected-fault counters *)
  r_obs : Pag_obs.Obs.recorder option;
      (** merged event stream of all machines (simulation runs also fold
          the network trace in as flow/idle/instant events); [Some] only
          when [telemetry] was on *)
  r_report : Pag_obs.Obs.Report.t;
      (** always built; its [rp_metrics] registry is empty unless
          [telemetry] was on *)
  r_prov : (Pag_obs.Prov.t * Pag_eval.Engine.t) list;
      (** provenance sources for {!Pag_eval.Causal.build} — one (ring,
          engine) pair per machine that evaluated anything; empty unless
          [provenance] was on. Steal schedules share one engine across
          pairs. *)
  r_tree : Tree.t;
      (** the evaluated tree (numbered; node ids match provenance keys) *)
}

val run_sim : options -> Grammar.t -> Kastens.plan option -> Tree.t -> result

val run_domains :
  options -> Grammar.t -> Kastens.plan option -> Tree.t -> result

(** Names of the simulated machines (for Gantt rendering): "parser",
    "eval-a".."eval-f", "librarian". *)
val machine_name : fragments:int -> int -> string
