(** Unified telemetry: span/event recording, a metrics registry, and a
    per-run evaluation report.

    One structured layer replaces the scattered peepholes ([Worker.stats],
    [Reliable.stats], [Faults.stats], the netsim trace) with three faces:

    - a low-overhead {e recorder} of phase spans, discrete events and
      message-flow arrows, stored in growable struct-of-arrays buffers —
      recording into {!disabled} costs one branch and allocates nothing,
      so instrumentation can stay in the hot paths permanently;
    - a {e metrics registry} of named counters / gauges / histograms,
      incremented through preallocated handles;
    - a {e report} snapshot that reproduces the paper's headline numbers
      (per-machine utilization, fraction of dynamically evaluated
      attributes, librarian savings) for any run.

    Timestamps are whatever clock the caller supplies: simulated seconds on
    the network simulator, wall-clock seconds on OCaml domains. Exporters
    (Chrome trace-event JSON for Perfetto, raw JSONL) live in {!Export}. *)

(** {1 Event recorder} *)

type kind = Span | Instant | Flow

(** Materialized view of one recorded event ([Flow]: [e_pid] is the source
    machine, [e_dst] the destination, [e_t0] send time, [e_t1] receive
    time; [Span]: [e_t0 .. e_t1] on machine [e_pid]; [Instant]: [e_t0]). *)
type event = {
  e_kind : kind;
  e_pid : int;
  e_dst : int;  (** -1 except for flows *)
  e_t0 : float;
  e_t1 : float;
  e_name : string;
}

type recorder

(** The no-op sink: every recording call returns immediately without
    allocating. *)
val disabled : recorder

val create : unit -> recorder

val enabled : recorder -> bool

val length : recorder -> int

val span : recorder -> pid:int -> t0:float -> t1:float -> string -> unit

val instant : recorder -> pid:int -> t:float -> string -> unit

val flow :
  recorder -> src:int -> dst:int -> send:float -> recv:float -> string -> unit

(** In recording order. *)
val iter : recorder -> (event -> unit) -> unit

(** All events of [rs] merged into one recorder, sorted by start time. *)
val merge : recorder list -> recorder

(** {1 Metrics registry} *)

module Metrics : sig
  type t

  (** Handle to a named counter; incrementing through a handle is one
      branch and one integer store, no hashing. *)
  type counter

  type histogram

  val create : unit -> t

  (** Disabled registry: handles obtained from it are dead, updates are
      dropped, snapshots are empty. *)
  val null : t

  val live : t -> bool

  (** [labeled name labels] renders a metric name with Prometheus-style
      labels: [labeled "service.edits" [ ("tenant", "alice") ]] is
      ["service.edits{tenant=alice}"]. The registry keys metrics by plain
      string, so labeled series are simply distinct names — this fixes the
      convention (sorted output groups a family's series together). With
      no labels it is [name] itself. *)
  val labeled : string -> (string * string) list -> string

  val counter : t -> string -> counter

  val add : counter -> int -> unit

  val incr : counter -> unit

  val value : counter -> int

  (** 0 when absent. *)
  val counter_value : t -> string -> int

  (** Gauges are set (or accumulated with [add_gauge]) by name; they are
      written once per run, not on hot paths. *)
  val set_gauge : t -> string -> float -> unit

  val add_gauge : t -> string -> float -> unit

  (** Keep the maximum of the values seen — high-water-mark gauges
      (e.g. work-stealing deque depth). *)
  val set_gauge_max : t -> string -> float -> unit

  val gauge_value : t -> string -> float option

  val histogram : t -> string -> histogram

  (** Records count / sum / min / max and a power-of-two bucket. *)
  val observe : histogram -> float -> unit

  (** Sums counters and gauges, merges histogram buckets of [src] into
      [into]. *)
  val merge : into:t -> t -> unit

  (** [name, rendered value] rows, sorted by name. Histograms render as
      [count/sum/min/max]. *)
  val rows : t -> (string * string) list
end

(** {1 Instrumentation context}

    Bundles the recorder, the registry, the machine id and the clock, so
    instrumented code takes a single value. *)

type ctx = {
  x_rec : recorder;
  x_metrics : Metrics.t;
  x_pid : int;
  x_clock : unit -> float;
}

(** Disabled recorder + null registry; safe to share. *)
val null_ctx : ctx

val make_ctx : pid:int -> clock:(unit -> float) -> ctx

val ctx_enabled : ctx -> bool

(** [with_span ctx name f] runs [f] inside a span when enabled, or calls it
    directly when not. *)
val with_span : ctx -> string -> (unit -> 'a) -> 'a

(** Discrete event at the context's current time; a no-op when disabled
    (the clock is not read). *)
val event : ctx -> string -> unit

(** {1 JSON fragments} *)

module Json : sig
  (** Escape for inclusion inside a JSON string literal (no quotes added). *)
  val escape : string -> string

  (** Render a float as a JSON number ([nan]/[inf] become [0]). *)
  val num : float -> string
end

(** {1 Per-run report} *)

module Report : sig
  type machine = {
    rm_pid : int;
    rm_name : string;
    rm_active : float;  (** seconds busy *)
    rm_idle : float;  (** seconds waiting for messages *)
    rm_util : float;  (** active / horizon, 0..1 *)
    rm_sends : int;  (** boundary messages originated *)
    rm_max_queue : int;  (** peak mailbox depth; -1 = unknown *)
  }

  type t = {
    rp_label : string;  (** e.g. "combined, 5 machines (sim)" *)
    rp_clock : string;  (** "simulated" or "wall clock" *)
    rp_horizon : float;  (** end-of-run time *)
    rp_machines : machine list;
    rp_dynamic_rules : int;
    rp_static_rules : int;
    rp_messages : int;
    rp_bytes : int;
    rp_retransmits : int;
    rp_metrics : Metrics.t;  (** everything else, by name *)
  }

  (** dynamic / (dynamic + static); 0 when no rules ran. *)
  val dynamic_fraction : t -> float

  (** The end-of-run table ([pagc --report]). *)
  val render : t -> string
end
