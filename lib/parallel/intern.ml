open Pag_core
open Pag_util
open Pag_obs

type stats = {
  mutable is_binds : int;
  mutable is_refs : int;
  mutable is_needs : int;
  mutable is_backfills : int;
  mutable is_saved_bytes : int;
}

(* Payloads are keyed by their hash-consed representative, so the per-peer
   "already sent" table can be identity-keyed: equal payloads intern to the
   same canonical value. Code fragments reuse the value arena by travelling
   as [Value.Str]. *)
type sender = { sn_sent : (Value.t, int) Phys_tbl.t }

type t = {
  base : Transport.env;
  threshold : int;
  senders : (int, sender) Hashtbl.t;  (* dst -> per-peer intern table *)
  mutable next_iid : int;
  by_iid : (int, Value.t) Hashtbl.t;  (* our bindings, for Backfill *)
  seen : (int * int, Value.t) Hashtbl.t;  (* (src, iid) -> bound payload *)
  pending : (int * int, Message.t list ref) Hashtbl.t;
      (* references that arrived before their binding *)
  ready : Message.t Queue.t;
  st : stats;
  c_binds : Obs.Metrics.counter;
  c_refs : Obs.Metrics.counter;
  c_needs : Obs.Metrics.counter;
  c_backfills : Obs.Metrics.counter;
  c_saved : Obs.Metrics.counter;
}

let wrap ?(obs = Obs.null_ctx) ?(threshold = 32) base =
  let reg = obs.Obs.x_metrics in
  {
    base;
    threshold;
    senders = Hashtbl.create 8;
    next_iid = 0;
    by_iid = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    pending = Hashtbl.create 8;
    ready = Queue.create ();
    st =
      {
        is_binds = 0;
        is_refs = 0;
        is_needs = 0;
        is_backfills = 0;
        is_saved_bytes = 0;
      };
    c_binds = Obs.Metrics.counter reg "intern.binds";
    c_refs = Obs.Metrics.counter reg "intern.refs";
    c_needs = Obs.Metrics.counter reg "intern.needs";
    c_backfills = Obs.Metrics.counter reg "intern.backfills";
    c_saved = Obs.Metrics.counter reg "intern.saved_bytes";
  }

let stats t = t.st

let sender_for t dst =
  match Hashtbl.find_opt t.senders dst with
  | Some s -> s
  | None ->
      let s = { sn_sent = Phys_tbl.create 64 } in
      Hashtbl.add t.senders dst s;
      s

(* Intern [v] towards [dst]: [Ok iid] if the peer already holds it (send a
   reference), [Error iid] if this transmission must bind it. *)
let lookup t ~dst v =
  let s = sender_for t dst in
  match Phys_tbl.find_opt s.sn_sent v with
  | Some iid -> Ok iid
  | None ->
      let iid = t.next_iid in
      t.next_iid <- iid + 1;
      Phys_tbl.replace s.sn_sent v iid;
      Hashtbl.replace t.by_iid iid v;
      Error iid

let saved t ~plain ~wire =
  let d = Message.size plain - Message.size wire in
  t.st.is_saved_bytes <- t.st.is_saved_bytes + d;
  Obs.Metrics.add t.c_saved d

let send t ~dst m =
  let wire =
    match m with
    | Message.Attr { node; attr; value }
      when Value.byte_size value >= t.threshold -> (
        let v = Value.intern value in
        match lookup t ~dst v with
        | Ok iid ->
            t.st.is_refs <- t.st.is_refs + 1;
            Obs.Metrics.incr t.c_refs;
            let wire =
              Message.Attr_ref
                {
                  src = t.base.Transport.e_id;
                  node;
                  attr;
                  iid;
                  hash = Value.hash v;
                }
            in
            saved t ~plain:m ~wire;
            wire
        | Error iid ->
            t.st.is_binds <- t.st.is_binds + 1;
            Obs.Metrics.incr t.c_binds;
            Message.Attr_bind
              { src = t.base.Transport.e_id; node; attr; iid; value = v })
    | Message.Code_frag { id; text } when Rope.length text >= t.threshold -> (
        let v = Value.intern (Value.Str text) in
        match lookup t ~dst v with
        | Ok iid ->
            t.st.is_refs <- t.st.is_refs + 1;
            Obs.Metrics.incr t.c_refs;
            let wire =
              Message.Code_frag_ref
                { src = t.base.Transport.e_id; id; iid; hash = Value.hash v }
            in
            saved t ~plain:m ~wire;
            wire
        | Error iid ->
            t.st.is_binds <- t.st.is_binds + 1;
            Obs.Metrics.incr t.c_binds;
            let text =
              match v with Value.Str r -> r | _ -> assert false
            in
            Message.Code_frag_bind
              { src = t.base.Transport.e_id; id; iid; text })
    | m -> m
  in
  t.base.Transport.e_send ~dst wire

(* A reference is decoded back to the plain message it stood for. *)
let decode m v =
  match m with
  | Message.Attr_ref { node; attr; _ } ->
      Message.Attr { node; attr; value = v }
  | Message.Code_frag_ref { id; _ } ->
      let text = match v with Value.Str r -> r | _ -> assert false in
      Message.Code_frag { id; text }
  | _ -> assert false

(* Bind (src, iid) -> v and release any references stashed on it. *)
let resolve t ~src ~iid v =
  Hashtbl.replace t.seen (src, iid) v;
  match Hashtbl.find_opt t.pending (src, iid) with
  | None -> ()
  | Some stash ->
      Hashtbl.remove t.pending (src, iid);
      List.iter (fun m -> Queue.add (decode m v) t.ready) (List.rev !stash)

(* Stash a reference whose binding has not arrived and ask for a backfill.
   On ordered transports this never fires; under fault injection the
   reliable layer may deliver the binding late or (re)deliver references
   first, and the explicit Need/Backfill round-trip fills the gap. *)
let miss t ~src ~iid m =
  (match Hashtbl.find_opt t.pending (src, iid) with
  | Some stash -> stash := m :: !stash
  | None -> Hashtbl.add t.pending (src, iid) (ref [ m ]));
  t.st.is_needs <- t.st.is_needs + 1;
  Obs.Metrics.incr t.c_needs;
  t.base.Transport.e_send ~dst:src
    (Message.Need_intern { src = t.base.Transport.e_id; iid })

(* Translate one message off the base transport; enqueue whatever plain
   messages it yields. Intern traffic never escapes the wrapper. *)
let handle t m =
  match m with
  | Message.Attr_bind { src; node; attr; iid; value } ->
      resolve t ~src ~iid value;
      Queue.add (Message.Attr { node; attr; value }) t.ready
  | Message.Code_frag_bind { src; id; iid; text } ->
      resolve t ~src ~iid (Value.Str text);
      Queue.add (Message.Code_frag { id; text }) t.ready
  | Message.(Attr_ref { src; iid; hash; _ } as r)
  | Message.(Code_frag_ref { src; iid; hash; _ } as r) -> (
      match Hashtbl.find_opt t.seen (src, iid) with
      | Some v when Value.hash v = hash -> Queue.add (decode r v) t.ready
      | Some _ | None -> miss t ~src ~iid r)
  | Message.Need_intern { src; iid } -> (
      match Hashtbl.find_opt t.by_iid iid with
      | Some v ->
          t.st.is_backfills <- t.st.is_backfills + 1;
          Obs.Metrics.incr t.c_backfills;
          t.base.Transport.e_send ~dst:src
            (Message.Backfill { src = t.base.Transport.e_id; iid; value = v })
      | None -> () (* unknown id: stale need from a restarted peer *))
  | Message.Backfill { src; iid; value } -> resolve t ~src ~iid value
  | m -> Queue.add m t.ready

let rec recv t =
  match Queue.take_opt t.ready with
  | Some m -> m
  | None ->
      handle t (t.base.Transport.e_recv ());
      recv t

let recv_timeout t d =
  let deadline = t.base.Transport.e_time () +. d in
  let rec go () =
    match Queue.take_opt t.ready with
    | Some m -> Some m
    | None ->
        let left = deadline -. t.base.Transport.e_time () in
        if left <= 0.0 then None
        else
          match t.base.Transport.e_recv_timeout left with
          | Some m ->
              handle t m;
              go ()
          | None -> None
  in
  go ()

let env t =
  {
    t.base with
    Transport.e_send = (fun ~dst m -> send t ~dst m);
    e_recv = (fun () -> recv t);
    e_recv_timeout = (fun d -> recv_timeout t d);
  }
