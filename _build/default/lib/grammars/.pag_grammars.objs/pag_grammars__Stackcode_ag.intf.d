lib/grammars/stackcode_ag.mli: Grammar Pag_core Random Tree
