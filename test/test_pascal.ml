open Pascal

let qc ?(count = 40) name gen prop = Qc_seed.qc ~count name gen prop

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- lexer ---------------- *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "begin x := 42 end.") in
  check_bool "tokens" true
    (toks
    = [ Token.BEGIN; Token.IDENT "x"; Token.ASSIGN; Token.NUM 42; Token.END;
        Token.DOT; Token.EOF ])

let test_lexer_case_insensitive () =
  let toks = List.map fst (Lexer.tokenize "BeGiN WhIlE") in
  check_bool "keywords any case" true
    (toks = [ Token.BEGIN; Token.WHILE; Token.EOF ])

let test_lexer_comments () =
  let toks = List.map fst (Lexer.tokenize "x { comment } y (* more *) z") in
  check_bool "comments skipped" true
    (toks = [ Token.IDENT "x"; Token.IDENT "y"; Token.IDENT "z"; Token.EOF ])

let test_lexer_char_literals () =
  let toks = List.map fst (Lexer.tokenize "'a' ''''") in
  check_bool "chars" true (toks = [ Token.CHARLIT 'a'; Token.CHARLIT '\''; Token.EOF ])

let test_lexer_operators () =
  let toks = List.map fst (Lexer.tokenize ":= <= >= <> .. < >") in
  check_bool "operators" true
    (toks
    = [ Token.ASSIGN; Token.LE; Token.GE; Token.NE; Token.DOTDOT; Token.LT;
        Token.GT; Token.EOF ])

let test_lexer_error () =
  match Lexer.tokenize "x ? y" with
  | exception Lexer.Lex_error (1, _) -> ()
  | _ -> Alcotest.fail "expected lex error"

(* ---------------- parser ---------------- *)

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.EBin (Ast.Add, Ast.EInt 1, Ast.EBin (Ast.Mul, Ast.EInt 2, Ast.EInt 3)) -> ()
  | _ -> Alcotest.fail "1 + 2 * 3 should parse as 1 + (2 * 3)"

let test_parse_relational () =
  match Parser.parse_expr "1 + 2 < 3 * 4" with
  | Ast.EBin (Ast.Lt, Ast.EBin (Ast.Add, _, _), Ast.EBin (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "relational should bind loosest"

let test_parse_program_shape () =
  let src =
    {|
program t;
const k = 3;
var x : integer;
    a : array [1..5] of integer;
procedure p(v : integer; var w : integer);
begin
  w := v + k
end;
begin
  p(1, x);
  a[1] := x
end.
|}
  in
  let p = Parser.parse_program src in
  check_str "name" "t" p.Ast.prog_name;
  check_int "decls" 4 (List.length p.Ast.prog_block.Ast.b_decls);
  check_int "stmts" 2 (List.length p.Ast.prog_block.Ast.b_body)

let test_parse_error_reports_line () =
  match Parser.parse_program "program t;\nbegin\n  x := ;\nend." with
  | exception Parser.Parse_error (3, _) -> ()
  | exception Parser.Parse_error (l, m) ->
      Alcotest.failf "wrong line %d: %s" l m
  | _ -> Alcotest.fail "expected parse error"

let test_pp_roundtrip_manual () =
  let src =
    {|
program t;
var x : integer; b : boolean;
function f(n : integer) : integer;
begin
  if n > 1 then begin f := n * 2 end else begin f := 1 end
end;
begin
  x := f(5);
  b := x >= 10;
  case x mod 2 of
    0: begin writeln(0) end;
    1: begin writeln(1) end
  end;
  repeat
    x := x - 1
  until x <= 0;
  for x := 1 to 3 do begin write(x) end;
  writeln
end.
|}
  in
  let p1 = Parser.parse_program src in
  let p2 = Parser.parse_program (Pp.program_to_string p1) in
  check_bool "round trip" true (p1 = p2)

(* ---------------- interpreter ---------------- *)

let run_interp ?input src =
  match Interp.run ?input (Parser.parse_program src) with
  | Ok out -> out
  | Error e -> Alcotest.failf "interp error: %s" (Interp.error_to_string e)

let test_interp_basics () =
  check_str "arith"
    "13\n"
    (run_interp "program t; var x : integer; begin x := 3 + 2 * 5; writeln(x) end.")

let test_interp_control () =
  let src =
    {|
program t;
var i, s : integer;
begin
  s := 0;
  for i := 1 to 10 do begin s := s + i end;
  while s > 40 do begin s := s - 7 end;
  writeln(s)
end.
|}
  in
  check_str "loops" "34\n" (run_interp src)

let test_interp_recursion () =
  let src =
    {|
program t;
function fact(n : integer) : integer;
begin
  if n <= 1 then begin fact := 1 end else begin fact := n * fact(n - 1) end
end;
begin
  writeln(fact(6))
end.
|}
  in
  check_str "6!" "720\n" (run_interp src)

let test_interp_var_params () =
  let src =
    {|
program t;
var a, b : integer;
procedure swap(var x : integer; var y : integer);
var t : integer;
begin
  t := x; x := y; y := t
end;
begin
  a := 1; b := 2;
  swap(a, b);
  write(a); write(' '); writeln(b)
end.
|}
  in
  check_str "swap" "2 1\n" (run_interp src)

let test_interp_nesting_static_scope () =
  (* inner reads outer's local through the static chain *)
  let src =
    {|
program t;
var g : integer;
procedure outer;
var x : integer;
  procedure inner;
  begin
    x := x + 10;
    g := g + x
  end;
begin
  x := 5;
  inner;
  inner
end;
begin
  g := 0;
  outer;
  writeln(g)
end.
|}
  in
  check_str "static scope" "40\n" (run_interp src)

let test_interp_arrays_records () =
  let src =
    {|
program t;
var a : array [1..5] of integer;
    r : record fx : integer; fy : integer end;
    i : integer;
begin
  for i := 1 to 5 do begin a[i] := i * i end;
  r.fx := a[3];
  r.fy := a[5];
  writeln(r.fx + r.fy)
end.
|}
  in
  check_str "34" "34\n" (run_interp src)

let test_interp_read () =
  check_str "read input" "30\n"
    (run_interp ~input:[ 10; 20 ]
       {|
program t;
var x, y : integer;
begin
  read(x); read(y); writeln(x + y)
end.
|})

let test_interp_unbound () =
  match Interp.run (Parser.parse_program "program t; begin x := 1 end.") with
  | Error (Interp.Unbound "x") -> ()
  | _ -> Alcotest.fail "expected unbound"

let test_interp_fuel () =
  let src = "program t; var x : integer; begin x := 1; while true do begin x := x end end." in
  match Interp.run ~fuel:1000 (Parser.parse_program src) with
  | Error Interp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- compiler ---------------- *)

let compile_and_run ?input src =
  let c = Driver.compile_source src in
  (match c.Driver.c_errors with
  | [] -> ()
  | errs -> Alcotest.failf "compile errors: %s" (String.concat "; " errs));
  match Driver.run_compiled ?input c with
  | Ok out -> out
  | Error e -> Alcotest.failf "runtime error: %s\n%s" e c.Driver.c_asm

let differential ?input src =
  let expected = run_interp ?input src in
  let actual = compile_and_run ?input src in
  check_str "compiled output = interpreted output" expected actual

let test_compile_hello () = differential "program t; begin writeln(42) end."

let test_compile_arith () =
  differential
    "program t; var x : integer; begin x := (100 - 3 * 4) div 8; writeln(x mod 5) end."

let test_compile_control () =
  differential
    {|
program t;
var i, s : integer;
begin
  s := 0;
  for i := 1 to 10 do begin if i mod 2 = 0 then begin s := s + i end end;
  writeln(s);
  i := 5;
  repeat
    s := s - i; i := i - 1
  until i = 0;
  writeln(s);
  case s mod 3 of
    0: begin writeln(100) end;
    1, 2: begin writeln(200) end
    else begin writeln(300) end
  end
end.
|}

let test_compile_downto () =
  differential
    {|
program t;
var i : integer;
begin
  for i := 5 downto 1 do begin write(i) end;
  writeln
end.
|}

let test_compile_procs () =
  differential
    {|
program t;
var a, b : integer;
function gcd(x : integer; y : integer) : integer;
begin
  if y = 0 then begin gcd := x end
  else begin gcd := gcd(y, x mod y) end
end;
procedure swap(var x : integer; var y : integer);
var t : integer;
begin
  t := x; x := y; y := t
end;
begin
  a := 48; b := 36;
  swap(a, b);
  writeln(gcd(a, b))
end.
|}

let test_compile_nesting () =
  differential
    {|
program t;
var g : integer;
procedure outer(base : integer);
var x : integer;
  function inner(k : integer) : integer;
  begin
    inner := x * k + base
  end;
begin
  x := 3;
  g := inner(4)
end;
begin
  outer(100);
  writeln(g)
end.
|}

let test_compile_deep_nesting () =
  differential
    {|
program t;
var g : integer;
procedure l2;
var a : integer;
  procedure l3;
  var b : integer;
    procedure l4;
    begin
      b := b + a + g;
      g := g + b
    end;
  begin
    b := 1;
    l4;
    l4
  end;
begin
  a := 10;
  l3
end;
begin
  g := 100;
  l2;
  writeln(g)
end.
|}

let test_compile_arrays_records () =
  differential
    {|
program t;
var a : array [1..8] of integer;
    r : record fx : integer; fy : integer end;
    i : integer;
begin
  for i := 1 to 8 do begin a[i] := i * 3 end;
  r.fx := 0;
  for i := 1 to 8 do begin r.fx := r.fx + a[i] end;
  r.fy := a[2] * a[7];
  writeln(r.fx);
  writeln(r.fy)
end.
|}

let test_compile_bool_char () =
  differential
    {|
program t;
var b : boolean; c : char;
begin
  b := (3 < 5) and not (2 > 7);
  c := 'z';
  write(b); write(c); writeln;
  b := false or (1 = 2);
  writeln(b)
end.
|}

let test_compile_read () =
  differential ~input:[ 7; 9 ]
    {|
program t;
var x, y : integer;
begin
  read(x); read(y);
  writeln(x * y)
end.
|}

let test_compile_const () =
  differential
    "program t; const k = 12; var x : integer; begin x := k * 2; writeln(x + k) end."

let test_semantic_errors () =
  let errs src = (Driver.compile_source src).Driver.c_errors in
  check_bool "unbound var" true (errs "program t; begin x := 1 end." <> []);
  check_bool "type mismatch" true
    (errs "program t; var b : boolean; begin b := 3 end." <> []);
  check_bool "bad condition" true
    (errs "program t; begin if 3 then begin writeln(1) end end." <> []);
  check_bool "arity" true
    (errs
       "program t; procedure p(x : integer); begin writeln(x) end; begin p(1, 2) end."
    <> []);
  check_bool "unknown proc" true (errs "program t; begin nope(1) end." <> []);
  check_bool "duplicate decl" true
    (errs "program t; var x : integer; var x : integer; begin x := 1 end." <> []);
  check_bool "assign to const" true
    (errs "program t; const k = 1; begin k := 2 end." <> []);
  check_bool "var arg not variable" true
    (errs
       "program t; var x : integer; procedure p(var y : integer); begin y := 1 end; begin p(x + 1) end."
    <> [])

let test_all_evaluators_compile_identically () =
  let src =
    {|
program t;
var x : integer;
function sq(n : integer) : integer;
begin
  sq := n * n
end;
begin
  x := sq(7);
  while x > 10 do begin x := x - 10 end;
  writeln(x)
end.
|}
  in
  let p = Parser.parse_program src in
  let mask = Pag_grammars.Stackcode_ag.mask_labels in
  let st = (Driver.compile ~evaluator:`Static p).Driver.c_asm in
  let dy = (Driver.compile ~evaluator:`Dynamic p).Driver.c_asm in
  let orc = (Driver.compile ~evaluator:`Oracle p).Driver.c_asm in
  check_str "static = dynamic" (mask st) (mask dy);
  check_str "static = oracle" (mask st) (mask orc)

(* ---------------- peephole ---------------- *)

let test_peephole_preserves_behaviour () =
  let src =
    {|
program t;
var i, s : integer;
begin
  s := 0;
  for i := 1 to 6 do begin s := s + i * i end;
  writeln(s)
end.
|}
  in
  let c = Driver.compile_source src in
  let o = Driver.optimize c in
  let before = Peephole.instr_count (Vax.Asm_parser.parse c.Driver.c_asm) in
  let after = Peephole.instr_count (Vax.Asm_parser.parse o.Driver.c_asm) in
  check_bool
    (Printf.sprintf "fewer instructions (%d -> %d)" before after)
    true (after < before);
  let out_plain = Driver.run_compiled c and out_opt = Driver.run_compiled o in
  check_bool "same output" true (out_plain = out_opt)

(* ---------------- differential property ---------------- *)

let arb_program =
  QCheck.make
    ~print:(fun (seed, _) ->
      let p, _ = Progen.gen (Random.State.make [| seed |]) Progen.small in
      Pp.program_to_string p)
    QCheck.Gen.(
      pair (int_bound 1_000_000) (return ()))

let prop_differential =
  qc "compiled programs behave like the interpreter" arb_program
    (fun (seed, ()) ->
      let p, reads = Progen.gen (Random.State.make [| seed |]) Progen.small in
      let input = List.init reads (fun i -> (i * 37 mod 100) - 50) in
      let expected = Interp.run ~input p in
      let c = Driver.compile p in
      if c.Driver.c_errors <> [] then
        QCheck.Test.fail_reportf "generated program has errors: %s\n%s"
          (String.concat "; " c.Driver.c_errors)
          (Pp.program_to_string p);
      let actual = Driver.run_compiled ~input c in
      match (expected, actual) with
      | Ok a, Ok b -> a = b
      | Error _, _ | _, Error _ ->
          QCheck.Test.fail_reportf "execution failed on\n%s" (Pp.program_to_string p))

let prop_differential_optimized =
  qc ~count:20 "peephole keeps behaviour on generated programs" arb_program
    (fun (seed, ()) ->
      let p, reads = Progen.gen (Random.State.make [| seed |]) Progen.small in
      let input = List.init reads (fun i -> i * 13 mod 50) in
      let c = Driver.compile p in
      c.Driver.c_errors = []
      && Driver.run_compiled ~input c = Driver.run_compiled ~input (Driver.optimize c))

let prop_pp_roundtrip =
  qc ~count:40 "pretty-printed programs re-parse to the same AST" arb_program
    (fun (seed, ()) ->
      let p, _ = Progen.gen (Random.State.make [| seed |]) Progen.small in
      Parser.parse_program (Pp.program_to_string p) = p)

let suite =
  [
    ( "pascal-front",
      [
        Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
        Alcotest.test_case "lexer case" `Quick test_lexer_case_insensitive;
        Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
        Alcotest.test_case "lexer chars" `Quick test_lexer_char_literals;
        Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
        Alcotest.test_case "lexer error" `Quick test_lexer_error;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "relational" `Quick test_parse_relational;
        Alcotest.test_case "program shape" `Quick test_parse_program_shape;
        Alcotest.test_case "parse error line" `Quick test_parse_error_reports_line;
        Alcotest.test_case "pp round trip" `Quick test_pp_roundtrip_manual;
      ] );
    ( "pascal-interp",
      [
        Alcotest.test_case "basics" `Quick test_interp_basics;
        Alcotest.test_case "control" `Quick test_interp_control;
        Alcotest.test_case "recursion" `Quick test_interp_recursion;
        Alcotest.test_case "var params" `Quick test_interp_var_params;
        Alcotest.test_case "static scope" `Quick test_interp_nesting_static_scope;
        Alcotest.test_case "arrays/records" `Quick test_interp_arrays_records;
        Alcotest.test_case "read" `Quick test_interp_read;
        Alcotest.test_case "unbound" `Quick test_interp_unbound;
        Alcotest.test_case "fuel" `Quick test_interp_fuel;
      ] );
    ( "pascal-compile",
      [
        Alcotest.test_case "hello" `Quick test_compile_hello;
        Alcotest.test_case "arith" `Quick test_compile_arith;
        Alcotest.test_case "control" `Quick test_compile_control;
        Alcotest.test_case "downto" `Quick test_compile_downto;
        Alcotest.test_case "procs" `Quick test_compile_procs;
        Alcotest.test_case "nesting" `Quick test_compile_nesting;
        Alcotest.test_case "deep nesting" `Quick test_compile_deep_nesting;
        Alcotest.test_case "arrays/records" `Quick test_compile_arrays_records;
        Alcotest.test_case "bool/char" `Quick test_compile_bool_char;
        Alcotest.test_case "read" `Quick test_compile_read;
        Alcotest.test_case "const" `Quick test_compile_const;
        Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
        Alcotest.test_case "evaluator agreement" `Quick
          test_all_evaluators_compile_identically;
        Alcotest.test_case "peephole" `Quick test_peephole_preserves_behaviour;
        prop_differential;
        prop_differential_optimized;
        prop_pp_roundtrip;
      ] );
  ]
