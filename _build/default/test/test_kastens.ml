open Pag_core
open Pag_analysis
open Pag_grammars

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plan_of g =
  match Kastens.analyze g with
  | Ok p -> p
  | Error f -> Alcotest.failf "analysis failed: %a" Kastens.pp_failure f

let test_expr_is_ordered () =
  let p = plan_of Expr_ag.grammar in
  (* expr: stab flows down, value flows up — one visit. *)
  check_int "expr visits" 1 (Kastens.visit_count p "expr");
  let inh_attrs, syn_attrs = Kastens.visit_attrs p ~sym:"expr" ~visit:1 in
  check_bool "stab consumed in visit 1" true (List.mem "stab" inh_attrs);
  check_bool "value produced in visit 1" true (List.mem "value" syn_attrs)

let test_binary_is_ordered () =
  let p = plan_of Binary_ag.grammar in
  check_int "bits visits" 1 (Kastens.visit_count p "bits")

let test_repmin_needs_two_visits () =
  let p = plan_of Repmin_ag.grammar in
  check_int "tree visits" 2 (Kastens.visit_count p "tree");
  check_int "min in visit 1" 1 (Kastens.visit_of_attr p ~sym:"tree" ~attr:"min");
  check_int "gmin in visit 2" 2 (Kastens.visit_of_attr p ~sym:"tree" ~attr:"gmin");
  check_int "res in visit 2" 2 (Kastens.visit_of_attr p ~sym:"tree" ~attr:"res")

let test_visit_seq_complete () =
  (* Every rule of every production appears exactly once across segments;
     every nonterminal child is visited exactly its visit-count times. *)
  List.iter
    (fun g ->
      let plan = plan_of g in
      Array.iter
        (fun (pr : Grammar.production) ->
          let m = Kastens.visit_count plan pr.Grammar.p_lhs in
          let evals = Array.make (Array.length pr.Grammar.p_rules) 0 in
          let visits =
            Array.map
              (fun s ->
                let sym = Grammar.symbol g s in
                if sym.Grammar.s_term then 0
                else Kastens.visit_count plan s)
              pr.Grammar.p_rhs
          in
          let seen_visits = Array.make (Array.length pr.Grammar.p_rhs) 0 in
          for v = 1 to m do
            List.iter
              (function
                | Kastens.Eval r -> evals.(r) <- evals.(r) + 1
                | Kastens.Visit { child; visit } ->
                    check_int
                      (Printf.sprintf "%s: child %d visits in order"
                         pr.Grammar.p_name child)
                      (seen_visits.(child) + 1)
                      visit;
                    seen_visits.(child) <- visit)
              (Kastens.visit_seq plan ~prod:pr.Grammar.p_id ~visit:v)
          done;
          Array.iteri
            (fun r n ->
              check_int
                (Printf.sprintf "%s: rule %d fired once" pr.Grammar.p_name r)
                1 n)
            evals;
          Array.iteri
            (fun i n ->
              check_int
                (Printf.sprintf "%s: child %d fully visited" pr.Grammar.p_name i)
                visits.(i) n)
            seen_visits)
        (Grammar.productions g))
    [ Expr_ag.grammar; Binary_ag.grammar; Repmin_ag.grammar ]

(* A circular grammar: x.s -> x.i -> x.s through the production rules. *)
let circular_grammar () =
  let open Grammar in
  make ~name:"circ" ~start:"r"
    [
      terminal "T" [];
      nonterminal "r" [ syn "out" ];
      nonterminal "x" [ syn "s"; inh "i" ];
    ]
    [
      production ~name:"root" ~lhs:"r" ~rhs:[ "x" ]
        [
          rule (lhs "out") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
          rule (rhs 1 "i") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
        ];
      production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
        [ rule (lhs "s") ~deps:[ lhs "i" ] (fun a -> a.(0)) ];
    ]

let test_circular_rejected () =
  match Kastens.analyze (circular_grammar ()) with
  | Error (Kastens.Circular _) -> ()
  | Error (Kastens.Not_ordered m) -> Alcotest.failf "wrong failure: %s" m
  | Ok _ -> Alcotest.fail "circular grammar accepted"

(* Non-circular overall but attribute-order alternation across two children:
   still ordered; checks the partitioning handles multiple syn/inh layers. *)
let zigzag_grammar () =
  let open Grammar in
  let id a = a.(0) in
  make ~name:"zigzag" ~start:"r"
    [
      terminal "T" [ "v" ];
      nonterminal "r" [ syn "out" ];
      nonterminal "x" [ syn "s1"; inh "i1"; syn "s2"; inh "i2" ];
    ]
    [
      production ~name:"root" ~lhs:"r" ~rhs:[ "x" ]
        [
          rule (lhs "out") ~deps:[ rhs 1 "s2" ] id;
          rule (rhs 1 "i1") ~deps:[] (fun _ -> Value.Int 0);
          (* i2 depends on s1: forces two visits of x *)
          rule (rhs 1 "i2") ~deps:[ rhs 1 "s1" ] id;
        ];
      production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
        [
          rule (lhs "s1") ~deps:[ lhs "i1" ] id;
          rule (lhs "s2") ~deps:[ lhs "i2" ] id;
        ];
    ]

let test_zigzag_two_visits () =
  let p = plan_of (zigzag_grammar ()) in
  check_int "x needs 2 visits" 2 (Kastens.visit_count p "x");
  check_int "s1 first" 1 (Kastens.visit_of_attr p ~sym:"x" ~attr:"s1");
  check_int "s2 second" 2 (Kastens.visit_of_attr p ~sym:"x" ~attr:"s2")

let test_attrless_symbol_gets_one_visit () =
  let open Grammar in
  let g =
    make ~name:"attrless" ~start:"r"
      [
        terminal "T" [ "v" ];
        nonterminal "r" [ syn "out" ];
        nonterminal "mid" [];
        nonterminal "x" [ syn "s" ];
      ]
      [
        production ~name:"root" ~lhs:"r" ~rhs:[ "mid" ]
          [ rule (lhs "out") ~deps:[] (fun _ -> Value.Int 1) ];
        production ~name:"mid" ~lhs:"mid" ~rhs:[ "x" ] [];
        production ~name:"x" ~lhs:"x" ~rhs:[ "T" ]
          [ rule (lhs "s") ~deps:[ rhs 1 "v" ] (fun a -> a.(0)) ];
      ]
  in
  let p = plan_of g in
  check_int "attr-less nonterminal still visited" 1 (Kastens.visit_count p "mid");
  (* and its visit sequence must visit the child so x.s gets evaluated *)
  let seq =
    Kastens.visit_seq p ~prod:(Grammar.find_production g "mid").Grammar.p_id
      ~visit:1
  in
  check_bool "mid visits x" true
    (List.exists (function Kastens.Visit _ -> true | _ -> false) seq)

let test_pp_plan_runs () =
  let p = plan_of Repmin_ag.grammar in
  let s = Format.asprintf "%a" Kastens.pp_plan p in
  check_bool "pp nonempty" true (String.length s > 50)

let suite =
  [
    ( "kastens",
      [
        Alcotest.test_case "expr ordered" `Quick test_expr_is_ordered;
        Alcotest.test_case "binary ordered" `Quick test_binary_is_ordered;
        Alcotest.test_case "repmin two visits" `Quick test_repmin_needs_two_visits;
        Alcotest.test_case "visit seqs complete" `Quick test_visit_seq_complete;
        Alcotest.test_case "circular rejected" `Quick test_circular_rejected;
        Alcotest.test_case "zigzag" `Quick test_zigzag_two_visits;
        Alcotest.test_case "attr-less symbol" `Quick
          test_attrless_symbol_gets_one_visit;
        Alcotest.test_case "pp_plan" `Quick test_pp_plan_runs;
      ] );
  ]
