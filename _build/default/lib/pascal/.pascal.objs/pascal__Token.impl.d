lib/pascal/token.ml: Printf
