open Pag_core

type fragment = {
  fr_id : int;
  fr_root : Tree.t;
  fr_parent : int option;
  fr_bytes : int;
}

type work = {
  w_id : int;
  w_root : Tree.t;
  mutable w_parent : int option;
  mutable w_cuts : Tree.t list;
}

type plan = {
  frags : fragment array;
  cut_to_frag : (int, int) Hashtbl.t;
  cut_lists : int list array;
}

let node_bytes node =
  8
  + List.fold_left
      (fun a (_, v) -> a + Value.byte_size v)
      0 node.Tree.term_attrs

let decompose g tree ~machines ~granularity =
  if machines < 1 then invalid_arg "Split.decompose: machines < 1";
  if granularity <= 0.0 then invalid_arg "Split.decompose: granularity <= 0";
  (* The split algorithm wants preorder indices (every subtree is an
     interval [i, i + count)), but it must not renumber the tree to get
     them: an edit session re-decomposes its resident tree between edits,
     and that tree's ids are the evaluator store's node identity. Trees
     arriving unnumbered (or with duplicate ids) are numbered once; on an
     already uniquely-numbered tree the ids are left alone and a side
     table maps id -> preorder index. *)
  let ids_unique =
    let seen = Hashtbl.create 256 in
    let ok = ref true in
    Tree.iter
      (fun nd ->
        if nd.Tree.id < 0 || Hashtbl.mem seen nd.Tree.id then ok := false
        else Hashtbl.add seen nd.Tree.id ())
      tree;
    !ok
  in
  if not ids_unique then ignore (Tree.number tree);
  let n = Tree.size tree in
  let nodes = Array.make n tree in
  let pre_tbl = Hashtbl.create n in
  let next = ref 0 in
  Tree.iter
    (fun nd ->
      nodes.(!next) <- nd;
      Hashtbl.replace pre_tbl nd.Tree.id !next;
      incr next)
    tree;
  let pre (nd : Tree.t) = Hashtbl.find pre_tbl nd.Tree.id in
  let counts = Array.make n 1 in
  let bytes = Array.make n 0 in
  for i = n - 1 downto 0 do
    bytes.(i) <- node_bytes nodes.(i);
    Array.iter
      (fun c ->
        counts.(i) <- counts.(i) + counts.(pre c);
        bytes.(i) <- bytes.(i) + bytes.(pre c))
      nodes.(i).Tree.children
  done;
  let splittable i =
    let nd = nodes.(i) in
    nd.Tree.prod <> None
    &&
    match (Grammar.symbol g nd.Tree.sym).Grammar.s_split with
    | Some min_bytes ->
        float_of_int bytes.(i) >= float_of_int min_bytes *. granularity
    | None -> false
  in
  let in_subtree ~root i = i >= root && i < root + counts.(root) in
  let works = ref [ { w_id = 0; w_root = tree; w_parent = None; w_cuts = [] } ] in
  let nfrags = ref 1 in
  let cut_bytes cuts under =
    List.fold_left
      (fun a (c : Tree.t) ->
        if in_subtree ~root:under (pre c) then a + bytes.(pre c) else a)
      0 cuts
  in
  let residual w =
    bytes.(pre w.w_root) - cut_bytes w.w_cuts (pre w.w_root)
  in
  (* Ideal fragment size: machines equal shares of the whole tree. *)
  let share = float_of_int bytes.(pre tree) /. float_of_int machines in
  (* Candidate cut inside fragment [w]: any splittable node that is not the
     fragment root and not inside an existing cut. A candidate may contain
     existing cuts: those child fragments are re-parented to the new
     fragment, which is how nested decompositions (figure 7) arise. The best
     candidate leaves the fragment with about one machine share: cut the
     node whose residual is closest to [residual w - share]. *)
  let best_candidate w =
    let root_id = pre w.w_root in
    let cut_ids = List.map (fun (c : Tree.t) -> pre c) w.w_cuts in
    let target =
      Float.max (share /. 2.0) (float_of_int (residual w) -. share)
    in
    let best = ref None in
    let i = ref (root_id + 1) in
    let stop = root_id + counts.(root_id) in
    while !i < stop do
      if List.mem !i cut_ids then
        (* skip the whole cut subtree: it belongs to another fragment *)
        i := !i + counts.(!i)
      else begin
        if splittable !i then begin
          let res = bytes.(!i) - cut_bytes w.w_cuts !i in
          let score = Float.abs (float_of_int res -. target) in
          match !best with
          | Some (s, _) when s <= score -> ()
          | _ -> best := Some (score, !i)
        end;
        incr i
      end
    done;
    Option.map snd !best
  in
  let continue_splitting = ref true in
  while !nfrags < machines && !continue_splitting do
    (* largest-residual fragment that still has a candidate *)
    let sorted =
      List.sort (fun a b -> compare (residual b) (residual a)) !works
    in
    let rec try_frags = function
      | [] -> continue_splitting := false
      | w :: rest when float_of_int (residual w) <= 1.15 *. share ->
          (* splitting an already share-sized fragment only adds overhead *)
          ignore w;
          try_frags rest
      | w :: rest -> (
          match best_candidate w with
          | None -> try_frags rest
          | Some cut_id ->
              let cut_node = nodes.(cut_id) in
              let moved, kept =
                List.partition
                  (fun (c : Tree.t) -> in_subtree ~root:cut_id (pre c))
                  w.w_cuts
              in
              let nw =
                {
                  w_id = !nfrags;
                  w_root = cut_node;
                  w_parent = Some w.w_id;
                  w_cuts = moved;
                }
              in
              (* fragments whose stub moved under the new fragment now hang
                 off it instead of off [w] *)
              List.iter
                (fun (c : Tree.t) ->
                  List.iter
                    (fun w' ->
                      if w'.w_root.Tree.id = c.Tree.id then
                        w'.w_parent <- Some nw.w_id)
                    !works)
                moved;
              w.w_cuts <- cut_node :: kept;
              works := nw :: !works;
              incr nfrags)
    in
    try_frags sorted
  done;
  let works = List.sort (fun a b -> compare a.w_id b.w_id) !works in
  let frags =
    Array.of_list
      (List.map
         (fun w ->
           {
             fr_id = w.w_id;
             fr_root = w.w_root;
             fr_parent = w.w_parent;
             fr_bytes = residual w;
           })
         works)
  in
  let cut_to_frag = Hashtbl.create 16 in
  let cut_lists = Array.make (Array.length frags) [] in
  List.iter
    (fun w ->
      List.iter
        (fun (c : Tree.t) ->
          let owner =
            List.find (fun w' -> w'.w_root.Tree.id = c.Tree.id) works
          in
          Hashtbl.replace cut_to_frag c.Tree.id owner.w_id;
          cut_lists.(w.w_id) <- c.Tree.id :: cut_lists.(w.w_id))
        w.w_cuts)
    works;
  { frags; cut_to_frag; cut_lists }

let fragments p = p.frags

(* Wire size of a fragment when sender and receiver both know the tree's
   sharing classes: the second and later occurrences of a repeated subtree
   ship as a fixed-size reference to the first, provided the occurrence's id
   range contains no cut (a cut boundary makes occurrences structurally
   different on this machine even when the full subtrees are equal). *)
let backref_bytes = 8

let dag_bytes p (sh : Tree.sharing) (f : fragment) =
  let cuts = p.cut_lists.(f.fr_id) in
  let range_clean id c =
    let hi = id + sh.Tree.sh_size.(c) in
    List.for_all (fun cid -> cid < id || cid >= hi) cuts
  in
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let stack = ref [ f.fr_root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        if not (List.mem n.Tree.id cuts) then begin
          let c = sh.Tree.sh_class.(n.Tree.id) in
          let clean = range_clean n.Tree.id c in
          if sh.Tree.sh_occurs.(c) > 1 && clean && Hashtbl.mem seen c then
            total := !total + backref_bytes
          else begin
            if clean then Hashtbl.replace seen c ();
            total := !total + node_bytes n;
            Array.iter (fun ch -> stack := ch :: !stack) n.Tree.children
          end
        end
  done;
  !total

let fragment_of_cut_node p node_id = Hashtbl.find_opt p.cut_to_frag node_id

(* The fragment whose machine evaluates [node]: reachable from the
   fragment root without crossing into a cut stub (a stub is the next
   fragment's root, so the deepest enclosing fragment wins). Physical
   equality, not ids — an edit session grafts replacement nodes carrying
   ids outside the plan's original preorder range, and those are only
   findable under the fragment that physically contains them. *)
let owner_of p (node : Tree.t) =
  let rec find i =
    if i >= Array.length p.frags then None
    else begin
      let f = p.frags.(i) in
      let cuts = p.cut_lists.(f.fr_id) in
      let rec go n =
        n == node
        || Array.exists
             (fun (c : Tree.t) -> (not (List.mem c.Tree.id cuts)) && go c)
             n.Tree.children
      in
      if go f.fr_root then Some f.fr_id else find (i + 1)
    end
  in
  find 0

let cuts_of p frag_id = p.cut_lists.(frag_id)

let count p = Array.length p.frags

let pp fmt p =
  let children_of id =
    Array.to_list p.frags
    |> List.filter (fun f -> f.fr_parent = Some id)
    |> List.map (fun f -> f.fr_id)
  in
  let rec go indent id =
    let f = p.frags.(id) in
    Format.fprintf fmt "%sfragment %d: %s, %d bytes (node %d)@,"
      (String.make indent ' ') id f.fr_root.Tree.sym f.fr_bytes
      f.fr_root.Tree.id;
    List.iter (go (indent + 2)) (children_of id)
  in
  Format.fprintf fmt "@[<v>";
  go 0 0;
  Format.fprintf fmt "@]"
