open Pag_core
open Pag_util

let split_min_bytes = 64

let v_int i = Value.Int i

let st_lookup tab name =
  match Symtab.lookup tab name with
  | Some v -> v
  | None -> raise (Value.Type_error ("unbound identifier " ^ name))

(* Semantic functions, in the style of the appendix's standard library. *)

let f_copy args = args.(0)

let f_st_create _ = Value.Tab Symtab.empty

let f_add args =
  v_int
    (Value.as_int ~ctx:"add" args.(0) + Value.as_int ~ctx:"add" args.(1))

let f_mul args =
  v_int
    (Value.as_int ~ctx:"mul" args.(0) * Value.as_int ~ctx:"mul" args.(1))

let f_lookup args =
  let tab = Value.as_tab ~ctx:"st_lookup" args.(0) in
  let name = Rope.to_string (Value.as_str ~ctx:"st_lookup" args.(1)) in
  st_lookup tab name

let f_st_add args =
  let tab = Value.as_tab ~ctx:"st_add" args.(0) in
  let name = Rope.to_string (Value.as_str ~ctx:"st_add" args.(1)) in
  Value.Tab (Symtab.add tab name args.(2))

let grammar =
  let open Grammar in
  make ~name:"expr" ~start:"main_expr"
    [
      terminal "IDENTIFIER" [ "string" ];
      terminal "NUMBER" [ "value" ];
      terminal "LET" [];
      terminal "EQ" [];
      terminal "IN" [];
      terminal "NI" [];
      terminal "PLUS" [];
      terminal "TIMES" [];
      nonterminal "main_expr" [ syn "value" ];
      nonterminal "expr" [ syn "value"; inh ~priority:true "stab" ];
      nonterminal ~split:split_min_bytes "block"
        [ syn "value"; inh ~priority:true "stab" ];
    ]
    [
      production ~name:"main" ~lhs:"main_expr" ~rhs:[ "expr" ]
        [
          rule ~name:"value=expr.value" (lhs "value")
            ~deps:[ rhs 1 "value" ] f_copy;
          rule ~name:"expr.stab=st_create" (rhs 1 "stab") ~deps:[] f_st_create;
        ];
      production ~name:"add" ~lhs:"expr" ~rhs:[ "expr"; "PLUS"; "expr" ]
        [
          rule ~name:"value=+" (lhs "value")
            ~deps:[ rhs 1 "value"; rhs 3 "value" ]
            f_add;
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
          rule (rhs 3 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"mul" ~lhs:"expr" ~rhs:[ "expr"; "TIMES"; "expr" ]
        [
          rule ~name:"value=*" (lhs "value")
            ~deps:[ rhs 1 "value"; rhs 3 "value" ]
            f_mul;
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
          rule (rhs 3 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"var" ~lhs:"expr" ~rhs:[ "IDENTIFIER" ]
        [
          rule ~name:"value=st_lookup" (lhs "value")
            ~deps:[ lhs "stab"; rhs 1 "string" ]
            f_lookup;
        ];
      production ~name:"num" ~lhs:"expr" ~rhs:[ "NUMBER" ]
        [ rule ~name:"value=num" (lhs "value") ~deps:[ rhs 1 "value" ] f_copy ];
      production ~name:"blockexpr" ~lhs:"expr" ~rhs:[ "block" ]
        [
          rule (lhs "value") ~deps:[ rhs 1 "value" ] f_copy;
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"block" ~lhs:"block"
        ~rhs:[ "LET"; "IDENTIFIER"; "EQ"; "expr"; "IN"; "expr"; "NI" ]
        [
          rule (lhs "value") ~deps:[ rhs 6 "value" ] f_copy;
          rule (rhs 4 "stab") ~deps:[ lhs "stab" ] f_copy;
          rule ~name:"stab=st_add" (rhs 6 "stab")
            ~deps:[ lhs "stab"; rhs 2 "string"; rhs 4 "value" ]
            f_st_add;
        ];
    ]

(* Tree builders *)

let kw name = Tree.leaf grammar name []

let num n = Tree.node grammar "num" [ Tree.leaf grammar "NUMBER" [ ("value", v_int n) ] ]

let var x =
  Tree.node grammar "var"
    [ Tree.leaf grammar "IDENTIFIER" [ ("string", Value.str x) ] ]

let add a b = Tree.node grammar "add" [ a; kw "PLUS"; b ]

let mul a b = Tree.node grammar "mul" [ a; kw "TIMES"; b ]

let let_in x e1 e2 =
  let block =
    Tree.node grammar "block"
      [
        kw "LET";
        Tree.leaf grammar "IDENTIFIER" [ ("string", Value.str x) ];
        kw "EQ";
        e1;
        kw "IN";
        e2;
        kw "NI";
      ]
  in
  Tree.node grammar "blockexpr" [ block ]

let main e = Tree.node grammar "main" [ e ]

let example = main (let_in "x" (num 2) (add (num 1) (mul (num 2) (var "x"))))

let random_expr st ~depth ~vars =
  let rec go depth vars =
    let can_var = vars <> [] in
    let choice =
      if depth = 0 then if can_var then Random.State.int st 2 else 0
      else Random.State.int st (if can_var then 5 else 4)
    in
    match choice with
    | 0 -> num (Random.State.int st 100)
    | 1 when can_var && depth = 0 ->
        var (List.nth vars (Random.State.int st (List.length vars)))
    | 1 -> add (go (depth - 1) vars) (go (depth - 1) vars)
    | 2 -> mul (go (depth - 1) vars) (go (depth - 1) vars)
    | 3 ->
        let x = Printf.sprintf "v%d" (List.length vars) in
        let_in x (go (depth - 1) vars) (go (depth - 1) (x :: vars))
    | _ -> var (List.nth vars (Random.State.int st (List.length vars)))
  in
  go depth vars

let random_program st ~depth = main (random_expr st ~depth ~vars:[])

let reference_value t =
  (* Direct recursive interpretation of the tree shape; independent of the
     attribute-evaluation machinery. *)
  let rec expr env (t : Tree.t) =
    match t.Tree.prod with
    | None -> failwith "reference_value: unexpected leaf"
    | Some p -> (
        match p.Grammar.p_name with
        | "num" -> Value.as_int ~ctx:"ref" (Tree.term_attr t.Tree.children.(0) "value")
        | "var" ->
            let name =
              Rope.to_string
                (Value.as_str ~ctx:"ref"
                   (Tree.term_attr t.Tree.children.(0) "string"))
            in
            List.assoc name env
        | "add" -> expr env t.Tree.children.(0) + expr env t.Tree.children.(2)
        | "mul" -> expr env t.Tree.children.(0) * expr env t.Tree.children.(2)
        | "blockexpr" -> block env t.Tree.children.(0)
        | "main" -> expr env t.Tree.children.(0)
        | other -> failwith ("reference_value: unexpected production " ^ other))
  and block env (t : Tree.t) =
    let name =
      Rope.to_string
        (Value.as_str ~ctx:"ref" (Tree.term_attr t.Tree.children.(1) "string"))
    in
    let v = expr env t.Tree.children.(3) in
    expr ((name, v) :: env) t.Tree.children.(5)
  in
  expr [] t
