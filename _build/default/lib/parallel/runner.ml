open Pag_core
open Netsim

type options = {
  machines : int;
  mode : Worker.mode;
  granularity : float;
  use_priority : bool;
  use_librarian : bool;
  cost : Cost.t;
  net_params : Ethernet.params;
  phase_label : int -> string option;
}

let default_options =
  {
    machines = 1;
    mode = `Combined;
    granularity = 1.0;
    use_priority = true;
    use_librarian = true;
    cost = Cost.default;
    net_params = Ethernet.default_params;
    phase_label = (fun _ -> None);
  }

type result = {
  r_attrs : (string * Value.t) list;
  r_time : float;
  r_worker_stats : Worker.stats array;
  r_trace : Trace.t option;
  r_messages : int;
  r_bytes : int;
  r_fragments : int;
  r_split : Split.plan;
  r_dynamic_fraction : float;
}

let machine_name ~fragments id =
  if id = 0 then "parser"
  else if id <= fragments then
    Printf.sprintf "eval-%c" (Char.chr (Char.code 'a' + id - 1))
  else "librarian"

let worker_config opts g plan =
  {
    Worker.wc_grammar = g;
    wc_plan = plan;
    wc_mode = opts.mode;
    wc_cost = opts.cost;
    wc_use_priority = opts.use_priority;
    wc_librarian = None (* patched per run: librarian machine id *);
    wc_phase_label = opts.phase_label;
  }

let make_task plan (f : Split.fragment) nodes_by_id =
  let cuts =
    List.map
      (fun cut_id ->
        let frag =
          match Split.fragment_of_cut_node plan cut_id with
          | Some fr -> fr
          | None -> assert false
        in
        (Hashtbl.find nodes_by_id cut_id, frag + 1))
      (Split.cuts_of plan f.Split.fr_id)
  in
  {
    Worker.t_frag_id = f.Split.fr_id;
    t_root = f.Split.fr_root;
    t_cuts = cuts;
    t_parent_machine =
      (match f.Split.fr_parent with None -> 0 | Some p -> p + 1);
    t_root_is_tree_root = f.Split.fr_id = 0;
  }

let dynamic_fraction stats =
  let dyn =
    Array.fold_left (fun a s -> a + s.Worker.ws_dynamic_rules) 0 stats
  in
  let st = Array.fold_left (fun a s -> a + s.Worker.ws_static_rules) 0 stats in
  if dyn + st = 0 then 0.0 else float_of_int dyn /. float_of_int (dyn + st)

let prepare opts g tree =
  let plan = Split.decompose g tree ~machines:opts.machines ~granularity:opts.granularity in
  let nodes_by_id = Hashtbl.create 1024 in
  Tree.iter (fun n -> Hashtbl.replace nodes_by_id n.Tree.id n) tree;
  (plan, nodes_by_id)

(* ------------------------- simulation ------------------------- *)

module S = Sim.Make (struct
  type msg = Message.t
end)

let message_label = function
  | Message.Attr { attr; _ } -> attr
  | Message.Subtree { frag; _ } -> Printf.sprintf "subtree %d" frag
  | Message.Code_frag _ -> "code fragment"
  | Message.Resolve _ -> "resolve"
  | Message.Final _ -> "final code"
  | Message.Stop -> "stop"

let sim_env _sim id =
  {
    Transport.e_id = id;
    e_delay = S.delay;
    e_send =
      (fun ~dst m ->
        S.send ~dst ~size:(Message.size m) ~label:(message_label m) m);
    e_recv = S.recv;
    e_mark = S.mark;
  }

let run_sim opts g plan tree =
  let split, nodes_by_id = prepare opts g tree in
  let nfrags = Split.count split in
  let librarian_id = if opts.use_librarian then Some (nfrags + 1) else None in
  let sim = S.create ~params:opts.net_params () in
  let stats = Array.make nfrags None in
  let attrs = ref [] in
  let finish = ref 0.0 in
  (* pid 0: coordinator *)
  let _ =
    S.spawn sim ~name:"parser" (fun () ->
        let env = sim_env sim 0 in
        attrs :=
          Coordinator.run env g ~tree ~plan:split ~librarian:librarian_id;
        finish := S.time ())
  in
  (* pids 1..nfrags: evaluators *)
  Array.iter
    (fun (f : Split.fragment) ->
      let id = f.Split.fr_id in
      let _ =
        S.spawn sim
          ~name:(machine_name ~fragments:nfrags (id + 1))
          (fun () ->
            let env = sim_env sim (id + 1) in
            let cfg =
              { (worker_config opts g plan) with
                Worker.wc_librarian = librarian_id;
              }
            in
            stats.(id) <- Some (Worker.run env cfg (make_task split f nodes_by_id)))
      in
      ())
    (Split.fragments split);
  (* librarian *)
  (match librarian_id with
  | Some lid ->
      let _ =
        S.spawn sim ~name:"librarian" (fun () ->
            Librarian.run (sim_env sim lid) ~coordinator:0)
      in
      ()
  | None -> ());
  S.run sim;
  let worker_stats =
    Array.map
      (function Some s -> s | None -> failwith "worker did not finish")
      stats
  in
  let net = S.network sim in
  {
    r_attrs = !attrs;
    r_time = !finish;
    r_worker_stats = worker_stats;
    r_trace = Some (S.trace sim);
    r_messages = Ethernet.messages_sent net;
    r_bytes = Ethernet.bytes_sent net;
    r_fragments = nfrags;
    r_split = split;
    r_dynamic_fraction = dynamic_fraction worker_stats;
  }

(* ------------------------- domains ------------------------- *)

module Chan = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.add v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.take t.q in
    Mutex.unlock t.m;
    v
end

let run_domains opts g plan tree =
  let split, nodes_by_id = prepare opts g tree in
  let nfrags = Split.count split in
  let librarian_id = if opts.use_librarian then Some (nfrags + 1) else None in
  let nmachines = nfrags + 2 in
  let chans = Array.init nmachines (fun _ -> Chan.create ()) in
  let env id =
    {
      Transport.e_id = id;
      e_delay = (fun _ -> ());
      e_send = (fun ~dst m -> Chan.push chans.(dst) m);
      e_recv = (fun () -> Chan.pop chans.(id));
      e_mark = (fun _ -> ());
    }
  in
  let t0 = Unix.gettimeofday () in
  let worker_domains =
    Array.map
      (fun (f : Split.fragment) ->
        let id = f.Split.fr_id in
        Domain.spawn (fun () ->
            let cfg =
              { (worker_config opts g plan) with
                Worker.wc_librarian = librarian_id;
              }
            in
            Worker.run (env (id + 1)) cfg (make_task split f nodes_by_id)))
      (Split.fragments split)
  in
  let librarian_domain =
    Option.map
      (fun lid ->
        Domain.spawn (fun () -> Librarian.run (env lid) ~coordinator:0))
      librarian_id
  in
  let attrs = Coordinator.run (env 0) g ~tree ~plan:split ~librarian:librarian_id in
  let worker_stats = Array.map Domain.join worker_domains in
  Option.iter Domain.join librarian_domain;
  let t1 = Unix.gettimeofday () in
  {
    r_attrs = attrs;
    r_time = t1 -. t0;
    r_worker_stats = worker_stats;
    r_trace = None;
    r_messages = 0;
    r_bytes = 0;
    r_fragments = nfrags;
    r_split = split;
    r_dynamic_fraction = dynamic_fraction worker_stats;
  }
