lib/vax/asm_parser.mli: Isa
