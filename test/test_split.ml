open Pag_core
open Pag_parallel
open Pag_grammars

let qc ?(count = 60) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let big_tree seed =
  Stackcode_ag.random_program (Random.State.make [| seed |]) ~depth:8 ~blocks:6

let test_single_machine_one_fragment () =
  let t = big_tree 1 in
  let plan = Split.decompose Stackcode_ag.grammar t ~machines:1 ~granularity:1.0 in
  check_int "one fragment" 1 (Split.count plan);
  let f = (Split.fragments plan).(0) in
  check_bool "root fragment is the tree" true (f.Split.fr_root == t);
  check_bool "no parent" true (f.Split.fr_parent = None);
  Alcotest.(check (list int)) "no cuts" [] (Split.cuts_of plan 0)

let test_fragments_bounded_by_machines () =
  let t = big_tree 2 in
  for m = 1 to 8 do
    let plan = Split.decompose Stackcode_ag.grammar t ~machines:m ~granularity:1.0 in
    check_bool
      (Printf.sprintf "machines=%d" m)
      true
      (Split.count plan >= 1 && Split.count plan <= m)
  done

let test_cut_roots_are_splittable () =
  let t = big_tree 3 in
  let plan = Split.decompose Stackcode_ag.grammar t ~machines:5 ~granularity:1.0 in
  Array.iter
    (fun (f : Split.fragment) ->
      if f.Split.fr_id <> 0 then begin
        let sym = Grammar.symbol Stackcode_ag.grammar f.Split.fr_root.Tree.sym in
        check_bool "cut at splittable symbol" true (sym.Grammar.s_split <> None);
        check_bool "has a parent" true (f.Split.fr_parent <> None)
      end)
    (Split.fragments plan)

let test_cut_consistency () =
  let t = big_tree 4 in
  let plan = Split.decompose Stackcode_ag.grammar t ~machines:6 ~granularity:1.0 in
  (* Every non-root fragment appears exactly once as a cut of its parent. *)
  Array.iter
    (fun (f : Split.fragment) ->
      match f.Split.fr_parent with
      | None -> ()
      | Some p ->
          let cuts = Split.cuts_of plan p in
          check_bool "registered as parent's cut" true
            (List.mem f.Split.fr_root.Tree.id cuts);
          check_int "cut maps back to fragment"
            f.Split.fr_id
            (Option.get (Split.fragment_of_cut_node plan f.Split.fr_root.Tree.id)))
    (Split.fragments plan)

let test_granularity_disables_splitting () =
  let t = big_tree 5 in
  (* Gigantic minimum size: nothing qualifies. *)
  let plan =
    Split.decompose Stackcode_ag.grammar t ~machines:6 ~granularity:1e9
  in
  check_int "no split at huge granularity" 1 (Split.count plan)

let test_balance_quality () =
  (* On a list-like program with many split points (the shape of a real
     source file: a long sequence of procedure-sized blocks), 5 fragments
     should come out roughly equal — the paper's "subtrees of about equal
     size". The balance bound is necessarily loose on lumpy trees, so this
     uses a regular chain of 64 equal blocks. *)
  let st = Random.State.make [| 42 |] in
  let body () =
    Stackcode_ag.(
      add (num (Random.State.int st 10)) (mul (num 2) (num (Random.State.int st 10))))
  in
  let t =
    (* nested blocks: each block contains the rest of the program, like a
       statement list whose suffix node covers the remaining statements *)
    Stackcode_ag.main
      (List.fold_left
         (fun acc i ->
           Stackcode_ag.(let_in (Printf.sprintf "p%d" i) i (add (body ()) acc)))
         (Stackcode_ag.num 0)
         (List.init 64 (fun i -> i)))
  in
  let plan = Split.decompose Stackcode_ag.grammar t ~machines:5 ~granularity:1.0 in
  check_int "five fragments" 5 (Split.count plan);
  let sizes =
    Array.to_list (Array.map (fun f -> f.Split.fr_bytes) (Split.fragments plan))
  in
  let mn = List.fold_left min max_int sizes
  and mx = List.fold_left max 0 sizes in
  check_bool (Printf.sprintf "balance %d..%d" mn mx) true (mx <= 3 * mn)

let test_pp_runs () =
  let t = big_tree 6 in
  let plan = Split.decompose Stackcode_ag.grammar t ~machines:4 ~granularity:1.0 in
  let s = Format.asprintf "%a" Split.pp plan in
  check_bool "pp nonempty" true (String.length s > 20)

let arb_seed_machines =
  QCheck.make
    ~print:(fun (s, m) -> Printf.sprintf "seed=%d machines=%d" s m)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 1 7))

let prop_residuals_sum_to_total =
  qc "fragment residuals partition the tree" arb_seed_machines (fun (seed, m) ->
      let t = big_tree seed in
      let plan = Split.decompose Stackcode_ag.grammar t ~machines:m ~granularity:1.0 in
      let total =
        Array.fold_left (fun a f -> a + f.Split.fr_bytes) 0 (Split.fragments plan)
      in
      (* total of residuals = whole tree's byte size *)
      let whole =
        let plan1 = Split.decompose Stackcode_ag.grammar t ~machines:1 ~granularity:1.0 in
        (Split.fragments plan1).(0).Split.fr_bytes
      in
      total = whole)

let prop_fragments_disjoint =
  qc "fragments own disjoint node sets" arb_seed_machines (fun (seed, m) ->
      let t = big_tree seed in
      let plan = Split.decompose Stackcode_ag.grammar t ~machines:m ~granularity:1.0 in
      (* walk each fragment, stopping at its cuts; count total visited *)
      let seen = Hashtbl.create 1024 in
      let ok = ref true in
      Array.iter
        (fun (f : Split.fragment) ->
          let cuts = Split.cuts_of plan f.Split.fr_id in
          let rec walk (n : Tree.t) =
            if List.mem n.Tree.id cuts then () (* another fragment's root *)
            else begin
              if Hashtbl.mem seen n.Tree.id then ok := false
              else Hashtbl.replace seen n.Tree.id ();
              Array.iter walk n.Tree.children
            end
          in
          walk f.Split.fr_root)
        (Split.fragments plan);
      !ok && Hashtbl.length seen = Tree.size t)

let suite =
  [
    ( "split",
      [
        Alcotest.test_case "single machine" `Quick test_single_machine_one_fragment;
        Alcotest.test_case "bounded by machines" `Quick
          test_fragments_bounded_by_machines;
        Alcotest.test_case "cuts splittable" `Quick test_cut_roots_are_splittable;
        Alcotest.test_case "cut consistency" `Quick test_cut_consistency;
        Alcotest.test_case "granularity" `Quick test_granularity_disables_splitting;
        Alcotest.test_case "balance" `Quick test_balance_quality;
        Alcotest.test_case "pp" `Quick test_pp_runs;
        prop_residuals_sum_to_total;
        prop_fragments_disjoint;
      ] );
  ]
