examples/expr_calculator.ml: Agspec Appendix Array Compile Lazy List Lrgen Pag_core Pag_parallel Printf Sys
