lib/netsim/gantt.mli: Trace
