open Pag_core

let f_copy args = args.(0)

let f_min args =
  Value.Int
    (min (Value.as_int ~ctx:"min" args.(0)) (Value.as_int ~ctx:"min" args.(1)))

let f_pair args = Value.Pair (args.(0), args.(1))

let grammar =
  let open Grammar in
  make ~name:"repmin" ~start:"root"
    [
      terminal "LEAFV" [ "value" ];
      nonterminal "root" [ syn "res" ];
      nonterminal ~split:32 "tree" [ syn "min"; syn "res"; inh "gmin" ];
    ]
    [
      production ~name:"root" ~lhs:"root" ~rhs:[ "tree" ]
        [
          rule ~name:"res=tree.res" (lhs "res") ~deps:[ rhs 1 "res" ] f_copy;
          rule ~name:"gmin=tree.min" (rhs 1 "gmin") ~deps:[ rhs 1 "min" ] f_copy;
        ];
      production ~name:"leaf" ~lhs:"tree" ~rhs:[ "LEAFV" ]
        [
          rule ~name:"min=value" (lhs "min") ~deps:[ rhs 1 "value" ] f_copy;
          rule ~name:"res=gmin" (lhs "res") ~deps:[ lhs "gmin" ] f_copy;
        ];
      production ~name:"fork" ~lhs:"tree" ~rhs:[ "tree"; "tree" ]
        [
          rule ~name:"min=min" (lhs "min")
            ~deps:[ rhs 1 "min"; rhs 2 "min" ]
            f_min;
          rule ~name:"res=pair" (lhs "res")
            ~deps:[ rhs 1 "res"; rhs 2 "res" ]
            f_pair;
          rule (rhs 1 "gmin") ~deps:[ lhs "gmin" ] f_copy;
          rule (rhs 2 "gmin") ~deps:[ lhs "gmin" ] f_copy;
        ];
    ]

let leaf v =
  Tree.node grammar "leaf" [ Tree.leaf grammar "LEAFV" [ ("value", Value.Int v) ] ]

let fork a b = Tree.node grammar "fork" [ a; b ]

let root t = Tree.node grammar "root" [ t ]

let random_tree st ~depth =
  let rec go depth =
    if depth = 0 || Random.State.int st 4 = 0 then
      leaf (Random.State.int st 1000)
    else fork (go (depth - 1)) (go (depth - 1))
  in
  root (go depth)

let reference_result t =
  let rec min_of (t : Tree.t) =
    match t.Tree.prod with
    | Some p when p.Grammar.p_name = "leaf" ->
        Value.as_int ~ctx:"repmin" (Tree.term_attr t.Tree.children.(0) "value")
    | Some p when p.Grammar.p_name = "fork" ->
        min (min_of t.Tree.children.(0)) (min_of t.Tree.children.(1))
    | _ -> failwith "reference_result: not a tree node"
  in
  let rec rebuild gmin (t : Tree.t) =
    match t.Tree.prod with
    | Some p when p.Grammar.p_name = "leaf" -> Value.Int gmin
    | Some p when p.Grammar.p_name = "fork" ->
        Value.Pair
          (rebuild gmin t.Tree.children.(0), rebuild gmin t.Tree.children.(1))
    | _ -> failwith "reference_result: not a tree node"
  in
  match t.Tree.prod with
  | Some p when p.Grammar.p_name = "root" ->
      let sub = t.Tree.children.(0) in
      rebuild (min_of sub) sub
  | _ -> failwith "reference_result: expected a root node"
