(* Benchmark harness: regenerates every result figure and table of
   Boehm & Zwaenepoel, "Parallel Attribute Grammar Evaluation" (ICDCS 1987).

   Sections (ids match DESIGN.md / EXPERIMENTS.md):
     E1  figure 5   running times, dynamic and combined, 1..6 machines
     E2  figure 6   behaviour of the combined evaluator (Gantt)
     E3  figure 7   source program decomposition
     E4  in text    fraction of dynamically evaluated attributes (< 5%)
     E5  in text    string librarian vs naive result propagation
     E6  in text    priority attributes on/off
     E7  in text    unique identifiers: per-evaluator bases vs a threaded
                    counter attribute
     E8  in text    sequential static vs dynamic cost; split granularity
     E10 beyond     fault injection: reliable-delivery overhead at zero
                    faults; graceful degradation as the drop rate rises
                    (writes BENCH_2.json)
     E11 beyond     observability: wall-clock overhead of full telemetry
                    recording, and registry-vs-legacy-stats agreement
                    (writes BENCH_3.json)
     E12 beyond     hash-consed values + DAG-shared subtree evaluation:
                    sequential static throughput, bytes on the wire,
                    equivalence gates (writes BENCH_4.json)
     E14 beyond     work-stealing instance scheduler vs the static fragment
                    schedule: machine sweep on balanced and skewed
                    workloads, equivalence gates (writes BENCH_6.json)
     E15 beyond     multi-tenant compile service: sustained edits/sec and
                    latency percentiles at 100/1k/10k netsim sessions plus
                    real-domains rows, per-tenant finals gated against
                    isolated session replays (writes BENCH_7.json)
     E16 beyond     attribute provenance ring: per-firing recording
                    overhead vs trace-only telemetry and all-off at 8
                    sim machines, schedule-identity and overhead gates
                    (writes BENCH_8.json)
     E17 beyond     parallel batched self-adjusting re-evaluation: merged
                    dirty cones vs one-at-a-time edits at 8 netsim
                    machines, a real-domains wave, batched service sweep
                    at 1k sessions, provenance-blame and equivalence
                    gates (writes BENCH_9.json)
     E18 beyond     first-class DAG evaluation: one rule-instance set per
                    unique subtree, once-per-machine fragment shipping;
                    instance/wire/time columns at 8 netsim machines and
                    equivalence gates (writes BENCH_10.json)

   Flags:
     --quick     use a smaller workload and fewer machine counts
     --micro     run only the microbenchmarks: Bechamel substrate benches
                 plus the flat-store vs seed-hash-store comparison (writes
                 BENCH_1.json)
     --smoke     run only a fast evaluator-equivalence check on a quick
                 workload; exits nonzero on any mismatch
     --only IDS  run only the named experiments (comma-separated, e.g.
                 --only e15,e17) *)

open Pascal
open Pag_parallel

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let micro = Array.exists (fun a -> a = "--micro") Sys.argv

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

(* --only e15,e17 runs just those experiments (full suite otherwise). *)
let only =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--only" then
      Some (String.split_on_char ',' (String.lowercase_ascii Sys.argv.(i + 1)))
    else find (i + 1)
  in
  find 1

let runs id = match only with None -> true | Some ids -> List.mem id ids

let sep title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let workload =
  lazy
    (if quick then fst (Progen.gen (Random.State.make [| 7 |]) Progen.medium)
     else Progen.paper_program ())

(* Stamped into every BENCH_*.json so a record always says what it ran on. *)
let workload_name =
  if quick then "Progen.gen medium seed=7" else "Progen.paper_program"

let max_machines = if quick then 4 else 6

let opts ?mode ?librarian ?priority ?granularity machines =
  Session.options
    (Session.spec ?mode ?librarian ?priority ?granularity
       ~phase_label:Driver.phase_label machines)

let compile ?variant o = Driver.compile_parallel_sim ?variant o (Lazy.force workload)

(* ------------------------------------------------------------------ *)

let e1_figure5 () =
  sep "[E1] Figure 5: evaluator running times (simulated seconds)";
  Printf.printf "workload: %d source lines of Pascal\n\n"
    (Pp.line_count (Lazy.force workload));
  Printf.printf "%-9s %-12s %-9s %-12s %-9s\n" "machines" "combined" "speedup"
    "dynamic" "speedup";
  let seq_c = ref 0.0 and seq_d = ref 0.0 in
  let best = ref (0, infinity) in
  for m = 1 to max_machines do
    let rc, _ = compile (opts m) in
    let rd, _ = compile (opts ~mode:`Dynamic m) in
    if m = 1 then begin
      seq_c := rc.Runner.r_time;
      seq_d := rd.Runner.r_time
    end;
    if rc.Runner.r_time < snd !best then best := (m, rc.Runner.r_time);
    Printf.printf "%-9d %9.2fs   x%-7.2f %9.2fs   x%-7.2f\n" m
      rc.Runner.r_time
      (!seq_c /. rc.Runner.r_time)
      rd.Runner.r_time
      (!seq_d /. rd.Runner.r_time)
  done;
  Printf.printf
    "\npaper shape: combined below dynamic everywhere; speedup up to ~4;\n\
     best around 5 machines with no further gain at 6; not monotonic.\n\
     measured:    best at %d machines (x%.2f over sequential combined).\n"
    (fst !best)
    (!seq_c /. snd !best)

let e2_figure6 () =
  let m = min 5 max_machines in
  sep (Printf.sprintf
         "[E2] Figure 6: behaviour of the parallel combined evaluator (%d machines)" m);
  let r, _ = compile (opts m) in
  (match r.Runner.r_trace with
  | Some tr ->
      print_string
        (Netsim.Gantt.render ~width:90 ~max_arrows:16
           ~names:(Runner.machine_name ~fragments:r.Runner.r_fragments)
           tr)
  | None -> ());
  print_newline ();
  Printf.printf
    "paper shape: symbol-table generation and propagation essentially\n\
     sequential; good concurrency during code generation; result\n\
     propagation through the string librarian at the end.\n"

let e3_figure7 () =
  let m = min 5 max_machines in
  sep (Printf.sprintf "[E3] Figure 7: source program decomposition (%d machines)" m);
  let r, _ = compile (opts m) in
  Format.printf "%a@." Split.pp r.Runner.r_split;
  let sizes =
    Array.to_list
      (Array.map (fun f -> f.Split.fr_bytes) (Split.fragments r.Runner.r_split))
  in
  let mn = List.fold_left min max_int sizes
  and mx = List.fold_left max 0 sizes in
  Printf.printf
    "paper shape: subtrees of about equal size.\n\
     measured:    %d fragments, %d..%d bytes (max/min = %.2f).\n"
    (List.length sizes) mn mx
    (float_of_int mx /. float_of_int mn)

let e4_dynamic_fraction () =
  sep "[E4] Fraction of attributes evaluated dynamically (combined evaluator)";
  Printf.printf "%-9s %-10s\n" "machines" "dynamic";
  for m = 2 to max_machines do
    let r, _ = compile (opts m) in
    Printf.printf "%-9d %8.3f%%\n" m (100.0 *. r.Runner.r_dynamic_fraction)
  done;
  Printf.printf
    "\npaper: on average less than 5 percent of the attributes are\n\
     evaluated dynamically.\n"

let e5_librarian () =
  let m = min 5 max_machines in
  sep (Printf.sprintf "[E5] String librarian vs naive result propagation (%d machines)" m);
  let with_lib, c = compile (opts ~librarian:true m) in
  let without, _ = compile (opts ~librarian:false m) in
  Printf.printf "generated code: %d KB of assembly text\n\n"
    (String.length c.Driver.c_asm / 1024);
  Printf.printf "%-26s %10s %10s %12s\n" "" "time" "messages" "wire KB";
  Printf.printf "%-26s %9.2fs %10d %12d\n" "with string librarian"
    with_lib.Runner.r_time with_lib.Runner.r_messages
    (with_lib.Runner.r_bytes / 1024);
  Printf.printf "%-26s %9.2fs %10d %12d\n" "naive propagation"
    without.Runner.r_time without.Runner.r_messages
    (without.Runner.r_bytes / 1024);
  Printf.printf
    "\npaper: approximately 1 second improvement (about 10%% of their\n\
     running time); large code attributes otherwise cross the network as\n\
     many times as the process tree is deep, sequentially.\n\
     measured: %.2fs improvement (%.1f%%), %d KB less on the wire.\n"
    (without.Runner.r_time -. with_lib.Runner.r_time)
    (100.0
    *. (without.Runner.r_time -. with_lib.Runner.r_time)
    /. without.Runner.r_time)
    ((without.Runner.r_bytes - with_lib.Runner.r_bytes) / 1024)

let e6_priority () =
  let m = min 5 max_machines in
  sep (Printf.sprintf "[E6] Priority attributes (global symbol table) on/off (%d machines)" m);
  let with_prio, _ = compile (opts ~priority:true m) in
  let without, _ = compile (opts ~priority:false m) in
  Printf.printf "%-26s %9.2fs\n" "priority attributes" with_prio.Runner.r_time;
  Printf.printf "%-26s %9.2fs (+%.1f%%)\n" "no priority" without.Runner.r_time
    (100.0
    *. (without.Runner.r_time -. with_prio.Runner.r_time)
    /. with_prio.Runner.r_time);
  Printf.printf
    "\npaper: without priority attributes, pathological situations occur\n\
     where local attributes are computed ahead of globally required ones.\n"

let e7_unique_ids () =
  sep "[E7] Unique identifiers: per-evaluator bases vs threaded counter";
  let m = min 5 max_machines in
  let base1, _ = compile (opts 1) in
  let base_m, _ = compile (opts m) in
  let thr1, _ = compile ~variant:`Threaded (opts 1) in
  let thr_m, _ = compile ~variant:`Threaded (opts m) in
  Printf.printf "%-28s %12s %12s %10s\n" "" "1 machine"
    (Printf.sprintf "%d machines" m)
    "speedup";
  Printf.printf "%-28s %11.2fs %11.2fs %9.2fx\n" "per-evaluator bases"
    base1.Runner.r_time base_m.Runner.r_time
    (base1.Runner.r_time /. base_m.Runner.r_time);
  Printf.printf "%-28s %11.2fs %11.2fs %9.2fx\n" "threaded counter attribute"
    thr1.Runner.r_time thr_m.Runner.r_time
    (thr1.Runner.r_time /. thr_m.Runner.r_time);
  Printf.printf
    "\npaper: threading a counter attribute through the tree would require\n\
     virtually all evaluators to wait for its propagation; the parser hands\n\
     each evaluator a base value instead.\n"

let e8_sequential_and_granularity () =
  sep "[E8] Sequential evaluator cost and split granularity";
  let rc, _ = compile (opts 1) in
  let rd, _ = compile (opts ~mode:`Dynamic 1) in
  Printf.printf "sequential combined (= static): %8.2fs\n" rc.Runner.r_time;
  Printf.printf "sequential dynamic:             %8.2fs (x%.2f)\n\n"
    rd.Runner.r_time
    (rd.Runner.r_time /. rc.Runner.r_time);
  Printf.printf
    "paper: static evaluators avoid computing and storing per-tree\n\
     dependency information; the combined evaluator keeps that efficiency.\n\n";
  let m = min 5 max_machines in
  Printf.printf "granularity sweep (combined, %d machines):\n" m;
  Printf.printf "%-14s %-10s %-10s %-10s\n" "granularity" "time" "fragments"
    "messages";
  List.iter
    (fun g ->
      let r, _ = compile (opts ~granularity:g m) in
      Printf.printf "%-14.2f %8.2fs %-10d %-10d\n" g r.Runner.r_time
        r.Runner.r_fragments r.Runner.r_messages)
    [ 0.05; 0.5; 1.0; 50.0; 2000.0 ];
  Printf.printf
    "\npaper: the minimum split size can be scaled by a runtime argument to\n\
     the parser for easy experimentation with decomposition granularity.\n"

let e9_assembly_integration () =
  sep "[E9] Integrating assembly: machine code vs assembly text";
  (* The paper argues for integrating assembly into the parallel compiler
     because machine language is much more compact than assembly text,
     shrinking the attributes transmitted over the network. *)
  let _, c = compile (opts 1) in
  let instrs = Vax.Asm_parser.parse c.Driver.c_asm in
  let text = String.length c.Driver.c_asm in
  let binary = Vax.Encode.encoded_size instrs in
  Printf.printf "assembly text of the workload:   %8d KB\n" (text / 1024);
  Printf.printf "encoded machine code + symbols:  %8d KB  (%.1fx smaller)\n"
    (binary / 1024)
    (float_of_int text /. float_of_int binary);
  let n_instr = Peephole.instr_count instrs in
  let opt = Peephole.optimize instrs in
  Printf.printf
    "peephole optimization: %d -> %d instructions (-%.1f%%)\n" n_instr
    (Peephole.instr_count opt)
    (100.0
    *. float_of_int (n_instr - Peephole.instr_count opt)
    /. float_of_int n_instr);
  Printf.printf
    "\npaper: \"machine language is much more compact than assembly\n\
     language, resulting in smaller attributes being transmitted over the\n\
     network\" — the motivation for running assembly as part of the same\n\
     parallel decomposition rather than as a separate pass.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrates                          *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  sep "[micro] Substrate microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Pag_util in
  let rope_test =
    Test.make ~name:"rope concat x1000"
      (Staged.stage (fun () ->
           let r = ref Rope.empty in
           for i = 0 to 999 do
             r := Rope.concat !r (Rope.of_string (string_of_int i))
           done;
           Rope.length !r))
  in
  let string_test =
    Test.make ~name:"string concat x1000"
      (Staged.stage (fun () ->
           let s = ref "" in
           for i = 0 to 999 do
             s := !s ^ string_of_int i
           done;
           String.length !s))
  in
  let symtab_test =
    Test.make ~name:"symtab add+lookup x200"
      (Staged.stage (fun () ->
           let t = ref Symtab.empty in
           for i = 0 to 199 do
             t := Symtab.add !t (string_of_int i) i
           done;
           for i = 0 to 199 do
             ignore (Symtab.lookup !t (string_of_int i))
           done))
  in
  let tree =
    Pag_grammars.Expr_ag.random_program (Random.State.make [| 5 |]) ~depth:9
  in
  let plan =
    match Pag_analysis.Kastens.analyze Pag_grammars.Expr_ag.grammar with
    | Ok p -> p
    | Error _ -> assert false
  in
  let static_test =
    Test.make ~name:"static eval (expr tree)"
      (Staged.stage (fun () -> ignore (Pag_eval.Static_eval.eval plan tree)))
  in
  let dynamic_test =
    Test.make ~name:"dynamic eval (expr tree)"
      (Staged.stage (fun () ->
           ignore (Pag_eval.Dynamic.eval Pag_grammars.Expr_ag.grammar tree)))
  in
  let parse_test =
    let t = Lazy.force Agspec.Appendix.translator in
    Test.make ~name:"agspec parse+eval"
      (Staged.stage (fun () ->
           let tree = Agspec.Compile.parse t "let x = 2 in 1 + 2 * x ni" in
           ignore (Agspec.Compile.evaluate t tree)))
  in
  let tests =
    [ rope_test; string_test; symtab_test; static_test; dynamic_test; parse_test ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> x
            | _ -> nan
          in
          Printf.printf "%-32s %12.0f ns/run\n" name ns)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Flat store vs seed hash store (BENCH_1)                             *)
(* ------------------------------------------------------------------ *)

(* Label numbers depend on the order rules fire (Uid.fresh), which differs
   between evaluators; the emitted instruction sequence is determined by the
   tree alone. Compare code with every L<n>/P<n> label token masked
   (definitions and references alike). *)
let mask_asm = Driver.mask_labels

let masked_code attrs = mask_asm (Pascal_ag.code_of_attrs attrs)

let pascal_roots_agree a_attrs b_attrs =
  String.equal (masked_code a_attrs) (masked_code b_attrs)
  && Pascal_ag.errors_of_attrs a_attrs = Pascal_ag.errors_of_attrs b_attrs

(* ------------------------------------------------------------------ *)
(* E10: fault injection                                                *)
(* ------------------------------------------------------------------ *)

let e10_faults () =
  let m = min 5 max_machines in
  sep
    (Printf.sprintf
       "[E10] Fault injection: reliable delivery and degradation (%d machines)"
       m);
  let base, cb = compile (opts m) in
  let reference = mask_asm cb.Driver.c_asm in
  (* No pinned timeouts: the runner auto-scales the retransmission horizon
     and the liveness watchdog to the workload (a machine acks nothing
     during a long static visit, so the horizon must exceed the longest
     compute phase — on the paper workload the auto-scaling lands at the
     5s / 20s this experiment used to hand-tune). *)
  let faulty spec = { (opts m) with Runner.faults = Some spec } in
  (* Overhead of the reliable layer when the network is in fact perfect:
     every message still pays an envelope and an acknowledgement. *)
  let zero, cz = compile (faulty Netsim.Faults.none) in
  Printf.printf "%-34s %8.2fs   %6d messages\n" "bare protocol" base.Runner.r_time
    base.Runner.r_messages;
  Printf.printf "%-34s %8.2fs   %6d messages   (+%.1f%% time, code %s)\n"
    "reliable layer, zero faults" zero.Runner.r_time zero.Runner.r_messages
    (100.0 *. ((zero.Runner.r_time /. base.Runner.r_time) -. 1.0))
    (if String.equal reference (mask_asm cz.Driver.c_asm) then "ok"
     else "MISMATCH");
  let zero_ok = String.equal reference (mask_asm cz.Driver.c_asm) in
  Printf.printf "\ndegradation sweep (dup = drop/2, seed 1):\n";
  Printf.printf "%-8s %-10s %-10s %-9s %-9s %-7s %-5s\n" "drop" "time"
    "slowdown" "dropped" "retrans" "recov" "code";
  let sweep =
    List.map
      (fun drop ->
        let spec =
          { Netsim.Faults.none with Netsim.Faults.fs_drop = drop; fs_dup = drop /. 2.0 }
        in
        let r, c = compile (faulty spec) in
        let dropped =
          match r.Runner.r_fault_stats with
          | Some fs -> fs.Netsim.Faults.st_dropped
          | None -> 0
        in
        let code_ok = String.equal reference (mask_asm c.Driver.c_asm) in
        Printf.printf "%-8.2f %8.2fs   x%-8.2f %-9d %-9d %-7b %s\n" drop
          r.Runner.r_time
          (r.Runner.r_time /. base.Runner.r_time)
          dropped r.Runner.r_retransmits r.Runner.r_recovered
          (if code_ok then "ok" else "MISMATCH");
        (drop, r, dropped, code_ok))
      [ 0.01; 0.02; 0.05; 0.1 ]
  in
  Printf.printf
    "\nexpected shape: zero-fault overhead small (acks are tiny frames);\n\
     running time degrades gracefully with the drop rate while the emitted\n\
     code stays identical — retransmission and deduplication mask every\n\
     injected fault.\n";
  let all_ok = zero_ok && List.for_all (fun (_, _, _, ok) -> ok) sweep in
  let oc = open_out "BENCH_2.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_2\",\n\
    \  \"bench\": \"fault injection: reliable-delivery overhead and \
     degradation under message loss\",\n\
    \  \"workload\": %S,\n\
    \  \"machines\": %d,\n\
    \  \"runs\": 1,\n\
    \  \"bare\": { \"time\": %.4f, \"messages\": %d },\n\
    \  \"reliable_zero_faults\": { \"time\": %.4f, \"messages\": %d, \
     \"overhead_percent\": %.2f, \"code_ok\": %b },\n\
    \  \"sweep\": [\n"
    workload_name m base.Runner.r_time base.Runner.r_messages
    zero.Runner.r_time zero.Runner.r_messages
    (100.0 *. ((zero.Runner.r_time /. base.Runner.r_time) -. 1.0))
    zero_ok;
  List.iteri
    (fun i (drop, r, dropped, code_ok) ->
      Printf.fprintf oc
        "    { \"drop\": %.2f, \"time\": %.4f, \"slowdown\": %.3f, \
         \"dropped\": %d, \"retransmits\": %d, \"recovered\": %b, \
         \"code_ok\": %b }%s\n"
        drop r.Runner.r_time
        (r.Runner.r_time /. base.Runner.r_time)
        dropped r.Runner.r_retransmits r.Runner.r_recovered code_ok
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf oc "  ],\n  \"all_code_ok\": %b\n}\n" all_ok;
  close_out oc;
  Printf.printf "wrote BENCH_2.json\n";
  if not all_ok then failwith "E10: compiled code diverged under faults"

let store_micro () =
  sep "[micro] BENCH_1: flat store + CSR graph vs seed hash store (dynamic)";
  let g = Pascal_ag.grammar in
  let tree = Pascal_ag.tree_of_program g (Progen.paper_program ()) in
  Printf.printf "workload: Progen.paper_program, %d tree nodes\n"
    (Pag_core.Tree.size tree);
  let runs = if quick then 2 else 5 in
  let measure f =
    ignore (f ());
    (* warmup *)
    Gc.compact ();
    (* both contenders start from a compacted major heap *)
    let a0 = Gc.allocated_bytes () in
    let t0 = Sys.time () in
    for _ = 1 to runs do
      ignore (f ())
    done;
    let dt = (Sys.time () -. t0) /. float_of_int runs in
    let db = (Gc.allocated_bytes () -. a0) /. float_of_int runs in
    (dt, db)
  in
  (* Scoped so both check stores are garbage before the timed runs — a live
     legacy store (hashtables over 276k instances) would tax every major GC
     cycle of the measurement. *)
  let flat_stats, agree =
    let legacy_store, legacy_stats = Legacy.Dynamic.eval g tree in
    let flat_store, flat_stats = Pag_eval.Dynamic.eval g tree in
    let agree =
      pascal_roots_agree
        (Pag_eval.Store.root_attrs flat_store)
        (Legacy.Store.root_attrs legacy_store)
      && Pag_eval.Store.missing flat_store = 0
      && Legacy.Store.missing legacy_store = 0
      && Pag_eval.Store.sets flat_store = Legacy.Store.sets legacy_store
      && flat_stats.Pag_eval.Dynamic.evals = legacy_stats.Legacy.Dynamic.evals
      && flat_stats.Pag_eval.Dynamic.edges = legacy_stats.Legacy.Dynamic.edges
    in
    (flat_stats, agree)
  in
  let legacy_t, legacy_b = measure (fun () -> Legacy.Dynamic.eval g tree) in
  let flat_t, flat_b = measure (fun () -> Pag_eval.Dynamic.eval g tree) in
  let evals = float_of_int flat_stats.Pag_eval.Dynamic.evals in
  let legacy_rate = evals /. legacy_t and flat_rate = evals /. flat_t in
  Printf.printf "\n%-28s %12s %14s %16s\n" "" "s/run" "evals/sec"
    "alloc bytes/run";
  Printf.printf "%-28s %12.3f %14.0f %16.0f\n" "seed hashtbl store" legacy_t
    legacy_rate legacy_b;
  Printf.printf "%-28s %12.3f %14.0f %16.0f\n" "flat store + CSR" flat_t
    flat_rate flat_b;
  Printf.printf
    "\nthroughput: x%.2f   allocation: x%.2f less   stores agree: %b\n"
    (flat_rate /. legacy_rate) (legacy_b /. flat_b) agree;
  let oc = open_out "BENCH_1.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_1\",\n\
    \  \"bench\": \"dynamic evaluator, flat store + CSR vs seed hashtbl \
     store\",\n\
    \  \"workload\": \"Progen.paper_program\",\n\
    \  \"tree_nodes\": %d,\n\
    \  \"instances\": %d,\n\
    \  \"edges\": %d,\n\
    \  \"evals_per_run\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"seed_hashtbl\": { \"seconds_per_run\": %.6f, \"evals_per_sec\": \
     %.0f, \"allocated_bytes_per_run\": %.0f },\n\
    \  \"flat_csr\": { \"seconds_per_run\": %.6f, \"evals_per_sec\": %.0f, \
     \"allocated_bytes_per_run\": %.0f },\n\
    \  \"throughput_speedup\": %.3f,\n\
    \  \"allocation_ratio\": %.3f,\n\
    \  \"stores_agree\": %b\n\
     }\n"
    (Pag_core.Tree.size tree)
    flat_stats.Pag_eval.Dynamic.instances flat_stats.Pag_eval.Dynamic.edges
    flat_stats.Pag_eval.Dynamic.evals runs legacy_t legacy_rate legacy_b
    flat_t flat_rate flat_b (flat_rate /. legacy_rate) (legacy_b /. flat_b)
    agree;
  close_out oc;
  Printf.printf "wrote BENCH_1.json\n";
  if not agree then failwith "BENCH_1: flat and seed stores disagree"

(* ------------------------------------------------------------------ *)
(* E11: observability overhead (BENCH_3)                               *)
(* ------------------------------------------------------------------ *)

let e11_observability () =
  let m = min 5 max_machines in
  sep
    (Printf.sprintf
       "[E11] Observability: telemetry recording overhead (%d machines)" m);
  let module Obs = Pag_obs.Obs in
  let runs = if quick then 3 else 5 in
  let wall f =
    ignore (f ());
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to runs do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int runs
  in
  let off = wall (fun () -> compile (opts m)) in
  let on_ =
    wall (fun () -> compile { (opts m) with Runner.telemetry = true })
  in
  let overhead = 100.0 *. ((on_ /. off) -. 1.0) in
  let r, _ = compile { (opts m) with Runner.telemetry = true } in
  let events =
    match r.Runner.r_obs with Some rec_ -> Obs.length rec_ | None -> 0
  in
  let reg = r.Runner.r_report.Obs.Report.rp_metrics in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 r.Runner.r_worker_stats in
  (* The registry is incremented independently of the legacy stats records
     at the same code points; any divergence is an instrumentation bug. *)
  let agree =
    Obs.Metrics.counter_value reg "worker.dynamic_rules"
    = sum (fun s -> s.Worker.ws_dynamic_rules)
    && Obs.Metrics.counter_value reg "worker.static_rules"
       = sum (fun s -> s.Worker.ws_static_rules)
    && Obs.Metrics.counter_value reg "worker.visits"
       = sum (fun s -> s.Worker.ws_visits)
    && Obs.Metrics.counter_value reg "worker.sends"
       = sum (fun s -> s.Worker.ws_sends)
    && Obs.Metrics.counter_value reg "net.bytes"
       = sum (fun s -> s.Worker.ws_bytes_flattened)
  in
  Printf.printf "%-30s %10.4fs wall clock per run\n" "telemetry disabled" off;
  Printf.printf "%-30s %10.4fs wall clock per run  (%+.2f%%)\n"
    "telemetry enabled" on_ overhead;
  Printf.printf "%-30s %10d spans/events/flows recorded\n" "event volume"
    events;
  Printf.printf "%-30s %10s\n" "registry = legacy stats"
    (if agree then "ok" else "MISMATCH");
  Printf.printf
    "\ntarget: enabled-vs-disabled overhead under ~2%% (recording is a\n\
     branch plus array stores; wall-clock noise on a sub-second run can\n\
     exceed the signal, so the number is recorded rather than asserted).\n";
  let oc = open_out "BENCH_3.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_3\",\n\
    \  \"bench\": \"telemetry recording overhead, combined evaluator, sim \
     transport\",\n\
    \  \"workload\": %S,\n\
    \  \"machines\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"disabled_seconds_per_run\": %.6f,\n\
    \  \"enabled_seconds_per_run\": %.6f,\n\
    \  \"overhead_percent\": %.3f,\n\
    \  \"events_recorded\": %d,\n\
    \  \"registry_matches_legacy_stats\": %b,\n\
    \  \"virtual_time_unchanged\": %b\n\
     }\n"
    workload_name m runs off on_ overhead events agree
    (let base, _ = compile (opts m) in
     Float.abs (base.Runner.r_time -. r.Runner.r_time) < 1e-9);
  close_out oc;
  Printf.printf "wrote BENCH_3.json\n";
  if not agree then failwith "E11: telemetry registry diverged from legacy stats"

(* ------------------------------------------------------------------ *)
(* E12: hash-consed values + DAG-shared subtree evaluation (BENCH_4)   *)
(* ------------------------------------------------------------------ *)

let e12_hashcons () =
  sep "[E12] Hash-consing + DAG-shared subtree evaluation (BENCH_4)";
  let routines = if quick then 4 else 6 in
  let reps = if quick then 120 else 300 in
  let workload_name =
    Printf.sprintf "Progen.repetitive routines=%d reps=%d" routines reps
  in
  let prog = Progen.repetitive ~routines ~reps () in
  let g = Pascal_ag.grammar in
  let tree = Pascal_ag.tree_of_program g prog in
  let plan = Lazy.force Driver.plan in
  Printf.printf "workload: %s, %d tree nodes\n" workload_name
    (Pag_core.Tree.size tree);
  let runs = if quick then 3 else 5 in
  let measure f =
    ignore (f ());
    (* warmup; also warms the intern arenas, which persist across runs *)
    Gc.compact ();
    let t0 = Sys.time () in
    for _ = 1 to runs do
      ignore (f ())
    done;
    (Sys.time () -. t0) /. float_of_int runs
  in
  (* --- sequential static evaluator, hash-consing off vs on --- *)
  let off_t = measure (fun () -> Pag_eval.Static_eval.eval plan tree) in
  let on_t =
    measure (fun () -> Pag_eval.Static_eval.eval ~hashcons:true plan tree)
  in
  let store_off, _ = Pag_eval.Static_eval.eval plan tree in
  let store_on, _ = Pag_eval.Static_eval.eval ~hashcons:true plan tree in
  let speedup = off_t /. on_t in
  (* memo-hit accounting through a telemetry context *)
  let obs = Pag_obs.Obs.make_ctx ~pid:0 ~clock:Sys.time in
  ignore (Pag_eval.Static_eval.eval ~obs ~hashcons:true plan tree);
  let memo_hits =
    Pag_obs.Obs.Metrics.counter_value obs.Pag_obs.Obs.x_metrics "eval.memo_hits"
  in
  let memo_misses =
    Pag_obs.Obs.Metrics.counter_value obs.Pag_obs.Obs.x_metrics
      "eval.memo_misses"
  in
  let hit_rate =
    if memo_hits + memo_misses = 0 then 0.0
    else float_of_int memo_hits /. float_of_int (memo_hits + memo_misses)
  in
  Printf.printf "\n%-28s %12s\n" "" "s/run";
  Printf.printf "%-28s %12.3f\n" "static, hashcons off" off_t;
  Printf.printf "%-28s %12.3f   (x%.2f)\n" "static, hashcons on" on_t speedup;
  Printf.printf "memo: %d hits / %d misses (%.1f%% hit rate)\n" memo_hits
    memo_misses (100.0 *. hit_rate);
  (* --- equivalence: byte-identical to hashcons-off, masked-equal to the
     oracle (firing order moves label numbers), output-equal to the
     reference interpreter through the VAX simulator --- *)
  let attrs st = Pag_eval.Store.root_attrs st in
  let byte_identical =
    String.equal
      (Pascal_ag.code_of_attrs (attrs store_on))
      (Pascal_ag.code_of_attrs (attrs store_off))
  in
  let oracle_ok =
    pascal_roots_agree (attrs store_on) (Pag_eval.Oracle.eval g tree |> attrs)
  in
  let dyn_on, _ = Pag_eval.Dynamic.eval ~hashcons:true g tree in
  let dyn_ok = pascal_roots_agree (attrs dyn_on) (attrs store_off) in
  let compiled =
    {
      Driver.c_asm = Pascal_ag.code_of_attrs (attrs store_on);
      c_errors = Pascal_ag.errors_of_attrs (attrs store_on);
    }
  in
  let interp_ok =
    match (Driver.run_compiled ~input:[] compiled, Interp.run prog) with
    | Ok a, Ok b -> String.equal a b
    | _ -> false
  in
  let stores_ok = byte_identical && oracle_ok && dyn_ok && interp_ok in
  Printf.printf
    "equivalence: off-identical %b, oracle %b, dynamic-memo %b, interpreter %b\n"
    byte_identical oracle_ok dyn_ok interp_ok;
  (* --- parallel run on the sim transport: bytes on the wire --- *)
  let m = min 4 max_machines in
  let plain, cp = Driver.compile_parallel_sim (opts m) prog in
  let hc, ch =
    Driver.compile_parallel_sim
      { (opts m) with Runner.use_hashcons = true }
      prog
  in
  let bytes_cut =
    1.0 -. (float_of_int hc.Runner.r_bytes /. float_of_int plain.Runner.r_bytes)
  in
  let parallel_ok = String.equal (mask_asm cp.Driver.c_asm) (mask_asm ch.Driver.c_asm) in
  Printf.printf "\nparallel (%d machines, sim):\n" m;
  Printf.printf "%-28s %8.2fs %10d messages %10d bytes\n" "hashcons off"
    plain.Runner.r_time plain.Runner.r_messages plain.Runner.r_bytes;
  Printf.printf "%-28s %8.2fs %10d messages %10d bytes   (-%.1f%% bytes)\n"
    "hashcons on" hc.Runner.r_time hc.Runner.r_messages hc.Runner.r_bytes
    (100.0 *. bytes_cut);
  Printf.printf "parallel code agrees: %b\n" parallel_ok;
  Printf.printf
    "\ntargets: sequential static speedup >= 1.5x, wire bytes cut >= 30%%,\n\
     all equivalence gates true.\n";
  let oc = open_out "BENCH_4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_4\",\n\
    \  \"bench\": \"hash-consed values + DAG-shared subtree evaluation vs \
     plain evaluation\",\n\
    \  \"workload\": %S,\n\
    \  \"tree_nodes\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"static_off_seconds_per_run\": %.6f,\n\
    \  \"static_on_seconds_per_run\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"memo_hits\": %d,\n\
    \  \"memo_misses\": %d,\n\
    \  \"memo_hit_rate\": %.4f,\n\
    \  \"parallel\": { \"machines\": %d, \"bytes_off\": %d, \"bytes_on\": \
     %d, \"bytes_reduction\": %.4f, \"messages_off\": %d, \"messages_on\": \
     %d, \"code_agrees\": %b },\n\
    \  \"stores_agree\": %b\n\
     }\n"
    workload_name (Pag_core.Tree.size tree) runs off_t on_t speedup memo_hits
    memo_misses hit_rate m plain.Runner.r_bytes hc.Runner.r_bytes bytes_cut
    plain.Runner.r_messages hc.Runner.r_messages parallel_ok stores_ok;
  close_out oc;
  Printf.printf "wrote BENCH_4.json\n";
  if not stores_ok then failwith "E12: hash-consed evaluation diverged"

(* ------------------------------------------------------------------ *)
(* E13: incremental re-evaluation (BENCH_5)                            *)
(* ------------------------------------------------------------------ *)

let replace_once ~needle ~by s =
  let n = String.length needle in
  let rec find i =
    if i + n > String.length s then None
    else if String.sub s i n = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      Some (String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n))
  | None -> None

(* Lockstep walk of two structurally equal trees comparing every attribute
   instance — the bit-equivalence gate for grammars that consume no unique
   identifiers. *)
let trees_agree g sa ta sb tb =
  let ok = ref true in
  let rec go (a : Pag_core.Tree.t) (b : Pag_core.Tree.t) =
    (match a.Pag_core.Tree.prod with
    | None -> ()
    | Some _ ->
        Array.iter
          (fun (ad : Pag_core.Grammar.attr_decl) ->
            match
              ( Pag_eval.Store.get_opt sa a ad.Pag_core.Grammar.a_name,
                Pag_eval.Store.get_opt sb b ad.Pag_core.Grammar.a_name )
            with
            | Some x, Some y ->
                if not (Pag_core.Value.equal x y) then ok := false
            | _ -> ok := false)
          (Pag_core.Grammar.symbol g a.Pag_core.Tree.sym).Pag_core.Grammar
            .s_attrs);
    Array.iteri
      (fun i c -> go c b.Pag_core.Tree.children.(i))
      a.Pag_core.Tree.children
  in
  go ta tb;
  !ok

let e13_incremental () =
  sep "[E13] Incremental re-evaluation: edit-driven recompilation (BENCH_5)";
  let g = Pascal_ag.grammar in
  (* The worked example is the editing workload; when the file is not
     around (bench run outside the repo root) a small inline program with
     the same edit site stands in. *)
  let path = "examples/primes.pas" in
  let base_src, e13_workload =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (s, path)
    end
    else
      ( "program tiny;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
        \  repeat\n    i := i * 2;\n    s := s + i\n  until i > 100;\n\
        \  write(s);\n  writeln\nend.\n",
        "inline fallback program" )
  in
  (* The single-statement edit: the doubling loop becomes a tripling loop,
     and back. *)
  let variant_src =
    match replace_once ~needle:"i := i * 2" ~by:"i := i * 3" base_src with
    | Some s -> s
    | None -> failwith "E13: edit site not found in the base source"
  in
  let tree_of src = Pascal_ag.tree_of_program g (Parser.parse_program src) in
  let base_tree = tree_of base_src in
  Printf.printf "workload: %s, %d tree nodes; edit: i := i * 2 -> * 3\n"
    e13_workload
    (Pag_core.Tree.size base_tree);
  let session = Pag_eval.Incr.start g base_tree in
  let reps = if quick then 12 else 40 in
  let incr_t = ref 0.0 and scratch_t = ref 0.0 in
  let dirty = ref 0 and refired = ref 0 and cutoff = ref 0 in
  let fallbacks = ref 0 in
  let code_ok = ref true in
  for k = 1 to reps do
    let src = if k land 1 = 1 then variant_src else base_src in
    (* Two builds of the same source: the session and the from-scratch
       baseline must never share a physical tree (evaluation numbers the
       nodes). Builds are excluded from both timings. *)
    let edit_tree = tree_of src in
    let fresh = tree_of src in
    let t0 = Sys.time () in
    let st = Pag_eval.Incr.edit session edit_tree in
    incr_t := !incr_t +. Sys.time () -. t0;
    let t1 = Sys.time () in
    let scratch, _ = Pag_eval.Dynamic.eval g fresh in
    scratch_t := !scratch_t +. Sys.time () -. t1;
    dirty := !dirty + st.Pag_eval.Incr.ed_dirty;
    refired := !refired + st.Pag_eval.Incr.ed_refired;
    cutoff := !cutoff + st.Pag_eval.Incr.ed_cutoff;
    if st.Pag_eval.Incr.ed_fallback then incr fallbacks;
    (* Label numbers depend on firing order; the emitted instructions must
       not. *)
    code_ok :=
      !code_ok
      && pascal_roots_agree
           (Pag_eval.Store.root_attrs (Pag_eval.Incr.store session))
           (Pag_eval.Store.root_attrs scratch)
  done;
  let incr_avg = !incr_t /. float_of_int reps in
  let scratch_avg = !scratch_t /. float_of_int reps in
  let speedup = scratch_avg /. incr_avg in
  let live_rules =
    Pag_core.Tree.fold
      (fun acc (n : Pag_core.Tree.t) ->
        match n.Pag_core.Tree.prod with
        | None -> acc
        | Some p -> acc + Array.length p.Pag_core.Grammar.p_rules)
      0 base_tree
  in
  Printf.printf "\n%-34s %14s\n" "" "s/edit";
  Printf.printf "%-34s %14.6f\n" "from-scratch (dynamic)" scratch_avg;
  Printf.printf "%-34s %14.6f   (x%.1f)\n" "incremental" incr_avg speedup;
  Printf.printf
    "dirty %.0f / %d rules per edit, refired %.0f, cutoff %.0f, %d \
     fallbacks; code %s\n"
    (float_of_int !dirty /. float_of_int reps)
    live_rules
    (float_of_int !refired /. float_of_int reps)
    (float_of_int !cutoff /. float_of_int reps)
    !fallbacks
    (if !code_ok then "ok" else "MISMATCH");
  (* --- bit-equivalence on a grammar that consumes no unique ids --- *)
  let expr_ok =
    let eg = Pag_grammars.Expr_ag.grammar in
    let t seed =
      Pag_grammars.Expr_ag.random_program (Random.State.make [| seed |])
        ~depth:7
    in
    let s = Pag_eval.Incr.start eg (t 1) in
    List.for_all
      (fun seed ->
        ignore (Pag_eval.Incr.edit s (t seed));
        let fresh = t seed in
        let scratch, _ = Pag_eval.Dynamic.eval eg fresh in
        trees_agree eg (Pag_eval.Incr.store s) (Pag_eval.Incr.tree s) scratch
          fresh)
      [ 2; 3; 2; 4; 1 ]
  in
  Printf.printf "expr edits bit-identical to from-scratch: %b\n" expr_ok;
  (* --- the distributed wave: what the edit costs on the wire --- *)
  let m = min 4 max_machines in
  let sp =
    Session.spec ~granularity:0.1 ~librarian:false
      ~phase_label:Driver.phase_label m
  in
  let full =
    Runner.run_sim (Session.options sp) g (Some (Lazy.force Driver.plan))
      (tree_of base_src)
  in
  let es = Session.open_session sp g (tree_of base_src) in
  let waves =
    List.map
      (fun src -> Session.edit es (tree_of src))
      [ variant_src; base_src; variant_src; base_src ]
  in
  let avg f = List.fold_left (fun a r -> a +. f r) 0.0 waves /. 4.0 in
  let bytes_incr = avg (fun r -> float_of_int r.Session.er_bytes_incr) in
  let bytes_full = avg (fun r -> float_of_int r.Session.er_bytes_full) in
  let latency = avg (fun r -> r.Session.er_latency) in
  let boundary_changed =
    avg (fun r -> float_of_int r.Session.er_boundary_changed)
  in
  let boundary_total =
    avg (fun r -> float_of_int r.Session.er_boundary_total)
  in
  Printf.printf "\ndistributed wave (%d machines, sim):\n" m;
  Printf.printf
    "%-34s %10.0f bytes/edit vs %10.0f full  (-%.1f%%)\n" "wire"
    bytes_incr bytes_full
    (100.0 *. (1.0 -. (bytes_incr /. bytes_full)));
  Printf.printf "%-34s %10.4fs vs %10.4fs full recompile\n" "latency" latency
    full.Runner.r_time;
  Printf.printf "%-34s %10.1f of %.1f changed\n" "boundary attributes"
    boundary_changed boundary_total;
  Printf.printf
    "\ntargets: incremental >= 5x from-scratch on a single-statement edit;\n\
     emitted code identical (modulo label numbering); expr attribute\n\
     values bit-identical.\n";
  let all_ok = speedup >= 5.0 && !code_ok && expr_ok in
  let oc = open_out "BENCH_5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_5\",\n\
    \  \"bench\": \"incremental re-evaluation: single-statement edit vs \
     from-scratch recompilation\",\n\
    \  \"workload\": %S,\n\
    \  \"tree_nodes\": %d,\n\
    \  \"rule_instances\": %d,\n\
    \  \"edits\": %d,\n\
    \  \"scratch_seconds_per_edit\": %.6f,\n\
    \  \"incremental_seconds_per_edit\": %.6f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"avg_dirty\": %.1f,\n\
    \  \"avg_refired\": %.1f,\n\
    \  \"avg_cutoff\": %.1f,\n\
    \  \"fallbacks\": %d,\n\
    \  \"code_ok\": %b,\n\
    \  \"expr_bit_identical\": %b,\n\
    \  \"distributed\": { \"machines\": %d, \"bytes_per_edit\": %.0f, \
     \"bytes_full_recompile\": %.0f, \"latency\": %.6f, \
     \"full_recompile_latency\": %.6f, \"boundary_changed\": %.1f, \
     \"boundary_total\": %.1f },\n\
    \  \"speedup_ge_5\": %b\n\
     }\n"
    e13_workload
    (Pag_core.Tree.size base_tree)
    live_rules reps scratch_avg incr_avg speedup
    (float_of_int !dirty /. float_of_int reps)
    (float_of_int !refired /. float_of_int reps)
    (float_of_int !cutoff /. float_of_int reps)
    !fallbacks !code_ok expr_ok m bytes_incr bytes_full latency
    full.Runner.r_time boundary_changed boundary_total (speedup >= 5.0);
  close_out oc;
  Printf.printf "wrote BENCH_5.json\n";
  if not all_ok then failwith "E13: incremental re-evaluation gate failed"

(* ------------------------------------------------------------------ *)
(* E14: work-stealing instance scheduler (BENCH_6)                     *)
(* ------------------------------------------------------------------ *)

let e14_steal () =
  sep "[E14] Work-stealing scheduler vs static fragment schedule (BENCH_6)";
  let chain = if quick then 200 else 400 in
  let skewed_prog = Progen.skewed_program ~chain () in
  let skewed_name = Printf.sprintf "Progen.skewed_program chain=%d" chain in
  let balanced_prog = Lazy.force workload in
  let machine_counts =
    if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  let opts_s ~schedule m =
    Session.options
      (Session.spec ~schedule ~phase_label:Driver.phase_label m)
  in
  (* One sweep: combined static fragments vs work stealing, same workload,
     same machine counts. The equivalence gate compares every run's masked
     assembly against the 1-machine combined run (label numbers depend on
     uid striping, the instruction stream must not). *)
  let sweep name prog =
    Printf.printf "\n%s:\n" name;
    Printf.printf "%-9s %-12s %-12s %-10s %-6s\n" "machines" "combined"
      "steal" "ratio" "code";
    let reference = ref "" in
    List.map
      (fun m ->
        let rc, cc =
          Driver.compile_parallel_sim (opts_s ~schedule:`Static m) prog
        in
        let rs, cs =
          Driver.compile_parallel_sim (opts_s ~schedule:`Steal m) prog
        in
        if m = 1 then reference := mask_asm cc.Driver.c_asm;
        let code_ok =
          String.equal !reference (mask_asm cc.Driver.c_asm)
          && String.equal !reference (mask_asm cs.Driver.c_asm)
        in
        let ratio = rc.Runner.r_time /. rs.Runner.r_time in
        Printf.printf "%-9d %10.2fs %10.2fs   x%-8.2f %s\n" m
          rc.Runner.r_time rs.Runner.r_time ratio
          (if code_ok then "ok" else "MISMATCH");
        (m, rc.Runner.r_time, rs.Runner.r_time, ratio, code_ok))
      machine_counts
  in
  let skew_rows = sweep skewed_name skewed_prog in
  let bal_rows = sweep workload_name balanced_prog in
  let ratio_at rows m =
    List.fold_left
      (fun acc (m', _, _, r, _) -> if m' = m then r else acc)
      nan rows
  in
  let skew_ratio = ratio_at skew_rows 8 in
  let bal_ratio = ratio_at bal_rows 8 in
  (* steal-traffic counters on the headline configuration *)
  let r8, _ =
    Driver.compile_parallel_sim
      { (opts_s ~schedule:`Steal 8) with Runner.telemetry = true }
      skewed_prog
  in
  let reg8 = r8.Runner.r_report.Pag_obs.Obs.Report.rp_metrics in
  let cv n = Pag_obs.Obs.Metrics.counter_value reg8 n in
  Printf.printf
    "\nsteal traffic (skewed, 8 machines): %d fires, %d probe attempts, %d \
     hits, %d instances stolen\n"
    (cv "steal.fires") (cv "steal.attempts") (cv "steal.successes")
    (cv "steal.stolen");
  (* real-domains runs: OCaml 5 domains through Engine.run_steal; on this
     container (one core) only the equivalence result is meaningful, so the
     wall-clock time is recorded, not gated. *)
  let dm = if quick then 2 else 4 in
  let domains_rows =
    List.map
      (fun (name, prog) ->
        let rd, cd =
          Driver.compile_parallel_domains (opts_s ~schedule:`Steal dm) prog
        in
        let seq = Driver.compile ~evaluator:`Static prog in
        let ok =
          String.equal (mask_asm cd.Driver.c_asm) (mask_asm seq.Driver.c_asm)
        in
        Printf.printf "domains (%d): %-38s %8.3fs wall  code %s\n" dm name
          rd.Runner.r_time
          (if ok then "ok" else "MISMATCH");
        (name, rd.Runner.r_time, ok))
      [ (workload_name, balanced_prog); (skewed_name, skewed_prog) ]
  in
  let all_code_ok =
    List.for_all (fun (_, _, _, _, ok) -> ok) (skew_rows @ bal_rows)
    && List.for_all (fun (_, _, ok) -> ok) domains_rows
  in
  let skew_gate = skew_ratio >= 1.2 in
  let bal_gate = bal_ratio >= 0.95 in
  Printf.printf
    "\ntargets: steal >= 1.2x combined on the skewed workload at 8 machines\n\
     (got x%.2f), >= 0.95x on the balanced workload (got x%.2f), masked\n\
     code identical on every swept configuration (%b).\n"
    skew_ratio bal_ratio all_code_ok;
  let row_json (m, tc, ts, r, ok) =
    Printf.sprintf
      "    { \"machines\": %d, \"combined\": %.4f, \"steal\": %.4f, \
       \"ratio\": %.3f, \"code_ok\": %b }"
      m tc ts r ok
  in
  let rows_json rows = String.concat ",\n" (List.map row_json rows) in
  let oc = open_out "BENCH_6.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_6\",\n\
    \  \"bench\": \"work-stealing instance scheduler vs static fragment \
     schedule (sim)\",\n\
    \  \"balanced_workload\": %S,\n\
    \  \"skewed_workload\": %S,\n\
    \  \"skewed\": [\n%s\n  ],\n\
    \  \"balanced\": [\n%s\n  ],\n\
    \  \"steal_at_8_skewed\": { \"fires\": %d, \"attempts\": %d, \
     \"successes\": %d, \"stolen\": %d },\n\
    \  \"domains\": [\n%s\n  ],\n\
    \  \"skewed_ratio_at_8\": %.3f,\n\
    \  \"balanced_ratio_at_8\": %.3f,\n\
    \  \"gates\": { \"skewed_ge_1_2\": %b, \"balanced_ge_0_95\": %b, \
     \"all_code_ok\": %b }\n\
     }\n"
    workload_name skewed_name (rows_json skew_rows) (rows_json bal_rows)
    (cv "steal.fires") (cv "steal.attempts") (cv "steal.successes")
    (cv "steal.stolen")
    (String.concat ",\n"
       (List.map
          (fun (n, t, ok) ->
            Printf.sprintf
              "    { \"workload\": %S, \"machines\": %d, \"wall_seconds\": \
               %.4f, \"code_ok\": %b }"
              n dm t ok)
          domains_rows))
    skew_ratio bal_ratio skew_gate bal_gate all_code_ok;
  close_out oc;
  Printf.printf "wrote BENCH_6.json\n";
  if not (skew_gate && bal_gate && all_code_ok) then
    failwith "E14: work-stealing gate failed"

(* ------------------------------------------------------------------ *)
(* E15: multi-tenant compile service (BENCH_7)                         *)
(* ------------------------------------------------------------------ *)

(* Sustained edit throughput and latency percentiles of the resident
   compile service: N concurrent edit sessions multiplexed over a bounded
   worker set, on the netsim machine model (virtual time, shared
   Ethernet) and on real domains (wall time). Tenants draw from three
   small program families; every swept configuration is gated on each
   tenant's final masked code equalling an isolated single-session replay
   of the same edit stream. *)
let e15_service () =
  sep "[E15] Multi-tenant compile service: resident session pool (BENCH_7)";
  let g = Pascal_ag.grammar in
  let src family rhs =
    Printf.sprintf
      "program p;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
      \  repeat\n    i := i * %d;\n    s := %s\n  until i > 100;\n\
      \  write(s)\nend.\n"
      (family + 2) rhs
  in
  let tree family rhs =
    Pascal_ag.tree_of_program g (Parser.parse_program (src family rhs))
  in
  let families = 3 in
  (* each tenant's stream: base -> structural edit -> back to base *)
  let base = "s + i" and alt = "s + i * 2" in
  let stream edits = if edits >= 2 then [ alt; base ] else [ alt ] in
  (* one isolated reference session per family: the masked code every
     tenant of that family must end on *)
  let reference ~edits family =
    let es =
      Session.open_session
        (Session.spec ~granularity:0.1 ~librarian:false 2)
        g (tree family base)
    in
    List.iter (fun rhs -> ignore (Session.edit es (tree family rhs))) (stream edits);
    masked_code (Pag_eval.Store.root_attrs (Session.store es))
  in
  let run ~net ~transport ~sessions ~workers ~policy ~hashcons ~edits =
    let sv =
      Service.create (Service.config ~policy ~transport ~hashcons ~net workers) g
    in
    for i = 0 to sessions - 1 do
      Service.open_tenant sv (Printf.sprintf "t%06d" i) (tree (i mod families) base)
    done;
    List.iter
      (fun rhs ->
        for i = 0 to sessions - 1 do
          ignore
            (Service.submit sv (Printf.sprintf "t%06d" i) (tree (i mod families) rhs))
        done;
        Service.run_round sv)
      (stream edits);
    Service.drain sv;
    let refs = Array.init families (fun f -> reference ~edits f) in
    let finals_ok = ref true in
    for i = 0 to sessions - 1 do
      let code =
        masked_code
          (Pag_eval.Store.root_attrs
             (Service.tenant_store sv (Printf.sprintf "t%06d" i)))
      in
      if not (String.equal code refs.(i mod families)) then finals_ok := false
    done;
    (Service.stats sv, !finals_ok)
  in
  let policy_name = function
    | Service.Round_robin -> "round-robin"
    | Service.Shortest_queue -> "shortest-queue"
  in
  let transport_name = function `Sim -> "sim" | `Domains -> "domains" in
  Printf.printf "%-9s %-9s %-9s %-8s %-15s %-9s %-12s %-10s %-10s %-5s\n"
    "transport" "net" "sessions" "workers" "policy" "hashcons" "edits/sec"
    "p50 ms" "p99 ms" "code";
  let row ?(net = Netsim.Ethernet.default_params) ~transport ~sessions ~workers
      ~policy ~hashcons ~edits () =
    let netname = if net.Netsim.Ethernet.switched then "switched" else "shared" in
    let st, finals_ok =
      run ~net ~transport ~sessions ~workers ~policy ~hashcons ~edits
    in
    Printf.printf "%-9s %-9s %-9d %-8d %-15s %-9b %12.1f %10.3f %10.3f %s\n"
      (transport_name transport) netname sessions workers (policy_name policy)
      hashcons st.Service.st_edits_per_sec
      (st.Service.st_p50 *. 1e3)
      (st.Service.st_p99 *. 1e3)
      (if finals_ok then "ok" else "MISMATCH");
    (transport, netname, sessions, workers, policy, hashcons, st, finals_ok)
  in
  (* netsim sweep: both policies x hashcons at each session count, plus a
     single large row (10k sessions, one edit each) in full mode *)
  let session_counts = [ 100; 1000 ] in
  let sim_workers = 8 in
  let small_rows =
    List.concat_map
      (fun sessions ->
        List.concat_map
          (fun policy ->
            List.map
              (fun hashcons ->
                row ~transport:`Sim ~sessions ~workers:sim_workers ~policy
                  ~hashcons ~edits:2 ())
              [ false; true ])
          [ Service.Round_robin; Service.Shortest_queue ])
      session_counts
  in
  (* The shared medium is the only bottleneck above, so both admission
     policies price alike (the rows are bit-identical). The switched
     fabric gives every worker its own full-bandwidth port, which makes
     the assignment observable — and a skewed queue-depth mix (every
     tenth tenant queues an 8-edit stream, the rest one edit) gives the
     policies something to disagree about: shortest-queue must now beat
     round-robin. *)
  let switched_row policy =
    let sessions = 1000 in
    let heavy = [ alt; base; alt; base; alt; base; alt; base ] in
    let light = [ alt ] in
    let sv =
      Service.create
        (Service.config ~policy ~net:Netsim.Ethernet.switched_params
           sim_workers)
        g
    in
    for i = 0 to sessions - 1 do
      Service.open_tenant sv (Printf.sprintf "t%06d" i) (tree (i mod families) base)
    done;
    for i = 0 to sessions - 1 do
      List.iter
        (fun rhs ->
          ignore (Service.submit sv (Printf.sprintf "t%06d" i) (tree (i mod families) rhs)))
        (if i mod 10 = 0 then heavy else light)
    done;
    Service.drain sv;
    let replay family rhss =
      let es =
        Session.open_session
          (Session.spec ~granularity:0.1 ~librarian:false 2)
          g (tree family base)
      in
      List.iter (fun rhs -> ignore (Session.edit es (tree family rhs))) rhss;
      masked_code (Pag_eval.Store.root_attrs (Session.store es))
    in
    let ref_heavy = Array.init families (fun f -> replay f heavy) in
    let ref_light = Array.init families (fun f -> replay f light) in
    let finals_ok = ref true in
    for i = 0 to sessions - 1 do
      let code =
        masked_code
          (Pag_eval.Store.root_attrs
             (Service.tenant_store sv (Printf.sprintf "t%06d" i)))
      in
      let want =
        (if i mod 10 = 0 then ref_heavy else ref_light).(i mod families)
      in
      if not (String.equal code want) then finals_ok := false
    done;
    let st = Service.stats sv in
    Printf.printf "%-9s %-9s %-9d %-8d %-15s %-9b %12.1f %10.3f %10.3f %s\n"
      "sim" "switched" sessions sim_workers (policy_name policy) false
      st.Service.st_edits_per_sec
      (st.Service.st_p50 *. 1e3)
      (st.Service.st_p99 *. 1e3)
      (if !finals_ok then "ok" else "MISMATCH");
    (`Sim, "switched", sessions, sim_workers, policy, false, st, !finals_ok)
  in
  let switched_rows =
    List.map switched_row [ Service.Round_robin; Service.Shortest_queue ]
  in
  let big_rows =
    if quick then []
    else
      [
        row ~transport:`Sim ~sessions:10_000 ~workers:sim_workers
          ~policy:Service.Round_robin ~hashcons:false ~edits:1 ();
      ]
  in
  let sim_rows = small_rows @ switched_rows @ big_rows in
  (* real domains: wall-clock rows up to the core count, hashcons off (the
     intern arena is not domain-safe; the service then serialises) *)
  let cores = Domain.recommended_domain_count () in
  let domain_workers =
    List.filter (fun w -> w <= cores) [ 1; 2; 4; 8 ]
    |> fun ws -> if ws = [] then [ 1 ] else ws
  in
  let dom_sessions = if quick then 16 else 64 in
  let dom_rows =
    List.map
      (fun workers ->
        row ~transport:`Domains ~sessions:dom_sessions ~workers
          ~policy:Service.Round_robin ~hashcons:false ~edits:2 ())
      domain_workers
  in
  let all_rows = sim_rows @ dom_rows in
  let all_finals_ok =
    List.for_all (fun (_, _, _, _, _, _, _, ok) -> ok) all_rows
  in
  let big_row_ok =
    List.exists
      (fun (tr, _, sessions, _, _, _, _, _) -> tr = `Sim && sessions >= 1000)
      all_rows
  in
  let switched_p50 policy =
    List.find_map
      (fun (_, net, _, _, p, _, st, _) ->
        if net = "switched" && p = policy then Some st.Service.st_p50 else None)
      all_rows
  in
  let policy_sensitive =
    match
      (switched_p50 Service.Shortest_queue, switched_p50 Service.Round_robin)
    with
    | Some sq, Some rr -> sq < rr
    | _ -> false
  in
  Printf.printf
    "\ntargets: every swept config's per-tenant finals masked-equal to an\n\
     isolated session replay (%b); a netsim row at >= 1000 concurrent\n\
     sessions (%b); the switched fabric separates shortest-queue from\n\
     round-robin (%b).\n"
    all_finals_ok big_row_ok policy_sensitive;
  let row_json (tr, net, sessions, workers, policy, hashcons, st, ok) =
    Printf.sprintf
      "    { \"transport\": %S, \"net\": %S, \"sessions\": %d, \
       \"workers\": %d, \"policy\": %S, \"hashcons\": %b, \"edits\": %d, \
       \"rounds\": %d, \"edits_per_sec\": %.2f, \"p50_ms\": %.4f, \
       \"p99_ms\": %.4f, \"rejected\": %d, \"evictions\": %d, \
       \"retransmits\": %d, \"finals_ok\": %b }"
      (transport_name tr) net sessions workers (policy_name policy) hashcons
      st.Service.st_edits st.Service.st_rounds st.Service.st_edits_per_sec
      (st.Service.st_p50 *. 1e3)
      (st.Service.st_p99 *. 1e3)
      st.Service.st_rejected st.Service.st_evictions st.Service.st_retransmits
      ok
  in
  let oc = open_out "BENCH_7.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_7\",\n\
    \  \"bench\": \"multi-tenant compile service: resident session pool \
     under admission scheduling\",\n\
    \  \"program_families\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"gates\": { \"all_finals_ok\": %b, \"netsim_ge_1000_sessions\": %b, \
     \"switched_policy_sensitive\": %b }\n\
     }\n"
    families
    (String.concat ",\n" (List.map row_json all_rows))
    all_finals_ok big_row_ok policy_sensitive;
  close_out oc;
  Printf.printf "wrote BENCH_7.json\n";
  if not (all_finals_ok && big_row_ok && policy_sensitive) then
    failwith "E15: multi-tenant service gate failed"

(* ------------------------------------------------------------------ *)
(* E16: provenance recording overhead (BENCH_8)                        *)
(* ------------------------------------------------------------------ *)

type e16_row = {
  p_name : string;
  p_vt : float;
  p_vt_ok : bool;
  p_code_ok : bool;
  p_off : float;
  p_trace : float;
  p_prov : float;
  p_trace_ratio : float;
  p_prov_ratio : float;
  p_noise : float;
  p_firings : int;
  p_dropped : int;
  p_gate : bool;
}

(* CPU cost of the per-firing provenance ring against trace-only
   telemetry and the all-off baseline, on the paper workload and the
   skewed generator at 8 netsim machines under the stealing scheduler
   (the BENCH_6 headline configuration). Simulated virtual time is
   deterministic, so "the disabled path is within noise of the PR-6
   numbers" is asserted in its exact form: all three configurations must
   report bit-identical virtual times and masked assembly — recording
   must never perturb the schedule. Real cost is measured as process CPU
   time ([Sys.time]) over batches of compiles, with the configurations
   interleaved inside every round and compared as per-round ratios; the
   median ratio cancels the slow drift a shared container superimposes on
   back-to-back timings, which wall-clock medians of isolated samples do
   not (their round-to-round spread exceeds the recording cost itself).
   The gate is median prov/off ratio < 1.05 plus a noise allowance
   measured the same way: the spread of off/off ratios across rounds —
   the apparatus's own disagreement when comparing a configuration
   against itself. *)
let e16_provenance () =
  sep "[E16] Provenance recording overhead at 8 machines (BENCH_8)";
  let machines = 8 in
  let rounds = if quick then 5 else 7 in
  let batch = if quick then 4 else 6 in
  let chain = if quick then 200 else 400 in
  let skewed_prog = Progen.skewed_program ~chain () in
  let skewed_name = Printf.sprintf "Progen.skewed_program chain=%d" chain in
  let base_opts =
    Session.options
      (Session.spec ~schedule:`Steal ~phase_label:Driver.phase_label machines)
  in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let measure name prog =
    Printf.printf "\n%s:\n" name;
    let opt_trace = { base_opts with Runner.telemetry = true } in
    let opt_prov = { base_opts with Runner.provenance = true } in
    let r_off, c_off = Driver.compile_parallel_sim base_opts prog in
    let r_trace, c_trace = Driver.compile_parallel_sim opt_trace prog in
    let r_prov, c_prov = Driver.compile_parallel_sim opt_prov prog in
    let p_vt_ok =
      r_off.Runner.r_time = r_trace.Runner.r_time
      && r_off.Runner.r_time = r_prov.Runner.r_time
    in
    let p_code_ok =
      let reference = mask_asm c_off.Driver.c_asm in
      String.equal reference (mask_asm c_trace.Driver.c_asm)
      && String.equal reference (mask_asm c_prov.Driver.c_asm)
    in
    let sum f =
      List.fold_left (fun n (p, _) -> n + f p) 0 r_prov.Runner.r_prov
    in
    let p_firings = sum Pag_obs.Prov.total in
    let p_dropped = sum Pag_obs.Prov.dropped in
    (* One sample = CPU seconds per compile over a batch; one round =
       off / off / trace / prov back to back, the second off batch
       pricing the apparatus itself. *)
    let cpu o =
      let t0 = Sys.time () in
      for _ = 1 to batch do
        ignore (Driver.compile_parallel_sim o prog)
      done;
      (Sys.time () -. t0) /. float_of_int batch
    in
    ignore (cpu base_opts);
    ignore (cpu opt_prov);
    (* warmup *)
    let round () =
      let off = cpu base_opts in
      let off' = cpu base_opts in
      let trace = cpu opt_trace in
      let prov = cpu opt_prov in
      (off, off' /. off, trace /. off, prov /. off)
    in
    let rs = List.init rounds (fun _ -> round ()) in
    let p_off = median (List.map (fun (o, _, _, _) -> o) rs) in
    let self = List.map (fun (_, s, _, _) -> s) rs in
    let p_trace_ratio = median (List.map (fun (_, _, t, _) -> t) rs) in
    let p_prov_ratio = median (List.map (fun (_, _, _, p) -> p) rs) in
    let p_noise =
      List.fold_left (fun m s -> max m (abs_float (s -. 1.0))) 0.0 self
    in
    let p_trace = p_off *. p_trace_ratio in
    let p_prov = p_off *. p_prov_ratio in
    let pct r = 100.0 *. (r -. 1.0) in
    let p_gate = p_prov_ratio <= 1.05 +. p_noise in
    Printf.printf "%-24s %10.4fs cpu/run\n" "all off" p_off;
    Printf.printf "%-24s %10.4fs cpu/run  (%+.2f%%)\n" "trace only" p_trace
      (pct p_trace_ratio);
    Printf.printf "%-24s %10.4fs cpu/run  (%+.2f%%)  %d firings, %d dropped\n"
      "provenance ring" p_prov (pct p_prov_ratio) p_firings p_dropped;
    Printf.printf "%-24s %9.2f%%   virtual %s, code %s\n"
      "off-vs-off noise" (100.0 *. p_noise)
      (if p_vt_ok then "identical" else "PERTURBED")
      (if p_code_ok then "ok" else "MISMATCH");
    {
      p_name = name;
      p_vt = r_off.Runner.r_time;
      p_vt_ok;
      p_code_ok;
      p_off;
      p_trace;
      p_prov;
      p_trace_ratio;
      p_prov_ratio;
      p_noise;
      p_firings;
      p_dropped;
      p_gate;
    }
  in
  let rows =
    [
      measure workload_name (Lazy.force workload); measure skewed_name skewed_prog;
    ]
  in
  let vt_gate = List.for_all (fun r -> r.p_vt_ok) rows in
  let code_gate = List.for_all (fun r -> r.p_code_ok) rows in
  let drop_gate = List.for_all (fun r -> r.p_dropped = 0) rows in
  let overhead_gate = List.for_all (fun r -> r.p_gate) rows in
  Printf.printf
    "\ntargets: virtual time and masked code identical across all-off /\n\
     trace-only / provenance (%b, %b — the disabled path cannot regress a\n\
     schedule it never observes), no ring overflow (%b), provenance CPU\n\
     overhead < 5%% of baseline plus the off-vs-off noise allowance (%b).\n"
    vt_gate code_gate drop_gate overhead_gate;
  let row_json r =
    Printf.sprintf
      "    { \"workload\": %S, \"virtual_seconds\": %.4f, \
       \"virtual_identical\": %b, \"code_ok\": %b, \"off_cpu_s\": %.6f, \
       \"trace_cpu_s\": %.6f, \"prov_cpu_s\": %.6f, \
       \"trace_cpu_ratio\": %.4f, \"prov_cpu_ratio\": %.4f, \
       \"noise_ratio\": %.4f, \"firings\": %d, \"dropped\": %d, \
       \"overhead_gate_ok\": %b }"
      r.p_name r.p_vt r.p_vt_ok r.p_code_ok r.p_off r.p_trace r.p_prov
      r.p_trace_ratio r.p_prov_ratio r.p_noise r.p_firings r.p_dropped r.p_gate
  in
  let oc = open_out "BENCH_8.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_8\",\n\
    \  \"bench\": \"provenance ring recording overhead: all-off vs \
     trace-only vs provenance (steal schedule, sim transport)\",\n\
    \  \"machines\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"compiles_per_batch\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"gates\": { \"virtual_time_identical\": %b, \"code_identical\": %b, \
     \"nothing_dropped\": %b, \"prov_overhead_lt_5pct\": %b }\n\
     }\n"
    machines rounds batch
    (String.concat ",\n" (List.map row_json rows))
    vt_gate code_gate drop_gate overhead_gate;
  close_out oc;
  Printf.printf "wrote BENCH_8.json\n";
  if not (vt_gate && code_gate && drop_gate && overhead_gate) then
    failwith "E16: provenance overhead gate failed"

(* ------------------------------------------------------------------ *)
(* E17: parallel batched self-adjusting re-evaluation (BENCH_9)        *)
(* ------------------------------------------------------------------ *)

(* Merged dirty cones vs one-at-a-time incremental edits. The workload is
   a Pascal program with K independent edit sites (K assignment statements
   whose constants change); applying all K edits as one batch merges K
   disjoint dirty cones into a single co-scheduled refire wave — one
   dispatch, steal-shared rounds, one result — where serial application
   pays K full round trips. Gates: batched throughput >= 3x serial at 8
   netsim machines, finals masked-equal to the serial session AND a
   from-scratch compile on every swept config, a real-domains wave with
   equal finals, the batched service sweep at 1k sessions halving the
   re-measured serial p50, and provenance blame accounting for exactly the
   wave's fired work. *)
let e17_batched () =
  sep "[E17] Batched edit waves: merged cones vs one-at-a-time (BENCH_9)";
  let g = Pascal_ag.grammar in
  let sites = if quick then 6 else 12 in
  let src cs =
    let stmts = List.map (fun c -> Printf.sprintf "    s := s + i * %d" c) cs in
    Printf.sprintf
      "program p;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
      \  repeat\n    i := i * 2;\n%s\n  until i > 100;\n  write(s)\nend.\n"
      (String.concat ";\n" stmts)
  in
  let tree cs = Pascal_ag.tree_of_program g (Parser.parse_program (src cs)) in
  let base = List.init sites (fun k -> k + 2) in
  (* step j: sites 0..j-1 already edited (constant bumped by 100) — so the
     batch [step 1; ...; step K] is K single-site edits, each independent
     of every other's dirty cone *)
  let step j = List.init sites (fun k -> if k < j then k + 102 else k + 2) in
  let steps = List.init sites (fun j -> step (j + 1)) in
  let final_ref =
    let scratch, _ = Pag_eval.Dynamic.eval g (tree (step sites)) in
    masked_code (Pag_eval.Store.root_attrs scratch)
  in
  let session machines =
    Session.open_session ~frontier:1.0
      (Session.spec ~granularity:0.05 ~librarian:false ~schedule:`Steal
         machines)
      g (tree base)
  in
  let masked es = masked_code (Pag_eval.Store.root_attrs (Session.store es)) in
  Printf.printf "%-9s %-12s %-12s %-9s %-7s %-7s %-9s %-5s\n" "machines"
    "serial e/s" "batched e/s" "speedup" "waves" "rounds" "messages" "code";
  let sweep machines =
    let es = session machines in
    let serial_lat, serial_msgs =
      List.fold_left
        (fun (lat, msgs) cs ->
          let r = Session.edit es (tree cs) in
          (lat +. r.Session.er_latency, msgs + r.Session.er_messages))
        (0.0, 0) steps
    in
    let eb = session machines in
    let r = Session.edit_batch eb (List.map tree steps) in
    let serial_eps = float_of_int sites /. serial_lat in
    let batched_eps = float_of_int sites /. r.Session.br_latency in
    let speedup = batched_eps /. serial_eps in
    let code_ok =
      String.equal (masked eb) (masked es) && String.equal (masked eb) final_ref
    in
    Printf.printf "%-9d %12.1f %12.1f %8.2fx %-7d %-7d %-9d %s\n" machines
      serial_eps batched_eps speedup r.Session.br_waves r.Session.br_rounds
      r.Session.br_messages
      (if code_ok then "ok" else "MISMATCH");
    (machines, serial_eps, batched_eps, speedup, serial_msgs, r, code_ok)
  in
  let machine_counts = if quick then [ 2; 4; 8 ] else [ 1; 2; 4; 8 ] in
  let rows = List.map sweep machine_counts in
  let all_code_ok = List.for_all (fun (_, _, _, _, _, _, ok) -> ok) rows in
  let headline =
    List.find_opt (fun (m, _, _, _, _, _, _) -> m = 8) rows
  in
  let speedup_ok =
    match headline with Some (_, _, _, s, _, _, _) -> s >= 3.0 | None -> false
  in
  (* real-domains wave: the merged cone refired by Domain.spawn workers
     (PR-6 steal scheduler restricted to the cone); wall-clock, so the row
     is informative on a 1-core container — the gate is equal finals *)
  let cores = Domain.recommended_domain_count () in
  let dom_domains = min 4 (max 1 cores) in
  let dom_run domains =
    let s = Pag_eval.Incr.start g (tree base) in
    let t0 = Unix.gettimeofday () in
    let wv = Pag_eval.Incr.edit_batch ~domains s (List.map tree steps) in
    let dt = Unix.gettimeofday () -. t0 in
    let code =
      masked_code (Pag_eval.Store.root_attrs (Pag_eval.Incr.store s))
    in
    (float_of_int wv.Pag_eval.Incr.wv_edits /. dt, String.equal code final_ref)
  in
  let dom_serial_eps, dom_serial_ok = dom_run 1 in
  let dom_eps, dom_ok = dom_run dom_domains in
  Printf.printf
    "\ndomains wave (wall-clock): %d domain(s) %.0f edits/sec vs serial \
     %.0f edits/sec, finals %s\n"
    dom_domains dom_eps dom_serial_eps
    (if dom_ok && dom_serial_ok then "ok" else "MISMATCH");
  (* batched service sweep: 1k resident tenants of the K-site program,
     each queueing its full stream of independent single-site edits, then
     drained with batch=8 vs the re-measured batch=1 baseline. The edits
     are token-level (tiny cones), so per-edit fixed costs — dispatch and
     result messages on the one shared wire, each result carrying the full
     changed code attribute — dominate; merging a tenant's queue into one
     wave ships one dispatch and one result per chunk instead of per edit,
     which is exactly the BENCH_7 queue-bound ceiling this PR attacks. *)
  let svc_sessions = if quick then 200 else 1000 in
  let svc_ref = final_ref in
  let svc_run batch =
    let sv = Service.create (Service.config ~batch 8) g in
    for i = 0 to svc_sessions - 1 do
      Service.open_tenant sv (Printf.sprintf "t%04d" i) (tree base)
    done;
    List.iter
      (fun cs ->
        for i = 0 to svc_sessions - 1 do
          ignore (Service.submit sv (Printf.sprintf "t%04d" i) (tree cs))
        done)
      steps;
    Service.drain sv;
    let ok = ref true in
    for i = 0 to svc_sessions - 1 do
      let code =
        masked_code
          (Pag_eval.Store.root_attrs
             (Service.tenant_store sv (Printf.sprintf "t%04d" i)))
      in
      if not (String.equal code svc_ref) then ok := false
    done;
    (Service.stats sv, !ok)
  in
  let st1, svc1_ok = svc_run 1 in
  let st8, svc8_ok = svc_run 8 in
  let svc_gain = st1.Service.st_p50 /. st8.Service.st_p50 in
  let svc_ok = svc1_ok && svc8_ok in
  Printf.printf
    "service sweep (%d sessions, 8 workers, %d-edit streams): p50 %.3f ms \
     serial -> %.3f ms batched (%.2fx), finals %s\n"
    svc_sessions sites
    (st1.Service.st_p50 *. 1e3)
    (st8.Service.st_p50 *. 1e3)
    svc_gain
    (if svc_ok then "ok" else "MISMATCH");
  let svc_gain_ok = svc_gain >= 2.0 in
  (* provenance rider: a batched wave recorded in the ring must blame
     exactly its fired work — the firing count grows by the wave's refires
     and the critical path stays within the makespan *)
  let ps =
    Session.open_session ~frontier:1.0
      (Session.spec ~granularity:0.05 ~librarian:false ~schedule:`Steal
         ~provenance:true 8)
      g (tree base)
  in
  let firings_now () =
    Pag_eval.Causal.firings
      (Pag_eval.Causal.build [ (Session.prov ps, Session.engine ps) ])
  in
  let f0 = firings_now () in
  let pr = Session.edit_batch ps (List.map tree steps) in
  let f1 = firings_now () in
  let profile =
    Pag_eval.Causal.profile
      (Pag_eval.Causal.build [ (Session.prov ps, Session.engine ps) ])
  in
  let prov_ok =
    f1 - f0 = pr.Session.br_refired
    && profile.Pag_eval.Causal.pr_work > 0.0
    && profile.Pag_eval.Causal.pr_critical
       <= profile.Pag_eval.Causal.pr_makespan +. 1e-9
    && String.length (Pag_eval.Causal.profile_json profile) > 2
  in
  Printf.printf
    "provenance rider: wave fired %d rules, ring grew by %d firings, \
     critical %.4fs <= makespan %.4fs: %s\n"
    pr.Session.br_refired (f1 - f0) profile.Pag_eval.Causal.pr_critical
    profile.Pag_eval.Causal.pr_makespan
    (if prov_ok then "ok" else "MISMATCH");
  Printf.printf
    "\ntargets: batched >= 3x serial edits/sec at 8 machines (%b), finals\n\
     masked-equal to serial and from-scratch on every config (%b), domains\n\
     wave finals ok (%b), service p50 at %d sessions improved >= 2x (%b),\n\
     wave blame sums to fired work (%b).\n"
    speedup_ok all_code_ok
    (dom_ok && dom_serial_ok)
    svc_sessions svc_gain_ok prov_ok;
  let row_json (m, ser, bat, sp, smsgs, r, ok) =
    Printf.sprintf
      "    { \"machines\": %d, \"serial_edits_per_sec\": %.2f, \
       \"batched_edits_per_sec\": %.2f, \"speedup\": %.3f, \
       \"serial_messages\": %d, \"batched_messages\": %d, \"waves\": %d, \
       \"conflicts\": %d, \"rounds\": %d, \"refired\": %d, \"cutoff\": %d, \
       \"bytes\": %d, \"finals_ok\": %b }"
      m ser bat sp smsgs r.Session.br_messages r.Session.br_waves
      r.Session.br_conflicts r.Session.br_rounds r.Session.br_refired
      r.Session.br_cutoff r.Session.br_bytes ok
  in
  let oc = open_out "BENCH_9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_9\",\n\
    \  \"bench\": \"parallel batched self-adjusting re-evaluation: merged \
     dirty cones, steal-scheduled refire waves\",\n\
    \  \"edit_sites\": %d,\n\
    \  \"schedule\": \"steal\",\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"domains\": { \"domains\": %d, \"edits_per_sec\": %.2f, \
     \"serial_edits_per_sec\": %.2f, \"finals_ok\": %b },\n\
    \  \"service\": { \"sessions\": %d, \"workers\": 8, \"stream_edits\": \
     %d, \"serial_p50_ms\": %.4f, \"batched_p50_ms\": %.4f, \
     \"p50_improvement\": %.3f, \"finals_ok\": %b },\n\
    \  \"provenance\": { \"wave_refired\": %d, \"ring_delta\": %d, \
     \"critical_s\": %.6f, \"makespan_s\": %.6f, \"blame_ok\": %b },\n\
    \  \"gates\": { \"batched_ge_3x_serial_at_8\": %b, \"all_finals_ok\": \
     %b, \"domains_finals_ok\": %b, \"service_p50_ge_2x\": %b, \
     \"prov_blame_ok\": %b }\n\
     }\n"
    sites
    (String.concat ",\n" (List.map row_json rows))
    dom_domains dom_eps dom_serial_eps
    (dom_ok && dom_serial_ok)
    svc_sessions sites
    (st1.Service.st_p50 *. 1e3)
    (st8.Service.st_p50 *. 1e3)
    svc_gain svc_ok pr.Session.br_refired (f1 - f0)
    profile.Pag_eval.Causal.pr_critical profile.Pag_eval.Causal.pr_makespan
    prov_ok speedup_ok all_code_ok
    (dom_ok && dom_serial_ok)
    svc_gain_ok prov_ok;
  close_out oc;
  Printf.printf "wrote BENCH_9.json\n";
  if
    not
      (speedup_ok && all_code_ok && dom_ok && dom_serial_ok && svc_ok
     && svc_gain_ok && prov_ok)
  then failwith "E17: batched re-evaluation gate failed"

(* ------------------------------------------------------------------ *)
(* E18: first-class DAG evaluation (BENCH_10)                          *)
(* ------------------------------------------------------------------ *)

let e18_dag () =
  sep "[E18] First-class DAG evaluation: instances, wire, time (BENCH_10)";
  let routines = if quick then 4 else 6 in
  let reps = if quick then 120 else 300 in
  let workload_name =
    Printf.sprintf "Progen.repetitive routines=%d reps=%d" routines reps
  in
  let prog = Progen.repetitive ~routines ~reps () in
  let m = 8 in
  Printf.printf "workload: %s; %d netsim machines\n\n" workload_name m;
  let run o = Driver.compile_parallel_sim o prog in
  let instances (r : Runner.result) =
    Array.fold_left
      (fun a (s : Pag_parallel.Worker.stats) ->
        a + s.Pag_parallel.Worker.ws_graph_nodes)
      0 r.Runner.r_worker_stats
  in
  let r_static, c_static = run (opts m) in
  let r_steal, c_steal =
    run { (opts m) with Runner.schedule = `Steal }
  in
  let r_dag, c_dag =
    run { (opts m) with Runner.schedule = `Steal; use_dag = true }
  in
  let row name (r : Runner.result) inst =
    Printf.printf "%-26s %10.3fs %12s %12d bytes %8d msgs\n" name
      r.Runner.r_time
      (match inst with
      | Some i -> Printf.sprintf "%d inst" i
      | None -> "-")
      r.Runner.r_bytes r.Runner.r_messages
  in
  Printf.printf "%-26s %11s %12s %18s %13s\n" "" "time" "instances" "wire"
    "messages";
  row "static, plain" r_static None;
  row "steal, plain" r_steal (Some (instances r_steal));
  row "steal, --dag" r_dag (Some (instances r_dag));
  (* sequential DAG statistics: regions / projections / materializations *)
  let g = Pascal_ag.grammar in
  let tree = Pascal_ag.tree_of_program g prog in
  let rt = ref None in
  ignore (Pag_eval.Dynamic.eval ~dag:true ~dag_out:(fun r -> rt := Some r) g tree);
  let ds = Pag_eval.Dag.stats (Option.get !rt) in
  Printf.printf
    "\ndag: %d regions, %d slots projected, %d instances materialized, %d \
     tainted classes\n"
    ds.Pag_eval.Dag.dg_regions ds.Pag_eval.Dag.dg_projected_slots
    ds.Pag_eval.Dag.dg_materialized_rids ds.Pag_eval.Dag.dg_tainted_classes;
  let speedup = r_static.Runner.r_time /. r_dag.Runner.r_time in
  let inst_cut =
    1.0
    -. float_of_int (instances r_dag) /. float_of_int (instances r_steal)
  in
  let bytes_cut =
    1.0 -. (float_of_int r_dag.Runner.r_bytes /. float_of_int r_steal.Runner.r_bytes)
  in
  Printf.printf
    "\nspeedup over plain static: x%.1f; instance cut %.1f%%; wire cut \
     %.1f%% (vs plain steal)\n"
    speedup (100.0 *. inst_cut) (100.0 *. bytes_cut);
  let code_ok =
    String.equal (mask_asm c_static.Driver.c_asm) (mask_asm c_dag.Driver.c_asm)
    && String.equal (mask_asm c_steal.Driver.c_asm) (mask_asm c_dag.Driver.c_asm)
  in
  let interp_ok =
    match (Driver.run_compiled ~input:[] c_dag, Interp.run prog) with
    | Ok a, Ok b -> String.equal a b
    | _ -> false
  in
  Printf.printf "equivalence: masked code %b, interpreter %b\n" code_ok
    interp_ok;
  Printf.printf
    "\ntargets: >= 10x over plain static, instance cut > 50%%, wire never \
     inflated,\nall equivalence gates true.\n";
  let ok =
    speedup >= 10.0 && inst_cut > 0.5
    && r_dag.Runner.r_bytes <= r_steal.Runner.r_bytes
    && code_ok && interp_ok
  in
  let oc = open_out "BENCH_10.json" in
  Printf.fprintf oc
    "{\n\
    \  \"id\": \"BENCH_10\",\n\
    \  \"bench\": \"first-class DAG evaluation: one rule-instance set per \
     unique subtree\",\n\
    \  \"workload\": %S,\n\
    \  \"machines\": %d,\n\
    \  \"static_plain_seconds\": %.6f,\n\
    \  \"steal_plain\": { \"seconds\": %.6f, \"instances\": %d, \"bytes\": \
     %d, \"messages\": %d },\n\
    \  \"steal_dag\": { \"seconds\": %.6f, \"instances\": %d, \"bytes\": \
     %d, \"messages\": %d },\n\
    \  \"dag_stats\": { \"regions\": %d, \"projected_slots\": %d, \
     \"materialized_rids\": %d, \"tainted_classes\": %d },\n\
    \  \"speedup_over_plain_static\": %.3f,\n\
    \  \"instance_cut\": %.4f,\n\
    \  \"bytes_cut\": %.4f,\n\
    \  \"code_agrees\": %b,\n\
    \  \"interpreter_agrees\": %b\n\
     }\n"
    workload_name m r_static.Runner.r_time r_steal.Runner.r_time
    (instances r_steal) r_steal.Runner.r_bytes r_steal.Runner.r_messages
    r_dag.Runner.r_time (instances r_dag) r_dag.Runner.r_bytes
    r_dag.Runner.r_messages ds.Pag_eval.Dag.dg_regions
    ds.Pag_eval.Dag.dg_projected_slots ds.Pag_eval.Dag.dg_materialized_rids
    ds.Pag_eval.Dag.dg_tainted_classes speedup inst_cut bytes_cut code_ok
    interp_ok;
  close_out oc;
  Printf.printf "wrote BENCH_10.json\n";
  if not ok then failwith "E18: DAG evaluation gate failed"

(* ------------------------------------------------------------------ *)
(* Smoke: fast evaluator equivalence, nonzero exit on mismatch         *)
(* ------------------------------------------------------------------ *)

let stores_agree a b =
  let ok = ref true in
  Pag_eval.Store.iter_instances a (fun node attr ->
      match
        ( Pag_eval.Store.get_opt a node attr.Pag_core.Grammar.a_name,
          Pag_eval.Store.get_opt b node attr.Pag_core.Grammar.a_name )
      with
      | Some x, Some y -> if not (Pag_core.Value.equal x y) then ok := false
      | None, None -> ()
      | _ -> ok := false);
  !ok

let smoke_check () =
  sep "[smoke] evaluator equivalence (quick workload)";
  let fails = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n" name (if ok then "ok" else "MISMATCH");
    if not ok then incr fails
  in
  (* 1. Expression grammar: oracle = dynamic = static on a random tree. *)
  let etree =
    Pag_grammars.Expr_ag.random_program (Random.State.make [| 11 |]) ~depth:8
  in
  let eg = Pag_grammars.Expr_ag.grammar in
  let oracle = Pag_eval.Oracle.eval eg etree in
  let dyn, _ = Pag_eval.Dynamic.eval eg etree in
  check "expr: oracle = dynamic" (stores_agree oracle dyn);
  (match Pag_analysis.Kastens.analyze eg with
  | Error _ -> check "expr: grammar is ordered" false
  | Ok plan ->
      let st, _ = Pag_eval.Static_eval.eval plan etree in
      check "expr: oracle = static (Kastens)" (stores_agree oracle st));
  (* 2. Pascal compiler: static / dynamic / oracle produce identical code
     (modulo label numbering, which depends on rule firing order). *)
  let prog = fst (Progen.gen (Random.State.make [| 7 |]) Progen.small) in
  let asm ev = mask_asm (Driver.compile ~evaluator:ev prog).Driver.c_asm in
  let s = asm `Static and d = asm `Dynamic and o = asm `Oracle in
  check "pascal: static = dynamic code" (String.equal s d);
  check "pascal: static = oracle code" (String.equal s o);
  (* 3. Flat store vs the seed hashtbl store on the same tree. *)
  let tree = Pascal_ag.tree_of_program Pascal_ag.grammar prog in
  let legacy, _ = Legacy.Dynamic.eval Pascal_ag.grammar tree in
  let flat, _ = Pag_eval.Dynamic.eval Pascal_ag.grammar tree in
  check "pascal: flat store = seed hashtbl store"
    (pascal_roots_agree
       (Pag_eval.Store.root_attrs flat)
       (Legacy.Store.root_attrs legacy));
  (* 4. Hash-consed evaluation is semantics-preserving: identical assembly
     (same uid consumption order, so byte-identical, no masking) and
     identical VAX output on a repetition-heavy program. *)
  let rprog = Progen.repetitive ~routines:3 ~reps:40 () in
  let hc_on = Driver.compile ~hashcons:true ~evaluator:`Static rprog in
  let hc_off = Driver.compile ~evaluator:`Static rprog in
  check "pascal: hashcons on = off (assembly bytes)"
    (String.equal hc_on.Driver.c_asm hc_off.Driver.c_asm);
  check "pascal: hashcons on = off (VAX output)"
    (match
       (Driver.run_compiled ~input:[] hc_on, Driver.run_compiled ~input:[] hc_off)
     with
    | Ok a, Ok b -> String.equal a b
    | _ -> false);
  let dyn_on = Driver.compile ~hashcons:true ~evaluator:`Dynamic rprog in
  check "pascal: hashcons dynamic = static code"
    (String.equal (mask_asm dyn_on.Driver.c_asm) (mask_asm hc_off.Driver.c_asm));
  if !fails = 0 then Printf.printf "\nsmoke ok\n"
  else Printf.printf "\n%d smoke check(s) FAILED\n" !fails;
  !fails

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "Parallel Attribute Grammar Evaluation — benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  if smoke then exit (if smoke_check () = 0 then 0 else 1);
  if micro then begin
    store_micro ();
    microbenchmarks ()
  end
  else begin
    if runs "e1" then e1_figure5 ();
    if runs "e2" then e2_figure6 ();
    if runs "e3" then e3_figure7 ();
    if runs "e4" then e4_dynamic_fraction ();
    if runs "e5" then e5_librarian ();
    if runs "e6" then e6_priority ();
    if runs "e7" then e7_unique_ids ();
    if runs "e8" then e8_sequential_and_granularity ();
    if runs "e9" then e9_assembly_integration ();
    if runs "e10" then e10_faults ();
    if runs "e11" then e11_observability ();
    if runs "e12" then e12_hashcons ();
    if runs "e13" then e13_incremental ();
    if runs "e14" then e14_steal ();
    if runs "e15" then e15_service ();
    if runs "e16" then e16_provenance ();
    if runs "e17" then e17_batched ();
    if runs "e18" then e18_dag ()
  end;
  Printf.printf "\ndone. see EXPERIMENTS.md for paper-vs-measured records.\n"
