lib/pascal/driver.mli: Ast Kastens Lazy Pag_analysis Pag_parallel Runner
