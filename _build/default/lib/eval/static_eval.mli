(** Static (ordered) attribute evaluator (paper, section 2.3, figures 2-3).

    Interprets the visit sequences produced by {!Pag_analysis.Kastens}: a
    collection of mutually recursive visit procedures, one per production,
    walking the tree in the order fixed at generation time. No dependency
    analysis happens at evaluation time — the efficiency edge the combined
    evaluator inherits for the static parts of its tree. *)

open Pag_core
open Pag_analysis

type stats = {
  visits : int;  (** visit-procedure invocations *)
  evals : int;  (** semantic rules fired *)
}

val eval :
  ?root_inh:(string * Value.t) list ->
  Kastens.plan ->
  Tree.t ->
  Store.t * stats

(** [visit plan store node v] runs visit [v] of [node] against an existing
    store — the entry point the combined evaluator uses on the roots of its
    static subtrees. Returns (visits, evals) performed. *)
val visit : Kastens.plan -> Store.t -> Tree.t -> int -> int * int
