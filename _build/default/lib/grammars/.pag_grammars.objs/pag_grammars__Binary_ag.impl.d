lib/grammars/binary_ag.ml: Array Grammar List Pag_core Random Tree Value
