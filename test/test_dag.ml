(* First-class DAG evaluation: canonical DAG form of a tree, one
   rule-instance set per unique subtree, occurrence projection, class
   splitting on edit, and agreement with the per-occurrence engines across
   schedules. *)

open Pag_core
open Pag_eval
open Pag_grammars

let qc ?count name gen prop = Qc_seed.qc ?count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --------------- canonicalization properties --------------- *)

(* Independent ground truth for "number of unique subtrees": canonical ids
   assigned bottom-up from a structural-key table, sharing nothing with
   Tree.sharing's implementation. *)
let unique_subtrees t =
  let tbl = Hashtbl.create 64 in
  let next = ref 0 in
  let rec go (n : Tree.t) =
    let kids = Array.to_list (Array.map go n.Tree.children) in
    let key =
      ( n.Tree.sym,
        List.map (fun (a, v) -> (a, Value.to_string v)) n.Tree.term_attrs,
        kids )
    in
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add tbl key id;
        id
  in
  ignore (go t);
  !next

let dag_canonical_ok t =
  let n = Tree.number t in
  let d = Tree.dag t in
  let sh = d.Tree.dg_sharing in
  (* class count = number of unique subtrees *)
  sh.Tree.sh_classes = unique_subtrees t
  (* the occurrence map is a partition of the node ids *)
  && Array.length d.Tree.dg_occ = n
  && d.Tree.dg_occ_off.(sh.Tree.sh_classes) = n
  && (let seen = Array.make n false in
      Array.iter (fun id -> seen.(id) <- true) d.Tree.dg_occ;
      Array.for_all (fun b -> b) seen)
  (* occurrence lists are grouped correctly, ascending, led by the
     representative (the first occurrence in preorder) *)
  && (let ok = ref true in
      for c = 0 to sh.Tree.sh_classes - 1 do
        let lo = d.Tree.dg_occ_off.(c) and hi = d.Tree.dg_occ_off.(c + 1) in
        if hi <= lo then ok := false
        else begin
          if d.Tree.dg_occ.(lo) <> sh.Tree.sh_rep.(c) then ok := false;
          for i = lo to hi - 1 do
            let id = d.Tree.dg_occ.(i) in
            if sh.Tree.sh_class.(id) <> c then ok := false;
            if i > lo && id <= d.Tree.dg_occ.(i - 1) then ok := false;
            (* occurrences of one class are pairwise disjoint id ranges *)
            if i > lo && id < d.Tree.dg_occ.(i - 1) + sh.Tree.sh_size.(c) then
              ok := false
          done
        end
      done;
      !ok)
  (* child edges point at the classes of the representative's children *)
  && (let ok = ref true in
      Tree.iter
        (fun node ->
          let c = sh.Tree.sh_class.(node.Tree.id) in
          if sh.Tree.sh_rep.(c) = node.Tree.id then begin
            let ks = d.Tree.dg_kids.(c) in
            if Array.length ks <> Array.length node.Tree.children then
              ok := false
            else
              Array.iteri
                (fun i ch ->
                  if ks.(i) <> sh.Tree.sh_class.(ch.Tree.id) then ok := false)
                node.Tree.children
          end)
        t;
      !ok)

let prop_dag_canonical_repmin =
  qc ~count:60 "Tree.dag canonical form (repmin trees)"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      dag_canonical_ok (Repmin_ag.random_tree st ~depth:(4 + (seed mod 5))))

let prop_dag_canonical_expr =
  qc ~count:60 "Tree.dag canonical form (expr programs)"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      dag_canonical_ok (Expr_ag.random_program st ~depth:(3 + (seed mod 4))))

(* --------------- dag-on == dag-off, sequential --------------- *)

let attrs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a b

let eval_both g t =
  let plain, _ = Dynamic.eval g t in
  let rt = ref None in
  let dagged, _ = Dynamic.eval ~dag:true ~dag_out:(fun r -> rt := Some r) g t in
  (plain, dagged, Option.get !rt)

let prop_dag_dynamic_agrees_repmin =
  qc ~count:80 "dynamic dag-on == dag-off (repmin)"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let t = Repmin_ag.random_tree st ~depth:(3 + (seed mod 6)) in
      let plain, dagged, _ = eval_both Repmin_ag.grammar t in
      attrs_equal (Store.root_attrs plain) (Store.root_attrs dagged))

let prop_dag_dynamic_agrees_expr =
  qc ~count:80 "dynamic dag-on == dag-off (expr)"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let t = Expr_ag.random_program st ~depth:(3 + (seed mod 4)) in
      let plain, dagged, _ = eval_both Expr_ag.grammar t in
      attrs_equal (Store.root_attrs plain) (Store.root_attrs dagged))

(* A maximally repetitive expression: the DAG run must actually project
   (not just agree), and the fired instance count must scale with unique
   nodes, not tree nodes. The expression grammar has no synthesized-to-
   inherited feedback, so same-scope occurrences share cleanly. *)
let test_dag_projects_repetitive () =
  let unit_ () =
    (* a deep, structurally identical arithmetic unit over the let-bound
       variable — physically fresh per occurrence (trees, not graphs) *)
    let rec build d =
      if d = 0 then Expr_ag.var "x"
      else Expr_ag.mul (Expr_ag.add (build (d - 1)) (Expr_ag.num d)) (Expr_ag.num 3)
    in
    build 5
  in
  let body =
    let rec chain k =
      if k = 0 then unit_ () else Expr_ag.add (unit_ ()) (chain (k - 1))
    in
    chain 40
  in
  (* the binding constant 99 appears nowhere in the units: every shape
     class occurring more than once has a uniform inherited context (a
     [num] shared with the binding position would legitimately split —
     the binding is evaluated in the outer scope) *)
  let t = Expr_ag.main (Expr_ag.let_in "x" (Expr_ag.num 99) body) in
  let plain, _ = Dynamic.eval Expr_ag.grammar t in
  let eng = ref None in
  let rt = ref None in
  let dagged, _ =
    Dynamic.eval ~dag:true
      ~dag_out:(fun r -> rt := Some r)
      ~engine_out:(fun e -> eng := Some e)
      Expr_ag.grammar t
  in
  check_bool "values agree" true
    (attrs_equal (Store.root_attrs plain) (Store.root_attrs dagged));
  let st = Dag.stats (Option.get !rt) in
  check_bool "regions parked" true (st.Dag.dg_regions >= 40);
  check_bool "projection happened" true (st.Dag.dg_projected_slots > 0);
  check_int "nothing materialized (no uids, uniform context)" 0
    st.Dag.dg_materialized;
  let fired = Pag_eval.Engine.fired (Option.get !eng) in
  check_bool
    (Printf.sprintf "fired %d = O(unique nodes), not O(tree)" fired)
    true
    (fired < Store.slot_count plain / 4)

(* Divergent inherited context: the same shape class in two scopes must
   split — one occurrence evaluates its own instances and becomes the
   leader for its own (class, fingerprint). *)
let test_dag_divergent_context_splits () =
  let unit_ () = Expr_ag.mul (Expr_ag.var "x") (Expr_ag.num 3) in
  let body () = Expr_ag.add (unit_ ()) (Expr_ag.add (unit_ ()) (unit_ ())) in
  (* [num 3] also appears as the binding of the inner let, where the
     visible scope differs (binding evaluated outside its own scope) *)
  let t =
    Expr_ag.main
      (Expr_ag.let_in "x" (Expr_ag.num 3)
         (Expr_ag.add (body ()) (Expr_ag.let_in "y" (Expr_ag.num 3) (body ()))))
  in
  let plain, _ = Dynamic.eval Expr_ag.grammar t in
  let rt = ref None in
  let dagged, _ =
    Dynamic.eval ~dag:true ~dag_out:(fun r -> rt := Some r) Expr_ag.grammar t
  in
  check_bool "values agree" true
    (attrs_equal (Store.root_attrs plain) (Store.root_attrs dagged));
  let st = Dag.stats (Option.get !rt) in
  check_bool "divergent contexts materialized" true (st.Dag.dg_materialized > 0);
  check_bool "uniform contexts still projected" true (st.Dag.dg_projected > 0)

(* Repmin: inherited gmin is the tree's own min fed back down, so parked
   occurrences can never project — demand materialization must keep the
   evaluation complete and correct. *)
let test_dag_repmin_feedback_materializes () =
  let shared =
    let rec build d =
      if d = 0 then Repmin_ag.leaf 7
      else Repmin_ag.fork (build (d - 1)) (build (d - 1))
    in
    build 5
  in
  let t = Repmin_ag.root shared in
  let plain, _ = Dynamic.eval Repmin_ag.grammar t in
  let rt = ref None in
  let dagged, _ =
    Dynamic.eval ~dag:true ~dag_out:(fun r -> rt := Some r) Repmin_ag.grammar t
  in
  check_bool "values agree" true
    (attrs_equal (Store.root_attrs plain) (Store.root_attrs dagged));
  let st = Dag.stats (Option.get !rt) in
  check_bool "feedback path forced materialization" true
    (st.Dag.dg_materialized > 0)

(* --------------- Pascal: labels (uids) and masked code --------------- *)

let interp_out prog =
  match Pascal.Interp.run prog with
  | Ok s -> s
  | Error _ -> Alcotest.fail "interpreter failed"

let vax_out c =
  match Pascal.Driver.run_compiled ~input:[] c with
  | Ok s -> s
  | Error e -> Alcotest.failf "compiled program failed: %s" e

(* Label definitions in VAX assembly: "L<n>:" at line start. Every label
   must be defined exactly once — the uid-never-collapsed property: a
   projected duplicate would define the same label twice. *)
let duplicate_labels asm =
  let tbl = Hashtbl.create 64 in
  let dup = ref 0 in
  String.split_on_char '\n' asm
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line > 2 && line.[0] = 'L' then
           match String.index_opt line ':' with
           | Some i
             when String.for_all
                    (fun c -> c >= '0' && c <= '9')
                    (String.sub line 1 (i - 1))
                  && i > 1 ->
               let l = String.sub line 0 i in
               if Hashtbl.mem tbl l then incr dup else Hashtbl.add tbl l ()
           | _ -> ());
  !dup

let test_dag_pascal_repetitive () =
  let prog = Pascal.Progen.repetitive ~routines:4 ~reps:24 () in
  let reference = interp_out prog in
  let plain = Pascal.Driver.compile ~evaluator:`Dynamic prog in
  let rt = ref None in
  let dagged =
    Pascal.Driver.compile ~evaluator:`Dynamic ~dag:true
      ~dag_out:(fun r -> rt := Some r)
      prog
  in
  check_string "masked code agrees"
    (Pascal.Driver.mask_labels plain.Pascal.Driver.c_asm)
    (Pascal.Driver.mask_labels dagged.Pascal.Driver.c_asm);
  check_string "dag-compiled output = interpreter" reference (vax_out dagged);
  check_int "no duplicate label definitions" 0
    (duplicate_labels dagged.Pascal.Driver.c_asm);
  let st = Dag.stats (Option.get !rt) in
  check_bool "repetitive program has parked regions" true
    (st.Dag.dg_regions > 0)

let prop_dag_pascal_random =
  qc ~count:10 "dag-on == dag-off (random pascal, dynamic+static)"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let prog, _ = Pascal.Progen.gen st Pascal.Progen.small in
      let plain = Pascal.Driver.compile ~evaluator:`Dynamic prog in
      let dag_dyn = Pascal.Driver.compile ~evaluator:`Dynamic ~dag:true prog in
      let dag_stat = Pascal.Driver.compile ~evaluator:`Static ~dag:true prog in
      let m = Pascal.Driver.mask_labels in
      String.equal (m plain.Pascal.Driver.c_asm) (m dag_dyn.Pascal.Driver.c_asm)
      && String.equal (m plain.Pascal.Driver.c_asm)
           (m dag_stat.Pascal.Driver.c_asm)
      && duplicate_labels dag_dyn.Pascal.Driver.c_asm = 0)

(* --------------- incremental class splitting --------------- *)

let as_int v = Value.as_int ~ctx:"test_dag" v

let nodes_of_prod t name =
  let acc = ref [] in
  Tree.iter
    (fun (n : Tree.t) ->
      match n.Tree.prod with
      | Some p when String.equal p.Grammar.p_name name -> acc := n :: !acc
      | _ -> ())
    t;
  List.rev !acc

(* A chain of nine identical units over the let-bound [x]: one shape
   class, the first occurrence is its leader, the other eight project. *)
let shared_chain_program ~units =
  let unit_ () =
    Expr_ag.mul
      (Expr_ag.add (Expr_ag.var "x") (Expr_ag.num 7))
      (Expr_ag.num 3)
  in
  let rec chain k =
    if k = 0 then unit_ () else Expr_ag.add (unit_ ()) (chain (k - 1))
  in
  Expr_ag.main (Expr_ag.let_in "x" (Expr_ag.num 99) (chain (units - 1)))

(* Edit INSIDE one projected occurrence of a shared subtree: exactly that
   occurrence splits off its class (materializes, sticky), every other
   occurrence keeps its projected value, and the store matches the
   reference semantics of the edited tree. *)
let test_dag_incr_split_on_edit () =
  let t = shared_chain_program ~units:9 in
  (* frontier > 1: the session must not fall back — the split path itself
     is under test *)
  let s = Incr.start ~dag:true ~frontier:2.0 Expr_ag.grammar t in
  let st0 = Option.get (Incr.dag_stats s) in
  check_bool "initial evaluation projected" true (st0.Dag.dg_projected > 0);
  let units = nodes_of_prod (Incr.tree s) "mul" in
  check_int "nine unit occurrences" 9 (List.length units);
  let store = Incr.store s in
  List.iter
    (fun u -> check_int "unit value before edit" 318 (as_int (Store.get store u "value")))
    units;
  (* the last occurrence in preorder is a projected follower; edit its
     inner [num 7] to [num 5] *)
  let last = List.nth units 8 in
  let inner_add = last.Tree.children.(0) in
  let st = Incr.replace s ~parent:inner_add ~pos:2 (Expr_ag.num 5) in
  check_bool "edit propagated incrementally" false st.Incr.ed_fallback;
  let store = Incr.store s in
  check_int "edited occurrence recomputed" 312
    (as_int (Store.get store last "value"));
  List.iteri
    (fun i u ->
      if i < 8 then
        check_int "other occurrences keep their values" 318
          (as_int (Store.get store u "value")))
    units;
  let st1 = Option.get (Incr.dag_stats s) in
  check_bool "edited occurrence split off its class" true
    (st1.Dag.dg_materialized > st0.Dag.dg_materialized);
  check_int "root value = reference semantics"
    (Expr_ag.reference_value (Incr.tree s))
    (as_int (List.assoc "value" (Store.root_attrs store)))

(* Edit the let binding: the inherited symbol table reaching every unit
   changes, so the dirty cone hits the inherited gate of each projected
   occurrence — they all split (revive through the gate) and recompute. *)
let test_dag_incr_gate_divergence_splits () =
  let t = shared_chain_program ~units:6 in
  let s = Incr.start ~dag:true ~frontier:2.0 Expr_ag.grammar t in
  let st0 = Option.get (Incr.dag_stats s) in
  check_bool "initial evaluation projected" true (st0.Dag.dg_projected > 0);
  let block =
    match nodes_of_prod (Incr.tree s) "block" with
    | [ b ] -> b
    | _ -> Alcotest.fail "expected exactly one block"
  in
  let st = Incr.replace s ~parent:block ~pos:3 (Expr_ag.num 100) in
  check_bool "edit propagated incrementally" false st.Incr.ed_fallback;
  let store = Incr.store s in
  List.iter
    (fun u ->
      check_int "unit recomputed under the new binding" 321
        (as_int (Store.get store u "value")))
    (nodes_of_prod (Incr.tree s) "mul");
  let st1 = Option.get (Incr.dag_stats s) in
  check_bool "gate change split projected occurrences" true
    (st1.Dag.dg_materialized > st0.Dag.dg_materialized);
  check_int "root value = reference semantics"
    (Expr_ag.reference_value (Incr.tree s))
    (as_int (List.assoc "value" (Store.root_attrs store)))

(* --------------- parallel parity sweep --------------- *)

(* [--dag] on every parallel path: the masked code must equal the
   sequential reference whatever the schedule, transport or memo setting.
   (dag-off == reference is already covered by the parallel suites, so
   dag-on == reference gives dag-on == dag-off.) *)
let parallel_masked_asm ~transport ~schedule ~hashcons prog =
  let o =
    {
      Pag_parallel.Runner.default_options with
      Pag_parallel.Runner.machines = 3;
      schedule;
      use_hashcons = hashcons;
      use_dag = true;
      phase_label = Pascal.Driver.phase_label;
    }
  in
  let _, c =
    match transport with
    | `Sim -> Pascal.Driver.compile_parallel_sim o prog
    | `Domains -> Pascal.Driver.compile_parallel_domains o prog
  in
  Pascal.Driver.mask_labels c.Pascal.Driver.c_asm

let test_dag_parallel_parity () =
  let prog =
    fst (Pascal.Progen.gen (Random.State.make [| 42 |]) Pascal.Progen.small)
  in
  let reference =
    Pascal.Driver.mask_labels
      (Pascal.Driver.compile ~evaluator:`Static prog).Pascal.Driver.c_asm
  in
  List.iter
    (fun (transport, tname) ->
      List.iter
        (fun (schedule, sname) ->
          List.iter
            (fun hashcons ->
              let name =
                Printf.sprintf "dag %s/%s hashcons=%b == sequential" tname
                  sname hashcons
              in
              check_string name reference
                (parallel_masked_asm ~transport ~schedule ~hashcons prog))
            [ false; true ])
        [ (`Static, "static"); (`Dynamic, "dynamic"); (`Steal, "steal") ])
    [ (`Sim, "sim"); (`Domains, "domains") ]

(* Steal + sim is where the DAG is the native substrate: on a repetitive
   workload the instance table must shrink (one rule-instance set per
   class, parked occurrences own none) and the priced wire must not grow
   (class bodies cross once per machine). *)
let test_dag_steal_instances_and_wire () =
  let prog = Pascal.Progen.repetitive ~routines:3 ~reps:12 () in
  let o =
    {
      Pag_parallel.Runner.default_options with
      Pag_parallel.Runner.machines = 4;
      schedule = `Steal;
      phase_label = Pascal.Driver.phase_label;
    }
  in
  let r_plain, plain = Pascal.Driver.compile_parallel_sim o prog in
  let r_dag, dagged =
    Pascal.Driver.compile_parallel_sim
      { o with Pag_parallel.Runner.use_dag = true }
      prog
  in
  check_string "masked code agrees"
    (Pascal.Driver.mask_labels plain.Pascal.Driver.c_asm)
    (Pascal.Driver.mask_labels dagged.Pascal.Driver.c_asm);
  let instances r =
    Array.fold_left
      (fun a (s : Pag_parallel.Worker.stats) -> a + s.Pag_parallel.Worker.ws_graph_nodes)
      0 r.Pag_parallel.Runner.r_worker_stats
  in
  check_bool "one instance set per class shrinks the table" true
    (instances r_dag < instances r_plain);
  check_bool "shared shipping does not inflate the wire" true
    (r_dag.Pag_parallel.Runner.r_bytes <= r_plain.Pag_parallel.Runner.r_bytes)

let suite =
  [
    ( "dag",
      [
        prop_dag_canonical_repmin;
        prop_dag_canonical_expr;
        prop_dag_dynamic_agrees_repmin;
        prop_dag_dynamic_agrees_expr;
        Alcotest.test_case "repetitive tree projects" `Quick
          test_dag_projects_repetitive;
        Alcotest.test_case "divergent context splits" `Quick
          test_dag_divergent_context_splits;
        Alcotest.test_case "repmin feedback materializes" `Quick
          test_dag_repmin_feedback_materializes;
        Alcotest.test_case "pascal repetitive (labels stay distinct)" `Quick
          test_dag_pascal_repetitive;
        prop_dag_pascal_random;
        Alcotest.test_case "incr: edited occurrence splits, others keep values"
          `Quick test_dag_incr_split_on_edit;
        Alcotest.test_case "incr: inherited-gate change splits projections"
          `Quick test_dag_incr_gate_divergence_splits;
        Alcotest.test_case
          "parallel parity: {static,dynamic,steal} x {sim,domains} x memo"
          `Quick test_dag_parallel_parity;
        Alcotest.test_case "steal+sim: fewer instances, no wire inflation"
          `Quick test_dag_steal_instances_and_wire;
      ] );
  ]
