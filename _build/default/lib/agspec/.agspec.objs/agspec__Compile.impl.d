lib/agspec/compile.ml: Array Grammar Hashtbl List Lrgen Option Pag_analysis Pag_core Pag_eval Pag_parallel Primitives Printf Spec_ast String Tree Value
