examples/librarian_demo.mli:
