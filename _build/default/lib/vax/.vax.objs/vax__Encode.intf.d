lib/vax/encode.mli: Isa
