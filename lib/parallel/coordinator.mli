(** Parser-side protocol: assign fragments to evaluators, collect the root
    attributes, and resolve code descriptors through the librarian.

    This is the paper's measurement boundary — "running time is measured
    from the time the parser initiates evaluation until it receives back the
    root attributes" — so the runners time exactly this function.

    With a {!recovery} configuration (faulty networks), every wait carries a
    liveness watchdog: when nothing arrives for [rc_watchdog] seconds the
    coordinator pings the machines it is waiting on through the reliable
    link. A machine that stops acknowledging is presumed crashed; the
    coordinator then broadcasts {!Message.Stop} to the survivors and
    re-evaluates the whole tree locally with the sequential evaluator
    (static when a Kastens plan is available, dynamic otherwise), so
    compilation completes regardless of which evaluator machines died. *)

open Pag_core
open Pag_analysis

type recovery = {
  rc_link : Reliable.t;  (** the coordinator's own reliable layer *)
  rc_kplan : Kastens.plan option;  (** for the local static fallback *)
  rc_cost : Cost.t;  (** CPU cost model for the local re-evaluation *)
  rc_watchdog : float;  (** seconds of silence before probing liveness *)
}

(** Names of the root's synthesized attributes — what the coordinator waits
    to collect (also used by {!Session} edit waves). *)
val expected_attrs : Grammar.t -> Tree.t -> string list

(** [run env g ~tree ~plan ~librarian] returns the root's synthesized
    attributes with any librarian descriptors replaced by the assembled
    text, and a flag that is [true] when a crash forced local recovery.
    With a live [obs] context the two coordinator phases (collecting root
    attributes, resolving librarian descriptors) are recorded as spans and
    a local recovery as an instant event.

    [?sharing] (the tree's {!Pag_core.Tree.sharing} classes) charges each
    [Subtree] assignment its DAG-compressed size ({!Split.dag_bytes})
    instead of the full linearized size. *)
val run :
  ?obs:Pag_obs.Obs.ctx ->
  ?recovery:recovery ->
  ?sharing:Tree.sharing ->
  Transport.env ->
  Grammar.t ->
  tree:Tree.t ->
  plan:Split.plan ->
  librarian:int option ->
  (string * Value.t) list * bool
