(** ASCII rendering of a simulation trace, in the style of the paper's
    figure 6: one row per process, thick marks for active periods, thin dots
    for idle periods, '|' for phase marks, plus a message summary.

    [overlay] marks extra [(pid, t0, t1)] windows with ['*'] on the owning
    row (drawn over active/idle cells) — [pagc --gantt] uses it to trace
    the provenance profiler's critical-path firings across the chart, so
    the rows line up with the [--profile] blame tables. *)

val render :
  ?width:int ->
  ?max_arrows:int ->
  ?overlay:(int * float * float) list ->
  names:(int -> string) ->
  Trace.t ->
  string
