lib/netsim/ethernet.mli:
