(** Reference interpreter for the Pascal subset.

    Direct tree-walking interpreter with proper static scoping, reference
    parameters (aliasing), and the same observable I/O behaviour as the
    compiled code running on the {!Vax.Machine} runtime — the oracle for
    differential testing of the compiler. *)

type error =
  | Unbound of string
  | Type_error of string
  | Out_of_bounds of string
  | Div_by_zero
  | No_input
  | Fuel_exhausted

exception Error of error

val error_to_string : error -> string

(** [run ?fuel ?input prog] executes and returns the output text. [fuel]
    bounds the number of statements executed (default 10 million). *)
val run : ?fuel:int -> ?input:int list -> Ast.program -> (string, error) result
