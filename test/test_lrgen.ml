open Lrgen

let qc ?(count = 80) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p name lhs rhs = { Cfg.cp_name = name; cp_lhs = lhs; cp_rhs = rhs; cp_prec = None }

(* Classic expression grammar, made unambiguous by precedence. *)
let expr_cfg =
  Cfg.make
    ~terminals:[ "NUM"; "PLUS"; "TIMES"; "LP"; "RP" ]
    ~start:"e"
    ~prec:[ (Cfg.Left, [ "PLUS" ]); (Cfg.Left, [ "TIMES" ]) ]
    [
      p "add" "e" [ "e"; "PLUS"; "e" ];
      p "mul" "e" [ "e"; "TIMES"; "e" ];
      p "num" "e" [ "NUM" ];
      p "paren" "e" [ "LP"; "e"; "RP" ];
    ]

let expr_tables = lazy (Lalr.build expr_cfg)

type sexp = Num of int | Add of sexp * sexp | Mul of sexp * sexp

let rec eval = function
  | Num n -> n
  | Add (a, b) -> eval a + eval b
  | Mul (a, b) -> eval a * eval b

let parse_expr tokens =
  Engine.parse (Lazy.force expr_tables)
    ~shift:(fun _ v -> Num v)
    ~reduce:(fun prod children ->
      match (prod.Cfg.cp_name, children) with
      | "add", [ a; _; b ] -> Add (a, b)
      | "mul", [ a; _; b ] -> Mul (a, b)
      | "num", [ n ] -> n
      | "paren", [ _; e; _ ] -> e
      | _ -> assert false)
    tokens

let toks_of_string s =
  (* tiny scanner: digits, + * ( ) *)
  let out = ref [] in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> out := ("NUM", Char.code c - Char.code '0') :: !out
      | '+' -> out := ("PLUS", 0) :: !out
      | '*' -> out := ("TIMES", 0) :: !out
      | '(' -> out := ("LP", 0) :: !out
      | ')' -> out := ("RP", 0) :: !out
      | ' ' -> ()
      | _ -> invalid_arg "toks")
    s;
  List.rev !out

let test_no_conflicts () =
  Alcotest.(check (list string)) "precedence resolves all conflicts" []
    (Lalr.conflicts (Lazy.force expr_tables))

let test_simple_parse () =
  check_int "3" 3 (eval (parse_expr (toks_of_string "3")));
  check_int "1+2" 3 (eval (parse_expr (toks_of_string "1+2")));
  check_int "2*3+4" 10 (eval (parse_expr (toks_of_string "2*3+4")));
  check_int "2+3*4" 14 (eval (parse_expr (toks_of_string "2+3*4")));
  check_int "(2+3)*4" 20 (eval (parse_expr (toks_of_string "(2+3)*4")))

let test_left_associativity () =
  (* 8 + 3 + 1: left assoc means (8+3)+1; structure check *)
  match parse_expr (toks_of_string "8+3+1") with
  | Add (Add (Num 8, Num 3), Num 1) -> ()
  | _ -> Alcotest.fail "expected left-associated tree"

let test_syntax_error () =
  (match parse_expr (toks_of_string "1+") with
  | exception Engine.Syntax_error { position = 2; expected; _ } ->
      check_bool "expects NUM or LP" true
        (List.mem "NUM" expected && List.mem "LP" expected)
  | _ -> Alcotest.fail "expected syntax error");
  match parse_expr (toks_of_string "1 2") with
  | exception Engine.Syntax_error { position = 1; token = "NUM"; _ } -> ()
  | _ -> Alcotest.fail "expected syntax error at second NUM"

let test_right_assoc () =
  let cfg =
    Cfg.make ~terminals:[ "X"; "ARROW" ] ~start:"t"
      ~prec:[ (Cfg.Right, [ "ARROW" ]) ]
      [ p "fn" "t" [ "t"; "ARROW"; "t" ]; p "x" "t" [ "X" ] ]
  in
  let tables = Lalr.build cfg in
  Alcotest.(check (list string)) "clean" [] (Lalr.conflicts tables);
  let v =
    Engine.parse tables
      ~shift:(fun n _ -> n)
      ~reduce:(fun prod kids ->
        match (prod.Cfg.cp_name, kids) with
        | "fn", [ a; _; b ] -> Printf.sprintf "(%s->%s)" a b
        | "x", [ _ ] -> "x"
        | _ -> assert false)
      [ ("X", ()); ("ARROW", ()); ("X", ()); ("ARROW", ()); ("X", ()) ]
  in
  Alcotest.(check string) "right assoc" "(x->(x->x))" v

let test_nonassoc () =
  let cfg =
    Cfg.make ~terminals:[ "N"; "EQ" ] ~start:"c"
      ~prec:[ (Cfg.Nonassoc, [ "EQ" ]) ]
      [ p "cmp" "c" [ "c"; "EQ"; "c" ]; p "n" "c" [ "N" ] ]
  in
  let tables = Lalr.build cfg in
  let parse toks =
    Engine.parse tables
      ~shift:(fun _ _ -> ())
      ~reduce:(fun _ _ -> ())
      toks
  in
  parse [ ("N", ()); ("EQ", ()); ("N", ()) ];
  match parse [ ("N", ()); ("EQ", ()); ("N", ()); ("EQ", ()); ("N", ()) ] with
  | exception Engine.Syntax_error _ -> ()
  | () -> Alcotest.fail "a = b = c must be rejected with nonassoc"

(* An LALR-but-not-SLR grammar:
     S -> A a | b A c | d c | b d a ; A -> d
   (classic example). LALR(1) handles it without conflicts. *)
let test_lalr_not_slr () =
  let cfg =
    Cfg.make ~terminals:[ "a"; "b"; "c"; "d" ] ~start:"S"
      [
        p "s1" "S" [ "A"; "a" ];
        p "s2" "S" [ "b"; "A"; "c" ];
        p "s3" "S" [ "d"; "c" ];
        p "s4" "S" [ "b"; "d"; "a" ];
        p "a1" "A" [ "d" ];
      ]
  in
  let tables = Lalr.build cfg in
  Alcotest.(check (list string)) "no conflicts" [] (Lalr.conflicts tables);
  let parse toks =
    Engine.parse tables
      ~shift:(fun n _ -> n)
      ~reduce:(fun prod _ -> prod.Cfg.cp_name)
      (List.map (fun t -> (t, ())) toks)
  in
  Alcotest.(check string) "d a" "s1" (parse [ "d"; "a" ]);
  Alcotest.(check string) "b d c" "s2" (parse [ "b"; "d"; "c" ]);
  Alcotest.(check string) "d c" "s3" (parse [ "d"; "c" ]);
  Alcotest.(check string) "b d a" "s4" (parse [ "b"; "d"; "a" ])

let test_empty_production () =
  (* lists with an epsilon production *)
  let cfg =
    Cfg.make ~terminals:[ "X" ] ~start:"l"
      [ p "nil" "l" []; p "cons" "l" [ "l"; "X" ] ]
  in
  let tables = Lalr.build cfg in
  let count toks =
    Engine.parse tables
      ~shift:(fun _ _ -> 1)
      ~reduce:(fun prod kids ->
        match (prod.Cfg.cp_name, kids) with
        | "nil", [] -> 0
        | "cons", [ n; _ ] -> n + 1
        | _ -> assert false)
      toks
  in
  check_int "empty" 0 (count []);
  check_int "three" 3 (count [ ("X", ()); ("X", ()); ("X", ()) ])

let test_cfg_validation () =
  let bad f = match f () with exception Cfg.Error _ -> true | _ -> false in
  check_bool "unknown rhs symbol" true
    (bad (fun () -> Cfg.make ~terminals:[ "X" ] ~start:"s" [ p "s" "s" [ "Y" ] ]));
  check_bool "bad start" true
    (bad (fun () -> Cfg.make ~terminals:[ "X" ] ~start:"t" [ p "s" "s" [ "X" ] ]));
  check_bool "terminal = nonterminal" true
    (bad (fun () -> Cfg.make ~terminals:[ "s" ] ~start:"s" [ p "s" "s" [] ]));
  check_bool "dup names" true
    (bad (fun () ->
         Cfg.make ~terminals:[ "X" ] ~start:"s"
           [ p "s" "s" [ "X" ]; p "s" "s" [] ]))

(* Random expression property: parse a random arithmetic sentence and
   compare with a reference recursive-descent evaluation. *)
let gen_expr_string =
  QCheck.Gen.(
    let rec go depth =
      if depth = 0 then map string_of_int (int_range 0 9)
      else
        frequency
          [
            (2, map string_of_int (int_range 0 9));
            (2, map2 (fun a b -> a ^ "+" ^ b) (go (depth - 1)) (go (depth - 1)));
            (2, map2 (fun a b -> a ^ "*" ^ b) (go (depth - 1)) (go (depth - 1)));
            (1, map (fun a -> "(" ^ a ^ ")") (go (depth - 1)));
          ]
    in
    go 5)

(* reference: precedence-climbing on the same token list *)
let reference_eval toks =
  let toks = ref toks in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let advance () = toks := List.tl !toks in
  let rec atom () =
    match peek () with
    | Some ("NUM", v) ->
        advance ();
        v
    | Some ("LP", _) ->
        advance ();
        let v = sum () in
        advance () (* RP *);
        v
    | _ -> failwith "ref"
  and product () =
    let v = ref (atom ()) in
    let rec loop () =
      match peek () with
      | Some ("TIMES", _) ->
          advance ();
          v := !v * atom ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and sum () =
    let v = ref (product ()) in
    let rec loop () =
      match peek () with
      | Some ("PLUS", _) ->
          advance ();
          v := !v + product ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  in
  sum ()

let prop_matches_reference =
  qc "LALR parse = precedence climbing" (QCheck.make ~print:Fun.id gen_expr_string)
    (fun s ->
      let toks = toks_of_string s in
      eval (parse_expr toks) = reference_eval toks)

let suite =
  [
    ( "lrgen",
      [
        Alcotest.test_case "no conflicts" `Quick test_no_conflicts;
        Alcotest.test_case "simple parses" `Quick test_simple_parse;
        Alcotest.test_case "left assoc" `Quick test_left_associativity;
        Alcotest.test_case "syntax errors" `Quick test_syntax_error;
        Alcotest.test_case "right assoc" `Quick test_right_assoc;
        Alcotest.test_case "nonassoc" `Quick test_nonassoc;
        Alcotest.test_case "lalr not slr" `Quick test_lalr_not_slr;
        Alcotest.test_case "empty production" `Quick test_empty_production;
        Alcotest.test_case "cfg validation" `Quick test_cfg_validation;
        prop_matches_reference;
      ] );
  ]
