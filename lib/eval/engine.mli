(** The shared evaluation engine.

    Every evaluator in this library fires the same thing: one semantic-rule
    instance at one node, reading argument slots and defining a target slot
    in a flat {!Store}. The engine owns that core once — a flat table of
    rule instances (rule, owning node, packed memo key, target slot,
    resolved argument codes) over a store, plus the optional rule-result
    memo and the slot-level dependency graph. Evaluators are just schedules
    over it: the data-driven topological order ({!run_topo}, used by
    {!Dynamic}), the plan's visit sequences ({!Static_eval}), the parallel
    worker's item graph ({!Pag_parallel.Worker}), and the dirty cone of an
    edit ({!Incr}).

    Instances of one node are consecutive and keyed by the store's dense
    preorder index, so [(node, rule index)] resolves to a rule id with two
    array reads, and appending a replacement subtree extends the tables
    without rebuilding — the basis of incremental re-evaluation. *)

open Pag_core

type t

(** Raised by {!run_topo} when instances remain unevaluated (circular
    dependencies or missing root attributes). *)
exception Cycle of string

(** [create ?memo ?rules_for g store] resolves the rule instances of every
    covered node, in the store's dense preorder. [rules_for] (default: all)
    selects which interior nodes contribute instances — the parallel worker
    excludes remote stubs, whose defining rules live on other machines.
    [memo] enables rule-result memoization in {!fire}/{!refire}. *)
val create :
  ?memo:Memo.rules -> ?rules_for:(Tree.t -> bool) -> Grammar.t -> Store.t -> t

val store : t -> Store.t

val grammar : t -> Grammar.t

(** Rule instances allocated (live and dead). *)
val rule_count : t -> int

(** Total non-constant (slot) arguments across all instances — the
    dependency-edge count evaluator stats report. *)
val slot_args : t -> int

(** Rule firings so far ({!fire} + {!fire_at} + {!refire}). *)
val fired : t -> int

(** {1 Instance table} *)

val rule_of : t -> int -> Grammar.rule

val node_of : t -> int -> Tree.t

(** Packed (production id, rule index) — the memo's notion of "the same
    semantic function". *)
val key : t -> int -> int

val target_slot : t -> int -> int

(** The (node, attribute) instance a rule id defines. *)
val target_instance : t -> int -> Tree.t * string

(** [rid_at e node ridx] — rule id of [node]'s [ridx]-th production rule. *)
val rid_at : t -> Tree.t -> int -> int

(** Iterate a rule's slot (non-constant) argument ids. *)
val iter_slot_args : t -> int -> (int -> unit) -> unit

(** Rule instances detached by an edit: skipped by every schedule. *)
val is_dead : t -> int -> bool

(** {1 Firing} *)

(** [fire e rid] gathers arguments, computes (through the rule memo when
    present) and defines the target slot. *)
val fire : t -> int -> unit

(** [fire_at e node ridx] — {!fire} addressed by (node, rule index),
    bypassing the rule memo: the static path's memoization unit is the
    whole subtree visit ({!Memo.subtree}), not the single rule. *)
val fire_at : t -> Tree.t -> int -> unit

(** Like {!fire} but overwrites the target unconditionally and returns
    [true] when its value actually changed — the equality cutoff of
    incremental change propagation. *)
val refire : t -> int -> bool

(** {1 Provenance}

    [set_prov ~pid ~clock e prov] attaches a provenance ring: every
    subsequent firing appends one record (rid, pid, target slot, argument
    slots, t0/t1). Attaching {!Pag_obs.Prov.disabled} (the initial state)
    keeps the firing paths at one branch. [dwell_dynamic]/[dwell_static]
    price the duration of a {!fire}/{!refire} resp. {!fire_at} for
    schedulers whose clock does not advance inside a firing (the network
    simulator charges its cost-model delay after the call returns); when
    absent, durations come from a second clock read — wall time. *)
val set_prov :
  ?pid:int ->
  ?dwell_dynamic:float ->
  ?dwell_static:float ->
  clock:(unit -> float) ->
  t ->
  Pag_obs.Prov.t ->
  unit

(** Retarget subsequent records to another machine id — the simulated
    steal schedule runs every machine fiber over one shared engine. *)
val set_prov_pid : t -> int -> unit

(** The attached ring ({!Pag_obs.Prov.disabled} when none). *)
val prov : t -> Pag_obs.Prov.t

(** Machine id and clock attached by {!set_prov} — for callers recording
    auxiliary provenance (the DAG runtime's projection fan-out records)
    alongside the engine's own firing records. *)
val prov_pid : t -> int

val prov_clock : t -> unit -> float

(** Record zero-duration [replay] firings for every rule instance of a
    subtree whose slots were just set by a memoized replay
    ({!Memo.Replayed}) — keeps provenance slices complete under
    hash-consed evaluation. No-op when no ring is attached. *)
val note_replayed : t -> Tree.t -> unit

(** {1 Edits} *)

(** [append e sub] extends the instance table with the rules of an appended
    replacement subtree; call after {!Store.append_subtree} so dense
    indices line up. Returns the new [(rid_lo, rid_hi)] range (rule ids
    [rid_lo .. rid_hi - 1]). *)
val append : t -> Tree.t -> int * int

(** Mark every rule instance of a detached subtree dead. Nodes whose rules
    were suppressed by [rules_for] are skipped (they have none). *)
val kill_subtree : t -> Tree.t -> unit

(** {1 Suppressed occurrences (DAG evaluation support)}

    [rules_for] at {!create} can park nodes without instances — remote
    stubs, or non-leader occurrences of a shared subtree class. The DAG
    runtime ({!Dag}) resolves a parked occurrence late when its inherited
    context diverges from its class leader's. *)

(** Does the node have resolved rule instances ([rules_for] accepted it or
    {!materialize_subtree} resolved it since)? [rid_at] and
    {!reresolve_node} must not be used while this is [false]. *)
val has_rules : t -> Tree.t -> bool

(** [materialize_subtree e sub] resolves rule instances for every node of
    [sub] whose rules were suppressed at construction. The nodes' slots
    already exist in the store (unlike {!append}); the instances land at
    the end of the flat table, so follow with {!graph_note_range} exactly
    as after an append. [prune] cuts whole child subtrees out of the walk
    (the root is never pruned) — the DAG runtime uses it to materialize a
    region's spine while nested parked regions stay suppressed. Returns
    the new [(rid_lo, rid_hi)]. *)
val materialize_subtree : ?prune:(Tree.t -> bool) -> t -> Tree.t -> int * int

(** {1 Dependency graph} *)

(** Slot-level dependency graph: consumer edges (slot → rule instances
    reading it) in CSR form, with an overflow table for edges added by
    edits, plus the producer map (slot → defining rule id). *)
type graph

val graph : t -> graph

(** Rule id defining a slot, [-1] when none (intrinsic or preset). *)
val producer : graph -> int -> int

val iter_consumers : graph -> int -> (int -> unit) -> unit

(** Register a rid range appended by {!append}: producer entries for their
    targets, consumer edges for their arguments. *)
val graph_note_range : t -> graph -> rid_lo:int -> rid_hi:int -> unit

(** [reresolve_node e ?graph node] recomputes the targets and argument
    codes of [node]'s instances after one of its children was replaced.
    Only references that moved are rewritten; when [graph] is given, moved
    targets update its producer map and moved arguments gain consumer
    edges (stale edges from dead slots are inert — dead slots are never
    redefined). *)
val reresolve_node : t -> ?graph:graph -> Tree.t -> unit

(** {1 Topological schedule}

    [run_topo e gr] fires every live instance whose arguments are all set,
    in data-driven topological order, until the store is complete. Returns
    the number of firings. Raises {!Cycle} when instances remain
    unevaluated. *)
val run_topo : t -> graph -> int

(** {1 Work-stealing schedule}

    [run_steal ~domains ~owner ~uid_base e gr] fires the same fixed point
    as {!run_topo}, parallel across [domains] OCaml domains: per-domain
    Chase-Lev deques of ready instance ids ({!Steal}), atomic dependency
    counters, steal-half victim selection with exponential backoff, and an
    exact task-census termination barrier. [owner] maps a rule-instance id
    to the domain whose deque it is seeded on when initially ready (an
    affinity hint — stealing overrides it); the default block-partitions
    the instance table. Each domain [d] allocates uids from its own stripe
    [uid_base + d * Uid.stride], so label numbers depend on the schedule
    (compare label-masked output across schedules, or use a grammar that
    consumes no uids for bit-identical stores).

    Firing bypasses the rule memo (not domain-safe); semantic rules are
    pure, so results are unchanged. The engine-attached provenance ring is
    not used here (it is not domain-safe either): pass [prov], one ring
    per domain, and each domain records its own firings with its domain id
    as pid and [prov_clock] (typically wall time) as the clock. Returns
    the number of firings and the per-domain scheduler statistics. Raises
    {!Cycle} as {!run_topo} does. *)
val run_steal :
  ?domains:int ->
  ?owner:(int -> int) ->
  ?uid_base:int ->
  ?prov:Pag_obs.Prov.t array ->
  ?prov_clock:(unit -> float) ->
  t ->
  graph ->
  int * Steal.stats array

(** {1 Batched refire waves} *)

type refire_stats = {
  rf_refired : int;  (** members actually re-fired *)
  rf_cutoff : int;  (** members skipped by the equality cutoff *)
  rf_rounds : int;  (** level-synchronous rounds ([0] in domains mode) *)
  rf_round_refired : int array;  (** refires per round, in wave order *)
}

(** [refire_set e gr ~cone ~is_seed ~changed ~epoch] re-fires a merged
    dirty cone — the union of several edits' dirty cones, sorted ascending
    — as a wave of parallel rounds: round [r] holds the members whose
    cone-internal producers all completed earlier, a level-synchronous
    Kahn schedule of the cone subgraph. The equality cutoff is preserved
    per slot through the caller's epoch-stamp array [changed]: a member
    that is not a seed and none of whose argument slots carry stamp
    [epoch] is skipped without computing, and a re-fired member stamps its
    target only when the stored value moved ({!Store.redefine_slot}).

    The default sequential mode drives {!refire} — rule memo and attached
    provenance included, so [--profile] blame spans a batched wave. With
    [domains > 1] the wave runs on the work-stealing machinery of
    {!run_steal} restricted to the cone: per-domain Chase-Lev deques
    seeded by cone ownership ([owner], typically edit index of the cone
    that first reached a member), atomic waiting counters, poked writes
    committed after the join, per-domain uid stripes above [uid_base]; the
    memo and the attached provenance ring are bypassed (not domain-safe)
    and [rf_rounds] is reported as [0] (rounds are a property of the
    level-synchronous schedule). Raises {!Cycle} when a dependency cycle
    threads the cone — callers fall back to a from-scratch rebuild. *)
val refire_set :
  ?domains:int ->
  ?owner:(int -> int) ->
  ?uid_base:int ->
  t ->
  graph ->
  cone:int array ->
  is_seed:(int -> bool) ->
  changed:int array ->
  epoch:int ->
  refire_stats
