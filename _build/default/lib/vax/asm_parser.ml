exception Parse_error of int * string

let error line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let reg_of_name line = function
  | "ap" -> 12
  | "fp" -> 13
  | "sp" -> 14
  | "pc" -> 15
  | s
    when String.length s >= 2
         && s.[0] = 'r'
         && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))
    ->
      let n = int_of_string (String.sub s 1 (String.length s - 1)) in
      if n > 15 then error line "bad register %s" s else n
  | s -> error line "bad register %s" s

let parse_operand line s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then error line "empty operand"
  else if s.[0] = '$' then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some v -> Isa.Imm v
    | None -> error line "bad immediate %s" s
  else if s.[0] = '(' && n > 2 && s.[n - 1] = '+' && s.[n - 2] = ')' then
    Isa.PostInc (reg_of_name line (String.sub s 1 (n - 3)))
  else if s.[0] = '-' && n > 2 && s.[1] = '(' && s.[n - 1] = ')' then
    Isa.PreDec (reg_of_name line (String.sub s 2 (n - 3)))
  else if s.[0] = '(' && s.[n - 1] = ')' then
    Isa.Deref (reg_of_name line (String.sub s 1 (n - 2)))
  else
    match String.index_opt s '(' with
    | Some i when s.[n - 1] = ')' ->
        let disp = String.sub s 0 i in
        let reg = String.sub s (i + 1) (n - i - 2) in
        let d =
          match int_of_string_opt disp with
          | Some d -> d
          | None -> error line "bad displacement %s" s
        in
        Isa.Disp (d, reg_of_name line reg)
    | _ -> (
        match int_of_string_opt s with
        | Some _ -> error line "bare integer operand %s (missing $ or (r)?)" s
        | None ->
            if
              (s.[0] >= 'a' && s.[0] <= 'z')
              || (s.[0] >= 'A' && s.[0] <= 'Z')
              || s.[0] = '_'
            then
              match s with
              | "ap" | "fp" | "sp" | "pc" -> Isa.Reg (reg_of_name line s)
              | _ ->
                  if
                    String.length s <= 3
                    && s.[0] = 'r'
                    && String.length s >= 2
                    && s.[1] >= '0'
                    && s.[1] <= '9'
                  then Isa.Reg (reg_of_name line s)
                  else Isa.Lbl s
            else error line "bad operand %s" s)

(* Split operands at top-level commas (no nesting to worry about). *)
let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_line line s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if s = "" then None
  else if s.[String.length s - 1] = ':' then
    Some (Isa.Label (String.trim (String.sub s 0 (String.length s - 1))))
  else
    let op, rest =
      match String.index_opt s '\t' with
      | Some i ->
          (String.sub s 0 i, String.sub s i (String.length s - i))
      | None -> (
          match String.index_opt s ' ' with
          | Some i -> (String.sub s 0 i, String.sub s i (String.length s - i))
          | None -> (s, ""))
    in
    let op = String.trim op and args = split_operands (String.trim rest) in
    let p = parse_operand line in
    let two f =
      match args with
      | [ a; b ] -> f (p a) (p b)
      | _ -> error line "%s expects 2 operands" op
    in
    let three f =
      match args with
      | [ a; b; c ] -> f (p a) (p b) (p c)
      | _ -> error line "%s expects 3 operands" op
    in
    let one f =
      match args with [ a ] -> f (p a) | _ -> error line "%s expects 1 operand" op
    in
    let branch f =
      match args with
      | [ l ] -> f l
      | _ -> error line "%s expects a label" op
    in
    Some
      (match op with
      | "movl" -> two (fun a b -> Isa.Movl (a, b))
      | "moval" -> two (fun a b -> Isa.Moval (a, b))
      | "pushl" -> one (fun a -> Isa.Pushl a)
      | "addl2" -> two (fun a b -> Isa.Addl2 (a, b))
      | "addl3" -> three (fun a b c -> Isa.Addl3 (a, b, c))
      | "subl2" -> two (fun a b -> Isa.Subl2 (a, b))
      | "subl3" -> three (fun a b c -> Isa.Subl3 (a, b, c))
      | "mull2" -> two (fun a b -> Isa.Mull2 (a, b))
      | "divl2" -> two (fun a b -> Isa.Divl2 (a, b))
      | "divl3" -> three (fun a b c -> Isa.Divl3 (a, b, c))
      | "mnegl" -> two (fun a b -> Isa.Mnegl (a, b))
      | "cmpl" -> two (fun a b -> Isa.Cmpl (a, b))
      | "tstl" -> one (fun a -> Isa.Tstl a)
      | "beql" -> branch (fun l -> Isa.Beql l)
      | "bneq" -> branch (fun l -> Isa.Bneq l)
      | "blss" -> branch (fun l -> Isa.Blss l)
      | "bleq" -> branch (fun l -> Isa.Bleq l)
      | "bgtr" -> branch (fun l -> Isa.Bgtr l)
      | "bgeq" -> branch (fun l -> Isa.Bgeq l)
      | "brb" | "jmp" -> branch (fun l -> Isa.Brb l)
      | "calls" -> (
          match args with
          | [ n; l ] -> (
              match p n with
              | Isa.Imm k -> Isa.Calls (k, l)
              | _ -> error line "calls expects $n,label")
          | _ -> error line "calls expects $n,label")
      | "ret" -> Isa.Ret
      | "halt" -> Isa.Halt
      | other -> error line "unknown instruction %S" other)

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i l -> match parse_line (i + 1) l with Some x -> [ x ] | None -> [])
       lines)
