open Agspec
open Pag_core

let qc ?(count = 50) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let t = lazy (Lazy.force Appendix.translator)

let eval_str src =
  let tr = Lazy.force t in
  let tree = Compile.parse tr src in
  match List.assoc "value" (Compile.evaluate tr tree) with
  | Value.Int n -> n
  | v -> Alcotest.failf "expected an int, got %s" (Value.to_string v)

(* ---------------- spec parser ---------------- *)

let test_spec_parses () =
  let spec = Lazy.force Appendix.spec in
  check_int "two %name terminals" 2 (List.length spec.Spec_ast.s_names);
  check_int "eight keywords" 8 (List.length spec.Spec_ast.s_keywords);
  check_int "three nonterminals" 3 (List.length spec.Spec_ast.s_nts);
  check_int "eight productions" 8 (List.length spec.Spec_ast.s_prods);
  Alcotest.(check string) "start" "main_expr" spec.Spec_ast.s_start

let test_spec_split_info () =
  let spec = Lazy.force Appendix.spec in
  let block =
    List.find (fun nt -> nt.Spec_ast.nt_name = "block") spec.Spec_ast.s_nts
  in
  check_bool "block splittable at 64" true (block.Spec_ast.nt_split = Some 64);
  let expr =
    List.find (fun nt -> nt.Spec_ast.nt_name = "expr") spec.Spec_ast.s_nts
  in
  check_bool "expr not splittable" true (expr.Spec_ast.nt_split = None);
  check_bool "stab is priority" true
    (List.exists
       (fun a -> a.Spec_ast.a_name = "stab" && a.Spec_ast.a_priority)
       expr.Spec_ast.nt_attrs)

let test_spec_errors () =
  let bad src =
    match Spec_parser.parse src with
    | exception Spec_parser.Error _ -> true
    | _ -> false
  in
  check_bool "missing start" true (bad "%nosplit e : syn v\n%%\ne -> e");
  check_bool "unknown directive" true (bad "%frobnicate x\n%%");
  check_bool "bad rule" true
    (bad "%start e\n%nosplit e : syn v\n%%\ne -> e { $$ = 1; }")

(* ---------------- generated translator ---------------- *)

let test_appendix_example () =
  check_int "appendix worked example" 5 (eval_str "let x = 2 in 1 + 2 * x ni")

let test_arithmetic () =
  check_int "plain" 7 (eval_str "1 + 2 * 3");
  check_int "parens" 9 (eval_str "(1 + 2) * 3");
  check_int "precedence" 23 (eval_str "2 * 4 + 3 * 5")

let test_nested_lets () =
  check_int "nested"
    21
    (eval_str "let a = 2 in let b = a * 5 in a + b + 9 ni ni");
  check_int "shadowing" 4 (eval_str "let x = 1 in let x = 3 in x + 1 ni ni")

let test_parse_error () =
  match Compile.parse (Lazy.force t) "1 + * 2" with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "expected a syntax error"

let test_scan_error () =
  match Compile.parse (Lazy.force t) "1 ? 2" with
  | exception Compile.Scan_error _ -> ()
  | _ -> Alcotest.fail "expected a scan error"

let test_unbound_identifier () =
  match eval_str "ghost + 1" with
  | exception Primitives.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected unbound identifier"

let test_grammar_is_ordered () =
  check_bool "Kastens accepts the generated grammar" true
    (Compile.plan (Lazy.force t) <> None)

let test_no_parser_conflicts () =
  Alcotest.(check (list string))
    "precedence resolves the expression grammar" []
    (Lrgen.Lalr.conflicts (Compile.tables (Lazy.force t)))

let test_parallel_evaluation () =
  let tr = Lazy.force t in
  (* a program with enough blocks to split *)
  let src =
    "let a = 1 in let b = 2 in let c = 3 in let d = 4 in \
     a + b * (let e = a + 10 in e * e ni) + c * d + (let f = 5 in f + b ni) \
     ni ni ni ni"
  in
  let tree = Compile.parse tr src in
  let expected =
    match List.assoc "value" (Compile.evaluate tr tree) with
    | Value.Int n -> n
    | _ -> assert false
  in
  for m = 1 to 4 do
    let tree = Compile.parse tr src in
    let r =
      Compile.evaluate_parallel tr
        { Pag_parallel.Runner.default_options with Pag_parallel.Runner.machines = m }
        tree
    in
    match List.assoc "value" r.Pag_parallel.Runner.r_attrs with
    | Value.Int n -> check_int (Printf.sprintf "@%d machines" m) expected n
    | _ -> Alcotest.fail "expected an int"
  done

(* Random sentences: generated translator agrees with Expr_ag's reference
   semantics. Build a random well-scoped expression source. *)
let gen_source =
  QCheck.Gen.(
    let rec go depth vars =
      if depth = 0 then
        if vars <> [] && Random.bool () then oneofl vars
        else map string_of_int (int_range 0 20)
      else
        frequency
          [
            (2, map string_of_int (int_range 0 20));
            ( 3,
              map2 (fun a b -> "(" ^ a ^ " + " ^ b ^ ")") (go (depth - 1) vars)
                (go (depth - 1) vars) );
            ( 2,
              map2 (fun a b -> "(" ^ a ^ " * " ^ b ^ ")") (go (depth - 1) vars)
                (go (depth - 1) vars) );
            ( 2,
              let v = Printf.sprintf "v%d" (List.length vars) in
              map2
                (fun bound body ->
                  Printf.sprintf "let %s = %s in %s ni" v bound body)
                (go (depth - 1) vars)
                (go (depth - 1) (v :: vars)) );
          ]
    in
    go 4 [])

(* Direct interpreter of the same sentences. *)
let reference src =
  let tr = Lazy.force t in
  let tree = Compile.parse tr src in
  (* reuse the oracle evaluator as reference *)
  let store = Pag_eval.Oracle.eval (Compile.grammar tr) tree in
  match Pag_eval.Store.get store (Pag_eval.Store.root store) "value" with
  | Value.Int n -> n
  | _ -> assert false

let prop_static_matches_oracle =
  qc "generated static evaluator = oracle" (QCheck.make ~print:Fun.id gen_source)
    (fun src -> eval_str src = reference src)

let suite =
  [
    ( "agspec",
      [
        Alcotest.test_case "spec parses" `Quick test_spec_parses;
        Alcotest.test_case "split info" `Quick test_spec_split_info;
        Alcotest.test_case "spec errors" `Quick test_spec_errors;
        Alcotest.test_case "appendix example" `Quick test_appendix_example;
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "nested lets" `Quick test_nested_lets;
        Alcotest.test_case "parse error" `Quick test_parse_error;
        Alcotest.test_case "scan error" `Quick test_scan_error;
        Alcotest.test_case "unbound identifier" `Quick test_unbound_identifier;
        Alcotest.test_case "grammar ordered" `Quick test_grammar_is_ordered;
        Alcotest.test_case "no conflicts" `Quick test_no_parser_conflicts;
        Alcotest.test_case "parallel evaluation" `Quick test_parallel_evaluation;
        prop_static_matches_oracle;
      ] );
  ]
