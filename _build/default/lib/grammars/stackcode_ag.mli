(** A miniature compiler-shaped attribute grammar: let-expressions with
    {e program-global} constant bindings, translated to stack-machine code.

    This is the smallest grammar with the structure of the paper's Pascal
    grammar: a first visit collects declarations bottom-up ([decls],
    the symbol-table phase of figure 6), the root turns them into a global
    symbol table that flows back down as the priority attribute [stab], and a
    second visit computes [value] and the code attribute [code] (the code
    generation phase). Bindings bind identifiers to literal numbers, so the
    grammar is ordered with exactly two visits. [code] is a
    {!Pag_core.Codestr} value, so the string librarian path is exercised;
    block labels are drawn from {!Pag_core.Uid}, exercising per-evaluator
    unique-identifier bases. [block] subtrees are splittable. *)

open Pag_core

val grammar : Grammar.t

val split_min_bytes : int

(** {1 Tree builders} *)

val num : int -> Tree.t

val var : string -> Tree.t

val add : Tree.t -> Tree.t -> Tree.t

val mul : Tree.t -> Tree.t -> Tree.t

(** [let_in x n body]: binds [x] to the literal [n], globally visible. *)
val let_in : string -> int -> Tree.t -> Tree.t

val main : Tree.t -> Tree.t

(** [random_program st ~depth ~blocks] builds a program with [blocks]
    uniquely-named global bindings and a body of roughly depth [depth]. *)
val random_program : Random.State.t -> depth:int -> blocks:int -> Tree.t

(** Ground-truth value, computed by direct interpretation. *)
val reference_value : Tree.t -> int

(** Ground-truth code text (with label numbers masked, since labels depend
    on the evaluator decomposition). *)
val mask_labels : string -> string
