lib/pascal/interp.mli: Ast
