type t =
  | Leaf of string
  | Cat of { left : t; right : t; len : int; dep : int }

let empty = Leaf ""

let of_string s = Leaf s

let length = function Leaf s -> String.length s | Cat c -> c.len

let depth = function Leaf _ -> 0 | Cat c -> c.dep

let is_empty r = length r = 0

(* Plain two-child node, no balancing concerns. *)
let cat a b =
  Cat
    {
      left = a;
      right = b;
      len = length a + length b;
      dep = 1 + max (depth a) (depth b);
    }

let rec concat_balanced rs n =
  (* [rs] has [n] elements; split in half to keep the result shallow. *)
  match rs with
  | [] -> empty
  | [ r ] -> r
  | _ ->
      let half = n / 2 in
      let rec split i acc = function
        | rest when i = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (i - 1) (r :: acc) rest
      in
      let l, r = split half [] rs in
      cat (concat_balanced l half) (concat_balanced r (n - half))

(* All traversals carry an explicit work list so deep ropes (built by long
   left- or right-leaning concatenation chains) cannot overflow the stack. *)

let iter_chunks f r =
  let rec go = function
    | [] -> ()
    | Leaf "" :: rest -> go rest
    | Leaf s :: rest ->
        f s;
        go rest
    | Cat c :: rest -> go (c.left :: c.right :: rest)
  in
  go [ r ]

let fold_chunks f init r =
  let acc = ref init in
  iter_chunks (fun s -> acc := f !acc s) r;
  !acc

let leaf_count r = fold_chunks (fun n _ -> n + 1) 0 r

(* ------------------------------------------------------------------ *)
(* Balancing                                                           *)
(* ------------------------------------------------------------------ *)

(* Appending many small fragments (code attributes are built exactly that
   way) is kept cheap by two measures working together:

   - short-leaf merging: when the rightmost leaf and the appended string
     fit in [max_leaf] bytes together, they are merged into one leaf, so a
     long fold grows the tree depth once per ~[max_leaf] bytes instead of
     once per fragment;
   - a depth-triggered rebuild: a concat whose result is deeper than
     [depth_trigger] yet shorter than the Fibonacci bound for that depth
     (Boehm's balance criterion) is flattened into a balanced tree.

   Rebuilds copy the text once, and between two rebuilds the rope must
   re-accumulate depth proportional to the trigger, so the copying cost
   amortizes over the bytes appended; ordinary concats stay O(1). *)

let max_leaf = 128

let depth_trigger = 32

(* fib.(d): minimum length at which depth d counts as balanced. *)
let fib =
  let a = Array.make 91 1 in
  for i = 2 to 90 do
    a.(i) <- a.(i - 1) + a.(i - 2)
  done;
  a

let balanced r =
  let d = depth r in
  d <= depth_trigger || length r >= fib.(min d 90)

let rebalance r =
  let leaves = ref [] and n = ref 0 in
  let buf = Buffer.create max_leaf in
  let push l =
    leaves := l :: !leaves;
    incr n
  in
  let flush () =
    if Buffer.length buf > 0 then begin
      push (Leaf (Buffer.contents buf));
      Buffer.clear buf
    end
  in
  iter_chunks
    (fun s ->
      if String.length s >= max_leaf then begin
        flush ();
        push (Leaf s)
      end
      else begin
        if Buffer.length buf + String.length s > max_leaf then flush ();
        Buffer.add_string buf s
      end)
    r;
  flush ();
  concat_balanced (List.rev !leaves) !n

let concat a b =
  if is_empty a then b
  else if is_empty b then a
  else
    let merged =
      (* Merge short rightmost leaves so folds of small fragments do not
         deepen the tree one level per fragment. *)
      match (a, b) with
      | Leaf sa, Leaf sb when String.length sa + String.length sb <= max_leaf
        ->
          Some (Leaf (sa ^ sb))
      | Cat c, Leaf sb -> (
          match c.right with
          | Leaf sr when String.length sr + String.length sb <= max_leaf ->
              Some
                (Cat
                   {
                     left = c.left;
                     right = Leaf (sr ^ sb);
                     len = c.len + String.length sb;
                     dep = c.dep;
                   })
          | _ -> None)
      | Leaf sa, Cat c -> (
          match c.left with
          | Leaf sl when String.length sa + String.length sl <= max_leaf ->
              Some
                (Cat
                   {
                     left = Leaf (sa ^ sl);
                     right = c.right;
                     len = String.length sa + c.len;
                     dep = c.dep;
                   })
          | _ -> None)
      | _ -> None
    in
    let r = match merged with Some r -> r | None -> cat a b in
    if balanced r then r else rebalance r

let concat_list rs = concat_balanced rs (List.length rs)

let to_string r =
  let buf = Buffer.create (length r) in
  iter_chunks (Buffer.add_string buf) r;
  Buffer.contents buf

let output oc r = iter_chunks (output_string oc) r

(* Chunk-stream comparison: walk both ropes' leaves in lockstep, comparing
   character ranges, so neither rope is flattened. *)
type cursor = { mutable chunks : t list; mutable s : string; mutable pos : int }

let cursor_of r = { chunks = [ r ]; s = ""; pos = 0 }

let rec cursor_refill c =
  if c.pos < String.length c.s then true
  else
    match c.chunks with
    | [] -> false
    | Leaf s :: rest ->
        c.chunks <- rest;
        c.s <- s;
        c.pos <- 0;
        cursor_refill c
    | Cat cat :: rest ->
        c.chunks <- cat.left :: cat.right :: rest;
        cursor_refill c

let compare a b =
  if a == b then 0
  else if length a = 0 && length b = 0 then 0
  else
    let ca = cursor_of a and cb = cursor_of b in
    let rec go () =
      match (cursor_refill ca, cursor_refill cb) with
      | false, false -> 0
      | false, true -> -1
      | true, false -> 1
      | true, true ->
          let n =
            min (String.length ca.s - ca.pos) (String.length cb.s - cb.pos)
          in
          let rec cmp i =
            if i = n then 0
            else
              let d =
                Char.compare ca.s.[ca.pos + i] cb.s.[cb.pos + i]
              in
              if d <> 0 then d else cmp (i + 1)
          in
          let d = cmp 0 in
          if d <> 0 then d
          else begin
            ca.pos <- ca.pos + n;
            cb.pos <- cb.pos + n;
            go ()
          end
    in
    go ()

let equal a b = a == b || (length a = length b && compare a b = 0)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Ropes are interned bottom-up: leaves by their string, interior nodes by
   the physical identity of their (already canonical) children — so the
   canonical form preserves the shape, and two ropes built by the same
   sequence of operations share one representation. Structural hashes are
   memoized per canonical node, making {!hash} O(1) after interning. *)

module Phys = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )

  (* The polymorphic hash only ever visits a bounded prefix of the value,
     and physically equal values hash equally — all a cache keyed by
     identity needs. *)
  let hash = Hashtbl.hash
end)

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6))

let hash_memo : int Phys.t = Phys.create 1024

(* Shallow hash: children must already be memoized (or be leaves). *)
let node_hash = function
  | Leaf s -> mix 0x5eaf (Hashtbl.hash s)
  | Cat c ->
      let h sub =
        match Phys.find_opt hash_memo sub with
        | Some h -> h
        | None -> (
            match sub with Leaf s -> mix 0x5eaf (Hashtbl.hash s) | Cat _ -> 0)
      in
      mix (h c.left) (h c.right)

let node_equal a b =
  match (a, b) with
  | Leaf x, Leaf y -> String.equal x y
  | Cat x, Cat y -> x.left == y.left && x.right == y.right
  | _ -> false

let arena = Hcons.create ~hash:node_hash ~equal:node_equal "rope"

(* Physical-identity cache of already-interned ropes: re-interning a value
   that flows through many rules is a constant-time lookup. Direct-mapped
   (not a hashtable) so the many physically distinct copies of one popular
   string a parse produces evict each other instead of chaining, and the
   bound doubles as the garbage-pinning cap. *)
let canon_memo : (t, t) Phys_cache.t = Phys_cache.create 16

let remember r c = Phys_cache.replace canon_memo r c

(* Already-canonical nodes are exactly the keys of [hash_memo]; testing it
   first makes re-interning a canonical rope O(1). Without this, interning
   recurses into both children before consulting the arena — on canonical
   ropes with shared subtrees (hash-consed evaluation builds DAGs, not
   trees) an eviction from [canon_memo] then re-walks the DAG as a tree,
   which is exponential in the sharing depth. *)
let rec intern r =
  if Phys.mem hash_memo r then r
  else
    match Phys_cache.find_opt canon_memo r with
    | Some c -> c
    | None ->
      let cand =
        match r with
        | Leaf _ -> r
        | Cat c ->
            let l = intern c.left and rt = intern c.right in
            if l == c.left && rt == c.right then r
            else Cat { left = l; right = rt; len = c.len; dep = c.dep }
      in
      let canon = Hcons.intern arena cand in
      if not (Phys.mem hash_memo canon) then
        Phys.replace hash_memo canon (node_hash canon);
      remember r canon;
      canon

let hash r =
  let c = intern r in
  match Phys.find_opt hash_memo c with Some h -> h | None -> node_hash c

let backref_bytes = 8

(* DAG-encoded wire size: nodes of the canonical form counted once, a
   repeated node costs a fixed backreference (only when that is cheaper
   than its text, so a sharing-free rope costs exactly [length]). *)
let dag_size r =
  let seen : unit Phys.t = Phys.create 64 in
  let rec go r =
    if Phys.mem seen r then backref_bytes
    else
      let s =
        match r with
        | Leaf s -> String.length s
        | Cat c -> go c.left + go c.right
      in
      if s > backref_bytes then Phys.replace seen r ();
      s
  in
  go (intern r)

let pp fmt r = Format.pp_print_string fmt (to_string r)
