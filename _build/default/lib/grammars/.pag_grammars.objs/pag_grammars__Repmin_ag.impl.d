lib/grammars/repmin_ag.ml: Array Grammar Pag_core Random Tree Value
