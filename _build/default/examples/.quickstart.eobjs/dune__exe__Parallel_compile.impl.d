examples/parallel_compile.ml: Array Driver Format Netsim Pag_parallel Pascal Pp Printf Progen Random Runner Split Sys
