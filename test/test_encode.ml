open Vax

let qc ?(count = 100) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)

let sample_program =
  Isa.
    [
      Label "_main";
      Subl2 (Imm 12, Reg 14);
      Movl (Disp (4, 12), Disp (-4, 13));
      Movl (Imm 0, Reg 0);
      Label "loop";
      Cmpl (Reg 0, Imm 10);
      Bgeq "done";
      Pushl (Reg 0);
      Calls (1, "_print_int");
      Addl2 (Imm 1, Reg 0);
      Brb "loop";
      Label "done";
      Ret;
      Halt;
    ]

let test_roundtrip () =
  let obj = Encode.encode sample_program in
  check_bool "round trip" true (Encode.decode obj = sample_program)

let test_comments_dropped () =
  let prog = Isa.[ Comment "hello"; Halt ] in
  check_bool "comments dropped" true (Encode.decode (Encode.encode prog) = [ Isa.Halt ])

let test_compactness () =
  (* the paper's motivation for integrating assembly into the compiler *)
  let text = String.length (Isa.to_string sample_program) in
  let binary = Encode.encoded_size sample_program in
  check_bool
    (Printf.sprintf "binary %dB < text %dB" binary text)
    true (binary < text)

let test_compactness_on_compiled_pascal () =
  let src =
    "program t; var i, s : integer; begin s := 0; for i := 1 to 9 do begin s \
     := s + i * i end; writeln(s) end."
  in
  let c = Pascal.Driver.compile_source src in
  let instrs = Asm_parser.parse c.Pascal.Driver.c_asm in
  let text = String.length c.Pascal.Driver.c_asm in
  let binary = Encode.encoded_size instrs in
  check_bool
    (Printf.sprintf "compiled code: binary %dB vs text %dB" binary text)
    true
    (float_of_int binary < 0.6 *. float_of_int text);
  (* and the object still denotes the same program *)
  check_bool "decode preserves" true (Encode.decode (Encode.encode instrs) = instrs)

let test_corrupt_rejected () =
  let obj = Encode.encode sample_program in
  (* cut inside the second instruction's immediate operand *)
  let bad = { obj with Encode.o_code = Bytes.sub obj.Encode.o_code 0 5 } in
  match Encode.decode bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected decode failure"

let arb_instrs =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let operand =
    oneof
      [
        map (fun n -> Isa.Imm n) (int_range (-100000) 100000);
        map (fun r -> Isa.Reg r) reg;
        map (fun r -> Isa.Deref r) reg;
        map2 (fun d r -> Isa.Disp (d, r)) (int_range (-5000) 5000) reg;
        map (fun r -> Isa.PostInc r) reg;
        map (fun r -> Isa.PreDec r) reg;
        return (Isa.Lbl "sym");
      ]
  in
  let label = oneofl [ "a"; "b"; "_print_int"; "loop1" ] in
  let instr =
    oneof
      [
        map (fun l -> Isa.Label l) label;
        map2 (fun a b -> Isa.Movl (a, b)) operand operand;
        map (fun a -> Isa.Pushl a) operand;
        (let three f =
           map (fun ((a, b), c) -> f a b c) (pair (pair operand operand) operand)
         in
         three (fun a b c -> Isa.Subl3 (a, b, c)));
        map2 (fun a b -> Isa.Cmpl (a, b)) operand operand;
        map (fun l -> Isa.Bneq l) label;
        map2 (fun n l -> Isa.Calls (n, l)) (int_bound 10) label;
        return Isa.Ret;
        return Isa.Halt;
      ]
  in
  QCheck.make
    ~print:(fun l -> Isa.to_string l)
    (list_size (int_bound 30) instr)

let prop_roundtrip =
  qc "encode/decode round trips" arb_instrs (fun prog ->
      Encode.decode (Encode.encode prog) = prog)

let suite =
  [
    ( "encode",
      [
        Alcotest.test_case "round trip" `Quick test_roundtrip;
        Alcotest.test_case "comments" `Quick test_comments_dropped;
        Alcotest.test_case "compactness" `Quick test_compactness;
        Alcotest.test_case "compiled pascal" `Quick
          test_compactness_on_compiled_pascal;
        Alcotest.test_case "corrupt rejected" `Quick test_corrupt_rejected;
        prop_roundtrip;
      ] );
  ]
