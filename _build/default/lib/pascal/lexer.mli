(** Hand-written scanner for the Pascal subset. Case-insensitive keywords,
    [{ }] and [(* *)] comments, decimal numbers, ['c'] character literals. *)

exception Lex_error of int * string
(** line (1-based), message *)

(** Tokens with their line numbers; ends with [EOF]. *)
val tokenize : string -> (Token.t * int) list
