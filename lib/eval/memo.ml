open Pag_core
open Pag_analysis

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6))

(* ------------------------------------------------------------------ *)
(* Subtree-visit memo (static evaluator)                               *)
(* ------------------------------------------------------------------ *)

(* Key: which subtree shape, which visit, and the canonical inherited
   values the subtree has received for visits 1..v — everything a visit's
   outcome can depend on besides the shape itself (terminal attributes are
   part of the shape class; semantic rules are pure). Values are canonical
   ({!Value.intern}), so equality is [==] and hashing is O(1). *)
type key = { k_class : int; k_visit : int; k_fp : Value.t array }

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.k_class = b.k_class && a.k_visit = b.k_visit
    && Array.length a.k_fp = Array.length b.k_fp
    &&
    let n = Array.length a.k_fp in
    let rec go i = i >= n || (a.k_fp.(i) == b.k_fp.(i) && go (i + 1)) in
    go 0

  let hash k =
    Array.fold_left
      (fun h v -> mix h (Value.hash v))
      (mix k.k_class k.k_visit) k.k_fp
end)

type stats = {
  st_hits : int;
  st_misses : int;
  st_fallbacks : int;
  st_replayed_slots : int;
}

type t = {
  sharing : Tree.sharing;
  min_size : int;
  tbl : (int * Value.t) array Key_tbl.t;
  (* (class, visit) pairs whose evaluation consumed unique identifiers:
     their results embed labels that must stay distinct per occurrence, so
     they are never memoized. *)
  tainted : (int * int, unit) Hashtbl.t;
  (* Occurrence counts of the recordings currently in progress (a stack:
     recordings nest with the visit recursion). While a recording for a
     class with [k] occurrences is active, a descendant class occurring
     [<= k] times is never worth its own entry — every occurrence of it
     sits inside an occurrence of the ancestor class, so the ancestor's
     replay always covers it. Skipping those keeps list spines linear: the
     [n] tail classes of a repeated statement list would otherwise each
     snapshot their whole range, O(n^2) slots per list. *)
  mutable recording : int list;
  mutable hits : int;
  mutable misses : int;
  mutable fallbacks : int;
  mutable replayed_slots : int;
}

let create ?(min_size = 3) sharing =
  {
    sharing;
    min_size;
    tbl = Key_tbl.create 256;
    tainted = Hashtbl.create 16;
    recording = [];
    hits = 0;
    misses = 0;
    fallbacks = 0;
    replayed_slots = 0;
  }

let sharing t = t.sharing

let stats t =
  {
    st_hits = t.hits;
    st_misses = t.misses;
    st_fallbacks = t.fallbacks;
    st_replayed_slots = t.replayed_slots;
  }

(* What the static evaluator should do at (node, visit): replay a previous
   occurrence's attributes, or evaluate normally — and in the latter case,
   [Evaluate (Some record)] asks it to call [record] once the visit
   completes, to capture the result for the class's later occurrences. *)
type attempt = Replayed | Evaluate of (unit -> unit) option

let no_record = Evaluate None

let fingerprint plan store node v =
  let sym = node.Tree.sym in
  let vals = ref [] in
  let missing = ref false in
  for w = v downto 1 do
    let inh, _ = Kastens.visit_attrs plan ~sym ~visit:w in
    List.iter
      (fun attr ->
        match Store.get_opt store node attr with
        | Some x -> vals := Value.intern x :: !vals
        | None -> missing := true)
      (List.rev inh)
  done;
  if !missing then None else Some (Array.of_list !vals)

let subtree m plan store node v =
  match m with
  | None -> no_record
  | Some m -> (
      let c = m.sharing.Tree.sh_class.(node.Tree.id) in
      let size = m.sharing.Tree.sh_size.(c) in
      let occurs = m.sharing.Tree.sh_occurs.(c) in
      if occurs < 2 || size < m.min_size then no_record
      else if
        (* Covered by an active ancestor recording (see [recording]): no
           entry will exist for this class, so skip the fingerprint and
           table work entirely. *)
        match m.recording with top :: _ -> occurs <= top | [] -> false
      then no_record
      else if Hashtbl.mem m.tainted (c, v) then no_record
      else
        match Store.slot_range store ~id_lo:node.Tree.id ~id_count:size with
        | None ->
            (* A fragment boundary interrupts the subtree: evaluate it the
               ordinary way. *)
            m.fallbacks <- m.fallbacks + 1;
            no_record
        | Some (lo, hi) -> (
            match fingerprint plan store node v with
            | None ->
                m.fallbacks <- m.fallbacks + 1;
                no_record
            | Some fp -> (
                let key = { k_class = c; k_visit = v; k_fp = fp } in
                match Key_tbl.find_opt m.tbl key with
                | Some entries ->
                    Store.replay_range store ~lo entries;
                    m.hits <- m.hits + 1;
                    m.replayed_slots <- m.replayed_slots + Array.length entries;
                    Replayed
                | None ->
                    let u0 = Uid.mark () in
                    m.recording <- occurs :: m.recording;
                    Evaluate
                      (Some
                         (fun () ->
                           (match m.recording with
                           | _ :: rest -> m.recording <- rest
                           | [] -> ());
                           if Uid.mark () <> u0 then
                             Hashtbl.replace m.tainted (c, v) ()
                           else begin
                             m.misses <- m.misses + 1;
                             Key_tbl.replace m.tbl key
                               (Store.snapshot_range store ~lo ~hi)
                           end)))))

(* ------------------------------------------------------------------ *)
(* Rule-result memo (dynamic evaluator)                                *)
(* ------------------------------------------------------------------ *)

(* The dynamic evaluator fires rules out of any subtree-at-a-time order,
   so it cannot replay whole subtrees; instead each rule application is
   memoized on (rule key, canonical arguments). The rule key identifies
   the semantic function — (production id, rule index) — and arguments are
   interned, so a cache hit returns the very value computed for the first
   structurally identical application. Rules that consume unique
   identifiers are detected on first application and never memoized. *)
type rkey = { r_rule : int; r_args : Value.t array }

module Rkey_tbl = Hashtbl.Make (struct
  type t = rkey

  let equal a b =
    a.r_rule = b.r_rule
    && Array.length a.r_args = Array.length b.r_args
    &&
    let n = Array.length a.r_args in
    let rec go i = i >= n || (a.r_args.(i) == b.r_args.(i) && go (i + 1)) in
    go 0

  let hash k =
    Array.fold_left
      (fun h v -> mix h (Value.hash v))
      (mix 0x9e11 k.r_rule) k.r_args
end)

type rules = {
  r_tbl : Value.t Rkey_tbl.t;
  r_tainted : (int, unit) Hashtbl.t;
  mutable r_hits : int;
  mutable r_misses : int;
}

let create_rules () =
  {
    r_tbl = Rkey_tbl.create 256;
    r_tainted = Hashtbl.create 16;
    r_hits = 0;
    r_misses = 0;
  }

let rules_stats r = (r.r_hits, r.r_misses)

let apply_rule r ~rule_key ~fn args =
  if Hashtbl.mem r.r_tainted rule_key then fn args
  else begin
    let cargs = Array.map Value.intern args in
    let key = { r_rule = rule_key; r_args = cargs } in
    match Rkey_tbl.find_opt r.r_tbl key with
    | Some v ->
        r.r_hits <- r.r_hits + 1;
        v
    | None ->
        let u0 = Uid.mark () in
        let v = fn args in
        if Uid.mark () <> u0 then Hashtbl.replace r.r_tainted rule_key ()
        else begin
          r.r_misses <- r.r_misses + 1;
          Rkey_tbl.replace r.r_tbl key (Value.intern v)
        end;
        v
  end
