lib/pascal/stmt_rules.ml: Ag_dsl Array Ast Cg Grammar List Option Pag_core Printf Pvalue Value Vax
