open Pag_core
open Pag_util

type t =
  | Subtree of { frag : int; bytes : int; uid_base : int }
  | Edit of { node : int; bytes : int }
  | Attr of { node : int; attr : string; value : Value.t }
  | Code_frag of { id : int; text : Rope.t }
  | Resolve of { value : Value.t }
  | Final of { text : Rope.t }
  | Stop
  | Data of { src : int; seq : int; payload : t }
  | Ack of { src : int; seq : int }
  | Ping
  (* Intern-librarian protocol (the generalized string librarian): the
     first transmission of a payload to a peer binds it to a sender-scoped
     intern id; later transmissions of an equal payload to the same peer
     send only the (id, hash) reference. [src] is explicit because these
     cross the reliable layer inside [Data] envelopes, whose origin the
     receiving wrapper no longer sees. *)
  | Attr_bind of { src : int; node : int; attr : string; iid : int; value : Value.t }
  | Attr_ref of { src : int; node : int; attr : string; iid : int; hash : int }
  | Code_frag_bind of { src : int; id : int; iid : int; text : Rope.t }
  | Code_frag_ref of { src : int; id : int; iid : int; hash : int }
  | Need_intern of { src : int; iid : int }
  | Backfill of { src : int; iid : int; value : Value.t }

let header_bytes = 16

let seq_bytes = 8

(* An intern id on the wire; a reference also carries the 8-byte hash. *)
let iid_bytes = 8

let rec size = function
  | Subtree s -> header_bytes + s.bytes
  | Edit e -> header_bytes + e.bytes
  | Attr a -> header_bytes + String.length a.attr + Value.byte_size a.value
  | Code_frag c -> header_bytes + Rope.length c.text
  | Resolve r -> header_bytes + Value.byte_size r.value
  | Final f -> header_bytes + Rope.length f.text
  | Stop -> header_bytes
  | Data d -> seq_bytes + size d.payload
  | Ack _ -> header_bytes
  | Ping -> header_bytes
  (* Binds travel between arena-aware peers, so their payloads ship
     DAG-encoded: repeated subvalues cost a backreference, not their text
     (dag_byte_size = byte_size when the value has no sharing). *)
  | Attr_bind a ->
      header_bytes + String.length a.attr
      + Value.dag_byte_size a.value
      + iid_bytes
  | Attr_ref a -> header_bytes + String.length a.attr + (2 * iid_bytes)
  | Code_frag_bind c -> header_bytes + Rope.dag_size c.text + iid_bytes
  | Code_frag_ref _ -> header_bytes + (2 * iid_bytes)
  | Need_intern _ -> header_bytes + iid_bytes
  | Backfill b -> header_bytes + Value.dag_byte_size b.value + iid_bytes

let rec pp fmt = function
  | Subtree s -> Format.fprintf fmt "Subtree(frag=%d,%dB)" s.frag s.bytes
  | Edit e -> Format.fprintf fmt "Edit(node=%d,%dB)" e.node e.bytes
  | Attr a -> Format.fprintf fmt "Attr(node=%d,%s=%a)" a.node a.attr Value.pp a.value
  | Code_frag c -> Format.fprintf fmt "CodeFrag(%d,%dB)" c.id (Rope.length c.text)
  | Resolve _ -> Format.fprintf fmt "Resolve"
  | Final f -> Format.fprintf fmt "Final(%dB)" (Rope.length f.text)
  | Stop -> Format.fprintf fmt "Stop"
  | Data d -> Format.fprintf fmt "Data(src=%d,seq=%d,%a)" d.src d.seq pp d.payload
  | Ack a -> Format.fprintf fmt "Ack(src=%d,seq=%d)" a.src a.seq
  | Ping -> Format.fprintf fmt "Ping"
  | Attr_bind a ->
      Format.fprintf fmt "AttrBind(src=%d,node=%d,%s,iid=%d)" a.src a.node
        a.attr a.iid
  | Attr_ref a ->
      Format.fprintf fmt "AttrRef(src=%d,node=%d,%s,iid=%d)" a.src a.node
        a.attr a.iid
  | Code_frag_bind c ->
      Format.fprintf fmt "CodeFragBind(src=%d,%d,iid=%d,%dB)" c.src c.id c.iid
        (Rope.length c.text)
  | Code_frag_ref c ->
      Format.fprintf fmt "CodeFragRef(src=%d,%d,iid=%d)" c.src c.id c.iid
  | Need_intern n -> Format.fprintf fmt "NeedIntern(src=%d,iid=%d)" n.src n.iid
  | Backfill b -> Format.fprintf fmt "Backfill(src=%d,iid=%d)" b.src b.iid
