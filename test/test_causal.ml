(* Provenance & causal analysis: ring cap/arity accounting, the qcheck
   property tying [--explain] slices to the engine's own dependency graph
   (transitive producer closure) across all three schedules with
   hash-consing on and off, critical-path profile invariants, memo-replay
   records, and slice verification inside an edit session. *)

open Pag_core
open Pag_eval
open Pag_obs
open Pag_parallel
open Pascal

let qc ?(count = 25) name gen prop = Qc_seed.qc ~count name gen prop
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- ring accounting ---------------- *)

let test_ring_cap () =
  let p = Prov.create ~cap:4 ~arity:2 () in
  for i = 0 to 6 do
    Prov.record p ~rid:i ~pid:0 ~target:i ~t0:(float_of_int i)
      ~t1:(float_of_int i +. 0.5) ~replay:false
  done;
  check_bool "enabled" true (Prov.enabled p);
  check_int "length capped" 4 (Prov.length p);
  check_int "total counts overwrites" 7 (Prov.total p);
  check_int "dropped = overflow" 3 (Prov.dropped p);
  let rids = ref [] in
  Prov.iter p (fun f -> rids := f.Prov.f_rid :: !rids);
  Alcotest.(check (list int)) "newest survive, oldest first" [ 3; 4; 5; 6 ]
    (List.rev !rids)

let test_ring_args () =
  let p = Prov.create ~cap:8 ~arity:2 () in
  Prov.record p ~rid:0 ~pid:1 ~target:9 ~t0:0.0 ~t1:1.0 ~replay:false;
  List.iter (Prov.arg p) [ 10; 11; 12; 13 ];
  check_int "arity caps stored args" 2
    (Array.length (Prov.get p 0).Prov.f_args);
  check_int "overflow counted" 2 (Prov.arg_drops p);
  Prov.set_last_t1 p 9.0;
  check_bool "t1 patched" true ((Prov.get p 0).Prov.f_t1 = 9.0);
  Prov.clear p;
  check_int "clear empties" 0 (Prov.length p);
  check_int "clear resets arg_drops" 0 (Prov.arg_drops p)

let test_disabled_ring () =
  let p = Prov.disabled in
  Prov.record p ~rid:0 ~pid:0 ~target:0 ~t0:0.0 ~t1:1.0 ~replay:false;
  Prov.arg p 3;
  check_bool "disabled" false (Prov.enabled p);
  check_int "records nothing" 0 (Prov.length p);
  check_int "drops nothing" 0 (Prov.dropped p)

let test_arity_for_covers_widest_rule () =
  let a = Causal.arity_for Pascal_ag.grammar in
  check_bool "floored at 8" true (a >= 8);
  let widest =
    Array.fold_left
      (fun m p ->
        Array.fold_left
          (fun m r -> max m (List.length r.Grammar.r_deps))
          m p.Grammar.p_rules)
      0
      (Grammar.productions Pascal_ag.grammar)
  in
  check_bool "covers widest dependency list" true (a >= widest)

(* ---------------- slice = closure, across schedules ---------------- *)

let code_key g root =
  let attr_idx = Grammar.attr_pos g ~sym:root.Tree.sym ~attr:"code" in
  Causal.key_of root ~attr_idx

(* Reference closure from a from-scratch engine on the run's own tree:
   [Store.create_shared] keeps the node ids the recorded slots map to. *)
let verify_root_slice g d root =
  let st = Store.create_shared g root in
  let re = Engine.create g st in
  let gr = Engine.graph re in
  Causal.verify_slice d ~ref_engine:re ~ref_graph:gr (code_key g root)

let schedules = [ (`Static, "static"); (`Dynamic, "dynamic"); (`Steal, "steal") ]

let prop_slice_matches_closure =
  qc ~count:4 "provenance slice = graph closure (3 schedules x hashcons)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let g = Pascal_ag.grammar in
      let prog = fst (Progen.gen (Random.State.make [| seed |]) Progen.small) in
      List.for_all
        (fun (schedule, sname) ->
          List.for_all
            (fun hashcons ->
              let tree = Pascal_ag.tree_of_program g prog in
              let sp =
                Session.spec ~schedule ~hashcons ~librarian:false
                  ~provenance:true 3
              in
              let r = Session.run sp g (Some (Lazy.force Driver.plan)) tree in
              let d = Causal.build r.Runner.r_prov in
              if Causal.dropped d > 0 || Causal.arg_drops d > 0 then
                QCheck.Test.fail_reportf "%s hashcons=%b: ring overflowed"
                  sname hashcons
              else
                match verify_root_slice g d r.Runner.r_tree with
                | [], [] -> true
                | missing, extra ->
                    QCheck.Test.fail_reportf
                      "%s hashcons=%b: %d missing (%s) / %d extra (%s)" sname
                      hashcons (List.length missing)
                      (String.concat "," missing)
                      (List.length extra) (String.concat "," extra))
            [ false; true ])
        schedules)

(* ---------------- critical-path profile invariants ---------------- *)

let test_profile_invariants () =
  let g = Pascal_ag.grammar in
  let prog = Progen.skewed_program ~seed:5 ~chain:60 () in
  let tree = Pascal_ag.tree_of_program g prog in
  let sp = Session.spec ~schedule:`Steal ~librarian:false ~provenance:true 4 in
  let r = Session.run sp g (Some (Lazy.force Driver.plan)) tree in
  let d = Causal.build r.Runner.r_prov in
  let p = Causal.profile d in
  check_bool "firings recorded" true (p.Causal.pr_firings > 0);
  check_int "nothing dropped" 0 p.Causal.pr_dropped;
  let eps = 1e-9 +. (1e-6 *. p.Causal.pr_makespan) in
  check_bool "critical <= makespan" true
    (p.Causal.pr_critical <= p.Causal.pr_makespan +. eps);
  check_bool "ideal >= critical" true
    (p.Causal.pr_ideal >= p.Causal.pr_critical -. eps);
  check_bool "ideal >= work/machines" true
    (p.Causal.pr_ideal
    >= (p.Causal.pr_work /. float_of_int (max 1 p.Causal.pr_machines)) -. eps);
  check_bool "work >= critical" true
    (p.Causal.pr_work >= p.Causal.pr_critical -. eps);
  (match p.Causal.pr_chains with
  | [] -> Alcotest.fail "no chains"
  | top :: _ ->
      check_bool "top chain priced" true
        (abs_float (top.Causal.ch_len -. p.Causal.pr_critical) <= eps);
      (* steps are causally ordered: each firing starts no earlier than
         the one it consumed *)
      let rec ordered = function
        | a :: (b :: _ as rest) ->
            a.Causal.st_t0 <= b.Causal.st_t0 +. eps && ordered rest
        | _ -> true
      in
      check_bool "chain steps ordered" true (ordered top.Causal.ch_steps));
  check_bool "rule blame non-empty" true (p.Causal.pr_rule_blame <> []);
  check_bool "machine blame covers top chain" true
    (List.for_all (fun (pid, _, _) -> pid >= 0) p.Causal.pr_machine_blame);
  (* the JSON artifact parses back with the headline numbers intact *)
  let j = Causal.profile_json p in
  check_bool "json mentions critical" true
    (String.length j > 0
    &&
    match Test_obs.parse_json j with
    | Test_obs.J_obj fields ->
        List.mem_assoc "critical_s" fields && List.mem_assoc "makespan_s" fields
    | _ -> false)

(* ---------------- memo replays appear as zero-cost records ----------- *)

let test_replays_recorded () =
  let prog = Progen.repetitive ~routines:3 ~reps:30 () in
  let p = Prov.create ~arity:(Causal.arity_for Pascal_ag.grammar) () in
  let eng = ref None in
  let _ =
    Driver.compile ~evaluator:`Static ~hashcons:true ~prov:p
      ~engine_out:(fun e -> eng := Some e)
      prog
  in
  match !eng with
  | None -> Alcotest.fail "engine not handed back"
  | Some e ->
      let d = Causal.build [ (p, e) ] in
      let pr = Causal.profile d in
      check_bool "replays recorded" true (pr.Causal.pr_replays > 0);
      check_bool "replays are a subset" true
        (pr.Causal.pr_replays < pr.Causal.pr_firings)

(* ---------------- slices survive an edit session ---------------- *)

let test_edit_session_slice () =
  let g = Pascal_ag.grammar in
  let prog n = fst (Progen.gen (Random.State.make [| n |]) Progen.small) in
  let sp = Session.spec ~librarian:false ~provenance:true 3 in
  let es = Session.open_session sp g (Pascal_ag.tree_of_program g (prog 1)) in
  ignore (Session.edit es (Pascal_ag.tree_of_program g (prog 2)));
  let d = Causal.build [ (Session.prov es, Session.engine es) ] in
  check_int "session ring intact" 0 (Causal.dropped d);
  match verify_root_slice g d (Session.tree es) with
  | [], [] -> ()
  | missing, extra ->
      Alcotest.failf "post-edit slice disagrees: %d missing / %d extra"
        (List.length missing) (List.length extra)

let suite =
  [
    ( "causal",
      [
        Alcotest.test_case "ring cap accounting" `Quick test_ring_cap;
        Alcotest.test_case "ring arg arity" `Quick test_ring_args;
        Alcotest.test_case "disabled ring" `Quick test_disabled_ring;
        Alcotest.test_case "arity_for covers grammar" `Quick
          test_arity_for_covers_widest_rule;
        prop_slice_matches_closure;
        Alcotest.test_case "profile invariants" `Quick test_profile_invariants;
        Alcotest.test_case "memo replays recorded" `Quick test_replays_recorded;
        Alcotest.test_case "edit-session slice" `Quick test_edit_session_slice;
      ] );
  ]
