lib/analysis/localdep.mli: Grammar Pag_core Pag_util
