(** Demand-driven reference evaluator.

    Evaluates attribute instances by recursion on their defining rules, with
    memoization in the store and cycle detection through an in-progress mark.
    It is the simplest evaluator that is obviously correct, so it serves as
    the oracle the dynamic, static and parallel evaluators are tested
    against. It performs no dependency analysis and no planning. *)

open Pag_core

exception Cycle of string

(** [eval g t] evaluates every attribute instance of the tree and returns the
    filled store. [root_inh] presets the root's inherited attributes. *)
val eval : ?root_inh:(string * Value.t) list -> Grammar.t -> Tree.t -> Store.t

(** Evaluate only what the root's synthesized attributes demand (the paper's
    observation that only root attributes are of interest). *)
val eval_root_demand :
  ?root_inh:(string * Value.t) list -> Grammar.t -> Tree.t -> Store.t
