open Spec_ast

exception Error of int * string

let error line fmt = Printf.ksprintf (fun s -> raise (Error (line, s))) fmt

(* ---------------- tokens ---------------- *)

type tok =
  | TDirective of string (* %name, %keyword, ... *)
  | TIdent of string
  | TNum of int
  | TStr of string
  | TDollar of int (* $$ = 0, $k = k *)
  | TColon
  | TComma
  | TSemi
  | TEq
  | TLp
  | TRp
  | TDot
  | TArrow
  | TSep (* %% *)
  | TLbrace
  | TRbrace
  | TEOF

let tok_name = function
  | TDirective d -> "%" ^ d
  | TIdent s -> Printf.sprintf "identifier %S" s
  | TNum n -> string_of_int n
  | TStr s -> Printf.sprintf "%S" s
  | TDollar 0 -> "$$"
  | TDollar k -> Printf.sprintf "$%d" k
  | TColon -> ":"
  | TComma -> ","
  | TSemi -> ";"
  | TEq -> "="
  | TLp -> "("
  | TRp -> ")"
  | TDot -> "."
  | TArrow -> "->"
  | TSep -> "%%"
  | TLbrace -> "{"
  | TRbrace -> "}"
  | TEOF -> "end of file"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit t = toks := (t, !line) :: !toks in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then error !line "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if c = '%' then
      if !i + 1 < n && src.[!i + 1] = '%' then begin
        emit TSep;
        i := !i + 2
      end
      else begin
        incr i;
        let start = !i in
        while !i < n && is_word src.[!i] do
          incr i
        done;
        emit (TDirective (String.sub src start (!i - start)))
      end
    else if c = '$' then
      if !i + 1 < n && src.[!i + 1] = '$' then begin
        emit (TDollar 0);
        i := !i + 2
      end
      else begin
        incr i;
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          incr i
        done;
        if !i = start then error !line "expected $$ or $<number>";
        emit (TDollar (int_of_string (String.sub src start (!i - start))))
      end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      emit (TNum (int_of_string (String.sub src start (!i - start))))
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word src.[!i] do
        incr i
      done;
      emit (TIdent (String.sub src start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 8 in
      while !i < n && src.[!i] <> '"' do
        Buffer.add_char buf src.[!i];
        incr i
      done;
      if !i >= n then error !line "unterminated string";
      incr i;
      emit (TStr (Buffer.contents buf))
    end
    else begin
      (match c with
      | ':' -> emit TColon
      | ',' -> emit TComma
      | ';' -> emit TSemi
      | '=' -> emit TEq
      | '(' -> emit TLp
      | ')' -> emit TRp
      | '.' -> emit TDot
      | '{' -> emit TLbrace
      | '}' -> emit TRbrace
      | '-' when !i + 1 < n && src.[!i + 1] = '>' ->
          emit TArrow;
          incr i
      | _ -> error !line "unexpected character %C" c);
      incr i
    end
  done;
  emit TEOF;
  List.rev !toks

(* ---------------- parser ---------------- *)

type st = { mutable toks : (tok * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> TEOF

let cur_line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let eat st t =
  if peek st = t then advance st
  else error (cur_line st) "expected %s, found %s" (tok_name t) (tok_name (peek st))

let ident st =
  match peek st with
  | TIdent s ->
      advance st;
      s
  | other -> error (cur_line st) "expected an identifier, found %s" (tok_name other)

let parse_attr_specs st =
  (* syn value, inh priority stab, ... *)
  let rec loop acc =
    let kind = ident st in
    let inherited =
      match kind with
      | "syn" -> false
      | "inh" -> true
      | k -> error (cur_line st) "expected syn or inh, found %S" k
    in
    let w1 = ident st in
    let priority, name =
      if w1 = "priority" then (true, ident st) else (false, w1)
    in
    let acc = { a_name = name; a_inherited = inherited; a_priority = priority } :: acc in
    if peek st = TComma then begin
      advance st;
      loop acc
    end
    else List.rev acc
  in
  loop []

let rec parse_sexpr st =
  match peek st with
  | TNum n ->
      advance st;
      SInt n
  | TStr s ->
      advance st;
      SStr s
  | TDollar k ->
      advance st;
      eat st TDot;
      SAttr (k, ident st)
  | TIdent f -> (
      advance st;
      match peek st with
      | TLp ->
          advance st;
          let args =
            if peek st = TRp then []
            else
              let rec loop acc =
                let e = parse_sexpr st in
                if peek st = TComma then begin
                  advance st;
                  loop (e :: acc)
                end
                else List.rev (e :: acc)
              in
              loop []
          in
          eat st TRp;
          SCall (f, args)
      | _ -> error (cur_line st) "expected ( after function name %S" f)
  | other -> error (cur_line st) "expected an expression, found %s" (tok_name other)

let parse_rule st =
  let pos =
    match peek st with
    | TDollar k ->
        advance st;
        k
    | other -> error (cur_line st) "expected $$ or $k, found %s" (tok_name other)
  in
  eat st TDot;
  let attr = ident st in
  eat st TEq;
  let e = parse_sexpr st in
  { r_pos = pos; r_attr = attr; r_expr = e }

let parse st =
  let names = ref [] in
  let keywords = ref [] in
  let nts = ref [] in
  let start = ref None in
  let prec = ref [] in
  let rec directives () =
    match peek st with
    | TSep ->
        advance st
    | TDirective "name" ->
        advance st;
        let term = ident st in
        let cls =
          match ident st with
          | "ident" -> Ident
          | "number" -> Number
          | other -> error (cur_line st) "expected ident or number, found %S" other
        in
        let attr = ident st in
        names := { n_term = term; n_class = cls; n_attr = attr } :: !names;
        directives ()
    | TDirective "keyword" ->
        advance st;
        let rec kws () =
          match peek st with
          | TIdent term -> (
              advance st;
              match peek st with
              | TStr text ->
                  advance st;
                  keywords := { k_term = term; k_text = text } :: !keywords;
                  kws ()
              | other ->
                  error (cur_line st) "expected keyword spelling, found %s"
                    (tok_name other))
          | _ -> ()
        in
        kws ();
        directives ()
    | TDirective "nosplit" ->
        advance st;
        let name = ident st in
        eat st TColon;
        let attrs = parse_attr_specs st in
        nts := { nt_name = name; nt_split = None; nt_attrs = attrs } :: !nts;
        directives ()
    | TDirective "split" ->
        advance st;
        let min_bytes =
          match peek st with
          | TNum n ->
              advance st;
              n
          | other -> error (cur_line st) "expected a size, found %s" (tok_name other)
        in
        let name = ident st in
        eat st TColon;
        let attrs = parse_attr_specs st in
        nts := { nt_name = name; nt_split = Some min_bytes; nt_attrs = attrs } :: !nts;
        directives ()
    | TDirective "start" ->
        advance st;
        start := Some (ident st);
        directives ()
    | TDirective ("left" | "right" | "nonassoc") ->
        let a =
          match peek st with
          | TDirective "left" -> Left
          | TDirective "right" -> Right
          | _ -> Nonassoc
        in
        advance st;
        let rec terms acc =
          match peek st with
          | TIdent t ->
              advance st;
              terms (t :: acc)
          | _ -> List.rev acc
        in
        prec := (a, terms []) :: !prec;
        directives ()
    | TDirective other -> error (cur_line st) "unknown directive %%%s" other
    | other -> error (cur_line st) "expected a directive or %%%%, found %s" (tok_name other)
  in
  directives ();
  (* productions *)
  let prods = ref [] in
  let rec productions () =
    match peek st with
    | TEOF -> ()
    | TIdent lhs ->
        advance st;
        eat st TArrow;
        let rec rhs acc =
          match peek st with
          | TIdent s ->
              advance st;
              rhs (s :: acc)
          | _ -> List.rev acc
        in
        let rhs = rhs [] in
        let rules =
          if peek st = TLbrace then begin
            advance st;
            let rec loop acc =
              if peek st = TRbrace then begin
                advance st;
                List.rev acc
              end
              else begin
                let r = parse_rule st in
                if peek st = TSemi then advance st;
                loop (r :: acc)
              end
            in
            loop []
          end
          else []
        in
        prods := { p_lhs = lhs; p_rhs = rhs; p_rules = rules } :: !prods;
        productions ()
    | other -> error (cur_line st) "expected a production, found %s" (tok_name other)
  in
  productions ();
  match !start with
  | None -> error 0 "missing %%start declaration"
  | Some s ->
      {
        s_names = List.rev !names;
        s_keywords = List.rev !keywords;
        s_nts = List.rev !nts;
        s_start = s;
        s_prec = List.rev !prec;
        s_prods = List.rev !prods;
      }

let parse src = parse { toks = tokenize src }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
