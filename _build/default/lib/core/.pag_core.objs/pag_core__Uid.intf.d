lib/core/uid.mli:
