(* Metamorphic testing over RANDOM attribute grammars: generate a random
   well-formed grammar and random trees for it, then check that the
   demand-driven oracle, the dynamic evaluator and (when the grammar is
   ordered) the static evaluator compute identical attribute values — or
   that cyclic trees are consistently rejected by oracle and dynamic alike.

   This exercises the evaluator stack on grammar shapes no hand-written
   fixture covers: random dependency patterns, multiple productions per
   nonterminal, attributes that are never used, copy chains, etc. *)

open Pag_core
open Pag_analysis
open Pag_eval

let qc ?(count = 120) name gen prop = Qc_seed.qc ~count name gen prop

(* ---------------- random grammar construction ---------------- *)

type rnd = Random.State.t

let pickl (st : rnd) l = List.nth l (Random.State.int st (List.length l))

(* A generated grammar description we can rebuild deterministically. *)
let build_grammar (st : rnd) =
  let n_nts = 1 + Random.State.int st 3 in
  let nts = List.init n_nts (fun i -> Printf.sprintf "n%d" i) in
  let attrs_of = Hashtbl.create 8 in
  List.iteri
    (fun i nt ->
      let n_syn = 1 + Random.State.int st 2 in
      let n_inh = if i = 0 then 0 else Random.State.int st 2 in
      Hashtbl.replace attrs_of nt
        ( List.init n_syn (fun k -> Printf.sprintf "s%d" k),
          List.init n_inh (fun k -> Printf.sprintf "i%d" k) ))
    nts;
  let syn_of nt = fst (Hashtbl.find attrs_of nt) in
  let inh_of nt = snd (Hashtbl.find attrs_of nt) in
  let symbols =
    Grammar.terminal "T" [ "v" ]
    :: List.map
         (fun nt ->
           Grammar.nonterminal nt
             (List.map Grammar.syn (syn_of nt)
             @ List.map Grammar.inh (inh_of nt)))
         nts
  in
  (* Each nonterminal: production 0 has only terminal children (guarantees
     finite trees); further productions may reference nonterminals. *)
  let prod_count = Hashtbl.create 8 in
  let mk_production nt ~base =
    let k = Option.value ~default:0 (Hashtbl.find_opt prod_count nt) in
    Hashtbl.replace prod_count nt (k + 1);
    let rhs =
      if base then List.init (1 + Random.State.int st 2) (fun _ -> "T")
      else
        List.init
          (1 + Random.State.int st 2)
          (fun _ -> if Random.State.bool st then "T" else pickl st nts)
    in
    (* visible dependencies at this production *)
    let visible =
      List.map (fun a -> Grammar.lhs a) (inh_of nt)
      @ List.concat
          (List.mapi
             (fun j s ->
               if s = "T" then [ Grammar.rhs (j + 1) "v" ]
               else List.map (fun a -> Grammar.rhs (j + 1) a) (syn_of s))
             rhs)
    in
    let random_deps () =
      List.filter (fun _ -> Random.State.int st 3 > 0) visible
    in
    let mk_rule target =
      let deps = random_deps () in
      let salt = Random.State.int st 100 in
      Grammar.rule target ~deps (fun args ->
          Value.Int
            (Array.fold_left
               (fun acc v -> (2 * acc) + Value.as_int ~ctx:"rnd" v)
               salt args))
    in
    let targets =
      List.map (fun a -> Grammar.lhs a) (syn_of nt)
      @ List.concat
          (List.mapi
             (fun j s ->
               if s = "T" then []
               else List.map (fun a -> Grammar.rhs (j + 1) a) (inh_of s))
             rhs)
    in
    Grammar.production
      ~name:(Printf.sprintf "%s_%d" nt k)
      ~lhs:nt ~rhs (List.map mk_rule targets)
  in
  let productions =
    List.concat_map
      (fun nt ->
        mk_production nt ~base:true
        :: List.init (Random.State.int st 2) (fun _ ->
               mk_production nt ~base:false))
      nts
  in
  Grammar.make ~name:"random" ~start:(List.hd nts) symbols productions

(* Random tree for a generated grammar: size-bounded, falling back to the
   base production (index 0 for each nonterminal, terminal-only). *)
let build_tree (st : rnd) g =
  let rec node nt budget =
    let prods = Grammar.prods_for g nt in
    let p =
      if budget <= 0 then List.hd prods
      else pickl st prods
    in
    let children =
      List.map
        (fun s ->
          if s = "T" then
            Tree.leaf g "T" [ ("v", Value.Int (Random.State.int st 10)) ]
          else node s (budget / 2))
        (Array.to_list p.Grammar.p_rhs)
    in
    Tree.node g p.Grammar.p_name children
  in
  node (Grammar.start g) 8

(* ---------------- comparisons ---------------- *)

let stores_agree a b =
  let ok = ref true in
  Store.iter_instances a (fun node attr ->
      match
        ( Store.get_opt a node attr.Grammar.a_name,
          Store.get_opt b node attr.Grammar.a_name )
      with
      | Some x, Some y -> if not (Value.equal x y) then ok := false
      | None, None -> ()
      | _ -> ok := false);
  !ok

let seed_arb =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "grammar seed %d, tree seed %d" a b)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))

let prop_evaluators_agree =
  qc "random grammars: oracle = dynamic (= static when ordered)" seed_arb
    (fun (gseed, tseed) ->
      let g = build_grammar (Random.State.make [| gseed |]) in
      let tree () = build_tree (Random.State.make [| tseed |]) g in
      let oracle_result =
        match Oracle.eval g (tree ()) with
        | store -> Ok store
        | exception Oracle.Cycle _ -> Error `Cycle
      in
      let dynamic_result =
        match Dynamic.eval g (tree ()) with
        | store, _ -> Ok store
        | exception Dynamic.Cycle _ -> Error `Cycle
      in
      match (oracle_result, dynamic_result) with
      | Error `Cycle, Error `Cycle -> true
      | Ok o, Ok d ->
          stores_agree o d
          && (match Kastens.analyze g with
             | Error _ -> true (* not ordered: nothing more to check *)
             | Ok plan -> (
                 match Static_eval.eval plan (tree ()) with
                 | s, _ -> stores_agree o s
                 | exception _ -> false))
      | Ok _, Error `Cycle | Error `Cycle, Ok _ -> false)

let prop_ordered_grammars_never_cycle =
  qc ~count:80 "ordered grammars have no cyclic trees" seed_arb
    (fun (gseed, tseed) ->
      let g = build_grammar (Random.State.make [| gseed |]) in
      match Kastens.analyze g with
      | Error _ -> true (* vacuous *)
      | Ok _ -> (
          (* Kastens acceptance implies noncircularity: the dynamic
             evaluator must never find a cycle in any tree *)
          let tree = build_tree (Random.State.make [| tseed |]) g in
          match Dynamic.eval g tree with
          | _ -> true
          | exception Dynamic.Cycle _ -> false))

let prop_deterministic =
  qc ~count:40 "generation is deterministic in its seeds" seed_arb
    (fun (gseed, tseed) ->
      let g1 = build_grammar (Random.State.make [| gseed |]) in
      let g2 = build_grammar (Random.State.make [| gseed |]) in
      let t1 = build_tree (Random.State.make [| tseed |]) g1 in
      let t2 = build_tree (Random.State.make [| tseed |]) g2 in
      let v s t =
        match Oracle.eval s t with
        | store -> Some (Store.root_attrs store)
        | exception Oracle.Cycle _ -> None
      in
      match (v g1 t1, v g2 t2) with
      | Some a, Some b ->
          List.for_all2 (fun (n1, x) (n2, y) -> n1 = n2 && Value.equal x y) a b
      | None, None -> true
      | _ -> false)

let suite =
  [
    ( "random-ag",
      [
        prop_evaluators_agree;
        prop_ordered_grammars_never_cycle;
        prop_deterministic;
      ] );
  ]
