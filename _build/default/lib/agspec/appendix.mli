(** The specification from the paper's appendix — arithmetic expression
    values with let-bound constants — as a built-in fixture. The worked
    example ["let x = 2 in 1 + 2 * x ni"] evaluates to 5. *)

(** The specification source text (also shipped as [examples/expr.ag]). *)
val source : string

val spec : Spec_ast.t Lazy.t

val translator : Compile.t Lazy.t
