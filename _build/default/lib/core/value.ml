open Pag_util

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of Rope.t
  | List of t list
  | Pair of t * t
  | Tab of t Symtab.t
  | Ext of ext

and ext = ..

type ext_ops = {
  ext_name : string;
  ext_equal : ext -> ext -> bool option;
  ext_size : ext -> int option;
  ext_pp : Format.formatter -> ext -> bool;
}

exception Type_error of string

let ext_registry : ext_ops list ref = ref []

let register_ext ops = ext_registry := ops :: !ext_registry

let ext_equal a b =
  let rec try_ops = function
    | [] -> raise (Type_error "Value.equal: unregistered Ext payload")
    | ops :: rest -> (
        match ops.ext_equal a b with Some r -> r | None -> try_ops rest)
  in
  try_ops !ext_registry

let ext_size e =
  let rec try_ops = function
    | [] -> 8
    | ops :: rest -> (
        match ops.ext_size e with Some n -> n | None -> try_ops rest)
  in
  try_ops !ext_registry

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> Rope.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | Tab x, Tab y -> Symtab.equal equal x y
  | Ext x, Ext y -> ext_equal x y
  | (Unit | Bool _ | Int _ | Str _ | List _ | Pair _ | Tab _ | Ext _), _ ->
      false

let rec byte_size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 4
  | Str r -> Rope.length r
  | List l -> List.fold_left (fun n v -> n + byte_size v) 4 l
  | Pair (a, b) -> byte_size a + byte_size b
  | Tab tab ->
      (* st_put: each binding flattens to name + value + framing *)
      Symtab.fold
        (fun name v n -> n + String.length name + byte_size v + 4)
        tab 4
  | Ext e -> ext_size e

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Str r ->
      let s = Rope.to_string r in
      if String.length s <= 40 then Format.fprintf fmt "%S" s
      else Format.fprintf fmt "<str:%d bytes>" (String.length s)
  | List l ->
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
           pp)
        l
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | Tab tab -> Format.fprintf fmt "<symtab:%d>" (Symtab.cardinal tab)
  | Ext e ->
      let rec try_ops = function
        | [] -> Format.pp_print_string fmt "<ext>"
        | ops :: rest -> if ops.ext_pp fmt e then () else try_ops rest
      in
      try_ops !ext_registry

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Str _ -> "string"
  | List _ -> "list"
  | Pair _ -> "pair"
  | Tab _ -> "symtab"
  | Ext _ -> "ext"

let mismatch ctx expected v =
  raise
    (Type_error
       (Printf.sprintf "%s: expected %s, got %s" ctx expected (type_name v)))

let as_int ~ctx = function Int i -> i | v -> mismatch ctx "int" v

let as_bool ~ctx = function Bool b -> b | v -> mismatch ctx "bool" v

let as_str ~ctx = function Str r -> r | v -> mismatch ctx "string" v

let as_list ~ctx = function List l -> l | v -> mismatch ctx "list" v

let as_pair ~ctx = function Pair (a, b) -> (a, b) | v -> mismatch ctx "pair" v

let as_tab ~ctx = function Tab t -> t | v -> mismatch ctx "symtab" v

let str s = Str (Rope.of_string s)

let of_rope r = Str r
