lib/parallel/worker.mli: Cost Grammar Kastens Pag_analysis Pag_core Transport Tree
