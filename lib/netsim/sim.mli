(** Discrete-event simulator with direct-style processes.

    Simulated processes are ordinary OCaml functions that perform effects —
    {!Make.delay} to consume CPU time, {!Make.send}/{!Make.recv} to exchange
    messages over the {!Ethernet} model — and an effect-handler scheduler
    advances virtual time. This mirrors the paper's setting: one evaluator
    process per machine, communicating by (V-System-style) messages, with
    every transmission crossing the shared Ethernet.

    The simulator is deterministic: events at equal times fire in creation
    order. A network multiprocessor experiment therefore produces identical
    figures on every run.

    The functor is applied per message type; each application gets its own
    effect constructors, so several simulators can coexist. *)

module Make (M : sig
  type msg
end) : sig
  type t

  type pid = int

  val create : ?params:Ethernet.params -> unit -> t

  (** Register a process. Its body runs when {!run} is called and may only
      perform effects of this simulator instance. *)
  val spawn : t -> name:string -> (unit -> unit) -> pid

  (** Run until no events remain. Raises [Deadlock] if some process is still
      blocked in [recv] when the event queue drains (crashed processes are
      exempt — a crashed machine is expected to never finish). *)
  val run : t -> unit

  exception Deadlock of string

  (** Install a fault plan: every subsequent transmission is judged against
      it (drop / duplicate / delay), and each [crash=m@t] entry schedules
      machine [m] to crash at time [t]. A crashed process stops executing,
      loses its mailbox, and silently drops all later deliveries. Call
      before {!run}. *)
  val set_faults : t -> Faults.spec -> unit

  (** Injected-fault counters, when a plan is installed. *)
  val fault_stats : t -> Faults.stats option

  val crashed : t -> pid -> bool

  val now : t -> float

  val network : t -> Ethernet.t

  val trace : t -> Trace.t

  val name_of : t -> pid -> string

  (** Peak mailbox depth the process has seen so far. *)
  val max_queue_depth : t -> pid -> int

  val process_count : t -> int

  (** {1 Effects — valid only inside a process body} *)

  (** Consume [dt] seconds of CPU time. *)
  val delay : float -> unit

  (** Send a message of [size] bytes to [dst]; the sender pays the CPU cost
      of emitting it, the network schedules delivery. *)
  val send : dst:pid -> size:int -> ?label:string -> M.msg -> unit

  (** Block until a message arrives (FIFO per receiver). *)
  val recv : unit -> M.msg

  (** Block until a message arrives or [d] seconds elapse; [None] on
      timeout. The retransmission timers of reliable delivery build on
      this. *)
  val recv_timeout : float -> M.msg option

  (** [Some m] if a message has already arrived, without blocking. *)
  val try_recv : unit -> M.msg option

  val self : unit -> pid

  val time : unit -> float

  (** Drop a labelled mark into the trace (phase boundaries in figure 6). *)
  val mark : string -> unit
end
