(** Subtree and rule memoization over a {!Tree.sharing} DAG view.

    Two memo schemes, both keyed on canonical ({!Pag_core.Value.intern})
    values so lookups hash in O(1) and compare with [==]:

    - {b Subtree-visit memo} for the static evaluator: visit [v] of a
      subtree is a pure function of the subtree's shape class and the
      inherited values received for visits [1..v] (the {e inherited
      fingerprint}). The first occurrence records the set slots of its
      contiguous slot range; later occurrences with the same key replay
      them by offset arithmetic, skipping the whole visit.

    - {b Rule-result memo} for the dynamic evaluator, which fires rules in
      data-driven order and so cannot replay subtrees atomically: each rule
      application is memoized on (production rule key, canonical args).

    Both schemes refuse to memoize computations that consume unique
    identifiers ({!Pag_core.Uid.fresh}) — detected by bracketing the first
    evaluation with {!Pag_core.Uid.mark} — since labels must stay distinct
    per occurrence. Fragment stores whose stubs interrupt a subtree's slot
    range simply fall back to ordinary evaluation. Memoization never
    changes what the store observes, only how it is produced. *)

open Pag_core
open Pag_analysis

type t

val create : ?min_size:int -> Tree.sharing -> t

val sharing : t -> Tree.sharing

type stats = {
  st_hits : int;  (** visits replayed from the memo *)
  st_misses : int;  (** visits evaluated and recorded *)
  st_fallbacks : int;  (** eligible visits that could not be keyed *)
  st_replayed_slots : int;  (** attribute instances defined by replay *)
}

val stats : t -> stats

(** What the static evaluator should do at (node, visit). [Replayed]: the
    visit's effects are already in the store. [Evaluate (Some record)]:
    evaluate normally and call [record] when the visit completes.
    [Evaluate None]: evaluate normally (ineligible or unkeyable). *)
type attempt = Replayed | Evaluate of (unit -> unit) option

val subtree : t option -> Kastens.plan -> Store.t -> Tree.t -> int -> attempt

(** {1 Rule-result memo} *)

type rules

val create_rules : unit -> rules

(** (hits, misses). *)
val rules_stats : rules -> int * int

(** [apply_rule r ~rule_key ~fn args] — [fn args], memoized. [rule_key]
    must identify the semantic function (e.g. production id × rule
    index). *)
val apply_rule :
  rules -> rule_key:int -> fn:(Value.t array -> Value.t) -> Value.t array -> Value.t
