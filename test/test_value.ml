open Pag_core
open Pag_util

let qc ?(count = 100) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_equal_basic () =
  check_bool "ints" true (Value.equal (Int 3) (Int 3));
  check_bool "int/bool" false (Value.equal (Int 1) (Bool true));
  check_bool "unit" true (Value.equal Unit Unit);
  check_bool "pairs" true
    (Value.equal (Pair (Int 1, Bool false)) (Pair (Int 1, Bool false)));
  check_bool "lists differ" false
    (Value.equal (List [ Int 1 ]) (List [ Int 1; Int 2 ]))

let test_equal_rope_by_content () =
  let a = Value.Str (Rope.concat (Rope.of_string "ab") (Rope.of_string "c")) in
  let b = Value.Str (Rope.of_string "abc") in
  check_bool "rope shapes" true (Value.equal a b)

let test_equal_symtab () =
  let t1 = Symtab.of_list [ ("x", Value.Int 1) ] in
  let t2 = Symtab.add Symtab.empty "x" (Value.Int 1) in
  check_bool "tables" true (Value.equal (Tab t1) (Tab t2));
  let t3 = Symtab.add t2 "y" Value.Unit in
  check_bool "tables differ" false (Value.equal (Tab t1) (Tab t3))

let test_byte_size () =
  check_int "unit" 1 (Value.byte_size Unit);
  check_int "int" 4 (Value.byte_size (Int 42));
  check_int "str" 5 (Value.byte_size (Value.str "hello"));
  check_int "list framing" (4 + 4 + 4)
    (Value.byte_size (List [ Int 1; Int 2 ]));
  (* symtab: 4 framing + per binding (name + value + 4) *)
  check_int "tab" (4 + (1 + 4 + 4))
    (Value.byte_size (Tab (Symtab.of_list [ ("x", Value.Int 1) ])))

let test_coercions () =
  check_int "as_int" 7 (Value.as_int ~ctx:"t" (Int 7));
  check_bool "as_bool" true (Value.as_bool ~ctx:"t" (Bool true));
  Alcotest.check_raises "as_int of bool"
    (Value.Type_error "t: expected int, got bool") (fun () ->
      ignore (Value.as_int ~ctx:"t" (Bool true)))

type Value.ext += Color of string

let () =
  Value.register_ext
    {
      ext_name = "color";
      ext_equal =
        (fun a b ->
          match (a, b) with
          | Color x, Color y -> Some (x = y)
          | Color _, _ | _, Color _ -> Some false
          | _ -> None);
      ext_hash =
        (fun e -> match e with Color s -> Some (Hashtbl.hash s) | _ -> None);
      ext_size = (fun e -> match e with Color s -> Some (String.length s) | _ -> None);
      ext_pp =
        (fun fmt e ->
          match e with
          | Color s ->
              Format.fprintf fmt "color:%s" s;
              true
          | _ -> false);
    }

let test_ext () =
  check_bool "ext equal" true (Value.equal (Ext (Color "red")) (Ext (Color "red")));
  check_bool "ext differ" false (Value.equal (Ext (Color "red")) (Ext (Color "blue")));
  check_int "ext size" 3 (Value.byte_size (Ext (Color "red")));
  Alcotest.(check string) "ext pp" "color:red" (Value.to_string (Ext (Color "red")))

let value_gen =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof
        [
          return Value.Unit;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) small_int;
          map Value.str (string_size ~gen:printable (int_bound 8));
        ]
    else
      frequency
        [
          (3, go 0);
          (1, map (fun l -> Value.List l) (list_size (int_bound 4) (go (depth - 1))));
          (1, map2 (fun a b -> Value.Pair (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 3

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_equal_refl = qc "equal is reflexive" arb_value (fun v -> Value.equal v v)

let prop_size_positive =
  qc "byte_size is positive" arb_value (fun v -> Value.byte_size v >= 0)

let suite =
  [
    ( "value",
      [
        Alcotest.test_case "equal basic" `Quick test_equal_basic;
        Alcotest.test_case "rope content" `Quick test_equal_rope_by_content;
        Alcotest.test_case "symtab" `Quick test_equal_symtab;
        Alcotest.test_case "byte_size" `Quick test_byte_size;
        Alcotest.test_case "coercions" `Quick test_coercions;
        Alcotest.test_case "extensible" `Quick test_ext;
        prop_equal_refl;
        prop_size_positive;
      ] );
  ]
