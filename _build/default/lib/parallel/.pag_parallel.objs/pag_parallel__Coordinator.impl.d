lib/parallel/coordinator.ml: Array Codestr Format Grammar Hashtbl List Message Pag_core Split Transport Tree Uid Value
