open Vax.Isa

let uses_sp = function
  | Reg r | Deref r | Disp (_, r) | PostInc r | PreDec r -> r = sp
  | Imm _ | Lbl _ -> false

let rec rewrite = function
  | [] -> []
  (* pushl X; movl (sp)+, rN  ->  movl X, rN *)
  | Pushl x :: Movl (PostInc 14, Reg n) :: rest when not (uses_sp x) ->
      rewrite (Movl (x, Reg n) :: rest)
  (* movl rN, rN -> (nothing) *)
  | Movl (Reg a, Reg b) :: rest when a = b -> rewrite rest
  (* brb L; L: -> L: *)
  | Brb l :: Label l' :: rest when l = l' -> rewrite (Label l' :: rest)
  | i :: rest -> i :: rewrite rest

let rec fix instrs =
  let out = rewrite instrs in
  if List.length out = List.length instrs then out else fix out

let optimize instrs = fix instrs

let optimize_text text =
  Vax.Isa.to_string (optimize (Vax.Asm_parser.parse text))

let instr_count instrs =
  List.length
    (List.filter (function Label _ | Comment _ -> false | _ -> true) instrs)
