open Pascal
open Pag_parallel

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let opts ?(mode = `Combined) ?(librarian = true) ?(priority = true) machines =
  {
    Runner.default_options with
    Runner.machines;
    mode;
    use_librarian = librarian;
    use_priority = priority;
    phase_label = Driver.phase_label;
  }

(* A moderate deterministic workload with reads, procedures and nesting. *)
let program =
  lazy (fst (Progen.gen (Random.State.make [| 2024 |]) Progen.medium))

let reads_input p =
  let _, reads = p in
  List.init reads (fun i -> (i * 31 mod 60) - 20)

let workload = lazy (Progen.gen (Random.State.make [| 2024 |]) Progen.medium)

let sequential_output =
  lazy
    (let p, _ = Lazy.force workload in
     let input = reads_input (Lazy.force workload) in
     let c = Driver.compile p in
     check_bool "no errors" true (c.Driver.c_errors = []);
     match Driver.run_compiled ~input c with
     | Ok out -> out
     | Error e -> Alcotest.failf "sequential run failed: %s" e)

let run_and_execute ?(variant = `Base) opts =
  let p, _ = Lazy.force workload in
  let input = reads_input (Lazy.force workload) in
  let r, c = Driver.compile_parallel_sim ~variant opts p in
  check_bool "no errors" true (c.Driver.c_errors = []);
  match Driver.run_compiled ~input c with
  | Ok out -> (r, out)
  | Error e -> Alcotest.failf "parallel-compiled program failed: %s" e

let test_parallel_output_matches () =
  let expected = Lazy.force sequential_output in
  for m = 1 to 5 do
    let _, out = run_and_execute (opts m) in
    check_str (Printf.sprintf "combined @ %d machines" m) expected out
  done

let test_parallel_dynamic_output () =
  let expected = Lazy.force sequential_output in
  for m = 1 to 3 do
    let _, out = run_and_execute (opts ~mode:`Dynamic m) in
    check_str (Printf.sprintf "dynamic @ %d machines" m) expected out
  done

let test_threaded_variant_output () =
  let expected = Lazy.force sequential_output in
  let _, out = run_and_execute ~variant:`Threaded (opts 3) in
  check_str "threaded variant output" expected out

let test_no_librarian_output () =
  let expected = Lazy.force sequential_output in
  let _, out = run_and_execute (opts ~librarian:false 4) in
  check_str "naive result propagation" expected out

let test_no_priority_output () =
  let expected = Lazy.force sequential_output in
  let _, out = run_and_execute (opts ~priority:false 4) in
  check_str "no priority attributes" expected out

let test_speedup_and_dynamic_fraction () =
  let r1, _ = run_and_execute (opts 1) in
  let r4, _ = run_and_execute (opts 4) in
  check_bool
    (Printf.sprintf "speedup: %.2fs -> %.2fs" r1.Runner.r_time r4.Runner.r_time)
    true
    (r4.Runner.r_time < r1.Runner.r_time);
  check_bool
    (Printf.sprintf "dynamic fraction %.4f < 5%%" r4.Runner.r_dynamic_fraction)
    true
    (r4.Runner.r_dynamic_fraction < 0.05)

let test_threaded_slower_in_parallel () =
  (* the threaded-counter chain serializes evaluators (experiment E7) *)
  let rb, _ = run_and_execute (opts 4) in
  let rt, _ = run_and_execute ~variant:`Threaded (opts 4) in
  check_bool
    (Printf.sprintf "threaded %.2fs > base %.2fs" rt.Runner.r_time rb.Runner.r_time)
    true
    (rt.Runner.r_time > rb.Runner.r_time)

let test_domains_output () =
  let expected = Lazy.force sequential_output in
  let p, _ = Lazy.force workload in
  let input = reads_input (Lazy.force workload) in
  let r, c = Driver.compile_parallel_domains (opts 3) p in
  check_bool "fragments" true (r.Runner.r_fragments >= 1);
  match Driver.run_compiled ~input c with
  | Ok out -> check_str "domains output" expected out
  | Error e -> Alcotest.failf "domains-compiled program failed: %s" e

let test_trace_shows_phases () =
  let r, _ = run_and_execute (opts 4) in
  match r.Runner.r_trace with
  | None -> Alcotest.fail "expected trace"
  | Some tr ->
      let marks = Netsim.Trace.marks tr in
      let has label =
        List.exists (fun m -> m.Netsim.Trace.mk_label = label) marks
      in
      check_bool "symbol table phase marked" true (has "symbol table");
      check_bool "code generation phase marked" true (has "code generation");
      (* the env attribute crosses fragment boundaries *)
      check_bool "env messages" true
        (List.exists
           (fun a -> a.Netsim.Trace.ar_label = "env")
           (Netsim.Trace.arrows tr))

let test_gantt_renders () =
  let r, _ = run_and_execute (opts 5) in
  match r.Runner.r_trace with
  | None -> Alcotest.fail "expected trace"
  | Some tr ->
      let s =
        Netsim.Gantt.render
          ~names:(Runner.machine_name ~fragments:r.Runner.r_fragments)
          tr
      in
      check_bool "nonempty chart" true (String.length s > 200)

let () = ignore program

let suite =
  [
    ( "pascal-parallel",
      [
        Alcotest.test_case "combined output" `Quick test_parallel_output_matches;
        Alcotest.test_case "dynamic output" `Quick test_parallel_dynamic_output;
        Alcotest.test_case "threaded output" `Quick test_threaded_variant_output;
        Alcotest.test_case "no librarian" `Quick test_no_librarian_output;
        Alcotest.test_case "no priority" `Quick test_no_priority_output;
        Alcotest.test_case "speedup + dyn fraction" `Quick
          test_speedup_and_dynamic_fraction;
        Alcotest.test_case "threaded serializes" `Quick
          test_threaded_slower_in_parallel;
        Alcotest.test_case "domains output" `Quick test_domains_output;
        Alcotest.test_case "trace phases" `Quick test_trace_shows_phases;
        Alcotest.test_case "gantt" `Quick test_gantt_renders;
      ] );
  ]
