program primes;
const limit = 50;
var count, i, total : integer;
    flags : array [1..50] of integer;

function gcd(x : integer; y : integer) : integer;
begin
  if y = 0 then begin gcd := x end
  else begin gcd := gcd(y, x mod y) end
end;

function fib(n : integer) : integer;
var a, b, t, k : integer;
begin
  a := 0; b := 1;
  for k := 1 to n do begin
    t := a + b; a := b; b := t
  end;
  fib := a
end;

procedure sieve;
var j, k : integer;
begin
  for j := 1 to limit do begin flags[j] := 1 end;
  flags[1] := 0;
  j := 2;
  while j * j <= limit do begin
    if flags[j] = 1 then begin
      k := j * j;
      while k <= limit do begin
        flags[k] := 0;
        k := k + j
      end
    end;
    j := j + 1
  end
end;

procedure tally(var c : integer);
var j : integer;
begin
  c := 0;
  for j := 1 to limit do begin
    if flags[j] = 1 then begin c := c + 1 end
  end
end;

procedure report(v : integer);
begin
  write(v);
  writeln
end;

begin
  sieve;
  tally(count);
  report(count);
  total := 0;
  for i := 1 to limit do begin
    if flags[i] = 1 then begin total := total + i end
  end;
  report(total);
  report(gcd(total, count));
  report(fib(20));
  i := 1;
  repeat
    i := i * 3
  until i > limit;
  report(i)
end.
