open Netsim

module S = Sim.Make (struct
  type msg = string
end)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_delay_advances_time () =
  let sim = S.create () in
  let finished = ref 0.0 in
  let _ =
    S.spawn sim ~name:"a" (fun () ->
        S.delay 1.5;
        S.delay 0.5;
        finished := S.time ())
  in
  S.run sim;
  check_float "two delays" 2.0 !finished;
  check_float "sim clock" 2.0 (S.now sim)

let test_send_recv () =
  let sim = S.create () in
  let got = ref "" and got_at = ref 0.0 in
  let receiver =
    S.spawn sim ~name:"recv" (fun () ->
        got := S.recv ();
        got_at := S.time ())
  in
  let _ =
    S.spawn sim ~name:"send" (fun () ->
        S.delay 1.0;
        S.send ~dst:receiver ~size:1000 "hello")
  in
  S.run sim;
  Alcotest.(check string) "message" "hello" !got;
  (* arrival = send time + transmission + latency *)
  let p = Ethernet.default_params in
  check_float "arrival time"
    (1.0 +. (1000.0 /. p.Ethernet.bandwidth) +. p.Ethernet.latency)
    !got_at

let test_recv_before_send_blocks () =
  (* The receiver starts first and must idle until the message arrives. *)
  let sim = S.create () in
  let receiver = S.spawn sim ~name:"r" (fun () -> ignore (S.recv ())) in
  let _ =
    S.spawn sim ~name:"s" (fun () ->
        S.delay 2.0;
        S.send ~dst:receiver ~size:10 "x")
  in
  S.run sim;
  let idle =
    List.filter
      (fun s -> s.Trace.sg_pid = receiver && s.Trace.sg_kind = Trace.Idle)
      (Trace.segments (S.trace sim))
  in
  check_int "one idle segment" 1 (List.length idle);
  check_bool "idle spans the wait" true
    (match idle with
    | [ s ] -> s.Trace.sg_t0 = 0.0 && s.Trace.sg_t1 > 2.0
    | _ -> false)

let test_mailbox_fifo () =
  let sim = S.create () in
  let order = ref [] in
  let receiver =
    S.spawn sim ~name:"r" (fun () ->
        S.delay 5.0;
        (* both messages already queued *)
        let a = S.recv () in
        let b = S.recv () in
        order := [ a; b ])
  in
  let _ =
    S.spawn sim ~name:"s" (fun () ->
        S.send ~dst:receiver ~size:10 "first";
        S.send ~dst:receiver ~size:10 "second")
  in
  S.run sim;
  Alcotest.(check (list string)) "fifo" [ "first"; "second" ] !order

let test_try_recv () =
  let sim = S.create () in
  let early = ref (Some "junk") and late = ref None in
  let receiver =
    S.spawn sim ~name:"r" (fun () ->
        early := S.try_recv ();
        S.delay 3.0;
        late := S.try_recv ())
  in
  let _ = S.spawn sim ~name:"s" (fun () -> S.send ~dst:receiver ~size:10 "m") in
  S.run sim;
  check_bool "nothing at t=0" true (!early = None);
  check_bool "delivered by t=3" true (!late = Some "m")

let test_deadlock_detected () =
  let sim = S.create () in
  let _ = S.spawn sim ~name:"stuck" (fun () -> ignore (S.recv ())) in
  match S.run sim with
  | exception S.Deadlock _ -> ()
  | () -> Alcotest.fail "expected deadlock"

let test_ethernet_contention () =
  (* Two simultaneous big sends must serialize on the shared medium. *)
  let sim = S.create () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let r1 = S.spawn sim ~name:"r1" (fun () -> ignore (S.recv ()); t1 := S.time ()) in
  let r2 = S.spawn sim ~name:"r2" (fun () -> ignore (S.recv ()); t2 := S.time ()) in
  let _ = S.spawn sim ~name:"s1" (fun () -> S.send ~dst:r1 ~size:125_000 "a") in
  let _ = S.spawn sim ~name:"s2" (fun () -> S.send ~dst:r2 ~size:125_000 "b") in
  S.run sim;
  let p = Ethernet.default_params in
  let tx = 125_000.0 /. p.Ethernet.bandwidth in
  let first = min !t1 !t2 and second = max !t1 !t2 in
  check_float "first arrives after one tx" (tx +. p.Ethernet.latency) first;
  check_float "second queued behind" ((2.0 *. tx) +. p.Ethernet.latency) second;
  check_bool "contention recorded" true
    (Ethernet.contention_time (S.network sim) > 0.0)

let test_no_contention_mode () =
  let params = { Ethernet.default_params with Ethernet.contention = false } in
  let sim = S.create ~params () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let r1 = S.spawn sim ~name:"r1" (fun () -> ignore (S.recv ()); t1 := S.time ()) in
  let r2 = S.spawn sim ~name:"r2" (fun () -> ignore (S.recv ()); t2 := S.time ()) in
  let _ = S.spawn sim ~name:"s1" (fun () -> S.send ~dst:r1 ~size:125_000 "a") in
  let _ = S.spawn sim ~name:"s2" (fun () -> S.send ~dst:r2 ~size:125_000 "b") in
  S.run sim;
  check_float "parallel delivery" !t1 !t2

let test_switched_ports () =
  (* Switched fabric: simultaneous transmissions on distinct ports each get
     a full-bandwidth link; same-port traffic still queues. On the shared
     medium the port hint is ignored and everything serializes. *)
  let p = Ethernet.switched_params in
  let tx = 125_000.0 /. p.Ethernet.bandwidth in
  let net = Ethernet.create p in
  let a = Ethernet.transmit net ~port:1 ~now:0.0 ~size:125_000 in
  let b = Ethernet.transmit net ~port:2 ~now:0.0 ~size:125_000 in
  check_float "port 1 unqueued" (tx +. p.Ethernet.latency) a;
  check_float "port 2 parallel" (tx +. p.Ethernet.latency) b;
  let c = Ethernet.transmit net ~port:2 ~now:0.0 ~size:125_000 in
  check_float "same port queues" ((2.0 *. tx) +. p.Ethernet.latency) c;
  check_bool "queueing recorded" true (Ethernet.contention_time net > 0.0);
  let shared = Ethernet.create Ethernet.default_params in
  let a' = Ethernet.transmit shared ~port:1 ~now:0.0 ~size:125_000 in
  let b' = Ethernet.transmit shared ~port:2 ~now:0.0 ~size:125_000 in
  check_float "shared medium ignores ports" (tx +. a') b'

let test_determinism () =
  let run_once () =
    let sim = S.create () in
    let log = ref [] in
    let pids = Array.make 3 0 in
    for i = 0 to 2 do
      pids.(i) <-
        S.spawn sim
          ~name:(Printf.sprintf "p%d" i)
          (fun () ->
            S.delay (0.1 *. float_of_int (i + 1));
            log := Printf.sprintf "p%d@%.3f" i (S.time ()) :: !log)
    done;
    S.run sim;
    List.rev !log
  in
  Alcotest.(check (list string)) "same schedule" (run_once ()) (run_once ())

let test_trace_and_gantt () =
  let sim = S.create () in
  let r = S.spawn sim ~name:"worker" (fun () -> ignore (S.recv ()); S.delay 1.0) in
  let _ =
    S.spawn sim ~name:"parser" (fun () ->
        S.mark "phase1";
        S.delay 0.5;
        S.send ~dst:r ~size:100 "go")
  in
  S.run sim;
  let tr = S.trace sim in
  check_bool "has arrow" true (List.length (Trace.arrows tr) = 1);
  check_bool "worker active 1s" true (Trace.active_time tr ~pid:r >= 1.0);
  check_bool "utilization <= 1" true (Trace.utilization tr ~pid:r <= 1.0);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let chart = Gantt.render ~names:(S.name_of sim) tr in
  check_bool "chart mentions worker" true (contains chart "worker");
  check_bool "chart shows activity" true (contains chart "#")

let suite =
  [
    ( "netsim",
      [
        Alcotest.test_case "delay" `Quick test_delay_advances_time;
        Alcotest.test_case "send/recv" `Quick test_send_recv;
        Alcotest.test_case "recv blocks" `Quick test_recv_before_send_blocks;
        Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "try_recv" `Quick test_try_recv;
        Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
        Alcotest.test_case "ethernet contention" `Quick test_ethernet_contention;
        Alcotest.test_case "no contention" `Quick test_no_contention_mode;
        Alcotest.test_case "switched ports" `Quick test_switched_ports;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "trace/gantt" `Quick test_trace_and_gantt;
      ] );
  ]
