(** Compiler drivers: sequential (static / dynamic / oracle) and parallel
    (simulated network or domains), plus assemble-and-run support.

    The parallel paths run the same grammar through
    {!Pag_parallel.Runner}, which is how every experiment in bench/ compiles
    programs. *)

open Pag_analysis
open Pag_parallel

type compiled = {
  c_asm : string;  (** VAX assembly text *)
  c_errors : string list;  (** semantic errors *)
}

exception Compile_error of string

(** Kastens plan of the [`Base] grammar (computed once). *)
val plan : Kastens.plan Lazy.t

(** Kastens plan of the [`Threaded] grammar. *)
val plan_threaded : Kastens.plan Lazy.t

(** Trace phase labels for the two visits (figure 6). *)
val phase_label : int -> string option

(** Sequential compilation with the chosen evaluator. With a live [obs]
    context (pid 0, wall clock), the tree build and the evaluator phases
    are recorded as spans alongside the evaluation counters.
    [~hashcons:true] enables hash-consed (memoized) evaluation for the
    [`Static] and [`Dynamic] evaluators; [`Oracle] ignores it.

    [~dag:true] evaluates on the shared DAG: for [`Dynamic], one
    rule-instance set per unique subtree with occurrence projection
    ({!Pag_eval.Dag}); for [`Static], the subtree memo (whose replay unit
    — the whole visit over a shape class — is that schedule's collapse
    unit). [dag_out] hands back the DAG runtime for statistics.

    [prov] attaches a provenance ring to the run (ignored by [`Oracle]);
    [engine_out]/[tree_out] hand back the evaluation engine and the built
    tree for post-run analysis ({!Pag_eval.Causal} — [pagc --explain] and
    [--profile] on the sequential path). *)
val compile :
  ?obs:Pag_obs.Obs.ctx ->
  ?hashcons:bool ->
  ?dag:bool ->
  ?dag_out:(Pag_eval.Dag.t -> unit) ->
  ?prov:Pag_obs.Prov.t ->
  ?engine_out:(Pag_eval.Engine.t -> unit) ->
  ?tree_out:(Pag_core.Tree.t -> unit) ->
  ?evaluator:[ `Static | `Dynamic | `Oracle ] ->
  Ast.program ->
  compiled

(** Parse then compile. *)
val compile_source : string -> compiled

(** Parallel compilation on the simulated network multiprocessor. Uses the
    [`Base] grammar unless [variant] says otherwise. *)
val compile_parallel_sim :
  ?variant:[ `Base | `Threaded ] ->
  Runner.options ->
  Ast.program ->
  Runner.result * compiled

(** Parallel compilation on OCaml domains. *)
val compile_parallel_domains :
  ?variant:[ `Base | `Threaded ] ->
  Runner.options ->
  Ast.program ->
  Runner.result * compiled

(** Apply the peephole optimizer to compiled assembly. *)
val optimize : compiled -> compiled

(** Mask every [L<n>]/[P<n>] label token in assembly text. Label numbers
    depend on rule firing order (which differs between evaluators and
    across incremental edits); the masked text is what must agree. *)
val mask_labels : string -> string

(** Assemble and execute on the VAX simulator. Raises [Compile_error] when
    the program had semantic errors. *)
val run_compiled :
  ?fuel:int -> ?input:int list -> compiled -> (string, string) result
