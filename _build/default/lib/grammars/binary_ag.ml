open Pag_core

let f_copy args = args.(0)

let f_zero _ = Value.Int 0

let f_one args = Value.Int (Value.as_int ~ctx:"len" args.(0) + 1)

let f_scale_up args = Value.Int (Value.as_int ~ctx:"scale" args.(0) + 1)

let f_bit_value args =
  let digit = Value.as_int ~ctx:"digit" args.(0)
  and scale = Value.as_int ~ctx:"scale" args.(1) in
  Value.Int (digit lsl scale)

let f_add args =
  Value.Int
    (Value.as_int ~ctx:"add" args.(0) + Value.as_int ~ctx:"add" args.(1))

let grammar =
  let open Grammar in
  make ~name:"binary" ~start:"num"
    [
      terminal "BIT" [ "digit" ];
      nonterminal "num" [ syn "value" ];
      nonterminal "bits" [ syn "value"; syn "len"; inh "scale" ];
    ]
    [
      production ~name:"num" ~lhs:"num" ~rhs:[ "bits" ]
        [
          rule (lhs "value") ~deps:[ rhs 1 "value" ] f_copy;
          rule ~name:"scale=0" (rhs 1 "scale") ~deps:[] f_zero;
        ];
      production ~name:"single" ~lhs:"bits" ~rhs:[ "BIT" ]
        [
          rule ~name:"value=bit" (lhs "value")
            ~deps:[ rhs 1 "digit"; lhs "scale" ]
            f_bit_value;
          rule ~name:"len=1" (lhs "len") ~deps:[] (fun _ -> Value.Int 1);
        ];
      production ~name:"snoc" ~lhs:"bits" ~rhs:[ "bits"; "BIT" ]
        [
          rule ~name:"scale+1" (rhs 1 "scale") ~deps:[ lhs "scale" ] f_scale_up;
          rule ~name:"value=+" (lhs "value")
            ~deps:[ rhs 1 "value"; rhs 2 "digit"; lhs "scale" ]
            (fun args ->
              f_add [| args.(0); f_bit_value [| args.(1); args.(2) |] |]);
          rule ~name:"len+1" (lhs "len") ~deps:[ rhs 1 "len" ] f_one;
        ];
    ]

let bit d = Tree.leaf grammar "BIT" [ ("digit", Value.Int d) ]

let of_bits = function
  | [] -> invalid_arg "Binary_ag.of_bits: empty"
  | d :: rest ->
      List.iter
        (fun d ->
          if d <> 0 && d <> 1 then invalid_arg "Binary_ag.of_bits: not a bit")
        (d :: rest);
      let first = Tree.node grammar "single" [ bit d ] in
      let bits =
        List.fold_left
          (fun acc d -> Tree.node grammar "snoc" [ acc; bit d ])
          first rest
      in
      Tree.node grammar "num" [ bits ]

let random_bits st ~max_len =
  let len = 1 + Random.State.int st (max 1 max_len) in
  List.init len (fun _ -> Random.State.int st 2)

let reference_value bits = List.fold_left (fun acc d -> (2 * acc) + d) 0 bits
