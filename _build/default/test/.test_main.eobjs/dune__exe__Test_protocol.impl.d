test/test_protocol.ml: Alcotest Codestr Cost Lazy Librarian List Message Netsim Pag_analysis Pag_core Pag_grammars Pag_parallel Pag_util Printf Stackcode_ag String Transport Tree Uid Value Worker
