let render ?(width = 72) ?(max_arrows = 12) ?(overlay = []) ~names tr =
  let buf = Buffer.create 1024 in
  let horizon = Trace.horizon tr in
  if horizon <= 0.0 then "(empty trace)"
  else begin
    let pid_set = Hashtbl.create 16 in
    let note pid = if not (Hashtbl.mem pid_set pid) then Hashtbl.add pid_set pid () in
    Trace.iter_segments tr (fun s -> note s.Trace.sg_pid);
    Trace.iter_arrows tr (fun a ->
        note a.Trace.ar_src;
        note a.Trace.ar_dst);
    let pids =
      List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) pid_set [])
    in
    let name_w =
      List.fold_left (fun w pid -> max w (String.length (names pid))) 4 pids
    in
    let x_of time =
      min (width - 1)
        (int_of_float (time /. horizon *. float_of_int width))
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s 0%s%.3fs\n" name_w ""
         (String.make (width - String.length (Printf.sprintf "%.3fs" horizon) - 1) ' ')
         horizon);
    List.iter
      (fun pid ->
        let row = Bytes.make width ' ' in
        Trace.iter_segments tr (fun s ->
            if s.Trace.sg_pid = pid then begin
              let x0 = x_of s.Trace.sg_t0 and x1 = x_of s.Trace.sg_t1 in
              let c = match s.Trace.sg_kind with
                | Trace.Active -> '#'
                | Trace.Idle -> '.'
              in
              for x = x0 to x1 do
                (* active periods win over idle ones at shared cells *)
                if c = '#' || Bytes.get row x = ' ' then Bytes.set row x c
              done
            end);
        List.iter
          (fun (opid, t0, t1) ->
            if opid = pid then
              for x = x_of t0 to x_of t1 do
                Bytes.set row x '*'
              done)
          overlay;
        Trace.iter_marks tr (fun m ->
            if m.Trace.mk_pid = pid then Bytes.set row (x_of m.Trace.mk_time) '|');
        Buffer.add_string buf
          (Printf.sprintf "%*s %s\n" name_w (names pid) (Bytes.to_string row)))
      pids;
    let n = Trace.num_arrows tr in
    Buffer.add_string buf (Printf.sprintf "messages: %d\n" n);
    let i = ref 0 in
    Trace.iter_arrows tr (fun a ->
        if !i < max_arrows then
          Buffer.add_string buf
            (Printf.sprintf "  %8.4fs  %s -> %s%s\n" a.Trace.ar_send
               (names a.Trace.ar_src) (names a.Trace.ar_dst)
               (if a.Trace.ar_label = "" then ""
                else "  (" ^ a.Trace.ar_label ^ ")"));
        incr i);
    if n > max_arrows then
      Buffer.add_string buf (Printf.sprintf "  ... and %d more\n" (n - max_arrows));
    Trace.iter_marks tr (fun m ->
        Buffer.add_string buf
          (Printf.sprintf "  mark %8.4fs %s: %s\n" m.Trace.mk_time
             (names m.Trace.mk_pid) m.Trace.mk_label));
    Buffer.contents buf
  end
