lib/vax/isa.mli: Format
