lib/eval/static_eval.ml: Array Grammar Kastens List Pag_analysis Pag_core Store Tree Uid
