open Pag_core
open Pag_obs

(* Incremental re-evaluation: edit-driven recompilation on top of the
   shared {!Engine}.

   A session keeps the evaluated tree, its store, engine and slot-level
   dependency graph alive between edits. An edit is a subtree replacement
   (found by {!Tree.diff}, applied by {!Tree.replace_subtree}): the
   replacement's nodes are numbered past the existing id range and appended
   to the store and engine, the detached subtree's instances are marked
   dead, and the edit site's parent is re-resolved in place. Change then
   propagates through the dependency graph self-adjusting-computation
   style:

   - phase 1 computes the dirty cone: every rule instance reachable from
     the seed rules (the appended subtree's rules plus the parent's)
     through consumer edges;
   - phase 2 re-fires the cone in local topological order, with an
     equality cutoff — a rule whose argument slots all kept their values is
     skipped, and a re-fired rule whose target value is unchanged
     ({!Store.redefine_slot}) stops propagation below it.

   When the dirty cone exceeds a fraction of all live rules the session
   falls back to from-scratch evaluation: past that point propagation
   bookkeeping costs more than it saves, and repeated edits have riddled
   the flat arrays with dead weight anyway. The fallback renumbers the
   tree and rebuilds store, engine and graph, compacting everything.

   Unique labels ({!Uid}) are drawn from the session's own cursor, so
   re-fired label-allocating rules produce fresh labels rather than the
   ones a from-scratch run would pick: incremental output is equivalent to
   from-scratch output up to label renaming (exactly equal when no rule in
   the dirty cone allocates labels). *)

type edit_stats = {
  ed_dirty : int;
  ed_refired : int;
  ed_cutoff : int;
  ed_fallback : bool;
  ed_prop_ms : float;
}

type totals = {
  tot_edits : int;
  tot_dirty : int;
  tot_refired : int;
  tot_cutoff : int;
  tot_fallbacks : int;
}

type wave_stats = {
  wv_edits : int;
  wv_waves : int;
  wv_conflicts : int;
  wv_dirty : int;
  wv_refired : int;
  wv_cutoff : int;
  wv_fallbacks : int;
  wv_rounds : int;
  wv_round_refired : int array;
  wv_bytes : int;
  wv_prop_ms : float;
}

type session = {
  s_g : Grammar.t;
  s_obs : Obs.ctx;
  s_memo : Memo.rules option;
  s_prov : Prov.t;
  s_frontier : float;
  s_cursor : int ref;
  s_use_dag : bool;
  mutable s_dag : Dag.t option;  (* the run's DAG runtime when [s_use_dag] *)
  mutable s_tree : Tree.t;
  mutable s_store : Store.t;
  mutable s_engine : Engine.t;
  mutable s_graph : Engine.graph;
  mutable s_next_id : int;  (* next unused node id *)
  mutable s_live_rules : int;
  mutable s_live_slots : int;  (* slots owned by live tree nodes *)
  mutable s_epoch : int;
  mutable s_epoch0 : int;  (* epoch before the current edit/batch began:
                              {!changed} answers for stamps above it, so a
                              multi-wave batch reports every wave's changes *)
  mutable s_changed : int array;  (* slot -> epoch its value last changed *)
  mutable s_last_fallback : bool;
  mutable s_edits : int;
  mutable s_dirty : int;
  mutable s_refired : int;
  mutable s_cutoff : int;
  mutable s_fallbacks : int;
}

let tree s = s.s_tree

let store s = s.s_store

let engine s = s.s_engine

let prov s = s.s_prov

let live_slots s = s.s_live_slots

let dag_stats s = Option.map Dag.stats s.s_dag

(* Attribute instances a (sub)tree owns in the store: one slot per
   declared attribute of each node's symbol (see {!Store.create}). *)
let tree_slots g t =
  Tree.fold
    (fun acc (n : Tree.t) ->
      acc + Array.length (Grammar.symbol g n.Tree.sym).Grammar.s_attrs)
    0 t

let totals s =
  {
    tot_edits = s.s_edits;
    tot_dirty = s.s_dirty;
    tot_refired = s.s_refired;
    tot_cutoff = s.s_cutoff;
    tot_fallbacks = s.s_fallbacks;
  }

let no_edit =
  {
    ed_dirty = 0;
    ed_refired = 0;
    ed_cutoff = 0;
    ed_fallback = false;
    ed_prop_ms = 0.0;
  }

(* A provenance ring outlives the engines of a session: re-attach it to
   every rebuilt engine so refires after a fallback keep recording. The
   clock is the session's obs clock when live, CPU time otherwise. *)
let attach_prov s eng =
  if Prov.enabled s.s_prov then begin
    let clock =
      if Obs.ctx_enabled s.s_obs then s.s_obs.Obs.x_clock else Sys.time
    in
    Engine.set_prov ~pid:s.s_obs.Obs.x_pid ~clock eng s.s_prov
  end

let build s =
  let store = Store.create s.s_g s.s_tree in
  let dplan =
    if s.s_use_dag then Some (Dag.plan s.s_g store (Tree.dag s.s_tree))
    else None
  in
  let eng =
    Engine.create ?memo:s.s_memo
      ?rules_for:(Option.map Dag.rules_for dplan)
      s.s_g store
  in
  (* The compacting rebuild renumbers slots: stale records would resolve
     against the wrong instances. Clear the ring — the from-scratch
     re-evaluation below repopulates it consistently with the new engine. *)
  Prov.clear s.s_prov;
  attach_prov s eng;
  let gr = Engine.graph eng in
  let rt = Option.map (fun p -> Dag.make p eng gr) dplan in
  Uid.with_counter s.s_cursor (fun () ->
      match rt with
      | None -> ignore (Engine.run_topo eng gr)
      | Some rt -> ignore (Dag.run_topo rt eng gr));
  s.s_dag <- rt;
  s.s_store <- store;
  s.s_engine <- eng;
  s.s_graph <- gr;
  s.s_next_id <- Store.node_count store;
  s.s_live_rules <- Engine.rule_count eng;
  s.s_live_slots <- Store.slot_count store;
  s.s_changed <- Array.make (max 1 (Store.slot_count store)) 0

let start ?(obs = Obs.null_ctx) ?memo ?(hashcons = false) ?(dag = false)
    ?(prov = Prov.disabled) ?(frontier = 0.6) g tree =
  let memo =
    match memo with
    | Some _ as m -> m
    | None -> if hashcons then Some (Memo.create_rules ()) else None
  in
  let cursor = ref 0 in
  let store = Store.create g tree in
  let dplan = if dag then Some (Dag.plan g store (Tree.dag tree)) else None in
  let eng =
    Engine.create ?memo ?rules_for:(Option.map Dag.rules_for dplan) g store
  in
  (if Prov.enabled prov then
     let clock = if Obs.ctx_enabled obs then obs.Obs.x_clock else Sys.time in
     Engine.set_prov ~pid:obs.Obs.x_pid ~clock eng prov);
  let gr = Engine.graph eng in
  let rt = Option.map (fun p -> Dag.make p eng gr) dplan in
  Uid.with_counter cursor (fun () ->
      match rt with
      | None -> ignore (Engine.run_topo eng gr)
      | Some rt -> ignore (Dag.run_topo rt eng gr));
  {
    s_g = g;
    s_obs = obs;
    s_memo = memo;
    s_prov = prov;
    s_frontier = frontier;
    s_cursor = cursor;
    s_use_dag = dag;
    s_dag = rt;
    s_tree = tree;
    s_store = store;
    s_engine = eng;
    s_graph = gr;
    s_next_id = Store.node_count store;
    s_live_rules = Engine.rule_count eng;
    s_live_slots = Store.slot_count store;
    s_epoch = 0;
    s_epoch0 = 0;
    s_changed = Array.make (max 1 (Store.slot_count store)) 0;
    s_last_fallback = false;
    s_edits = 0;
    s_dirty = 0;
    s_refired = 0;
    s_cutoff = 0;
    s_fallbacks = 0;
  }

let record s st =
  s.s_edits <- s.s_edits + 1;
  s.s_dirty <- s.s_dirty + st.ed_dirty;
  s.s_refired <- s.s_refired + st.ed_refired;
  s.s_cutoff <- s.s_cutoff + st.ed_cutoff;
  if st.ed_fallback then s.s_fallbacks <- s.s_fallbacks + 1;
  s.s_last_fallback <- st.ed_fallback;
  let obs = s.s_obs in
  if Obs.ctx_enabled obs then begin
    let reg = obs.Obs.x_metrics in
    let bump name n = Obs.Metrics.add (Obs.Metrics.counter reg name) n in
    bump "incr.edits" 1;
    bump "incr.dirty_rules" st.ed_dirty;
    bump "incr.refired" st.ed_refired;
    bump "incr.cutoff_hits" st.ed_cutoff;
    if st.ed_fallback then bump "incr.fallbacks" 1;
    Obs.Metrics.observe
      (Obs.Metrics.histogram reg "incr.prop_ms")
      st.ed_prop_ms
  end;
  st

(* From-scratch fallback: renumber and rebuild, compacting away dead
   instances accumulated by previous edits. *)
let fallback s ~dirty t0 =
  build s;
  record s
    {
      ed_dirty = dirty;
      ed_refired = Engine.rule_count s.s_engine;
      ed_cutoff = 0;
      ed_fallback = true;
      ed_prop_ms = (Sys.time () -. t0) *. 1e3;
    }

let in_set set rid =
  Char.code (Bytes.unsafe_get set (rid lsr 3)) land (1 lsl (rid land 7)) <> 0

let add_set set rid =
  let b = rid lsr 3 in
  Bytes.set set b (Char.chr (Char.code (Bytes.get set b) lor (1 lsl (rid land 7))))

(* Grow a rule-id bitset to cover [n] rules. DAG sessions materialize
   instances mid-edit (see {!revive_site}), so the rule table can outgrow
   bitsets sized at the edit's start. *)
let ensure b n =
  let need = (n + 7) / 8 in
  if Bytes.length !b < need then begin
    let nb = Bytes.make (max need (2 * Bytes.length !b)) '\000' in
    Bytes.blit !b 0 nb 0 (Bytes.length !b);
    b := nb
  end

(* Rule instances a detached subtree actually owned: parked occurrences
   inside it never had theirs resolved. *)
let killed_rules eng old =
  Tree.fold
    (fun acc (n : Tree.t) ->
      match n.Tree.prod with
      | None -> acc
      | Some p ->
          if Engine.has_rules eng n then acc + Array.length p.Grammar.p_rules
          else acc)
    0 old

(* An edit inside a projected occurrence splits it off its class before
   any surgery: the covering region materializes (sticky — it never
   re-projects), so the nodes about to be killed and the parent about to
   be re-resolved have live rule instances. Must run before
   {!Tree.replace_subtree} — materialization walks the region's current
   subtree. *)
let revive_site s gr (parent : Tree.t) =
  match s.s_dag with
  | None -> ()
  | Some rt -> (
      match Dag.revive_node rt gr parent.Tree.id with
      | None -> ()
      | Some (lo, hi) -> s.s_live_rules <- s.s_live_rules + (hi - lo))

(* The dirty cone is reaching an inherited gate of a projected occurrence:
   its context may diverge from its class's, so split it off and return
   the fresh instances for the cone (non-seeds — the equality cutoff
   discards them when the gate value turns out unchanged). *)
let revive_slot s gr slot =
  match s.s_dag with
  | None -> None
  | Some rt -> (
      match Dag.revive_gate rt gr slot with
      | None -> None
      | Some (lo, hi) as r ->
          s.s_live_rules <- s.s_live_rules + (hi - lo);
          r)

let replace s ~parent ~pos repl =
  let t0 = Sys.time () in
  s.s_epoch0 <- s.s_epoch;
  let eng = s.s_engine and gr = s.s_graph in
  revive_site s gr parent;
  s.s_next_id <- Tree.number_from repl s.s_next_id;
  let old = Tree.replace_subtree s.s_g ~parent ~pos repl in
  let added = tree_slots s.s_g repl in
  s.s_live_slots <- s.s_live_slots + added - tree_slots s.s_g old;
  if Store.slot_count s.s_store + added > 2 * s.s_live_slots then
    (* Dead weight from detached subtrees would outweigh the live tree:
       compact with a from-scratch rebuild instead of appending. Nothing
       else ever reclaims dead slots — before this trigger a long stream of
       small edits grew the flat arrays (and the resident store's heap)
       without bound, a leak per edit session. The 2x threshold amortizes:
       a rebuild costs O(live), and reaching the trigger again requires
       detaching at least O(live) slots' worth of edits. *)
    fallback s ~dirty:s.s_live_rules t0
  else begin
  Store.append_subtree s.s_store repl;
  let total = Store.slot_count s.s_store in
  if Array.length s.s_changed < total then begin
    let a = Array.make (max total (2 * Array.length s.s_changed)) 0 in
    Array.blit s.s_changed 0 a 0 (Array.length s.s_changed);
    s.s_changed <- a
  end;
  (* Detach the old subtree's instances, append the replacement's, rewire
     the edit site. *)
  let killed = killed_rules eng old in
  Engine.kill_subtree eng old;
  let rid_lo, rid_hi = Engine.append eng repl in
  Engine.graph_note_range eng gr ~rid_lo ~rid_hi;
  Engine.reresolve_node eng ~graph:gr parent;
  s.s_live_rules <- s.s_live_rules + (rid_hi - rid_lo) - killed;
  (* Seeds: the appended instances (their slots are all unset) and the edit
     site's own instances (their references moved). *)
  let n = Engine.rule_count eng in
  let seed = ref (Bytes.make (max 1 ((n + 7) / 8)) '\000') in
  let dirty = ref (Bytes.make (max 1 ((n + 7) / 8)) '\000') in
  let cone = ref [] and cone_n = ref 0 in
  let stack = ref [] in
  let push rid =
    if not (in_set !dirty rid) then begin
      add_set !dirty rid;
      cone := rid :: !cone;
      incr cone_n;
      stack := rid :: !stack
    end
  in
  for rid = rid_lo to rid_hi - 1 do
    add_set !seed rid;
    push rid
  done;
  (match parent.Tree.prod with
  | None -> ()
  | Some p ->
      for ridx = 0 to Array.length p.Grammar.p_rules - 1 do
        let rid = Engine.rid_at eng parent ridx in
        add_set !seed rid;
        push rid
      done);
  (* Phase 1: dirty cone = consumer-edge closure of the seeds. *)
  let rec close () =
    match !stack with
    | [] -> ()
    | rid :: rest ->
        stack := rest;
        let tgt = Engine.target_slot eng rid in
        (match revive_slot s gr tgt with
        | None -> ()
        | Some (lo, hi) ->
            ensure seed (Engine.rule_count eng);
            ensure dirty (Engine.rule_count eng);
            for r = lo to hi - 1 do
              push r
            done);
        Engine.iter_consumers gr tgt (fun c ->
            if not (Engine.is_dead eng c) then push c);
        close ()
  in
  close ();
  if float_of_int !cone_n > s.s_frontier *. float_of_int s.s_live_rules then
    fallback s ~dirty:!cone_n t0
  else begin
    (* Phase 2: local Kahn over the cone. A rule waits only on cone
       producers; ready rules fire in ascending rule-id order for
       determinism. Cutoff: skip rules none of whose arguments changed
       this epoch; a re-fired rule marks its target changed only when the
       stored value actually moved. *)
    s.s_epoch <- s.s_epoch + 1;
    let epoch = s.s_epoch in
    let cone = Array.of_list !cone in
    Array.sort compare cone;
    let pending = Hashtbl.create (2 * Array.length cone) in
    Array.iter
      (fun rid ->
        let w = ref 0 in
        Engine.iter_slot_args eng rid (fun slot ->
            let p = Engine.producer gr slot in
            if p >= 0 && (not (Engine.is_dead eng p)) && in_set !dirty p then
              incr w);
        Hashtbl.replace pending rid !w)
      cone;
    let queue = Queue.create () in
    Array.iter
      (fun rid -> if Hashtbl.find pending rid = 0 then Queue.add rid queue)
      cone;
    let refired = ref 0 and cutoff = ref 0 and processed = ref 0 in
    Uid.with_counter s.s_cursor (fun () ->
        while not (Queue.is_empty queue) do
          let rid = Queue.take queue in
          incr processed;
          let must =
            in_set !seed rid
            ||
            let hit = ref false in
            Engine.iter_slot_args eng rid (fun slot ->
                if s.s_changed.(slot) = epoch then hit := true);
            !hit
          in
          (if must then begin
             incr refired;
             if Engine.refire eng rid then
               s.s_changed.(Engine.target_slot eng rid) <- epoch
           end
           else incr cutoff);
          Engine.iter_consumers gr (Engine.target_slot eng rid) (fun c ->
              if (not (Engine.is_dead eng c)) && in_set !dirty c then begin
                let w = Hashtbl.find pending c - 1 in
                Hashtbl.replace pending c w;
                if w = 0 then Queue.add c queue
              end)
        done);
    if !processed < Array.length cone then
      (* A cycle through the dirty set (possible only for pathological
         grammars): give up on propagation and rebuild. *)
      fallback s ~dirty:!cone_n t0
    else
      record s
        {
          ed_dirty = !cone_n;
          ed_refired = !refired;
          ed_cutoff = !cutoff;
          ed_fallback = false;
          ed_prop_ms = (Sys.time () -. t0) *. 1e3;
        }
  end
  end

let edit s next =
  match Tree.diff s.s_tree next with
  | Tree.Equal ->
      (* Nothing moved; bump the epoch so stale change marks from the
         previous edit stop answering {!changed}. *)
      s.s_epoch <- s.s_epoch + 1;
      s.s_epoch0 <- s.s_epoch;
      record s no_edit
  | Tree.Root ->
      let t0 = Sys.time () in
      s.s_epoch0 <- s.s_epoch;
      s.s_tree <- next;
      fallback s ~dirty:s.s_live_rules t0
  | Tree.Subtree { parent; pos; repl } -> replace s ~parent ~pos repl

(* ------------------------------------------------------------------ *)
(* Batched edits: merged cones and refire waves                        *)
(* ------------------------------------------------------------------ *)

(* Apply a set of edits in waves, re-firing each wave's merged dirty cone
   once instead of propagating edit by edit.

   Semantic rules are pure, so change propagation is confluent: as long as
   two co-grafted edits are structurally compatible — neither grafts into
   a region the other replaced — a single Kahn pass over the union of
   their dirty cones reaches exactly the store the serial application
   would, in any order. Overlapping cones (every edit's cone reaches the
   root's synthesized attributes) therefore MERGE; what forces
   serialization is structural interference only:

   - the new edit's graft site lies inside a region an accepted edit
     replaced (parent or detached nodes touched by an accepted edit's
     parent/old/replacement node set);
   - the new edit detaches instances already in the pending merged cone
     (their re-fire is owed to an earlier edit and must happen first);
   - the new edit shares its parent node with an accepted edit (the
     re-resolved frontier slots at the graft interface are shared).

   All three are decided before grafting, against a touched-node table and
   the merged dirty bitset. A conflicting edit flushes the pending wave
   (one merged refire, its own epoch) and starts the next one — batches
   degrade to serial waves, preserving submission order. Compaction,
   frontier overflow and whole-tree replacement fall back to a rebuild as
   in {!replace}; a rebuild subsumes the pending wave (from-scratch
   evaluation recomputes everything the wave owed). *)

let edit_batch ?(domains = 1) s nexts =
  let t0 = Sys.time () in
  s.s_epoch0 <- s.s_epoch;
  let edits = ref 0 and waves = ref 0 and conflicts = ref 0 in
  let dirty_tot = ref 0 and refired = ref 0 and cutoff = ref 0 in
  let fallbacks = ref 0 and rounds = ref 0 in
  let round_refired = ref [] in
  let bytes = ref 0 in
  (* Pending-wave state. Bitsets are indexed by rule id and grow with the
     engine; [w_touched] holds node ids structurally claimed by accepted
     edits; [w_owner] maps a cone member to the edit whose closure first
     reached it (steal-deque seeding affinity). *)
  let w_seed = ref (Bytes.make 1 '\000') in
  let w_dirty = ref (Bytes.make 1 '\000') in
  let w_cone = ref [] and w_cone_n = ref 0 and w_edits = ref 0 in
  let w_touched : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let w_owner : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let reset_wave () =
    let n = (Engine.rule_count s.s_engine + 7) / 8 in
    w_seed := Bytes.make (max 1 n) '\000';
    w_dirty := Bytes.make (max 1 n) '\000';
    w_cone := [];
    w_cone_n := 0;
    w_edits := 0;
    Hashtbl.reset w_touched;
    Hashtbl.reset w_owner
  in
  (* From-scratch rebuild subsuming whatever wave is pending. *)
  let rebuild ~dirty =
    incr fallbacks;
    dirty_tot := !dirty_tot + dirty;
    build s;
    refired := !refired + Engine.rule_count s.s_engine;
    reset_wave ()
  in
  let flush () =
    if !w_cone_n > 0 then begin
      s.s_epoch <- s.s_epoch + 1;
      let epoch = s.s_epoch in
      let cone = Array.of_list !w_cone in
      Array.sort compare cone;
      let seedb = !w_seed in
      let is_seed rid = in_set seedb rid in
      let d_count = max 1 domains in
      let owner rid =
        match Hashtbl.find_opt w_owner rid with
        | Some k -> k mod d_count
        | None -> 0
      in
      (match
         if d_count > 1 then
           Engine.refire_set ~domains:d_count ~owner ~uid_base:!(s.s_cursor)
             s.s_engine s.s_graph ~cone ~is_seed ~changed:s.s_changed ~epoch
         else
           Uid.with_counter s.s_cursor (fun () ->
               Engine.refire_set s.s_engine s.s_graph ~cone ~is_seed
                 ~changed:s.s_changed ~epoch)
       with
      | exception Engine.Cycle _ -> rebuild ~dirty:!w_cone_n
      | rf ->
          dirty_tot := !dirty_tot + !w_cone_n;
          refired := !refired + rf.Engine.rf_refired;
          cutoff := !cutoff + rf.Engine.rf_cutoff;
          rounds := !rounds + rf.Engine.rf_rounds;
          Array.iter
            (fun r -> round_refired := r :: !round_refired)
            rf.Engine.rf_round_refired;
          if d_count > 1 then
            (* the wave drew uids from per-domain stripes; move the
               session cursor past them *)
            s.s_cursor := !(s.s_cursor) + (d_count * Uid.stride);
          incr waves;
          reset_wave ())
    end
  in
  (* Structural interference of a new edit with the pending wave. *)
  let conflicts_with ~parent ~pos =
    !w_edits > 0
    && (Hashtbl.mem w_touched parent.Tree.id
       ||
       let eng = s.s_engine in
       let bad = ref false in
       Tree.iter
         (fun (n : Tree.t) ->
           if Hashtbl.mem w_touched n.Tree.id then bad := true;
           match n.Tree.prod with
           | None -> ()
           | Some p ->
               (* Parked occurrences own no instances; their rid base is
                  stale and must not be consulted. *)
               if Engine.has_rules eng n then
                 for ridx = 0 to Array.length p.Grammar.p_rules - 1 do
                   if in_set !w_dirty (Engine.rid_at eng n ridx) then
                     bad := true
                 done)
         parent.Tree.children.(pos);
       !bad)
  in
  (* Graft one accepted edit and extend the merged cone (the front half of
     {!replace}, with the refire deferred to the wave flush). *)
  let graft ~parent ~pos repl =
    let eng = s.s_engine and gr = s.s_graph in
    revive_site s gr parent;
    s.s_next_id <- Tree.number_from repl s.s_next_id;
    let old = Tree.replace_subtree s.s_g ~parent ~pos repl in
    let added = tree_slots s.s_g repl in
    s.s_live_slots <- s.s_live_slots + added - tree_slots s.s_g old;
    if Store.slot_count s.s_store + added > 2 * s.s_live_slots then
      rebuild ~dirty:s.s_live_rules
    else begin
      Store.append_subtree s.s_store repl;
      let total = Store.slot_count s.s_store in
      if Array.length s.s_changed < total then begin
        let a = Array.make (max total (2 * Array.length s.s_changed)) 0 in
        Array.blit s.s_changed 0 a 0 (Array.length s.s_changed);
        s.s_changed <- a
      end;
      let killed = killed_rules eng old in
      Engine.kill_subtree eng old;
      let rid_lo, rid_hi = Engine.append eng repl in
      Engine.graph_note_range eng gr ~rid_lo ~rid_hi;
      Engine.reresolve_node eng ~graph:gr parent;
      s.s_live_rules <- s.s_live_rules + (rid_hi - rid_lo) - killed;
      let k = !w_edits in
      incr w_edits;
      let n = Engine.rule_count eng in
      ensure w_seed n;
      ensure w_dirty n;
      let stack = ref [] in
      let push rid =
        if not (in_set !w_dirty rid) then begin
          add_set !w_dirty rid;
          w_cone := rid :: !w_cone;
          incr w_cone_n;
          Hashtbl.replace w_owner rid k;
          stack := rid :: !stack
        end
      in
      for rid = rid_lo to rid_hi - 1 do
        add_set !w_seed rid;
        push rid
      done;
      (match parent.Tree.prod with
      | None -> ()
      | Some p ->
          for ridx = 0 to Array.length p.Grammar.p_rules - 1 do
            let rid = Engine.rid_at eng parent ridx in
            add_set !w_seed rid;
            push rid
          done);
      let rec close () =
        match !stack with
        | [] -> ()
        | rid :: rest ->
            stack := rest;
            let tgt = Engine.target_slot eng rid in
            (match revive_slot s gr tgt with
            | None -> ()
            | Some (lo, hi) ->
                ensure w_seed (Engine.rule_count eng);
                ensure w_dirty (Engine.rule_count eng);
                for r = lo to hi - 1 do
                  push r
                done);
            Engine.iter_consumers gr tgt (fun c ->
                if not (Engine.is_dead eng c) then push c);
            close ()
      in
      close ();
      Hashtbl.replace w_touched parent.Tree.id ();
      Tree.iter (fun (n : Tree.t) -> Hashtbl.replace w_touched n.Tree.id ()) old;
      Tree.iter (fun (n : Tree.t) -> Hashtbl.replace w_touched n.Tree.id ()) repl;
      bytes := !bytes + Tree.byte_size repl;
      if float_of_int !w_cone_n > s.s_frontier *. float_of_int s.s_live_rules
      then rebuild ~dirty:!w_cone_n
    end
  in
  List.iter
    (fun next ->
      incr edits;
      match Tree.diff s.s_tree next with
      | Tree.Equal -> ()
      | Tree.Root ->
          s.s_tree <- next;
          rebuild ~dirty:s.s_live_rules
      | Tree.Subtree { parent; pos; repl } ->
          if conflicts_with ~parent ~pos then begin
            incr conflicts;
            flush ()
          end;
          graft ~parent ~pos repl)
    nexts;
  flush ();
  let wv =
    {
      wv_edits = !edits;
      wv_waves = !waves;
      wv_conflicts = !conflicts;
      wv_dirty = !dirty_tot;
      wv_refired = !refired;
      wv_cutoff = !cutoff;
      wv_fallbacks = !fallbacks;
      wv_rounds = !rounds;
      wv_round_refired = Array.of_list (List.rev !round_refired);
      wv_bytes = !bytes;
      wv_prop_ms = (Sys.time () -. t0) *. 1e3;
    }
  in
  s.s_edits <- s.s_edits + wv.wv_edits;
  s.s_dirty <- s.s_dirty + wv.wv_dirty;
  s.s_refired <- s.s_refired + wv.wv_refired;
  s.s_cutoff <- s.s_cutoff + wv.wv_cutoff;
  s.s_fallbacks <- s.s_fallbacks + wv.wv_fallbacks;
  s.s_last_fallback <- wv.wv_fallbacks > 0;
  let obs = s.s_obs in
  if Obs.ctx_enabled obs then begin
    let reg = obs.Obs.x_metrics in
    let bump name n = Obs.Metrics.add (Obs.Metrics.counter reg name) n in
    bump "incr.edits" wv.wv_edits;
    bump "incr.dirty_rules" wv.wv_dirty;
    bump "incr.refired" wv.wv_refired;
    bump "incr.cutoff_hits" wv.wv_cutoff;
    bump "incr.fallbacks" wv.wv_fallbacks;
    bump "incr.waves" wv.wv_waves;
    bump "incr.conflicts" wv.wv_conflicts;
    Obs.Metrics.observe
      (Obs.Metrics.histogram reg "incr.prop_ms")
      wv.wv_prop_ms
  end;
  wv

let changed s node attr =
  s.s_last_fallback
  ||
  let idx = Grammar.attr_pos s.s_g ~sym:node.Tree.sym ~attr in
  let slot = Store.slot_of s.s_store node ~attr_idx:idx in
  s.s_changed.(slot) > s.s_epoch0
