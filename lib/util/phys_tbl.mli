(** Hash tables keyed by physical identity.

    Works for any key type, unlike [Hashtbl.Make] over a concrete module —
    which is what the polymorphic containers ({!Symtab}) need to memoize
    per-node facts during interning. Lookup compares keys with [==] only,
    so a hit costs no structural traversal; the price is that structurally
    equal but physically distinct keys occupy distinct entries, which is
    exactly right for caches attached to canonical (hash-consed) values.

    Keys are held strongly; callers that key on arbitrarily many values
    should {!reset} when {!length} crosses a cap. Keys must not contain
    functional values (the slot hash is the polymorphic [Hashtbl.hash]). *)

type ('a, 'b) t

val create : int -> ('a, 'b) t

val find_opt : ('a, 'b) t -> 'a -> 'b option

val mem : ('a, 'b) t -> 'a -> bool

(** Bind [k] to [v], replacing any existing binding for the same physical
    key. *)
val replace : ('a, 'b) t -> 'a -> 'b -> unit

val length : ('a, 'b) t -> int

val reset : ('a, 'b) t -> unit
