(* Multi-tenant compile service: multiplexing is isolation. Interleaved
   edits from K tenants through the service must land, per tenant, on
   exactly the attribute values K isolated edit sessions compute — under
   both scheduling policies and with the shared intern arena on or off.
   Admission backpressure, idle eviction/re-admission and the scheduling
   policies themselves are covered by deterministic cases. *)

open Pag_eval
open Pag_grammars
open Pag_parallel

let qc ?(count = 20) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expr_of seed =
  Expr_ag.random_program (Random.State.make [| seed |]) ~depth:5

(* ---------------- the multiplexing-is-isolation oracle ---------------- *)

(* K tenants, each with a base program and an edit stream. The service
   interleaves them round by round (tenant i's j-th edit lands in round
   j); the isolated oracle replays each stream through its own
   {!Session.edit_session}. Trees are regenerated from seeds for every
   consumer — a session renumbers the nodes it grafts, so service and
   oracle must never share tree objects. *)
let arb_tenants =
  QCheck.make
    ~print:(fun ts ->
      String.concat " | "
        (List.map
           (fun (s0, es) ->
             Printf.sprintf "base=%d edits=[%s]" s0
               (String.concat ";" (List.map string_of_int es)))
           ts))
    QCheck.Gen.(
      list_size (2 -- 4)
        (pair (int_bound 100_000) (list_size (0 -- 4) (int_bound 100_000))))

let run_service_interleaved ~policy ~hashcons tenants =
  let g = Expr_ag.grammar in
  let sv = Service.create (Service.config ~policy ~hashcons 2) g in
  let names = List.mapi (fun i _ -> Printf.sprintf "t%d" i) tenants in
  List.iter2
    (fun name (s0, _) -> Service.open_tenant sv name (expr_of s0))
    names tenants;
  let rounds =
    List.fold_left (fun m (_, es) -> max m (List.length es)) 0 tenants
  in
  for r = 0 to rounds - 1 do
    List.iter2
      (fun name (_, es) ->
        match List.nth_opt es r with
        | Some seed ->
            check_bool "unbounded queue admits" true
              (Service.submit sv name (expr_of seed) = Service.Admitted)
        | None -> ())
      names tenants;
    Service.run_round sv
  done;
  Service.drain sv;
  (sv, names)

let prop_multiplexing_is_isolation ~policy ~hashcons label =
  qc ~count:15
    (Printf.sprintf "service = K isolated sessions (%s)" label)
    arb_tenants
    (fun tenants ->
      let g = Expr_ag.grammar in
      let sv, names = run_service_interleaved ~policy ~hashcons tenants in
      List.for_all2
        (fun name (s0, es) ->
          let spec =
            Session.spec ~granularity:0.05 ~librarian:false ~hashcons 2
          in
          let iso = Session.open_session spec g (expr_of s0) in
          List.iter (fun seed -> ignore (Session.edit iso (expr_of seed))) es;
          Test_incr.values_agree g
            (Service.tenant_store sv name)
            (Service.tenant_tree sv name)
            (Session.store iso) (Session.tree iso))
        names tenants)

(* ---------------- admission backpressure ---------------- *)

let test_backpressure () =
  let g = Expr_ag.grammar in
  let sv = Service.create (Service.config ~queue_cap:2 1) g in
  Service.open_tenant sv "a" (expr_of 1);
  check_bool "first fits" true (Service.submit sv "a" (expr_of 2) = Service.Admitted);
  check_bool "second fits" true (Service.submit sv "a" (expr_of 3) = Service.Admitted);
  check_bool "third bounces" true
    (Service.submit sv "a" (expr_of 4) = Service.Rejected_queue_full);
  check_bool "fourth bounces" true
    (Service.submit sv "a" (expr_of 5) = Service.Rejected_queue_full);
  let st = Service.stats sv in
  check_int "rejections surface in the report" 2 st.Service.st_rejected;
  (match st.Service.st_per_tenant with
  | [ ts ] ->
      check_int "charged to the tenant" 2 ts.Service.ts_rejected;
      check_int "queue at its bound" 2 ts.Service.ts_queue_depth
  | _ -> Alcotest.fail "one tenant expected");
  (* draining empties the queue: admission resumes *)
  Service.drain sv;
  check_bool "admission resumes after drain" true
    (Service.submit sv "a" (expr_of 6) = Service.Admitted);
  Service.drain sv;
  check_int "rejected edits were never applied" 3
    (Service.stats sv).Service.st_edits

(* ---------------- lifecycle: idle eviction and re-admission ---------------- *)

let pascal_src k =
  Printf.sprintf
    "program p;\nvar i, s : integer;\nbegin\n  s := 0;\n  i := 1;\n\
    \  repeat\n    i := i * %d;\n    s := s + i\n  until i > 100;\n\
    \  write(s)\nend.\n"
    k

let pascal_tree g k =
  Pascal.Pascal_ag.tree_of_program g (Pascal.Parser.parse_program (pascal_src k))

let masked_code st =
  Pascal.Driver.mask_labels
    (Pascal.Pascal_ag.code_of_attrs (Store.root_attrs st))

let test_idle_eviction_and_readmission () =
  let g = Pascal.Pascal_ag.grammar in
  let sv = Service.create (Service.config ~idle_rounds:1 2) g in
  Service.open_tenant sv "a" (pascal_tree g 2);
  Service.open_tenant sv "b" (pascal_tree g 2);
  ignore (Service.submit sv "a" (pascal_tree g 3));
  Service.run_round sv;
  (* two rounds of b-only traffic leave a idle past the timeout *)
  ignore (Service.submit sv "b" (pascal_tree g 5));
  Service.run_round sv;
  ignore (Service.submit sv "b" (pascal_tree g 7));
  Service.run_round sv;
  check_bool "idle tenant evicted" false (Service.tenant_resident sv "a");
  check_bool "active tenant resident" true (Service.tenant_resident sv "b");
  (* re-admission: the next edit revives the resident tree and applies on
     top of it; the result must equal a from-scratch compile *)
  ignore (Service.submit sv "a" (pascal_tree g 11));
  Service.run_round sv;
  check_bool "revived on edit" true (Service.tenant_resident sv "a");
  let scratch = Pascal.Driver.compile_source (pascal_src 11) in
  Alcotest.(check string)
    "revived resident code = from-scratch"
    (Pascal.Driver.mask_labels scratch.Pascal.Driver.c_asm)
    (masked_code (Service.tenant_store sv "a"));
  check_bool "eviction counted" true
    ((Service.stats sv).Service.st_evictions >= 1)

let test_mem_cap_evicts_lru () =
  let g = Pascal.Pascal_ag.grammar in
  (* a cap below one session's footprint: opening b must push a out, and
     b itself stays (the tenant being revived is never its own victim) *)
  let sv = Service.create (Service.config ~mem_cap:1 2) g in
  Service.open_tenant sv "a" (pascal_tree g 2);
  Service.open_tenant sv "b" (pascal_tree g 3);
  check_bool "lru evicted under the cap" false (Service.tenant_resident sv "a");
  check_bool "newcomer resident" true (Service.tenant_resident sv "b");
  (* the evicted tenant still answers queries — by reviving *)
  let scratch = Pascal.Driver.compile_source (pascal_src 2) in
  Alcotest.(check string)
    "evicted tenant revives correctly"
    (Pascal.Driver.mask_labels scratch.Pascal.Driver.c_asm)
    (masked_code (Service.tenant_store sv "a"))

(* A memory cap below the round's working set on the domains transport:
   tenants scheduled this round are exempt from eviction while their
   sessions are live on worker domains (the pool overshoots the cap
   transiently), and the cap is re-enforced when the round ends. *)
let test_mem_cap_domains_round () =
  let g = Expr_ag.grammar in
  let sv = Service.create (Service.config ~transport:`Domains ~mem_cap:1 2) g in
  let names = [ "a"; "b"; "c" ] in
  List.iteri (fun i n -> Service.open_tenant sv n (expr_of i)) names;
  List.iteri (fun i n -> ignore (Service.submit sv n (expr_of (100 + i)))) names;
  Service.run_round sv;
  (* a 1-slot cap is below any single session's footprint, so once the
     round's exemptions clear every tenant is evicted *)
  List.iter
    (fun n ->
      check_bool ("post-round cap enforced on " ^ n) false
        (Service.tenant_resident sv n))
    names;
  check_bool "eviction counted" true
    ((Service.stats sv).Service.st_evictions >= 3);
  (* evicted tenants still answer queries — by reviving — and the finals
     match isolated sessions *)
  List.iteri
    (fun i n ->
      let spec = Session.spec ~granularity:0.05 ~librarian:false 2 in
      let iso = Session.open_session spec g (expr_of i) in
      ignore (Session.edit iso (expr_of (100 + i)));
      check_bool ("finals agree for " ^ n) true
        (Test_incr.values_agree g
           (Service.tenant_store sv n) (Service.tenant_tree sv n)
           (Session.store iso) (Session.tree iso)))
    names

(* ---------------- scheduling: shortest-queue beats round-robin ---------------- *)

(* One heavy tenant (8 queued edits) and three light ones (1 each) over
   two workers. Round-robin deals the heavy batch and a light batch onto
   worker 0 (9 edits); shortest-queue isolates the heavy batch (8 vs 3).
   Identical per-tenant edit streams make the virtual makespans directly
   comparable. *)
let skew_makespan policy =
  let g = Expr_ag.grammar in
  let sv = Service.create (Service.config ~policy 2) g in
  let heavy = "heavy" and lights = [ "l1"; "l2"; "l3" ] in
  Service.open_tenant sv heavy (expr_of 1);
  List.iter (fun n -> Service.open_tenant sv n (expr_of 1)) lights;
  for i = 1 to 8 do
    ignore (Service.submit sv heavy (expr_of (if i mod 2 = 0 then 1 else 2)))
  done;
  List.iter (fun n -> ignore (Service.submit sv n (expr_of 2))) lights;
  Service.run_round sv;
  (Service.stats sv).Service.st_makespan

let test_shortest_queue_beats_round_robin () =
  let rr = skew_makespan Service.Round_robin in
  let sq = skew_makespan Service.Shortest_queue in
  check_bool
    (Printf.sprintf "sq %.4fs < rr %.4fs on a skewed mix" sq rr)
    true (sq < rr)

(* ---------------- batched waves ---------------- *)

(* Batched application (c_batch > 1) must not change what any tenant
   computes — the isolation oracle holds against per-edit sessions — and
   the wave/conflict/fallback counters surface as labeled metrics. *)
let run_batched ~transport ~batch tenants =
  let g = Expr_ag.grammar in
  let obs =
    Pag_obs.Obs.make_ctx ~pid:0 ~clock:(fun () -> 0.0)
  in
  let sv = Service.create (Service.config ~transport ~batch ~obs 2) g in
  let names = List.mapi (fun i _ -> Printf.sprintf "t%d" i) tenants in
  List.iter2
    (fun name (s0, _) -> Service.open_tenant sv name (expr_of s0))
    names tenants;
  List.iter2
    (fun name (_, es) ->
      List.iter
        (fun seed -> ignore (Service.submit sv name (expr_of seed)))
        es)
    names tenants;
  Service.drain sv;
  (sv, names, obs)

let prop_batched_is_isolation ~transport label =
  qc ~count:10
    (Printf.sprintf "batched service = K isolated sessions (%s)" label)
    arb_tenants
    (fun tenants ->
      let g = Expr_ag.grammar in
      let sv, names, _ = run_batched ~transport ~batch:3 tenants in
      List.for_all2
        (fun name (s0, es) ->
          let spec =
            Session.spec ~granularity:0.05 ~librarian:false 2
          in
          let iso = Session.open_session spec g (expr_of s0) in
          List.iter (fun seed -> ignore (Session.edit iso (expr_of seed))) es;
          Test_incr.values_agree g
            (Service.tenant_store sv name)
            (Service.tenant_tree sv name)
            (Session.store iso) (Session.tree iso))
        names tenants)

let test_batched_metrics_surface () =
  let sv, _, obs =
    run_batched ~transport:`Sim ~batch:4
      [ (1, [ 2; 3; 4; 5 ]); (7, [ 8; 9 ]) ]
  in
  let st = Service.stats sv in
  check_int "all edits applied" 6 st.Service.st_edits;
  let rows = Pag_obs.Obs.Metrics.rows obs.Pag_obs.Obs.x_metrics in
  let has prefix =
    List.exists (fun (n, _) -> String.length n >= String.length prefix
                               && String.sub n 0 (String.length prefix) = prefix)
      rows
  in
  check_bool "service.waves{tenant=...} present" true (has "service.waves{");
  check_bool "service.conflicts{tenant=...} present" true
    (has "service.conflicts{");
  check_bool "service.fallbacks{tenant=...} present" true
    (has "service.fallbacks{")

let suite =
  [
    ( "service",
      [
        prop_multiplexing_is_isolation ~policy:Service.Round_robin
          ~hashcons:false "round-robin, hashcons off";
        prop_multiplexing_is_isolation ~policy:Service.Round_robin
          ~hashcons:true "round-robin, hashcons on";
        prop_multiplexing_is_isolation ~policy:Service.Shortest_queue
          ~hashcons:false "shortest-queue, hashcons off";
        prop_multiplexing_is_isolation ~policy:Service.Shortest_queue
          ~hashcons:true "shortest-queue, hashcons on";
        Alcotest.test_case "admission backpressure" `Quick test_backpressure;
        Alcotest.test_case "idle eviction + re-admission" `Quick
          test_idle_eviction_and_readmission;
        Alcotest.test_case "memory cap evicts LRU" `Quick
          test_mem_cap_evicts_lru;
        Alcotest.test_case "memory cap under a domains round" `Quick
          test_mem_cap_domains_round;
        Alcotest.test_case "shortest-queue beats round-robin" `Quick
          test_shortest_queue_beats_round_robin;
        prop_batched_is_isolation ~transport:`Sim "sim, batch 3";
        prop_batched_is_isolation ~transport:`Domains "domains, batch 3";
        Alcotest.test_case "batched metrics surface" `Quick
          test_batched_metrics_surface;
      ] );
  ]
