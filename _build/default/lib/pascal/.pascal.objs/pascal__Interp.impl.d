lib/pascal/interp.ml: Array Ast Buffer Char List Option Printf
