lib/lrgen/engine.mli: Cfg Lalr
