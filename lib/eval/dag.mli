(** DAG-native evaluation: one rule-instance set per unique subtree.

    {!Pag_core.Tree.dag} gives the canonical DAG form of a numbered tree —
    shape classes, per-class child edges, and the occurrence partition.
    This module makes that DAG the {e evaluation substrate} instead of a
    memo cache: the engine's flat instance table is built with rules only
    for {e leader} occurrences (the first occurrence of each multi-occurrence
    class) plus the unshared spine; every other occurrence is {e parked} —
    its slots exist but no rules are resolved for its subtree.

    At runtime each parked occurrence resolves once its inherited context
    arrives (its root's inherited slots — the {e gate}):

    - if the inherited fingerprint (canonical values, compared by identity)
      matches a completed, uid-clean evaluation of the same class, the
      leader's slot range is {e projected} onto the occurrence
      ({!Pag_eval.Store.project_range}) — synthesized attributes computed
      once per (class × fingerprint) and fanned out;
    - otherwise (divergent fingerprint, or the class evaluation consumed
      unique identifiers — labels must stay distinct per occurrence) the
      occurrence {e materializes}: its rule instances are resolved late
      ({!Engine.materialize_subtree}) and fire normally. A materialized
      occurrence registers as the leader for its own (class × fingerprint),
      so further occurrences with that context project from it.

    The runtime is scheduler-agnostic: a scheduler reports every slot
    definition through {!note_define} (and uid consumption through
    {!note_taint}); the runtime answers through two hooks — newly projected
    slots (release their consumers) and newly materialized rule ranges
    (seed their readiness). {!run_topo} is the sequential driver used by
    the dynamic schedule and incremental sessions; the simulated steal
    schedule drives the same hooks from its machine fibers. *)

open Pag_core

(** {1 Plan (build time)} *)

type plan

(** [plan g store dag] analyzes the occurrence structure: follower
    regions (parked occurrences), candidate leader ranges, gates, and the
    slot/node maps the runtime needs. Follower regions {e nest}: the plan
    keeps walking inside a parked occurrence, so the repeated subtrees
    inside it are parked regions of their own — if an outer region cannot
    share (divergent fingerprint, taint), it materializes only its spine
    and the nested occurrences still project from their class leaders;
    when an outer region projects, its nested regions are subsumed by the
    copy. [min_size] (default 2) is the smallest subtree (in nodes) worth
    parking — below it the gate bookkeeping costs more than the rules it
    saves. The store must cover the dag's tree contiguously
    ({!Store.create} on the numbered tree). *)
val plan : ?min_size:int -> Grammar.t -> Store.t -> Tree.dag -> plan

(** Predicate for {!Engine.create}'s [rules_for]: false exactly for nodes
    inside parked occurrences. *)
val rules_for : plan -> Tree.t -> bool

(** Number of parked follower regions. *)
val regions : plan -> int

(** Rule instances the parking avoided at build time (the collapse win;
    the engine's [rule_count] is the full table minus this, before any
    materialization). *)
val parked_rules : plan -> int

(** Slots inside parked regions (to be filled by projection or late
    evaluation). *)
val parked_slots : plan -> int

(** {1 Runtime} *)

type t

val make : plan -> Engine.t -> Engine.graph -> t

(** Install the scheduler hooks. [on_defined slot] fires once per slot the
    runtime defines by projection (the scheduler releases that slot's
    consumers); [on_new_rids lo hi] fires once per materialized rule range
    (the scheduler seeds their readiness — some may be immediately ready).
    Hooks are invoked from within {!note_define}/{!prime} and must not fire
    rules reentrantly. *)
val set_hooks :
  t -> on_defined:(int -> unit) -> on_new_rids:(int -> int -> unit) -> unit

(** Resolve gates that are complete before any firing (roots with no
    inherited attributes). Call once after {!set_hooks}, before
    scheduling. *)
val prime : t -> unit

(** Report one slot definition (a fire's target). Processes gate
    completions, leader registration/completion, projections and
    materializations transitively; cascaded definitions come back through
    the hooks. *)
val note_define : t -> int -> unit

(** Report that the rule evaluation at node [id] consumed unique
    identifiers ({!Pag_core.Uid.mark} moved across the firing): every
    class evaluation whose range contains the node is tainted and will
    never be projected. *)
val note_taint : t -> int -> unit

(** Demand materialization for stalled schedules. A grammar can feed a
    subtree's own synthesized output back into its inherited context
    (repmin's [gmin]); a parked occurrence's gate then never completes and
    the evaluation stalls. When the scheduler runs dry with the store
    incomplete, [force_stalled rt] materializes the lowest-index
    unresolved region (deterministic) and returns [true]; [false] when
    every region is already resolved (a genuine cycle). Occurrences on
    such a feedback path evaluate per occurrence — correct, just not
    shared. *)
val force_stalled : t -> bool

(** {1 Incremental editing support}

    After the initial evaluation, resident sessions ({!Incr}) keep the
    runtime: an edit that touches a projected occurrence splits it off its
    class by materializing it (sticky — it never re-projects). *)

(** [revive_node rt gr id] — if node [id] lies inside a projected (or
    still-parked) region, materialize that region, register the new range
    in the graph, and return it. [None] when the node is not in a region
    or the region is already live. Use before grafting/killing/re-resolving
    at a node. *)
val revive_node : t -> Engine.graph -> int -> (int * int) option

(** [revive_gate rt gr slot] — like {!revive_node} for a changed slot that
    is the inherited gate of a non-live region: the editing occurrence's
    fingerprint is diverging, split it off its class. [None] when the slot
    gates no region or the region is live. *)
val revive_gate : t -> Engine.graph -> int -> (int * int) option

(** {1 Sequential driver}

    [run_topo rt eng gr] — the data-driven topological schedule of
    {!Engine.run_topo}, DAG-aware: fires through the engine, reports
    definitions and uid consumption to the runtime, extends its ready set
    with materialized ranges, and releases consumers of projected slots.
    Returns the number of firings. Raises {!Engine.Cycle} when instances
    remain unevaluated. *)
val run_topo : t -> Engine.t -> Engine.graph -> int

(** {1 Statistics} *)

type stats = {
  dg_regions : int;  (** parked follower regions in the plan *)
  dg_projected : int;  (** regions resolved by projection *)
  dg_materialized : int;  (** regions resolved by late evaluation *)
  dg_projected_slots : int;  (** slots defined by projection *)
  dg_materialized_rids : int;  (** rule instances resolved late *)
  dg_tainted_classes : int;  (** class evaluations that consumed uids *)
}

val stats : t -> stats
