bin/agrun.ml: Agspec Appendix Arg Cmd Cmdliner Compile Format Lazy List Lrgen Option Pag_analysis Pag_core Pag_parallel Printf Spec_parser Term
