(* Abstract syntax of the Pascal subset.

   Restrictions, matching the paper's compiler (section 3): no with/goto, no
   floats, sets, enumerations, variant records, file I/O, or procedure
   parameters. Arrays are one-dimensional with literal integer bounds;
   composite values (arrays, records) may only be passed by reference and
   may not be assigned as wholes. *)

type ty =
  | TInt
  | TBool
  | TChar
  | TArray of int * int * ty (* lo, hi, element *)
  | TRecord of (string * ty) list

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type expr =
  | EInt of int
  | EBool of bool
  | EChar of char
  | ELval of lvalue
  | EBin of binop * expr * expr
  | EUn of unop * expr
  | ECall of string * expr list (* function call *)

and lvalue =
  | LId of string
  | LIndex of lvalue * expr
  | LField of lvalue * string

type stmt =
  | SAssign of lvalue * expr
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SRepeat of stmt list * expr
  | SFor of string * expr * bool (* true = to, false = downto *) * expr * stmt list
  | SCase of expr * (int list * stmt list) list * stmt list option
  | SCall of string * expr list
  | SWrite of expr list * bool (* true = writeln *)
  | SRead of lvalue

type param = { p_name : string; p_ty : ty; p_ref : bool }

type routine = {
  r_name : string;
  r_params : param list;
  r_ret : ty option; (* Some _ for functions *)
  r_block : block;
}

and decl = DConst of string * int | DVar of string * ty | DRoutine of routine

and block = { b_decls : decl list; b_body : stmt list }

type program = { prog_name : string; prog_block : block }

(* Word size of a type in the target's 4-byte longwords. *)
let rec ty_words = function
  | TInt | TBool | TChar -> 1
  | TArray (lo, hi, elem) -> (hi - lo + 1) * ty_words elem
  | TRecord fields ->
      List.fold_left (fun a (_, t) -> a + ty_words t) 0 fields

let rec ty_equal a b =
  match (a, b) with
  | TInt, TInt | TBool, TBool | TChar, TChar -> true
  | TArray (l1, h1, e1), TArray (l2, h2, e2) ->
      l1 = l2 && h1 = h2 && ty_equal e1 e2
  | TRecord f1, TRecord f2 ->
      List.length f1 = List.length f2
      && List.for_all2
           (fun (n1, t1) (n2, t2) -> n1 = n2 && ty_equal t1 t2)
           f1 f2
  | (TInt | TBool | TChar | TArray _ | TRecord _), _ -> false

let rec ty_to_string = function
  | TInt -> "integer"
  | TBool -> "boolean"
  | TChar -> "char"
  | TArray (lo, hi, e) -> Printf.sprintf "array [%d..%d] of %s" lo hi (ty_to_string e)
  | TRecord fields ->
      "record "
      ^ String.concat "; "
          (List.map (fun (n, t) -> n ^ " : " ^ ty_to_string t) fields)
      ^ " end"

let is_scalar = function TInt | TBool | TChar -> true | TArray _ | TRecord _ -> false
