test/test_agspec.ml: Agspec Alcotest Appendix Compile Fun Lazy List Lrgen Pag_core Pag_eval Pag_parallel Primitives Printf QCheck QCheck_alcotest Random Spec_ast Spec_parser Value
