open Pag_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_with_base () =
  let (a, b), used =
    Uid.with_base 100 (fun () ->
        let a = Uid.fresh () in
        let b = Uid.fresh () in
        (a, b))
  in
  check_int "first" 100 a;
  check_int "second" 101 b;
  check_int "used" 2 used

let test_fresh_outside_fails () =
  match Uid.fresh () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "fresh outside a bracket must fail"

let test_with_counter_persists () =
  (* A worker's cursor advances across separate bracketed steps — the
     per-evaluator base value semantics of the paper. *)
  let cursor = ref 5000 in
  let a = Uid.with_counter cursor (fun () -> Uid.fresh ()) in
  let b = Uid.with_counter cursor (fun () -> Uid.fresh ()) in
  check_int "a" 5000 a;
  check_int "b continues" 5001 b;
  check_int "cursor" 5002 !cursor

let test_nesting_restores () =
  let outer = ref 10 in
  let inner = ref 900 in
  let x, y, z =
    Uid.with_counter outer (fun () ->
        let x = Uid.fresh () in
        let y = Uid.with_counter inner (fun () -> Uid.fresh ()) in
        let z = Uid.fresh () in
        (x, y, z))
  in
  check_int "outer first" 10 x;
  check_int "inner" 900 y;
  check_int "outer resumes" 11 z;
  check_int "inner cursor" 901 !inner

let test_disjoint_evaluators () =
  (* Two evaluators with stride-spaced bases never collide. *)
  let c1 = ref Uid.stride and c2 = ref (2 * Uid.stride) in
  let ids1 =
    Uid.with_counter c1 (fun () -> List.init 100 (fun _ -> Uid.fresh ()))
  in
  let ids2 =
    Uid.with_counter c2 (fun () -> List.init 100 (fun _ -> Uid.fresh ()))
  in
  check_bool "disjoint" true
    (List.for_all (fun i -> not (List.mem i ids2)) ids1)

let test_exception_restores () =
  let cursor = ref 0 in
  (try
     Uid.with_counter cursor (fun () ->
         ignore (Uid.fresh ());
         failwith "boom")
   with Failure _ -> ());
  check_int "cursor advanced before the exception" 1 !cursor;
  match Uid.fresh () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bracket must deactivate after exception"

let suite =
  [
    ( "uid",
      [
        Alcotest.test_case "with_base" `Quick test_with_base;
        Alcotest.test_case "outside fails" `Quick test_fresh_outside_fails;
        Alcotest.test_case "cursor persists" `Quick test_with_counter_persists;
        Alcotest.test_case "nesting" `Quick test_nesting_restores;
        Alcotest.test_case "disjoint" `Quick test_disjoint_evaluators;
        Alcotest.test_case "exception" `Quick test_exception_restores;
      ] );
  ]
