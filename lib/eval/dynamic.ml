open Pag_obs

type stats = { instances : int; edges : int; evals : int }

exception Cycle = Engine.Cycle

(* The dynamic evaluator is the engine's data-driven topological schedule:
   build the instance table and the slot-level consumer graph, then fire
   every ready rule until the store is complete. All the flat-array
   machinery (CSR edges, argument codes, the ready ring) lives in
   {!Engine}; this module only adds telemetry and the stats record. *)

let eval_inner ?(obs = Obs.null_ctx) ?root_inh ?memo ?(dag = false)
    ?(dag_out = fun _ -> ()) ?(prov = Prov.disabled) ?prov_clock
    ?(engine_out = fun _ -> ()) g t =
  let graph_t0 = if Obs.ctx_enabled obs then obs.Obs.x_clock () else 0.0 in
  let store = Store.create ?root_inh g t in
  let dplan =
    if dag then Some (Dag.plan g store (Pag_core.Tree.dag t)) else None
  in
  let rules_for = Option.map Dag.rules_for dplan in
  let eng = Engine.create ?memo ?rules_for g store in
  (if Prov.enabled prov then
     let clock =
       match prov_clock with
       | Some c -> c
       | None -> if Obs.ctx_enabled obs then obs.Obs.x_clock else Sys.time
     in
     Engine.set_prov ~pid:obs.Obs.x_pid ~clock eng prov);
  engine_out eng;
  let gr = Engine.graph eng in
  if Obs.ctx_enabled obs then
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:graph_t0
      ~t1:(obs.Obs.x_clock ()) "graph-build";
  let eval_t0 = if Obs.ctx_enabled obs then obs.Obs.x_clock () else 0.0 in
  let evals =
    match dplan with
    | None -> Engine.run_topo eng gr
    | Some p ->
        let rt = Dag.make p eng gr in
        let n = Dag.run_topo rt eng gr in
        dag_out rt;
        if Obs.ctx_enabled obs then begin
          let st = Dag.stats rt in
          let reg = obs.Obs.x_metrics in
          Obs.Metrics.add (Obs.Metrics.counter reg "dag.regions") st.Dag.dg_regions;
          Obs.Metrics.add
            (Obs.Metrics.counter reg "dag.projected_slots")
            st.Dag.dg_projected_slots;
          Obs.Metrics.add
            (Obs.Metrics.counter reg "dag.materialized_rids")
            st.Dag.dg_materialized_rids
        end;
        n
  in
  if Obs.ctx_enabled obs then begin
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:eval_t0
      ~t1:(obs.Obs.x_clock ()) "toposort-eval";
    let reg = obs.Obs.x_metrics in
    Obs.Metrics.add (Obs.Metrics.counter reg "eval.dynamic_rules") evals;
    (match memo with
    | Some m ->
        let hits, misses = Memo.rules_stats m in
        Obs.Metrics.add (Obs.Metrics.counter reg "eval.memo_hits") hits;
        Obs.Metrics.add (Obs.Metrics.counter reg "eval.memo_misses") misses
    | None -> ());
    Obs.Metrics.add (Obs.Metrics.counter reg "graph.nodes")
      (Store.slot_count store);
    Obs.Metrics.add (Obs.Metrics.counter reg "graph.edges")
      (Engine.slot_args eng);
    Obs.Metrics.add_gauge reg "store.reads" (float_of_int (Store.reads store));
    Obs.Metrics.add_gauge reg "store.writes" (float_of_int (Store.sets store))
  end;
  ( store,
    {
      instances = Store.slot_count store;
      edges = Engine.slot_args eng;
      evals;
    } )

let eval ?obs ?root_inh ?hashcons ?dag ?dag_out ?prov ?prov_clock ?engine_out
    g t =
  let memo =
    match hashcons with
    | Some true -> Some (Memo.create_rules ())
    | Some false | None -> None
  in
  let r, _ =
    Pag_core.Uid.with_base 0 (fun () ->
        eval_inner ?obs ?root_inh ?memo ?dag ?dag_out ?prov ?prov_clock
          ?engine_out g t)
  in
  r
