type stats = {
  st_hits : int;
  st_misses : int;
  st_live : int;
  st_buckets : int;
}

type 'a t = {
  hname : string;
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  mutable buckets : 'a Weak.t array;
  mutable limit : int;  (* resize when an insert scans past this many slots *)
  mutable hits : int;
  mutable misses : int;
}

(* Registry of every arena, type-erased to its introspection closures. *)
let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []

let count_live t =
  Array.fold_left
    (fun acc w ->
      let n = ref 0 in
      for i = 0 to Weak.length w - 1 do
        if Weak.check w i then incr n
      done;
      acc + !n)
    0 t.buckets

let stats t =
  {
    st_hits = t.hits;
    st_misses = t.misses;
    st_live = count_live t;
    st_buckets = Array.length t.buckets;
  }

let clear t =
  Array.iteri (fun i _ -> t.buckets.(i) <- Weak.create 0) t.buckets

let create ?(initial_buckets = 256) ~hash ~equal hname =
  let n = max 8 initial_buckets in
  let t =
    {
      hname;
      hash;
      equal;
      buckets = Array.init n (fun _ -> Weak.create 0);
      limit = 3;
      hits = 0;
      misses = 0;
    }
  in
  registry := (hname, (fun () -> stats t), fun () -> clear t) :: !registry;
  t

let name t = t.hname

let all_stats () = List.rev_map (fun (n, st, _) -> (n, st ())) !registry

let clear_all () = List.iter (fun (_, _, c) -> c ()) !registry

let bucket_of t h = (h land max_int) mod Array.length t.buckets

let rec scan_bucket t w v i n =
  if i >= n then None
  else
    match Weak.get w i with
    | Some x when t.equal x v -> Some x
    | _ -> scan_bucket t w v (i + 1) n

let find_opt t v =
  let w = t.buckets.(bucket_of t (t.hash v)) in
  scan_bucket t w v 0 (Weak.length w)

(* Append [v] to bucket [w], reusing a collected slot when one exists;
   returns the (possibly reallocated) bucket. *)
let bucket_add w v =
  let n = Weak.length w in
  let rec free i = if i >= n then -1 else if Weak.check w i then free (i + 1) else i in
  match free 0 with
  | i when i >= 0 ->
      Weak.set w i (Some v);
      w
  | _ ->
      let w' = Weak.create ((2 * n) + 1) in
      Weak.blit w 0 w' 0 n;
      Weak.set w' n (Some v);
      w'

let resize t =
  let old = t.buckets in
  let nb = (2 * Array.length old) + 1 in
  t.buckets <- Array.init nb (fun _ -> Weak.create 0);
  Array.iter
    (fun w ->
      for i = 0 to Weak.length w - 1 do
        match Weak.get w i with
        | Some v ->
            let b = bucket_of t (t.hash v) in
            t.buckets.(b) <- bucket_add t.buckets.(b) v
        | None -> ()
      done)
    old;
  (* Grow the scan limit geometrically: a family of k equal-hash values
     (an imperfect client hash is allowed to collide) then costs O(log k)
     resizes and O(k) buckets. Growing by +1 per resize lets one crowded
     bucket force a resize on every insert, doubling the table each time —
     an exponential cascade in both time and memory. *)
  t.limit <- 2 * t.limit

let intern t v =
  let h = t.hash v in
  let b = bucket_of t h in
  let w = t.buckets.(b) in
  match scan_bucket t w v 0 (Weak.length w) with
  | Some x ->
      t.hits <- t.hits + 1;
      x
  | None ->
      t.misses <- t.misses + 1;
      let w' = bucket_add w v in
      t.buckets.(b) <- w';
      if Weak.length w' > t.limit then resize t;
      v
