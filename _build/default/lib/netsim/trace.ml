type kind = Active | Idle

type segment = { sg_pid : int; sg_t0 : float; sg_t1 : float; sg_kind : kind }

type arrow = {
  ar_src : int;
  ar_dst : int;
  ar_send : float;
  ar_recv : float;
  ar_label : string;
}

type mark = { mk_pid : int; mk_time : float; mk_label : string }

type t = {
  mutable segs : segment list;
  mutable arrs : arrow list;
  mutable mks : mark list;
}

let create () = { segs = []; arrs = []; mks = [] }

let add_segment t ~pid ~t0 ~t1 kind =
  if t1 > t0 then
    t.segs <- { sg_pid = pid; sg_t0 = t0; sg_t1 = t1; sg_kind = kind } :: t.segs

let add_arrow t ~src ~dst ~send ~recv ~label =
  t.arrs <-
    { ar_src = src; ar_dst = dst; ar_send = send; ar_recv = recv; ar_label = label }
    :: t.arrs

let add_mark t ~pid ~time ~label =
  t.mks <- { mk_pid = pid; mk_time = time; mk_label = label } :: t.mks

let segments t = List.rev t.segs

let arrows t = List.rev t.arrs

let marks t = List.rev t.mks

let horizon t =
  let m = List.fold_left (fun acc s -> max acc s.sg_t1) 0.0 t.segs in
  List.fold_left (fun acc a -> max acc a.ar_recv) m t.arrs

let active_time t ~pid =
  List.fold_left
    (fun acc s ->
      if s.sg_pid = pid && s.sg_kind = Active then acc +. (s.sg_t1 -. s.sg_t0)
      else acc)
    0.0 t.segs

let utilization t ~pid =
  let h = horizon t in
  if h <= 0.0 then 0.0 else active_time t ~pid /. h
