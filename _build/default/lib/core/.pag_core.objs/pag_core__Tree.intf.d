lib/core/tree.mli: Format Grammar Value
