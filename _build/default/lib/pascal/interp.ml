open Ast

type error =
  | Unbound of string
  | Type_error of string
  | Out_of_bounds of string
  | Div_by_zero
  | No_input
  | Fuel_exhausted

exception Error of error

let error_to_string = function
  | Unbound s -> Printf.sprintf "unbound identifier %S" s
  | Type_error s -> Printf.sprintf "type error: %s" s
  | Out_of_bounds s -> Printf.sprintf "out of bounds: %s" s
  | Div_by_zero -> "division by zero"
  | No_input -> "read past end of input"
  | Fuel_exhausted -> "fuel exhausted (likely an infinite loop)"

let err e = raise (Error e)

(* Runtime values and storage. Scalars live in refs so that reference
   parameters alias them; composites are mutable structures. *)
type rval = VInt of int | VBool of bool | VChar of char

type storage =
  | Scalar of rval ref
  | Arr of int * storage array (* low bound, cells *)
  | Rec of (string * storage) list

type entry =
  | EVar of storage
  | EConst of int
  | ERoutine of routine * env ref (* closure over the defining scope *)

and env = (string * entry) list

type state = {
  out : Buffer.t;
  mutable input : int list;
  mutable fuel : int;
}

let rec alloc = function
  | TInt -> Scalar (ref (VInt 0))
  | TBool -> Scalar (ref (VBool false))
  | TChar -> Scalar (ref (VChar (Char.chr 0)))
  | TArray (lo, hi, elem) -> Arr (lo, Array.init (hi - lo + 1) (fun _ -> alloc elem))
  | TRecord fields -> Rec (List.map (fun (n, t) -> (n, alloc t)) fields)

let as_int = function
  | VInt n -> n
  | VChar c -> Char.code c
  | VBool _ -> err (Type_error "expected integer")

let as_bool = function
  | VBool b -> b
  | VInt _ | VChar _ -> err (Type_error "expected boolean")

let lookup env name =
  match List.assoc_opt name env with
  | Some e -> e
  | None -> err (Unbound name)

let rec resolve_lvalue st env = function
  | LId name -> (
      match lookup env name with
      | EVar s -> s
      | EConst _ -> err (Type_error (name ^ " is a constant"))
      | ERoutine _ -> err (Type_error (name ^ " is a routine")))
  | LIndex (base, idx) -> (
      match resolve_lvalue st env base with
      | Arr (lo, cells) ->
          let i = as_int (eval_expr st env idx) in
          if i < lo || i - lo >= Array.length cells then
            err (Out_of_bounds (Printf.sprintf "index %d" i))
          else cells.(i - lo)
      | Scalar _ | Rec _ -> err (Type_error "indexing a non-array"))
  | LField (base, f) -> (
      match resolve_lvalue st env base with
      | Rec fields -> (
          match List.assoc_opt f fields with
          | Some s -> s
          | None -> err (Unbound ("field " ^ f)))
      | Scalar _ | Arr _ -> err (Type_error "field access on a non-record"))

and scalar_of st env lv =
  match resolve_lvalue st env lv with
  | Scalar r -> r
  | Arr _ | Rec _ -> err (Type_error "composite value used as a scalar")

and eval_expr st env = function
  | EInt n -> VInt n
  | EBool b -> VBool b
  | EChar c -> VChar c
  | ELval (LId name) -> (
      match lookup env name with
      | EConst v -> VInt v
      | EVar (Scalar r) -> !r
      | EVar _ -> err (Type_error (name ^ " is not a scalar"))
      | ERoutine _ -> eval_call st env name [] (* parameterless function *))
  | ELval lv -> !(scalar_of st env lv)
  | EBin (op, a, b) -> (
      let va = eval_expr st env a in
      let vb = eval_expr st env b in
      match op with
      | Add -> VInt (as_int va + as_int vb)
      | Sub -> VInt (as_int va - as_int vb)
      | Mul -> VInt (as_int va * as_int vb)
      | Div ->
          if as_int vb = 0 then err Div_by_zero else VInt (as_int va / as_int vb)
      | Mod ->
          if as_int vb = 0 then err Div_by_zero
          else
            (* match the compiled code: a - (a div b) * b *)
            let x = as_int va and y = as_int vb in
            VInt (x - (x / y * y))
      | And -> VBool (as_bool va && as_bool vb)
      | Or -> VBool (as_bool va || as_bool vb)
      | Eq -> VBool (compare_vals va vb = 0)
      | Ne -> VBool (compare_vals va vb <> 0)
      | Lt -> VBool (compare_vals va vb < 0)
      | Le -> VBool (compare_vals va vb <= 0)
      | Gt -> VBool (compare_vals va vb > 0)
      | Ge -> VBool (compare_vals va vb >= 0))
  | EUn (Neg, e) -> VInt (-as_int (eval_expr st env e))
  | EUn (Not, e) -> VBool (not (as_bool (eval_expr st env e)))
  | ECall (name, args) -> eval_call st env name args

and compare_vals a b =
  match (a, b) with
  | VInt x, VInt y -> compare x y
  | VChar x, VChar y -> compare x y
  | VBool x, VBool y -> compare x y
  | VInt x, VChar y -> compare x (Char.code y)
  | VChar x, VInt y -> compare (Char.code x) y
  | _ -> err (Type_error "comparing incompatible values")

and eval_call st env name args =
  (* Inside a function body the function's name is shadowed by its result
     slot; a call must still reach the routine (recursion). *)
  let entry =
    match List.find_opt (fun (n, e) -> n = name && match e with ERoutine _ -> true | _ -> false) env with
    | Some (_, e) -> e
    | None -> lookup env name
  in
  match entry with
  | ERoutine (r, closure) ->
      if List.length args <> List.length r.r_params then
        err (Type_error (Printf.sprintf "%s expects %d arguments" name
                           (List.length r.r_params)));
      (* Bind parameters strictly left to right (matching the generated
         code's evaluation order): by-ref shares storage, by-value copies
         scalars. *)
      let bindings =
        List.rev
          (List.fold_left2
             (fun acc p arg ->
               let binding =
                 if p.p_ref then
                   match arg with
                   | ELval lv -> (p.p_name, EVar (resolve_lvalue st env lv))
                   | _ ->
                       err
                         (Type_error
                            ("var parameter " ^ p.p_name ^ " needs a variable"))
                 else begin
                   if not (is_scalar p.p_ty) then
                     err
                       (Type_error
                          ("composite parameter " ^ p.p_name ^ " must be var"));
                   let v = eval_expr st env arg in
                   (p.p_name, EVar (Scalar (ref v)))
                 end
               in
               binding :: acc)
             [] r.r_params args)
      in
      let result = alloc (Option.value ~default:TInt r.r_ret) in
      let inner_env =
        (* function name bound to the result slot for assignment *)
        (match r.r_ret with
        | Some _ -> [ (r.r_name, EVar result) ]
        | None -> [])
        @ bindings @ !closure
      in
      run_block st inner_env r.r_block;
      (match (r.r_ret, result) with
      | Some _, Scalar res -> !res
      | Some _, _ -> err (Type_error "function result must be scalar")
      | None, _ -> VInt 0)
  | EVar _ | EConst _ -> err (Type_error (name ^ " is not a routine"))

and run_block st env block =
  (* Two-step scope construction so sibling routines can call each other. *)
  let scope = ref env in
  let additions =
    List.map
      (fun d ->
        match d with
        | DConst (n, v) -> (n, EConst v)
        | DVar (n, t) -> (n, EVar (alloc t))
        | DRoutine r -> (r.r_name, ERoutine (r, scope)))
      block.b_decls
  in
  scope := additions @ env;
  run_stmts st !scope block.b_body

and run_stmts st env stmts = List.iter (run_stmt st env) stmts

and run_stmt st env stmt =
  if st.fuel <= 0 then err Fuel_exhausted;
  st.fuel <- st.fuel - 1;
  match stmt with
  | SAssign (lv, e) ->
      let v = eval_expr st env e in
      let cell = scalar_of st env lv in
      cell := v
  | SIf (c, t, e) ->
      if as_bool (eval_expr st env c) then run_stmts st env t
      else run_stmts st env e
  | SWhile (c, body) ->
      while as_bool (eval_expr st env c) do
        if st.fuel <= 0 then err Fuel_exhausted;
        st.fuel <- st.fuel - 1;
        run_stmts st env body
      done
  | SRepeat (body, c) ->
      let continue_ = ref true in
      while !continue_ do
        if st.fuel <= 0 then err Fuel_exhausted;
        st.fuel <- st.fuel - 1;
        run_stmts st env body;
        if as_bool (eval_expr st env c) then continue_ := false
      done
  | SFor (v, e1, up, e2, body) ->
      let cell =
        match lookup env v with
        | EVar (Scalar r) -> r
        | _ -> err (Type_error ("for variable " ^ v ^ " must be a scalar"))
      in
      let lo = as_int (eval_expr st env e1) in
      let hi = as_int (eval_expr st env e2) in
      let i = ref lo in
      let cond () = if up then !i <= hi else !i >= hi in
      while cond () do
        if st.fuel <= 0 then err Fuel_exhausted;
        st.fuel <- st.fuel - 1;
        cell := VInt !i;
        run_stmts st env body;
        i := !i + (if up then 1 else -1)
      done
  | SCase (e, arms, default) -> (
      let v = as_int (eval_expr st env e) in
      match List.find_opt (fun (consts, _) -> List.mem v consts) arms with
      | Some (_, body) -> run_stmts st env body
      | None -> (
          match default with Some body -> run_stmts st env body | None -> ()))
  | SCall (name, args) -> ignore (eval_call st env name args)
  | SWrite (args, ln) ->
      List.iter
        (fun e ->
          match eval_expr st env e with
          | VInt n -> Buffer.add_string st.out (string_of_int n)
          | VBool b -> Buffer.add_string st.out (if b then "true" else "false")
          | VChar c -> Buffer.add_char st.out c)
        args;
      if ln then Buffer.add_char st.out '\n'
  | SRead lv -> (
      match st.input with
      | [] -> err No_input
      | v :: rest ->
          st.input <- rest;
          let cell = scalar_of st env lv in
          cell := VInt v)

let run ?(fuel = 10_000_000) ?(input = []) prog =
  let st = { out = Buffer.create 256; input; fuel } in
  try
    run_block st [] prog.prog_block;
    Ok (Buffer.contents st.out)
  with Error e -> Error e
