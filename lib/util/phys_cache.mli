(** Direct-mapped cache keyed by physical identity.

    A bounded memo for [v -> canonical v] style mappings. Unlike an
    identity-keyed hashtable (whose only usable hash, [Hashtbl.hash], is
    content-based, so physically distinct copies of equal values chain in
    one bucket and lookups degrade to a scan over every duplicate), each
    key maps to exactly one slot: duplicates evict each other and every
    operation is O(1). A miss after eviction only costs the caller its
    slow-path recomputation — correctness never depends on residency.

    Keys must not contain functional values (polymorphic hash). *)

type ('a, 'b) t

(** [create bits] makes a cache with [2^bits] slots. *)
val create : int -> ('a, 'b) t

val find_opt : ('a, 'b) t -> 'a -> 'b option

val mem : ('a, 'b) t -> 'a -> bool

val replace : ('a, 'b) t -> 'a -> 'b -> unit

val reset : ('a, 'b) t -> unit
