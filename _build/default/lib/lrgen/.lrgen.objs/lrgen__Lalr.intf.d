lib/lrgen/lalr.mli: Cfg Format
