open Pag_core

(* DAG-native evaluation. See dag.mli for the model; in short:

   - the PLAN parks every non-first occurrence of a shared subtree class
     (a "follower region"): the engine resolves no rules for its nodes;
   - at runtime each parked region resolves once its GATE (the root's
     inherited slots) is defined: project the class leader's slot range if
     the inherited fingerprint matches and the leader's evaluation consumed
     no unique identifiers, materialize the region's own instances
     otherwise;
   - first occurrences of shared classes are CANDIDATE leader ranges: the
     runtime fingerprints them, counts their range completion and tracks
     uid taint, and registers each completed (class x fingerprint) so
     followers can project from it. A materialized follower registers as
     the leader for its own divergent fingerprint.

   Follower regions NEST: the planner keeps walking inside a parked
   occurrence, so repeated subtrees inside it are parked regions of their
   own. Nesting is what keeps sharing alive when an outer region cannot
   share: a follower whose inherited fingerprint diverges materializes
   only its spine — the repeated subtrees inside it still project from
   their own class leaders. When an outer region projects, its nested
   regions are subsumed (their slots arrive with the outer copy), so they
   never resolve twice. Candidate ranges nest too (a class's
   representative can sit inside another's); each slot keeps its innermost
   region/candidate and both keep parent links, so completion counting
   walks the chains. Representatives are never inside follower regions:
   any node inside a follower has an earlier structural twin inside the
   leader range, so the first occurrence of its class is always
   elsewhere. *)

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6))

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)
(* ------------------------------------------------------------------ *)

type region = {
  rg_root : Tree.t;
  rg_class : int;
  rg_slot_lo : int;
  rg_slot_hi : int;
  rg_rules : int;  (* rule instances parking this region avoided *)
  rg_parent : int;  (* innermost enclosing region, -1 *)
}

type cand = {
  cd_class : int;
  cd_slot_lo : int;
  cd_slot_hi : int;
  cd_parent : int;  (* innermost enclosing candidate, -1 *)
}

type plan = {
  p_store : Store.t;
  p_regions : region array;  (* ascending root id *)
  p_cands : cand array;  (* ascending root id: parents precede children *)
  p_node_region : int array;  (* node id -> region idx, -1 *)
  p_node_cand : int array;  (* node id -> innermost candidate idx, -1 *)
  p_slot_region : int array;  (* slot -> region idx, -1 *)
  p_slot_cand : int array;  (* slot -> innermost candidate idx, -1 *)
  p_slot_gate : int array;  (* slot -> gate idx, -1 *)
  p_gates : gate array;
  p_class_cand : int array;  (* class -> candidate idx, -1 *)
  p_region_kids : int array array;  (* region idx -> direct child regions *)
  p_parked_rules : int;
  p_parked_slots : int;
}

and gkind = Lead of int | Follow of int

and gate = { g_kind : gkind; g_slots : int array }

let subtree_rules t =
  Tree.fold
    (fun acc (n : Tree.t) ->
      match n.Tree.prod with
      | None -> acc
      | Some p -> acc + Array.length p.Grammar.p_rules)
    0 t

(* Inherited slots of an occurrence root, in declaration order — the
   fingerprint domain. Everything else a subtree evaluation can read is
   part of the shape class (terminal attributes) or derived from these. *)
let inh_slots g store (node : Tree.t) =
  let sym = Grammar.symbol_of_id g node.Tree.sym_id in
  let acc = ref [] in
  Array.iteri
    (fun idx (a : Grammar.attr_decl) ->
      if a.Grammar.a_kind = Grammar.Inh then
        acc := Store.slot_of store node ~attr_idx:idx :: !acc)
    sym.Grammar.s_attrs;
  Array.of_list (List.rev !acc)

let plan ?(min_size = 2) g store (dag : Tree.dag) =
  let sh = dag.Tree.dg_sharing in
  let n = Array.length sh.Tree.sh_class in
  let range_of id cls =
    match Store.slot_range store ~id_lo:id ~id_count:sh.Tree.sh_size.(cls) with
    | Some r -> r
    | None ->
        invalid_arg "Dag.plan: store does not cover the tree contiguously"
  in
  (* Class eligibility is decided once, so representatives and followers
     always agree: shared, big enough, and with a nonempty slot range
     (an all-leaf class has nothing to project or park). *)
  let eligible =
    Array.init sh.Tree.sh_classes (fun c ->
        sh.Tree.sh_occurs.(c) >= 2
        && sh.Tree.sh_size.(c) >= min_size
        &&
        let rep = sh.Tree.sh_rep.(c) in
        match Store.find_node store rep with
        | Some node when node.Tree.prod <> None ->
            let lo, hi = range_of rep c in
            hi > lo
        | _ -> false)
  in
  let regions = ref [] and nregions = ref 0 in
  let cands = ref [] and ncands = ref 0 in
  let class_cand = Array.make (max 1 sh.Tree.sh_classes) (-1) in
  let parked_rules = ref 0 and parked_slots = ref 0 in
  let rec walk cand_idx reg_idx (node : Tree.t) =
    match node.Tree.prod with
    | None -> ()
    | Some _ ->
        let id = node.Tree.id in
        let c = sh.Tree.sh_class.(id) in
        if eligible.(c) && sh.Tree.sh_rep.(c) <> id then begin
          (* follower: park the whole occurrence — and keep walking, so
             repeated subtrees inside it park as nested regions of their
             own (they still share even if this region materializes) *)
          let lo, hi = range_of id c in
          let rules = subtree_rules node in
          let ri = !nregions in
          regions :=
            {
              rg_root = node;
              rg_class = c;
              rg_slot_lo = lo;
              rg_slot_hi = hi;
              rg_rules = rules;
              rg_parent = reg_idx;
            }
            :: !regions;
          incr nregions;
          if reg_idx < 0 then begin
            parked_rules := !parked_rules + rules;
            parked_slots := !parked_slots + (hi - lo)
          end;
          Array.iter (walk cand_idx ri) node.Tree.children
        end
        else begin
          let cand_idx =
            if eligible.(c) then begin
              let lo, hi = range_of id c in
              cands :=
                {
                  cd_class = c;
                  cd_slot_lo = lo;
                  cd_slot_hi = hi;
                  cd_parent = cand_idx;
                }
                :: !cands;
              let k = !ncands in
              incr ncands;
              class_cand.(c) <- k;
              k
            end
            else cand_idx
          in
          Array.iter (walk cand_idx reg_idx) node.Tree.children
        end
  in
  walk (-1) (-1) (Store.root store);
  let regions = Array.of_list (List.rev !regions) in
  let cands = Array.of_list (List.rev !cands) in
  let node_region = Array.make (max 1 n) (-1) in
  let node_cand = Array.make (max 1 n) (-1) in
  let total = Store.slot_count store in
  let slot_region = Array.make (max 1 total) (-1) in
  let slot_cand = Array.make (max 1 total) (-1) in
  let slot_gate = Array.make (max 1 total) (-1) in
  (* Candidates in preorder: an inner (nested) range is written after its
     enclosing one, leaving the innermost index in the node/slot maps. *)
  Array.iteri
    (fun ci cd ->
      let root = sh.Tree.sh_rep.(cd.cd_class) in
      for id = root to root + sh.Tree.sh_size.(cd.cd_class) - 1 do
        node_cand.(id) <- ci
      done;
      for s = cd.cd_slot_lo to cd.cd_slot_hi - 1 do
        slot_cand.(s) <- ci
      done)
    cands;
  (* Regions in preorder too: nested regions overwrite their enclosing
     one, leaving the innermost index in the maps (parent links recover
     the chain). *)
  Array.iteri
    (fun ri r ->
      let root = r.rg_root.Tree.id in
      for id = root to root + sh.Tree.sh_size.(r.rg_class) - 1 do
        node_region.(id) <- ri
      done;
      for s = r.rg_slot_lo to r.rg_slot_hi - 1 do
        slot_region.(s) <- ri
      done)
    regions;
  let region_kids =
    let acc = Array.make (max 1 (Array.length regions)) [] in
    Array.iteri
      (fun ri r ->
        if r.rg_parent >= 0 then acc.(r.rg_parent) <- ri :: acc.(r.rg_parent))
      regions;
    Array.map (fun l -> Array.of_list (List.rev l)) acc
  in
  let gates = ref [] and ngates = ref 0 in
  let add_gate kind node =
    let slots = inh_slots g store node in
    let gi = !ngates in
    incr ngates;
    gates := { g_kind = kind; g_slots = slots } :: !gates;
    Array.iter (fun s -> slot_gate.(s) <- gi) slots
  in
  Array.iteri
    (fun ci cd ->
      match Store.find_node store sh.Tree.sh_rep.(cd.cd_class) with
      | Some node -> add_gate (Lead ci) node
      | None -> assert false)
    cands;
  Array.iteri (fun ri r -> add_gate (Follow ri) r.rg_root) regions;
  {
    p_store = store;
    p_regions = regions;
    p_cands = cands;
    p_node_region = node_region;
    p_node_cand = node_cand;
    p_slot_region = slot_region;
    p_slot_cand = slot_cand;
    p_slot_gate = slot_gate;
    p_gates = Array.of_list (List.rev !gates);
    p_class_cand = class_cand;
    p_region_kids = region_kids;
    p_parked_rules = !parked_rules;
    p_parked_slots = !parked_slots;
  }

let rules_for p (node : Tree.t) =
  let id = node.Tree.id in
  id >= Array.length p.p_node_region || p.p_node_region.(id) < 0

let regions p = Array.length p.p_regions

let parked_rules p = p.p_parked_rules

let parked_slots p = p.p_parked_slots

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

(* Leader table key: (class, canonical inherited values). Values are
   interned, so equality is physical and hashing O(1). *)
module Fp_key = struct
  type t = int * Value.t array

  let equal (c1, a) (c2, b) =
    c1 = c2
    && Array.length a = Array.length b
    &&
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) == b.(i) && go (i + 1)) in
    go 0

  let hash (c, a) = Array.fold_left (fun h v -> mix h (Value.hash v)) c a
end

module Fp_tbl = Hashtbl.Make (Fp_key)

type lead = LCand of int | LRegion of int

(* Region lifecycle. *)
let st_parked = 0

and st_waiting = 1

and st_projected = 2

and st_live = 3

type t = {
  r_plan : plan;
  r_eng : Engine.t;
  r_gr : Engine.graph;
  (* per-region state *)
  r_state : int array;
  r_src : int array;  (* projection source slot lo, -1 *)
  r_rdef : int array;  (* slots defined in range *)
  r_rtaint : bool array;
  r_rreg : bool array;  (* registered as a dynamic leader *)
  r_rwait : int list ref array;  (* follower idxs waiting on this leader *)
  r_rgate : int array;  (* gate slots still unset *)
  (* per-candidate state *)
  r_cdef : int array;
  r_ctaint : bool array;
  r_creg : bool array;
  r_cwait : int list ref array;
  r_cgate : int array;
  r_leaders : lead Fp_tbl.t;
  r_class_pending : (int, int list ref) Hashtbl.t;
  (* linearized cascade processing *)
  r_queue : int Queue.t;
  mutable r_processing : bool;
  mutable r_on_defined : int -> unit;
  mutable r_on_new_rids : int -> int -> unit;
  (* stats *)
  mutable r_projected : int;
  mutable r_materialized : int;
  mutable r_projected_slots : int;
  mutable r_materialized_rids : int;
  mutable r_tainted_classes : int;
}

type stats = {
  dg_regions : int;
  dg_projected : int;
  dg_materialized : int;
  dg_projected_slots : int;
  dg_materialized_rids : int;
  dg_tainted_classes : int;
}

let stats rt =
  {
    dg_regions = Array.length rt.r_plan.p_regions;
    dg_projected = rt.r_projected;
    dg_materialized = rt.r_materialized;
    dg_projected_slots = rt.r_projected_slots;
    dg_materialized_rids = rt.r_materialized_rids;
    dg_tainted_classes = rt.r_tainted_classes;
  }

let make p eng gr =
  let nr = Array.length p.p_regions and nc = Array.length p.p_cands in
  {
    r_plan = p;
    r_eng = eng;
    r_gr = gr;
    r_state = Array.make (max 1 nr) st_parked;
    r_src = Array.make (max 1 nr) (-1);
    r_rdef = Array.make (max 1 nr) 0;
    r_rtaint = Array.make (max 1 nr) false;
    r_rreg = Array.make (max 1 nr) false;
    r_rwait = Array.init (max 1 nr) (fun _ -> ref []);
    r_rgate =
      Array.init (max 1 nr) (fun i ->
          if i < nr then
            Array.length p.p_gates.(nc + i).g_slots
          else 0);
    r_cdef = Array.make (max 1 nc) 0;
    r_ctaint = Array.make (max 1 nc) false;
    r_creg = Array.make (max 1 nc) false;
    r_cwait = Array.init (max 1 nc) (fun _ -> ref []);
    r_cgate =
      Array.init (max 1 nc) (fun i ->
          if i < nc then Array.length p.p_gates.(i).g_slots else 0);
    r_leaders = Fp_tbl.create 64;
    r_class_pending = Hashtbl.create 16;
    r_queue = Queue.create ();
    r_processing = false;
    r_on_defined = ignore;
    r_on_new_rids = (fun _ _ -> ());
    r_projected = 0;
    r_materialized = 0;
    r_projected_slots = 0;
    r_materialized_rids = 0;
    r_tainted_classes = 0;
  }

let set_hooks rt ~on_defined ~on_new_rids =
  rt.r_on_defined <- on_defined;
  rt.r_on_new_rids <- on_new_rids

let lead_complete rt = function
  | LCand ci ->
      let cd = rt.r_plan.p_cands.(ci) in
      rt.r_cdef.(ci) = cd.cd_slot_hi - cd.cd_slot_lo
  | LRegion ri ->
      let r = rt.r_plan.p_regions.(ri) in
      rt.r_state.(ri) = st_live && rt.r_rdef.(ri) = r.rg_slot_hi - r.rg_slot_lo

let lead_tainted rt = function
  | LCand ci -> rt.r_ctaint.(ci)
  | LRegion ri -> rt.r_rtaint.(ri)

let lead_src rt = function
  | LCand ci -> rt.r_plan.p_cands.(ci).cd_slot_lo
  | LRegion ri -> rt.r_plan.p_regions.(ri).rg_slot_lo

let lead_waiters rt = function
  | LCand ci -> rt.r_cwait.(ci)
  | LRegion ri -> rt.r_rwait.(ri)

(* Fingerprint of a completed gate: canonical inherited values. *)
let gate_fp rt (g : gate) =
  Array.map
    (fun s -> Value.intern (Store.slot_value rt.r_plan.p_store s))
    g.g_slots

(* Walk a projection chain back to the slot a rule actually defined: the
   source range may itself contain projected sub-ranges. Returns (rid,
   origin slot); rid < 0 when no producer exists (preset slots). *)
let rec origin rt slot =
  let rid = Engine.producer rt.r_gr slot in
  if rid >= 0 then (rid, slot)
  else
    let ri = rt.r_plan.p_slot_region.(slot) in
    if ri >= 0 && rt.r_state.(ri) = st_projected && rt.r_src.(ri) >= 0 then
      origin rt (slot - rt.r_plan.p_regions.(ri).rg_slot_lo + rt.r_src.(ri))
    else (-1, slot)

(* Class-level provenance with occurrence fan-out: a projected slot gets a
   zero-duration replay record whose rid is the class-level (leader)
   instance and whose argument slots are the leader rule's arguments
   translated into the occurrence's range — the record a per-occurrence
   evaluation would have produced, pointing at the shared evaluation. *)
let prov_project rt dst =
  let p = Engine.prov rt.r_eng in
  if Pag_obs.Prov.enabled p then begin
    let rid, src = origin rt dst in
    if rid >= 0 then begin
      let t = Engine.prov_clock rt.r_eng () in
      Pag_obs.Prov.record p ~rid ~pid:(Engine.prov_pid rt.r_eng) ~target:dst
        ~t0:t ~t1:t ~replay:true;
      let delta = dst - src in
      Engine.iter_slot_args rt.r_eng rid (fun a ->
          Pag_obs.Prov.arg p (a + delta))
    end
  end

let push_slot rt s = Queue.add s rt.r_queue

(* The mutually recursive resolution machinery. Everything below runs
   inside [process]'s drain loop (or from [prime], which guards the same
   way), so cascaded slot definitions are handled iteratively. *)

let rec handle_slot rt s =
  let p = rt.r_plan in
  (let gi = p.p_slot_gate.(s) in
   if gi >= 0 then
     match p.p_gates.(gi).g_kind with
     | Lead ci ->
         if rt.r_cgate.(ci) > 0 then begin
           rt.r_cgate.(ci) <- rt.r_cgate.(ci) - 1;
           if rt.r_cgate.(ci) = 0 then complete_lead_gate rt ci
         end
     | Follow ri ->
         if rt.r_rgate.(ri) > 0 then begin
           rt.r_rgate.(ri) <- rt.r_rgate.(ri) - 1;
           if rt.r_rgate.(ri) = 0 then complete_follow_gate rt ri
         end);
  (let ri = ref p.p_slot_region.(s) in
   while !ri >= 0 do
     let i = !ri in
     rt.r_rdef.(i) <- rt.r_rdef.(i) + 1;
     let r = p.p_regions.(i) in
     if
       rt.r_rdef.(i) = r.rg_slot_hi - r.rg_slot_lo
       && rt.r_state.(i) = st_live
       && rt.r_rreg.(i)
     then leader_done rt (LRegion i);
     ri := r.rg_parent
   done);
  let ci = ref p.p_slot_cand.(s) in
  while !ci >= 0 do
    let i = !ci in
    rt.r_cdef.(i) <- rt.r_cdef.(i) + 1;
    let cd = p.p_cands.(i) in
    if rt.r_cdef.(i) = cd.cd_slot_hi - cd.cd_slot_lo && rt.r_creg.(i) then
      leader_done rt (LCand i);
    ci := cd.cd_parent
  done

and complete_lead_gate rt ci =
  let p = rt.r_plan in
  let cd = p.p_cands.(ci) in
  let fp = gate_fp rt p.p_gates.(ci) in
  let key = (cd.cd_class, fp) in
  if not (Fp_tbl.mem rt.r_leaders key) then
    Fp_tbl.add rt.r_leaders key (LCand ci);
  rt.r_creg.(ci) <- true;
  (* followers whose gates completed before the representative's resolve
     now, in occurrence order *)
  match Hashtbl.find_opt rt.r_class_pending cd.cd_class with
  | None -> ()
  | Some pending ->
      let waiting = List.sort compare !pending in
      Hashtbl.remove rt.r_class_pending cd.cd_class;
      List.iter
        (fun ri -> if rt.r_state.(ri) = st_waiting then resolve rt ri)
        waiting

and complete_follow_gate rt ri =
  (* the region may already be live: demand materialization breaks
     inherited-depends-on-own-synthesized feedback cycles before the gate
     can complete *)
  if rt.r_state.(ri) = st_parked then begin
    rt.r_state.(ri) <- st_waiting;
    resolve rt ri
  end

(* A follower's inherited context is known: project, wait, or split. *)
and resolve rt ri =
  let p = rt.r_plan in
  let r = p.p_regions.(ri) in
  let fp = gate_fp rt p.p_gates.(Array.length p.p_cands + ri) in
  let key = (r.rg_class, fp) in
  match Fp_tbl.find_opt rt.r_leaders key with
  | Some lead ->
      if lead_tainted rt lead then materialize rt ri
      else if lead_complete rt lead then project rt ri (lead_src rt lead)
      else begin
        let w = lead_waiters rt lead in
        w := ri :: !w
      end
  | None ->
      let ci = p.p_class_cand.(r.rg_class) in
      if ci >= 0 && not rt.r_creg.(ci) then begin
        (* the class representative has not fingerprinted yet: hold the
           follower rather than splitting the class prematurely *)
        let pending =
          match Hashtbl.find_opt rt.r_class_pending r.rg_class with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add rt.r_class_pending r.rg_class l;
              l
        in
        pending := ri :: !pending
      end
      else begin
        (* divergent fingerprint: split the class — this occurrence
           evaluates its own instances and leads its new (class, fp) *)
        materialize rt ri;
        Fp_tbl.add rt.r_leaders key (LRegion ri);
        rt.r_rreg.(ri) <- true
      end

and leader_done rt lead =
  let w = lead_waiters rt lead in
  let waiting =
    List.sort compare (List.filter (fun ri -> rt.r_state.(ri) = st_waiting) !w)
  in
  w := [];
  if lead_tainted rt lead then List.iter (fun ri -> materialize rt ri) waiting
  else begin
    let src = lead_src rt lead in
    List.iter (fun ri -> project rt ri src) waiting
  end

and project rt ri src_lo =
  let p = rt.r_plan in
  let r = p.p_regions.(ri) in
  rt.r_state.(ri) <- st_projected;
  rt.r_src.(ri) <- src_lo;
  rt.r_projected <- rt.r_projected + 1;
  (* Subsume nested regions first: their slots arrive with this copy, so
     they must never resolve on their own. Their src offsets keep
     [origin]'s projection-chain walk valid through the nesting. *)
  let rec subsume j =
    Array.iter
      (fun k ->
        if rt.r_state.(k) < st_projected then begin
          let c = p.p_regions.(k) in
          rt.r_state.(k) <- st_projected;
          rt.r_src.(k) <- src_lo + (c.rg_slot_lo - r.rg_slot_lo);
          rt.r_projected <- rt.r_projected + 1;
          subsume k
        end)
      p.p_region_kids.(j)
  in
  subsume ri;
  Store.project_range p.p_store ~src_lo ~dst_lo:r.rg_slot_lo
    ~len:(r.rg_slot_hi - r.rg_slot_lo) (fun dst ->
      rt.r_projected_slots <- rt.r_projected_slots + 1;
      prov_project rt dst;
      push_slot rt dst;
      rt.r_on_defined dst)

and materialize rt ri =
  let p = rt.r_plan in
  let r = p.p_regions.(ri) in
  rt.r_state.(ri) <- st_live;
  (* Materialize only this region's spine: nested regions stay parked —
     their inherited context will be defined by the spine's firings, and
     they still project from their own class leaders. (A nested region
     that already resolved keeps its state; its root prunes the walk
     either way.) *)
  let prune (node : Tree.t) =
    let id = node.Tree.id in
    id < Array.length p.p_node_region
    &&
    let j = p.p_node_region.(id) in
    j >= 0 && j <> ri && p.p_regions.(j).rg_root == node
  in
  let rid_lo, rid_hi = Engine.materialize_subtree ~prune rt.r_eng r.rg_root in
  Engine.graph_note_range rt.r_eng rt.r_gr ~rid_lo ~rid_hi;
  rt.r_materialized <- rt.r_materialized + 1;
  rt.r_materialized_rids <- rt.r_materialized_rids + (rid_hi - rid_lo);
  rt.r_on_new_rids rid_lo rid_hi

let process rt =
  if not rt.r_processing then begin
    rt.r_processing <- true;
    (try
       while not (Queue.is_empty rt.r_queue) do
         handle_slot rt (Queue.take rt.r_queue)
       done
     with e ->
       rt.r_processing <- false;
       raise e);
    rt.r_processing <- false
  end

let note_define rt slot =
  push_slot rt slot;
  process rt

(* Demand materialization: a grammar can feed a subtree's own synthesized
   output back into its inherited context (repmin's gmin), in which case a
   parked occurrence's gate can never complete — the evaluation stalls
   with its synthesized attributes undefined. When the scheduler runs dry
   with the store incomplete, materializing the lowest unresolved region
   (deterministic) lets its rules fire bottom-up and breaks the cycle;
   occurrences on such a feedback path simply do not share. *)
let force_stalled rt =
  let n = Array.length rt.r_plan.p_regions in
  let rec go ri =
    if ri >= n then false
    else if rt.r_state.(ri) < st_projected then begin
      materialize rt ri;
      true
    end
    else go (ri + 1)
  in
  go 0

let note_taint rt id =
  let p = rt.r_plan in
  if id < Array.length p.p_node_region then begin
    (let ri = ref p.p_node_region.(id) in
     while !ri >= 0 do
       rt.r_rtaint.(!ri) <- true;
       ri := p.p_regions.(!ri).rg_parent
     done);
    let ci = ref p.p_node_cand.(id) in
    while !ci >= 0 do
      if not rt.r_ctaint.(!ci) then begin
        rt.r_ctaint.(!ci) <- true;
        rt.r_tainted_classes <- rt.r_tainted_classes + 1
      end;
      ci := p.p_cands.(!ci).cd_parent
    done
  end

(* Gates with no inherited slots are complete before any firing. Runs in
   plan (preorder) order: representatives first, so followers of a
   zero-inherited class find their leader registered. *)
let prime rt =
  if not rt.r_processing then begin
    rt.r_processing <- true;
    (try
       let nc = Array.length rt.r_plan.p_cands in
       for ci = 0 to nc - 1 do
         if rt.r_cgate.(ci) = 0 then complete_lead_gate rt ci
       done;
       for ri = 0 to Array.length rt.r_plan.p_regions - 1 do
         if rt.r_rgate.(ri) = 0 && rt.r_state.(ri) = st_parked then
           complete_follow_gate rt ri
       done;
       while not (Queue.is_empty rt.r_queue) do
         handle_slot rt (Queue.take rt.r_queue)
       done
     with e ->
       rt.r_processing <- false;
       raise e);
    rt.r_processing <- false
  end

(* ------------------------------------------------------------------ *)
(* Incremental editing support                                         *)
(* ------------------------------------------------------------------ *)

let revive rt gr ri =
  if rt.r_state.(ri) = st_live then None
  else begin
    let r = rt.r_plan.p_regions.(ri) in
    rt.r_state.(ri) <- st_live;
    (* An edit wants the whole occurrence live, nested regions included:
       mark them so they never resolve on their own after the revive. *)
    let rec wake j =
      Array.iter
        (fun k ->
          rt.r_state.(k) <- st_live;
          wake k)
        rt.r_plan.p_region_kids.(j)
    in
    wake ri;
    let rid_lo, rid_hi = Engine.materialize_subtree rt.r_eng r.rg_root in
    Engine.graph_note_range rt.r_eng gr ~rid_lo ~rid_hi;
    rt.r_materialized <- rt.r_materialized + 1;
    rt.r_materialized_rids <- rt.r_materialized_rids + (rid_hi - rid_lo);
    Some (rid_lo, rid_hi)
  end

(* Reviving an edited node must wake the whole nesting chain: the edit's
   new value propagates through every enclosing region's spine, so each
   still-suppressed ancestor materializes too (innermost first; the
   appended rid ranges are consecutive, so the merge stays one range). *)
let revive_chain rt gr ri0 =
  let p = rt.r_plan in
  let acc = ref None in
  let ri = ref ri0 in
  while !ri >= 0 do
    (match revive rt gr !ri with
    | Some (lo, hi) ->
        acc :=
          Some
            (match !acc with
            | None -> (lo, hi)
            | Some (l, h) -> (min l lo, max h hi))
    | None -> ());
    ri := p.p_regions.(!ri).rg_parent
  done;
  !acc

let revive_node rt gr id =
  let p = rt.r_plan in
  if id >= Array.length p.p_node_region then None
  else
    let ri = p.p_node_region.(id) in
    if ri < 0 then None else revive_chain rt gr ri

let revive_gate rt gr slot =
  let p = rt.r_plan in
  if slot >= Array.length p.p_slot_gate then None
  else
    let gi = p.p_slot_gate.(slot) in
    if gi < 0 then None
    else
      match p.p_gates.(gi).g_kind with
      | Lead _ -> None
      | Follow ri -> revive_chain rt gr ri

(* ------------------------------------------------------------------ *)
(* Sequential driver                                                   *)
(* ------------------------------------------------------------------ *)

let run_topo rt e gr =
  let store = Engine.store e in
  let n0 = Engine.rule_count e in
  let waiting = ref (Array.make (max 1 n0) 0) in
  let queue = ref (Array.make (max 1 (2 * n0)) 0) in
  let head = ref 0 and tail = ref 0 in
  let push rid =
    if !tail >= Array.length !queue then begin
      let q = Array.make (2 * Array.length !queue) 0 in
      Array.blit !queue 0 q 0 !tail;
      queue := q
    end;
    !queue.(!tail) <- rid;
    incr tail
  in
  let seed rid =
    let w = ref 0 in
    Engine.iter_slot_args e rid (fun slot ->
        if not (Store.slot_is_set store slot) then incr w);
    !waiting.(rid) <- !w;
    if !w = 0 then push rid
  in
  let release slot =
    Engine.iter_consumers gr slot (fun c ->
        if not (Engine.is_dead e c) then begin
          !waiting.(c) <- !waiting.(c) - 1;
          if !waiting.(c) = 0 then push c
        end)
  in
  set_hooks rt ~on_defined:release ~on_new_rids:(fun lo hi ->
      if hi > Array.length !waiting then begin
        let w = Array.make (max hi (2 * Array.length !waiting)) 0 in
        Array.blit !waiting 0 w 0 (Array.length !waiting);
        waiting := w
      end;
      for rid = lo to hi - 1 do
        seed rid
      done);
  for rid = 0 to n0 - 1 do
    if not (Engine.is_dead e rid) then seed rid
  done;
  prime rt;
  let fired0 = Engine.fired e in
  let running = ref true in
  while !running do
    while !head < !tail do
      let rid = !queue.(!head) in
      incr head;
      if not (Engine.is_dead e rid) then begin
        let u0 = Uid.mark () in
        Engine.fire e rid;
        if Uid.mark () <> u0 then
          note_taint rt (Engine.node_of e rid).Tree.id;
        let tgt = Engine.target_slot e rid in
        release tgt;
        note_define rt tgt
      end
    done;
    if Store.missing store = 0 || not (force_stalled rt) then running := false
  done;
  let left = Store.missing store in
  if left > 0 then
    raise
      (Engine.Cycle
         (Printf.sprintf
            "DAG evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            left));
  Engine.fired e - fired0
