(** Messages exchanged by the parallel compiler's processes.

    Machine ids: 0 is the parser/coordinator, 1..k the evaluators, k+1 the
    string librarian. Attribute values cross fragment boundaries as
    {!Attr} messages keyed by the global node id of the boundary node (a
    fragment root); their wire size is the flattened representation computed
    by the conversion functions ({!Pag_core.Value.byte_size}). *)

open Pag_core
open Pag_util

type t =
  | Subtree of {
      frag : int;  (** fragment id being assigned *)
      bytes : int;  (** linearized size, paid on the wire *)
      uid_base : int;  (** base value for unique-identifier generation *)
    }
  | Edit of {
      node : int;  (** global id of the edited subtree's parent *)
      bytes : int;  (** linearized size of the replacement subtree *)
    }
      (** coordinator -> owning evaluator: re-parse notification of an edit
          session; the receiver rebuilds the replacement subtree and
          re-evaluates incrementally *)
  | Attr of {
      node : int;  (** global id of the boundary node *)
      attr : string;
      value : Value.t;
    }
  | Code_frag of { id : int; text : Rope.t }  (** evaluator -> librarian *)
  | Resolve of { value : Value.t }  (** coordinator -> librarian *)
  | Final of { text : Rope.t }  (** librarian -> coordinator *)
  | Stop
  | Data of { src : int; seq : int; payload : t }
      (** reliable-delivery envelope: [(src, seq)] identifies the message
          for acknowledgement and duplicate suppression ({!Reliable}) *)
  | Ack of { src : int; seq : int }
      (** acknowledges {!Data} [seq]; [src] is the acknowledging machine *)
  | Ping  (** liveness probe; acked by the reliable layer, never delivered *)
  | Attr_bind of {
      src : int;
      node : int;
      attr : string;
      iid : int;
      value : Value.t;
    }
      (** {!Attr} carrying a payload the sender has not yet interned at the
          receiver: binds [iid] (sender-scoped) to [value] ({!Intern}) *)
  | Attr_ref of { src : int; node : int; attr : string; iid : int; hash : int }
      (** {!Attr} whose payload was already bound: only [(iid, hash)] travels *)
  | Code_frag_bind of { src : int; id : int; iid : int; text : Rope.t }
  | Code_frag_ref of { src : int; id : int; iid : int; hash : int }
  | Need_intern of { src : int; iid : int }
      (** receiver's cache miss on a reference: ask [src]'s sender to
          retransmit the bound payload *)
  | Backfill of { src : int; iid : int; value : Value.t }
      (** answer to {!Need_intern}: the payload bound to [iid] at [src] *)

(** Wire size in bytes (header + payload). A [Data] envelope adds
    {!seq_bytes} over its payload; intern binds add {!iid_bytes}, intern
    references cost a fixed [2 * iid_bytes] instead of the payload. *)
val size : t -> int

val header_bytes : int

val seq_bytes : int

val iid_bytes : int

val pp : Format.formatter -> t -> unit
