type outcome = { output : string; steps : int }

type error =
  | Unknown_label of string
  | Fuel_exhausted
  | Memory_fault of int
  | Divide_by_zero
  | No_input
  | Bad_operand of string

exception Fault of error

let error_to_string = function
  | Unknown_label l -> Printf.sprintf "unknown label %S" l
  | Fuel_exhausted -> "fuel exhausted (likely an infinite loop)"
  | Memory_fault a -> Printf.sprintf "memory fault at address %d" a
  | Divide_by_zero -> "divide by zero"
  | No_input -> "read past end of input"
  | Bad_operand s -> Printf.sprintf "bad operand: %s" s

(* Memory: 1 MiB of longwords; the stack starts at the top. *)
let mem_words = 256 * 1024

let mem_bytes = mem_words * 4

type state = {
  mem : int array;
  regs : int array;
  mutable pc : int; (* instruction index *)
  mutable nflag : bool;
  mutable zflag : bool;
  mutable steps : int;
  mutable input : int list;
  out : Buffer.t;
}

let read_mem st addr =
  if addr < 0 || addr >= mem_bytes || addr land 3 <> 0 then
    raise (Fault (Memory_fault addr));
  st.mem.(addr / 4)

let write_mem st addr v =
  if addr < 0 || addr >= mem_bytes || addr land 3 <> 0 then
    raise (Fault (Memory_fault addr));
  st.mem.(addr / 4) <- v

let fetch st labels = function
  | Isa.Imm n -> n
  | Isa.Reg r -> st.regs.(r)
  | Isa.Deref r -> read_mem st st.regs.(r)
  | Isa.Disp (d, r) -> read_mem st (st.regs.(r) + d)
  | Isa.PostInc r ->
      let v = read_mem st st.regs.(r) in
      st.regs.(r) <- st.regs.(r) + 4;
      v
  | Isa.PreDec r ->
      st.regs.(r) <- st.regs.(r) - 4;
      read_mem st st.regs.(r)
  | Isa.Lbl l -> (
      match Hashtbl.find_opt labels l with
      | Some i -> i
      | None -> raise (Fault (Unknown_label l)))

let store st dst v =
  match dst with
  | Isa.Reg r -> st.regs.(r) <- v
  | Isa.Deref r -> write_mem st st.regs.(r) v
  | Isa.Disp (d, r) -> write_mem st (st.regs.(r) + d) v
  | Isa.PostInc r ->
      write_mem st st.regs.(r) v;
      st.regs.(r) <- st.regs.(r) + 4
  | Isa.PreDec r ->
      st.regs.(r) <- st.regs.(r) - 4;
      write_mem st st.regs.(r) v
  | Isa.Imm _ | Isa.Lbl _ ->
      raise (Fault (Bad_operand "store to immediate/label"))

(* The address an operand denotes, for moval. *)
let address_of st labels = function
  | Isa.Deref r -> st.regs.(r)
  | Isa.Disp (d, r) -> st.regs.(r) + d
  | Isa.Lbl l -> (
      match Hashtbl.find_opt labels l with
      | Some i -> i
      | None -> raise (Fault (Unknown_label l)))
  | other ->
      raise
        (Fault
           (Bad_operand
              (Format.asprintf "moval of %a" Isa.pp_operand other)))

let push st v =
  st.regs.(Isa.sp) <- st.regs.(Isa.sp) - 4;
  write_mem st st.regs.(Isa.sp) v

let pop st =
  let v = read_mem st st.regs.(Isa.sp) in
  st.regs.(Isa.sp) <- st.regs.(Isa.sp) + 4;
  v

let set_flags st v =
  st.nflag <- v < 0;
  st.zflag <- v = 0

(* Runtime routines: called with the standard convention, so arguments are
   at 4(ap) once the frame is built. *)
let builtins = [ "_print_int"; "_print_char"; "_print_bool"; "_read_int" ]

let do_builtin st name =
  let arg i = read_mem st (st.regs.(Isa.ap) + (4 * i)) in
  (match name with
  | "_print_int" -> Buffer.add_string st.out (string_of_int (arg 1))
  | "_print_char" -> Buffer.add_char st.out (Char.chr (arg 1 land 0xff))
  | "_print_bool" ->
      Buffer.add_string st.out (if arg 1 <> 0 then "true" else "false")
  | "_read_int" -> (
      match st.input with
      | [] -> raise (Fault No_input)
      | v :: rest ->
          st.input <- rest;
          st.regs.(0) <- v)
  | _ -> assert false)

let do_ret st =
  st.regs.(Isa.sp) <- st.regs.(Isa.fp);
  let old_ap = pop st in
  let old_fp = pop st in
  let ret_pc = pop st in
  let argc = pop st in
  st.regs.(Isa.sp) <- st.regs.(Isa.sp) + (4 * argc);
  st.regs.(Isa.ap) <- old_ap;
  st.regs.(Isa.fp) <- old_fp;
  st.pc <- ret_pc

let run ?(fuel = 10_000_000) ?(input = []) instrs =
  let code = Array.of_list instrs in
  let labels = Hashtbl.create 64 in
  Array.iteri
    (fun i ins ->
      match ins with Isa.Label l -> Hashtbl.replace labels l i | _ -> ())
    code;
  let st =
    {
      mem = Array.make mem_words 0;
      regs = Array.make 16 0;
      pc = 0;
      nflag = false;
      zflag = false;
      steps = 0;
      input;
      out = Buffer.create 256;
    }
  in
  st.regs.(Isa.sp) <- mem_bytes;
  st.regs.(Isa.fp) <- mem_bytes;
  st.regs.(Isa.ap) <- mem_bytes;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> raise (Fault (Unknown_label l))
  in
  let fetch x = fetch st labels x in
  let binop2 f a b =
    let v = f (fetch b) (fetch a) in
    store st b v;
    set_flags st v
  in
  let binop3 f a b c =
    let v = f (fetch a) (fetch b) in
    store st c v;
    set_flags st v
  in
  try
    let running = ref true in
    while !running do
      if st.pc < 0 || st.pc >= Array.length code then
        raise (Fault (Memory_fault st.pc));
      if st.steps >= fuel then raise (Fault Fuel_exhausted);
      st.steps <- st.steps + 1;
      let ins = code.(st.pc) in
      st.pc <- st.pc + 1;
      match ins with
      | Isa.Label _ | Isa.Comment _ -> ()
      | Isa.Movl (a, b) ->
          let v = fetch a in
          store st b v;
          set_flags st v
      | Isa.Moval (a, b) ->
          let v = address_of st labels a in
          store st b v;
          set_flags st v
      | Isa.Pushl a -> push st (fetch a)
      | Isa.Addl2 (a, b) -> binop2 (fun x y -> x + y) a b
      | Isa.Addl3 (a, b, c) -> binop3 (fun x y -> x + y) a b c
      | Isa.Subl2 (a, b) -> binop2 (fun dst src -> dst - src) a b
      | Isa.Subl3 (a, b, c) -> binop3 (fun x y -> y - x) a b c
      | Isa.Mull2 (a, b) -> binop2 (fun x y -> x * y) a b
      | Isa.Divl2 (a, b) ->
          (* fetch each operand exactly once: they may auto-increment *)
          let src = fetch a in
          if src = 0 then raise (Fault Divide_by_zero);
          let v = fetch b / src in
          store st b v;
          set_flags st v
      | Isa.Divl3 (a, b, c) ->
          let src = fetch a in
          let dividend = fetch b in
          if src = 0 then raise (Fault Divide_by_zero);
          let v = dividend / src in
          store st c v;
          set_flags st v
      | Isa.Mnegl (a, b) ->
          let v = -fetch a in
          store st b v;
          set_flags st v
      | Isa.Cmpl (a, b) ->
          let x = fetch a and y = fetch b in
          st.nflag <- x < y;
          st.zflag <- x = y
      | Isa.Tstl a -> set_flags st (fetch a)
      | Isa.Beql l -> if st.zflag then st.pc <- target l
      | Isa.Bneq l -> if not st.zflag then st.pc <- target l
      | Isa.Blss l -> if st.nflag then st.pc <- target l
      | Isa.Bleq l -> if st.nflag || st.zflag then st.pc <- target l
      | Isa.Bgtr l -> if (not st.nflag) && not st.zflag then st.pc <- target l
      | Isa.Bgeq l -> if not st.nflag then st.pc <- target l
      | Isa.Brb l -> st.pc <- target l
      | Isa.Calls (n, l) ->
          push st n;
          push st st.pc;
          push st st.regs.(Isa.fp);
          push st st.regs.(Isa.ap);
          st.regs.(Isa.fp) <- st.regs.(Isa.sp);
          st.regs.(Isa.ap) <- st.regs.(Isa.fp) + 12;
          if List.mem l builtins then begin
            do_builtin st l;
            do_ret st
          end
          else st.pc <- target l
      | Isa.Ret -> do_ret st
      | Isa.Halt -> running := false
    done;
    Ok { output = Buffer.contents st.out; steps = st.steps }
  with Fault e -> Error e

let run_text ?fuel ?input text = run ?fuel ?input (Asm_parser.parse text)
