type obj = { o_code : bytes; o_symbols : string array }

(* opcodes *)
let opcodes =
  [
    (`Movl, 0xd0); (`Moval, 0xde); (`Pushl, 0xdd); (`Addl2, 0xc0);
    (`Addl3, 0xc1); (`Subl2, 0xc2); (`Subl3, 0xc3); (`Mull2, 0xc4);
    (`Divl2, 0xc6); (`Divl3, 0xc7); (`Mnegl, 0xce); (`Cmpl, 0xd1);
    (`Tstl, 0xd5); (`Beql, 0x13); (`Bneq, 0x12); (`Blss, 0x19);
    (`Bleq, 0x15); (`Bgtr, 0x14); (`Bgeq, 0x18); (`Brb, 0x11);
    (`Calls, 0xfb); (`Ret, 0x04); (`Halt, 0x00); (`LabelMark, 0xff);
  ]

let code_of op = List.assoc op opcodes

(* operand mode bytes: high nibble = mode, low nibble = register *)
let m_reg = 0x50

let m_deref = 0x60

let m_predec = 0x70

let m_postinc = 0x80

let m_disp = 0xa0

(* On the real VAX, immediate mode IS (pc)+ — 0x8f. Our registers include
   r15, so escape bytes live in mode space no register mode uses. *)
let m_imm = 0x1f

let m_lbl = 0x2f

let encode instrs =
  let buf = Buffer.create 256 in
  let symbols = ref [] in
  let nsym = ref 0 in
  let symtab = Hashtbl.create 16 in
  let sym name =
    match Hashtbl.find_opt symtab name with
    | Some i -> i
    | None ->
        let i = !nsym in
        incr nsym;
        Hashtbl.add symtab name i;
        symbols := name :: !symbols;
        i
  in
  let byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  let u16 v =
    byte (v land 0xff);
    byte ((v lsr 8) land 0xff)
  in
  let i32 v =
    byte (v land 0xff);
    byte ((v asr 8) land 0xff);
    byte ((v asr 16) land 0xff);
    byte ((v asr 24) land 0xff)
  in
  let operand = function
    | Isa.Imm v ->
        byte m_imm;
        i32 v
    | Isa.Reg r -> byte (m_reg lor r)
    | Isa.Deref r -> byte (m_deref lor r)
    | Isa.PreDec r -> byte (m_predec lor r)
    | Isa.PostInc r -> byte (m_postinc lor r)
    | Isa.Disp (d, r) ->
        byte (m_disp lor r);
        i32 d
    | Isa.Lbl l ->
        byte m_lbl;
        u16 (sym l)
  in
  let branch op l =
    byte (code_of op);
    u16 (sym l)
  in
  List.iter
    (fun ins ->
      match ins with
      | Isa.Comment _ -> ()
      | Isa.Label l ->
          byte (code_of `LabelMark);
          u16 (sym l)
      | Isa.Movl (a, b) ->
          byte (code_of `Movl);
          operand a;
          operand b
      | Isa.Moval (a, b) ->
          byte (code_of `Moval);
          operand a;
          operand b
      | Isa.Pushl a ->
          byte (code_of `Pushl);
          operand a
      | Isa.Addl2 (a, b) ->
          byte (code_of `Addl2);
          operand a;
          operand b
      | Isa.Addl3 (a, b, c) ->
          byte (code_of `Addl3);
          operand a;
          operand b;
          operand c
      | Isa.Subl2 (a, b) ->
          byte (code_of `Subl2);
          operand a;
          operand b
      | Isa.Subl3 (a, b, c) ->
          byte (code_of `Subl3);
          operand a;
          operand b;
          operand c
      | Isa.Mull2 (a, b) ->
          byte (code_of `Mull2);
          operand a;
          operand b
      | Isa.Divl2 (a, b) ->
          byte (code_of `Divl2);
          operand a;
          operand b
      | Isa.Divl3 (a, b, c) ->
          byte (code_of `Divl3);
          operand a;
          operand b;
          operand c
      | Isa.Mnegl (a, b) ->
          byte (code_of `Mnegl);
          operand a;
          operand b
      | Isa.Cmpl (a, b) ->
          byte (code_of `Cmpl);
          operand a;
          operand b
      | Isa.Tstl a ->
          byte (code_of `Tstl);
          operand a
      | Isa.Beql l -> branch `Beql l
      | Isa.Bneq l -> branch `Bneq l
      | Isa.Blss l -> branch `Blss l
      | Isa.Bleq l -> branch `Bleq l
      | Isa.Bgtr l -> branch `Bgtr l
      | Isa.Bgeq l -> branch `Bgeq l
      | Isa.Brb l -> branch `Brb l
      | Isa.Calls (n, l) ->
          byte (code_of `Calls);
          byte n;
          u16 (sym l)
      | Isa.Ret -> byte (code_of `Ret)
      | Isa.Halt -> byte (code_of `Halt))
    instrs;
  { o_code = Buffer.to_bytes buf; o_symbols = Array.of_list (List.rev !symbols) }

let decode obj =
  let code = obj.o_code in
  let n = Bytes.length code in
  let pos = ref 0 in
  let fail msg = invalid_arg ("Encode.decode: " ^ msg) in
  let byte () =
    if !pos >= n then fail "truncated";
    let b = Char.code (Bytes.get code !pos) in
    incr pos;
    b
  in
  let u16 () =
    let lo = byte () in
    let hi = byte () in
    lo lor (hi lsl 8)
  in
  let i32 () =
    let b0 = byte () and b1 = byte () and b2 = byte () and b3 = byte () in
    let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
    (* sign extend from 32 bits *)
    if v land 0x80000000 <> 0 then v - (1 lsl 32) else v
  in
  let symbol () =
    let i = u16 () in
    if i >= Array.length obj.o_symbols then fail "bad symbol index";
    obj.o_symbols.(i)
  in
  let operand () =
    let b = byte () in
    if b = m_imm then Isa.Imm (i32 ())
    else if b = m_lbl then Isa.Lbl (symbol ())
    else
      let mode = b land 0xf0 and r = b land 0x0f in
      if mode = m_reg then Isa.Reg r
      else if mode = m_deref then Isa.Deref r
      else if mode = m_predec then Isa.PreDec r
      else if mode = m_postinc then Isa.PostInc r
      else if mode = m_disp then Isa.Disp (i32 (), r)
      else fail (Printf.sprintf "bad operand byte 0x%02x" b)
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  let rev_opcodes = List.map (fun (a, b) -> (b, a)) opcodes in
  while !pos < n do
    let op =
      match List.assoc_opt (byte ()) rev_opcodes with
      | Some op -> op
      | None -> fail "bad opcode"
    in
    match op with
    | `LabelMark -> emit (Isa.Label (symbol ()))
    | `Movl ->
        let a = operand () in
        emit (Isa.Movl (a, operand ()))
    | `Moval ->
        let a = operand () in
        emit (Isa.Moval (a, operand ()))
    | `Pushl -> emit (Isa.Pushl (operand ()))
    | `Addl2 ->
        let a = operand () in
        emit (Isa.Addl2 (a, operand ()))
    | `Addl3 ->
        let a = operand () in
        let b = operand () in
        emit (Isa.Addl3 (a, b, operand ()))
    | `Subl2 ->
        let a = operand () in
        emit (Isa.Subl2 (a, operand ()))
    | `Subl3 ->
        let a = operand () in
        let b = operand () in
        emit (Isa.Subl3 (a, b, operand ()))
    | `Mull2 ->
        let a = operand () in
        emit (Isa.Mull2 (a, operand ()))
    | `Divl2 ->
        let a = operand () in
        emit (Isa.Divl2 (a, operand ()))
    | `Divl3 ->
        let a = operand () in
        let b = operand () in
        emit (Isa.Divl3 (a, b, operand ()))
    | `Mnegl ->
        let a = operand () in
        emit (Isa.Mnegl (a, operand ()))
    | `Cmpl ->
        let a = operand () in
        emit (Isa.Cmpl (a, operand ()))
    | `Tstl -> emit (Isa.Tstl (operand ()))
    | `Beql -> emit (Isa.Beql (symbol ()))
    | `Bneq -> emit (Isa.Bneq (symbol ()))
    | `Blss -> emit (Isa.Blss (symbol ()))
    | `Bleq -> emit (Isa.Bleq (symbol ()))
    | `Bgtr -> emit (Isa.Bgtr (symbol ()))
    | `Bgeq -> emit (Isa.Bgeq (symbol ()))
    | `Brb -> emit (Isa.Brb (symbol ()))
    | `Calls ->
        let k = byte () in
        emit (Isa.Calls (k, symbol ()))
    | `Ret -> emit Isa.Ret
    | `Halt -> emit Isa.Halt
  done;
  List.rev !out

let encoded_size instrs =
  let obj = encode instrs in
  Bytes.length obj.o_code
  + Array.fold_left (fun a s -> a + String.length s + 2) 0 obj.o_symbols
