lib/util/rope.mli: Format
