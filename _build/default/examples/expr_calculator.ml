(* The compiler-generator workflow of the paper's appendix: load an
   attribute-grammar specification, generate scanner + LALR(1) parser +
   evaluators from it, and evaluate sentences.

   Run with:
     dune exec examples/expr_calculator.exe                      (demo)
     dune exec examples/expr_calculator.exe -- "1 + 2 * 3"       (one shot)
     dune exec examples/expr_calculator.exe -- --machines 3 "..." *)

open Agspec

let () =
  let args = Array.to_list Sys.argv in
  let machines, exprs =
    let rec go = function
      | "--machines" :: n :: rest ->
          let m, es = go rest in
          ignore m;
          (int_of_string n, es)
      | e :: rest ->
          let m, es = go rest in
          (m, e :: es)
      | [] -> (1, [])
    in
    go (List.tl args)
  in
  let t = Lazy.force Appendix.translator in
  Printf.printf
    "generated from the appendix specification: %d parser states, grammar %s\n"
    (Lrgen.Lalr.state_count (Compile.tables t))
    (match Compile.plan t with
    | Some _ -> "is ordered (static evaluation)"
    | None -> "needs dynamic evaluation");
  let eval src =
    let tree = Compile.parse t src in
    let value =
      if machines <= 1 then List.assoc "value" (Compile.evaluate t tree)
      else begin
        let r =
          Compile.evaluate_parallel t
            {
              Pag_parallel.Runner.default_options with
              Pag_parallel.Runner.machines = machines;
              use_librarian = false;
            }
            tree
        in
        List.assoc "value" r.Pag_parallel.Runner.r_attrs
      end
    in
    Printf.printf "%-50s = %s\n" src (Pag_core.Value.to_string value)
  in
  if exprs <> [] then List.iter eval exprs
  else begin
    List.iter eval
      [
        "1 + 2 * 3";
        "(1 + 2) * 3";
        "let x = 2 in 1 + 2 * x ni";
        "let a = 3 in let b = a * a in a + b ni ni";
      ]
  end
