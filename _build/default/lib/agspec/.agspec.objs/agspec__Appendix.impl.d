lib/agspec/appendix.ml: Compile Lazy Spec_parser
