(* agrun — the evaluator generator's driver.

   Loads an attribute-grammar specification (the appendix language),
   generates scanner, LALR(1) parser and evaluators from it, then parses and
   evaluates input sentences, printing the root attributes.

     agrun spec.ag "let x = 2 in 1 + 2 * x ni"
     agrun --builtin-appendix "1 + 2 * 3"
     agrun --machines 3 spec.ag sentence.txt-or-literal *)

open Cmdliner
open Agspec

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_agrun builtin spec_file machines schedule show_plan profile batch
    sentences =
  try
    let t =
      if builtin then Lazy.force Appendix.translator
      else
        match spec_file with
        | Some f -> Compile.translator (Spec_parser.parse (read_file f))
        | None ->
            Printf.eprintf "either a spec file or --builtin-appendix is required\n";
            exit 1
    in
    Printf.eprintf "parser: %d states%s; grammar: %s\n"
      (Lrgen.Lalr.state_count (Compile.tables t))
      (match Lrgen.Lalr.conflicts (Compile.tables t) with
      | [] -> ""
      | cs -> Printf.sprintf " (%d conflicts)" (List.length cs))
      (match Compile.plan t with
      | Some _ -> "ordered (static evaluation)"
      | None -> "not ordered (dynamic evaluation)");
    if show_plan then
      Option.iter
        (fun p ->
          Format.eprintf "%a@." Pag_analysis.Kastens.pp_plan p)
        (Compile.plan t);
    if profile && machines <= 1 then
      Printf.eprintf "agrun: --profile requires --machines >= 2\n";
    let eval src =
      let tree = Compile.parse t src in
      let attrs =
        if machines <= 1 then Compile.evaluate t tree
        else begin
          let schedule =
            match schedule with
            | "steal" -> `Steal
            | "dynamic" -> `Dynamic
            | _ -> `Static
          in
          let r =
            Compile.evaluate_parallel t
              (Pag_parallel.Session.options
                 (Pag_parallel.Session.spec ~schedule ~librarian:false
                    ~provenance:profile machines))
              tree
          in
          (match r.Pag_parallel.Runner.r_prov with
          | (_ :: _) as provs when profile ->
              prerr_string
                (Pag_eval.Causal.render_profile
                   (Pag_eval.Causal.profile (Pag_eval.Causal.build provs)))
          | _ -> ());
          r.Pag_parallel.Runner.r_attrs
        end
      in
      Printf.printf "%s\n" src;
      List.iter
        (fun (name, v) ->
          Printf.printf "  %s = %s\n" name (Pag_core.Value.to_string v))
        attrs
    in
    if batch > 1 && List.length sentences > 1 then begin
      (* incremental session: the first sentence stays resident, the rest
         are edits applied in merged waves of up to [batch] — independent
         dirty cones refire together, conflicting ones serialize. *)
      let open Pag_eval in
      let g = Compile.grammar t in
      let first, rest =
        match sentences with s :: tl -> (s, tl) | [] -> assert false
      in
      let s = Incr.start g (Compile.parse t first) in
      let rec chunks = function
        | [] -> []
        | l ->
            let rec take n = function
              | x :: tl when n > 0 ->
                  let h, r = take (n - 1) tl in
                  (x :: h, r)
              | r -> ([], r)
            in
            let h, r = take batch l in
            h :: chunks r
      in
      List.iter
        (fun srcs ->
          let wv = Incr.edit_batch s (List.map (Compile.parse t) srcs) in
          Printf.eprintf
            "batch of %d: %d wave(s), %d conflict(s), dirty %d refired %d \
             cutoff %d%s\n"
            wv.Incr.wv_edits wv.Incr.wv_waves wv.Incr.wv_conflicts
            wv.Incr.wv_dirty wv.Incr.wv_refired wv.Incr.wv_cutoff
            (if wv.Incr.wv_fallbacks > 0 then
               Printf.sprintf " (%d fallback rebuilds)" wv.Incr.wv_fallbacks
             else ""))
        (chunks rest);
      (match List.rev sentences with
      | last :: _ -> Printf.printf "%s\n" last
      | [] -> ());
      List.iter
        (fun (name, v) ->
          Printf.printf "  %s = %s\n" name (Pag_core.Value.to_string v))
        (Store.root_attrs (Incr.store s))
    end
    else List.iter eval sentences;
    exit 0
  with
  | Spec_parser.Error (line, msg) ->
      Printf.eprintf "spec:%d: %s\n" line msg;
      exit 1
  | Compile.Error msg | Pag_core.Grammar.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Compile.Scan_error msg ->
      Printf.eprintf "scan error: %s\n" msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let builtin_arg =
  Arg.(
    value & flag
    & info [ "builtin-appendix" ]
        ~doc:"Use the built-in specification from the paper's appendix.")

let spec_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SPEC" ~doc:"Attribute-grammar specification file.")

let machines_arg =
  Arg.(value & opt int 1 & info [ "machines"; "m" ] ~docv:"N" ~doc:"Evaluator machines.")

let schedule_arg =
  Arg.(
    value
    & opt
        (enum [ ("static", "static"); ("dynamic", "dynamic"); ("steal", "steal") ])
        "static"
    & info [ "schedule" ]
        ~doc:
          "Instance schedule for parallel runs: static (Split placement), \
           dynamic (all-dynamic classic protocol) or steal (work-stealing \
           deques over the unified engine).")

let plan_arg =
  Arg.(value & flag & info [ "plan" ] ~doc:"Print the ordered evaluation plan.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Record per-firing provenance during parallel evaluation and \
           print the critical-path profile (longest dependent rule chain \
           vs makespan, rule/machine blame) to stderr.")

let batch_edits_arg =
  Arg.(
    value & opt int 1
    & info [ "batch-edits" ] ~docv:"N"
        ~doc:
          "Treat the sentences as one incremental session: the first stays \
           resident and the rest apply as edits in merged re-evaluation \
           waves of up to $(docv) (independent dirty cones refire \
           together; conflicting edits serialize into follow-up waves). \
           Prints the final root attributes. Default 1 = evaluate each \
           sentence from scratch.")

let sentences_arg =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"SENTENCE" ~doc:"Sentences to evaluate.")

let cmd =
  let doc = "generate and run an attribute-grammar translator" in
  Cmd.v
    (Cmd.info "agrun" ~doc)
    Term.(
      const run_agrun $ builtin_arg $ spec_arg $ machines_arg $ schedule_arg
      $ plan_arg $ profile_arg $ batch_edits_arg $ sentences_arg)

let () = exit (Cmd.eval cmd)
