open Pag_core
open Pag_analysis
open Pag_eval
open Pag_parallel
open Pag_grammars

let qc ?(count = 25) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plan_of g =
  match Kastens.analyze g with
  | Ok p -> p
  | Error f -> Alcotest.failf "analysis failed: %a" Kastens.pp_failure f

let sc_plan = lazy (plan_of Stackcode_ag.grammar)
let rm_plan = lazy (plan_of Repmin_ag.grammar)
let ex_plan = lazy (plan_of Expr_ag.grammar)

let opts ?(mode = `Combined) ?(machines = 3) ?(librarian = true)
    ?(priority = true) ?(granularity = 1.0) () =
  {
    Runner.default_options with
    Runner.machines;
    mode;
    granularity;
    use_priority = priority;
    use_librarian = librarian;
  }

let sc_tree seed =
  Stackcode_ag.random_program (Random.State.make [| seed |]) ~depth:7 ~blocks:5

let int_attr attrs name = Value.as_int ~ctx:"test" (List.assoc name attrs)

let code_attr attrs =
  let c = Codestr.of_value ~ctx:"test" (List.assoc "code" attrs) in
  Stackcode_ag.mask_labels (Pag_util.Rope.to_string (Codestr.to_rope c))

(* --------------- sequential degenerate cases --------------- *)

let test_one_machine_combined_is_static () =
  let t = sc_tree 11 in
  let r = Runner.run_sim (opts ~machines:1 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_int "one fragment" 1 r.Runner.r_fragments;
  check_bool "no dynamic rules at all" true (r.Runner.r_dynamic_fraction = 0.0);
  check_int "value matches reference" (Stackcode_ag.reference_value t)
    (int_attr r.Runner.r_attrs "value")

let test_one_machine_dynamic () =
  let t = sc_tree 12 in
  let r = Runner.run_sim (opts ~mode:`Dynamic ~machines:1 ()) Stackcode_ag.grammar None t in
  check_bool "all rules dynamic" true (r.Runner.r_dynamic_fraction = 1.0);
  check_int "value" (Stackcode_ag.reference_value t) (int_attr r.Runner.r_attrs "value")

(* --------------- parallel correctness --------------- *)

let test_parallel_combined_matches_sequential () =
  let t = sc_tree 13 in
  let seq, _ = Static_eval.eval (Lazy.force sc_plan) t in
  let seq_code =
    Stackcode_ag.mask_labels
      (Pag_util.Rope.to_string
         (Codestr.to_rope
            (Codestr.of_value ~ctx:"seq" (Store.get seq (Store.root seq) "code"))))
  in
  for m = 2 to 6 do
    let r = Runner.run_sim (opts ~machines:m ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
    check_int (Printf.sprintf "value @ %d machines" m)
      (Stackcode_ag.reference_value t)
      (int_attr r.Runner.r_attrs "value");
    Alcotest.(check string)
      (Printf.sprintf "code @ %d machines" m)
      seq_code (code_attr r.Runner.r_attrs)
  done

let test_parallel_dynamic_matches () =
  let t = sc_tree 14 in
  for m = 2 to 4 do
    let r = Runner.run_sim (opts ~mode:`Dynamic ~machines:m ()) Stackcode_ag.grammar None t in
    check_int (Printf.sprintf "value @ %d machines" m)
      (Stackcode_ag.reference_value t)
      (int_attr r.Runner.r_attrs "value")
  done

let test_naive_propagation_matches () =
  let t = sc_tree 15 in
  let r = Runner.run_sim (opts ~librarian:false ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_int "value" (Stackcode_ag.reference_value t) (int_attr r.Runner.r_attrs "value");
  (* without the librarian the code arrives as plain (local) text *)
  let c = Codestr.of_value ~ctx:"naive" (List.assoc "code" r.Runner.r_attrs) in
  check_int "no unresolved fragments" 0 (Codestr.frag_count c)

let test_no_priority_matches () =
  let t = sc_tree 16 in
  let r = Runner.run_sim (opts ~priority:false ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_int "value" (Stackcode_ag.reference_value t) (int_attr r.Runner.r_attrs "value")

let test_repmin_parallel () =
  (* a multi-visit grammar through the full parallel machinery *)
  let t =
    Repmin_ag.random_tree (Random.State.make [| 99 |]) ~depth:9
  in
  let expected = Repmin_ag.reference_result t in
  for m = 1 to 4 do
    let r =
      Runner.run_sim
        { (opts ~machines:m ()) with Runner.use_librarian = false }
        Repmin_ag.grammar (Some (Lazy.force rm_plan)) t
    in
    check_bool
      (Printf.sprintf "repmin result @ %d machines" m)
      true
      (Value.equal expected (List.assoc "res" r.Runner.r_attrs))
  done

let test_expr_parallel () =
  let t = Expr_ag.random_program (Random.State.make [| 7 |]) ~depth:8 in
  let expected = Expr_ag.reference_value t in
  for m = 1 to 4 do
    let r =
      Runner.run_sim
        { (opts ~machines:m ()) with Runner.use_librarian = false }
        Expr_ag.grammar (Some (Lazy.force ex_plan)) t
    in
    check_int (Printf.sprintf "@%d machines" m) expected
      (int_attr r.Runner.r_attrs "value")
  done

(* --------------- paper-shape sanity --------------- *)

let test_combined_mostly_static () =
  (* The paper's "< 5% of attributes evaluated dynamically". On a sizable
     tree the combined evaluator's dynamic fraction must be small. *)
  let t =
    Stackcode_ag.random_program (Random.State.make [| 21 |]) ~depth:10 ~blocks:8
  in
  let r = Runner.run_sim (opts ~machines:5 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_bool
    (Printf.sprintf "dynamic fraction %.4f < 0.05" r.Runner.r_dynamic_fraction)
    true
    (r.Runner.r_dynamic_fraction < 0.05)

let test_combined_beats_dynamic_sequentially () =
  let t =
    Stackcode_ag.random_program (Random.State.make [| 22 |]) ~depth:10 ~blocks:8
  in
  let rc = Runner.run_sim (opts ~machines:1 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  let rd = Runner.run_sim (opts ~mode:`Dynamic ~machines:1 ()) Stackcode_ag.grammar None t in
  check_bool
    (Printf.sprintf "static %.3fs < dynamic %.3fs" rc.Runner.r_time rd.Runner.r_time)
    true
    (rc.Runner.r_time < rd.Runner.r_time)

let test_parallel_speedup_exists () =
  let t =
    Stackcode_ag.random_program (Random.State.make [| 23 |]) ~depth:11 ~blocks:8
  in
  let r1 = Runner.run_sim (opts ~machines:1 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  let r4 = Runner.run_sim (opts ~machines:4 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_bool
    (Printf.sprintf "1 machine %.3fs vs 4 machines %.3fs" r1.Runner.r_time
       r4.Runner.r_time)
    true
    (r4.Runner.r_time < r1.Runner.r_time)

let test_trace_present () =
  let t = sc_tree 24 in
  let r = Runner.run_sim (opts ~machines:3 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  match r.Runner.r_trace with
  | None -> Alcotest.fail "expected a trace"
  | Some tr ->
      check_bool "messages recorded" true (List.length (Netsim.Trace.arrows tr) > 0);
      check_bool "activity recorded" true (List.length (Netsim.Trace.segments tr) > 0)

(* --------------- domains transport --------------- *)

let test_domains_combined () =
  let t = sc_tree 31 in
  let r = Runner.run_domains (opts ~machines:3 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
  check_int "value" (Stackcode_ag.reference_value t) (int_attr r.Runner.r_attrs "value")

let test_domains_dynamic () =
  let t = sc_tree 32 in
  let r = Runner.run_domains (opts ~mode:`Dynamic ~machines:3 ()) Stackcode_ag.grammar None t in
  check_int "value" (Stackcode_ag.reference_value t) (int_attr r.Runner.r_attrs "value")

(* --------------- properties --------------- *)

let arb_cfg =
  QCheck.make
    ~print:(fun (s, m, lib, prio) ->
      Printf.sprintf "seed=%d machines=%d librarian=%b priority=%b" s m lib prio)
    QCheck.Gen.(
      pair (int_bound 100_000) (int_range 1 6) >>= fun (s, m) ->
      pair bool bool >>= fun (lib, prio) -> return (s, m, lib, prio))

let prop_sim_value_correct =
  qc "sim parallel = reference under any config" arb_cfg (fun (s, m, lib, prio) ->
      let t = sc_tree s in
      let r =
        Runner.run_sim
          (opts ~machines:m ~librarian:lib ~priority:prio ())
          Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t
      in
      int_attr r.Runner.r_attrs "value" = Stackcode_ag.reference_value t)

let prop_sim_deterministic =
  qc ~count:10 "simulation is deterministic" QCheck.(int_bound 10_000)
    (fun s ->
      let t = sc_tree s in
      let run () =
        let r = Runner.run_sim (opts ~machines:4 ()) Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t in
        (r.Runner.r_time, r.Runner.r_messages, r.Runner.r_bytes)
      in
      run () = run ())

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "1 machine combined = static" `Quick
          test_one_machine_combined_is_static;
        Alcotest.test_case "1 machine dynamic" `Quick test_one_machine_dynamic;
        Alcotest.test_case "combined matches sequential" `Quick
          test_parallel_combined_matches_sequential;
        Alcotest.test_case "dynamic matches" `Quick test_parallel_dynamic_matches;
        Alcotest.test_case "naive propagation" `Quick test_naive_propagation_matches;
        Alcotest.test_case "no priority" `Quick test_no_priority_matches;
        Alcotest.test_case "repmin parallel" `Quick test_repmin_parallel;
        Alcotest.test_case "expr parallel" `Quick test_expr_parallel;
        Alcotest.test_case "mostly static" `Quick test_combined_mostly_static;
        Alcotest.test_case "static beats dynamic" `Quick
          test_combined_beats_dynamic_sequentially;
        Alcotest.test_case "speedup exists" `Quick test_parallel_speedup_exists;
        Alcotest.test_case "trace present" `Quick test_trace_present;
        Alcotest.test_case "domains combined" `Quick test_domains_combined;
        Alcotest.test_case "domains dynamic" `Quick test_domains_dynamic;
        prop_sim_value_correct;
        prop_sim_deterministic;
      ] );
  ]
