(* The seed (PR 0) attribute store and dynamic evaluator, kept verbatim as
   the baseline of the store microbenchmark: per-node slot arrays behind an
   [(int, Value.t option array) Hashtbl], name-keyed attribute positions, and
   a dependency graph of consed [rule_node] lists. The library versions these
   replaced live in [lib/eval]; see ISSUE/CHANGES for the measured gap. *)

open Pag_core

module Store = struct
  type t = {
    g : Grammar.t;
    root : Tree.t;
    slots : (int, Value.t option array) Hashtbl.t; (* node id -> attr slots *)
    nodes : (int, Tree.t) Hashtbl.t;
    mutable n_sets : int;
  }

  exception Error of string

  let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

  (* Traversal that allocates slots, optionally stopping below stub nodes. *)
  let populate store ?(stop = fun _ -> false) root =
    let stack = ref [ root ] in
    let rec go () =
      match !stack with
      | [] -> ()
      | node :: rest ->
          stack := rest;
          Hashtbl.replace store.nodes node.Tree.id node;
          Hashtbl.replace store.slots node.Tree.id
            (Array.make (Grammar.attr_count store.g node.Tree.sym) None);
          if node == root || not (stop node) then
            for i = Array.length node.Tree.children - 1 downto 0 do
              stack := node.Tree.children.(i) :: !stack
            done;
          go ()
    in
    go ()

  let preset store root root_inh =
    List.iter
      (fun (attr, v) ->
        let idx = Grammar.attr_pos store.g ~sym:root.Tree.sym ~attr in
        (Hashtbl.find store.slots root.Tree.id).(idx) <- Some v)
      root_inh

  let create_shared ?(root_inh = []) ?stop g root =
    let store =
      { g; root; slots = Hashtbl.create 256; nodes = Hashtbl.create 256; n_sets = 0 }
    in
    populate store ?stop root;
    preset store root root_inh;
    store

  let create ?root_inh g root =
    ignore (Tree.number root);
    create_shared ?root_inh g root

  let grammar s = s.g

  let root s = s.root

  let node_count s = Hashtbl.length s.nodes

  let find_node s id = Hashtbl.find_opt s.nodes id

  let idx_of s node attr = Grammar.attr_pos s.g ~sym:node.Tree.sym ~attr

  let slots_of s (node : Tree.t) =
    match Hashtbl.find_opt s.slots node.Tree.id with
    | Some a -> a
    | None -> error "node %d (%s) is not covered by this store" node.Tree.id node.Tree.sym

  let set s node attr v =
    let arr = slots_of s node in
    let i = idx_of s node attr in
    match arr.(i) with
    | Some _ ->
        error "attribute %s.%s of node %d set twice" node.Tree.sym attr node.Tree.id
    | None ->
        arr.(i) <- Some v;
        s.n_sets <- s.n_sets + 1

  let get_opt s node attr =
    match node.Tree.prod with
    | None -> Some (Tree.term_attr node attr)
    | Some _ -> (slots_of s node).(idx_of s node attr)

  let get s node attr =
    match get_opt s node attr with
    | Some v -> v
    | None ->
        error "attribute %s.%s of node %d not evaluated" node.Tree.sym attr
          node.Tree.id

  let is_set s node attr = get_opt s node attr <> None

  let sets s = s.n_sets

  let root_attrs s =
    let sym = Grammar.symbol s.g s.root.Tree.sym in
    Array.to_list sym.Grammar.s_attrs
    |> List.filter_map (fun (a : Grammar.attr_decl) ->
           match get_opt s s.root a.a_name with
           | Some v -> Some (a.a_name, v)
           | None -> None)

  let node_of_ref node (r : Grammar.attr_ref) =
    if r.Grammar.pos = 0 then node else node.Tree.children.(r.Grammar.pos - 1)

  let rule_deps s node (rule : Grammar.rule) =
    ignore s;
    List.filter_map
      (fun (d : Grammar.attr_ref) ->
        let n = node_of_ref node d in
        match n.Tree.prod with
        | None -> None (* terminal intrinsic: always available *)
        | Some _ -> Some (n, d.Grammar.attr))
      rule.Grammar.r_deps

  let rule_target node (rule : Grammar.rule) =
    (node_of_ref node rule.Grammar.r_target, rule.Grammar.r_target.Grammar.attr)

  let apply_rule s node (rule : Grammar.rule) =
    let args =
      Array.of_list
        (List.map
           (fun (d : Grammar.attr_ref) -> get s (node_of_ref node d) d.Grammar.attr)
           rule.Grammar.r_deps)
    in
    let v = rule.Grammar.r_fn args in
    let tnode, tattr = rule_target node rule in
    set s tnode tattr v;
    v

  let iter_instances s f =
    (* Deterministic order: by node id. *)
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) s.nodes [] in
    List.iter
      (fun id ->
        let node = Hashtbl.find s.nodes id in
        match node.Tree.prod with
        | None -> ()
        | Some _ ->
            let sym = Grammar.symbol s.g node.Tree.sym in
            Array.iter (fun a -> f node a) sym.Grammar.s_attrs)
      (List.sort compare ids)

  let missing s =
    let n = ref 0 in
    iter_instances s (fun node a ->
        if not (is_set s node a.Grammar.a_name) then incr n);
    !n
end

module Dynamic = struct
  type stats = { instances : int; edges : int; evals : int }

  exception Cycle of string

  type rule_node = { rn_node : Tree.t; rn_rule : Grammar.rule; mutable waiting : int }

  let eval_inner ?root_inh g t =
    let store = Store.create ?root_inh g t in
    let n = Store.node_count store in
    (* Dense instance ids: base.(node id) + attribute index. *)
    let base = Array.make (n + 1) 0 in
    let nodes = Array.make n t in
    Tree.iter (fun node -> nodes.(node.Tree.id) <- node) t;
    for i = 0 to n - 1 do
      base.(i + 1) <- base.(i) + Grammar.attr_count g nodes.(i).Tree.sym
    done;
    let total = base.(n) in
    let inst node attr =
      base.(node.Tree.id) + Grammar.attr_pos g ~sym:node.Tree.sym ~attr
    in
    (* Wire rules to the instances they wait for. *)
    let dependents : rule_node list array = Array.make total [] in
    let rules = ref [] in
    let edge_count = ref 0 in
    Tree.iter
      (fun node ->
        match node.Tree.prod with
        | None -> ()
        | Some p ->
            Array.iter
              (fun (r : Grammar.rule) ->
                let rn = { rn_node = node; rn_rule = r; waiting = 0 } in
                rules := rn :: !rules;
                List.iter
                  (fun (dn, dattr) ->
                    incr edge_count;
                    if not (Store.is_set store dn dattr) then begin
                      rn.waiting <- rn.waiting + 1;
                      let i = inst dn dattr in
                      dependents.(i) <- rn :: dependents.(i)
                    end)
                  (Store.rule_deps store node r))
              p.Grammar.p_rules)
      t;
    let ready = Queue.create () in
    List.iter (fun rn -> if rn.waiting = 0 then Queue.add rn ready) !rules;
    let evals = ref 0 in
    while not (Queue.is_empty ready) do
      let rn = Queue.take ready in
      ignore (Store.apply_rule store rn.rn_node rn.rn_rule);
      incr evals;
      let tnode, tattr = Store.rule_target rn.rn_node rn.rn_rule in
      List.iter
        (fun dep ->
          dep.waiting <- dep.waiting - 1;
          if dep.waiting = 0 then Queue.add dep ready)
        dependents.(inst tnode tattr)
    done;
    let left = Store.missing store in
    if left > 0 then
      raise
        (Cycle
           (Printf.sprintf
              "dynamic evaluation stuck: %d attribute instances unevaluated \
               (circular tree or missing root attributes)"
              left));
    (store, { instances = total; edges = !edge_count; evals = !evals })

  let eval ?root_inh g t =
    let r, _ = Pag_core.Uid.with_base 0 (fun () -> eval_inner ?root_inh g t) in
    r
end
