let us t = t *. 1e6 (* trace-event timestamps are microseconds *)

let pids_of r =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let note pid =
    if pid >= 0 && not (Hashtbl.mem seen pid) then begin
      Hashtbl.add seen pid ();
      order := pid :: !order
    end
  in
  Obs.iter r (fun e ->
      note e.Obs.e_pid;
      if e.Obs.e_kind = Obs.Flow then note e.Obs.e_dst);
  List.sort compare !order

let chrome ~names r =
  let b = Buffer.create (256 * (Obs.length r + 8)) in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char b ',';
        Buffer.add_string b "\n";
        Buffer.add_string b s)
      fmt
  in
  (* One track ("process") per machine. *)
  List.iter
    (fun pid ->
      emit
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
        pid
        (Obs.Json.escape (names pid)))
    (pids_of r);
  let flow_id = ref 0 in
  Obs.iter r (fun e ->
      let name = Obs.Json.escape e.Obs.e_name in
      match e.Obs.e_kind with
      | Obs.Span ->
          emit
            "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"dur\":%s}"
            name e.Obs.e_pid
            (Obs.Json.num (us e.Obs.e_t0))
            (Obs.Json.num (us (e.Obs.e_t1 -. e.Obs.e_t0)))
      | Obs.Instant ->
          emit
            "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":%s}"
            name e.Obs.e_pid
            (Obs.Json.num (us e.Obs.e_t0))
      | Obs.Flow ->
          let id = !flow_id in
          incr flow_id;
          (* Tiny slices at both ends give the flow arrows something to
             attach to in Perfetto. *)
          emit
            "{\"name\":\"send %s\",\"cat\":\"msg\",\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"dur\":1}"
            name e.Obs.e_pid
            (Obs.Json.num (us e.Obs.e_t0));
          emit
            "{\"name\":\"recv %s\",\"cat\":\"msg\",\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"dur\":1}"
            name e.Obs.e_dst
            (Obs.Json.num (us e.Obs.e_t1));
          emit
            "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":%d,\"pid\":%d,\"tid\":0,\"ts\":%s}"
            name id e.Obs.e_pid
            (Obs.Json.num (us e.Obs.e_t0));
          emit
            "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":%d,\"tid\":0,\"ts\":%s}"
            name id e.Obs.e_dst
            (Obs.Json.num (us e.Obs.e_t1)))
  ;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let jsonl ~names r =
  let b = Buffer.create (128 * (Obs.length r + 1)) in
  Obs.iter r (fun e ->
      (match e.Obs.e_kind with
      | Obs.Span ->
          Printf.bprintf b
            "{\"kind\":\"span\",\"pid\":%d,\"machine\":\"%s\",\"name\":\"%s\",\"t0\":%s,\"t1\":%s}"
            e.Obs.e_pid
            (Obs.Json.escape (names e.Obs.e_pid))
            (Obs.Json.escape e.Obs.e_name)
            (Obs.Json.num e.Obs.e_t0) (Obs.Json.num e.Obs.e_t1)
      | Obs.Instant ->
          Printf.bprintf b
            "{\"kind\":\"event\",\"pid\":%d,\"machine\":\"%s\",\"name\":\"%s\",\"t\":%s}"
            e.Obs.e_pid
            (Obs.Json.escape (names e.Obs.e_pid))
            (Obs.Json.escape e.Obs.e_name)
            (Obs.Json.num e.Obs.e_t0)
      | Obs.Flow ->
          Printf.bprintf b
            "{\"kind\":\"flow\",\"src\":%d,\"dst\":%d,\"name\":\"%s\",\"send\":%s,\"recv\":%s}"
            e.Obs.e_pid e.Obs.e_dst
            (Obs.Json.escape e.Obs.e_name)
            (Obs.Json.num e.Obs.e_t0) (Obs.Json.num e.Obs.e_t1));
      Buffer.add_char b '\n');
  Buffer.contents b
