(** Parse trees for an attribute grammar.

    Interior nodes are production applications; leaves are terminal
    occurrences carrying the intrinsic attribute values computed by the
    scanner. Construction validates arity and symbol agreement against the
    grammar. Node identifiers are assigned by {!number} (preorder) and are
    what evaluators key their attribute-instance stores on. *)

type t = {
  mutable id : int;
  sym : string;
  sym_id : int;  (** {!Grammar.sym_id} of [sym]: O(1) symbol-table access *)
  prod : Grammar.production option;  (** [None] iff terminal leaf *)
  children : t array;
  term_attrs : (string * Value.t) list;
}

exception Error of string

(** [node g prod_name children] builds an interior node. Children must match
    the production's right-hand side left to right. *)
val node : Grammar.t -> string -> t list -> t

(** [leaf g term attrs] builds a terminal leaf; all of the terminal's
    intrinsic attributes must be supplied. *)
val leaf : Grammar.t -> string -> (string * Value.t) list -> t

(** Assign preorder ids starting at 0; returns the number of nodes. *)
val number : t -> int

(** Node count. *)
val size : t -> int

(** Estimated size in bytes of the linearized network representation, the
    quantity the paper's minimum-split-size is compared against. *)
val byte_size : t -> int

val iter : (t -> unit) -> t -> unit

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Intrinsic value of a terminal attribute. Raises [Error] on non-leaves. *)
val term_attr : t -> string -> Value.t

(** [check g t] re-validates an externally constructed tree (e.g. one
    rebuilt from a network message) against the grammar. *)
val check : Grammar.t -> t -> unit

(** {1 Edits}

    Support for edit-driven recompilation ({!Pag_eval.Incr}): a source edit
    becomes a subtree replacement on the previous parse tree, found by
    {!diff} and applied in place by {!replace_subtree} so every untouched
    node keeps its physical identity and preorder id. *)

(** Node with the given preorder id, if present. O(size). *)
val find : t -> int -> t option

(** Assign preorder ids starting at [start]; returns the next unused id.
    Used to number a replacement subtree past the host tree's ids. *)
val number_from : t -> int -> int

(** Structural equality: same productions, same shape, equal terminal
    attribute values. Ignores node ids. *)
val equal : t -> t -> bool

(** [replace_subtree g ~parent ~pos repl] swaps child [pos] of [parent] for
    [repl] in place and returns the detached subtree. The replacement must
    carry the symbol the parent's production requires at that position and
    is re-validated with {!check}. Insertions and deletions are expressed
    as replacements of the enclosing list-spine node (productions have
    fixed arity). *)
val replace_subtree : Grammar.t -> parent:t -> pos:int -> t -> t

type delta =
  | Equal  (** the trees are structurally equal *)
  | Root  (** they differ at the root: no enclosing replacement site *)
  | Subtree of { parent : t; pos : int; repl : t }
      (** [parent] (a node of the {e first} tree) has exactly one differing
          child at [pos]; grafting [repl] (a node of the {e second} tree)
          there makes the trees equal *)

(** Minimal single-subtree delta between two trees with the same root
    symbol. Raises [Error] when the root symbols differ. *)
val diff : t -> t -> delta

(** {1 Structural sharing}

    {!sharing} computes the DAG view of a tree: every node is assigned a
    class id such that two nodes share a class {e iff} their subtrees are
    structurally identical (same productions, same shape, equal terminal
    attribute values). Classes are exact — they are found by bottom-up
    shape interning, with terminal attributes canonicalized through
    {!Value.intern} so key comparison is identity-based — which is what
    lets an evaluator reuse one occurrence's synthesized attributes for
    another occurrence of the same class without changing semantics
    (provided the inherited context matches; that check is the memo key's
    other half and lives in the evaluators). *)

type sharing = {
  sh_classes : int;  (** number of distinct subtree classes *)
  sh_class : int array;  (** node id -> class id *)
  sh_size : int array;  (** class id -> nodes in one subtree of the class *)
  sh_rep : int array;
      (** class id -> node id of the first (preorder) occurrence *)
  sh_occurs : int array;  (** class id -> number of occurrences *)
}

(** Requires {!number} to have assigned preorder ids (so a subtree with
    root id [i] and class [c] covers exactly ids [i .. i + sh_size.(c) - 1],
    the contiguity that slot-range snapshot/replay relies on). *)
val sharing : t -> sharing

(** Canonical DAG form: {!sharing} plus per-class child edges and the
    occurrence map as a CSR partition. This is the evaluation substrate of
    the DAG engine ({!Pag_eval.Dag}): one vertex per class, edges to child
    classes, and for each class the ascending list of tree occurrences.

    Invariants (property-tested in [test_dag]):
    - the occurrence lists partition the node ids: every id appears in
      exactly one class's list;
    - [dg_occ.(dg_occ_off.(c))] = [sh_rep.(c)] — the first (lowest-id)
      occurrence leads its class;
    - occurrences of one class are pairwise disjoint subtrees (equal sizes
      force it), so projecting one occurrence's slot range onto another is
      an offset translation. *)
type dag = {
  dg_sharing : sharing;
  dg_kids : int array array;  (** class id -> child class ids *)
  dg_occ_off : int array;  (** class id -> offset into [dg_occ]; length classes+1 *)
  dg_occ : int array;  (** occurrence node ids, grouped by class, ascending *)
}

(** Requires {!number}, like {!sharing}. *)
val dag : t -> dag

val pp : Format.formatter -> t -> unit
