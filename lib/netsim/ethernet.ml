type params = {
  latency : float;
  bandwidth : float;
  send_overhead : float;
  send_per_byte : float;
  contention : bool;
  switched : bool;
}

let default_params =
  {
    latency = 0.001;
    bandwidth = 1_250_000.0 (* 10 Mbit/s *);
    send_overhead = 0.0005;
    send_per_byte = 2e-7;
    contention = true;
    switched = false;
  }

let switched_params = { default_params with switched = true }

type t = {
  p : params;
  mutable free_at : float;  (* shared medium *)
  mutable ports : float array;  (* switched: per-port link free times *)
  mutable bytes : int;
  mutable messages : int;
  mutable queue_time : float;
}

let create p =
  {
    p;
    free_at = 0.0;
    ports = [||];
    bytes = 0;
    messages = 0;
    queue_time = 0.0;
  }

let params t = t.p

(* In switched mode each port owns a full-bandwidth link into the switch
   fabric: transmissions queue only behind earlier traffic on the same
   port, never behind other ports'. The port index is the caller's choice
   of bottleneck link — a star topology charges a coordinator-to-worker
   message to the worker's edge link. *)
let port_free t port =
  if port >= Array.length t.ports then begin
    let a = Array.make (max (port + 1) (2 * max 1 (Array.length t.ports))) 0.0 in
    Array.blit t.ports 0 a 0 (Array.length t.ports);
    t.ports <- a
  end;
  t.ports.(port)

let transmit ?(jitter = 0.0) ?(port = 0) t ~now ~size =
  let tx = float_of_int size /. t.p.bandwidth in
  let start =
    if t.p.switched then max now (port_free t port)
    else if t.p.contention then max now t.free_at
    else now
  in
  (if t.p.switched then begin
     t.queue_time <- t.queue_time +. (start -. now);
     t.ports.(port) <- start +. tx
   end
   else if t.p.contention then begin
     t.queue_time <- t.queue_time +. (start -. now);
     t.free_at <- start +. tx
   end);
  t.bytes <- t.bytes + size;
  t.messages <- t.messages + 1;
  start +. tx +. t.p.latency +. jitter

let sender_cost t ~size =
  t.p.send_overhead +. (float_of_int size *. t.p.send_per_byte)

let bytes_sent t = t.bytes

let messages_sent t = t.messages

let contention_time t = t.queue_time
