test/test_split.ml: Alcotest Array Format Grammar Hashtbl List Option Pag_core Pag_grammars Pag_parallel Printf QCheck QCheck_alcotest Random Split Stackcode_ag String Tree
