(** Mutable binary min-heap keyed by float priority.

    Used as the event queue of the discrete-event simulator and for
    priority-attribute scheduling. Entries with equal priority come out in
    insertion order (the heap is stabilized with a sequence number), which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> float -> 'a -> unit

(** Lowest priority first; [None] when empty. *)
val pop_min : 'a t -> (float * 'a) option

val peek_min : 'a t -> (float * 'a) option

val size : 'a t -> int

val is_empty : 'a t -> bool
