type t = { lo : int; hi : int; words : int array }

let bits = Sys.int_size

let make ~lo ~hi =
  let n = if hi < lo then 0 else hi - lo + 1 in
  { lo; hi; words = Array.make ((n + bits - 1) / bits) 0 }

let add t i =
  if i < t.lo || i > t.hi then
    invalid_arg (Printf.sprintf "Bitset.add: %d outside %d..%d" i t.lo t.hi);
  let k = i - t.lo in
  t.words.(k / bits) <- t.words.(k / bits) lor (1 lsl (k mod bits))

let mem t i =
  i >= t.lo && i <= t.hi
  &&
  let k = i - t.lo in
  t.words.(k / bits) land (1 lsl (k mod bits)) <> 0

(* popcount, one word at a time *)
let count_word w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + count_word w) 0 t.words
