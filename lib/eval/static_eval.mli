(** Static (ordered) attribute evaluator (paper, section 2.3, figures 2-3).

    Interprets the visit sequences produced by {!Pag_analysis.Kastens}: a
    collection of mutually recursive visit procedures, one per production,
    walking the tree in the order fixed at generation time. No dependency
    analysis happens at evaluation time — the efficiency edge the combined
    evaluator inherits for the static parts of its tree. *)

open Pag_core
open Pag_analysis

type stats = {
  visits : int;  (** visit-procedure invocations *)
  evals : int;  (** semantic rules fired *)
}

(** [eval ?obs plan t] evaluates the whole tree. With a live [obs] context,
    phase spans (store build, the visit passes) and the evaluation counters
    ([eval.visits], [eval.static_rules], [store.reads]/[store.writes]) are
    recorded; with the default {!Pag_obs.Obs.null_ctx} the instrumentation
    costs one branch per phase and nothing per rule.

    [~hashcons:true] runs the {!Tree.sharing} pass first and evaluates the
    DAG view through a {!Memo}: each shared subtree's visit is evaluated
    once per inherited fingerprint and replayed at its other occurrences
    ([eval.memo_hits]/[eval.memo_misses] count the outcomes). Semantics are
    unchanged — mismatching contexts, fragment boundaries and
    label-consuming subtrees all fall back to ordinary evaluation.

    [prov] attaches a provenance ring to the run's engine: every firing is
    recorded (memoized replays as synthetic [replay] records), timed by
    [prov_clock] (default: the obs clock when live, else [Sys.time]).
    [engine_out] receives the engine before evaluation starts, so callers
    can keep it for post-run analysis ({!Causal}). *)
val eval :
  ?obs:Pag_obs.Obs.ctx ->
  ?root_inh:(string * Value.t) list ->
  ?hashcons:bool ->
  ?prov:Pag_obs.Prov.t ->
  ?prov_clock:(unit -> float) ->
  ?engine_out:(Engine.t -> unit) ->
  Kastens.plan ->
  Tree.t ->
  Store.t * stats

(** [visit plan engine node v] runs visit [v] of [node] against an existing
    {!Engine} (and its store) — the entry point the combined evaluator uses
    on the roots of its static subtrees. Returns (visits, evals) performed;
    a memoized subtree replay counts as one visit and no evals. *)
val visit :
  ?memo:Memo.t -> Kastens.plan -> Engine.t -> Tree.t -> int -> int * int
