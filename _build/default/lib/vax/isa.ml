type reg = int

let r0 = 0
let r1 = 1
let r2 = 2
let ap = 12
let fp = 13
let sp = 14

type operand =
  | Imm of int
  | Reg of reg
  | Deref of reg
  | Disp of int * reg
  | PostInc of reg
  | PreDec of reg
  | Lbl of string

type instr =
  | Label of string
  | Comment of string
  | Movl of operand * operand
  | Moval of operand * operand
  | Pushl of operand
  | Addl2 of operand * operand
  | Addl3 of operand * operand * operand
  | Subl2 of operand * operand
  | Subl3 of operand * operand * operand
  | Mull2 of operand * operand
  | Divl2 of operand * operand
  | Divl3 of operand * operand * operand
  | Mnegl of operand * operand
  | Cmpl of operand * operand
  | Tstl of operand
  | Beql of string
  | Bneq of string
  | Blss of string
  | Bleq of string
  | Bgtr of string
  | Bgeq of string
  | Brb of string
  | Calls of int * string
  | Ret
  | Halt

let reg_name = function
  | 12 -> "ap"
  | 13 -> "fp"
  | 14 -> "sp"
  | 15 -> "pc"
  | n -> Printf.sprintf "r%d" n

let pp_operand fmt = function
  | Imm n -> Format.fprintf fmt "$%d" n
  | Reg r -> Format.pp_print_string fmt (reg_name r)
  | Deref r -> Format.fprintf fmt "(%s)" (reg_name r)
  | Disp (d, r) -> Format.fprintf fmt "%d(%s)" d (reg_name r)
  | PostInc r -> Format.fprintf fmt "(%s)+" (reg_name r)
  | PreDec r -> Format.fprintf fmt "-(%s)" (reg_name r)
  | Lbl l -> Format.pp_print_string fmt l

let pp2 fmt op a b =
  Format.fprintf fmt "\t%s\t%a,%a" op pp_operand a pp_operand b

let pp3 fmt op a b c =
  Format.fprintf fmt "\t%s\t%a,%a,%a" op pp_operand a pp_operand b pp_operand c

let pp_instr fmt = function
  | Label l -> Format.fprintf fmt "%s:" l
  | Comment c -> Format.fprintf fmt "# %s" c
  | Movl (a, b) -> pp2 fmt "movl" a b
  | Moval (a, b) -> pp2 fmt "moval" a b
  | Pushl a -> Format.fprintf fmt "\tpushl\t%a" pp_operand a
  | Addl2 (a, b) -> pp2 fmt "addl2" a b
  | Addl3 (a, b, c) -> pp3 fmt "addl3" a b c
  | Subl2 (a, b) -> pp2 fmt "subl2" a b
  | Subl3 (a, b, c) -> pp3 fmt "subl3" a b c
  | Mull2 (a, b) -> pp2 fmt "mull2" a b
  | Divl2 (a, b) -> pp2 fmt "divl2" a b
  | Divl3 (a, b, c) -> pp3 fmt "divl3" a b c
  | Mnegl (a, b) -> pp2 fmt "mnegl" a b
  | Cmpl (a, b) -> pp2 fmt "cmpl" a b
  | Tstl a -> Format.fprintf fmt "\ttstl\t%a" pp_operand a
  | Beql l -> Format.fprintf fmt "\tbeql\t%s" l
  | Bneq l -> Format.fprintf fmt "\tbneq\t%s" l
  | Blss l -> Format.fprintf fmt "\tblss\t%s" l
  | Bleq l -> Format.fprintf fmt "\tbleq\t%s" l
  | Bgtr l -> Format.fprintf fmt "\tbgtr\t%s" l
  | Bgeq l -> Format.fprintf fmt "\tbgeq\t%s" l
  | Brb l -> Format.fprintf fmt "\tbrb\t%s" l
  | Calls (n, l) -> Format.fprintf fmt "\tcalls\t$%d,%s" n l
  | Ret -> Format.pp_print_string fmt "\tret"
  | Halt -> Format.pp_print_string fmt "\thalt"

let to_string instrs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun i ->
      Buffer.add_string buf (Format.asprintf "%a" pp_instr i);
      Buffer.add_char buf '\n')
    instrs;
  Buffer.contents buf
