lib/netsim/sim.ml: Effect Ethernet Hashtbl List Pag_util Pqueue Printf Queue String Trace
