lib/core/uid.ml: Domain Fun
