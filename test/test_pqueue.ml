open Pag_util

let qc ?(count = 200) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let q = Pqueue.create () in
  check_bool "is_empty" true (Pqueue.is_empty q);
  check_bool "pop of empty" true (Pqueue.pop_min q = None);
  check_bool "peek of empty" true (Pqueue.peek_min q = None)

let test_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q p v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = match Pqueue.pop_min q with Some (_, v) -> v | None -> "?" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_fifo_on_ties () =
  (* Determinism of the simulator depends on FIFO tie-breaking. *)
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q 1.0 v) [ "first"; "second"; "third" ];
  Pqueue.add q 0.5 "early";
  let pop () = match Pqueue.pop_min q with Some (_, v) -> v | None -> "?" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  let x4 = pop () in
  Alcotest.(check (list string))
    "insertion order preserved"
    [ "early"; "first"; "second"; "third" ]
    [ x1; x2; x3; x4 ]

let test_peek_does_not_pop () =
  let q = Pqueue.create () in
  Pqueue.add q 1.0 42;
  check_bool "peek" true (Pqueue.peek_min q = Some (1.0, 42));
  check_int "size unchanged" 1 (Pqueue.size q);
  check_bool "pop" true (Pqueue.pop_min q = Some (1.0, 42));
  check_int "now empty" 0 (Pqueue.size q)

let test_interleaved () =
  let q = Pqueue.create () in
  Pqueue.add q 5.0 5;
  Pqueue.add q 1.0 1;
  check_bool "pop 1" true (Pqueue.pop_min q = Some (1.0, 1));
  Pqueue.add q 3.0 3;
  Pqueue.add q 0.5 0;
  check_bool "pop 0" true (Pqueue.pop_min q = Some (0.5, 0));
  check_bool "pop 3" true (Pqueue.pop_min q = Some (3.0, 3));
  check_bool "pop 5" true (Pqueue.pop_min q = Some (5.0, 5))

let prop_heapsort =
  qc "popping yields sorted priorities"
    QCheck.(list (float_bound_inclusive 1000.))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.add q p i) prios;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

let prop_size =
  qc "size tracks adds and pops"
    QCheck.(list (float_bound_inclusive 100.))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.add q p i) prios;
      let n = List.length prios in
      Pqueue.size q = n
      &&
      (ignore (Pqueue.pop_min q);
       Pqueue.size q = max 0 (n - 1)))

(* The queue against a sorted-assoc-list model: the model keeps
   (priority, seq) pairs ordered lexicographically, which is exactly
   min-priority with FIFO tie-breaking (seq is the insertion number).
   [Some p] adds with priority [p]; [None] pops and compares. *)
let prop_model =
  qc "random add/pop sequence matches sorted-list model"
    QCheck.(list (option (float_bound_inclusive 3.)))
    (fun ops ->
      (* priorities from a tiny range so ties actually occur *)
      let q = Pqueue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some p ->
              Pqueue.add q p !seq;
              model := List.merge compare !model [ (p, !seq) ];
              incr seq
          | None -> (
              match !model with
              | [] -> ok := !ok && Pqueue.pop_min q = None
              | (p, v) :: rest ->
                  model := rest;
                  ok := !ok && Pqueue.pop_min q = Some (p, v)))
        ops;
      !ok && Pqueue.size q = List.length !model)

let suite =
  [
    ( "pqueue",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "order" `Quick test_order;
        Alcotest.test_case "fifo ties" `Quick test_fifo_on_ties;
        Alcotest.test_case "peek" `Quick test_peek_does_not_pop;
        Alcotest.test_case "interleaved" `Quick test_interleaved;
        prop_heapsort;
        prop_size;
        prop_model;
      ] );
  ]
