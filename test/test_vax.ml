open Vax

let qc ?(count = 100) name gen prop = Qc_seed.qc ~count name gen prop

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let run_ok ?input instrs =
  match Machine.run ?input instrs with
  | Ok o -> o.Machine.output
  | Error e -> Alcotest.failf "machine fault: %s" (Machine.error_to_string e)

let print_int_of v =
  Isa.[ Pushl (Imm v); Calls (1, "_print_int"); Halt ]

let test_print_int () = check_str "print 42" "42" (run_ok (print_int_of 42))

let test_negative () = check_str "print -7" "-7" (run_ok (print_int_of (-7)))

let test_arith () =
  let out =
    run_ok
      Isa.
        [
          Movl (Imm 10, Reg 0);
          Addl2 (Imm 5, Reg 0);
          Mull2 (Imm 3, Reg 0);
          Subl2 (Imm 1, Reg 0);
          Divl2 (Imm 4, Reg 0);
          Pushl (Reg 0);
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "(10+5)*3-1 / 4 = 11" "11" out

let test_addl3 () =
  let out =
    run_ok
      Isa.
        [
          Addl3 (Imm 2, Imm 3, Reg 1);
          Subl3 (Imm 2, Reg 1, Reg 2);
          (* r2 = r1 - 2 = 3 *)
          Pushl (Reg 2);
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "3" "3" out

let test_memory_and_stack () =
  let out =
    run_ok
      Isa.
        [
          Pushl (Imm 11);
          Pushl (Imm 22);
          Movl (PostInc 14, Reg 0);
          (* pops 22 *)
          Movl (PostInc 14, Reg 1);
          (* pops 11 *)
          Subl3 (Reg 1, Reg 0, Reg 2);
          (* r2 = r0 - r1 = 11 *)
          Pushl (Reg 2);
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "stack pops" "11" out

let test_branches () =
  let out =
    run_ok
      Isa.
        [
          Movl (Imm 3, Reg 0);
          Cmpl (Reg 0, Imm 5);
          Blss "less";
          Pushl (Imm 0);
          Calls (1, "_print_int");
          Brb "end";
          Label "less";
          Pushl (Imm 1);
          Calls (1, "_print_int");
          Label "end";
          Halt;
        ]
  in
  check_str "3 < 5 branch taken" "1" out

let test_loop () =
  (* sum 1..10 *)
  let out =
    run_ok
      Isa.
        [
          Movl (Imm 0, Reg 0);
          Movl (Imm 1, Reg 1);
          Label "loop";
          Cmpl (Reg 1, Imm 10);
          Bgtr "done";
          Addl2 (Reg 1, Reg 0);
          Addl2 (Imm 1, Reg 1);
          Brb "loop";
          Label "done";
          Pushl (Reg 0);
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "sum" "55" out

let test_call_convention () =
  (* double(x) = x + x, result in r0; args at 4(ap) *)
  let out =
    run_ok
      Isa.
        [
          Pushl (Imm 21);
          Calls (1, "double");
          Pushl (Reg 0);
          Calls (1, "_print_int");
          Halt;
          Label "double";
          Movl (Disp (4, 12), Reg 0);
          Addl2 (Disp (4, 12), Reg 0);
          Ret;
        ]
  in
  check_str "double(21)" "42" out

let test_recursion () =
  (* fact(n) = n <= 1 ? 1 : n * fact(n-1) *)
  let out =
    run_ok
      Isa.
        [
          Pushl (Imm 6);
          Calls (1, "fact");
          Pushl (Reg 0);
          Calls (1, "_print_int");
          Halt;
          Label "fact";
          Movl (Disp (4, 12), Reg 1);
          Cmpl (Reg 1, Imm 1);
          Bgtr "rec";
          Movl (Imm 1, Reg 0);
          Ret;
          Label "rec";
          Subl3 (Imm 1, Reg 1, Reg 2);
          Pushl (Reg 2);
          Calls (1, "fact");
          Mull2 (Disp (4, 12), Reg 0);
          Ret;
        ]
  in
  check_str "6!" "720" out

let test_read_int () =
  let out =
    run_ok ~input:[ 5; 7 ]
      Isa.
        [
          Calls (0, "_read_int");
          Movl (Reg 0, Reg 2);
          Calls (0, "_read_int");
          Addl2 (Reg 0, Reg 2);
          Pushl (Reg 2);
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "5+7" "12" out

let test_print_char_bool () =
  let out =
    run_ok
      Isa.
        [
          Pushl (Imm 72);
          Calls (1, "_print_char");
          Pushl (Imm 105);
          Calls (1, "_print_char");
          Pushl (Imm 10);
          Calls (1, "_print_char");
          Pushl (Imm 1);
          Calls (1, "_print_bool");
          Pushl (Imm 0);
          Calls (1, "_print_bool");
          Halt;
        ]
  in
  check_str "chars and bools" "Hi\ntruefalse" out

let test_infinite_loop_fuel () =
  match Machine.run ~fuel:1000 Isa.[ Label "x"; Brb "x" ] with
  | Error Machine.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_unknown_label () =
  match Machine.run Isa.[ Brb "ghost" ] with
  | Error (Machine.Unknown_label "ghost") -> ()
  | _ -> Alcotest.fail "expected unknown label"

let test_divide_by_zero () =
  match Machine.run Isa.[ Movl (Imm 1, Reg 0); Divl2 (Imm 0, Reg 0); Halt ] with
  | Error Machine.Divide_by_zero -> ()
  | _ -> Alcotest.fail "expected divide by zero"

let test_moval () =
  let out =
    run_ok
      Isa.
        [
          (* store 99 at -4(fp) via a computed address *)
          Subl2 (Imm 8, Reg 14);
          Moval (Disp (-4, 13), Reg 0);
          Movl (Imm 99, Deref 0);
          Pushl (Disp (-4, 13));
          Calls (1, "_print_int");
          Halt;
        ]
  in
  check_str "moval + deref" "99" out

(* ---------------- assembler round trips ---------------- *)

let test_asm_roundtrip_manual () =
  let prog =
    Isa.
      [
        Label "start";
        Movl (Imm 3, Reg 0);
        Addl3 (Disp (-4, 13), PostInc 14, Reg 5);
        Pushl (PreDec 14);
        Cmpl (Deref 2, Lbl "start");
        Beql "start";
        Calls (2, "foo");
        Ret;
        Halt;
      ]
  in
  let text = Isa.to_string prog in
  let back = Asm_parser.parse text in
  check_bool "round trip" true (back = prog)

let test_asm_comments_blank () =
  let text = "# a comment\n\n\tmovl\t$1,r0  # trailing\n\thalt\n" in
  let prog = Asm_parser.parse text in
  check_bool "parsed" true (prog = Isa.[ Movl (Imm 1, Reg 0); Halt ])

let test_asm_errors () =
  let bad s =
    match Asm_parser.parse s with
    | exception Asm_parser.Parse_error _ -> true
    | _ -> false
  in
  check_bool "unknown op" true (bad "\tfoo\t$1,r0\n");
  check_bool "bad register" true (bad "\tmovl\t$1,r99\n");
  check_bool "bare int" true (bad "\tmovl\t5,r0\n")

let arb_instr =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let operand =
    oneof
      [
        map (fun n -> Isa.Imm n) (int_range (-1000) 1000);
        map (fun r -> Isa.Reg r) reg;
        map (fun r -> Isa.Deref r) reg;
        map2 (fun d r -> Isa.Disp (d, r)) (int_range (-100) 100) reg;
        map (fun r -> Isa.PostInc r) reg;
        map (fun r -> Isa.PreDec r) reg;
        return (Isa.Lbl "somelabel");
      ]
  in
  let label = oneofl [ "l1"; "loop"; "_print_int"; "a_b_c" ] in
  oneof
    [
      map (fun l -> Isa.Label l) label;
      map2 (fun a b -> Isa.Movl (a, b)) operand operand;
      map (fun a -> Isa.Pushl a) operand;
      map2 (fun a b -> Isa.Addl2 (a, b)) operand operand;
      (let three f = map (fun ((a, b), c) -> f a b c) (pair (pair operand operand) operand) in
       three (fun a b c -> Isa.Addl3 (a, b, c)));
      map2 (fun a b -> Isa.Cmpl (a, b)) operand operand;
      map (fun l -> Isa.Beql l) label;
      map (fun l -> Isa.Brb l) label;
      map2 (fun n l -> Isa.Calls (n, l)) (int_bound 5) label;
      return Isa.Ret;
      return Isa.Halt;
    ]

let prop_roundtrip =
  qc "assembler round-trips the printer"
    (QCheck.make
       ~print:(fun is -> Isa.to_string is)
       QCheck.Gen.(list_size (int_bound 20) arb_instr))
    (fun prog -> Asm_parser.parse (Isa.to_string prog) = prog)

let suite =
  [
    ( "vax",
      [
        Alcotest.test_case "print int" `Quick test_print_int;
        Alcotest.test_case "negative" `Quick test_negative;
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "addl3/subl3" `Quick test_addl3;
        Alcotest.test_case "stack" `Quick test_memory_and_stack;
        Alcotest.test_case "branches" `Quick test_branches;
        Alcotest.test_case "loop" `Quick test_loop;
        Alcotest.test_case "call convention" `Quick test_call_convention;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "read int" `Quick test_read_int;
        Alcotest.test_case "char/bool" `Quick test_print_char_bool;
        Alcotest.test_case "fuel" `Quick test_infinite_loop_fuel;
        Alcotest.test_case "unknown label" `Quick test_unknown_label;
        Alcotest.test_case "div by zero" `Quick test_divide_by_zero;
        Alcotest.test_case "moval" `Quick test_moval;
        Alcotest.test_case "asm round trip" `Quick test_asm_roundtrip_manual;
        Alcotest.test_case "asm comments" `Quick test_asm_comments_blank;
        Alcotest.test_case "asm errors" `Quick test_asm_errors;
        prop_roundtrip;
      ] );
  ]
