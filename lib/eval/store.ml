open Pag_core

(* Flat attribute store.

   All attribute instances of the covered nodes live in one dense [vals]
   array; instance (slot) ids are [base.(dense node index) + attribute
   index]. A bitset tracks which slots are set, so values need no option
   boxing and "is set" is a bit test. Node ids (which are global and sparse
   for fragment stores) map to dense indices through an offset-based [index_of]
   table, making every hot-path access array arithmetic. *)

type t = {
  g : Grammar.t;
  root : Tree.t;
  id_lo : int;  (* lowest covered node id *)
  mutable index_of : int array;
      (* (node id - id_lo) -> dense index, -1 if absent *)
  mutable nodes : Tree.t array;  (* dense index -> node, increasing node id *)
  mutable base : int array;
      (* dense index -> first slot id; length n_nodes + 1 *)
  mutable vals : Value.t array;  (* slot id -> value (valid iff bit set) *)
  mutable bits : Bytes.t;  (* slot id -> set? *)
  mutable n_sets : int;
  mutable n_reads : int;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Covered nodes in preorder (= increasing id order for numbered trees),
   optionally stopping below stub nodes. *)
let covered_nodes ?(stop = fun _ -> false) root =
  let acc = ref [] and count = ref 0 in
  let stack = ref [ root ] in
  let rec go () =
    match !stack with
    | [] -> ()
    | node :: rest ->
        stack := rest;
        acc := node :: !acc;
        incr count;
        if node == root || not (stop node) then
          for i = Array.length node.Tree.children - 1 downto 0 do
            stack := node.Tree.children.(i) :: !stack
          done;
        go ()
  in
  go ();
  (List.rev !acc, !count)

let create_shared ?(root_inh = []) ?stop g root =
  let node_list, n = covered_nodes ?stop root in
  let nodes = Array.of_list node_list in
  let id_lo = ref max_int and id_hi = ref min_int in
  Array.iter
    (fun (node : Tree.t) ->
      if node.Tree.id < !id_lo then id_lo := node.Tree.id;
      if node.Tree.id > !id_hi then id_hi := node.Tree.id)
    nodes;
  let id_lo = if n = 0 then 0 else !id_lo in
  let span = if n = 0 then 0 else !id_hi - id_lo + 1 in
  let index_of = Array.make span (-1) in
  Array.iteri
    (fun i (node : Tree.t) ->
      if index_of.(node.Tree.id - id_lo) >= 0 then
        error "node %d (%s) appears twice (tree not numbered?)" node.Tree.id
          node.Tree.sym;
      index_of.(node.Tree.id - id_lo) <- i)
    nodes;
  let counts = Grammar.(fun id -> attr_count_of_id g id) in
  let base = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let node = nodes.(i) in
    let c =
      (* terminal attributes are intrinsic: leaves get no slots *)
      match node.Tree.prod with None -> 0 | Some _ -> counts node.Tree.sym_id
    in
    base.(i + 1) <- base.(i) + c
  done;
  let total = base.(n) in
  let store =
    {
      g;
      root;
      id_lo;
      index_of;
      nodes;
      base;
      vals = Array.make total Value.Unit;
      bits = Bytes.make ((total + 7) / 8) '\000';
      n_sets = 0;
      n_reads = 0;
    }
  in
  List.iter
    (fun (attr, v) ->
      let idx = Grammar.attr_pos g ~sym:root.Tree.sym ~attr in
      let slot = base.(index_of.(root.Tree.id - id_lo)) + idx in
      store.vals.(slot) <- v;
      let b = slot lsr 3 in
      Bytes.set store.bits b
        (Char.chr (Char.code (Bytes.get store.bits b) lor (1 lsl (slot land 7)))))
    root_inh;
  store

let create ?root_inh g root =
  ignore (Tree.number root);
  create_shared ?root_inh g root

(* Extend the store with the (already numbered) nodes of a replacement
   subtree. The new ids must start exactly where the store's covered id
   range ends, so the offset-based [index_of] table extends contiguously —
   {!Pag_eval.Incr} numbers replacements with [Tree.number_from] to
   guarantee this. The detached subtree's slots stay allocated (and set);
   they are dead weight until the next full rebuild compacts them. *)
let append_subtree s sub =
  let node_list, n = covered_nodes sub in
  let old_n = Array.length s.nodes in
  let old_span = Array.length s.index_of in
  let next_id = s.id_lo + old_span in
  List.iteri
    (fun k (node : Tree.t) ->
      if node.Tree.id <> next_id + k then
        error "append_subtree: node id %d out of sequence (expected %d)"
          node.Tree.id (next_id + k))
    node_list;
  let index_of = Array.make (old_span + n) (-1) in
  Array.blit s.index_of 0 index_of 0 old_span;
  let nodes = Array.make (old_n + n) s.root in
  Array.blit s.nodes 0 nodes 0 old_n;
  let base = Array.make (old_n + n + 1) 0 in
  Array.blit s.base 0 base 0 (old_n + 1);
  List.iteri
    (fun k (node : Tree.t) ->
      let i = old_n + k in
      index_of.(node.Tree.id - s.id_lo) <- i;
      nodes.(i) <- node;
      let c =
        match node.Tree.prod with
        | None -> 0
        | Some _ -> Grammar.attr_count_of_id s.g node.Tree.sym_id
      in
      base.(i + 1) <- base.(i) + c)
    node_list;
  let total = base.(old_n + n) in
  let vals = Array.make total Value.Unit in
  Array.blit s.vals 0 vals 0 (Array.length s.vals) ;
  let bits = Bytes.make ((total + 7) / 8) '\000' in
  Bytes.blit s.bits 0 bits 0 (Bytes.length s.bits);
  s.index_of <- index_of;
  s.nodes <- nodes;
  s.base <- base;
  s.vals <- vals;
  s.bits <- bits

(* ------------------------------------------------------------------ *)
(* Slot arithmetic                                                     *)
(* ------------------------------------------------------------------ *)

let dense_index s (node : Tree.t) =
  let i = node.Tree.id - s.id_lo in
  if i < 0 || i >= Array.length s.index_of || s.index_of.(i) < 0 then
    error "node %d (%s) is not covered by this store" node.Tree.id
      node.Tree.sym
  else s.index_of.(i)

let slot_count s = s.base.(Array.length s.nodes)

let slot_of s node ~attr_idx = s.base.(dense_index s node) + attr_idx

let slot_is_set s slot =
  Char.code (Bytes.unsafe_get s.bits (slot lsr 3)) land (1 lsl (slot land 7))
  <> 0

let mark_set s slot =
  let b = slot lsr 3 in
  Bytes.unsafe_set s.bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get s.bits b) lor (1 lsl (slot land 7))))

let slot_value s slot =
  s.n_reads <- s.n_reads + 1;
  Array.unsafe_get s.vals slot

(* Unchecked primitives for the work-stealing parallel phase. [poke]
   writes a value without touching [bits] or the counters: the set-bitset
   is byte-granular, so marking bits from several domains would be a
   read-modify-write race, and the counters are plain ints. Readiness is
   tracked externally by the scheduler's atomic dependency counters;
   [peek] reads a slot the scheduler has proven ready without bumping
   [n_reads]. After the domains join, the (sequential) caller runs
   [commit_slot] over every fired target to restore the set-bits and
   [n_sets] invariants. *)

let poke s slot v = Array.unsafe_set s.vals slot v

let peek s slot = Array.unsafe_get s.vals slot

let commit_slot s slot =
  if not (slot_is_set s slot) then begin
    mark_set s slot;
    s.n_sets <- s.n_sets + 1
  end

(* Owner of a slot, for error messages only: the dense node index i with
   base.(i) <= slot < base.(i+1). *)
let slot_owner s slot =
  let lo = ref 0 and hi = ref (Array.length s.nodes - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if s.base.(mid) <= slot then lo := mid else hi := mid - 1
  done;
  (s.nodes.(!lo), slot - s.base.(!lo))

(* Semantic rules are pure, so re-deriving an instance (e.g. from a network
   message replayed by the reliable-delivery layer) must produce the same
   value: an equal re-set is an idempotent no-op (not counted in [sets]),
   while a conflicting one is still the hard error it always was. Values
   whose equality is undecidable count as conflicting. *)
let same_value a b = try Value.equal a b with Value.Type_error _ -> false

let define_slot s slot v =
  if slot_is_set s slot then begin
    if not (same_value s.vals.(slot) v) then begin
      let node, k = slot_owner s slot in
      let sym = Grammar.symbol_of_id s.g node.Tree.sym_id in
      error "attribute %s.%s of node %d set twice" node.Tree.sym
        sym.Grammar.s_attrs.(k).Grammar.a_name node.Tree.id
    end
  end
  else begin
    s.vals.(slot) <- v;
    mark_set s slot;
    s.n_sets <- s.n_sets + 1
  end

(* Overwrite unconditionally — the change-propagation primitive. Returns
   whether the stored value actually changed (the equality cutoff);
   undecidable equality counts as changed. *)
let redefine_slot s slot v =
  let changed =
    (not (slot_is_set s slot)) || not (same_value s.vals.(slot) v)
  in
  s.vals.(slot) <- v;
  if not (slot_is_set s slot) then begin
    mark_set s slot;
    s.n_sets <- s.n_sets + 1
  end;
  changed

let set_slot s (node : Tree.t) attr slot v =
  if slot_is_set s slot then begin
    if not (same_value s.vals.(slot) v) then
      error "attribute %s.%s of node %d set twice" node.Tree.sym attr
        node.Tree.id
  end
  else begin
    s.vals.(slot) <- v;
    mark_set s slot;
    s.n_sets <- s.n_sets + 1
  end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let grammar s = s.g

let root s = s.root

let node_count s = Array.length s.nodes

let find_node s id =
  let i = id - s.id_lo in
  if i < 0 || i >= Array.length s.index_of || s.index_of.(i) < 0 then None
  else Some s.nodes.(s.index_of.(i))

let idx_of s (node : Tree.t) attr =
  Grammar.attr_pos s.g ~sym:node.Tree.sym ~attr

let set s node attr v = set_slot s node attr (slot_of s node ~attr_idx:(idx_of s node attr)) v

let get_opt s (node : Tree.t) attr =
  s.n_reads <- s.n_reads + 1;
  match node.Tree.prod with
  | None -> Some (Tree.term_attr node attr)
  | Some _ ->
      let slot = slot_of s node ~attr_idx:(idx_of s node attr) in
      if slot_is_set s slot then Some s.vals.(slot) else None

let get s node attr =
  match get_opt s node attr with
  | Some v -> v
  | None ->
      error "attribute %s.%s of node %d not evaluated" node.Tree.sym attr
        node.Tree.id

let is_set s node attr = get_opt s node attr <> None

let sets s = s.n_sets

let reads s = s.n_reads

let root_attrs s =
  let sym = Grammar.symbol_of_id s.g s.root.Tree.sym_id in
  Array.to_list sym.Grammar.s_attrs
  |> List.filter_map (fun (a : Grammar.attr_decl) ->
         match get_opt s s.root a.a_name with
         | Some v -> Some (a.a_name, v)
         | None -> None)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let node_of_pos (node : Tree.t) pos =
  if pos = 0 then node else node.Tree.children.(pos - 1)

let rule_deps s node (rule : Grammar.rule) =
  ignore s;
  Array.to_list rule.Grammar.r_rdeps
  |> List.filter_map (fun (d : Grammar.rref) ->
         if d.Grammar.rr_term then None (* terminal intrinsic: always available *)
         else Some (node_of_pos node d.Grammar.rr_pos, d.Grammar.rr_name))

let rule_target node (rule : Grammar.rule) =
  ( node_of_pos node rule.Grammar.r_rtarget.Grammar.rr_pos,
    rule.Grammar.r_rtarget.Grammar.rr_name )

let rule_target_slot s node (rule : Grammar.rule) =
  let t = rule.Grammar.r_rtarget in
  slot_of s (node_of_pos node t.Grammar.rr_pos) ~attr_idx:t.Grammar.rr_attr

let get_dep s (node : Tree.t) (d : Grammar.rref) =
  s.n_reads <- s.n_reads + 1;
  if d.Grammar.rr_term then
    Tree.term_attr (node_of_pos node d.Grammar.rr_pos) d.Grammar.rr_name
  else begin
    let dn = node_of_pos node d.Grammar.rr_pos in
    let slot = s.base.(dense_index s dn) + d.Grammar.rr_attr in
    if slot_is_set s slot then s.vals.(slot)
    else
      error "attribute %s.%s of node %d not evaluated" dn.Tree.sym
        d.Grammar.rr_name dn.Tree.id
  end

let apply_rule_with s node (rule : Grammar.rule) ~fn =
  let deps = rule.Grammar.r_rdeps in
  let args = Array.make (Array.length deps) Value.Unit in
  for k = 0 to Array.length deps - 1 do
    args.(k) <- get_dep s node deps.(k)
  done;
  let v = fn args in
  let t = rule.Grammar.r_rtarget in
  let tnode = node_of_pos node t.Grammar.rr_pos in
  set_slot s tnode t.Grammar.rr_name
    (s.base.(dense_index s tnode) + t.Grammar.rr_attr)
    v;
  v

let apply_rule s node (rule : Grammar.rule) =
  apply_rule_with s node rule ~fn:rule.Grammar.r_fn

(* ------------------------------------------------------------------ *)
(* Slot ranges (subtree memoization support)                           *)
(* ------------------------------------------------------------------ *)

(* Dense indices are strictly increasing in node id, so if the first and
   last ids of a preorder range are covered and their dense indices differ
   by exactly [id_count - 1], every id in between is covered too — an O(1)
   contiguity check. Fragment stores whose stubs interrupt the range fail
   it and the caller falls back to ordinary evaluation. *)
let slot_range s ~id_lo ~id_count =
  let i0 = id_lo - s.id_lo and i1 = id_lo + id_count - 1 - s.id_lo in
  if i0 < 0 || i1 >= Array.length s.index_of then None
  else
    let d0 = s.index_of.(i0) and d1 = s.index_of.(i1) in
    if d0 < 0 || d1 < 0 || d1 - d0 <> id_count - 1 then None
    else Some (s.base.(d0), s.base.(d1 + 1))

let snapshot_range s ~lo ~hi =
  let acc = ref [] in
  for slot = hi - 1 downto lo do
    if slot_is_set s slot then acc := (slot - lo, s.vals.(slot)) :: !acc
  done;
  Array.of_list !acc

let replay_range s ~lo entries =
  Array.iter (fun (off, v) -> define_slot s (lo + off) v) entries

(* Occurrence projection (DAG evaluation support): fan one evaluated
   occurrence's slot values out to a structurally identical occurrence at a
   different offset. Only slots set in the source and unset in the
   destination are copied — the destination's already-set slots are its
   inherited context, which the caller has checked is fingerprint-equal to
   the source's. [f] runs once per slot this call defines, so a scheduler
   can release the consumers of projected values. *)
let project_range s ~src_lo ~dst_lo ~len f =
  for i = 0 to len - 1 do
    let src = src_lo + i and dst = dst_lo + i in
    if slot_is_set s src && not (slot_is_set s dst) then begin
      s.vals.(dst) <- s.vals.(src);
      mark_set s dst;
      s.n_sets <- s.n_sets + 1;
      f dst
    end
  done

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

(* Covered nodes in dense (preorder) order — the numbering every
   graph-based evaluator shares. *)
let iter_nodes s f = Array.iter f s.nodes

let iter_instances s f =
  (* [nodes] is preorder = increasing node id: deterministic. *)
  Array.iter
    (fun (node : Tree.t) ->
      match node.Tree.prod with
      | None -> ()
      | Some _ ->
          let sym = Grammar.symbol_of_id s.g node.Tree.sym_id in
          Array.iter (fun a -> f node a) sym.Grammar.s_attrs)
    s.nodes

let missing s =
  let n = ref 0 in
  for slot = 0 to slot_count s - 1 do
    if not (slot_is_set s slot) then incr n
  done;
  !n
