test/test_value.ml: Alcotest Format Pag_core Pag_util QCheck QCheck_alcotest Rope String Symtab Value
