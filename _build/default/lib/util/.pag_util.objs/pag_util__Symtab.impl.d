lib/util/symtab.ml: Hashtbl List
