(** Per-evaluator unique-identifier generation (paper, end of section 4.3).

    Threading a counter attribute through the whole tree would serialize all
    evaluators, so instead the parser hands every evaluator a disjoint base
    value and identifiers are generated relative to it. Semantic rules call
    {!fresh}; the evaluator brackets each (non-suspending) evaluation step
    with {!with_counter} around its own cursor. State is domain-local, so
    evaluators on separate domains do not interfere; evaluators interleaved
    on one domain are safe because a bracketed step never suspends. *)

(** [with_counter cursor f] runs [f] drawing identifiers from [!cursor],
    writing the advanced position back afterwards. *)
val with_counter : int ref -> (unit -> 'a) -> 'a

(** [with_base base f] is a convenience for sequential evaluation: runs [f]
    with a fresh cursor at [base] and returns the count of ids consumed. *)
val with_base : int -> (unit -> 'a) -> 'a * int

(** Next unique identifier. Must be called within a bracket. *)
val fresh : unit -> int

(** Current cursor position. Two equal {!mark}s around an evaluation step
    witness that it consumed no identifiers — the condition under which a
    memoized result may be replayed elsewhere without colliding labels. *)
val mark : unit -> int

(** Width reserved per evaluator: bases are spaced this far apart. *)
val stride : int
