lib/parallel/split.ml: Array Float Format Grammar Hashtbl List Option Pag_core String Tree Value
