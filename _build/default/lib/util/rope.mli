(** Ropes: strings as binary trees with the text in the leaves.

    This is the string representation of Boehm & Zwaenepoel (1987), section
    4.3: concatenation is a constant-time operation, which makes building a
    large code attribute from many fragments cheap, and it is the data type
    whose conversion function is replaced to implement the string librarian.
    No rebalancing is performed (the paper allocates without reuse); all
    traversals are nevertheless stack-safe. *)

type t

val empty : t

val of_string : string -> t

(** [concat a b] is the rope denoting the text of [a] followed by the text of
    [b]. O(1). *)
val concat : t -> t -> t

(** [concat_list rs] concatenates left to right, producing a balanced rope. *)
val concat_list : t list -> t

val is_empty : t -> bool

(** Number of characters. O(1). *)
val length : t -> int

(** Height of the underlying tree; a leaf has depth 0. *)
val depth : t -> int

(** Number of leaves holding at least one character. *)
val leaf_count : t -> int

(** Flatten to a string. O(n), stack-safe. *)
val to_string : t -> string

(** [iter_chunks f r] applies [f] to every non-empty leaf, left to right. *)
val iter_chunks : (string -> unit) -> t -> unit

val fold_chunks : ('a -> string -> 'a) -> 'a -> t -> 'a

(** Content equality, without flattening either rope. *)
val equal : t -> t -> bool

(** Lexicographic content comparison. *)
val compare : t -> t -> int

(** [output oc r] writes the text of [r] to [oc] chunk by chunk. *)
val output : out_channel -> t -> unit

val pp : Format.formatter -> t -> unit
