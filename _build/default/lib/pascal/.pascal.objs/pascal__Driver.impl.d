lib/pascal/driver.ml: Dynamic Format Kastens Lazy Oracle Pag_analysis Pag_eval Pag_parallel Parser Pascal_ag Peephole Runner Static_eval Store String Vax
