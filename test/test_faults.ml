(* Chaos testing: the parallel evaluators under an unreliable network.

   Property: for ANY fixture tree and ANY seeded fault plan (drop /
   duplicate / reorder — crashes are exercised separately), every run
   terminates and produces exactly the attributes the sequential oracle
   computes. Crash plans additionally force the coordinator's graceful
   degradation path, whose compiled output must still match the reference
   interpreter. *)

open Pag_core
open Pag_eval
open Pag_parallel
open Pag_grammars
open Netsim

let qc ?(count = 15) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sc_plan =
  lazy
    (match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
    | Ok p -> p
    | Error _ -> assert false)

let sc_tree seed =
  Stackcode_ag.random_program (Random.State.make [| seed |]) ~depth:7 ~blocks:5

let opts ?(machines = 3) faults =
  {
    Runner.default_options with
    Runner.machines;
    use_librarian = true;
    faults = Some faults;
  }

let oracle_value t =
  let store = Oracle.eval Stackcode_ag.grammar t in
  Value.as_int ~ctx:"oracle" (Store.get store (Store.root store) "value")

let int_attr attrs name = Value.as_int ~ctx:"test" (List.assoc name attrs)

let code_attr attrs =
  let c = Codestr.of_value ~ctx:"test" (List.assoc "code" attrs) in
  Stackcode_ag.mask_labels (Pag_util.Rope.to_string (Codestr.to_rope c))

let seq_code t =
  let store, _ = Static_eval.eval (Lazy.force sc_plan) t in
  Stackcode_ag.mask_labels
    (Pag_util.Rope.to_string
       (Codestr.to_rope
          (Codestr.of_value ~ctx:"seq" (Store.get store (Store.root store) "code"))))

(* --------------- chaos property --------------- *)

let arb_chaos =
  QCheck.make
    ~print:(fun (ts, m, drop, dup, reorder, fseed) ->
      Printf.sprintf
        "tree=%d machines=%d drop=%.2f dup=%.2f reorder=%.2f fault-seed=%d" ts
        m drop dup reorder fseed)
    QCheck.Gen.(
      int_bound 100_000 >>= fun ts ->
      int_range 2 4 >>= fun m ->
      float_bound_inclusive 0.15 >>= fun drop ->
      float_bound_inclusive 0.10 >>= fun dup ->
      float_bound_inclusive 0.15 >>= fun reorder ->
      int_bound 10_000 >>= fun fseed -> return (ts, m, drop, dup, reorder, fseed))

let chaos_spec drop dup reorder fseed =
  {
    Faults.none with
    Faults.fs_drop = drop;
    fs_dup = dup;
    fs_reorder = reorder;
    fs_seed = fseed;
  }

let prop_sim_chaos =
  qc ~count:25 "sim: chaos run = oracle (any drop/dup/reorder plan)" arb_chaos
    (fun (ts, m, drop, dup, reorder, fseed) ->
      let t = sc_tree ts in
      let r =
        Runner.run_sim
          (opts ~machines:m (chaos_spec drop dup reorder fseed))
          Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t
      in
      (not r.Runner.r_recovered)
      && int_attr r.Runner.r_attrs "value" = oracle_value t
      && String.equal (code_attr r.Runner.r_attrs) (seq_code t))

let prop_domains_chaos =
  (* Real time: retransmission timeouts make faulty domain runs ~100x
     slower than clean ones, so keep the count small and the rates low. *)
  qc ~count:4 "domains: chaos run = oracle" arb_chaos
    (fun (ts, m, drop, dup, reorder, fseed) ->
      let t = sc_tree ts in
      let spec = chaos_spec (drop /. 2.0) dup reorder fseed in
      let r =
        Runner.run_domains (opts ~machines:m spec) Stackcode_ag.grammar
          (Some (Lazy.force sc_plan)) t
      in
      int_attr r.Runner.r_attrs "value" = oracle_value t
      && String.equal (code_attr r.Runner.r_attrs) (seq_code t))

let test_sim_chaos_deterministic () =
  (* Same tree, same fault seed: bit-identical virtual outcome. *)
  let t = sc_tree 4242 in
  let run () =
    let r =
      Runner.run_sim
        (opts ~machines:4 (chaos_spec 0.1 0.05 0.1 77))
        Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t
    in
    ( r.Runner.r_time,
      r.Runner.r_messages,
      r.Runner.r_bytes,
      r.Runner.r_retransmits,
      r.Runner.r_attrs )
  in
  check_bool "two runs identical" true (run () = run ())

let test_zero_fault_spec_changes_nothing () =
  (* Engaging the reliable layer with an all-zero plan must not change the
     computed attributes (it does change timing: envelopes and acks). *)
  let t = sc_tree 99 in
  let bare =
    Runner.run_sim
      { (opts Faults.none) with Runner.faults = None }
      Stackcode_ag.grammar (Some (Lazy.force sc_plan)) t
  in
  let wrapped =
    Runner.run_sim (opts Faults.none) Stackcode_ag.grammar
      (Some (Lazy.force sc_plan)) t
  in
  check_int "value unchanged" (int_attr bare.Runner.r_attrs "value")
    (int_attr wrapped.Runner.r_attrs "value");
  Alcotest.(check string)
    "code unchanged"
    (code_attr bare.Runner.r_attrs)
    (code_attr wrapped.Runner.r_attrs);
  check_int "no retransmissions on a clean network" 0 wrapped.Runner.r_retransmits;
  check_bool "no recovery" true (not wrapped.Runner.r_recovered)

(* --------------- crash recovery --------------- *)

let test_crash_recovery_matches_interp () =
  (* Kill an evaluator mid-run; the coordinator must degrade to local
     sequential evaluation and the compiled program must still behave
     exactly like the reference interpreter. *)
  let prog, reads =
    Pascal.Progen.gen (Random.State.make [| 7 |]) Pascal.Progen.medium
  in
  let input = List.init reads (fun i -> (i * 37 mod 90) + 1) in
  let spec = { Faults.none with Faults.fs_crashes = [ (1, 0.05) ] } in
  let o = { (opts ~machines:3 spec) with Runner.phase_label = Pascal.Driver.phase_label } in
  let result, compiled = Pascal.Driver.compile_parallel_sim o prog in
  check_bool "coordinator recovered locally" true result.Runner.r_recovered;
  check_bool "no compile errors" true (compiled.Pascal.Driver.c_errors = []);
  let compiled_out =
    match Pascal.Driver.run_compiled ~input compiled with
    | Ok out -> out
    | Error e -> Alcotest.failf "compiled program failed: %s" e
  in
  let interp_out =
    match Pascal.Interp.run ~input prog with
    | Ok out -> out
    | Error _ -> Alcotest.fail "interpreter failed"
  in
  Alcotest.(check string) "compiled = interpreted" interp_out compiled_out

let test_crash_with_drops_still_completes () =
  let t = sc_tree 17 in
  let spec =
    { Faults.none with Faults.fs_drop = 0.05; fs_crashes = [ (2, 0.02) ] }
  in
  let r =
    Runner.run_sim (opts ~machines:4 spec) Stackcode_ag.grammar
      (Some (Lazy.force sc_plan)) t
  in
  check_int "value still correct" (oracle_value t)
    (int_attr r.Runner.r_attrs "value")

let test_crash_before_start () =
  (* The evaluator dies before it even receives its subtree. *)
  let t = sc_tree 18 in
  let spec = { Faults.none with Faults.fs_crashes = [ (1, 0.0) ] } in
  let r =
    Runner.run_sim (opts ~machines:3 spec) Stackcode_ag.grammar
      (Some (Lazy.force sc_plan)) t
  in
  check_bool "recovered" true r.Runner.r_recovered;
  check_int "value" (oracle_value t) (int_attr r.Runner.r_attrs "value")

(* --------------- edits under faults --------------- *)

(* An edit session over a lossy network: every edit wave must terminate
   (retransmission covers drops, dedup covers duplicates) and leave the
   resident store exactly where a from-scratch evaluation of the edited
   tree lands. *)
let arb_edit_chaos =
  QCheck.make
    ~print:(fun (s0, edits, m, drop, dup, fseed) ->
      Printf.sprintf
        "base=%d edits=[%s] machines=%d drop=%.2f dup=%.2f fault-seed=%d" s0
        (String.concat ";" (List.map string_of_int edits))
        m drop dup fseed)
    QCheck.Gen.(
      int_bound 100_000 >>= fun s0 ->
      list_size (1 -- 4) (int_bound 100_000) >>= fun edits ->
      int_range 2 4 >>= fun m ->
      float_bound_inclusive 0.2 >>= fun drop ->
      float_bound_inclusive 0.1 >>= fun dup ->
      int_bound 10_000 >>= fun fseed -> return (s0, edits, m, drop, dup, fseed))

let prop_edit_chaos =
  qc ~count:20 "sim: edit session under faults = from-scratch" arb_edit_chaos
    (fun (s0, edits, m, drop, dup, fseed) ->
      let g = Expr_ag.grammar in
      let expr_of seed =
        Expr_ag.random_program (Random.State.make [| seed |]) ~depth:6
      in
      let spec =
        Session.spec ~granularity:0.05 ~librarian:false
          ~faults:{ Faults.none with Faults.fs_drop = drop; fs_dup = dup; fs_seed = fseed }
          m
      in
      let es = Session.open_session spec g (expr_of s0) in
      List.for_all
        (fun seed ->
          ignore (Session.edit es (expr_of seed));
          let fresh = expr_of seed in
          let scratch, _ = Dynamic.eval g fresh in
          Test_incr.values_agree g (Session.store es) (Session.tree es)
            scratch fresh)
        edits)

let test_edit_wave_retransmits () =
  (* A heavy drop rate must show up as retransmissions, not as failure. *)
  let g = Expr_ag.grammar in
  let expr_of seed =
    Expr_ag.random_program (Random.State.make [| seed |]) ~depth:8
  in
  let spec =
    Session.spec ~granularity:0.05 ~librarian:false
      ~faults:{ Faults.none with Faults.fs_drop = 0.3; fs_seed = 5 }
      4
  in
  let es = Session.open_session spec g (expr_of 1) in
  let r = Session.edit es (expr_of 2) in
  check_bool "wave terminated with retransmissions" true
    (r.Session.er_retransmits > 0);
  let fresh = expr_of 2 in
  let scratch, _ = Dynamic.eval g fresh in
  check_bool "values = scratch" true
    (Test_incr.values_agree g (Session.store es) (Session.tree es) scratch
       fresh)

(* --------------- librarian idempotence --------------- *)

module S = Sim.Make (struct
  type msg = Message.t
end)

let env_of id =
  {
    Transport.e_id = id;
    e_delay = S.delay;
    e_send = (fun ~dst m -> S.send ~dst ~size:(Message.size m) m);
    e_recv = S.recv;
    e_recv_timeout = S.recv_timeout;
    e_time = S.time;
    e_mark = (fun _ -> ());
    e_flush = (fun () -> ());
  }

let test_librarian_duplicates () =
  (* Every fragment and the resolve request delivered twice: the code must
     still be assembled and sent exactly once. *)
  let sim = S.create () in
  let finals = ref 0 in
  let text = ref "" in
  let lib =
    S.spawn sim ~name:"lib" (fun () -> Librarian.run (env_of 0) ~coordinator:1)
  in
  let _coord =
    S.spawn sim ~name:"coord" (fun () ->
        let desc, frags =
          Codestr.extract_texts
            ~alloc:
              (let n = ref 0 in
               fun () ->
                 incr n;
                 !n)
            (Codestr.of_string "exactly once")
        in
        let send_frag (id, text) =
          S.send ~dst:lib ~size:32 (Message.Code_frag { id; text })
        in
        List.iter send_frag frags;
        List.iter send_frag frags;
        (* duplicated *)
        let resolve () =
          S.send ~dst:lib ~size:16 (Message.Resolve { value = Codestr.value desc })
        in
        resolve ();
        (match S.recv () with
        | Message.Final { text = t } ->
            incr finals;
            text := Pag_util.Rope.to_string t
        | _ -> ());
        (* replayed resolve after the answer: must NOT produce another Final *)
        resolve ();
        S.delay 1.0;
        (match S.try_recv () with
        | Some (Message.Final _) -> incr finals
        | _ -> ());
        S.send ~dst:lib ~size:8 Message.Stop)
  in
  S.run sim;
  Alcotest.(check string) "assembled text" "exactly once" !text;
  check_int "exactly one Final" 1 !finals

let test_reliable_dedup_and_ack () =
  (* Unit-level: with every transmission duplicated, the Data envelope is
     acked on both copies but surfaces to the application exactly once. *)
  let sim = S.create () in
  S.set_faults sim { Faults.none with Faults.fs_dup = 1.0; fs_seed = 3 };
  let delivered = ref [] in
  let dup_dropped = ref 0 in
  let _rx =
    S.spawn sim ~name:"rx" (fun () ->
        let link = Reliable.wrap (env_of 0) in
        let env = Reliable.env link in
        (match env.Transport.e_recv () with
        | Message.Attr { attr; _ } -> delivered := attr :: !delivered
        | _ -> ());
        (* nothing else may surface: duplicates are suppressed *)
        (match env.Transport.e_recv_timeout 2.0 with
        | Some (Message.Attr { attr; _ }) -> delivered := attr :: !delivered
        | _ -> ());
        dup_dropped := (Reliable.stats link).Reliable.rs_dup_dropped)
  in
  let _tx =
    S.spawn sim ~name:"tx" (fun () ->
        let link = Reliable.wrap (env_of 1) in
        let env = Reliable.env link in
        env.Transport.e_send ~dst:0
          (Message.Attr { node = 0; attr = "x"; value = Value.Int 1 });
        env.Transport.e_flush ())
  in
  S.run sim;
  check_bool "delivered exactly once" true (!delivered = [ "x" ]);
  check_bool "duplicate suppressed" true (!dup_dropped >= 1)

(* Multi-tenant service under faults: dropped dispatches are retransmitted
   and charged to the owning tenant (no cross-tenant bleed — per-tenant
   counters sum to the service totals and every tenant's edit count is
   exactly what it submitted), a worker crash mid-wave re-dispatches the
   rest of its batch to survivors, and every tenant's final attributes
   still match an isolated fault-free edit session. *)
let test_serve_under_faults () =
  let g = Expr_ag.grammar in
  let expr_of seed =
    Expr_ag.random_program (Random.State.make [| seed |]) ~depth:5
  in
  (* machine 2 = worker index 1 dies just after its first edit of round 1;
     under round-robin that worker holds tenant b's 5-edit batch *)
  let faults =
    { Faults.none with Faults.fs_drop = 0.25; fs_seed = 11; fs_crashes = [ (2, 1e-6) ] }
  in
  let sv = Service.create (Service.config ~faults ~fault_rto:0.05 3) g in
  let plan = [ ("a", [ [ 60 ]; [ 70 ] ]); ("b", [ [ 10; 20; 30; 40; 50 ] ]); ("c", [ [ 80 ]; [ 90 ] ]) ] in
  List.iter (fun (n, _) -> Service.open_tenant sv n (expr_of (Hashtbl.hash n))) plan;
  let rounds = List.fold_left (fun m (_, rs) -> max m (List.length rs)) 0 plan in
  for r = 0 to rounds - 1 do
    List.iter
      (fun (n, rs) ->
        match List.nth_opt rs r with
        | Some seeds ->
            List.iter
              (fun s ->
                check_bool "admitted" true
                  (Service.submit sv n (expr_of s) = Service.Admitted))
              seeds
        | None -> ())
      plan;
    Service.run_round sv
  done;
  Service.drain sv;
  let st = Service.stats sv in
  check_int "one worker lost" 1 st.Service.st_workers_lost;
  check_bool "crashed worker's batch moved to survivors" true
    (st.Service.st_redispatches >= 1);
  check_bool "drops forced retransmissions" true (st.Service.st_retransmits > 0);
  check_int "retransmits all charged to a tenant"
    st.Service.st_retransmits
    (List.fold_left
       (fun acc ts -> acc + ts.Service.ts_retransmits)
       0 st.Service.st_per_tenant);
  List.iter
    (fun ts ->
      let submitted =
        List.concat (List.assoc ts.Service.ts_name plan) |> List.length
      in
      check_int
        ("edits accounted to " ^ ts.Service.ts_name)
        submitted ts.Service.ts_edits)
    st.Service.st_per_tenant;
  (* values survive drops, dups and the crash: each tenant's finals equal
     an isolated fault-free session replaying the same stream *)
  List.iter
    (fun (n, rs) ->
      let spec = Session.spec ~granularity:0.05 ~librarian:false 2 in
      let iso = Session.open_session spec g (expr_of (Hashtbl.hash n)) in
      List.iter
        (fun s -> ignore (Session.edit iso (expr_of s)))
        (List.concat rs);
      check_bool ("tenant " ^ n ^ " finals agree") true
        (Test_incr.values_agree g
           (Service.tenant_store sv n)
           (Service.tenant_tree sv n)
           (Session.store iso) (Session.tree iso)))
    plan

(* A plan that drops everything: the service's reliable transmit stops
   retrying after 64 attempts and force-delivers, but the absorption must
   be visible — counted in st_gave_up and charged as retransmits — rather
   than silently passing for a healthy network. *)
let test_retransmit_cap_gives_up () =
  let g = Expr_ag.grammar in
  let expr_of seed =
    Expr_ag.random_program (Random.State.make [| seed |]) ~depth:4
  in
  let faults = { Faults.none with Faults.fs_drop = 1.0; fs_seed = 3 } in
  let sv = Service.create (Service.config ~faults ~fault_rto:0.01 2) g in
  Service.open_tenant sv "a" (expr_of 1);
  check_bool "admitted" true (Service.submit sv "a" (expr_of 2) = Service.Admitted);
  Service.drain sv;
  let st = Service.stats sv in
  check_int "edit still applied" 1 st.Service.st_edits;
  check_bool "capped retransmits surface as gave-ups" true
    (st.Service.st_gave_up > 0);
  check_int "64 retries per message before giving up"
    (64 * st.Service.st_gave_up) st.Service.st_retransmits

let suite =
  [
    ( "faults",
      [
        prop_sim_chaos;
        prop_domains_chaos;
        Alcotest.test_case "chaos is seed-deterministic" `Quick
          test_sim_chaos_deterministic;
        Alcotest.test_case "zero-fault plan changes nothing" `Quick
          test_zero_fault_spec_changes_nothing;
        Alcotest.test_case "crash recovery = interpreter" `Quick
          test_crash_recovery_matches_interp;
        Alcotest.test_case "crash + drops completes" `Quick
          test_crash_with_drops_still_completes;
        Alcotest.test_case "crash before start" `Quick test_crash_before_start;
        prop_edit_chaos;
        Alcotest.test_case "edit wave retransmits" `Quick
          test_edit_wave_retransmits;
        Alcotest.test_case "multi-tenant serve under faults" `Quick
          test_serve_under_faults;
        Alcotest.test_case "retransmit cap surfaces as gave-ups" `Quick
          test_retransmit_cap_gives_up;
        Alcotest.test_case "librarian under duplicates" `Quick
          test_librarian_duplicates;
        Alcotest.test_case "reliable dedup" `Quick test_reliable_dedup_and_ack;
      ] );
  ]
