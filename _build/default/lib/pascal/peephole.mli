(** Local (peephole) optimization of generated VAX code — the paper's
    "limited amount of local optimization" (section 3). Rewrites adjacent
    instruction pairs until a fixpoint:

    - [pushl X; movl (sp)+, rN]  becomes  [movl X, rN]  (X not sp-relative)
    - [movl rN, rN]              is deleted
    - [moval d(r), r0; pushl r0; movl (sp)+, rM] collapses via the above
    - [brb L] immediately followed by [L:] is deleted

    Condition codes set by deleted moves are never consumed by the code
    generator's output patterns (branches always follow an explicit [cmpl] or
    [tstl]), so the rewrites are sound for generated code. *)

val optimize : Vax.Isa.instr list -> Vax.Isa.instr list

(** Parse assembly text, optimize, re-emit. *)
val optimize_text : string -> string

(** Instruction count excluding labels and comments. *)
val instr_count : Vax.Isa.instr list -> int
