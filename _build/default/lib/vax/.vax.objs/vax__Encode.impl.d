lib/vax/encode.ml: Array Buffer Bytes Char Hashtbl Isa List Printf String
