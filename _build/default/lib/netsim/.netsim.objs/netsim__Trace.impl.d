lib/netsim/trace.ml: List
