examples/expr_calculator.mli:
