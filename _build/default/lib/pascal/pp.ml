open Ast

let buf_add = Buffer.add_string

let rec pp_ty = function
  | TInt -> "integer"
  | TBool -> "boolean"
  | TChar -> "char"
  | TArray (lo, hi, e) -> Printf.sprintf "array [%d..%d] of %s" lo hi (pp_ty e)
  | TRecord fields ->
      "record "
      ^ String.concat "; " (List.map (fun (n, t) -> n ^ " : " ^ pp_ty t) fields)
      ^ " end"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr = function
  | EInt n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | EBool true -> "true"
  | EBool false -> "false"
  | EChar '\'' -> "''''"
  | EChar c -> Printf.sprintf "'%c'" c
  | ELval lv -> pp_lvalue lv
  | EBin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (pp_expr a) (binop_str op) (pp_expr b)
  | EUn (Neg, e) -> Printf.sprintf "(-%s)" (pp_expr e)
  | EUn (Not, e) -> Printf.sprintf "(not %s)" (pp_expr e)
  | ECall (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map pp_expr args))

and pp_lvalue = function
  | LId n -> n
  | LIndex (b, e) -> Printf.sprintf "%s[%s]" (pp_lvalue b) (pp_expr e)
  | LField (b, f) -> Printf.sprintf "%s.%s" (pp_lvalue b) f

let rec pp_stmts buf indent stmts =
  let n = List.length stmts in
  List.iteri
    (fun i s ->
      pp_stmt buf indent s;
      if i < n - 1 then buf_add buf ";";
      buf_add buf "\n")
    stmts

and pp_stmt buf indent s =
  let pad = String.make indent ' ' in
  let compound body =
    buf_add buf "begin\n";
    pp_stmts buf (indent + 2) body;
    buf_add buf (pad ^ "end")
  in
  buf_add buf pad;
  match s with
  | SAssign (lv, e) -> buf_add buf (pp_lvalue lv ^ " := " ^ pp_expr e)
  | SIf (c, t, []) ->
      buf_add buf ("if " ^ pp_expr c ^ " then ");
      compound t
  | SIf (c, t, e) ->
      buf_add buf ("if " ^ pp_expr c ^ " then ");
      compound t;
      buf_add buf " else ";
      compound e
  | SWhile (c, body) ->
      buf_add buf ("while " ^ pp_expr c ^ " do ");
      compound body
  | SRepeat (body, c) ->
      buf_add buf "repeat\n";
      pp_stmts buf (indent + 2) body;
      buf_add buf (pad ^ "until " ^ pp_expr c)
  | SFor (v, e1, up, e2, body) ->
      buf_add buf
        (Printf.sprintf "for %s := %s %s %s do " v (pp_expr e1)
           (if up then "to" else "downto")
           (pp_expr e2));
      compound body
  | SCase (e, arms, default) ->
      buf_add buf ("case " ^ pp_expr e ^ " of\n");
      let n = List.length arms in
      List.iteri
        (fun i (consts, body) ->
          buf_add buf
            (pad ^ "  "
            ^ String.concat ", " (List.map string_of_int consts)
            ^ ": ");
          buf_add buf "begin\n";
          pp_stmts buf (indent + 4) body;
          buf_add buf (pad ^ "  end");
          if i < n - 1 || default <> None then buf_add buf ";";
          buf_add buf "\n")
        arms;
      (match default with
      | None -> ()
      | Some body ->
          buf_add buf (pad ^ "  else ");
          buf_add buf "begin\n";
          pp_stmts buf (indent + 4) body;
          buf_add buf (pad ^ "  end\n"));
      buf_add buf (pad ^ "end")
  | SCall (f, []) -> buf_add buf f
  | SCall (f, args) ->
      buf_add buf
        (Printf.sprintf "%s(%s)" f (String.concat ", " (List.map pp_expr args)))
  | SWrite (args, ln) ->
      let kw = if ln then "writeln" else "write" in
      if args = [] && ln then buf_add buf kw
      else
        buf_add buf
          (Printf.sprintf "%s(%s)" kw
             (String.concat ", " (List.map pp_expr args)))
  | SRead lv -> buf_add buf (Printf.sprintf "read(%s)" (pp_lvalue lv))

let rec pp_block buf indent (b : block) =
  let pad = String.make indent ' ' in
  List.iter
    (fun d ->
      match d with
      | DConst (n, v) -> buf_add buf (Printf.sprintf "%sconst %s = %d;\n" pad n v)
      | DVar (n, t) -> buf_add buf (Printf.sprintf "%svar %s : %s;\n" pad n (pp_ty t))
      | DRoutine r ->
          let params =
            if r.r_params = [] then ""
            else
              "("
              ^ String.concat "; "
                  (List.map
                     (fun p ->
                       (if p.p_ref then "var " else "")
                       ^ p.p_name ^ " : " ^ pp_ty p.p_ty)
                     r.r_params)
              ^ ")"
          in
          (match r.r_ret with
          | None ->
              buf_add buf (Printf.sprintf "%sprocedure %s%s;\n" pad r.r_name params)
          | Some t ->
              buf_add buf
                (Printf.sprintf "%sfunction %s%s : %s;\n" pad r.r_name params
                   (pp_ty t)));
          pp_block buf (indent + 2) r.r_block;
          buf_add buf ";\n")
    b.b_decls;
  buf_add buf (pad ^ "begin\n");
  pp_stmts buf (indent + 2) b.b_body;
  buf_add buf (pad ^ "end")

let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  buf_add buf (Printf.sprintf "program %s;\n" p.prog_name);
  pp_block buf 0 p.prog_block;
  buf_add buf ".\n";
  Buffer.contents buf

let line_count p =
  let s = program_to_string p in
  List.length (String.split_on_char '\n' s)
