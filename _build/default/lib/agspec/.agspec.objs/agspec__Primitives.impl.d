lib/agspec/primitives.ml: Array Codestr Hashtbl List Pag_core Pag_util Printf Rope Symtab Uid Value
