lib/netsim/trace.mli:
