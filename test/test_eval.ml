open Pag_core
open Pag_analysis
open Pag_eval
open Pag_grammars

let qc ?(count = 60) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plan_of g =
  match Kastens.analyze g with
  | Ok p -> p
  | Error f -> Alcotest.failf "analysis failed: %a" Kastens.pp_failure f

let expr_plan = lazy (plan_of Expr_ag.grammar)
let repmin_plan = lazy (plan_of Repmin_ag.grammar)
let binary_plan = lazy (plan_of Binary_ag.grammar)

let root_int store =
  Value.as_int ~ctx:"test" (Store.get store (Store.root store) "value")

(* ------------------------- oracle ------------------------- *)

let test_oracle_example () =
  let store = Oracle.eval Expr_ag.grammar Expr_ag.example in
  check_int "appendix example = 5" 5 (root_int store);
  check_int "all instances evaluated" 0 (Store.missing store)

let test_oracle_demand_only_root () =
  let store = Oracle.eval_root_demand Expr_ag.grammar Expr_ag.example in
  check_int "value" 5 (root_int store)

let test_oracle_unbound_var () =
  let t = Expr_ag.main (Expr_ag.var "ghost") in
  match Oracle.eval Expr_ag.grammar t with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected unbound identifier error"

let test_oracle_cycle_detected () =
  let open Grammar in
  let g =
    make ~name:"circ" ~start:"r"
      [
        terminal "T" [];
        nonterminal "r" [ syn "out" ];
        nonterminal "x" [ syn "s"; inh "i" ];
      ]
      [
        production ~name:"root" ~lhs:"r" ~rhs:[ "x" ]
          [
            rule (lhs "out") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
            rule (rhs 1 "i") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
          ];
        production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
          [ rule (lhs "s") ~deps:[ lhs "i" ] (fun a -> a.(0)) ];
      ]
  in
  let t = Tree.node g "root" [ Tree.node g "leaf" [ Tree.leaf g "T" [] ] ] in
  match Oracle.eval g t with
  | exception Oracle.Cycle _ -> ()
  | _ -> Alcotest.fail "expected cycle"

(* ------------------------- dynamic ------------------------- *)

let test_dynamic_example () =
  let store, stats = Dynamic.eval Expr_ag.grammar Expr_ag.example in
  check_int "value" 5 (root_int store);
  check_bool "built a graph" true (stats.Dynamic.edges > 0);
  check_int "no instance left" 0 (Store.missing store)

let test_dynamic_cycle () =
  let open Grammar in
  let g =
    make ~name:"circ" ~start:"r"
      [
        terminal "T" [];
        nonterminal "r" [ syn "out" ];
        nonterminal "x" [ syn "s"; inh "i" ];
      ]
      [
        production ~name:"root" ~lhs:"r" ~rhs:[ "x" ]
          [
            rule (lhs "out") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
            rule (rhs 1 "i") ~deps:[ rhs 1 "s" ] (fun a -> a.(0));
          ];
        production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
          [ rule (lhs "s") ~deps:[ lhs "i" ] (fun a -> a.(0)) ];
      ]
  in
  let t = Tree.node g "root" [ Tree.node g "leaf" [ Tree.leaf g "T" [] ] ] in
  match Dynamic.eval g t with
  | exception Dynamic.Cycle _ -> ()
  | _ -> Alcotest.fail "expected cycle"

(* ------------------------- static ------------------------- *)

let test_static_example () =
  let store, stats = Static_eval.eval (Lazy.force expr_plan) Expr_ag.example in
  check_int "value" 5 (root_int store);
  check_bool "visited nodes" true (stats.Static_eval.visits > 0);
  check_int "complete" 0 (Store.missing store)

let test_static_repmin () =
  let t = Repmin_ag.(root (fork (fork (leaf 5) (leaf 2)) (leaf 9))) in
  let store, _ = Static_eval.eval (Lazy.force repmin_plan) t in
  let expected = Repmin_ag.reference_result t in
  check_bool "repmin result" true
    (Value.equal expected (Store.get store (Store.root store) "res"))

let test_static_binary () =
  let bits = [ 1; 0; 1; 1 ] in
  let store, _ = Static_eval.eval (Lazy.force binary_plan) (Binary_ag.of_bits bits) in
  check_int "1011 = 11" 11 (root_int store)

(* ---------------- equivalence properties ---------------- *)

let stores_agree g a b =
  (* Same values on every instance. *)
  let ok = ref true in
  ignore g;
  Store.iter_instances a (fun node attr ->
      let va = Store.get_opt a node attr.Grammar.a_name in
      (* node ids are identical because both stores numbered the same tree *)
      let vb = Store.get_opt b node attr.Grammar.a_name in
      match (va, vb) with
      | Some x, Some y -> if not (Value.equal x y) then ok := false
      | None, None -> ()
      | _ -> ok := false);
  !ok

let arb_expr =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Tree.pp t)
    QCheck.Gen.(
      int_bound 1_000_000 >>= fun seed ->
      int_range 1 7 >>= fun depth ->
      return
        (Expr_ag.random_program (Random.State.make [| seed |]) ~depth))

let prop_expr_all_evaluators_agree =
  qc "expr: oracle = dynamic = static" arb_expr (fun t ->
      let o = Oracle.eval Expr_ag.grammar t in
      let d, _ = Dynamic.eval Expr_ag.grammar t in
      let s, _ = Static_eval.eval (Lazy.force expr_plan) t in
      stores_agree Expr_ag.grammar o d && stores_agree Expr_ag.grammar o s)

let prop_expr_matches_reference =
  qc "expr: evaluators match direct interpretation" arb_expr (fun t ->
      let s, _ = Static_eval.eval (Lazy.force expr_plan) t in
      root_int s = Expr_ag.reference_value t)

let arb_repmin =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Tree.pp t)
    QCheck.Gen.(
      int_bound 1_000_000 >>= fun seed ->
      int_range 1 8 >>= fun depth ->
      return (Repmin_ag.random_tree (Random.State.make [| seed |]) ~depth))

let prop_repmin_agree =
  qc "repmin: oracle = dynamic = static = reference" arb_repmin (fun t ->
      let o = Oracle.eval Repmin_ag.grammar t in
      let d, _ = Dynamic.eval Repmin_ag.grammar t in
      let s, _ = Static_eval.eval (Lazy.force repmin_plan) t in
      stores_agree Repmin_ag.grammar o d
      && stores_agree Repmin_ag.grammar o s
      && Value.equal
           (Store.get s (Store.root s) "res")
           (Repmin_ag.reference_result t))

let arb_bits =
  QCheck.make
    ~print:(fun bits -> String.concat "" (List.map string_of_int bits))
    QCheck.Gen.(
      int_bound 1_000_000 >>= fun seed ->
      return
        (Binary_ag.random_bits (Random.State.make [| seed |]) ~max_len:20))

let prop_binary_agree =
  qc "binary: evaluators = reference" arb_bits (fun bits ->
      let t = Binary_ag.of_bits bits in
      let o = Oracle.eval Binary_ag.grammar t in
      let d, _ = Dynamic.eval Binary_ag.grammar t in
      let s, _ = Static_eval.eval (Lazy.force binary_plan) t in
      stores_agree Binary_ag.grammar o d
      && stores_agree Binary_ag.grammar o s
      && root_int s = Binary_ag.reference_value bits)

let prop_static_cheaper_analysis =
  (* The paper's core claim for sequential execution: static evaluation does
     no per-tree dependency work. We check the dynamic evaluator builds a
     graph with at least as many operations as rules fired, while static
     fires the same rules with zero graph edges built. *)
  qc "dynamic builds graphs, static does not" arb_expr (fun t ->
      let _, ds = Dynamic.eval Expr_ag.grammar t in
      let _, ss = Static_eval.eval (Lazy.force expr_plan) t in
      ds.Dynamic.evals = ss.Static_eval.evals && ds.Dynamic.edges > 0)

let suite =
  [
    ( "eval",
      [
        Alcotest.test_case "oracle example" `Quick test_oracle_example;
        Alcotest.test_case "oracle demand" `Quick test_oracle_demand_only_root;
        Alcotest.test_case "oracle unbound" `Quick test_oracle_unbound_var;
        Alcotest.test_case "oracle cycle" `Quick test_oracle_cycle_detected;
        Alcotest.test_case "dynamic example" `Quick test_dynamic_example;
        Alcotest.test_case "dynamic cycle" `Quick test_dynamic_cycle;
        Alcotest.test_case "static example" `Quick test_static_example;
        Alcotest.test_case "static repmin" `Quick test_static_repmin;
        Alcotest.test_case "static binary" `Quick test_static_binary;
        prop_expr_all_evaluators_agree;
        prop_expr_matches_reference;
        prop_repmin_agree;
        prop_binary_agree;
        prop_static_cheaper_analysis;
      ] );
  ]
