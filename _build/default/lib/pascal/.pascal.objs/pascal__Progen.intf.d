lib/pascal/progen.mli: Ast Random
