type 'a t =
  | Empty
  | Node of {
      key : int; (* hash index of the identifiers in [bucket] *)
      bucket : (string * 'a) list;
      left : 'a t;
      right : 'a t;
    }

let empty = Empty

let hash_of_name = Hashtbl.hash

let rec add_at tab key name v =
  match tab with
  | Empty -> Node { key; bucket = [ (name, v) ]; left = Empty; right = Empty }
  | Node n ->
      if key < n.key then Node { n with left = add_at n.left key name v }
      else if key > n.key then Node { n with right = add_at n.right key name v }
      else
        let bucket = (name, v) :: List.remove_assoc name n.bucket in
        Node { n with bucket }

let add tab name v = add_at tab (hash_of_name name) name v

let rec lookup_at tab key name =
  match tab with
  | Empty -> None
  | Node n ->
      if key < n.key then lookup_at n.left key name
      else if key > n.key then lookup_at n.right key name
      else List.assoc_opt name n.bucket

let lookup tab name = lookup_at tab (hash_of_name name) name

let mem tab name = lookup tab name <> None

let rec fold f tab acc =
  match tab with
  | Empty -> acc
  | Node n ->
      let acc = fold f n.left acc in
      let acc =
        List.fold_left (fun acc (name, v) -> f name v acc) acc n.bucket
      in
      fold f n.right acc

let cardinal tab = fold (fun _ _ n -> n + 1) tab 0

let rec height = function
  | Empty -> 0
  | Node n -> 1 + max (height n.left) (height n.right)

let of_list l = List.fold_left (fun tab (name, v) -> add tab name v) empty l

let to_list tab = fold (fun name v acc -> (name, v) :: acc) tab []

let equal veq a b =
  let subset x y =
    fold
      (fun name v ok ->
        ok && match lookup y name with Some w -> veq v w | None -> false)
      x true
  in
  cardinal a = cardinal b && subset a b
