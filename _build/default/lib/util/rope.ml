type t =
  | Leaf of string
  | Cat of { left : t; right : t; len : int; dep : int }

let empty = Leaf ""

let of_string s = Leaf s

let length = function Leaf s -> String.length s | Cat c -> c.len

let depth = function Leaf _ -> 0 | Cat c -> c.dep

let is_empty r = length r = 0

let concat a b =
  if is_empty a then b
  else if is_empty b then a
  else
    Cat
      {
        left = a;
        right = b;
        len = length a + length b;
        dep = 1 + max (depth a) (depth b);
      }

let rec concat_balanced rs n =
  (* [rs] has [n] elements; split in half to keep the result shallow. *)
  match rs with
  | [] -> empty
  | [ r ] -> r
  | _ ->
      let half = n / 2 in
      let rec split i acc = function
        | rest when i = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (i - 1) (r :: acc) rest
      in
      let l, r = split half [] rs in
      concat (concat_balanced l half) (concat_balanced r (n - half))

let concat_list rs = concat_balanced rs (List.length rs)

(* All traversals carry an explicit work list so deep ropes (built by long
   left- or right-leaning concatenation chains) cannot overflow the stack. *)

let iter_chunks f r =
  let rec go = function
    | [] -> ()
    | Leaf "" :: rest -> go rest
    | Leaf s :: rest ->
        f s;
        go rest
    | Cat c :: rest -> go (c.left :: c.right :: rest)
  in
  go [ r ]

let fold_chunks f init r =
  let acc = ref init in
  iter_chunks (fun s -> acc := f !acc s) r;
  !acc

let leaf_count r = fold_chunks (fun n _ -> n + 1) 0 r

let to_string r =
  let buf = Buffer.create (length r) in
  iter_chunks (Buffer.add_string buf) r;
  Buffer.contents buf

let output oc r = iter_chunks (output_string oc) r

(* Chunk-stream comparison: walk both ropes' leaves in lockstep, comparing
   character ranges, so neither rope is flattened. *)
type cursor = { mutable chunks : t list; mutable s : string; mutable pos : int }

let cursor_of r = { chunks = [ r ]; s = ""; pos = 0 }

let rec cursor_refill c =
  if c.pos < String.length c.s then true
  else
    match c.chunks with
    | [] -> false
    | Leaf s :: rest ->
        c.chunks <- rest;
        c.s <- s;
        c.pos <- 0;
        cursor_refill c
    | Cat cat :: rest ->
        c.chunks <- cat.left :: cat.right :: rest;
        cursor_refill c

let compare a b =
  if length a = 0 && length b = 0 then 0
  else
    let ca = cursor_of a and cb = cursor_of b in
    let rec go () =
      match (cursor_refill ca, cursor_refill cb) with
      | false, false -> 0
      | false, true -> -1
      | true, false -> 1
      | true, true ->
          let n =
            min (String.length ca.s - ca.pos) (String.length cb.s - cb.pos)
          in
          let rec cmp i =
            if i = n then 0
            else
              let d =
                Char.compare ca.s.[ca.pos + i] cb.s.[cb.pos + i]
              in
              if d <> 0 then d else cmp (i + 1)
          in
          let d = cmp 0 in
          if d <> 0 then d
          else begin
            ca.pos <- ca.pos + n;
            cb.pos <- cb.pos + n;
            go ()
          end
    in
    go ()

let equal a b = length a = length b && compare a b = 0

let pp fmt r = Format.pp_print_string fmt (to_string r)
