(* Quickstart: the paper's appendix grammar through the public API.

   Builds the parse tree of  "let x = 2 in 1 + 2 * x ni",  evaluates it with
   all four evaluators (demand-driven oracle, dynamic, static/ordered, and
   the parallel combined evaluator on the simulated multiprocessor) and
   shows they agree on the value 5.

   Run with: dune exec examples/quickstart.exe *)

open Pag_core
open Pag_analysis
open Pag_eval
open Pag_grammars

let () =
  let g = Expr_ag.grammar in
  let show name v = Printf.printf "%-28s %s\n" name (Value.to_string v) in

  (* The example tree from the appendix: let x = 2 in 1 + 2 * x ni *)
  let tree () = Expr_ag.example in

  (* 1. Demand-driven evaluation (simplest possible evaluator). *)
  let store = Oracle.eval g (tree ()) in
  show "oracle:" (Store.get store (Store.root store) "value");

  (* 2. Dynamic evaluation: per-tree dependency graph + topological order. *)
  let store, dstats = Dynamic.eval g (tree ()) in
  show "dynamic:" (Store.get store (Store.root store) "value");
  Printf.printf "%-28s %d instances, %d edges, %d rules fired\n"
    "  dependency graph:" dstats.Dynamic.instances dstats.Dynamic.edges
    dstats.Dynamic.evals;

  (* 3. Static (ordered) evaluation: Kastens' analysis runs once per
     grammar, evaluation follows precomputed visit sequences. *)
  let plan =
    match Kastens.analyze g with
    | Ok p -> p
    | Error f -> failwith (Format.asprintf "%a" Kastens.pp_failure f)
  in
  Printf.printf "%-28s expr needs %d visit(s)\n" "  Kastens analysis:"
    (Kastens.visit_count plan "expr");
  let store, sstats = Static_eval.eval plan (tree ()) in
  show "static (ordered):" (Store.get store (Store.root store) "value");
  Printf.printf "%-28s %d visits, %d rules, zero dependency analysis\n"
    "  visit statistics:" sstats.Static_eval.visits sstats.Static_eval.evals;

  (* 4. Parallel combined evaluation on the simulated network
     multiprocessor: the tree splits at `block` nonterminals. *)
  let big =
    (* a larger expression so there is something to distribute *)
    let rec build k =
      if k = 0 then Expr_ag.num 1
      else
        Expr_ag.let_in
          (Printf.sprintf "v%d" k)
          (Expr_ag.num k)
          (Expr_ag.add (Expr_ag.var (Printf.sprintf "v%d" k)) (build (k - 1)))
    in
    Expr_ag.main (build 40)
  in
  let opts =
    {
      Pag_parallel.Runner.default_options with
      Pag_parallel.Runner.machines = 3;
      use_librarian = false;
    }
  in
  let result = Pag_parallel.Runner.run_sim opts g (Some plan) big in
  Printf.printf "%-28s %s  (%d fragments, %.4fs simulated, %d messages)\n"
    "parallel combined (3 mach):"
    (Value.to_string (List.assoc "value" result.Pag_parallel.Runner.r_attrs))
    result.Pag_parallel.Runner.r_fragments result.Pag_parallel.Runner.r_time
    result.Pag_parallel.Runner.r_messages;

  print_endline "\nAll evaluators agree; see DESIGN.md for the architecture."
