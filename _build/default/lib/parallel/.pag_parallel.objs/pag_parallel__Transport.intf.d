lib/parallel/transport.mli: Message
