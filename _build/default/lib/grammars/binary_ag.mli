(** Knuth's binary-numbers attribute grammar (integer part), the original
    motivating example for attribute grammars: a bit string's value is
    computed with an inherited [scale] flowing right-to-left and a
    synthesized [value]/[len] flowing up. One visit suffices — the
    single-visit counterpart to {!Repmin_ag}. *)

open Pag_core

val grammar : Grammar.t

(** [of_bits [1;0;1]] is the parse tree of the bit string "101". The list
    must be nonempty and contain only 0 and 1. *)
val of_bits : int list -> Tree.t

val random_bits : Random.State.t -> max_len:int -> int list

(** Ground truth: value of the bit string. *)
val reference_value : int list -> int
