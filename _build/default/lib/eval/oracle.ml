open Pag_core

exception Cycle of string

type ctx = {
  store : Store.t;
  g : Grammar.t;
  parent : (int, Tree.t * int) Hashtbl.t; (* node id -> parent, rhs pos *)
  in_progress : (int * string, unit) Hashtbl.t;
}

let build_parent_map root =
  let tbl = Hashtbl.create 256 in
  Tree.iter
    (fun node ->
      Array.iteri
        (fun i c -> Hashtbl.replace tbl c.Tree.id (node, i + 1))
        node.Tree.children)
    root;
  tbl

let find_rule (p : Grammar.production) pos attr =
  let found = ref None in
  Array.iter
    (fun (r : Grammar.rule) ->
      if r.Grammar.r_target.Grammar.pos = pos && r.Grammar.r_target.Grammar.attr = attr
      then found := Some r)
    p.Grammar.p_rules;
  !found

let rec demand ctx node attr =
  match Store.get_opt ctx.store node attr with
  | Some v -> v
  | None ->
      let key = (node.Tree.id, attr) in
      if Hashtbl.mem ctx.in_progress key then
        raise
          (Cycle
             (Printf.sprintf "attribute %s.%s of node %d depends on itself"
                node.Tree.sym attr node.Tree.id));
      Hashtbl.add ctx.in_progress key ();
      let kind =
        match Grammar.find_attr (Grammar.symbol ctx.g node.Tree.sym) attr with
        | Some a -> a.Grammar.a_kind
        | None -> raise (Store.Error ("oracle: unknown attribute " ^ attr))
      in
      let defining_node, rule =
        match kind with
        | Grammar.Syn -> (
            match node.Tree.prod with
            | None -> raise (Store.Error "oracle: leaf attribute unset")
            | Some p -> (
                match find_rule p 0 attr with
                | Some r -> (node, r)
                | None ->
                    raise
                      (Store.Error
                         (Printf.sprintf "oracle: no rule for %s.%s"
                            node.Tree.sym attr))))
        | Grammar.Inh -> (
            match Hashtbl.find_opt ctx.parent node.Tree.id with
            | None ->
                raise
                  (Store.Error
                     (Printf.sprintf
                        "oracle: inherited %s.%s of the root was not preset"
                        node.Tree.sym attr))
            | Some (parent, pos) -> (
                match parent.Tree.prod with
                | None -> assert false
                | Some p -> (
                    match find_rule p pos attr with
                    | Some r -> (parent, r)
                    | None ->
                        raise
                          (Store.Error
                             (Printf.sprintf "oracle: no rule for %d.%s in %S"
                                pos attr p.Grammar.p_name)))))
      in
      (* Demand the rule's dependencies first, then apply it. *)
      List.iter
        (fun (dn, dattr) -> ignore (demand ctx dn dattr))
        (Store.rule_deps ctx.store defining_node rule);
      ignore (Store.apply_rule ctx.store defining_node rule);
      Hashtbl.remove ctx.in_progress key;
      Store.get ctx.store node attr

let make_ctx ?root_inh g t =
  let store = Store.create ?root_inh g t in
  {
    store;
    g;
    parent = build_parent_map t;
    in_progress = Hashtbl.create 64;
  }

let eval ?root_inh g t =
  let store, _ =
    Uid.with_base 0 (fun () ->
        let ctx = make_ctx ?root_inh g t in
        Store.iter_instances ctx.store (fun node a ->
            ignore (demand ctx node a.Grammar.a_name));
        ctx.store)
  in
  store

let eval_root_demand ?root_inh g t =
  let store, _ =
    Uid.with_base 0 (fun () ->
        let ctx = make_ctx ?root_inh g t in
        let sym = Grammar.symbol g t.Tree.sym in
        Array.iter
          (fun (a : Grammar.attr_decl) ->
            if a.a_kind = Grammar.Syn then ignore (demand ctx t a.a_name))
          sym.Grammar.s_attrs;
        ctx.store)
  in
  store
