(** Parser for the attribute-grammar specification language (see
    {!Spec_ast} for the concrete syntax). *)

exception Error of int * string
(** line, message *)

val parse : string -> Spec_ast.t

val parse_file : string -> Spec_ast.t
