(** Table-driven LALR(1) parser.

    Input is a token stream of (terminal name, semantic value); the parser
    drives [shift]/[reduce] callbacks to build whatever the caller wants —
    the {!Agspec} front end builds {!Pag_core.Tree} parse trees for the
    generated evaluators. *)

exception
  Syntax_error of {
    position : int;  (** 0-based index into the token stream *)
    token : string;
    expected : string list;  (** terminals acceptable in the parse state *)
  }

(** [parse tables ~shift ~reduce tokens]: [shift name v] converts a
    terminal's semantic value, [reduce prod children] builds a node.
    Returns the semantic value of the start symbol. *)
val parse :
  Lalr.tables ->
  shift:(string -> 'v -> 'a) ->
  reduce:(Cfg.production -> 'a list -> 'a) ->
  (string * 'v) list ->
  'a
