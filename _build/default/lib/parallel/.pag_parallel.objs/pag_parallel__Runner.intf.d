lib/parallel/runner.mli: Cost Ethernet Grammar Kastens Netsim Pag_analysis Pag_core Split Trace Tree Value Worker
