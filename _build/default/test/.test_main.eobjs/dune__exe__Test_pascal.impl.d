test/test_pascal.ml: Alcotest Ast Driver Interp Lexer List Pag_grammars Parser Pascal Peephole Pp Printf Progen QCheck QCheck_alcotest Random String Token Vax
