(** Bounded provenance recorder: one record per rule firing.

    The causal counterpart of the event recorder in {!Obs}: where spans say
    {e when} a machine was busy, provenance records say {e why} an
    attribute instance has its value — which rule instance fired, into
    which target slot, reading which argument slots, on which machine,
    over which time interval. {!Causal} (in [pag_eval]) materializes the
    records of a run into the provenance DAG behind [pagc --explain] and
    [pagc --profile].

    The buffer is a memory-capped ring in struct-of-arrays layout: a full
    ring overwrites its oldest record and counts it in {!dropped} (the
    sliding-window regime of a long-running serve session), arguments past
    [arity] are counted in {!arg_drops}. Recording into {!disabled} costs
    one branch and allocates nothing, so the engine's firing path keeps
    its instrumentation permanently.

    Not domain-safe: give each domain its own ring and analyze them
    together (see {!Pag_eval.Engine.run_steal}). *)

type t

(** Materialized view of one recorded firing. Slot ids are private to the
    recording engine's store; {!Causal} maps them to global (node,
    attribute) instances. *)
type firing = {
  f_rid : int;
  f_pid : int;
  f_target : int;
  f_t0 : float;
  f_t1 : float;
  f_replay : bool;  (** synthesized for a memoized subtree replay *)
  f_args : int array;
}

(** The no-op sink: recording calls return immediately. *)
val disabled : t

(** 2^18 records (~20 MB); caps a serve tenant's window by default. *)
val default_cap : int

(** [create ~cap ~arity ()] — ring of up to [cap] records with up to
    [arity] argument slots each (defaults: {!default_cap}, 8). Storage
    starts small and doubles on demand; [hint] pre-sizes it for an
    expected record count (still capped by [cap]), sparing the doubling
    blits when the caller knows its firing total. *)
val create : ?cap:int -> ?arity:int -> ?hint:int -> unit -> t

val enabled : t -> bool

(** Records currently held (at most [cap]). *)
val length : t -> int

(** Records ever written, including overwritten ones. *)
val total : t -> int

(** Records lost to ring overwrite ([total - cap], floored at 0). *)
val dropped : t -> int

(** Argument entries lost to per-record [arity] overflow. *)
val arg_drops : t -> int

(** Append one firing record. Amortized O(1): storage starts small and
    doubles up to [cap], after which the ring overwrites in place. *)
val record :
  t ->
  rid:int ->
  pid:int ->
  target:int ->
  t0:float ->
  t1:float ->
  replay:bool ->
  unit

(** Append one argument slot to the most recent record. *)
val arg : t -> int -> unit

(** Patch the end timestamp of the most recent record (a scheduler that
    learns the firing's priced duration only after recording it). *)
val set_last_t1 : t -> float -> unit

(** The [j]-th surviving record, oldest first ([0 .. length - 1]). *)
val get : t -> int -> firing

(** Surviving records, oldest first. *)
val iter : t -> (firing -> unit) -> unit

(** Forget everything recorded (the ring's arrays are kept). *)
val clear : t -> unit
