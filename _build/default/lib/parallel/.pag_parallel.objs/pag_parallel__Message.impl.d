lib/parallel/message.ml: Format Pag_core Pag_util Rope String Value
