(** The environment a compiler process (worker, librarian, coordinator) runs
    against — the seam between the simulated network multiprocessor and the
    real multicore runtime.

    On the {!Runner.run_sim} transport, [delay] advances virtual time and
    [send]/[recv] go through the Ethernet model; on the {!Runner.run_domains}
    transport, [delay] is a no-op (the CPU does the actual work) and messages
    travel over blocking in-memory queues. The process code is identical.

    When fault injection is active, processes do not use these raw
    environments directly: {!Reliable.wrap} layers sequence numbers,
    acknowledgements, retransmission and duplicate suppression on top and
    hands back an [env] with the same shape. *)

type env = {
  e_id : int;  (** this machine's id: 0 parser, 1..k evaluators, k+1 librarian *)
  e_delay : float -> unit;
  e_send : dst:int -> Message.t -> unit;
  e_recv : unit -> Message.t;
  e_recv_timeout : float -> Message.t option;
      (** receive with a timeout in transport seconds; [None] on expiry *)
  e_time : unit -> float;  (** current transport time (virtual or wall) *)
  e_mark : string -> unit;  (** phase mark in the trace (no-op if untraced) *)
  e_flush : unit -> unit;
      (** block until outgoing traffic is safely delivered — a no-op on raw
          transports, a drain of unacknowledged messages under {!Reliable} *)
}
