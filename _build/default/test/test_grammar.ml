open Pag_core

let check_bool = Alcotest.(check bool)

let f_const args =
  ignore args;
  Value.Int 0

(* A minimal correct grammar for probing the validator. *)
let good_symbols () =
  let open Grammar in
  [
    terminal "NUM" [ "v" ];
    nonterminal "s" [ syn "out" ];
    nonterminal "e" [ syn "val"; inh "env" ];
  ]

let good_productions () =
  let open Grammar in
  [
    production ~name:"start" ~lhs:"s" ~rhs:[ "e" ]
      [
        rule (lhs "out") ~deps:[ rhs 1 "val" ] (fun a -> a.(0));
        rule (rhs 1 "env") ~deps:[] f_const;
      ];
    production ~name:"num" ~lhs:"e" ~rhs:[ "NUM" ]
      [ rule (lhs "val") ~deps:[ rhs 1 "v"; lhs "env" ] (fun a -> a.(0)) ];
  ]

let make_good () =
  Grammar.make ~name:"t" ~start:"s" (good_symbols ()) (good_productions ())

let test_valid_grammar () =
  let g = make_good () in
  Alcotest.(check string) "name" "t" (Grammar.name g);
  Alcotest.(check int) "two prods for nothing" 1
    (List.length (Grammar.prods_for g "s"));
  check_bool "terminal" true (Grammar.symbol g "NUM").Grammar.s_term;
  Alcotest.(check int) "attr_pos" 1 (Grammar.attr_pos g ~sym:"e" ~attr:"env");
  Alcotest.(check (list string)) "reduced" [] (Grammar.check_reduced g)

let expect_error f =
  match f () with
  | exception Grammar.Error _ -> ()
  | _ -> Alcotest.fail "expected Grammar.Error"

let test_missing_rule () =
  (* 'env' of e never defined in production start *)
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s" (good_symbols ())
        [
          Grammar.production ~name:"start" ~lhs:"s" ~rhs:[ "e" ]
            [ Grammar.rule (Grammar.lhs "out") ~deps:[ Grammar.rhs 1 "val" ] f_const ];
          List.nth (good_productions ()) 1;
        ])

let test_double_definition () =
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s" (good_symbols ())
        [
          Grammar.production ~name:"start" ~lhs:"s" ~rhs:[ "e" ]
            [
              Grammar.rule (Grammar.lhs "out") ~deps:[] f_const;
              Grammar.rule (Grammar.rhs 1 "env") ~deps:[] f_const;
              Grammar.rule (Grammar.rhs 1 "env") ~deps:[] f_const;
            ];
          List.nth (good_productions ()) 1;
        ])

let test_terminal_lhs () =
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s" (good_symbols ())
        (Grammar.production ~name:"bad" ~lhs:"NUM" ~rhs:[] []
        :: good_productions ()))

let test_undeclared_symbol () =
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s" (good_symbols ())
        (Grammar.production ~name:"bad" ~lhs:"s" ~rhs:[ "ghost" ] []
        :: good_productions ()))

let test_bad_start () =
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"ghost" (good_symbols ()) (good_productions ()));
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"NUM" (good_symbols ()) (good_productions ()))

let test_dep_on_invisible () =
  (* depending on a synthesized attribute of the LHS is not allowed *)
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s" (good_symbols ())
        [
          Grammar.production ~name:"start" ~lhs:"s" ~rhs:[ "e" ]
            [
              Grammar.rule (Grammar.lhs "out") ~deps:[ Grammar.lhs "out" ] f_const;
              Grammar.rule (Grammar.rhs 1 "env") ~deps:[] f_const;
            ];
          List.nth (good_productions ()) 1;
        ])

let test_duplicate_symbol () =
  expect_error (fun () ->
      Grammar.make ~name:"t" ~start:"s"
        (Grammar.terminal "NUM" [] :: good_symbols ())
        (good_productions ()))

let test_inherited_terminal () =
  (* terminals cannot have inherited attributes — via the validator *)
  match
    Grammar.make ~name:"t" ~start:"s"
      [
        { (Grammar.terminal "NUM" [ "v" ]) with
          Grammar.s_attrs = [| Grammar.inh "bad" |];
        };
        Grammar.nonterminal "s" [ Grammar.syn "out" ];
      ]
      []
  with
  | exception Grammar.Error _ -> ()
  | _ -> Alcotest.fail "expected Grammar.Error"

let test_unreachable_warning () =
  let g =
    Grammar.make ~name:"t" ~start:"s"
      (Grammar.nonterminal "orphan" [] :: good_symbols ())
      (Grammar.production ~name:"orphan" ~lhs:"orphan" ~rhs:[] []
      :: good_productions ())
  in
  check_bool "warns about unreachable" true (Grammar.check_reduced g <> [])

let test_priority_flag () =
  let g =
    Grammar.make ~name:"t" ~start:"s"
      [
        Grammar.nonterminal "s" [ Grammar.syn "out" ];
        Grammar.nonterminal "e"
          [ Grammar.syn "val"; Grammar.inh ~priority:true "env" ];
        Grammar.terminal "NUM" [ "v" ];
      ]
      (good_productions ())
  in
  check_bool "env is priority" true (Grammar.is_priority g ~sym:"e" ~attr:"env");
  check_bool "val is not" false (Grammar.is_priority g ~sym:"e" ~attr:"val")

let suite =
  [
    ( "grammar",
      [
        Alcotest.test_case "valid grammar" `Quick test_valid_grammar;
        Alcotest.test_case "missing rule" `Quick test_missing_rule;
        Alcotest.test_case "double definition" `Quick test_double_definition;
        Alcotest.test_case "terminal lhs" `Quick test_terminal_lhs;
        Alcotest.test_case "undeclared symbol" `Quick test_undeclared_symbol;
        Alcotest.test_case "bad start" `Quick test_bad_start;
        Alcotest.test_case "invisible dep" `Quick test_dep_on_invisible;
        Alcotest.test_case "duplicate symbol" `Quick test_duplicate_symbol;
        Alcotest.test_case "inherited terminal" `Quick test_inherited_terminal;
        Alcotest.test_case "unreachable warning" `Quick test_unreachable_warning;
        Alcotest.test_case "priority flag" `Quick test_priority_flag;
      ] );
  ]
