open Pag_core
open Pag_obs
open Netsim

type options = {
  machines : int;
  mode : Worker.mode;
  schedule : [ `Static | `Dynamic | `Steal ];
  granularity : float;
  use_priority : bool;
  use_librarian : bool;
  use_hashcons : bool;
  use_dag : bool;
  cost : Cost.t;
  net_params : Ethernet.params;
  phase_label : int -> string option;
  faults : Faults.spec option;
  fault_rto : float option;
  fault_watchdog : float option;
  telemetry : bool;
  provenance : bool;
}

let default_options =
  {
    machines = 1;
    mode = `Combined;
    schedule = `Static;
    granularity = 1.0;
    use_priority = true;
    use_librarian = true;
    use_hashcons = false;
    use_dag = false;
    cost = Cost.default;
    net_params = Ethernet.default_params;
    phase_label = (fun _ -> None);
    faults = None;
    fault_rto = None;
    fault_watchdog = None;
    telemetry = false;
    provenance = false;
  }

type result = {
  r_attrs : (string * Value.t) list;
  r_time : float;
  r_worker_stats : Worker.stats array;
  r_trace : Trace.t option;
  r_messages : int;
  r_bytes : int;
  r_fragments : int;
  r_split : Split.plan;
  r_dynamic_fraction : float;
  r_retransmits : int;
  r_recovered : bool;
  r_fault_stats : Faults.stats option;
  r_obs : Obs.recorder option;
  r_report : Obs.Report.t;
  r_prov : (Prov.t * Pag_eval.Engine.t) list;
  r_tree : Tree.t;
}

let machine_name ~fragments id =
  if id = 0 then "parser"
  else if id <= fragments then
    Printf.sprintf "eval-%c" (Char.chr (Char.code 'a' + id - 1))
  else "librarian"

let worker_config opts g plan =
  {
    Worker.wc_grammar = g;
    wc_plan = plan;
    wc_mode = opts.mode;
    wc_cost = opts.cost;
    wc_use_priority = opts.use_priority;
    wc_librarian = None (* patched per run: librarian machine id *);
    wc_phase_label = opts.phase_label;
    wc_obs = Obs.null_ctx (* patched per run: per-machine context *);
    wc_sharing = None (* patched per run: tree-sharing classes *);
    wc_prov = Prov.disabled (* patched per run: per-machine ring *);
    wc_prov_dwell = true;
    wc_engine_hook = ignore (* patched per run: engine capture *);
  }

let make_task plan (f : Split.fragment) nodes_by_id =
  let cuts =
    List.map
      (fun cut_id ->
        let frag =
          match Split.fragment_of_cut_node plan cut_id with
          | Some fr -> fr
          | None -> assert false
        in
        (Hashtbl.find nodes_by_id cut_id, frag + 1))
      (Split.cuts_of plan f.Split.fr_id)
  in
  {
    Worker.t_frag_id = f.Split.fr_id;
    t_root = f.Split.fr_root;
    t_cuts = cuts;
    t_parent_machine =
      (match f.Split.fr_parent with None -> 0 | Some p -> p + 1);
    t_root_is_tree_root = f.Split.fr_id = 0;
  }

let dynamic_fraction stats =
  let dyn =
    Array.fold_left (fun a s -> a + s.Worker.ws_dynamic_rules) 0 stats
  in
  let st = Array.fold_left (fun a s -> a + s.Worker.ws_static_rules) 0 stats in
  if dyn + st = 0 then 0.0 else float_of_int dyn /. float_of_int (dyn + st)

let prepare opts g tree =
  let plan = Split.decompose g tree ~machines:opts.machines ~granularity:opts.granularity in
  let nodes_by_id = Hashtbl.create 1024 in
  Tree.iter (fun n -> Hashtbl.replace nodes_by_id n.Tree.id n) tree;
  (plan, nodes_by_id)

let sum_retransmits links =
  List.fold_left (fun a l -> a + (Reliable.stats l).Reliable.rs_retransmits) 0 links

(* ------------------------- telemetry ------------------------- *)

let mode_string = function `Combined -> "combined" | `Dynamic -> "dynamic"

let run_label opts ~transport =
  let kind =
    match opts.schedule with
    | `Steal -> "steal"
    | `Static | `Dynamic -> mode_string opts.mode
  in
  Printf.sprintf "%s, %d machine%s (%s)" kind opts.machines
    (if opts.machines = 1 then "" else "s")
    transport

(* Per-machine telemetry contexts. Each slot is written by exactly one
   machine (its own), so an array is race-free on the domains transport;
   the main thread reads it only after joining every domain. *)
let make_ctxs opts ~n ~clock =
  if opts.telemetry then
    Array.init n (fun pid -> Obs.make_ctx ~pid ~clock)
  else Array.make (max 1 n) Obs.null_ctx

(* Per-machine provenance rings and the engines that resolve them. Like
   [make_ctxs], each slot is written by exactly one machine and read only
   after the run joins. *)
let make_provs opts g ~tree ~n =
  if opts.provenance then begin
    (* Pre-size each machine's ring near its share of the tree's rule
       instances: a from-scratch run fires each rule once. The hint stays
       deliberately under the likely final count — doubling once from a
       near miss costs one small blit, while over-provisioning n machines
       pays for zeroing arrays nothing ever writes. *)
    let total =
      Tree.fold
        (fun acc nd ->
          match nd.Tree.prod with
          | None -> acc
          | Some p -> acc + Array.length p.Grammar.p_rules)
        0 tree
    in
    let hint = total / max 1 (n - 2) in
    let arity = Pag_eval.Causal.arity_for g in
    Array.init n (fun _ -> Prov.create ~hint ~arity ())
  end
  else Array.make (max 1 n) Prov.disabled

let collect_prov opts provs engs =
  if not opts.provenance then []
  else
    List.filter_map
      (fun i ->
        match engs.(i) with
        | Some e when Prov.enabled provs.(i) -> Some (provs.(i), e)
        | _ -> None)
      (List.init (Array.length engs) Fun.id)

let merged_metrics ctxs =
  let reg = Obs.Metrics.create () in
  Array.iter (fun c -> Obs.Metrics.merge ~into:reg c.Obs.x_metrics) ctxs;
  reg

(* Re-express the simulator's own trace in telemetry terms: message arrows
   become flow events, idle segments become "idle" spans, phase marks
   become instants. Worker/coordinator spans are recorded directly; the
   trace supplies everything only the network layer sees. *)
let recorder_of_trace tr =
  let r = Obs.create () in
  Trace.iter_segments tr (fun (s : Trace.segment) ->
      if s.Trace.sg_kind = Trace.Idle then
        Obs.span r ~pid:s.Trace.sg_pid ~t0:s.Trace.sg_t0 ~t1:s.Trace.sg_t1
          "idle");
  Trace.iter_arrows tr (fun (a : Trace.arrow) ->
      Obs.flow r ~src:a.Trace.ar_src ~dst:a.Trace.ar_dst ~send:a.Trace.ar_send
        ~recv:a.Trace.ar_recv a.Trace.ar_label);
  Trace.iter_marks tr (fun (m : Trace.mark) ->
      Obs.instant r ~pid:m.Trace.mk_pid ~t:m.Trace.mk_time m.Trace.mk_label);
  r

let merge_recorders ctxs extra =
  let rs = Array.to_list (Array.map (fun c -> c.Obs.x_rec) ctxs) in
  Obs.merge (extra @ rs)

let build_report ~label ~clock ~horizon ~machines ~worker_stats ~messages
    ~bytes ~retransmits ~metrics =
  let dyn =
    Array.fold_left (fun a s -> a + s.Worker.ws_dynamic_rules) 0 worker_stats
  in
  let st =
    Array.fold_left (fun a s -> a + s.Worker.ws_static_rules) 0 worker_stats
  in
  {
    Obs.Report.rp_label = label;
    rp_clock = clock;
    rp_horizon = horizon;
    rp_machines = machines;
    rp_dynamic_rules = dyn;
    rp_static_rules = st;
    rp_messages = messages;
    rp_bytes = bytes;
    rp_retransmits = retransmits;
    rp_metrics = metrics;
  }

(* A worker that never reported under fault injection was crashed or called
   off; without faults it is a protocol bug. *)
let collect_worker_stats ~faulty stats =
  Array.map
    (function
      | Some s -> s
      | None when faulty -> Worker.zero_stats
      | None -> failwith "worker did not finish")
    stats

(* ------------------------- simulation ------------------------- *)

module S = Sim.Make (struct
  type msg = Message.t
end)

(* Floor retransmission timeout and liveness watchdog, in virtual seconds,
   sized for the test fixtures (sub-second compute phases). A peer is
   presumed dead only after the full backoff horizon
   rto * (2 + 4 + ... + 2^max_tries) ~ 51s of silence. A simulated machine
   acknowledges nothing while it burns CPU inside one static visit, so the
   horizon must exceed the longest compute phase — when the caller does not
   pin [fault_rto]/[fault_watchdog], {!auto_timeouts} scales them to the
   workload from the cost model (a machine's share of the tree's rules),
   never below these floors. *)
let sim_rto = 0.1

let sim_max_tries = 8

let sim_watchdog = 0.5

(* Workload-scaled timeouts: a machine's longest silent phase is on the
   order of its share of the whole tree's semantic rules, all fired at
   static-rule cost between messages. Probing at a quarter of that phase
   keeps retransmissions sparse during compute; the watchdog then allows
   four silent probe intervals before declaring the peer dead. On the
   paper-scale Pascal workload this lands at the 5s / 20s that E10 used to
   hand-tune; on the test fixtures both floors win. *)
let auto_timeouts opts tree =
  let rules =
    Tree.fold
      (fun acc (n : Tree.t) ->
        match n.Tree.prod with
        | None -> acc
        | Some p -> acc + Array.length p.Grammar.p_rules)
      0 tree
  in
  let phase =
    float_of_int rules *. opts.cost.Cost.static_rule
    /. float_of_int (max 1 opts.machines)
  in
  let rto = Float.max sim_rto (phase /. 4.0) in
  (rto, Float.max sim_watchdog (4.0 *. rto))

let rec message_label = function
  | Message.Attr { attr; _ } -> attr
  | Message.Subtree { frag; _ } -> Printf.sprintf "subtree %d" frag
  | Message.Edit { node; _ } -> Printf.sprintf "edit %d" node
  | Message.Code_frag _ -> "code fragment"
  | Message.Resolve _ -> "resolve"
  | Message.Final _ -> "final code"
  | Message.Stop -> "stop"
  | Message.Data { payload; _ } -> message_label payload
  | Message.Ack _ -> "ack"
  | Message.Ping -> "ping"
  | Message.Attr_bind { attr; _ } -> attr ^ " (bind)"
  | Message.Attr_ref { attr; _ } -> attr ^ " (ref)"
  | Message.Code_frag_bind _ -> "code fragment (bind)"
  | Message.Code_frag_ref _ -> "code fragment (ref)"
  | Message.Need_intern _ -> "need intern"
  | Message.Backfill _ -> "intern backfill"

let sim_env sim id =
  {
    Transport.e_id = id;
    e_delay = S.delay;
    e_send =
      (fun ~dst m ->
        S.send ~dst ~size:(Message.size m) ~label:(message_label m) m);
    e_recv = S.recv;
    e_recv_timeout = S.recv_timeout;
    (* Direct scheduler read, not the [ETime] effect: the clock runs once
       per provenance-recorded firing, and fibers all share one OS thread,
       so the unsynchronized read is exact. *)
    e_time = (fun () -> S.now sim);
    e_mark = S.mark;
    e_flush = (fun () -> ());
  }

let run_sim_static opts g plan tree =
  let split, nodes_by_id = prepare opts g tree in
  (* Sharing classes are computed once on the numbered tree; the immutable
     arrays are read concurrently by every machine's memo. On the static
     schedule [--dag] collapses on the same unit as [--hashcons] — the
     subtree memo keyed on these classes — so both flags route here. *)
  let sharing =
    if opts.use_hashcons || opts.use_dag then Some (Tree.sharing tree)
    else None
  in
  let nfrags = Split.count split in
  let librarian_id = if opts.use_librarian then Some (nfrags + 1) else None in
  let sim = S.create ~params:opts.net_params () in
  Option.iter (S.set_faults sim) opts.faults;
  let faulty = Option.is_some opts.faults in
  let auto_rto, auto_watchdog = auto_timeouts opts tree in
  let rto = Option.value opts.fault_rto ~default:auto_rto in
  let watchdog = Option.value opts.fault_watchdog ~default:auto_watchdog in
  let ctxs = make_ctxs opts ~n:(nfrags + 2) ~clock:(fun () -> S.time ()) in
  let provs = make_provs opts g ~tree ~n:(nfrags + 2) in
  let prov_engs = Array.make (nfrags + 2) None in
  (* With a fault plan — even an all-zero one, for overhead measurement —
     every machine talks through its own reliable-delivery layer. *)
  let links = ref [] in
  let machine_env id =
    let obs = ctxs.(id) in
    let raw = sim_env sim id in
    let base, link =
      if faulty then begin
        let l = Reliable.wrap ~obs ~rto ~max_tries:sim_max_tries raw in
        links := l :: !links;
        (Reliable.env l, Some l)
      end
      else (raw, None)
    in
    (* Interning sits above reliable delivery: binds and references are
       retransmitted like any payload, backfills cover reordering. *)
    let env =
      if opts.use_hashcons then Intern.env (Intern.wrap ~obs base) else base
    in
    (env, link, obs)
  in
  let stats = Array.make nfrags None in
  let attrs = ref [] in
  let recovered = ref false in
  let finish = ref 0.0 in
  (* pid 0: coordinator *)
  let coord_env, coord_link, coord_obs = machine_env 0 in
  let recovery =
    Option.map
      (fun link ->
        {
          Coordinator.rc_link = link;
          rc_kplan = plan;
          rc_cost = opts.cost;
          rc_watchdog = watchdog;
        })
      coord_link
  in
  let _ =
    S.spawn sim ~name:"parser" (fun () ->
        let a, rec_ =
          Coordinator.run ~obs:coord_obs ?recovery ?sharing coord_env g ~tree
            ~plan:split ~librarian:librarian_id
        in
        attrs := a;
        recovered := rec_;
        finish := S.time ())
  in
  (* pids 1..nfrags: evaluators *)
  Array.iter
    (fun (f : Split.fragment) ->
      let id = f.Split.fr_id in
      let env, _, wobs = machine_env (id + 1) in
      let _ =
        S.spawn sim
          ~name:(machine_name ~fragments:nfrags (id + 1))
          (fun () ->
            let cfg =
              { (worker_config opts g plan) with
                Worker.wc_librarian = librarian_id;
                wc_obs = wobs;
                wc_sharing = sharing;
                wc_prov = provs.(id + 1);
                wc_engine_hook = (fun e -> prov_engs.(id + 1) <- Some e);
              }
            in
            stats.(id) <- Some (Worker.run env cfg (make_task split f nodes_by_id)))
      in
      ())
    (Split.fragments split);
  (* librarian *)
  (match librarian_id with
  | Some lid ->
      let env, _, lobs = machine_env lid in
      let _ =
        S.spawn sim ~name:"librarian" (fun () ->
            Librarian.run ~obs:lobs env ~coordinator:0)
      in
      ()
  | None -> ());
  S.run sim;
  let worker_stats = collect_worker_stats ~faulty stats in
  let net = S.network sim in
  let tr = S.trace sim in
  let horizon = Trace.horizon tr in
  let npids = nfrags + 1 + (match librarian_id with Some _ -> 1 | None -> 0) in
  (* Boundary messages originated per machine, acks included: read off the
     trace so parser and librarian are covered too. *)
  let arrow_sends = Array.make (nfrags + 2) 0 in
  Trace.iter_arrows tr (fun (a : Trace.arrow) ->
      if a.Trace.ar_src >= 0 && a.Trace.ar_src < Array.length arrow_sends then
        arrow_sends.(a.Trace.ar_src) <- arrow_sends.(a.Trace.ar_src) + 1);
  let machine_rows =
    List.init npids (fun pid ->
        let active = Trace.active_time tr ~pid in
        {
          Obs.Report.rm_pid = pid;
          rm_name = machine_name ~fragments:nfrags pid;
          rm_active = active;
          rm_idle = Float.max 0.0 (horizon -. active);
          rm_util = Trace.utilization tr ~pid;
          rm_sends = arrow_sends.(pid);
          rm_max_queue = S.max_queue_depth sim pid;
        })
  in
  let metrics = merged_metrics ctxs in
  let report =
    build_report
      ~label:(run_label opts ~transport:"sim")
      ~clock:"simulated" ~horizon ~machines:machine_rows ~worker_stats
      ~messages:(Ethernet.messages_sent net) ~bytes:(Ethernet.bytes_sent net)
      ~retransmits:(sum_retransmits !links) ~metrics
  in
  let r_obs =
    if opts.telemetry then Some (merge_recorders ctxs [ recorder_of_trace tr ])
    else None
  in
  {
    r_attrs = !attrs;
    r_time = !finish;
    r_worker_stats = worker_stats;
    r_trace = Some tr;
    r_messages = Ethernet.messages_sent net;
    r_bytes = Ethernet.bytes_sent net;
    r_fragments = nfrags;
    r_split = split;
    r_dynamic_fraction = dynamic_fraction worker_stats;
    r_retransmits = sum_retransmits !links;
    r_recovered = !recovered;
    r_fault_stats = S.fault_stats sim;
    r_obs;
    r_report = report;
    r_prov = collect_prov opts provs prov_engs;
    r_tree = tree;
  }

(* ------------------------- work stealing (sim) ------------------------- *)

module ESt = Pag_eval.Store
module Eng = Pag_eval.Engine

(* Dense node index -> owning fragment id, from the Split placement. Each
   fragment claims its subtree, stopping above cut children (they are
   other fragments' roots and claim themselves). *)
let fragment_affinity split store =
  let owner = Array.make (max 1 (ESt.node_count store)) 0 in
  let is_cut (n : Tree.t) =
    Split.fragment_of_cut_node split n.Tree.id <> None
  in
  Array.iter
    (fun (f : Split.fragment) ->
      let stack = ref [ f.Split.fr_root ] in
      let rec drain () =
        match !stack with
        | [] -> ()
        | n :: rest ->
            stack := rest;
            owner.(ESt.dense_index store n) <- f.Split.fr_id;
            Array.iter
              (fun c -> if not (is_cut c) then stack := c :: !stack)
              n.Tree.children;
            drain ()
      in
      drain ())
    (Split.fragments split);
  owner

(* Steal-probe wire sizes: a request is one small frame, a reply carries
   the stolen instance ids. *)
let probe_request_bytes = 64

let probe_reply_bytes k = 32 + (8 * k)

(* Work-stealing evaluation over the network simulator.

   Unlike the static protocol there is no fragment shipping dance: the
   tree is shared (the paper's machines would each hold their fragment;
   here affinity seeding plays that role), and [opts.machines] evaluator
   fibers drain one shared engine. Fragment [i] seeds machine
   [(i mod machines) + 1], so with more machines than fragments the extras
   start empty and steal their way in — exactly the skewed-tree case the
   static placement cannot serve. Firing charges [Cost.steal_rule]; a
   steal probe charges a request and reply frame on the shared Ethernet
   (so steal traffic contends with everything else) plus the round-trip
   latency. Fault plans are priced against steal probes only (drop: the
   probe times out and is retried after backoff; dup: the reply frame is
   paid twice; crashes are a static-protocol notion and are ignored —
   DESIGN §11 discusses why). *)
let run_sim_steal opts g tree =
  let split, _nodes_by_id = prepare opts g tree in
  let m = max 1 opts.machines in
  let sim = S.create ~params:opts.net_params () in
  let net = S.network sim in
  let injector = Option.map Faults.make opts.faults in
  let rto = Option.value opts.fault_rto ~default:sim_rto in
  let store = ESt.create_shared g tree in
  (* With [--dag] the shared DAG is the evaluation substrate: repeated
     subtrees get one rule-instance set per (class × inherited
     fingerprint), parked occurrences own no instances at all, and their
     synthesized attributes arrive by projection when the leader's region
     completes. The steal scheduler drains the same deques; the DAG
     runtime only adds work through the two hooks below (projection
     releases consumers, materialization seeds fresh instances). *)
  let dag = if opts.use_dag then Some (Tree.dag tree) else None in
  let dplan =
    Option.map (fun d -> Pag_eval.Dag.plan g store d) dag
  in
  let eng =
    Eng.create ?rules_for:(Option.map Pag_eval.Dag.rules_for dplan) g store
  in
  (* One ring for the shared engine: machine fibers are cooperative on one
     OS thread, so retargeting the pid before each fire is race-free.
     Durations are priced at the steal-rule cost — the virtual clock
     advances only through the [S.delay] after each firing. *)
  let prov =
    if opts.provenance then
      Prov.create ~hint:(Eng.rule_count eng)
        ~arity:(Pag_eval.Causal.arity_for g) ()
    else Prov.disabled
  in
  if opts.provenance then
    Eng.set_prov ~pid:0 ~dwell_dynamic:opts.cost.Cost.steal_rule
      ~clock:(fun () -> S.now sim)
      eng prov;
  let gr = Eng.graph eng in
  let n = Eng.rule_count eng in
  let node_frag = fragment_affinity split store in
  let machine_of_frag f = (f mod m) + 1 in
  let owner_machine rid =
    machine_of_frag node_frag.(ESt.dense_index store (Eng.node_of eng rid))
  in
  (* readiness: plain counters — all fibers share one OS thread. The
     array is growable because DAG materialization appends instances. *)
  let waiting = ref (Array.make (max 1 n) 0) in
  let deques = Array.init (m + 1) (fun _ -> Steal.create ()) in
  let stats = Array.init (m + 1) (fun _ -> Steal.zero_stats ()) in
  let own_rids = Array.make (m + 1) 0 in
  let own_edges = Array.make (m + 1) 0 in
  let live = ref 0 and pending = ref 0 in
  for rid = 0 to n - 1 do
    if not (Eng.is_dead eng rid) then begin
      incr live;
      let k = owner_machine rid in
      own_rids.(k) <- own_rids.(k) + 1;
      Eng.iter_slot_args eng rid (fun slot ->
          own_edges.(k) <- own_edges.(k) + 1;
          if not (ESt.slot_is_set store slot) then
            !waiting.(rid) <- !waiting.(rid) + 1);
      if !waiting.(rid) = 0 then begin
        Steal.push deques.(k) rid;
        incr pending
      end
    end
  done;
  let fired_total = ref 0 in
  let finisher = ref (-1) in
  (* The machine whose fiber is currently running; hook-pushed work lands
     on its deque (cooperative fibers, so the read is race-free). *)
  let cur = ref 1 in
  let rt =
    match dplan with
    | None -> None
    | Some p ->
        let rt = Pag_eval.Dag.make p eng gr in
        let release slot =
          Eng.iter_consumers gr slot (fun c ->
              if not (Eng.is_dead eng c) then begin
                !waiting.(c) <- !waiting.(c) - 1;
                if !waiting.(c) = 0 then begin
                  incr pending;
                  Steal.push deques.(!cur) c
                end
              end)
        in
        Pag_eval.Dag.set_hooks rt ~on_defined:release
          ~on_new_rids:(fun lo hi ->
            if hi > Array.length !waiting then begin
              let w = Array.make (max hi (2 * Array.length !waiting)) 0 in
              Array.blit !waiting 0 w 0 (Array.length !waiting);
              waiting := w
            end;
            for rid = lo to hi - 1 do
              if not (Eng.is_dead eng rid) then begin
                incr live;
                let wct = ref 0 in
                Eng.iter_slot_args eng rid (fun slot ->
                    if not (ESt.slot_is_set store slot) then incr wct);
                !waiting.(rid) <- !wct;
                if !wct = 0 then begin
                  incr pending;
                  Steal.push deques.(!cur) rid
                end
              end
            done);
        Pag_eval.Dag.prime rt;
        Some rt
  in
  let sends = Array.make (m + 1) 0 in
  (* Assignment pricing: with the DAG, each fragment ships as its real
     wire encoding — class bodies cross once per machine, repeats as
     backreferences ({!Split.dag_bytes}). *)
  let frag_wire (f : Split.fragment) =
    match dag with
    | Some d -> Split.dag_bytes split d.Tree.dg_sharing f
    | None -> f.Split.fr_bytes
  in
  let bytes_per_machine = Array.make (m + 1) 0 in
  Array.iter
    (fun (f : Split.fragment) ->
      let k = machine_of_frag f.Split.fr_id in
      bytes_per_machine.(k) <- bytes_per_machine.(k) + frag_wire f)
    (Split.fragments split);
  let ctxs = make_ctxs opts ~n:(m + 1) ~clock:(fun () -> S.time ()) in
  let attrs = ref [] in
  let finish = ref 0.0 in
  (* pid 0: the parser hands each machine its affinity share, then
     collects root attributes and one Stop per machine. *)
  let _ =
    S.spawn sim ~name:"parser" (fun () ->
        for k = 1 to m do
          let msg =
            Message.Subtree
              {
                frag = k - 1;
                bytes = bytes_per_machine.(k);
                uid_base = k * Uid.stride;
              }
          in
          S.send ~dst:k ~size:(Message.size msg) ~label:(message_label msg)
            msg
        done;
        let stops = ref 0 in
        let acc = ref [] in
        while !stops < m do
          match S.recv () with
          | Message.Stop -> incr stops
          | Message.Attr { attr; value; _ } -> acc := (attr, value) :: !acc
          | _ -> ()
        done;
        attrs := List.rev !acc;
        finish := S.time ())
  in
  for k = 1 to m do
    let _ =
      S.spawn sim
        ~name:(machine_name ~fragments:m k)
        (fun () ->
          let my = deques.(k) in
          let st = stats.(k) in
          let obs = ctxs.(k) in
          (* deterministic per-machine xorshift for victim selection *)
          let seed = ref (((k * 0x9E3779B1) lor 1) land 0x3FFFFFFF) in
          let next_victim () =
            let x = !seed in
            let x = x lxor (x lsl 13) in
            let x = x lxor (x lsr 7) in
            let x = (x lxor (x lsl 17)) land 0x3FFFFFFF in
            seed := x;
            let v = 1 + (x mod (m - 1)) in
            if v >= k then v + 1 else v
          in
          (match S.recv () with
          | Message.Subtree { bytes; _ } ->
              S.delay (float_of_int bytes *. opts.cost.Cost.rebuild_per_byte)
          | _ -> ());
          (* This machine's share of instance-table construction. Unlike
             the 1987 dynamic scheduler's linked dependency graph, the
             flat table and its CSR edges are array arithmetic: no
             per-edge insertion charge, and the per-instance constant is
             one counter store, not a graph-node allocation. *)
          S.delay (float_of_int own_rids.(k) *. opts.cost.Cost.steal_init);
          let cursor = ref (k * Uid.stride) in
          let exec rid =
            cur := k;
            if opts.provenance then Eng.set_prov_pid eng k;
            (match rt with
            | None -> Uid.with_counter cursor (fun () -> Eng.fire eng rid)
            | Some rt ->
                (* Mark inside the counter bracket: the fiber draws labels
                   from its own cursor, so that is the cursor whose motion
                   witnesses a uid-consuming (untaintable) rule. *)
                Uid.with_counter cursor (fun () ->
                    let u0 = Uid.mark () in
                    Eng.fire eng rid;
                    if Uid.mark () <> u0 then
                      Pag_eval.Dag.note_taint rt
                        (Eng.node_of eng rid).Tree.id));
            S.delay opts.cost.Cost.steal_rule;
            st.Steal.st_fired <- st.Steal.st_fired + 1;
            incr fired_total;
            if !fired_total = !live then finisher := k;
            let tgt = Eng.target_slot eng rid in
            Eng.iter_consumers gr tgt (fun c ->
                if not (Eng.is_dead eng c) then begin
                  !waiting.(c) <- !waiting.(c) - 1;
                  if !waiting.(c) = 0 then begin
                    incr pending;
                    Steal.push my c;
                    let depth = Steal.size my in
                    if depth > st.Steal.st_hwm then st.Steal.st_hwm <- depth
                  end
                end);
            (* Projections and materializations cascade back through the
               hooks, landing on this machine's deque. *)
            Option.iter (fun rt -> Pag_eval.Dag.note_define rt tgt) rt;
            decr pending
          in
          (* When the deques run dry with the store incomplete, a parked
             occurrence's gate is fed by its own class's output (repmin
             shape): demand-materialize the lowest stalled region and keep
             going. Any fiber may hit this; the choice is deterministic. *)
          let more () =
            !pending > 0
            ||
            match rt with
            | Some rt when ESt.missing store > 0 ->
                cur := k;
                Pag_eval.Dag.force_stalled rt
            | _ -> false
          in
          let backoff = ref 0 in
          while more () do
            match Steal.pop my with
            | Some rid ->
                backoff := 0;
                exec rid
            | None ->
                let got =
                  m > 1
                  &&
                  let v = next_victim () in
                  st.Steal.st_attempts <- st.Steal.st_attempts + 1;
                  let verdict =
                    Option.map (fun i -> Faults.judge i ~src:k ~dst:v) injector
                  in
                  let now = S.time () in
                  let req_arrival =
                    Ethernet.transmit net ~now ~size:probe_request_bytes
                  in
                  sends.(k) <- sends.(k) + 1;
                  (match verdict with
                  | Some x when x.Faults.v_drop ->
                      (* probe lost: wait out the timeout, retry later *)
                      S.delay (rto +. (req_arrival -. now));
                      st.Steal.st_idle <- st.Steal.st_idle +. rto;
                      false
                  | _ ->
                      (* The stolen instances are in flight until the
                         reply arrives: they leave the victim's deque now
                         but only enter ours after the reply delay, so no
                         machine can re-steal them mid-transfer. (Pushing
                         before the delay livelocks two machines: the
                         victim, now idle, steals the batch back inside
                         our reply window, and each successful probe
                         resets both backoffs.) *)
                      let items = Steal.steal_some deques.(v) in
                      let stolen = List.length items in
                      let reply_size = probe_reply_bytes stolen in
                      let reply_arrival =
                        Ethernet.transmit net ~now:req_arrival
                          ~size:reply_size
                      in
                      let reply_arrival =
                        match verdict with
                        | Some x ->
                            if x.Faults.v_dup then
                              ignore
                                (Ethernet.transmit net ~now:req_arrival
                                   ~size:reply_size);
                            reply_arrival +. x.Faults.v_delay
                        | None -> reply_arrival
                      in
                      S.delay (Float.max 0.0 (reply_arrival -. now));
                      List.iter (Steal.push my) items;
                      if stolen > 0 then begin
                        st.Steal.st_successes <- st.Steal.st_successes + 1;
                        st.Steal.st_stolen <- st.Steal.st_stolen + stolen;
                        true
                      end
                      else false)
                in
                if got then backoff := 0
                else begin
                  (* exponential backoff between failed probes *)
                  let wait = 0.0005 *. float_of_int (1 lsl min !backoff 6) in
                  S.delay wait;
                  st.Steal.st_idle <- st.Steal.st_idle +. wait;
                  if !backoff < 16 then incr backoff
                end
          done;
          let complete =
            match rt with None -> true | Some _ -> ESt.missing store = 0
          in
          if !finisher = k && complete then
            List.iter
              (fun (attr, value) ->
                let msg = Message.Attr { node = tree.Tree.id; attr; value } in
                sends.(k) <- sends.(k) + 1;
                S.send ~dst:0 ~size:(Message.size msg)
                  ~label:(message_label msg) msg)
              (ESt.root_attrs store);
          sends.(k) <- sends.(k) + 1;
          S.send ~dst:0 ~size:(Message.size Message.Stop)
            ~label:(message_label Message.Stop) Message.Stop;
          if Obs.ctx_enabled obs then begin
            let reg = obs.Obs.x_metrics in
            Obs.Metrics.add
              (Obs.Metrics.counter reg "steal.fires")
              st.Steal.st_fired;
            Obs.Metrics.add
              (Obs.Metrics.counter reg "steal.attempts")
              st.Steal.st_attempts;
            Obs.Metrics.add
              (Obs.Metrics.counter reg "steal.successes")
              st.Steal.st_successes;
            Obs.Metrics.add
              (Obs.Metrics.counter reg "steal.stolen")
              st.Steal.st_stolen;
            Obs.Metrics.set_gauge_max reg "steal.deque_hwm"
              (float_of_int st.Steal.st_hwm);
            Obs.Metrics.add_gauge reg "steal.idle_wait" st.Steal.st_idle
          end)
    in
    ()
  done;
  S.run sim;
  let stuck =
    match rt with
    | None -> !fired_total < !live
    | Some _ -> ESt.missing store > 0
  in
  if stuck then
    raise
      (Eng.Cycle
         (Printf.sprintf
            "dynamic evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            (ESt.missing store)));
  (match rt with
  | Some rt when Obs.ctx_enabled ctxs.(0) ->
      let s = Pag_eval.Dag.stats rt in
      let reg = ctxs.(0).Obs.x_metrics in
      Obs.Metrics.add
        (Obs.Metrics.counter reg "dag.regions")
        s.Pag_eval.Dag.dg_regions;
      Obs.Metrics.add
        (Obs.Metrics.counter reg "dag.projected_slots")
        s.Pag_eval.Dag.dg_projected_slots;
      Obs.Metrics.add
        (Obs.Metrics.counter reg "dag.materialized_rids")
        s.Pag_eval.Dag.dg_materialized_rids
  | _ -> ());
  let worker_stats =
    Array.init m (fun i ->
        let st = stats.(i + 1) in
        {
          Worker.zero_stats with
          ws_dynamic_rules = st.Steal.st_fired;
          ws_graph_nodes = own_rids.(i + 1);
          ws_graph_edges = own_edges.(i + 1);
          ws_sends = sends.(i + 1);
          ws_idle_wait = st.Steal.st_idle;
        })
  in
  let tr = S.trace sim in
  let horizon = Trace.horizon tr in
  let machine_rows =
    List.init (m + 1) (fun pid ->
        let active = Trace.active_time tr ~pid in
        {
          Obs.Report.rm_pid = pid;
          rm_name = machine_name ~fragments:m pid;
          rm_active = active;
          rm_idle = Float.max 0.0 (horizon -. active);
          rm_util = Trace.utilization tr ~pid;
          rm_sends = (if pid = 0 then m else sends.(pid));
          rm_max_queue = S.max_queue_depth sim pid;
        })
  in
  let metrics = merged_metrics ctxs in
  let report =
    build_report
      ~label:(run_label opts ~transport:"sim")
      ~clock:"simulated" ~horizon ~machines:machine_rows ~worker_stats
      ~messages:(Ethernet.messages_sent net) ~bytes:(Ethernet.bytes_sent net)
      ~retransmits:0 ~metrics
  in
  let r_obs =
    if opts.telemetry then Some (merge_recorders ctxs [ recorder_of_trace tr ])
    else None
  in
  {
    r_attrs = !attrs;
    r_time = !finish;
    r_worker_stats = worker_stats;
    r_trace = Some tr;
    r_messages = Ethernet.messages_sent net;
    r_bytes = Ethernet.bytes_sent net;
    r_fragments = m;
    r_split = split;
    r_dynamic_fraction = 1.0;
    r_retransmits = 0;
    r_recovered = false;
    r_fault_stats = Option.map Faults.stats injector;
    r_obs;
    r_report = report;
    r_prov = (if opts.provenance then [ (prov, eng) ] else []);
    r_tree = tree;
  }

let run_sim opts g plan tree =
  match opts.schedule with
  | `Steal -> run_sim_steal opts g tree
  | `Static | `Dynamic -> run_sim_static opts g plan tree

(* ------------------------- domains ------------------------- *)

module Chan = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.add v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.take t.q in
    Mutex.unlock t.m;
    v

  (* Stdlib [Condition] has no timed wait; poll instead. The 0.5 ms tick is
     far below the retransmission timeout it serves. *)
  let pop_timeout t d =
    let deadline = Unix.gettimeofday () +. d in
    let rec go () =
      Mutex.lock t.m;
      match Queue.take_opt t.q with
      | Some v ->
          Mutex.unlock t.m;
          Some v
      | None ->
          Mutex.unlock t.m;
          if Unix.gettimeofday () >= deadline then None
          else begin
            Unix.sleepf 0.0005;
            go ()
          end
    in
    go ()
end

(* Real-time counterparts of the simulator's timeouts: domain message
   latency is microseconds, so these sit orders of magnitude above it. *)
let dom_rto = 0.02

let dom_watchdog = 0.2

(* Work-stealing evaluation on real domains: delegate the whole schedule
   to {!Pag_eval.Engine.run_steal}, with owner affinity from the Split
   placement. The CPU does the actual work, so no cost model applies;
   [st_idle] counts backoff spin rounds, not seconds, and is reported
   through metrics only. *)
let run_domains_steal opts g tree =
  let t0 = Unix.gettimeofday () in
  let split, _nodes_by_id = prepare opts g tree in
  let m = max 1 opts.machines in
  let store = ESt.create_shared g tree in
  let dplan =
    if opts.use_dag then Some (Pag_eval.Dag.plan g store (Tree.dag tree))
    else None
  in
  let eng =
    Eng.create ?rules_for:(Option.map Pag_eval.Dag.rules_for dplan) g store
  in
  let gr = Eng.graph eng in
  (* The DAG runtime's projection bookkeeping is single-threaded, and
     [Engine.run_steal] owns the whole schedule on this transport — so
     [--dag] here materializes every region up front and hands run_steal
     the resulting per-occurrence table. No sharing win at runtime (the
     point of --dag on domains is result parity with the other
     transports); the class table still prices the instance build. *)
  (match dplan with
  | None -> ()
  | Some p ->
      let rt = Pag_eval.Dag.make p eng gr in
      while Pag_eval.Dag.force_stalled rt do
        ()
      done);
  let node_frag = fragment_affinity split store in
  let owner rid =
    node_frag.(ESt.dense_index store (Eng.node_of eng rid)) mod m
  in
  (* One ring per domain (the shared engine's attached ring is not
     domain-safe); pids are domain ids, timestamps wall-clock relative to
     the run start. *)
  let provs =
    if opts.provenance then
      let arity = Pag_eval.Causal.arity_for g in
      Some (Array.init m (fun _ -> Prov.create ~arity ()))
    else None
  in
  let fires, stats =
    Eng.run_steal ~domains:m ~owner ~uid_base:Uid.stride ?prov:provs
      ~prov_clock:(fun () -> Unix.gettimeofday () -. t0)
      eng gr
  in
  let t1 = Unix.gettimeofday () in
  let ctxs =
    make_ctxs opts ~n:(m + 1) ~clock:(fun () -> Unix.gettimeofday () -. t0)
  in
  Array.iteri
    (fun d (st : Steal.stats) ->
      let obs = ctxs.(d + 1) in
      if Obs.ctx_enabled obs then begin
        let reg = obs.Obs.x_metrics in
        Obs.Metrics.add (Obs.Metrics.counter reg "steal.fires") st.Steal.st_fired;
        Obs.Metrics.add
          (Obs.Metrics.counter reg "steal.attempts")
          st.Steal.st_attempts;
        Obs.Metrics.add
          (Obs.Metrics.counter reg "steal.successes")
          st.Steal.st_successes;
        Obs.Metrics.add (Obs.Metrics.counter reg "steal.stolen") st.Steal.st_stolen;
        Obs.Metrics.set_gauge_max reg "steal.deque_hwm"
          (float_of_int st.Steal.st_hwm);
        Obs.Metrics.add_gauge reg "steal.idle_spins" st.Steal.st_idle
      end)
    stats;
  ignore fires;
  let worker_stats =
    Array.map
      (fun (st : Steal.stats) ->
        { Worker.zero_stats with ws_dynamic_rules = st.Steal.st_fired })
      stats
  in
  let horizon = t1 -. t0 in
  let machine_rows =
    List.init (m + 1) (fun pid ->
        {
          Obs.Report.rm_pid = pid;
          rm_name = machine_name ~fragments:m pid;
          rm_active = (if pid = 0 then 0.0 else horizon);
          rm_idle = (if pid = 0 then horizon else 0.0);
          rm_util = (if pid = 0 then 0.0 else 1.0);
          rm_sends = 0;
          rm_max_queue = -1;
        })
  in
  let metrics = merged_metrics ctxs in
  let report =
    build_report
      ~label:(run_label opts ~transport:"domains")
      ~clock:"wall clock" ~horizon ~machines:machine_rows ~worker_stats
      ~messages:0 ~bytes:0 ~retransmits:0 ~metrics
  in
  let r_obs =
    if opts.telemetry then Some (merge_recorders ctxs []) else None
  in
  {
    r_attrs = ESt.root_attrs store;
    r_time = t1 -. t0;
    r_worker_stats = worker_stats;
    r_trace = None;
    r_messages = 0;
    r_bytes = 0;
    r_fragments = m;
    r_split = split;
    r_dynamic_fraction = 1.0;
    r_retransmits = 0;
    r_recovered = false;
    r_fault_stats = None;
    r_obs;
    r_report = report;
    r_prov =
      (match provs with
      | Some ps -> Array.to_list (Array.map (fun p -> (p, eng)) ps)
      | None -> []);
    r_tree = tree;
  }

let run_domains_static opts g plan tree =
  let split, nodes_by_id = prepare opts g tree in
  (* Same collapse unit as the sim static path: [--dag] = class-keyed memo. *)
  let sharing =
    if opts.use_hashcons || opts.use_dag then Some (Tree.sharing tree)
    else None
  in
  let nfrags = Split.count split in
  let librarian_id = if opts.use_librarian then Some (nfrags + 1) else None in
  let nmachines = nfrags + 2 in
  let chans = Array.init nmachines (fun _ -> Chan.create ()) in
  let faulty = Option.is_some opts.faults in
  (* Crashed machines never start on the domains transport (crash times are
     a simulator notion); their mail is discarded unread. *)
  let crashed = Array.make nmachines false in
  (match opts.faults with
  | Some sp ->
      List.iter
        (fun (m, _t) -> if m >= 0 && m < nmachines then crashed.(m) <- true)
        sp.Faults.fs_crashes
  | None -> ());
  (* One fault injector and one reorder stash per machine: each is touched
     only by its owner's domain, keeping the PRNG streams race-free and
     per-sender deterministic. *)
  let injectors =
    match opts.faults with
    | Some sp -> Array.init nmachines (fun _ -> Some (Faults.make sp))
    | None -> Array.make nmachines None
  in
  let stashes = Array.init nmachines (fun _ -> ref None) in
  let start = Unix.gettimeofday () in
  let ctxs =
    make_ctxs opts ~n:nmachines ~clock:(fun () -> Unix.gettimeofday () -. start)
  in
  let provs = make_provs opts g ~tree ~n:nmachines in
  let prov_engs = Array.make nmachines None in
  let send_from src ~dst m =
    if not crashed.(dst) then
      match injectors.(src) with
      | None -> Chan.push chans.(dst) m
      | Some inj -> (
          let v = Faults.judge inj ~src ~dst in
          let stash = stashes.(src) in
          if v.Faults.v_drop then ()
          else if v.Faults.v_reorder && !stash = None then
            (* Hold this message back past the sender's next transmission. *)
            stash := Some (dst, m)
          else begin
            Chan.push chans.(dst) m;
            if v.Faults.v_dup then Chan.push chans.(dst) m;
            match !stash with
            | Some (sdst, sm) ->
                Chan.push chans.(sdst) sm;
                stash := None
            | None -> ()
          end)
  in
  let links = Mutex.create () in
  let all_links = ref [] in
  let machine_env id =
    let obs = ctxs.(id) in
    let raw =
      {
        Transport.e_id = id;
        e_delay = (fun _ -> ());
        e_send = (fun ~dst m -> send_from id ~dst m);
        e_recv = (fun () -> Chan.pop chans.(id));
        e_recv_timeout = (fun d -> Chan.pop_timeout chans.(id) d);
        e_time = Unix.gettimeofday;
        e_mark = (fun _ -> ());
        e_flush = (fun () -> ());
      }
    in
    let base, link =
      if faulty then begin
        let l = Reliable.wrap ~obs ~rto:dom_rto raw in
        Mutex.lock links;
        all_links := l :: !all_links;
        Mutex.unlock links;
        (Reliable.env l, Some l)
      end
      else (raw, None)
    in
    let env =
      if opts.use_hashcons then Intern.env (Intern.wrap ~obs base) else base
    in
    (env, link, obs)
  in
  let t0 = Unix.gettimeofday () in
  let worker_domains =
    Array.map
      (fun (f : Split.fragment) ->
        let id = f.Split.fr_id in
        if crashed.(id + 1) then None
        else
          Some
            (Domain.spawn (fun () ->
                 let env, _, wobs = machine_env (id + 1) in
                 let cfg =
                   { (worker_config opts g plan) with
                     Worker.wc_librarian = librarian_id;
                     wc_obs = wobs;
                     wc_sharing = sharing;
                     wc_prov = provs.(id + 1);
                     wc_prov_dwell = false (* wall clock advances in-firing *);
                     wc_engine_hook = (fun e -> prov_engs.(id + 1) <- Some e);
                   }
                 in
                 Worker.run env cfg (make_task split f nodes_by_id))))
      (Split.fragments split)
  in
  let librarian_domain =
    match librarian_id with
    | Some lid when not crashed.(lid) ->
        Some
          (Domain.spawn (fun () ->
               let env, _, lobs = machine_env lid in
               Librarian.run ~obs:lobs env ~coordinator:0))
    | _ -> None
  in
  let coord_env, coord_link, coord_obs = machine_env 0 in
  let recovery =
    Option.map
      (fun link ->
        {
          Coordinator.rc_link = link;
          rc_kplan = plan;
          rc_cost = opts.cost;
          rc_watchdog = dom_watchdog;
        })
      coord_link
  in
  let attrs, recovered =
    Coordinator.run ~obs:coord_obs ?recovery ?sharing coord_env g ~tree
      ~plan:split ~librarian:librarian_id
  in
  let worker_stats =
    collect_worker_stats ~faulty
      (Array.map (Option.map Domain.join) worker_domains)
  in
  Option.iter (fun d -> ignore (Domain.join d)) librarian_domain;
  let t1 = Unix.gettimeofday () in
  let fault_stats =
    if faulty then begin
      let total = { Faults.st_dropped = 0; st_duplicated = 0; st_delayed = 0 } in
      Array.iter
        (function
          | Some inj ->
              let s = Faults.stats inj in
              total.Faults.st_dropped <- total.Faults.st_dropped + s.Faults.st_dropped;
              total.Faults.st_duplicated <-
                total.Faults.st_duplicated + s.Faults.st_duplicated;
              total.Faults.st_delayed <- total.Faults.st_delayed + s.Faults.st_delayed
          | None -> ())
        injectors;
      Some total
    end
    else None
  in
  let horizon = t1 -. t0 in
  (* No network trace on domains: worker idle-wait measurements stand in
     for activity segments; parser and librarian utilization is unknown. *)
  let machine_rows =
    List.init
      (nfrags + 1 + match librarian_id with Some _ -> 1 | None -> 0)
      (fun pid ->
        let active, idle, util, sends =
          if pid >= 1 && pid <= nfrags then begin
            let s = worker_stats.(pid - 1) in
            let idle = Float.min horizon s.Worker.ws_idle_wait in
            let active = Float.max 0.0 (horizon -. idle) in
            ( active,
              idle,
              (if horizon > 0.0 then active /. horizon else 0.0),
              s.Worker.ws_sends )
          end
          else (0.0, horizon, 0.0, 0)
        in
        {
          Obs.Report.rm_pid = pid;
          rm_name = machine_name ~fragments:nfrags pid;
          rm_active = active;
          rm_idle = idle;
          rm_util = util;
          rm_sends = sends;
          rm_max_queue = -1;
        })
  in
  let metrics = merged_metrics ctxs in
  let report =
    build_report
      ~label:(run_label opts ~transport:"domains")
      ~clock:"wall clock" ~horizon ~machines:machine_rows ~worker_stats
      ~messages:0 ~bytes:0 ~retransmits:(sum_retransmits !all_links) ~metrics
  in
  let r_obs =
    if opts.telemetry then Some (merge_recorders ctxs []) else None
  in
  {
    r_attrs = attrs;
    r_time = t1 -. t0;
    r_worker_stats = worker_stats;
    r_trace = None;
    r_messages = 0;
    r_bytes = 0;
    r_fragments = nfrags;
    r_split = split;
    r_dynamic_fraction = dynamic_fraction worker_stats;
    r_retransmits = sum_retransmits !all_links;
    r_recovered = recovered;
    r_fault_stats = fault_stats;
    r_obs;
    r_report = report;
    r_prov = collect_prov opts provs prov_engs;
    r_tree = tree;
  }

let run_domains opts g plan tree =
  match opts.schedule with
  | `Steal -> run_domains_steal opts g tree
  | `Static | `Dynamic -> run_domains_static opts g plan tree
