(* Telemetry layer tests: recorder/metrics semantics, trace buffers, the
   Gantt golden render, exporter output shape (validated with a small JSON
   parser written here), and qcheck properties tying the metrics registry
   to the legacy stats records it mirrors. *)

open Pag_obs
open Pag_parallel
open Pag_grammars
open Netsim

let qc ?(count = 25) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --------------- recorder --------------- *)

let test_disabled_recorder () =
  let r = Obs.disabled in
  Obs.span r ~pid:0 ~t0:0.0 ~t1:1.0 "x";
  Obs.instant r ~pid:0 ~t:0.5 "y";
  Obs.flow r ~src:0 ~dst:1 ~send:0.0 ~recv:0.1 "z";
  check_bool "disabled" false (Obs.enabled r);
  check_int "no events" 0 (Obs.length r);
  check_bool "null ctx disabled" false (Obs.ctx_enabled Obs.null_ctx)

let test_recording_order () =
  let r = Obs.create () in
  Obs.span r ~pid:3 ~t0:1.0 ~t1:2.0 "a";
  Obs.instant r ~pid:4 ~t:1.5 "b";
  Obs.flow r ~src:1 ~dst:2 ~send:0.25 ~recv:0.75 "c";
  check_int "three events" 3 (Obs.length r);
  let seen = ref [] in
  Obs.iter r (fun e -> seen := e :: !seen);
  match List.rev !seen with
  | [ a; b; c ] ->
      check_bool "span kind" true (a.Obs.e_kind = Obs.Span);
      check_int "span pid" 3 a.Obs.e_pid;
      check_string "span name" "a" a.Obs.e_name;
      check_bool "instant kind" true (b.Obs.e_kind = Obs.Instant);
      check_bool "instant t0 = t1" true (b.Obs.e_t0 = b.Obs.e_t1);
      check_bool "flow kind" true (c.Obs.e_kind = Obs.Flow);
      check_int "flow src" 1 c.Obs.e_pid;
      check_int "flow dst" 2 c.Obs.e_dst
  | _ -> Alcotest.fail "expected exactly three events"

let test_recorder_growth () =
  let r = Obs.create () in
  for i = 0 to 4999 do
    Obs.instant r ~pid:(i mod 7) ~t:(float_of_int i) "tick"
  done;
  check_int "all retained" 5000 (Obs.length r);
  let n = ref 0 and last = ref (-1.0) in
  Obs.iter r (fun e ->
      check_bool "in order" true (e.Obs.e_t0 > !last);
      last := e.Obs.e_t0;
      incr n);
  check_int "iterated all" 5000 !n

let test_merge_sorts () =
  let a = Obs.create () and b = Obs.create () in
  Obs.span a ~pid:0 ~t0:2.0 ~t1:3.0 "late";
  Obs.span a ~pid:0 ~t0:0.0 ~t1:1.0 "early";
  Obs.instant b ~pid:1 ~t:1.5 "mid";
  let m = Obs.merge [ a; b ] in
  check_int "merged length" 3 (Obs.length m);
  let names = ref [] in
  Obs.iter m (fun e -> names := e.Obs.e_name :: !names);
  Alcotest.(check (list string))
    "sorted by start" [ "early"; "mid"; "late" ] (List.rev !names)

let test_with_span_passthrough () =
  let x = Obs.make_ctx ~pid:7 ~clock:(fun () -> 42.0) in
  check_int "with_span returns" 9 (Obs.with_span x "work" (fun () -> 9));
  check_int "span recorded" 1 (Obs.length x.Obs.x_rec);
  check_int "null passthrough" 9
    (Obs.with_span Obs.null_ctx "work" (fun () -> 9))

(* --------------- metrics --------------- *)

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a.count" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "counter" 5 (Obs.Metrics.value c);
  check_int "by name" 5 (Obs.Metrics.counter_value m "a.count");
  check_int "absent is 0" 0 (Obs.Metrics.counter_value m "nope");
  Obs.Metrics.set_gauge m "g" 2.5;
  Obs.Metrics.add_gauge m "g" 1.5;
  check_bool "gauge" true (Obs.Metrics.gauge_value m "g" = Some 4.0);
  let h = Obs.Metrics.histogram m "h" in
  Obs.Metrics.observe h 10.0;
  Obs.Metrics.observe h 300.0;
  let names = List.map fst (Obs.Metrics.rows m) in
  Alcotest.(check (list string))
    "rows sorted" [ "a.count"; "g"; "h" ] names

let test_metrics_null_is_dead () =
  let m = Obs.Metrics.null in
  let c = Obs.Metrics.counter m "x" in
  Obs.Metrics.incr c;
  check_int "dead counter drops" 0 (Obs.Metrics.value c);
  Obs.Metrics.set_gauge m "g" 9.0;
  check_bool "dead gauge drops" true (Obs.Metrics.gauge_value m "g" = None);
  check_bool "no rows" true (Obs.Metrics.rows m = [])

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter a "n") 3;
  Obs.Metrics.add (Obs.Metrics.counter b "n") 4;
  Obs.Metrics.add_gauge a "g" 1.0;
  Obs.Metrics.add_gauge b "g" 2.0;
  Obs.Metrics.observe (Obs.Metrics.histogram a "h") 8.0;
  Obs.Metrics.observe (Obs.Metrics.histogram b "h") 16.0;
  let m = Obs.Metrics.create () in
  Obs.Metrics.merge ~into:m a;
  Obs.Metrics.merge ~into:m b;
  check_int "counters sum" 7 (Obs.Metrics.counter_value m "n");
  check_bool "gauges sum" true (Obs.Metrics.gauge_value m "g" = Some 3.0);
  check_bool "histogram merged" true
    (List.mem_assoc "h" (Obs.Metrics.rows m))

(* --------------- json fragments --------------- *)

let test_json_escape () =
  check_string "quotes and controls" "a\\\"b\\\\c\\n\\u0001"
    (Obs.Json.escape "a\"b\\c\n\001");
  check_string "nan" "0" (Obs.Json.num Float.nan);
  check_string "inf" "0" (Obs.Json.num Float.infinity);
  check_string "integral" "3" (Obs.Json.num 3.0);
  check_string "fractional" "0.250000" (Obs.Json.num 0.25)

(* --------------- trace buffers (array-backed) --------------- *)

let test_trace_buffers () =
  let tr = Trace.create () in
  for i = 0 to 999 do
    let t = float_of_int i in
    Trace.add_segment tr ~pid:(i mod 3) ~t0:t ~t1:(t +. 0.5)
      (if i mod 2 = 0 then Trace.Active else Trace.Idle)
  done;
  Trace.add_arrow tr ~src:0 ~dst:1 ~send:10.0 ~recv:1200.0 ~label:"m";
  Trace.add_mark tr ~pid:2 ~time:3.0 ~label:"phase";
  check_int "segments" 1000 (Trace.num_segments tr);
  check_int "arrows" 1 (Trace.num_arrows tr);
  check_int "marks" 1 (Trace.num_marks tr);
  check_bool "horizon from arrow" true (Trace.horizon tr = 1200.0);
  (* iterators and list accessors agree, in recording order *)
  let via_iter = ref [] in
  Trace.iter_segments tr (fun s -> via_iter := s :: !via_iter);
  check_bool "lists match iterators" true
    (List.rev !via_iter = Trace.segments tr);
  let t0s = List.map (fun s -> s.Trace.sg_t0) (Trace.segments tr) in
  check_bool "recording order" true (List.sort compare t0s = t0s);
  (* active time counts only Active segments of that pid: pids 0 and 2 own
     the even (Active) segments in thirds *)
  let act0 = Trace.active_time tr ~pid:0 in
  check_bool "active time positive" true (act0 > 0.0);
  check_bool "active <= horizon" true (act0 <= Trace.horizon tr)

(* --------------- Gantt golden --------------- *)

let golden_trace () =
  let tr = Trace.create () in
  Trace.add_segment tr ~pid:0 ~t0:0.0 ~t1:0.4 Trace.Active;
  Trace.add_segment tr ~pid:0 ~t0:0.4 ~t1:1.0 Trace.Idle;
  Trace.add_segment tr ~pid:1 ~t0:0.0 ~t1:0.2 Trace.Idle;
  Trace.add_segment tr ~pid:1 ~t0:0.2 ~t1:1.0 Trace.Active;
  Trace.add_mark tr ~pid:0 ~time:0.4 ~label:"handoff";
  Trace.add_arrow tr ~src:0 ~dst:1 ~send:0.4 ~recv:0.5 ~label:"msg";
  tr

let golden_names = function 0 -> "parser" | _ -> "worker"

let test_gantt_golden () =
  let rendered = Gantt.render ~width:40 ~names:golden_names (golden_trace ()) in
  let expected =
    "       0                                 1.000s\n\
     parser ################|.......................\n\
     worker ........################################\n\
     messages: 1\n\
    \    0.4000s  parser -> worker  (msg)\n\
    \  mark   0.4000s parser: handoff\n"
  in
  check_string "golden chart" expected rendered

(* --------------- a small JSON parser for exporter validation ----------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              Buffer.add_char b '?'
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              Buffer.add_char b (Option.get (peek ()));
              advance ()
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | J_obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* --------------- exporter shape --------------- *)

let sample_recorder () =
  let r = Obs.create () in
  Obs.span r ~pid:0 ~t0:0.0 ~t1:0.5 "parse";
  Obs.span r ~pid:1 ~t0:0.1 ~t1:0.9 "evaluate";
  Obs.instant r ~pid:1 ~t:0.3 "dyn-rule env";
  Obs.flow r ~src:0 ~dst:1 ~send:0.05 ~recv:0.1 "subtree 0";
  Obs.flow r ~src:1 ~dst:0 ~send:0.9 ~recv:0.95 "code";
  r

let sample_names = function 0 -> "parser" | 1 -> "eval-a" | _ -> "?"

let test_chrome_export_shape () =
  let out = Export.chrome ~names:sample_names (sample_recorder ()) in
  let events =
    match obj_field "traceEvents" (parse_json out) with
    | Some (J_arr es) -> es
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_bool "has events" true (List.length events > 0);
  let ph e =
    match obj_field "ph" e with Some (J_str p) -> p | _ -> "?"
  in
  let metas = List.filter (fun e -> ph e = "M") events in
  check_int "one track per machine" 2 (List.length metas);
  List.iter
    (fun e ->
      match obj_field "args" e with
      | Some (J_obj [ ("name", J_str nm) ]) ->
          check_bool "track named" true (nm = "parser" || nm = "eval-a")
      | _ -> Alcotest.fail "metadata without args.name")
    metas;
  (* every flow start has a matching finish with the same id *)
  let ids phase =
    List.filter_map
      (fun e ->
        if ph e = phase then
          match obj_field "id" e with Some (J_num v) -> Some v | _ -> None
        else None)
      events
  in
  let starts = ids "s" and finishes = ids "f" in
  check_int "two flows" 2 (List.length starts);
  check_bool "paired flow ids" true
    (List.sort compare starts = List.sort compare finishes);
  check_bool "spans present" true
    (List.exists (fun e -> ph e = "X") events);
  check_bool "instants present" true
    (List.exists (fun e -> ph e = "i") events)

let test_jsonl_export_lines () =
  let out = Export.jsonl ~names:sample_names (sample_recorder ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  check_int "one line per event" 5 (List.length lines);
  List.iter
    (fun l ->
      match obj_field "kind" (parse_json l) with
      | Some (J_str ("span" | "event" | "flow")) -> ()
      | _ -> Alcotest.fail ("bad jsonl line: " ^ l))
    lines

(* The JSONL export round-trips: parsing every line back reconstructs the
   recorder's events exactly — kind, pid/machine, name, and for flows the
   src/dst/send/recv quadruple — over a real recorded run. *)
let test_jsonl_roundtrip () =
  let t =
    Stackcode_ag.random_program (Random.State.make [| 11 |]) ~depth:6 ~blocks:4
  in
  let plan =
    match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
    | Ok p -> p
    | Error _ -> Alcotest.fail "analysis failed"
  in
  let opts =
    { Runner.default_options with Runner.machines = 3; telemetry = true }
  in
  let r = Runner.run_sim opts Stackcode_ag.grammar (Some plan) t in
  let rec_ = Option.get r.Runner.r_obs in
  let names = Runner.machine_name ~fragments:r.Runner.r_fragments in
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Export.jsonl ~names rec_))
  in
  check_int "one line per event" (Obs.length rec_) (List.length lines);
  let num j k =
    match obj_field k j with
    | Some (J_num v) -> v
    | _ -> Alcotest.fail ("missing number " ^ k)
  in
  let str j k =
    match obj_field k j with
    | Some (J_str v) -> v
    | _ -> Alcotest.fail ("missing string " ^ k)
  in
  let originals = ref [] in
  Obs.iter rec_ (fun e -> originals := e :: !originals);
  List.iter2
    (fun e line ->
      let j = parse_json line in
      match e.Obs.e_kind with
      | Obs.Span ->
          check_string "kind" "span" (str j "kind");
          check_int "pid" e.Obs.e_pid (int_of_float (num j "pid"));
          check_string "machine" (names e.Obs.e_pid) (str j "machine");
          check_string "name" e.Obs.e_name (str j "name");
          check_bool "t0" true (abs_float (num j "t0" -. e.Obs.e_t0) < 1e-6);
          check_bool "t1" true (abs_float (num j "t1" -. e.Obs.e_t1) < 1e-6)
      | Obs.Instant ->
          check_string "kind" "event" (str j "kind");
          check_int "pid" e.Obs.e_pid (int_of_float (num j "pid"));
          check_bool "t" true (abs_float (num j "t" -. e.Obs.e_t0) < 1e-6)
      | Obs.Flow ->
          check_string "kind" "flow" (str j "kind");
          check_int "src" e.Obs.e_pid (int_of_float (num j "src"));
          check_int "dst" e.Obs.e_dst (int_of_float (num j "dst"));
          check_string "name" e.Obs.e_name (str j "name");
          check_bool "send" true
            (abs_float (num j "send" -. e.Obs.e_t0) < 1e-6);
          check_bool "recv" true
            (abs_float (num j "recv" -. e.Obs.e_t1) < 1e-6))
    (List.rev !originals) lines

(* Labeled series sort under their base name: "x.y" never interleaves
   between "x{...}" rows. Golden two-tenant rendering of the service's
   per-tenant families. *)
let test_labeled_rows_golden () =
  let m = Obs.Metrics.create () in
  let bump name tenant v =
    Obs.Metrics.add
      (Obs.Metrics.counter m
         (Obs.Metrics.labeled name [ ("tenant", tenant) ]))
      v
  in
  bump "service.edits" "bob" 2;
  bump "service.edits" "alice" 3;
  Obs.Metrics.set_gauge m "service.edits.rejected" 1.0;
  Obs.Metrics.set_gauge m
    (Obs.Metrics.labeled "service.critical_path_ms" [ ("tenant", "bob") ])
    0.5;
  Obs.Metrics.set_gauge m
    (Obs.Metrics.labeled "service.critical_path_ms" [ ("tenant", "alice") ])
    2.0;
  Obs.Metrics.set_gauge m "service.rounds" 4.0;
  let expected =
    [
      ("service.critical_path_ms{tenant=alice}", "2");
      ("service.critical_path_ms{tenant=bob}", "0.5000");
      ("service.edits{tenant=alice}", "3");
      ("service.edits{tenant=bob}", "2");
      ("service.edits.rejected", "1");
      ("service.rounds", "4");
    ]
  in
  Alcotest.(check (list (pair string string)))
    "grouped rows" expected (Obs.Metrics.rows m)

(* A real parallel run exports valid JSON with one track per machine. *)
let test_chrome_export_real_run () =
  let t =
    Stackcode_ag.random_program (Random.State.make [| 42 |]) ~depth:7 ~blocks:5
  in
  let plan =
    match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
    | Ok p -> p
    | Error _ -> Alcotest.fail "analysis failed"
  in
  let opts =
    { Runner.default_options with Runner.machines = 3; telemetry = true }
  in
  let r = Runner.run_sim opts Stackcode_ag.grammar (Some plan) t in
  let rec_ = Option.get r.Runner.r_obs in
  check_bool "events recorded" true (Obs.length rec_ > 0);
  let out =
    Export.chrome
      ~names:(Runner.machine_name ~fragments:r.Runner.r_fragments)
      rec_
  in
  let events =
    match obj_field "traceEvents" (parse_json out) with
    | Some (J_arr es) -> es
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let metas =
    List.filter
      (fun e -> obj_field "ph" e = Some (J_str "M"))
      events
  in
  (* parser + one evaluator per fragment + librarian *)
  check_int "tracks" (r.Runner.r_fragments + 2) (List.length metas);
  check_bool "message flows exported" true
    (List.exists (fun e -> obj_field "ph" e = Some (J_str "s")) events)

(* --------------- report --------------- *)

let test_report_render () =
  let opts =
    { Runner.default_options with Runner.machines = 3; telemetry = true }
  in
  let t =
    Stackcode_ag.random_program (Random.State.make [| 43 |]) ~depth:7 ~blocks:5
  in
  let plan =
    match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
    | Ok p -> p
    | Error _ -> Alcotest.fail "analysis failed"
  in
  let r = Runner.run_sim opts Stackcode_ag.grammar (Some plan) t in
  let rep = r.Runner.r_report in
  check_int "machine rows" (r.Runner.r_fragments + 2)
    (List.length rep.Obs.Report.rp_machines);
  List.iter
    (fun m ->
      check_bool "util in [0,1]" true
        (m.Obs.Report.rm_util >= 0.0 && m.Obs.Report.rm_util <= 1.0))
    rep.Obs.Report.rp_machines;
  check_bool "fraction matches runner" true
    (Float.abs (Obs.Report.dynamic_fraction rep -. r.Runner.r_dynamic_fraction)
    < 1e-6);
  let text = Obs.Report.render rep in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "report names machines" true (contains text "eval-a");
  check_bool "report has network line" true (contains text "messages");
  check_bool "report has dynamic fraction" true (contains text "dynamic")

(* --------------- qcheck properties --------------- *)

let prop_active_le_horizon =
  let seg =
    QCheck.(
      triple (int_bound 3)
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0))
        bool)
  in
  qc ~count:100 "per-pid active_time <= horizon"
    QCheck.(list_of_size Gen.(1 -- 40) seg)
    (fun segs ->
      let tr = Trace.create () in
      List.iter
        (fun (pid, (t0, dur), active) ->
          Trace.add_segment tr ~pid ~t0 ~t1:(t0 +. dur)
            (if active then Trace.Active else Trace.Idle))
        segs;
      let h = Trace.horizon tr in
      List.for_all
        (fun pid -> Trace.active_time tr ~pid <= h +. 1e-9)
        [ 0; 1; 2; 3 ])

let prop_registry_equals_stats =
  qc ~count:5 "telemetry registry = legacy worker stats"
    QCheck.(int_bound 1000)
    (fun seed ->
      let t =
        Stackcode_ag.random_program
          (Random.State.make [| seed |])
          ~depth:6 ~blocks:4
      in
      let plan =
        match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
        | Ok p -> p
        | Error _ -> QCheck.Test.fail_report "analysis failed"
      in
      let opts =
        { Runner.default_options with Runner.machines = 3; telemetry = true }
      in
      let r = Runner.run_sim opts Stackcode_ag.grammar (Some plan) t in
      let reg = r.Runner.r_report.Obs.Report.rp_metrics in
      let sum f = Array.fold_left (fun a s -> a + f s) 0 r.Runner.r_worker_stats in
      Obs.Metrics.counter_value reg "worker.dynamic_rules"
      = sum (fun s -> s.Worker.ws_dynamic_rules)
      && Obs.Metrics.counter_value reg "worker.static_rules"
         = sum (fun s -> s.Worker.ws_static_rules)
      && Obs.Metrics.counter_value reg "worker.visits"
         = sum (fun s -> s.Worker.ws_visits)
      && Obs.Metrics.counter_value reg "worker.sends"
         = sum (fun s -> s.Worker.ws_sends)
      && Obs.Metrics.counter_value reg "net.bytes"
         = sum (fun s -> s.Worker.ws_bytes_flattened))

let prop_reliable_counters_match =
  qc ~count:3 "reliable.* counters mirror Reliable.stats under faults"
    QCheck.(int_bound 1000)
    (fun seed ->
      let t =
        Stackcode_ag.random_program
          (Random.State.make [| seed |])
          ~depth:6 ~blocks:4
      in
      let plan =
        match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
        | Ok p -> p
        | Error _ -> QCheck.Test.fail_report "analysis failed"
      in
      let spec = { Faults.none with Faults.fs_drop = 0.05; fs_seed = seed } in
      let opts =
        {
          Runner.default_options with
          Runner.machines = 3;
          telemetry = true;
          faults = Some spec;
        }
      in
      let r = Runner.run_sim opts Stackcode_ag.grammar (Some plan) t in
      let reg = r.Runner.r_report.Obs.Report.rp_metrics in
      Obs.Metrics.counter_value reg "reliable.retransmits"
      = r.Runner.r_retransmits)

(* --------------- suite --------------- *)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "disabled recorder" `Quick test_disabled_recorder;
        Alcotest.test_case "recording order" `Quick test_recording_order;
        Alcotest.test_case "buffer growth" `Quick test_recorder_growth;
        Alcotest.test_case "merge sorts" `Quick test_merge_sorts;
        Alcotest.test_case "with_span" `Quick test_with_span_passthrough;
        Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
        Alcotest.test_case "null metrics" `Quick test_metrics_null_is_dead;
        Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
        Alcotest.test_case "json fragments" `Quick test_json_escape;
        Alcotest.test_case "trace buffers" `Quick test_trace_buffers;
        Alcotest.test_case "gantt golden" `Quick test_gantt_golden;
        Alcotest.test_case "chrome export shape" `Quick
          test_chrome_export_shape;
        Alcotest.test_case "jsonl export" `Quick test_jsonl_export_lines;
        Alcotest.test_case "jsonl round-trip, real run" `Quick
          test_jsonl_roundtrip;
        Alcotest.test_case "labeled rows golden" `Quick
          test_labeled_rows_golden;
        Alcotest.test_case "chrome export, real run" `Quick
          test_chrome_export_real_run;
        Alcotest.test_case "report" `Quick test_report_render;
        prop_active_le_horizon;
        prop_registry_equals_stats;
        prop_reliable_counters_match;
      ] );
  ]
