open Ast

type cfg = {
  g_routines : int;
  g_nested : int;
  g_max_level : int;
  g_stmts : int;
  g_expr_depth : int;
  g_reads : int;
}

let small =
  {
    g_routines = 3;
    g_nested = 1;
    g_max_level = 2;
    g_stmts = 4;
    g_expr_depth = 2;
    g_reads = 2;
  }

let medium =
  {
    g_routines = 10;
    g_nested = 1;
    g_max_level = 3;
    g_stmts = 8;
    g_expr_depth = 3;
    g_reads = 4;
  }

(* The paper's workload is a compiler + interpreter for a course language:
   a handful of big top-level modules, each containing a cluster of nested
   procedures, some nested deeper than one level. Five roughly equal
   modules are what makes the paper's 5-machine decomposition come out
   even. *)
let paper =
  {
    g_routines = 5;
    g_nested = 7;
    g_max_level = 4;
    g_stmts = 26;
    g_expr_depth = 3;
    g_reads = 0;
  }

(* Visible names while generating one body. Separate pools guarantee loop
   counters are never clobbered by other statements, so all loops are
   bounded. *)
type scope = {
  ints : string list; (* assignable integer variables *)
  loops : string list; (* for-loop induction variables *)
  counters : string list; (* while/repeat counters *)
  consts : (string * int) list;
  arrays : (string * int * int) list; (* int arrays: name, lo, hi *)
  records : (string * string list) list; (* name, integer fields *)
  callables : (string * param list * bool) list; (* name, params, is_func *)
  reads_ok : bool; (* read statements only where they execute exactly once *)
  calls_ok : bool; (* no calls inside loops: keeps total runtime linear *)
}

type gctx = {
  mutable st : Random.State.t;
  cfg : cfg;
  mutable fresh : int;
  reads : int ref;
}

let fresh g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let pick g l = List.nth l (Random.State.int g.st (List.length l))

let chance g pct = Random.State.int g.st 100 < pct

(* ---------------- expressions ---------------- *)

let rec int_expr g sc depth =
  if depth = 0 then int_leaf g sc
  else
    match Random.State.int g.st 7 with
    | 0 -> EBin (Add, int_expr g sc (depth - 1), int_expr g sc (depth - 1))
    | 1 -> EBin (Sub, int_expr g sc (depth - 1), int_expr g sc (depth - 1))
    | 2 -> EBin (Mul, int_expr g sc (depth - 1), EInt (Random.State.int g.st 5))
    | 3 ->
        (* positive constant divisor keeps division defined *)
        EBin (Div, int_expr g sc (depth - 1), EInt (2 + Random.State.int g.st 8))
    | 4 ->
        EBin (Mod, int_expr g sc (depth - 1), EInt (2 + Random.State.int g.st 8))
    | 5 -> (
        (* call a function when one is in scope (and not inside a loop) *)
        match
          if sc.calls_ok then List.filter (fun (_, _, f) -> f) sc.callables
          else []
        with
        | [] -> int_leaf g sc
        | fns ->
            let name, params, _ = pick g fns in
            ECall (name, List.map (fun p -> arg_for g sc p) params))
    | _ -> EUn (Neg, int_expr g sc (depth - 1))

and int_leaf g sc =
  match Random.State.int g.st 4 with
  | 0 -> EInt (Random.State.int g.st 50)
  | 1 when sc.ints <> [] -> ELval (LId (pick g sc.ints))
  | 2 when sc.consts <> [] -> ELval (LId (fst (pick g sc.consts)))
  | 3 when sc.records <> [] ->
      let name, fields = pick g sc.records in
      ELval (LField (LId name, pick g fields))
  | _ -> EInt (Random.State.int g.st 50)

and arg_for g sc (p : param) =
  if p.p_ref then
    (* var parameters need a variable *)
    match sc.ints with
    | [] -> ELval (LId "gsink")
    | l -> ELval (LId (pick g l))
  else int_expr g sc 1

let bool_expr g sc depth =
  let cmp () =
    let ops = [ Eq; Ne; Lt; Le; Gt; Ge ] in
    EBin (pick g ops, int_expr g sc (min depth 2), int_expr g sc (min depth 2))
  in
  if depth = 0 then cmp ()
  else
    match Random.State.int g.st 4 with
    | 0 -> EBin (And, cmp (), cmp ())
    | 1 -> EBin (Or, cmp (), cmp ())
    | 2 -> EUn (Not, cmp ())
    | _ -> cmp ()

(* ---------------- statements ---------------- *)

let assign_target g sc =
  match Random.State.int g.st 3 with
  | 0 when sc.arrays <> [] ->
      let name, lo, hi = pick g sc.arrays in
      LIndex (LId name, EInt (lo + Random.State.int g.st (hi - lo + 1)))
  | 1 when sc.records <> [] ->
      let name, fields = pick g sc.records in
      LField (LId name, pick g fields)
  | _ -> LId (pick g sc.ints)

let rec stmt g sc budget =
  let d = g.cfg.g_expr_depth in
  match Random.State.int g.st 11 with
  | 0 | 1 -> SAssign (assign_target g sc, int_expr g sc d)
  | 2 -> SWrite ([ int_expr g sc d ], true)
  | 3 ->
      SIf
        ( bool_expr g sc 1,
          body g sc (budget / 2),
          if chance g 50 then body g sc (budget / 2) else [] )
  | 4 when sc.loops <> [] ->
      let v = pick g sc.loops in
      let lo = Random.State.int g.st 5 in
      let hi = lo + 1 + Random.State.int g.st 6 in
      let up = chance g 80 in
      SFor
        ( v,
          EInt (if up then lo else hi),
          up,
          EInt (if up then hi else lo),
          body g ~in_loop:true
            { sc with loops = List.filter (fun x -> x <> v) sc.loops }
            (budget / 2) )
  | 5 when sc.counters <> [] ->
      let c = pick g sc.counters in
      let inner =
        body g ~in_loop:true
          { sc with counters = List.filter (fun x -> x <> c) sc.counters }
          (budget / 2)
      in
      SWhile
        ( EBin (Gt, ELval (LId c), EInt 0),
          inner @ [ SAssign (LId c, EBin (Sub, ELval (LId c), EInt 1)) ] )
  | 6 ->
      SCase
        ( EBin (Mod, int_expr g sc d, EInt 3),
          [ ([ 0 ], body g sc 1); ([ 1; 2 ], body g sc 1) ],
          if chance g 50 then Some (body g sc 1) else None )
  | 7 when sc.calls_ok && List.exists (fun (_, _, f) -> not f) sc.callables ->
      let procs = List.filter (fun (_, _, f) -> not f) sc.callables in
      let name, params, _ = pick g procs in
      SCall (name, List.map (fun p -> arg_for g sc p) params)
  | 8 when sc.reads_ok && !(g.reads) < g.cfg.g_reads ->
      incr g.reads;
      SRead (LId (pick g sc.ints))
  | 9 when sc.arrays <> [] && sc.loops <> [] ->
      (* the classic array-fill loop *)
      let name, lo, hi = pick g sc.arrays in
      let v = pick g sc.loops in
      SFor
        ( v,
          EInt lo,
          true,
          EInt hi,
          [
            SAssign
              ( LIndex (LId name, ELval (LId v)),
                EBin (Add, ELval (LId v), int_expr g sc 1) );
          ] )
  | 10 when sc.counters <> [] ->
      let c = pick g sc.counters in
      let inner =
        body g ~in_loop:true
          { sc with counters = List.filter (fun x -> x <> c) sc.counters }
          (budget / 2)
      in
      SRepeat
        ( (SAssign (LId c, EBin (Sub, ELval (LId c), EInt 1)) :: inner),
          EBin (Le, ELval (LId c), EInt 0) )
  | _ -> SAssign (LId (pick g sc.ints), int_expr g sc d)

and body g ?(in_loop = false) sc budget =
  (* bodies of loops and branches may run any number of times: no reads;
     bodies inside loops additionally make no calls *)
  let sc =
    { sc with reads_ok = false; calls_ok = sc.calls_ok && not in_loop }
  in
  if budget <= 0 then [ SAssign (LId (pick g sc.ints), int_expr g sc 1) ]
  else List.init (1 + Random.State.int g.st (max 1 budget)) (fun _ -> stmt g sc 2)

(* counters must start small and positive before their loops *)
let init_counters g sc =
  List.map (fun c -> SAssign (LId c, EInt (1 + Random.State.int g.st 4))) sc.counters

(* ---------------- routines ---------------- *)

(* Declarations for one routine (or the main block): variable pools plus an
   array and a record now and then. Returns the declarations and the scope
   they contribute. *)
let make_locals g ~prefix =
  let ints = List.init 3 (fun _ -> fresh g (prefix ^ "v")) in
  let loops = List.init 2 (fun _ -> fresh g (prefix ^ "i")) in
  let counters = [ fresh g (prefix ^ "c") ] in
  let arrays =
    if chance g 50 then
      let lo = 1 and hi = 4 + Random.State.int g.st 6 in
      [ (fresh g (prefix ^ "a"), lo, hi) ]
    else []
  in
  let records =
    if chance g 30 then
      [ (fresh g (prefix ^ "r"), [ "fx"; "fy" ]) ]
    else []
  in
  let consts = [ (fresh g (prefix ^ "k"), Random.State.int g.st 100) ] in
  let decls =
    List.map (fun (n, v) -> DConst (n, v)) consts
    @ List.map (fun n -> DVar (n, TInt)) (ints @ loops @ counters)
    @ List.map (fun (n, lo, hi) -> DVar (n, TArray (lo, hi, TInt))) arrays
    @ List.map
        (fun (n, fields) ->
          DVar (n, TRecord (List.map (fun f -> (f, TInt)) fields)))
        records
  in
  (decls, ints, loops, counters, consts, arrays, records)

let rec make_routine g ~outer ~level =
  let name = fresh g "p" in
  let nparams = Random.State.int g.st 3 in
  let params =
    List.init nparams (fun _ ->
        { p_name = fresh g "q"; p_ty = TInt; p_ref = chance g 30 })
  in
  let is_func = chance g 40 in
  let decls, ints, loops, counters, consts, arrays, records =
    make_locals g ~prefix:""
  in
  let param_ints = List.map (fun p -> p.p_name) params in
  let sc =
    {
      ints = ints @ param_ints @ outer.ints;
      loops;
      counters;
      consts = consts @ outer.consts;
      arrays = arrays @ outer.arrays;
      records = records @ outer.records;
      callables = outer.callables;
      reads_ok = false; (* routines may be called many times *)
      calls_ok = true;
    }
  in
  (* nested routines see this scope and are callable from the body; the
     top level of a module gets its full cluster, deeper levels taper off *)
  let nested, sc =
    let count =
      if level = 2 then g.cfg.g_nested
      else if level < g.cfg.g_max_level && chance g 40 then 1
      else 0
    in
    if count = 0 then ([], sc)
    else
      let rec add acc sc k =
        if k = 0 then (List.rev acc, sc)
        else
          let r = make_routine g ~outer:sc ~level:(level + 1) in
          let entry = (r.r_name, r.r_params, r.r_ret <> None) in
          add (DRoutine r :: acc) { sc with callables = entry :: sc.callables } (k - 1)
      in
      add [] sc count
  in
  let stmts =
    init_counters g sc
    @ List.init g.cfg.g_stmts (fun _ -> stmt g sc 3)
    @ (if is_func then [ SAssign (LId name, int_expr g sc 2) ] else [])
  in
  {
    r_name = name;
    r_params = params;
    r_ret = (if is_func then Some TInt else None);
    r_block = { b_decls = decls @ nested; b_body = stmts };
  }

(* ---------------- skewed workload (work-stealing benchmark) ---------- *)

(* One pathologically fat routine whose statements each assign a deep
   left-leaning arithmetic chain ((((z op s1) op s2) ...) op sn). The
   grammar splits trees at declarations and statements, never inside an
   expression, so each chain is an unsplittable fragment that a static
   fragment assignment strands whole on one machine. Each spine step also
   carries a small independent side expression: a work-stealing scheduler
   can farm those out as the attribute wave passes down the spine. The
   chain is label-free (+, -, *, div/mod by positive constants only; no
   comparisons, booleans, calls or labels), so it is safe to execute and
   transparent to hash-consed evaluation. *)
let side_expr g depth =
  let rec go d =
    if d = 0 then EInt (1 + Random.State.int g.st 9)
    else
      match Random.State.int g.st 4 with
      | 0 -> EBin (Add, go (d - 1), go (d - 1))
      | 1 -> EBin (Sub, go (d - 1), go (d - 1))
      | 2 -> EBin (Mul, go (d - 1), EInt (Random.State.int g.st 5))
      | _ -> EBin (Div, go (d - 1), EInt (2 + Random.State.int g.st 8))
  in
  go depth

let fat_routine g ~chain ~stmts =
  let name = fresh g "fat" in
  let chain_expr () =
    let rec grow acc k =
      if k = 0 then acc
      else
        let acc =
          match Random.State.int g.st 5 with
          | 0 -> EBin (Add, acc, side_expr g 2)
          | 1 -> EBin (Sub, acc, side_expr g 2)
          | 2 -> EBin (Mul, acc, side_expr g 2)
          | 3 -> EBin (Div, acc, EInt (2 + Random.State.int g.st 8))
          | _ -> EBin (Mod, acc, EInt (2 + Random.State.int g.st 8))
        in
        grow acc (k - 1)
    in
    grow (ELval (LId "z1")) chain
  in
  let body =
    SAssign (LId "z1", EInt 1)
    :: SAssign (LId "z2", EInt 2)
    :: List.init stmts (fun _ -> SAssign (LId "z0", chain_expr ()))
    @ [ SAssign (LId "z0", EBin (Mod, ELval (LId "z0"), EInt 9973)) ]
  in
  {
    r_name = name;
    r_params = [];
    r_ret = None;
    r_block =
      {
        b_decls = List.map (fun n -> DVar (n, TInt)) [ "z0"; "z1"; "z2" ];
        b_body = body;
      };
  }

(* ---------------- whole programs ---------------- *)

let gen ?(module_seeds = false) ?(skew = 0) st cfg =
  let g = { st; cfg; fresh = 0; reads = ref 0 } in
  let decls, ints, loops, counters, consts, arrays, records =
    make_locals g ~prefix:"g"
  in
  (* a sink for var arguments when no better variable is in scope *)
  let sink = DVar ("gsink", TInt) in
  let sc0 =
    {
      ints = "gsink" :: ints;
      loops;
      counters;
      consts;
      arrays;
      records;
      callables = [];
      reads_ok = true;
      calls_ok = true;
    }
  in
  let routines, sc =
    let rec add acc sc k =
      if k = 0 then (List.rev acc, sc)
      else begin
        (* with [module_seeds], every top-level module draws from its own
           deterministic stream, making the modules structurally alike —
           the paper's workload decomposes into subtrees of "about equal
           size" at five machines *)
        if module_seeds then
          g.st <- Random.State.make [| 77 |];
        (* independent module streams also require independent visible
           scopes, so every module is generated against the globals only *)
        let outer = if module_seeds then { sc0 with callables = [] } else sc in
        let r = make_routine g ~outer ~level:2 in
        let entry = (r.r_name, r.r_params, r.r_ret <> None) in
        add (DRoutine r :: acc) { sc with callables = entry :: sc.callables } (k - 1)
      end
    in
    add [] sc0 cfg.g_routines
  in
  (* [skew > 0] appends the pathological routine ([skew] spine steps per
     statement) and guarantees the main block calls it. *)
  let routines, fat_call =
    if skew = 0 then (routines, [])
    else
      let r = fat_routine g ~chain:skew ~stmts:4 in
      (routines @ [ DRoutine r ], [ SCall (r.r_name, []) ])
  in
  let main_body =
    init_counters g sc
    @ fat_call
    @ List.init (max 2 (cfg.g_stmts / 2)) (fun _ -> stmt g sc 3)
    @ [ SWrite ([ int_expr g sc 2 ], true) ]
  in
  ( {
      prog_name = "generated";
      prog_block = { b_decls = (sink :: decls) @ routines; b_body = main_body };
    },
    !(g.reads) )

let paper_program ?(seed = 1987) () =
  let p, _ = gen ~module_seeds:true (Random.State.make [| seed |]) paper in
  p

(* Pathologically unbalanced counterpart of [paper_program]: a dozen tiny
   routines plus the fat one. Deterministic for a given (seed, chain). *)
let skewed_program ?(seed = 2287) ?(chain = 400) () =
  let cfg =
    {
      g_routines = 12;
      g_nested = 0;
      g_max_level = 2;
      g_stmts = 2;
      g_expr_depth = 1;
      g_reads = 0;
    }
  in
  let p, _ = gen ~skew:chain (Random.State.make [| seed |]) cfg in
  p

(* ---------------- repetition workload (hash-consing benchmark) -------- *)

(* Deterministic program with tunable subtree repetition: every routine's
   body is [reps] copies of one deep arithmetic assignment over the same
   local names, so the copies are structurally identical subtrees. The
   repeated unit is deliberately label-free (+, -, *, div, mod with constant
   positive divisors; no comparisons, booleans or calls), so hash-consed
   evaluation can replay it — label-consuming statements would taint the
   memo. Routines are the grammar's split points, so the program also
   decomposes evenly for parallel runs. *)
let repetitive ?(unit_depth = 5) ~routines ~reps () =
  let v n = ELval (LId n) in
  let rec deep d =
    if d = 0 then EBin (Add, v "u1", EInt 1)
    else
      EBin
        ( Add,
          EBin (Mul, deep (d - 1), EInt 3),
          EBin (Sub, EBin (Div, deep (d - 1), EInt 7), v "u2") )
  in
  let unit_stmt = SAssign (LId "u0", EBin (Add, v "u0", deep unit_depth)) in
  let locals = [ DVar ("u0", TInt); DVar ("u1", TInt); DVar ("u2", TInt) ] in
  let body =
    [
      SAssign (LId "u0", EInt 0);
      SAssign (LId "u1", EInt 5);
      SAssign (LId "u2", EInt 2);
    ]
    @ List.init reps (fun _ -> unit_stmt)
    @ [
        SAssign
          (LId "gout", EBin (Add, v "gout", EBin (Mod, v "u0", EInt 9973)));
      ]
  in
  let routine i =
    DRoutine
      {
        r_name = Printf.sprintf "r%d" i;
        r_params = [];
        r_ret = None;
        r_block = { b_decls = locals; b_body = body };
      }
  in
  {
    prog_name = "repetitive";
    prog_block =
      {
        b_decls =
          DVar ("gout", TInt)
          :: List.init routines (fun i -> routine (i + 1));
        b_body =
          (SAssign (LId "gout", EInt 0)
           :: List.init routines (fun i ->
                  SCall (Printf.sprintf "r%d" (i + 1), [])))
          @ [ SWrite ([ v "gout" ], true) ];
      };
  }
