(** Attribute grammars.

    A grammar is a set of symbols (terminals and nonterminals) carrying
    attribute declarations, and a set of context-free productions each
    carrying semantic rules. Semantic rules are pure OCaml functions from the
    values of the attributes they depend on to the value of the attribute
    they define — the functional nature of this specification is what makes
    parallel evaluation cheap to synchronize (paper, section 2.2).

    Extra information beyond Knuth's formalism, following the paper's
    evaluator-generator input (section 2.5 and appendix):
    - a nonterminal may be declared splittable with a minimum subtree size in
      bytes ([%split] / [%nosplit]);
    - an attribute may be declared a priority attribute (section 4.3), making
      parallel evaluators compute and transmit it as soon as possible. *)

type kind = Syn | Inh

type attr_decl = { a_name : string; a_kind : kind; a_priority : bool }

type symbol = {
  s_name : string;
  s_term : bool;
  s_attrs : attr_decl array;
  s_split : int option;  (** [Some n]: splittable when subtree is ≥ n bytes *)
}

(** Reference to an attribute occurrence within a production: [pos = 0] is
    the left-hand side, [pos = i ≥ 1] the i-th right-hand-side symbol. *)
type attr_ref = { pos : int; attr : string }

(** Resolved attribute occurrence, computed once by {!make}: the attribute's
    index within its symbol's declaration array plus a terminal flag, so
    evaluator hot paths turn an occurrence into a dense slot id with array
    arithmetic instead of name lookups. *)
type rref = {
  rr_pos : int;  (** 0 = left-hand side, i ≥ 1 = i-th right-hand symbol *)
  rr_attr : int;  (** index within the symbol's attribute array *)
  rr_term : bool;  (** the symbol at that position is a terminal *)
  rr_name : string;  (** attribute name (terminal reads, error messages) *)
}

type rule = {
  r_target : attr_ref;
  r_deps : attr_ref list;
  r_fn : Value.t array -> Value.t;
      (** applied to the dependency values, in [r_deps] order *)
  r_name : string;
  mutable r_rtarget : rref;
      (** resolved form of [r_target]; filled in by {!make} *)
  mutable r_rdeps : rref array;
      (** resolved forms of [r_deps], same order; filled in by {!make} *)
}

type production = {
  p_id : int;
  p_name : string;
  p_lhs : string;
  p_rhs : string array;
  p_rules : rule array;
}

type t

exception Error of string

(** {1 Declaration helpers} *)

val syn : ?priority:bool -> string -> attr_decl

val inh : ?priority:bool -> string -> attr_decl

(** [nonterminal name attrs]; [~split:n] allows subtrees rooted here to be
    evaluated separately when at least [n] bytes big. *)
val nonterminal : ?split:int -> string -> attr_decl list -> symbol

(** Terminal attributes are intrinsic: set by the scanner, never by rules.
    They are declared [Syn] regardless of input. *)
val terminal : string -> string list -> symbol

val lhs : string -> attr_ref

val rhs : int -> string -> attr_ref

val rule :
  ?name:string ->
  attr_ref ->
  deps:attr_ref list ->
  (Value.t array -> Value.t) ->
  rule

val production : name:string -> lhs:string -> rhs:string list -> rule list -> production

(** Validates well-formedness and raises [Error] otherwise: every production
    defines each synthesized attribute of its left side and each inherited
    attribute of its nonterminal right-side occurrences exactly once, rules
    only depend on attributes visible in the production, etc. Production
    [p_id]s are assigned in list order. *)
val make :
  name:string -> start:string -> symbol list -> production list -> t

(** {1 Accessors} *)

val name : t -> string

val start : t -> string

val symbols : t -> symbol array

val productions : t -> production array

val symbol : t -> string -> symbol

val sym_id : t -> string -> int

val symbol_of_id : t -> int -> symbol

val find_production : t -> string -> production

(** Productions whose left-hand side is the given nonterminal. *)
val prods_for : t -> string -> production list

(** Index of an attribute within its symbol's attribute array. *)
val attr_pos : t -> sym:string -> attr:string -> int

val attr_count : t -> string -> int

(** [attr_count_of_id g id] — like {!attr_count} but an O(1) array read
    keyed by {!sym_id}. *)
val attr_count_of_id : t -> int -> int

val find_attr : symbol -> string -> attr_decl option

val is_priority : t -> sym:string -> attr:string -> bool

(** Nonterminals unreachable from the start symbol or without productions;
    returned as human-readable warnings (empty when the grammar is reduced). *)
val check_reduced : t -> string list

val pp_attr_ref : Format.formatter -> attr_ref -> unit
