test/test_random_ag.ml: Array Dynamic Grammar Hashtbl Kastens List Option Oracle Pag_analysis Pag_core Pag_eval Printf QCheck QCheck_alcotest Random Static_eval Store Tree Value
