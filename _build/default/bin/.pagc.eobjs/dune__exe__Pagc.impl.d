bin/pagc.ml: Arg Cmd Cmdliner Driver Lexer List Netsim Option Pag_parallel Parser Pascal Printf Term
