lib/pascal/lexer.mli: Token
