type t = { n : int; succ : int list array; pred : int list array; m : int }

let dedup_sorted l =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = b then go rest else a :: go rest
    | l -> l
  in
  go (List.sort compare l)

let make n edge_list =
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.make: endpoint out of range";
      succ.(u) <- v :: succ.(u);
      pred.(v) <- u :: pred.(v))
    edge_list;
  let m = ref 0 in
  for u = 0 to n - 1 do
    succ.(u) <- dedup_sorted succ.(u);
    pred.(u) <- dedup_sorted pred.(u);
    m := !m + List.length succ.(u)
  done;
  { n; succ; pred; m = !m }

let node_count g = g.n

let edge_count g = g.m

let succs g u = g.succ.(u)

let preds g u = g.pred.(u)

let mem_edge g u v = List.mem v g.succ.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) (List.rev g.succ.(u))
  done;
  !acc

let add_edges g more = make g.n (more @ edges g)

let topo_sort g =
  let indeg = Array.make g.n 0 in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) g.succ.(u)
  done;
  (* A sorted module-free priority of "smallest index first" keeps the order
     deterministic across runs; a simple list-based min extraction is fine at
     the sizes attribute graphs have. *)
  let ready = ref [] in
  for u = g.n - 1 downto 0 do
    if indeg.(u) = 0 then ready := u :: !ready
  done;
  let out = ref [] and count = ref 0 in
  let pop_min = function
    | [] -> None
    | l ->
        let m = List.fold_left min max_int l in
        Some (m, List.filter (fun x -> x <> m) l)
  in
  let rec loop () =
    match pop_min !ready with
    | None -> ()
    | Some (u, rest) ->
        ready := rest;
        out := u :: !out;
        incr count;
        List.iter
          (fun v ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then ready := v :: !ready)
          g.succ.(u);
        loop ()
  in
  loop ();
  if !count = g.n then Some (List.rev !out) else None

let has_cycle g = topo_sort g = None

let find_cycle g =
  (* Iterative DFS with colors; when a back edge (u, v) is found, the cycle
     is the stack segment from v to u. *)
  let color = Array.make g.n 0 in
  (* 0 white, 1 gray, 2 black *)
  let parent = Array.make g.n (-1) in
  let result = ref None in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if !result = None then
          if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
          else if color.(v) = 1 then begin
            (* cycle: v -> ... -> u -> v *)
            let rec collect x acc =
              if x = v then v :: acc else collect parent.(x) (x :: acc)
            in
            result := Some (collect u [])
          end)
      g.succ.(u);
    color.(u) <- 2
  in
  let u = ref 0 in
  while !result = None && !u < g.n do
    if color.(!u) = 0 then dfs !u;
    incr u
  done;
  !result

let transitive_closure g =
  (* Bitset-per-node closure in reverse topological-ish order; handles cycles
     by iterating to a fixpoint (attribute graphs are small). *)
  let words = (g.n + 62) / 63 in
  let reach = Array.init g.n (fun _ -> Array.make words 0) in
  let set b i = b.(i / 63) <- b.(i / 63) lor (1 lsl (i mod 63)) in
  let union dst src =
    let changed = ref false in
    for w = 0 to words - 1 do
      let nv = dst.(w) lor src.(w) in
      if nv <> dst.(w) then begin
        dst.(w) <- nv;
        changed := true
      end
    done;
    !changed
  in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> set reach.(u) v) g.succ.(u)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to g.n - 1 do
      List.iter
        (fun v -> if union reach.(u) reach.(v) then changed := true)
        g.succ.(u)
    done
  done;
  let edge_list = ref [] in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if reach.(u).(v / 63) land (1 lsl (v mod 63)) <> 0 then
        edge_list := (u, v) :: !edge_list
    done
  done;
  make g.n !edge_list

let sccs g =
  let index = Array.make g.n (-1) in
  let low = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  (* Explicit-stack Tarjan to stay safe on long chains. *)
  let rec strongconnect v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      g.succ.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !out

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph %d nodes, %d edges:" g.n g.m;
  for u = 0 to g.n - 1 do
    if g.succ.(u) <> [] then begin
      Format.fprintf fmt "@,  %d ->" u;
      List.iter (fun v -> Format.fprintf fmt " %d" v) g.succ.(u)
    end
  done;
  Format.fprintf fmt "@]"
