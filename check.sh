#!/bin/sh
# Repo check: build, tests, dune-file formatting. Run before every push.
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune build @fmt
dune exec bench/main.exe -- --smoke
echo "check.sh: all green"
