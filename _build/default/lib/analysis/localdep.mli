(** Attribute occurrences and local dependency graphs of a production.

    An occurrence is an (attribute, position) pair within one production:
    position 0 is the left-hand side, positions 1..arity the right-hand-side
    symbols. Occurrences are numbered densely so that dependency relations
    can be represented as {!Pag_util.Digraph} graphs — the "DP" graphs that
    both the dynamic evaluator (per tree node) and Kastens' static analysis
    (per production) are built from. Edges point from a dependency to the
    attribute that needs it ("must be computed before"). *)

open Pag_core

type t

val of_production : Grammar.t -> Grammar.production -> t

val production : t -> Grammar.production

(** Total number of occurrences in the production. *)
val count : t -> int

(** Dense index of the occurrence at [pos] with the symbol-local attribute
    index [idx]. *)
val occ : t -> pos:int -> idx:int -> int

val occ_of_ref : t -> Grammar.attr_ref -> int

(** Inverse of {!occ}. *)
val pos_of : t -> int -> int * int

(** Symbol at a position (0 = LHS). *)
val sym_at : t -> int -> Grammar.symbol

val attr_at : t -> int -> Grammar.attr_decl

(** The local dependency graph: one edge per (dependency, target) pair of
    every semantic rule. *)
val dp_graph : t -> Pag_util.Digraph.t

(** Human-readable name of an occurrence, e.g. "$1.stab". *)
val occ_name : t -> int -> string
