lib/pascal/ag_dsl.ml: Array Ast Cg Grammar List Pag_core Pag_util Printf Pvalue Rope Symtab Value
