(** Kastens' ordered-attribute-grammar analysis (Acta Informatica 13, 1980),
    the static evaluation method the paper uses (section 2.3).

    The analysis runs once per grammar, at generation time:

    + compute induced dependencies: the fixpoint of projecting transitively
      closed per-production graphs onto symbols (IDS) and re-injecting them
      into the productions (IDP). A cycle here means the grammar is not
      absolutely noncircular — reported as {!Circular}.
    + partition each symbol's attributes into an alternating sequence of
      inherited/synthesized sets, peeled from the back of the induced symbol
      graph. Visit [v] of a node consumes the inherited partition [I_v] and
      produces the synthesized partition [S_v].
    + linearize each production's rules and child visits into one {b visit
      sequence} per left-hand-side visit, by topologically sorting an action
      graph. Failure means the grammar is not ordered — {!Not_ordered} — and
      callers should fall back to dynamic evaluation (the paper notes dynamic
      evaluators accept a wider class of grammars).

    The resulting {!plan} is everything the static evaluator interprets at
    run time, with no dependency analysis per tree. *)

open Pag_core

(** One step of a visit sequence: evaluate the [i]-th semantic rule of the
    production, or perform visit number [visit] (1-based) of the [child]-th
    right-hand-side symbol (0-based). *)
type instr = Eval of int | Visit of { child : int; visit : int }

type plan

type failure =
  | Circular of string  (** grammar is not absolutely noncircular *)
  | Not_ordered of string  (** partitions exist but no visit sequence does *)

val analyze : Grammar.t -> (plan, failure) result

val grammar : plan -> Grammar.t

(** Number of visits of a nonterminal (≥ 1); 0 for terminals. *)
val visit_count : plan -> string -> int

(** [(inh, syn)] attribute names for visit [v] (1-based) of a symbol. *)
val visit_attrs : plan -> sym:string -> visit:int -> string list * string list

(** Visit number (1-based) that computes/consumes the given attribute. *)
val visit_of_attr : plan -> sym:string -> attr:string -> int

(** The visit sequence of a production for a given left-hand-side visit
    (1-based). *)
val visit_seq : plan -> prod:int -> visit:int -> instr list

val pp_failure : Format.formatter -> failure -> unit

val pp_plan : Format.formatter -> plan -> unit
