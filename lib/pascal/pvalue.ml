(* Pascal-specific attribute values, registered as Value.Ext payloads:
   type descriptors, raw declaration descriptors (collected in visit 1) and
   resolved symbol-table entries (with frame addresses, built at scope
   construction in visit 2). *)

open Pag_core

(* A declaration as collected bottom-up, before addresses are assigned. *)
type rawdecl =
  | RConst of string * int
  | RVar of string * Ast.ty
  | RRoutine of string * string * (Ast.ty * bool) list * Ast.ty option
      (* name, entry label, parameter signature, return type *)

(* A symbol-table entry. [level] of a variable is the level of the block
   declaring it; [level] of a routine is the level of the block in which it
   is declared (= its static-link target). *)
type info =
  | IConst of int
  | IVar of { ty : Ast.ty; level : int; offset : int; by_ref : bool }
  | IRoutine of {
      label : string;
      params : (Ast.ty * bool) list;
      ret : Ast.ty option;
      level : int;
    }

type Value.ext += Ty of Ast.ty | Raw of rawdecl | Info of info

let ty t = Value.Ext (Ty t)

let raw r = Value.Ext (Raw r)

let info i = Value.Ext (Info i)

let as_ty ~ctx = function
  | Value.Ext (Ty t) -> t
  | v -> raise (Value.Type_error (ctx ^ ": expected a type, got " ^ Value.to_string v))

let as_raw ~ctx = function
  | Value.Ext (Raw r) -> r
  | v ->
      raise
        (Value.Type_error (ctx ^ ": expected a declaration, got " ^ Value.to_string v))

let as_info ~ctx = function
  | Value.Ext (Info i) -> i
  | v ->
      raise (Value.Type_error (ctx ^ ": expected an entry, got " ^ Value.to_string v))

let ret_ty_value = function None -> Value.Unit | Some t -> ty t

let ret_ty_of_value ~ctx = function
  | Value.Unit -> None
  | v -> Some (as_ty ~ctx v)

let rec raw_size = function
  | RConst (n, _) -> String.length n + 8
  | RVar (n, t) -> String.length n + 4 + ty_size t
  | RRoutine (n, l, ps, _) ->
      String.length n + String.length l
      + List.fold_left (fun a (t, _) -> a + ty_size t) 8 ps

and ty_size = function
  | Ast.TInt | Ast.TBool | Ast.TChar -> 2
  | Ast.TArray (_, _, e) -> 10 + ty_size e
  | Ast.TRecord fs ->
      List.fold_left (fun a (n, t) -> a + String.length n + ty_size t) 4 fs

let info_size = function
  | IConst _ -> 8
  | IVar v -> 12 + ty_size v.ty
  | IRoutine r ->
      String.length r.label
      + List.fold_left (fun a (t, _) -> a + ty_size t) 12 r.params

let () =
  Value.register_ext
    {
      Value.ext_name = "pascal";
      ext_equal =
        (fun a b ->
          match (a, b) with
          | Ty x, Ty y -> Some (Ast.ty_equal x y)
          | Raw x, Raw y -> Some (x = y)
          | Info x, Info y -> Some (x = y)
          | (Ty _ | Raw _ | Info _), (Ty _ | Raw _ | Info _) -> Some false
          | (Ty _ | Raw _ | Info _), _ | _, (Ty _ | Raw _ | Info _) -> Some false
          | _ -> None);
      ext_hash =
        (* Pure first-order data: the polymorphic hash is consistent with
           the structural equalities above. *)
        (fun e ->
          match e with
          | Ty _ | Raw _ | Info _ -> Some (Hashtbl.hash e)
          | _ -> None);
      ext_size =
        (fun e ->
          match e with
          | Ty t -> Some (ty_size t)
          | Raw r -> Some (raw_size r)
          | Info i -> Some (info_size i)
          | _ -> None);
      ext_pp =
        (fun fmt e ->
          match e with
          | Ty t ->
              Format.fprintf fmt "<ty:%s>" (Ast.ty_to_string t);
              true
          | Raw (RConst (n, _)) ->
              Format.fprintf fmt "<const %s>" n;
              true
          | Raw (RVar (n, _)) ->
              Format.fprintf fmt "<var %s>" n;
              true
          | Raw (RRoutine (n, _, _, _)) ->
              Format.fprintf fmt "<routine %s>" n;
              true
          | Info _ ->
              Format.fprintf fmt "<entry>";
              true
          | _ -> false);
    }
