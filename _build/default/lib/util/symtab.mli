(** Applicative symbol tables.

    Implements the paper's symbol-table representation (section 4.3): a
    persistent binary search tree keyed by the hash index of the identifier,
    so that keys are essentially uniformly distributed and the tree stays
    balanced without any rebalancing machinery. Updates are applicative
    ([add] returns a new table sharing structure with the old one), which is
    what makes symbol tables safe to propagate between evaluators running in
    parallel.

    Identifiers whose hash indices collide are kept in a per-node bucket, so
    lookups are always exact. Adding a binding for an existing identifier
    shadows it in the new table only. *)

type 'a t

val empty : 'a t

(** [add tab name v] is the paper's [st_add]: a table identical to [tab]
    except that [name] is bound to [v]. *)
val add : 'a t -> string -> 'a -> 'a t

(** [lookup tab name] is the paper's [st_lookup]. *)
val lookup : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** Number of bindings (shadowed bindings count once). *)
val cardinal : 'a t -> int

(** Height of the BST; the empty table has height 0. *)
val height : 'a t -> int

val of_list : (string * 'a) list -> 'a t

(** All bindings in unspecified order. *)
val to_list : 'a t -> (string * 'a) list

val fold : (string -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** [equal veq a b] holds when both tables bind the same set of identifiers
    to values equal under [veq]. *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** The hash index used as BST key; exposed for tests and benchmarks. *)
val hash_of_name : string -> int
