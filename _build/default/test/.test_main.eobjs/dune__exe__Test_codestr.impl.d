test/test_codestr.ml: Alcotest Codestr Hashtbl List Pag_core Pag_util QCheck QCheck_alcotest Rope String Value
