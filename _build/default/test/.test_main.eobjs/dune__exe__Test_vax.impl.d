test/test_vax.ml: Alcotest Asm_parser Isa Machine QCheck QCheck_alcotest Vax
