lib/pascal/progen.ml: Ast List Printf Random
