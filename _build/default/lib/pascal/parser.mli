(** Recursive-descent parser for the Pascal subset.

    (The paper generates its parser with YACC; the equivalent generated
    path in this repository is the {!Lrgen}/{!Agspec} pipeline, demonstrated
    on the appendix grammar. The production Pascal front end is hand written
    for precision of error messages.) *)

exception Parse_error of int * string

val parse_program : string -> Ast.program

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
