type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.data) in
  let data = Array.make cap q.data.(0) in
  Array.blit q.data 0 data 0 q.len;
  q.data <- data

let add q prio value =
  let e = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.len = 0 && Array.length q.data = 0 then q.data <- Array.make 16 e;
  if q.len = Array.length q.data then grow q;
  q.data.(q.len) <- e;
  q.len <- q.len + 1;
  (* sift up *)
  let i = ref (q.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less q.data.(!i) q.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = q.data.(p) in
    q.data.(p) <- q.data.(!i);
    q.data.(!i) <- tmp;
    i := p
  done

let peek_min q = if q.len = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let pop_min q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && less q.data.(l) q.data.(!smallest) then smallest := l;
        if r < q.len && less q.data.(r) q.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.data.(!smallest) in
          q.data.(!smallest) <- q.data.(!i);
          q.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let size q = q.len

let is_empty q = q.len = 0
