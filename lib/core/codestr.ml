open Pag_util

type t =
  | Text of Rope.t
  | Frag of { id : int; len : int }
  | Cat of { a : t; b : t; len : int; frags : int }

type Value.ext += V of t

let empty = Text Rope.empty

let of_rope r = Text r

let of_string s = Text (Rope.of_string s)

let length = function
  | Text r -> Rope.length r
  | Frag f -> f.len
  | Cat c -> c.len

let frag_count = function Text _ -> 0 | Frag _ -> 1 | Cat c -> c.frags

let is_empty t = length t = 0 && frag_count t = 0

let concat a b =
  if is_empty a then b
  else if is_empty b then a
  else
    match (a, b) with
    | Text ra, Text rb -> Text (Rope.concat ra rb)
    | _ ->
        Cat
          {
            a;
            b;
            len = length a + length b;
            frags = frag_count a + frag_count b;
          }

let concat_list l = List.fold_left concat empty l

(* A fragment reference costs a fixed descriptor on the wire. *)
let frag_descriptor_bytes = 8

let rec wire_size = function
  | Text r -> Rope.length r
  | Frag _ -> frag_descriptor_bytes
  | Cat c -> wire_size c.a + wire_size c.b + 2

exception Unresolved of int

let fold_leaves f init t =
  let rec go acc = function
    | [] -> acc
    | Text r :: rest -> go (f acc (`Text r)) rest
    | Frag fr :: rest -> go (f acc (`Frag fr.id)) rest
    | Cat c :: rest -> go acc (c.a :: c.b :: rest)
  in
  go init [ t ]

let to_rope t =
  fold_leaves
    (fun acc -> function
      | `Text r -> Rope.concat acc r
      | `Frag id -> raise (Unresolved id))
    Rope.empty t

let extract_texts ~alloc t =
  let frags = ref [] in
  let rec go = function
    | Text r when Rope.is_empty r -> Text r
    | Text r ->
        let id = alloc () in
        frags := (id, r) :: !frags;
        Frag { id; len = Rope.length r }
    | Frag _ as f -> f
    | Cat c ->
        let a = go c.a and b = go c.b in
        Cat { a; b; len = c.len; frags = frag_count a + frag_count b }
  in
  let desc = go t in
  (desc, List.rev !frags)

let resolve ~lookup t =
  fold_leaves
    (fun acc -> function
      | `Text r -> Rope.concat acc r
      | `Frag id -> Rope.concat acc (lookup id))
    Rope.empty t

let value t = Value.Ext (V t)

let of_value ~ctx = function
  | Value.Ext (V t) -> t
  | v ->
      raise
        (Value.Type_error
           (Printf.sprintf "%s: expected code string, got %s" ctx
              (Value.to_string v)))

let rec equal a b =
  (* Fully local code strings are equal when they denote the same text,
     whatever tree shape the concatenations produced. *)
  if frag_count a = 0 && frag_count b = 0 then Rope.equal (to_rope a) (to_rope b)
  else
    match (a, b) with
    | Text x, Text y -> Rope.equal x y
    | Frag x, Frag y -> x.id = y.id && x.len = y.len
    | Cat x, Cat y -> equal x.a y.a && equal x.b y.b
    | (Text _ | Frag _ | Cat _), _ -> false

(* [equal] is content-based for fully local strings (shape-insensitive),
   so the hash must not see the concatenation shape: mix the length and
   fragment count with a bounded prefix of the leaf stream — text bytes
   and fragment ids in order, which equal values produce identically.
   Hashing the length alone is not enough: one compiled program holds
   thousands of distinct same-length one-line fragments ("\tpushl\t$1\n",
   "\tpushl\t$2\n", ...), and an all-collisions family degrades the value
   arena's buckets pathologically. *)
let hash t =
  let mix h x = (h * 0x01000193) lxor (x + 0x9e3779b9 + (h lsl 6)) in
  let budget = ref 64 in
  let acc = ref (mix (length t) (frag_count t)) in
  let exception Done in
  (try
     fold_leaves
       (fun () -> function
         | `Text r ->
             Rope.fold_chunks
               (fun () s ->
                 let n = min (String.length s) !budget in
                 for i = 0 to n - 1 do
                   acc := mix !acc (Char.code s.[i])
                 done;
                 budget := !budget - n;
                 if !budget <= 0 then raise Done)
               () r
         | `Frag id ->
             acc := mix !acc (0x5eaf lxor id);
             decr budget;
             if !budget <= 0 then raise Done)
       () t
   with Done -> ());
  !acc

let pp fmt t =
  if frag_count t = 0 && length t <= 60 then
    Format.fprintf fmt "<code:%S>" (Rope.to_string (to_rope t))
  else
    Format.fprintf fmt "<code:%d bytes, %d fragments>" (length t) (frag_count t)

let () =
  Value.register_ext
    {
      Value.ext_name = "codestr";
      ext_equal =
        (fun a b ->
          match (a, b) with
          | V x, V y -> Some (equal x y)
          | V _, _ | _, V _ -> Some false
          | _ -> None);
      ext_hash = (fun e -> match e with V t -> Some (hash t) | _ -> None);
      ext_size = (fun e -> match e with V t -> Some (wire_size t) | _ -> None);
      ext_pp =
        (fun fmt e ->
          match e with
          | V t ->
              pp fmt t;
              true
          | _ -> false);
    }
