(** Parse trees for an attribute grammar.

    Interior nodes are production applications; leaves are terminal
    occurrences carrying the intrinsic attribute values computed by the
    scanner. Construction validates arity and symbol agreement against the
    grammar. Node identifiers are assigned by {!number} (preorder) and are
    what evaluators key their attribute-instance stores on. *)

type t = {
  mutable id : int;
  sym : string;
  sym_id : int;  (** {!Grammar.sym_id} of [sym]: O(1) symbol-table access *)
  prod : Grammar.production option;  (** [None] iff terminal leaf *)
  children : t array;
  term_attrs : (string * Value.t) list;
}

exception Error of string

(** [node g prod_name children] builds an interior node. Children must match
    the production's right-hand side left to right. *)
val node : Grammar.t -> string -> t list -> t

(** [leaf g term attrs] builds a terminal leaf; all of the terminal's
    intrinsic attributes must be supplied. *)
val leaf : Grammar.t -> string -> (string * Value.t) list -> t

(** Assign preorder ids starting at 0; returns the number of nodes. *)
val number : t -> int

(** Node count. *)
val size : t -> int

(** Estimated size in bytes of the linearized network representation, the
    quantity the paper's minimum-split-size is compared against. *)
val byte_size : t -> int

val iter : (t -> unit) -> t -> unit

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Intrinsic value of a terminal attribute. Raises [Error] on non-leaves. *)
val term_attr : t -> string -> Value.t

(** [check g t] re-validates an externally constructed tree (e.g. one
    rebuilt from a network message) against the grammar. *)
val check : Grammar.t -> t -> unit

val pp : Format.formatter -> t -> unit
