type assoc = Left | Right | Nonassoc

type production = {
  cp_name : string;
  cp_lhs : string;
  cp_rhs : string list;
  cp_prec : string option;
}

type t = {
  c_start : string;
  c_prods : production array;
  c_terminals : string list;
  c_nonterminals : string list;
  c_prec : (string, int * assoc) Hashtbl.t;
  c_by_lhs : (string, (int * production) list) Hashtbl.t;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let eof = "$eof"

let make ~terminals ~start ?(prec = []) prods =
  let nonterminals =
    List.sort_uniq compare (List.map (fun p -> p.cp_lhs) prods)
  in
  let names = Hashtbl.create 16 in
  List.iter
    (fun (p : production) ->
      if Hashtbl.mem names p.cp_name then
        error "duplicate production name %S" p.cp_name;
      Hashtbl.add names p.cp_name ())
    prods;
  List.iter
    (fun t ->
      if List.mem t nonterminals then
        error "%S is both a terminal and a nonterminal" t)
    terminals;
  if not (List.mem start nonterminals) then
    error "start symbol %S has no productions" start;
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          if (not (List.mem s terminals)) && not (List.mem s nonterminals) then
            error "production %S: unknown symbol %S" p.cp_name s)
        p.cp_rhs;
      match p.cp_prec with
      | Some t when not (List.mem t terminals) ->
          error "production %S: %%prec %S is not a terminal" p.cp_name t
      | _ -> ())
    prods;
  let c_prec = Hashtbl.create 16 in
  List.iteri
    (fun level (a, terms) ->
      List.iter
        (fun t ->
          if not (List.mem t terminals) then
            error "precedence declaration names unknown terminal %S" t;
          Hashtbl.replace c_prec t (level + 1, a))
        terms)
    prec;
  let c_by_lhs = Hashtbl.create 16 in
  List.iteri
    (fun i p ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt c_by_lhs p.cp_lhs) in
      Hashtbl.replace c_by_lhs p.cp_lhs (existing @ [ (i, p) ]))
    prods;
  {
    c_start = start;
    c_prods = Array.of_list prods;
    c_terminals = terminals;
    c_nonterminals = nonterminals;
    c_prec;
    c_by_lhs;
  }

let start g = g.c_start

let productions g = g.c_prods

let terminals g = g.c_terminals

let nonterminals g = g.c_nonterminals

let is_terminal g s = List.mem s g.c_terminals || s = eof

let prec_of_terminal g t = Hashtbl.find_opt g.c_prec t

let prec_of_production g p =
  match p.cp_prec with
  | Some t -> prec_of_terminal g t
  | None ->
      let rec last_term acc = function
        | [] -> acc
        | s :: rest ->
            last_term (if is_terminal g s then Some s else acc) rest
      in
      Option.bind (last_term None p.cp_rhs) (prec_of_terminal g)

let prods_for g nt = Option.value ~default:[] (Hashtbl.find_opt g.c_by_lhs nt)
