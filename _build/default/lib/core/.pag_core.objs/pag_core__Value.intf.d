lib/core/value.mli: Format Pag_util
