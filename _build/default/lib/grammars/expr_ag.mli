(** The attribute grammar of the paper's appendix: arithmetic expressions
    with [let x = e1 in e2 ni] constant bindings.

    Nonterminals: [main_expr] (synthesized [value]), [expr] and [block]
    (synthesized [value], inherited [stab]). [block] is splittable — subtrees
    rooted at a block may be shipped to another evaluator when their
    linearized representation is at least {!split_min_bytes} bytes. The
    symbol table attribute [stab] is a priority attribute, as the global
    symbol table is in the paper's Pascal grammar. *)

open Pag_core

val grammar : Grammar.t

val split_min_bytes : int

(** {1 Tree builders} *)

val num : int -> Tree.t

val var : string -> Tree.t

val add : Tree.t -> Tree.t -> Tree.t

val mul : Tree.t -> Tree.t -> Tree.t

(** [let_in x e1 e2] is the expression [let x = e1 in e2 ni], wrapped as an
    [expr]. *)
val let_in : string -> Tree.t -> Tree.t -> Tree.t

(** Wrap an [expr] tree as the start symbol [main_expr]. *)
val main : Tree.t -> Tree.t

(** The appendix's worked example: [let x = 2 in 1 + 2 * x ni], value 5. *)
val example : Tree.t

(** [random_expr st ~depth ~vars] generates a well-scoped random expression
    using only variables from [vars]; [random_program st ~depth] wraps one in
    [main] with some let-bound variables. Deterministic in [st]. *)
val random_expr : Random.State.t -> depth:int -> vars:string list -> Tree.t

val random_program : Random.State.t -> depth:int -> Tree.t

(** Reference value of an expression tree, computed directly (not via any
    evaluator) — the ground truth for differential tests. *)
val reference_value : Tree.t -> int
