lib/vax/machine.ml: Array Asm_parser Buffer Char Format Hashtbl Isa List Printf
