#!/bin/sh
# Repo check: build, tests, dune-file formatting. Run before every push.
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune build @fmt
dune exec bench/main.exe -- --smoke
# Telemetry smoke: a traced parallel compile must produce parseable
# Chrome-trace JSON with at least one event.
trace=/tmp/pagc_trace_smoke.json
dune exec bin/pagc.exe -- --machines 3 --trace "$trace" --report \
  examples/primes.pas -o /tmp/pagc_trace_smoke.s 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$trace" >/dev/null
  python3 -c "import json,sys; es=json.load(open('$trace'))['traceEvents']; sys.exit(0 if len(es)>0 else 1)"
else
  grep -q '"traceEvents"' "$trace"
fi
# Work-stealing schedule smoke: the steal schedule must emit the same
# assembly as the sequential compile, modulo L<n>/P<n> label numbering
# (label draws depend on the per-machine uid stripes).
dune exec bin/pagc.exe -- examples/primes.pas -o /tmp/pagc_seq_smoke.s 2>/dev/null
dune exec bin/pagc.exe -- --machines 3 --schedule steal \
  examples/primes.pas -o /tmp/pagc_steal_smoke.s 2>/dev/null
sed 's/[LP][0-9][0-9]*/X/g' /tmp/pagc_seq_smoke.s > /tmp/pagc_seq_smoke.masked
sed 's/[LP][0-9][0-9]*/X/g' /tmp/pagc_steal_smoke.s > /tmp/pagc_steal_smoke.masked
cmp /tmp/pagc_seq_smoke.masked /tmp/pagc_steal_smoke.masked
# Multi-tenant service smoke: three tenants over two simulated machines;
# pagc exits nonzero unless every tenant's resident code matches a
# from-scratch compile.
dune exec bin/pagc.exe -- --serve examples/three_tenants.serve >/dev/null
# Batched-edit smoke: the serve loop with merged waves and an interactive
# edit session applying its script in batched waves must both end with
# every resident masked-equal to a from-scratch compile (pagc exits
# nonzero otherwise).
dune exec bin/pagc.exe -- --serve examples/three_tenants.serve \
  --batch-edits 4 >/dev/null
dune exec bin/pagc.exe -- --machines 3 --batch-edits 2 \
  --edit-session examples/primes.edits examples/primes.pas >/dev/null
# DAG evaluation smoke: the DAG-native steal schedule must emit the same
# masked assembly as the sequential compile, and --explain on a DAG run
# must verify the class-level provenance (occurrence fan-out edges)
# against the reference dependency closure.
dune exec bin/pagc.exe -- --dag --machines 3 --schedule steal \
  examples/primes.pas -o /tmp/pagc_dag_smoke.s 2>/dev/null
sed 's/[LP][0-9][0-9]*/X/g' /tmp/pagc_dag_smoke.s > /tmp/pagc_dag_smoke.masked
cmp /tmp/pagc_seq_smoke.masked /tmp/pagc_dag_smoke.masked
dune exec bin/pagc.exe -- --dag --machines 3 --schedule steal \
  --explain root.code examples/primes.pas >/dev/null 2>&1
# Provenance smoke: --explain exits nonzero unless the recorded slice
# equals the reference engine's dependency closure; --profile-json must
# produce parseable JSON with a critical path no longer than the makespan.
dune exec bin/pagc.exe -- --machines 4 --explain root.code \
  examples/primes.pas >/dev/null 2>&1
profile=/tmp/pagc_profile_smoke.json
dune exec bin/pagc.exe -- --machines 4 --profile-json "$profile" \
  examples/primes.pas -o /tmp/pagc_profile_smoke.s 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; p=json.load(open('$profile')); sys.exit(0 if 0 < p['critical_s'] <= p['makespan_s'] else 1)"
else
  grep -q '"critical_s"' "$profile"
fi
echo "check.sh: all green"
