(** Shared-medium network model.

    Models the paper's 10 Mbit Ethernet: every transmission occupies the
    single shared medium for [size / bandwidth] seconds (transmissions queue
    behind each other when [contention] is on), and delivery completes one
    [latency] later. The defaults are calibrated to a mid-1980s 10 Mbit
    Ethernet with V-System message overheads. *)

type params = {
  latency : float;  (** per-message end-to-end latency, seconds *)
  bandwidth : float;  (** bytes per second on the wire *)
  send_overhead : float;  (** CPU seconds the sender spends per message *)
  send_per_byte : float;  (** CPU seconds per byte for flattening/copying *)
  contention : bool;  (** serialize transmissions on the shared medium *)
  switched : bool;
      (** per-port links through a switch fabric: transmissions queue only
          behind same-port traffic (overrides the shared medium) *)
}

(** 10 Mbit/s shared Ethernet, ~1 ms latency, 0.5 ms send overhead. *)
val default_params : params

(** {!default_params} with [switched = true]: same link speed, but each
    port gets its own full-bandwidth link — the upgrade that makes
    scheduling policy observable (on the shared medium the wire is the
    only bottleneck, so round-robin and shortest-queue price alike). *)
val switched_params : params

type t

val create : params -> t

val params : t -> params

(** [transmit t ~now ~size] reserves the medium and returns the delivery
    time of a [size]-byte message handed to the network at [now]. [jitter]
    adds extra delivery latency (fault injection: reordering hold-back or a
    delay spike) without occupying the medium any longer. In switched mode
    [port] selects the edge link the message occupies (callers pick the
    bottleneck end of the hop, e.g. the worker side of a star topology);
    it is ignored on a shared medium. *)
val transmit : ?jitter:float -> ?port:int -> t -> now:float -> size:int -> float

(** CPU time the sender spends to emit a [size]-byte message. *)
val sender_cost : t -> size:int -> float

(** Total bytes handed to the network so far. *)
val bytes_sent : t -> int

(** Number of transmissions so far. *)
val messages_sent : t -> int

(** Total time transmissions spent queueing for the medium. *)
val contention_time : t -> float
