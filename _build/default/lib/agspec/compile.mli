(** Compile a specification into a runnable translator: an attribute grammar
    for the evaluators (sequential, ordered, and parallel) plus an LALR(1)
    parser and a scanner — everything the paper's compiler generator
    produces from one input.

    The appendix workflow:
    {[
      let t = Compile.translator (Spec_parser.parse_file "expr.ag") in
      let tree = Compile.parse t "let x = 2 in 1 + 2 * x ni" in
      let attrs = Compile.evaluate t tree in
      (* attrs = [("value", Int 5)] *)
    ]} *)

open Pag_core

exception Error of string

type t

val translator : Spec_ast.t -> t

val grammar : t -> Grammar.t

val tables : t -> Lrgen.Lalr.tables

(** Kastens plan, when the grammar is ordered. *)
val plan : t -> Pag_analysis.Kastens.plan option

(** Scan and parse a sentence into an attribute-grammar parse tree. *)
val parse : t -> string -> Tree.t

exception Scan_error of string

(** Evaluate a tree (static evaluator when the grammar is ordered, dynamic
    otherwise) and return the root's synthesized attributes. *)
val evaluate : t -> Tree.t -> (string * Value.t) list

(** Parallel evaluation on the simulated multiprocessor. *)
val evaluate_parallel :
  t -> Pag_parallel.Runner.options -> Tree.t -> Pag_parallel.Runner.result
