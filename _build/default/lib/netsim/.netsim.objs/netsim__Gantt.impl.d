lib/netsim/gantt.ml: Buffer Bytes List Printf String Trace
