lib/pascal/parser.ml: Ast Lexer List Printf Token
