(** Parse-tree decomposition (paper, sections 2.1 and 2.5, figure 7).

    The parser divides the syntax tree into up to [machines] fragments, each
    shipped to one evaluator. Fragments may only be rooted at nonterminals
    the grammar declares splittable, and only when the subtree's linearized
    representation reaches the declared minimum size scaled by the runtime
    [granularity] argument (the paper's knob for experimenting with
    decomposition granularity).

    The algorithm repeatedly halves the largest fragment: among the
    candidate nodes inside it, the one whose residual subtree is closest to
    half the fragment's residual size is cut off. This nests naturally
    (figure 7 shows a fragment cut out of another fragment) and yields
    fragments of roughly equal size — the paper's stated reason the 5-machine
    decomposition performs best. *)

open Pag_core

type fragment = {
  fr_id : int;  (** 0 is the root fragment *)
  fr_root : Tree.t;
  fr_parent : int option;  (** fragment holding the stub *)
  fr_bytes : int;  (** residual linearized size (cuts excluded) *)
}

type plan

(** [decompose g tree ~machines ~granularity]. The tree must already be
    numbered (global node ids). [machines] ≥ 1; granularity > 0 scales every
    split symbol's minimum size. *)
val decompose :
  Grammar.t -> Tree.t -> machines:int -> granularity:float -> plan

val fragments : plan -> fragment array

(** Fragment owning a cut whose root is the given node id, if any. *)
val fragment_of_cut_node : plan -> int -> int option

(** [owner_of plan node] — the fragment whose machine evaluates [node]:
    the deepest fragment physically containing it (search stops at cut
    stubs, which the next fragment owns). Comparison is physical, so
    replacement subtrees grafted by an edit session are found under the
    fragment they were grafted into; [None] when the node is not in the
    plan's tree at all. *)
val owner_of : plan -> Tree.t -> int option

(** Node ids of the stubs cut out of the given fragment. *)
val cuts_of : plan -> int -> int list

(** Fragment count (≤ machines). *)
val count : plan -> int

(** [dag_bytes plan sharing f]: wire size of fragment [f] when both ends
    know the tree's sharing classes — repeated subtrees (occurrences after
    the first, within this fragment, whose id range contains no cut) cost a
    fixed backreference instead of their linearized bytes. Never larger than
    [f.fr_bytes]. *)
val dag_bytes : plan -> Tree.sharing -> fragment -> int

(** Render the decomposition as an indented tree with sizes (figure 7). *)
val pp : Format.formatter -> plan -> unit
