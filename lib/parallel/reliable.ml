open Pag_obs

type stats = {
  mutable rs_sent : int;
  mutable rs_retransmits : int;
  mutable rs_acks : int;
  mutable rs_dup_dropped : int;
  mutable rs_gave_up : int;
}

type pending = {
  pd_dst : int;
  pd_wire : Message.t;  (* the Data envelope, resent verbatim *)
  mutable pd_deadline : float;
  mutable pd_tries : int;
}

type t = {
  raw : Transport.env;
  rto : float;
  max_tries : int;
  mutable next_seq : int;
  outstanding : (int, pending) Hashtbl.t;  (* our seq -> pending *)
  seen : (int * int, unit) Hashtbl.t;  (* (src, seq) delivered *)
  ready : Message.t Queue.t;  (* deduplicated payloads awaiting recv *)
  dead : (int, unit) Hashtbl.t;
  st : stats;
  obs : Obs.ctx;
  c_sent : Obs.Metrics.counter;
  c_retransmits : Obs.Metrics.counter;
  c_acks : Obs.Metrics.counter;
  c_dup_dropped : Obs.Metrics.counter;
  c_gave_up : Obs.Metrics.counter;
}

let wrap ?(obs = Obs.null_ctx) ?(rto = 0.05) ?(max_tries = 6) raw =
  let reg = obs.Obs.x_metrics in
  {
    raw;
    rto;
    max_tries;
    next_seq = 0;
    outstanding = Hashtbl.create 32;
    seen = Hashtbl.create 64;
    ready = Queue.create ();
    dead = Hashtbl.create 4;
    st =
      {
        rs_sent = 0;
        rs_retransmits = 0;
        rs_acks = 0;
        rs_dup_dropped = 0;
        rs_gave_up = 0;
      };
    obs;
    c_sent = Obs.Metrics.counter reg "reliable.sent";
    c_retransmits = Obs.Metrics.counter reg "reliable.retransmits";
    c_acks = Obs.Metrics.counter reg "reliable.acks";
    c_dup_dropped = Obs.Metrics.counter reg "reliable.dup_dropped";
    c_gave_up = Obs.Metrics.counter reg "reliable.gave_up";
  }

let stats t = t.st

let dead_peers t =
  Hashtbl.fold (fun d () acc -> d :: acc) t.dead [] |> List.sort compare

let send t ~dst m =
  if not (Hashtbl.mem t.dead dst) then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let wire = Message.Data { src = t.raw.Transport.e_id; seq; payload = m } in
    Hashtbl.replace t.outstanding seq
      {
        pd_dst = dst;
        pd_wire = wire;
        pd_deadline = t.raw.Transport.e_time () +. t.rto;
        pd_tries = 0;
      };
    t.st.rs_sent <- t.st.rs_sent + 1;
    Obs.Metrics.incr t.c_sent;
    t.raw.Transport.e_send ~dst wire
  end

let ping t ~dst = send t ~dst Message.Ping

let next_deadline t =
  Hashtbl.fold (fun _ p acc -> min acc p.pd_deadline) t.outstanding infinity

(* Retransmit every overdue envelope; abandon ones whose destination has
   stopped acknowledging. Processed in seq order for determinism. *)
let retransmit_due t =
  let now = t.raw.Transport.e_time () in
  let due =
    Hashtbl.fold
      (fun seq p acc -> if p.pd_deadline <= now then (seq, p) :: acc else acc)
      t.outstanding []
    |> List.sort compare
  in
  List.iter
    (fun (seq, p) ->
      if p.pd_tries >= t.max_tries then begin
        Hashtbl.remove t.outstanding seq;
        Hashtbl.replace t.dead p.pd_dst ();
        t.st.rs_gave_up <- t.st.rs_gave_up + 1;
        Obs.Metrics.incr t.c_gave_up;
        if Obs.ctx_enabled t.obs then
          Obs.instant t.obs.Obs.x_rec ~pid:t.obs.Obs.x_pid
            ~t:(t.obs.Obs.x_clock ())
            (Printf.sprintf "gave-up seq=%d dst=%d" seq p.pd_dst)
      end
      else begin
        p.pd_tries <- p.pd_tries + 1;
        p.pd_deadline <- now +. (t.rto *. (2.0 ** float_of_int p.pd_tries));
        t.st.rs_retransmits <- t.st.rs_retransmits + 1;
        Obs.Metrics.incr t.c_retransmits;
        if Obs.ctx_enabled t.obs then
          Obs.instant t.obs.Obs.x_rec ~pid:t.obs.Obs.x_pid
            ~t:(t.obs.Obs.x_clock ())
            (Printf.sprintf "retransmit seq=%d dst=%d try=%d" seq p.pd_dst
               p.pd_tries);
        t.raw.Transport.e_send ~dst:p.pd_dst p.pd_wire
      end)
    due

let handle_raw t msg =
  match msg with
  | Message.Ack { seq; _ } -> Hashtbl.remove t.outstanding seq
  | Message.Data { src; seq; payload } ->
      (* Always re-ack: the previous ack may itself have been lost. *)
      t.raw.Transport.e_send ~dst:src
        (Message.Ack { src = t.raw.Transport.e_id; seq });
      t.st.rs_acks <- t.st.rs_acks + 1;
      Obs.Metrics.incr t.c_acks;
      if Hashtbl.mem t.seen (src, seq) then begin
        t.st.rs_dup_dropped <- t.st.rs_dup_dropped + 1;
        Obs.Metrics.incr t.c_dup_dropped;
        if Obs.ctx_enabled t.obs then
          Obs.instant t.obs.Obs.x_rec ~pid:t.obs.Obs.x_pid
            ~t:(t.obs.Obs.x_clock ())
            (Printf.sprintf "dup-drop src=%d seq=%d" src seq)
      end
      else begin
        Hashtbl.add t.seen (src, seq) ();
        match payload with
        | Message.Ping -> ()  (* liveness probe: ack is the whole answer *)
        | _ -> Queue.add payload t.ready
      end
  | other ->
      (* Unwrapped traffic (peer running without the reliable layer): pass
         it through untouched. *)
      Queue.add other t.ready

(* Minimum wait so a deadline landing exactly "now" cannot busy-spin. *)
let min_wait = 0.0005

let rec recv t =
  match Queue.take_opt t.ready with
  | Some m -> m
  | None ->
      let dl = next_deadline t in
      if dl = infinity then handle_raw t (t.raw.Transport.e_recv ())
      else begin
        let wait = Float.max min_wait (dl -. t.raw.Transport.e_time ()) in
        match t.raw.Transport.e_recv_timeout wait with
        | Some m -> handle_raw t m
        | None -> retransmit_due t
      end;
      recv t

let recv_timeout t d =
  let deadline = t.raw.Transport.e_time () +. d in
  let rec go () =
    match Queue.take_opt t.ready with
    | Some m -> Some m
    | None ->
        let now = t.raw.Transport.e_time () in
        if now >= deadline then None
        else begin
          let wait =
            Float.max min_wait (Float.min deadline (next_deadline t) -. now)
          in
          (match t.raw.Transport.e_recv_timeout wait with
          | Some m -> handle_raw t m
          | None -> retransmit_due t);
          go ()
        end
  in
  go ()

let drain t =
  while Hashtbl.length t.outstanding > 0 do
    let wait =
      Float.max min_wait (next_deadline t -. t.raw.Transport.e_time ())
    in
    (match t.raw.Transport.e_recv_timeout wait with
    | Some m -> handle_raw t m
    | None -> retransmit_due t)
  done

let env t =
  {
    t.raw with
    Transport.e_send = (fun ~dst m -> send t ~dst m);
    e_recv = (fun () -> recv t);
    e_recv_timeout = (fun d -> recv_timeout t d);
    e_flush = (fun () -> drain t);
  }
