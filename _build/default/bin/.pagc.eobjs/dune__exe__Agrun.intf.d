bin/agrun.mli:
