lib/analysis/kastens.ml: Array Digraph Format Grammar Hashtbl List Localdep Pag_core Pag_util Printf String
