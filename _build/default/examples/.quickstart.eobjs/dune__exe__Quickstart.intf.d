examples/quickstart.mli:
