lib/lrgen/cfg.ml: Array Hashtbl List Option Printf
