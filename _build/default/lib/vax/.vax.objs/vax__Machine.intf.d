lib/vax/machine.mli: Isa
