lib/pascal/lexer.ml: List Printf String Token
