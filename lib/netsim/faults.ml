type spec = {
  fs_drop : float;
  fs_dup : float;
  fs_reorder : float;
  fs_reorder_window : float;
  fs_delay : float;
  fs_spike : float;
  fs_crashes : (int * float) list;
  fs_seed : int;
}

let none =
  {
    fs_drop = 0.0;
    fs_dup = 0.0;
    fs_reorder = 0.0;
    fs_reorder_window = 0.02;
    fs_delay = 0.0;
    fs_spike = 0.25;
    fs_crashes = [];
    fs_seed = 1;
  }

let is_enabled s =
  s.fs_drop > 0.0 || s.fs_dup > 0.0 || s.fs_reorder > 0.0 || s.fs_delay > 0.0
  || s.fs_crashes <> []

let parse ?seed str =
  let ( let* ) = Result.bind in
  let prob key v =
    match float_of_string_opt v with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | _ -> Error (Printf.sprintf "faults: %s wants a probability, got %S" key v)
  in
  let at key v =
    (* "x@y" pairs: delay=p@spike, crash=machine@time *)
    match String.index_opt v '@' with
    | Some i ->
        Ok
          ( String.sub v 0 i,
            String.sub v (i + 1) (String.length v - i - 1) )
    | None -> Error (Printf.sprintf "faults: %s wants the form a@b, got %S" key v)
  in
  let fields =
    String.split_on_char ',' str
    |> List.filter (fun s -> String.trim s <> "")
  in
  let* spec =
    List.fold_left
      (fun acc field ->
        let* s = acc in
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "faults: expected key=value, got %S" field)
        | Some i ->
            let key = String.trim (String.sub field 0 i) in
            let v =
              String.trim (String.sub field (i + 1) (String.length field - i - 1))
            in
            (match key with
            | "drop" ->
                let* p = prob key v in
                Ok { s with fs_drop = p }
            | "dup" ->
                let* p = prob key v in
                Ok { s with fs_dup = p }
            | "reorder" ->
                let* p = prob key v in
                Ok { s with fs_reorder = p }
            | "delay" ->
                let* p, m = at key v in
                let* p = prob key p in
                (match float_of_string_opt m with
                | Some spike when spike >= 0.0 ->
                    Ok { s with fs_delay = p; fs_spike = spike }
                | _ -> Error (Printf.sprintf "faults: bad delay spike %S" m))
            | "crash" ->
                let* machine, time = at key v in
                (match (int_of_string_opt machine, float_of_string_opt time) with
                | Some m, Some t when m >= 0 && t >= 0.0 ->
                    Ok { s with fs_crashes = s.fs_crashes @ [ (m, t) ] }
                | _ ->
                    Error
                      (Printf.sprintf "faults: crash wants machine@time, got %S" v))
            | "seed" ->
                (match int_of_string_opt v with
                | Some n -> Ok { s with fs_seed = n }
                | None -> Error (Printf.sprintf "faults: bad seed %S" v))
            | _ -> Error (Printf.sprintf "faults: unknown key %S" key)))
      (Ok none) fields
  in
  Ok (match seed with None -> spec | Some n -> { spec with fs_seed = n })

let pp fmt s =
  Format.fprintf fmt "drop=%g,dup=%g,reorder=%g,delay=%g@%g" s.fs_drop s.fs_dup
    s.fs_reorder s.fs_delay s.fs_spike;
  List.iter (fun (m, t) -> Format.fprintf fmt ",crash=%d@%g" m t) s.fs_crashes;
  Format.fprintf fmt ",seed=%d" s.fs_seed

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_reorder : bool;
  v_delay : float;
}

let clean = { v_drop = false; v_dup = false; v_reorder = false; v_delay = 0.0 }

type stats = {
  mutable st_dropped : int;
  mutable st_duplicated : int;
  mutable st_delayed : int;
}

type t = {
  sp : spec;
  streams : (int, Random.State.t) Hashtbl.t;  (* per-sender PRNG *)
  st : stats;
}

let make sp =
  {
    sp;
    streams = Hashtbl.create 8;
    st = { st_dropped = 0; st_duplicated = 0; st_delayed = 0 };
  }

let spec t = t.sp

let stats t = t.st

let stream t src =
  match Hashtbl.find_opt t.streams src with
  | Some s -> s
  | None ->
      (* splitmix-style mixing so neighbouring (seed, src) pairs diverge *)
      let s =
        Random.State.make
          [| t.sp.fs_seed; (src * 0x9e3779b9) lxor (t.sp.fs_seed * 0x85ebca6b) |]
      in
      Hashtbl.add t.streams src s;
      s

let judge t ~src ~dst =
  ignore dst;
  let sp = t.sp in
  if not (sp.fs_drop > 0.0 || sp.fs_dup > 0.0 || sp.fs_reorder > 0.0 || sp.fs_delay > 0.0)
  then clean
  else begin
    let rng = stream t src in
    (* Always draw the same number of variates per message, so a decision on
       one message never shifts the stream seen by the next. *)
    let d = Random.State.float rng 1.0 in
    let u = Random.State.float rng 1.0 in
    let r = Random.State.float rng 1.0 in
    let y = Random.State.float rng 1.0 in
    let drop = d < sp.fs_drop in
    let dup = (not drop) && u < sp.fs_dup in
    let reorder = (not drop) && r < sp.fs_reorder in
    let spike = (not drop) && y < sp.fs_delay in
    let delay =
      (if reorder then sp.fs_reorder_window else 0.0)
      +. if spike then sp.fs_spike else 0.0
    in
    if drop then t.st.st_dropped <- t.st.st_dropped + 1;
    if dup then t.st.st_duplicated <- t.st.st_duplicated + 1;
    if reorder || spike then t.st.st_delayed <- t.st.st_delayed + 1;
    { v_drop = drop; v_dup = dup; v_reorder = reorder; v_delay = delay }
  end
