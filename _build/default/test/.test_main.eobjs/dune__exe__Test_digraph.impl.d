test/test_digraph.ml: Alcotest Array Digraph Gen List Pag_util Printf QCheck QCheck_alcotest String
