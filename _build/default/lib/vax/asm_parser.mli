(** Assembler front half: parse VAX-subset assembly text back into
    instructions.

    The compiler's code attribute is plain assembly text (as the paper's
    is); this parser plus {!Machine} play the role of the system assembler
    and hardware, letting tests execute compiled programs and observe their
    output. *)

exception Parse_error of int * string
(** line number (1-based), message *)

val parse : string -> Isa.instr list

(** Round-trip helper: [parse (Isa.to_string p)] = [p] for printable
    programs. *)
val parse_line : int -> string -> Isa.instr option
