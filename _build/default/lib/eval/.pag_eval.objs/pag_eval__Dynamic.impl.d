lib/eval/dynamic.ml: Array Grammar List Pag_core Printf Queue Store Tree
