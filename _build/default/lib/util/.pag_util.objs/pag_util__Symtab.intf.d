lib/util/symtab.mli:
