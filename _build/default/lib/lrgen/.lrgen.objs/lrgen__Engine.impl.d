lib/lrgen/engine.ml: Array Cfg Lalr List
