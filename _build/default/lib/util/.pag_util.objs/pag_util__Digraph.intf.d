lib/util/digraph.mli: Format
