(* Incremental re-evaluation: every edit sequence, evaluated incrementally,
   must land on exactly the attribute values a from-scratch evaluation of
   the edited tree computes — with the equality cutoff, the dirty-frontier
   fallback and hash-consing all in play. *)

open Pag_core
open Pag_eval
open Pag_grammars

let qc ?(count = 60) name gen prop = Qc_seed.qc ~count name gen prop

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Walk two structurally equal trees in lockstep and compare every
   attribute instance of the two stores. *)
let values_agree g sa ta sb tb =
  let ok = ref true in
  let rec go (a : Tree.t) (b : Tree.t) =
    (match a.Tree.prod with
    | None -> ()
    | Some _ ->
        let sym = Grammar.symbol g a.Tree.sym in
        Array.iter
          (fun (ad : Grammar.attr_decl) ->
            match
              ( Store.get_opt sa a ad.Grammar.a_name,
                Store.get_opt sb b ad.Grammar.a_name )
            with
            | Some x, Some y -> if not (Value.equal x y) then ok := false
            | _ -> ok := false)
          sym.Grammar.s_attrs);
    Array.iteri (fun i c -> go c b.Tree.children.(i)) a.Tree.children
  in
  go ta tb;
  !ok

(* Incremental session against a from-scratch dynamic evaluation of a
   structurally identical tree (same generator, same seed — never the same
   physical tree: evaluating it twice would renumber the session's nodes). *)
let agrees_with_scratch g session fresh =
  let scratch, _ = Dynamic.eval g fresh in
  values_agree g (Incr.store session) (Incr.tree session) scratch fresh

(* ---------------- deterministic cases (expr grammar) ---------------- *)

let expr_a () = Expr_ag.(main (add (num 1) (mul (num 2) (num 3))))
let expr_b () = Expr_ag.(main (add (num 1) (mul (num 5) (num 3))))
let expr_c () = Expr_ag.(main (let_in "x" (num 4) (add (var "x") (num 2))))

let test_single_edit () =
  let g = Expr_ag.grammar in
  let s = Incr.start g (expr_a ()) in
  let st = Incr.edit s (expr_b ()) in
  (* No fallback certifies the dirty cone stayed under the frontier — the
     edit really was handled incrementally. *)
  check_bool "no fallback" false st.Incr.ed_fallback;
  check_bool "something was dirty" true (st.Incr.ed_dirty > 0);
  check_bool "refired within the cone" true
    (st.Incr.ed_refired <= st.Incr.ed_dirty);
  check_bool "values = scratch" true (agrees_with_scratch g s (expr_b ()))

let test_identity_edit () =
  let g = Expr_ag.grammar in
  let s = Incr.start g (expr_a ()) in
  let st = Incr.edit s (expr_a ()) in
  check_int "nothing dirty" 0 st.Incr.ed_dirty;
  check_int "nothing refired" 0 st.Incr.ed_refired;
  check_bool "root not changed" false
    (Incr.changed s (Incr.tree s) "value")

let test_root_replacement_falls_back () =
  let g = Expr_ag.grammar in
  let s = Incr.start g (expr_a ()) in
  (* A different production at the root's child: the delta has no
     enclosing replacement site below the root. *)
  let _st = Incr.edit s (expr_c ()) in
  check_bool "values = scratch" true (agrees_with_scratch g s (expr_c ()))

let test_forced_fallback_is_correct () =
  let g = Expr_ag.grammar in
  let s = Incr.start ~frontier:0.0 g (expr_a ()) in
  let st = Incr.edit s (expr_b ()) in
  check_bool "fallback taken" true st.Incr.ed_fallback;
  check_bool "changed is conservative" true
    (Incr.changed s (Incr.tree s) "value");
  check_bool "values = scratch" true (agrees_with_scratch g s (expr_b ()))

(* ---------------- cutoff (repmin grammar) ---------------- *)

(* Editing a leaf that is not the minimum and stays above it leaves [min]
   at the root unchanged — the equality cutoff must stop propagation
   before the global res recomputation fans back out. *)
let repmin_tree hi =
  Repmin_ag.(root (fork (fork (leaf 1) (leaf hi)) (fork (leaf 7) (leaf 9))))

let test_cutoff_stops_propagation () =
  let g = Repmin_ag.grammar in
  (* The repmin cone is value-blind and spans the whole tree (min feeds
     back down as gmin), so disable the frontier: the cutoff is what keeps
     this edit cheap. *)
  let s = Incr.start ~frontier:1.1 g (repmin_tree 5) in
  let st = Incr.edit s (repmin_tree 6) in
  check_bool "no fallback" false st.Incr.ed_fallback;
  check_bool "cutoff hit" true (st.Incr.ed_cutoff > 0);
  check_bool "root res unchanged" false
    (Incr.changed s (Incr.tree s) "res");
  check_bool "values = scratch" true (agrees_with_scratch g s (repmin_tree 6))

let test_min_change_propagates () =
  let g = Repmin_ag.grammar in
  let s = Incr.start g (repmin_tree 5) in
  (* New global minimum: every res instance in the tree must move. *)
  let st = Incr.edit s (repmin_tree 0) in
  check_bool "root res changed" true (Incr.changed s (Incr.tree s) "res");
  check_bool "values = scratch" true (agrees_with_scratch g s (repmin_tree 0));
  ignore st

(* ---------------- properties ---------------- *)

let seq_arb =
  QCheck.make
    ~print:(fun (s0, edits) ->
      Printf.sprintf "base seed %d, edit seeds [%s]" s0
        (String.concat ";" (List.map string_of_int edits)))
    QCheck.Gen.(
      pair (int_bound 1_000_000) (list_size (1 -- 6) (int_bound 1_000_000)))

let expr_of seed =
  Expr_ag.random_program (Random.State.make [| seed |]) ~depth:5

let prop_expr_edit_sequences hashcons =
  qc
    (Printf.sprintf "expr edit sequences = from-scratch (hashcons %b)"
       hashcons)
    seq_arb
    (fun (s0, edits) ->
      let g = Expr_ag.grammar in
      let s = Incr.start ~hashcons g (expr_of s0) in
      List.for_all
        (fun seed ->
          ignore (Incr.edit s (expr_of seed));
          agrees_with_scratch g s (expr_of seed))
        edits)

let prop_random_ag_edit_sequences hashcons =
  qc ~count:40
    (Printf.sprintf "random AG edit sequences = from-scratch (hashcons %b)"
       hashcons)
    (QCheck.make
       ~print:(fun (gs, ts, edits) ->
         Printf.sprintf "grammar %d, base %d, edits [%s]" gs ts
           (String.concat ";" (List.map string_of_int edits)))
       QCheck.Gen.(
         triple (int_bound 1_000_000) (int_bound 1_000_000)
           (list_size (1 -- 5) (int_bound 1_000_000))))
    (fun (gseed, tseed, edits) ->
      let g = Test_random_ag.build_grammar (Random.State.make [| gseed |]) in
      let tree_of seed =
        Test_random_ag.build_tree (Random.State.make [| seed |]) g
      in
      (* Only noncircular bases are sessions; circular random grammars are
         covered by the evaluator-agreement suite. *)
      match Incr.start ~hashcons g (tree_of tseed) with
      | exception Engine.Cycle _ -> true
      | s ->
          (* Stop at the first cyclic edit: the session is not usable past
             an evaluation that could not complete. *)
          let rec go = function
            | [] -> true
            | seed :: rest -> (
                match Incr.edit s (tree_of seed) with
                | _ -> agrees_with_scratch g s (tree_of seed) && go rest
                | exception Engine.Cycle _ -> (
                    (* The edited tree is cyclic: scratch must agree. *)
                    match Dynamic.eval g (tree_of seed) with
                    | _ -> false
                    | exception Dynamic.Cycle _ -> true))
          in
          go edits)

let prop_tiny_frontier_always_agrees =
  qc ~count:30 "frontier 0: every edit falls back yet agrees" seq_arb
    (fun (s0, edits) ->
      let g = Expr_ag.grammar in
      let s = Incr.start ~frontier:0.0 g (expr_of s0) in
      List.for_all
        (fun seed ->
          let st = Incr.edit s (expr_of seed) in
          (st.Incr.ed_dirty = 0 || st.Incr.ed_fallback)
          && agrees_with_scratch g s (expr_of seed))
        edits)

(* ---------------- batched edits ---------------- *)

(* Two edits under different parents (the two mul nodes): their dirty
   cones overlap only on the spine, which merges — one wave, no
   conflicts — and both application orders land bit-identical stores. *)
let indep_base a b c d =
  Expr_ag.(main (add (mul (num a) (num b)) (mul (num c) (num d))))

let test_batch_independent_pair () =
  let g = Expr_ag.grammar in
  List.iter
    (fun (hashcons, domains) ->
      let s = Incr.start ~hashcons g (indep_base 1 2 3 4) in
      let wv =
        Incr.edit_batch ~domains s [ indep_base 9 2 3 4; indep_base 9 2 7 4 ]
      in
      check_int "one wave" 1 wv.Incr.wv_waves;
      check_int "no conflicts" 0 wv.Incr.wv_conflicts;
      check_int "two edits" 2 wv.Incr.wv_edits;
      check_int "no fallback" 0 wv.Incr.wv_fallbacks;
      check_bool "values = scratch" true
        (agrees_with_scratch g s (indep_base 9 2 7 4));
      (* the opposite application order lands the same store *)
      let s' = Incr.start ~hashcons g (indep_base 1 2 3 4) in
      ignore
        (Incr.edit_batch ~domains s' [ indep_base 1 2 7 4; indep_base 9 2 7 4 ]);
      check_bool "orders agree bit-for-bit" true
        (values_agree g (Incr.store s) (Incr.tree s) (Incr.store s')
           (Incr.tree s')))
    [ (false, 1); (true, 1); (false, 2) ]

(* Two edits replacing the two children of the same parent: the second
   edit touches the first's replacement site, so the batch must degrade
   to serialized waves — and still land on the serial result. *)
let test_batch_conflicting_pair () =
  let g = Expr_ag.grammar in
  (* frontier off: a tiny tree's cone always trips the fallback, and a
     fallback rebuild would absorb the wave we want to observe *)
  let s = Incr.start ~frontier:1.1 g (indep_base 1 2 3 4) in
  (* both replacement sites share the add parent node: structural
     interference, so the second edit must flush into its own wave.
     Fresh trees per use — grafting renumbers the replacement nodes. *)
  let next1 () =
    Expr_ag.(main (add (mul (num 5) (num 6)) (mul (num 3) (num 4))))
  in
  let next2 () =
    Expr_ag.(main (add (mul (num 5) (num 6)) (mul (num 7) (num 8))))
  in
  let wv = Incr.edit_batch s [ next1 (); next2 () ] in
  check_int "no fallback" 0 wv.Incr.wv_fallbacks;
  check_bool "conflict detected" true (wv.Incr.wv_conflicts >= 1);
  check_bool "serialized into waves" true (wv.Incr.wv_waves >= 2);
  check_bool "values = scratch" true (agrees_with_scratch g s (next2 ()))

let test_batch_identity_and_root () =
  let g = Expr_ag.grammar in
  let s = Incr.start g (expr_a ()) in
  (* structural no-op inside a batch *)
  let wv = Incr.edit_batch s [ expr_a (); expr_b () ] in
  check_int "both edits counted" 2 wv.Incr.wv_edits;
  check_bool "values = scratch" true (agrees_with_scratch g s (expr_b ()));
  (* root-production change inside a batch falls back, then the batch
     continues *)
  let wv = Incr.edit_batch s [ expr_c (); expr_a () ] in
  check_bool "fallback taken" true (wv.Incr.wv_fallbacks >= 1);
  check_bool "values = scratch after fallback" true
    (agrees_with_scratch g s (expr_a ()))

let prop_batched_matches_serial hashcons domains =
  qc ~count:40
    (Printf.sprintf "batched edits = serial (hashcons %b, domains %d)"
       hashcons domains)
    seq_arb
    (fun (s0, edits) ->
      let g = Expr_ag.grammar in
      let sb = Incr.start ~hashcons g (expr_of s0) in
      let ss = Incr.start ~hashcons g (expr_of s0) in
      List.iter (fun seed -> ignore (Incr.edit ss (expr_of seed))) edits;
      ignore (Incr.edit_batch ~domains sb (List.map expr_of edits));
      values_agree g (Incr.store sb) (Incr.tree sb) (Incr.store ss)
        (Incr.tree ss)
      &&
      match List.rev edits with
      | last :: _ -> agrees_with_scratch g sb (expr_of last)
      | [] -> true)

let prop_batched_random_ag =
  qc ~count:30 "random AG batched edits = serial"
    (QCheck.make
       ~print:(fun (gs, ts, edits) ->
         Printf.sprintf "grammar %d, base %d, edits [%s]" gs ts
           (String.concat ";" (List.map string_of_int edits)))
       QCheck.Gen.(
         triple (int_bound 1_000_000) (int_bound 1_000_000)
           (list_size (1 -- 5) (int_bound 1_000_000))))
    (fun (gseed, tseed, edits) ->
      let g = Test_random_ag.build_grammar (Random.State.make [| gseed |]) in
      let tree_of seed =
        Test_random_ag.build_tree (Random.State.make [| seed |]) g
      in
      match
        ( Incr.start g (tree_of tseed),
          Incr.start g (tree_of tseed) )
      with
      | exception Engine.Cycle _ -> true
      | sb, ss -> (
          match
            ( Incr.edit_batch sb (List.map tree_of edits),
              List.iter (fun seed -> ignore (Incr.edit ss (tree_of seed))) edits
            )
          with
          | exception Engine.Cycle _ -> true
          | _ ->
              values_agree g (Incr.store sb) (Incr.tree sb) (Incr.store ss)
                (Incr.tree ss)))

let suite =
  [
    ( "incr",
      [
        Alcotest.test_case "single edit" `Quick test_single_edit;
        Alcotest.test_case "identity edit" `Quick test_identity_edit;
        Alcotest.test_case "root replacement" `Quick
          test_root_replacement_falls_back;
        Alcotest.test_case "forced fallback" `Quick
          test_forced_fallback_is_correct;
        Alcotest.test_case "equality cutoff" `Quick
          test_cutoff_stops_propagation;
        Alcotest.test_case "min change propagates" `Quick
          test_min_change_propagates;
        Alcotest.test_case "batch: independent pair merges" `Quick
          test_batch_independent_pair;
        Alcotest.test_case "batch: conflicting pair serializes" `Quick
          test_batch_conflicting_pair;
        Alcotest.test_case "batch: no-op and root fallback" `Quick
          test_batch_identity_and_root;
        prop_expr_edit_sequences false;
        prop_expr_edit_sequences true;
        prop_random_ag_edit_sequences false;
        prop_random_ag_edit_sequences true;
        prop_tiny_frontier_always_agrees;
        prop_batched_matches_serial false 1;
        prop_batched_matches_serial true 1;
        prop_batched_matches_serial false 2;
        prop_batched_random_ag;
      ] );
  ]
