(* Parallel compilation of a paper-sized Pascal program — the experiment
   behind figures 5, 6 and 7. Compiles the generated workload on one to six
   simulated machines with both evaluators, prints the running-time series,
   the decomposition, and the Gantt chart of the 5-machine combined run.

   Run with: dune exec examples/parallel_compile.exe [-- --small] *)

open Pascal
open Pag_parallel

let () =
  let small = Array.exists (fun a -> a = "--small") Sys.argv in
  let program =
    if small then fst (Progen.gen (Random.State.make [| 7 |]) Progen.medium)
    else Progen.paper_program ()
  in
  Printf.printf "workload: %d source lines\n%!" (Pp.line_count program);
  let opts mode machines =
    {
      Runner.default_options with
      Runner.machines;
      mode;
      phase_label = Driver.phase_label;
    }
  in
  Printf.printf "\n%-10s %-22s %-22s\n" "machines" "combined (sim s)" "dynamic (sim s)";
  let seq = ref 1.0 in
  for m = 1 to 6 do
    let rc, cc = Driver.compile_parallel_sim (opts `Combined m) program in
    let rd, _ = Driver.compile_parallel_sim (opts `Dynamic m) program in
    if m = 1 then seq := rc.Runner.r_time;
    assert (cc.Driver.c_errors = []);
    Printf.printf "%-10d %8.2f  (x%4.2f)      %8.2f\n%!" m rc.Runner.r_time
      (!seq /. rc.Runner.r_time) rd.Runner.r_time
  done;
  (* decomposition and behaviour at five machines *)
  let r5, _ = Driver.compile_parallel_sim (opts `Combined 5) program in
  Printf.printf "\nsource program decomposition (figure 7):\n%s\n"
    (Format.asprintf "%a" Split.pp r5.Runner.r_split);
  Printf.printf "behaviour of the combined evaluator (figure 6):\n%!";
  (match r5.Runner.r_trace with
  | Some tr ->
      print_string
        (Netsim.Gantt.render ~width:90 ~max_arrows:14
           ~names:(Runner.machine_name ~fragments:r5.Runner.r_fragments)
           tr)
  | None -> ());
  Printf.printf
    "\ndynamically evaluated attributes in the 5-machine run: %.2f%%\n"
    (100.0 *. r5.Runner.r_dynamic_fraction)
