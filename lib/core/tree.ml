type t = {
  mutable id : int;
  sym : string;
  sym_id : int;
  prod : Grammar.production option;
  children : t array;
  term_attrs : (string * Value.t) list;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let node g prod_name children =
  let p = Grammar.find_production g prod_name in
  let children = Array.of_list children in
  if Array.length children <> Array.length p.p_rhs then
    error "node %S: expected %d children, got %d" prod_name
      (Array.length p.p_rhs) (Array.length children);
  Array.iteri
    (fun i c ->
      if c.sym <> p.p_rhs.(i) then
        error "node %S: child %d should be %S, got %S" prod_name (i + 1)
          p.p_rhs.(i) c.sym)
    children;
  {
    id = -1;
    sym = p.p_lhs;
    sym_id = Grammar.sym_id g p.p_lhs;
    prod = Some p;
    children;
    term_attrs = [];
  }

let leaf g term attrs =
  let s = Grammar.symbol g term in
  if not s.Grammar.s_term then error "leaf: %S is not a terminal" term;
  Array.iter
    (fun (a : Grammar.attr_decl) ->
      if not (List.mem_assoc a.a_name attrs) then
        error "leaf %S: missing intrinsic attribute %S" term a.a_name)
    s.Grammar.s_attrs;
  List.iter
    (fun (name, _) ->
      if Grammar.find_attr s name = None then
        error "leaf %S: unknown attribute %S" term name)
    attrs;
  {
    id = -1;
    sym = term;
    sym_id = Grammar.sym_id g term;
    prod = None;
    children = [||];
    term_attrs = attrs;
  }

let iter f t =
  (* Explicit stack: trees of large programs are deep. *)
  let stack = ref [ t ] in
  let rec go () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        f n;
        for i = Array.length n.children - 1 downto 0 do
          stack := n.children.(i) :: !stack
        done;
        go ()
  in
  go ()

let fold f init t =
  let acc = ref init in
  iter (fun n -> acc := f !acc n) t;
  !acc

let number t =
  let count = ref 0 in
  iter
    (fun n ->
      n.id <- !count;
      incr count)
    t;
  !count

let size t = fold (fun n _ -> n + 1) 0 t

let byte_size t =
  fold
    (fun acc n ->
      acc + 8
      + List.fold_left
          (fun a (_, v) -> a + Value.byte_size v)
          0 n.term_attrs)
    0 t

let term_attr t name =
  match t.prod with
  | Some _ -> error "term_attr: %S is not a leaf" t.sym
  | None -> (
      match List.assoc_opt name t.term_attrs with
      | Some v -> v
      | None -> error "term_attr: leaf %S has no attribute %S" t.sym name)

let check g t =
  iter
    (fun n ->
      match n.prod with
      | None ->
          let s = Grammar.symbol g n.sym in
          if not s.Grammar.s_term then
            error "check: leaf node with nonterminal symbol %S" n.sym
      | Some p ->
          if p.Grammar.p_lhs <> n.sym then
            error "check: node symbol %S does not match production %S" n.sym
              p.Grammar.p_name;
          if Array.length n.children <> Array.length p.Grammar.p_rhs then
            error "check: node %S has wrong arity" p.Grammar.p_name;
          Array.iteri
            (fun i c ->
              if c.sym <> p.Grammar.p_rhs.(i) then
                error "check: node %S child %d has symbol %S, expected %S"
                  p.Grammar.p_name (i + 1) c.sym p.Grammar.p_rhs.(i))
            n.children)
    t

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)
(* ------------------------------------------------------------------ *)

let find t wanted =
  let found = ref None in
  (try
     iter
       (fun n ->
         if n.id = wanted then begin
           found := Some n;
           raise Exit
         end)
       t
   with Exit -> ());
  !found

let number_from t start =
  let count = ref start in
  iter
    (fun n ->
      n.id <- !count;
      incr count)
    t;
  !count

let replace_subtree g ~parent ~pos repl =
  (match parent.prod with
  | None -> error "replace_subtree: parent %S is a leaf" parent.sym
  | Some p ->
      if pos < 0 || pos >= Array.length parent.children then
        error "replace_subtree: %S has no child %d" p.Grammar.p_name pos;
      if repl.sym <> p.Grammar.p_rhs.(pos) then
        error "replace_subtree: child %d of %S must be %S, got %S" pos
          p.Grammar.p_name p.Grammar.p_rhs.(pos) repl.sym);
  check g repl;
  let old = parent.children.(pos) in
  parent.children.(pos) <- repl;
  old

let rec equal a b =
  a.sym_id = b.sym_id
  && (match (a.prod, b.prod) with
     | None, None ->
         List.compare_lengths a.term_attrs b.term_attrs = 0
         && List.for_all2
              (fun (n1, v1) (n2, v2) ->
                String.equal n1 n2 && Value.equal v1 v2)
              a.term_attrs b.term_attrs
     | Some p, Some q -> p.Grammar.p_id = q.Grammar.p_id
     | _ -> false)
  && Array.length a.children = Array.length b.children
  && Array.for_all2 equal a.children b.children

type delta = Equal | Root | Subtree of { parent : t; pos : int; repl : t }

(* Smallest single differing subtree of two trees over one grammar: walk
   both in lockstep while exactly one child pair differs; the replacement
   site is where the productions (or terminal attributes) first diverge.
   Multiple differing children mean their common parent must be replaced
   wholesale. *)
let diff a b =
  let same_shape x y =
    x.sym_id = y.sym_id
    && match (x.prod, y.prod) with
       | Some p, Some q -> p.Grammar.p_id = q.Grammar.p_id
       | None, None ->
           List.compare_lengths x.term_attrs y.term_attrs = 0
           && List.for_all2
                (fun (n1, v1) (n2, v2) ->
                  String.equal n1 n2 && Value.equal v1 v2)
                x.term_attrs y.term_attrs
       | _ -> false
  in
  (* [Root] from [go x y] means x and y differ at their own roots. *)
  let rec go x y =
    if not (same_shape x y) then Root
    else begin
      let diffs = ref [] in
      Array.iteri
        (fun i c -> if not (equal c y.children.(i)) then diffs := i :: !diffs)
        x.children;
      match !diffs with
      | [] -> Equal
      | [ i ] -> (
          match go x.children.(i) y.children.(i) with
          | Root -> Subtree { parent = x; pos = i; repl = y.children.(i) }
          | d -> d)
      | _ -> Root
    end
  in
  if a.sym_id <> b.sym_id then
    error "diff: root symbols differ (%S vs %S)" a.sym b.sym
  else go a b

(* ------------------------------------------------------------------ *)
(* Structural sharing                                                  *)
(* ------------------------------------------------------------------ *)

type sharing = {
  sh_classes : int;
  sh_class : int array;
  sh_size : int array;
  sh_rep : int array;
  sh_occurs : int array;
}

(* A node's shape, with children identified by their (already assigned)
   class ids and terminal attributes canonicalized so equality can compare
   them by identity. Class ids are exact — two nodes share a class iff
   their subtrees are structurally identical — so reusing attributes
   across a class never changes semantics. *)
module Shape = struct
  type key = {
    k_sym : int;
    k_prod : int;  (* production id, -1 for leaves *)
    k_kids : int array;
    k_attrs : (string * Value.t) list;  (* values canonical *)
  }

  type t = key

  let equal a b =
    a.k_sym = b.k_sym && a.k_prod = b.k_prod && a.k_kids = b.k_kids
    && List.compare_lengths a.k_attrs b.k_attrs = 0
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && v1 == v2)
         a.k_attrs b.k_attrs

  let hash k =
    let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6)) in
    let h = mix k.k_sym k.k_prod in
    let h = Array.fold_left mix h k.k_kids in
    List.fold_left
      (fun h (n, v) -> mix h (mix (Hashtbl.hash n) (Value.hash v)))
      h k.k_attrs
end

module Shape_tbl = Hashtbl.Make (Shape)

let sharing t =
  let n = size t in
  let cls = Array.make n (-1) in
  let tbl = Shape_tbl.create (max 64 n) in
  (* Per-class arrays, grown as classes are discovered (≤ n of them). *)
  let csize = Array.make (max 1 n) 0 in
  let crep = Array.make (max 1 n) 0 in
  let coccurs = Array.make (max 1 n) 0 in
  let next = ref 0 in
  (* Postorder: children's classes are assigned before their parent's. *)
  let rec go = function
    | [] -> ()
    | (node, true) :: rest ->
        let key =
          {
            Shape.k_sym = node.sym_id;
            k_prod =
              (match node.prod with Some p -> p.Grammar.p_id | None -> -1);
            k_kids = Array.map (fun c -> cls.(c.id)) node.children;
            k_attrs =
              List.map (fun (nm, v) -> (nm, Value.intern v)) node.term_attrs;
          }
        in
        (match Shape_tbl.find_opt tbl key with
        | Some c ->
            cls.(node.id) <- c;
            coccurs.(c) <- coccurs.(c) + 1
        | None ->
            let c = !next in
            incr next;
            Shape_tbl.replace tbl key c;
            cls.(node.id) <- c;
            csize.(c) <-
              Array.fold_left (fun a ch -> a + csize.(cls.(ch.id))) 1
                node.children;
            crep.(c) <- node.id;
            coccurs.(c) <- 1);
        go rest
    | (node, false) :: rest ->
        go
          (Array.fold_right
             (fun c acc -> (c, false) :: acc)
             node.children
             ((node, true) :: rest))
  in
  go [ (t, false) ];
  {
    sh_classes = !next;
    sh_class = cls;
    sh_size = Array.sub csize 0 !next;
    sh_rep = Array.sub crep 0 !next;
    sh_occurs = Array.sub coccurs 0 !next;
  }

type dag = {
  dg_sharing : sharing;
  dg_kids : int array array;
  dg_occ_off : int array;
  dg_occ : int array;
}

(* The canonical DAG form: child-class edges come from each class's
   representative occurrence (any occurrence gives the same answer — the
   class relation is exact), the occurrence CSR is a counting sort of node
   ids by class, so each class's occurrences come out ascending and the
   representative (first preorder occurrence) leads its list. *)
let dag t =
  let sh = sharing t in
  let n = Array.length sh.sh_class in
  let c = sh.sh_classes in
  let kids = Array.make (max 1 c) [||] in
  iter
    (fun node ->
      let cl = sh.sh_class.(node.id) in
      if sh.sh_rep.(cl) = node.id then
        kids.(cl) <- Array.map (fun ch -> sh.sh_class.(ch.id)) node.children)
    t;
  let off = Array.make (c + 1) 0 in
  Array.iter (fun cl -> off.(cl + 1) <- off.(cl + 1) + 1) sh.sh_class;
  for i = 1 to c do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let occ = Array.make (max 1 n) 0 in
  let cursor = Array.sub off 0 (max 1 c) in
  for id = 0 to n - 1 do
    let cl = sh.sh_class.(id) in
    occ.(cursor.(cl)) <- id;
    cursor.(cl) <- cursor.(cl) + 1
  done;
  { dg_sharing = sh; dg_kids = Array.sub kids 0 c; dg_occ_off = off; dg_occ = occ }

let rec pp fmt t =
  match t.prod with
  | None ->
      Format.fprintf fmt "@[<h>%s%a@]" t.sym
        (fun fmt attrs ->
          match attrs with
          | [] -> ()
          | l ->
              Format.fprintf fmt "(%s)"
                (String.concat ","
                   (List.map (fun (k, v) -> k ^ "=" ^ Value.to_string v) l)))
        t.term_attrs
  | Some p ->
      Format.fprintf fmt "@[<hv 2>(%s" p.Grammar.p_name;
      Array.iter (fun c -> Format.fprintf fmt "@ %a" pp c) t.children;
      Format.fprintf fmt ")@]"
