(** CPU cost model for simulated evaluation.

    Charged as virtual time in the network simulator; a no-op on the real
    (domain) transport where the CPU does the actual work. The constants are
    calibrated to a ~1 MIPS SUN-2-class workstation so that sequential
    compilation of the paper's ~5000-line input lands in the same tens-of-
    seconds regime the paper reports; EXPERIMENTS.md documents the
    calibration. The *ratios* are what the experiments depend on:
    dynamically evaluating an attribute costs graph construction + scheduling
    on top of the rule itself, statically it costs only the rule plus a small
    visit overhead. Semantic rules are O(1)-ish (rope concatenation is
    constant time, symbol-table update logarithmic), so rule cost is flat;
    string flattening is paid at message boundaries by the network model. *)

type t = {
  static_rule : float;  (** applying one semantic rule in a visit sequence *)
  dynamic_rule : float;  (** rule + ready-queue scheduling, dynamic mode *)
  steal_rule : float;
      (** rule + work-stealing scheduling: deque pop plus atomic
          dependency-counter decrements against the flat instance table —
          cheaper than 1987-style dynamic scheduling, dearer than a
          precomputed visit sequence *)
  steal_init : float;
      (** per rule instance: seeding the ready-counter table from the
          grammar's precomputed dependency rows — one array store each, an
          order of magnitude below [build_node]'s linked-graph share *)
  build_node : float;  (** dependency-graph share per dynamic instance *)
  build_edge : float;  (** per dependency edge entered in the graph *)
  visit : float;  (** entering a visit procedure at one node *)
  rebuild_per_byte : float;  (** reconstructing a shipped subtree, per byte *)
}

val default : t

val rule_cost : t -> dynamic:bool -> float

(** Cost of a static visit segment that fired [evals] rules over [visits]
    node entries. *)
val visit_cost : t -> visits:int -> evals:int -> float
