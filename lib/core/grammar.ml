type kind = Syn | Inh

type attr_decl = { a_name : string; a_kind : kind; a_priority : bool }

type symbol = {
  s_name : string;
  s_term : bool;
  s_attrs : attr_decl array;
  s_split : int option;
}

type attr_ref = { pos : int; attr : string }

type rref = { rr_pos : int; rr_attr : int; rr_term : bool; rr_name : string }

type rule = {
  r_target : attr_ref;
  r_deps : attr_ref list;
  r_fn : Value.t array -> Value.t;
  r_name : string;
  mutable r_rtarget : rref;
  mutable r_rdeps : rref array;
}

type production = {
  p_id : int;
  p_name : string;
  p_lhs : string;
  p_rhs : string array;
  p_rules : rule array;
}

type t = {
  g_name : string;
  g_start : string;
  g_symbols : symbol array;
  g_prods : production array;
  sym_index : (string, int) Hashtbl.t;
  attr_index : (string * string, int) Hashtbl.t;
  prod_index : (string, int) Hashtbl.t;
  prods_of : (string, production list) Hashtbl.t;
  attr_counts : int array;  (* symbol id -> number of declared attributes *)
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let syn ?(priority = false) name =
  { a_name = name; a_kind = Syn; a_priority = priority }

let inh ?(priority = false) name =
  { a_name = name; a_kind = Inh; a_priority = priority }

let nonterminal ?split name attrs =
  { s_name = name; s_term = false; s_attrs = Array.of_list attrs; s_split = split }

let terminal name attrs =
  {
    s_name = name;
    s_term = true;
    s_attrs =
      Array.of_list
        (List.map (fun a -> { a_name = a; a_kind = Syn; a_priority = false }) attrs);
    s_split = None;
  }

let lhs attr = { pos = 0; attr }

let rhs pos attr =
  if pos < 1 then error "Grammar.rhs: position must be >= 1 (got %d)" pos;
  { pos; attr }

let pp_attr_ref fmt { pos; attr } =
  if pos = 0 then Format.fprintf fmt "$$.%s" attr
  else Format.fprintf fmt "$%d.%s" pos attr

let unresolved = { rr_pos = -1; rr_attr = -1; rr_term = false; rr_name = "" }

let rule ?name target ~deps fn =
  let name =
    match name with
    | Some n -> n
    | None -> Format.asprintf "%a" pp_attr_ref target
  in
  {
    r_target = target;
    r_deps = deps;
    r_fn = fn;
    r_name = name;
    r_rtarget = unresolved;
    r_rdeps = [||];
  }

let production ~name ~lhs ~rhs rules =
  {
    p_id = -1;
    p_name = name;
    p_lhs = lhs;
    p_rhs = Array.of_list rhs;
    p_rules = Array.of_list rules;
  }

let find_attr sym name =
  Array.fold_left
    (fun acc a -> if a.a_name = name then Some a else acc)
    None sym.s_attrs

(* Validation helpers operating on one production. *)

let check_unique_names what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then error "duplicate %s %S" what n
      else Hashtbl.add tbl n ())
    names

let symbol_at g_symbols sym_index p r =
  (* The symbol a reference position denotes, within production [p]. *)
  if r.pos = 0 then g_symbols.(Hashtbl.find sym_index p.p_lhs)
  else if r.pos > Array.length p.p_rhs then
    error "production %S: reference %d.%s out of range" p.p_name r.pos r.attr
  else g_symbols.(Hashtbl.find sym_index p.p_rhs.(r.pos - 1))

let validate_production g_symbols sym_index p =
  let sym_of name =
    match Hashtbl.find_opt sym_index name with
    | Some i -> g_symbols.(i)
    | None -> error "production %S: undeclared symbol %S" p.p_name name
  in
  let lhs_sym = sym_of p.p_lhs in
  if lhs_sym.s_term then
    error "production %S: left-hand side %S is a terminal" p.p_name p.p_lhs;
  Array.iter (fun s -> ignore (sym_of s)) p.p_rhs;
  (* Required targets: syn attrs of lhs, inh attrs of each nonterminal rhs
     occurrence. *)
  let required = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      if a.a_kind = Syn then Hashtbl.replace required (0, a.a_name) false)
    lhs_sym.s_attrs;
  Array.iteri
    (fun i name ->
      let s = sym_of name in
      if not s.s_term then
        Array.iter
          (fun a ->
            if a.a_kind = Inh then Hashtbl.replace required (i + 1, a.a_name) false)
          s.s_attrs)
    p.p_rhs;
  Array.iter
    (fun r ->
      let tgt = r.r_target in
      let tsym = symbol_at g_symbols sym_index p tgt in
      (match find_attr tsym tgt.attr with
      | None ->
          error "production %S: rule targets unknown attribute %s.%s" p.p_name
            tsym.s_name tgt.attr
      | Some a ->
          if tsym.s_term then
            error "production %S: rule defines terminal attribute %s.%s"
              p.p_name tsym.s_name tgt.attr;
          let expected = if tgt.pos = 0 then Syn else Inh in
          if a.a_kind <> expected then
            error
              "production %S: rule defines %s.%s which is %s at that position"
              p.p_name tsym.s_name tgt.attr
              (if a.a_kind = Syn then "synthesized" else "inherited"));
      (match Hashtbl.find_opt required (tgt.pos, tgt.attr) with
      | Some false -> Hashtbl.replace required (tgt.pos, tgt.attr) true
      | Some true ->
          error "production %S: attribute %d.%s defined twice" p.p_name tgt.pos
            tgt.attr
      | None ->
          error "production %S: rule defines %d.%s which is not required"
            p.p_name tgt.pos tgt.attr);
      List.iter
        (fun d ->
          let dsym = symbol_at g_symbols sym_index p d in
          match find_attr dsym d.attr with
          | None ->
              error "production %S: rule %S depends on unknown %s.%s" p.p_name
                r.r_name dsym.s_name d.attr
          | Some a ->
              (* Visible occurrences: inherited of LHS, synthesized of RHS
                 (terminal attributes are synthesized by construction). *)
              let ok =
                if d.pos = 0 then a.a_kind = Inh else a.a_kind = Syn
              in
              if not ok then
                error
                  "production %S: rule %S depends on %d.%s, which is not \
                   visible there (inherited attributes of the right side and \
                   synthesized attributes of the left side are defined by \
                   this production itself)"
                  p.p_name r.r_name d.pos d.attr)
        r.r_deps)
    p.p_rules;
  Hashtbl.iter
    (fun (pos, attr) defined ->
      if not defined then
        error "production %S: attribute %d.%s is never defined" p.p_name pos
          attr)
    required

(* Resolve the attribute references of every rule of [p] to dense indices
   (position in the symbol's attribute array + terminal flag), so evaluators
   compute slot ids with array arithmetic instead of name lookups. Runs after
   validation, so every reference is known to be well-formed. *)
let resolve_production g_symbols sym_index p =
  let resolve (r : attr_ref) =
    let sym = symbol_at g_symbols sym_index p r in
    let idx = ref (-1) in
    Array.iteri (fun i a -> if a.a_name = r.attr then idx := i) sym.s_attrs;
    { rr_pos = r.pos; rr_attr = !idx; rr_term = sym.s_term; rr_name = r.attr }
  in
  Array.iter
    (fun ru ->
      let rt = resolve ru.r_target in
      let rd = Array.of_list (List.map resolve ru.r_deps) in
      if ru.r_rtarget.rr_pos >= 0 && (ru.r_rtarget <> rt || ru.r_rdeps <> rd)
      then
        error
          "production %S: rule %S is shared with another production where it \
           resolves differently (build rules freshly per production)"
          p.p_name ru.r_name;
      ru.r_rtarget <- rt;
      ru.r_rdeps <- rd)
    p.p_rules

let make ~name ~start symbols productions =
  check_unique_names "symbol" (List.map (fun s -> s.s_name) symbols);
  List.iter
    (fun s ->
      check_unique_names
        (Printf.sprintf "attribute of %S" s.s_name)
        (Array.to_list (Array.map (fun a -> a.a_name) s.s_attrs));
      if s.s_term then
        Array.iter
          (fun a ->
            if a.a_kind = Inh then
              error "terminal %S has inherited attribute %S" s.s_name a.a_name)
          s.s_attrs)
    symbols;
  check_unique_names "production" (List.map (fun p -> p.p_name) productions);
  let g_symbols = Array.of_list symbols in
  let sym_index = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.add sym_index s.s_name i) g_symbols;
  (match Hashtbl.find_opt sym_index start with
  | None -> error "start symbol %S is not declared" start
  | Some i ->
      if g_symbols.(i).s_term then error "start symbol %S is a terminal" start);
  List.iter (validate_production g_symbols sym_index) productions;
  List.iter (resolve_production g_symbols sym_index) productions;
  let g_prods =
    Array.of_list (List.mapi (fun i p -> { p with p_id = i }) productions)
  in
  let attr_index = Hashtbl.create 256 in
  Array.iter
    (fun s ->
      Array.iteri
        (fun i a -> Hashtbl.add attr_index (s.s_name, a.a_name) i)
        s.s_attrs)
    g_symbols;
  let prod_index = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.add prod_index p.p_name p.p_id) g_prods;
  let prods_of = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt prods_of p.p_lhs)
      in
      Hashtbl.replace prods_of p.p_lhs (existing @ [ p ]))
    g_prods;
  {
    g_name = name;
    g_start = start;
    g_symbols;
    g_prods;
    sym_index;
    attr_index;
    prod_index;
    prods_of;
    attr_counts = Array.map (fun s -> Array.length s.s_attrs) g_symbols;
  }

let name g = g.g_name

let start g = g.g_start

let symbols g = g.g_symbols

let productions g = g.g_prods

let sym_id g name =
  match Hashtbl.find_opt g.sym_index name with
  | Some i -> i
  | None -> error "unknown symbol %S" name

let symbol g name = g.g_symbols.(sym_id g name)

let symbol_of_id g i = g.g_symbols.(i)

let find_production g name =
  match Hashtbl.find_opt g.prod_index name with
  | Some i -> g.g_prods.(i)
  | None -> error "unknown production %S" name

let prods_for g nt =
  Option.value ~default:[] (Hashtbl.find_opt g.prods_of nt)

let attr_pos g ~sym ~attr =
  match Hashtbl.find_opt g.attr_index (sym, attr) with
  | Some i -> i
  | None -> error "unknown attribute %s.%s" sym attr

let attr_count g name = g.attr_counts.(sym_id g name)

let attr_count_of_id g id = g.attr_counts.(id)

let is_priority g ~sym ~attr =
  match find_attr (symbol g sym) attr with
  | Some a -> a.a_priority
  | None -> error "unknown attribute %s.%s" sym attr

let check_reduced g =
  let warnings = ref [] in
  (* Productivity: every nonterminal should have at least one production. *)
  Array.iter
    (fun s ->
      if (not s.s_term) && prods_for g s.s_name = [] then
        warnings :=
          Printf.sprintf "nonterminal %S has no productions" s.s_name
          :: !warnings)
    g.g_symbols;
  (* Reachability from the start symbol. *)
  let reached = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reached name) then begin
      Hashtbl.add reached name ();
      List.iter
        (fun p -> Array.iter visit p.p_rhs)
        (prods_for g name)
    end
  in
  visit g.g_start;
  Array.iter
    (fun s ->
      if (not s.s_term) && not (Hashtbl.mem reached s.s_name) then
        warnings :=
          Printf.sprintf "nonterminal %S is unreachable from %S" s.s_name
            g.g_start
          :: !warnings)
    g.g_symbols;
  List.rev !warnings
