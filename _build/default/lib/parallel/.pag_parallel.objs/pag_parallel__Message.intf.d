lib/parallel/message.mli: Format Pag_core Pag_util Rope Value
