(* Edge cases of the Pascal compiler: composite data, scoping corners,
   parameter passing across nesting levels — all differential against the
   reference interpreter. *)

open Pascal

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let run_interp ?input src =
  match Interp.run ?input (Parser.parse_program src) with
  | Ok out -> out
  | Error e -> Alcotest.failf "interp error: %s" (Interp.error_to_string e)

let compile_and_run ?input src =
  let c = Driver.compile_source src in
  (match c.Driver.c_errors with
  | [] -> ()
  | errs -> Alcotest.failf "compile errors: %s" (String.concat "; " errs));
  match Driver.run_compiled ?input c with
  | Ok out -> out
  | Error e -> Alcotest.failf "runtime error: %s" e

let differential ?input src =
  check_str "compiled = interpreted" (run_interp ?input src)
    (compile_and_run ?input src)

let test_array_of_records () =
  differential
    {|
program t;
var pts : array [1..4] of record fx : integer; fy : integer end;
    i, s : integer;
begin
  for i := 1 to 4 do begin
    pts[i].fx := i * 2;
    pts[i].fy := i * i
  end;
  s := 0;
  for i := 1 to 4 do begin s := s + pts[i].fx * pts[i].fy end;
  writeln(s)
end.
|}

let test_record_with_array_field () =
  differential
    {|
program t;
var buf : record len : integer; data : array [0..7] of integer end;
    i : integer;
begin
  buf.len := 0;
  for i := 0 to 7 do begin
    buf.data[i] := 100 - i;
    buf.len := buf.len + 1
  end;
  writeln(buf.data[0] + buf.data[7] + buf.len)
end.
|}

let test_array_as_var_param () =
  differential
    {|
program t;
var a : array [1..6] of integer;
    i : integer;
procedure fill(var v : array [1..6] of integer; base : integer);
var k : integer;
begin
  for k := 1 to 6 do begin v[k] := base + k end
end;
function total(var v : array [1..6] of integer) : integer;
var k, s : integer;
begin
  s := 0;
  for k := 1 to 6 do begin s := s + v[k] end;
  total := s
end;
begin
  fill(a, 10);
  writeln(total(a));
  for i := 1 to 6 do begin write(a[i]); write(' ') end;
  writeln
end.
|}

let test_var_param_across_levels () =
  (* a var parameter aliased into a variable two frames up the chain *)
  differential
    {|
program t;
var g : integer;
procedure outer;
var x : integer;
  procedure mid(var r : integer);
    procedure leaf;
    begin
      r := r + 100
    end;
  begin
    leaf;
    leaf
  end;
begin
  x := 5;
  mid(x);
  g := x
end;
begin
  outer;
  writeln(g)
end.
|}

let test_shadowing () =
  differential
    {|
program t;
var x : integer;
procedure p;
var x : integer;
begin
  x := 99;
  writeln(x)
end;
begin
  x := 1;
  p;
  writeln(x)
end.
|}

let test_const_shadowed_by_var () =
  differential
    {|
program t;
const k = 5;
procedure p;
var k : integer;
begin
  k := 7;
  writeln(k)
end;
begin
  p;
  writeln(k)
end.
|}

let test_char_comparisons () =
  differential
    {|
program t;
var c : char;
begin
  c := 'm';
  if c > 'a' then begin writeln(1) end else begin writeln(0) end;
  if c = 'm' then begin writeln(2) end;
  if c >= 'z' then begin writeln(3) end else begin writeln(4) end
end.
|}

let test_deeply_nested_expressions () =
  differential
    {|
program t;
var x : integer;
begin
  x := ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8))) div (2 + 1)) mod 100;
  writeln(x);
  writeln(-x + (- (3 * -2)))
end.
|}

let test_boolean_expressions () =
  differential
    {|
program t;
var a, b : boolean; i : integer;
begin
  i := 7;
  a := (i > 3) and (i < 10) or false;
  b := not a and (i = 7);
  writeln(a); writeln(b);
  writeln(a or b);
  writeln(true and not false)
end.
|}

let test_case_fallthrough_to_else () =
  differential
    {|
program t;
var i : integer;
begin
  for i := 0 to 6 do begin
    case i of
      0, 2, 4: begin write('e') end;
      1, 3: begin write('o') end
      else begin write('?') end
    end
  end;
  writeln
end.
|}

let test_case_without_else_no_match () =
  differential
    {|
program t;
var i : integer;
begin
  i := 42;
  case i of
    1: begin writeln(1) end;
    2: begin writeln(2) end
  end;
  writeln(99)
end.
|}

let test_empty_bodies () =
  differential
    {|
program t;
var i : integer;
procedure nothing;
begin
end;
begin
  nothing;
  if true then begin end else begin writeln(0) end;
  for i := 5 to 4 do begin writeln(123) end;
  writeln(7)
end.
|}

let test_repeat_runs_once () =
  differential
    {|
program t;
var i : integer;
begin
  i := 100;
  repeat
    writeln(i);
    i := i + 1
  until true
end.
|}

let test_for_loop_var_after () =
  (* both implementations leave the loop variable at the same value *)
  differential
    {|
program t;
var i, s : integer;
begin
  s := 0;
  for i := 1 to 5 do begin s := s + 1 end;
  writeln(s)
end.
|}

let test_functions_in_conditions () =
  differential
    {|
program t;
var n : integer;
function half(x : integer) : integer;
begin
  half := x div 2
end;
begin
  n := 40;
  while half(n) > 2 do begin n := half(n) end;
  writeln(n)
end.
|}

let test_write_many_args () =
  differential
    {|
program t;
var i : integer;
begin
  i := 3;
  writeln(1, ' ', true, ' ', i * i);
  write('a', 'b', 'c');
  writeln
end.
|}

let test_negative_numbers () =
  differential
    {|
program t;
var x, y : integer;
begin
  x := 0 - 17;
  y := x div 5;
  writeln(y);
  writeln(x mod 5);
  writeln(-x)
end.
|}

let test_mod_negative_matches () =
  (* mod semantics on negatives must agree between backends (truncated) *)
  differential
    {|
program t;
var a : integer;
begin
  a := 0 - 7;
  writeln(a mod 3);
  writeln(7 mod 3);
  writeln(a div 3)
end.
|}

let test_parallel_composites () =
  (* composite-heavy program through the parallel pipeline *)
  let src =
    {|
program t;
var grid : array [1..5] of record fx : integer; fy : integer end;
    i, acc : integer;
procedure bump(var r : integer; amount : integer);
begin
  r := r + amount
end;
begin
  acc := 0;
  for i := 1 to 5 do begin
    grid[i].fx := i;
    grid[i].fy := 6 - i;
    bump(acc, grid[i].fx * grid[i].fy)
  end;
  writeln(acc)
end.
|}
  in
  let expected = run_interp src in
  let opts =
    {
      Pag_parallel.Runner.default_options with
      Pag_parallel.Runner.machines = 3;
      phase_label = Driver.phase_label;
    }
  in
  let _, c = Driver.compile_parallel_sim opts (Parser.parse_program src) in
  check_bool "no errors" true (c.Driver.c_errors = []);
  match Driver.run_compiled c with
  | Ok out -> check_str "parallel composite" expected out
  | Error e -> Alcotest.failf "runtime error: %s" e

let suite =
  [
    ( "pascal-edge",
      [
        Alcotest.test_case "array of records" `Quick test_array_of_records;
        Alcotest.test_case "record with array" `Quick test_record_with_array_field;
        Alcotest.test_case "array var param" `Quick test_array_as_var_param;
        Alcotest.test_case "var param across levels" `Quick
          test_var_param_across_levels;
        Alcotest.test_case "shadowing" `Quick test_shadowing;
        Alcotest.test_case "const shadowed" `Quick test_const_shadowed_by_var;
        Alcotest.test_case "char comparisons" `Quick test_char_comparisons;
        Alcotest.test_case "nested expressions" `Quick
          test_deeply_nested_expressions;
        Alcotest.test_case "booleans" `Quick test_boolean_expressions;
        Alcotest.test_case "case else" `Quick test_case_fallthrough_to_else;
        Alcotest.test_case "case no match" `Quick test_case_without_else_no_match;
        Alcotest.test_case "empty bodies" `Quick test_empty_bodies;
        Alcotest.test_case "repeat once" `Quick test_repeat_runs_once;
        Alcotest.test_case "for bound" `Quick test_for_loop_var_after;
        Alcotest.test_case "functions in conditions" `Quick
          test_functions_in_conditions;
        Alcotest.test_case "write many args" `Quick test_write_many_args;
        Alcotest.test_case "negative numbers" `Quick test_negative_numbers;
        Alcotest.test_case "mod negative" `Quick test_mod_negative_matches;
        Alcotest.test_case "parallel composites" `Quick test_parallel_composites;
      ] );
  ]
