let stride = 1_000_000

type state = { mutable counter : int; mutable active : bool }

let key = Domain.DLS.new_key (fun () -> { counter = 0; active = false })

let with_counter cursor f =
  let st = Domain.DLS.get key in
  let saved_counter = st.counter and saved_active = st.active in
  st.counter <- !cursor;
  st.active <- true;
  Fun.protect
    ~finally:(fun () ->
      cursor := st.counter;
      st.counter <- saved_counter;
      st.active <- saved_active)
    f

let with_base base f =
  let cursor = ref base in
  let r = with_counter cursor f in
  (r, !cursor - base)

let mark () = (Domain.DLS.get key).counter

let fresh () =
  let st = Domain.DLS.get key in
  if not st.active then failwith "Uid.fresh: no active base (use with_counter)";
  let v = st.counter in
  st.counter <- v + 1;
  v
